// Synthetic matrix-factorization model generation.
//
// The paper evaluates on 23 trained MF models (Netflix / Yahoo KDD /
// Yahoo R2 / GloVe embeddings).  Those multi-GB artifacts are not available
// offline, so this module generates factor matrices whose *solver-relevant*
// statistics are controllable:
//
//  * item_norm_sigma — log-normal spread of item vector lengths.  Flat
//    norms (small sigma) starve length-based pruning, which is the regime
//    where BMM beats the indexes (Netflix-like, Figure 2 left).  Skewed
//    norms (large sigma) let LEMP/FEXIPRO/MAXIMUS prune most items
//    (R2-like, Figure 2 right).
//  * user_modes / user_dispersion — users are drawn around a small number
//    of direction modes; tight dispersion gives k-means small theta_b and
//    makes MAXIMUS's bound effective.
//  * non_negative — emulates implicit-feedback (BPR-style) factors whose
//    coordinates are predominantly positive.
//
// DESIGN.md §2 documents this substitution and why it preserves the
// paper's qualitative results.

#ifndef MIPS_DATA_SYNTHETIC_H_
#define MIPS_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "linalg/matrix.h"

namespace mips {

/// A factored recommendation model: |U| x f user matrix and |I| x f item
/// matrix, scored as U * I^T.
struct MFModel {
  std::string name;
  Matrix users;
  Matrix items;

  Index num_users() const { return users.rows(); }
  Index num_items() const { return items.rows(); }
  Index num_factors() const { return users.cols(); }
};

/// Generator knobs; see the header comment for the role of each.
struct SyntheticModelConfig {
  std::string name = "synthetic";
  Index num_users = 10000;
  Index num_items = 2000;
  Index num_factors = 50;
  uint64_t seed = 1;

  /// Log-normal sigma of item norms (0 = all item norms equal).
  Real item_norm_sigma = 0.3;
  /// Log-normal mu of item norms (sets the norm scale).
  Real item_norm_mu = 0.0;

  /// Number of user direction modes (>= 1).
  Index user_modes = 16;
  /// Angular noise around the mode direction; 0 = all users on the mode.
  Real user_dispersion = 0.5;
  /// Log-normal sigma of user norms (does not affect top-K order per user).
  Real user_norm_sigma = 0.2;

  /// Clamp all factor coordinates to be non-negative (BPR-like models).
  bool non_negative = false;

  /// Fraction of item coordinates kept nonzero (sparse catalogs, e.g.
  /// learned-sparse or pruned embeddings).  1.0 (default) leaves items
  /// fully dense — and, deliberately, bitwise identical to the matrices
  /// generated before this knob existed.  Values in (0, 1) zero out a
  /// random complement of ceil(density * f) coordinates per item row
  /// (at least one survives).  Must be in (0, 1].
  Real item_density = 1.0;
  /// Fraction of item rows exempted from sparsification (kept fully
  /// dense), modeling mixed head/tail catalogs for the hybrid solver.
  /// Must be in [0, 1]; only consulted when item_density < 1.
  Real dense_item_fraction = 0.0;
};

/// Generates a model deterministically from `config.seed`.
/// Returns InvalidArgument for non-positive dimensions.
StatusOr<MFModel> GenerateSyntheticModel(const SyntheticModelConfig& config);

/// Sparsifies `items` in place: each row independently keeps
/// max(1, llround(density * cols)) coordinates (a random subset) and
/// zeroes the rest, except a `dense_fraction` share of rows (chosen
/// per-row at random) which stay fully dense.  Deterministic in `seed`.
/// density = 1 is an exact no-op.  InvalidArgument unless density is in
/// (0, 1] and dense_fraction in [0, 1].
Status SparsifyRows(Matrix* items, Real density, Real dense_fraction,
                    uint64_t seed);

/// Summary statistics of a vector set, used by tests and by the Table I
/// bench to show the generated workloads match their presets.
struct VectorSetStats {
  Real min_norm = 0;
  Real max_norm = 0;
  Real mean_norm = 0;
  /// Coefficient of variation of norms (stddev / mean).
  Real norm_cv = 0;
};
VectorSetStats ComputeVectorSetStats(const ConstRowBlock& vectors);

}  // namespace mips

#endif  // MIPS_DATA_SYNTHETIC_H_
