#include "core/maximus.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>

#include "cluster/spherical.h"
#include "common/timer.h"
#include "core/cbound.h"
#include "linalg/blas.h"
#include "linalg/gemm.h"
#include "solvers/registry.h"
#include "topk/topk_heap.h"

namespace mips {

Status MaximusSolver::Prepare(const ConstRowBlock& users,
                              const ConstRowBlock& items) {
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (users.rows() <= 0 || items.rows() <= 0) {
    return Status::InvalidArgument("user and item sets must be non-empty");
  }
  users_ = users;
  items_ = items;
  prepared_users_ = users.rows();

  // --- Stage 1: cluster users (Section III-A). ---
  {
    WallTimer timer;
    KMeansOptions kopts;
    kopts.num_clusters = options_.num_clusters;
    kopts.max_iterations = options_.kmeans_iterations;
    kopts.seed = options_.seed;
    const Status st =
        options_.spherical_clustering
            ? SphericalKMeans(users, kopts, &clustering_)
            : KMeans(users, kopts, &clustering_);
    MIPS_RETURN_IF_ERROR(st);
    stage_timer_.Add("clustering", timer.Seconds());
  }

  // --- Stage 2: construct the per-cluster sorted lists (Section III-B). ---
  WallTimer timer;
  const Index n = items.rows();
  const Index f = items.cols();
  const Index num_clusters = clustering_.centroids.rows();

  item_norms_.resize(static_cast<std::size_t>(n));
  RowNorms(items.data(), n, f, item_norms_.data());

  // theta_b per cluster: the widest member angle (Algorithm 1).
  theta_b_.assign(static_cast<std::size_t>(num_clusters), 0);
  for (Index j = 0; j < num_clusters; ++j) {
    Real max_angle = 0;
    for (const Index u : clustering_.members[static_cast<std::size_t>(j)]) {
      const Real cos = CosineSimilarity(users.Row(u),
                                        clustering_.centroids.Row(j), f);
      max_angle = std::max(max_angle, AngleFromCosine(cos));
    }
    theta_b_[static_cast<std::size_t>(j)] = max_angle;
  }

  // One GEMM gives every item-centroid inner product.
  Matrix centroid_scores;
  GemmNT(items, ConstRowBlock(clustering_.centroids), &centroid_scores);
  std::vector<Real> centroid_norms(static_cast<std::size_t>(num_clusters));
  for (Index j = 0; j < num_clusters; ++j) {
    centroid_norms[static_cast<std::size_t>(j)] =
        Nrm2(clustering_.centroids.Row(j), f);
  }

  lists_.assign(static_cast<std::size_t>(num_clusters), {});
  for (Index j = 0; j < num_clusters; ++j) {
    ClusterList& list = lists_[static_cast<std::size_t>(j)];
    const Real theta_b = theta_b_[static_cast<std::size_t>(j)];
    const Real c_norm = centroid_norms[static_cast<std::size_t>(j)];

    std::vector<Real> bound(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      const Real norm = item_norms_[static_cast<std::size_t>(i)];
      const Real denom = norm * c_norm;
      const Real cos_ic =
          denom > 0 ? centroid_scores(i, j) / denom : Real{0};
      const Real theta_ic = AngleFromCosine(cos_ic);
      bound[static_cast<std::size_t>(i)] = CBound(norm, theta_ic, theta_b);
    }

    list.item_ids.resize(static_cast<std::size_t>(n));
    std::iota(list.item_ids.begin(), list.item_ids.end(), 0);
    std::stable_sort(list.item_ids.begin(), list.item_ids.end(),
                     [&](Index a, Index b) {
                       return bound[static_cast<std::size_t>(a)] >
                              bound[static_cast<std::size_t>(b)];
                     });
    list.bounds.resize(static_cast<std::size_t>(n));
    for (Index pos = 0; pos < n; ++pos) {
      list.bounds[static_cast<std::size_t>(pos)] =
          bound[static_cast<std::size_t>(list.item_ids[static_cast<std::size_t>(pos)])];
    }

    // Shared item block for the first B list entries (Section III-D).
    Index block_size = options_.block_size;
    if (block_size < 0) {
      block_size = std::clamp<Index>(n / 8, 64, 4096);  // auto
    }
    const Index b_eff = std::min<Index>(block_size, n);
    if (b_eff > 0) {
      list.block.Resize(b_eff, f);
      for (Index pos = 0; pos < b_eff; ++pos) {
        std::memcpy(list.block.Row(pos),
                    items.Row(list.item_ids[static_cast<std::size_t>(pos)]),
                    static_cast<std::size_t>(f) * sizeof(Real));
      }
    }
  }
  stage_timer_.Add("construction", timer.Seconds());
  return Status::OK();
}

Status MaximusSolver::TopKForUsers(Index k, std::span<const Index> user_ids,
                                   TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (lists_.empty()) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  WallTimer traversal_timer;
  const Index q = static_cast<Index>(user_ids.size());
  *out = TopKResult(q, k);
  if (q == 0) return Status::OK();

  const Index n = items_.rows();
  const Index f = items_.cols();
  const Index num_clusters = static_cast<Index>(lists_.size());
  std::atomic<int64_t> total_visited{0};

  ParallelFor(pool_, q, [&](int64_t begin, int64_t end, int /*chunk*/) {
    // Group this chunk's queries by cluster so the shared block GEMM can
    // amortize across cluster members.
    std::vector<std::vector<int64_t>> by_cluster(
        static_cast<std::size_t>(num_clusters));
    for (int64_t r = begin; r < end; ++r) {
      const Index u = user_ids[static_cast<std::size_t>(r)];
      by_cluster[static_cast<std::size_t>(
                     clustering_.assignment[static_cast<std::size_t>(u)])]
          .push_back(r);
    }

    int64_t visited_acc = 0;
    Matrix normalized;
    Matrix scores;
    Matrix segment;
    for (Index j = 0; j < num_clusters; ++j) {
      const auto& rows = by_cluster[static_cast<std::size_t>(j)];
      if (rows.empty()) continue;
      const ClusterList& list = lists_[static_cast<std::size_t>(j)];
      const Index m = static_cast<Index>(rows.size());
      const Index block = list.block.rows();

      // Gather + normalize this cluster's queried users.
      normalized.Resize(m, f);
      std::vector<Real> user_norms(static_cast<std::size_t>(m));
      for (Index r = 0; r < m; ++r) {
        const Index u = user_ids[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])];
        std::memcpy(normalized.Row(r), users_.Row(u),
                    static_cast<std::size_t>(f) * sizeof(Real));
        const Real norm = Nrm2(normalized.Row(r), f);
        user_norms[static_cast<std::size_t>(r)] = norm;
        if (norm > 0) Scale(Real{1} / norm, normalized.Row(r), f);
      }

      std::vector<TopKHeap> heaps(static_cast<std::size_t>(m), TopKHeap(k));
      std::vector<int64_t> visited(static_cast<std::size_t>(m), 0);

      if (block <= 0) {
        // Lesion path (item blocking disabled): scalar walk per user.
        for (Index r = 0; r < m; ++r) {
          const Real* nu = normalized.Row(r);
          TopKHeap& heap = heaps[static_cast<std::size_t>(r)];
          for (Index pos = 0; pos < n; ++pos) {
            // Strict prune (`<`, not `<=`): a bound equal to the heap
            // minimum can cover a tied score, and the tied item must
            // reach Push for the id tie-break (topk_heap.h).
            if (heap.full() &&
                list.bounds[static_cast<std::size_t>(pos)] <
                    heap.MinScore()) {
              break;
            }
            const Index id = list.item_ids[static_cast<std::size_t>(pos)];
            heap.Push(id, Dot(nu, items_.Row(id), f));
            ++visited[static_cast<std::size_t>(r)];
          }
        }
      } else {
        // Progressive item blocking (Section III-D, extended): score the
        // list in B-item segments with one shared GEMM per segment over
        // the users still active, so even deep walks stay on the blocked
        // kernel instead of degrading to scalar gather-dots.  The first
        // segment's item block is pre-gathered at construction time.
        std::vector<Index> active(static_cast<std::size_t>(m));
        std::iota(active.begin(), active.end(), 0);
        Matrix active_users = normalized;  // first segment: everyone

        for (Index pos0 = 0; pos0 < n && !active.empty(); pos0 += block) {
          const Index len = std::min<Index>(block, n - pos0);
          const Matrix* items_block;
          if (pos0 == 0) {
            items_block = &list.block;
          } else {
            segment.Resize(len, f);
            for (Index p = 0; p < len; ++p) {
              std::memcpy(
                  segment.Row(p),
                  items_.Row(list.item_ids[static_cast<std::size_t>(pos0 + p)]),
                  static_cast<std::size_t>(f) * sizeof(Real));
            }
            items_block = &segment;
          }
          GemmNT(ConstRowBlock(active_users.data(),
                               static_cast<Index>(active.size()), f),
                 ConstRowBlock(items_block->data(), len, f), &scores);

          std::vector<Index> still_active;
          still_active.reserve(active.size());
          for (std::size_t a = 0; a < active.size(); ++a) {
            const Index r = active[a];
            TopKHeap& heap = heaps[static_cast<std::size_t>(r)];
            const Real* srow = scores.Row(static_cast<Index>(a));
            bool done = false;
            for (Index p = 0; p < len; ++p) {
              if (heap.full() &&
                  list.bounds[static_cast<std::size_t>(pos0 + p)] <
                      heap.MinScore()) {
                done = true;
                break;
              }
              heap.Push(list.item_ids[static_cast<std::size_t>(pos0 + p)],
                        srow[p]);
              ++visited[static_cast<std::size_t>(r)];
            }
            if (!done && pos0 + len < n) still_active.push_back(r);
          }

          if (still_active.size() != active.size()) {
            // Compact the active user rows for the next segment's GEMM.
            Matrix next(static_cast<Index>(still_active.size()), f);
            for (std::size_t a = 0; a < still_active.size(); ++a) {
              std::memcpy(next.Row(static_cast<Index>(a)),
                          normalized.Row(still_active[a]),
                          static_cast<std::size_t>(f) * sizeof(Real));
            }
            active_users = std::move(next);
          }
          active = std::move(still_active);
        }
      }

      for (Index r = 0; r < m; ++r) {
        visited_acc += visited[static_cast<std::size_t>(r)];
        const int64_t out_row = rows[static_cast<std::size_t>(r)];
        TopKEntry* entries = out->Row(static_cast<Index>(out_row));
        heaps[static_cast<std::size_t>(r)].ExtractDescending(entries);
        // Rescale normalized scores to true inner products.
        const Real norm = user_norms[static_cast<std::size_t>(r)];
        for (Index e = 0; e < k; ++e) {
          if (entries[e].item >= 0) entries[e].score *= norm;
        }
      }
    }
    total_visited.fetch_add(visited_acc, std::memory_order_relaxed);
  });

  mean_items_visited_.store(
      static_cast<double>(total_visited.load()) / static_cast<double>(q),
      std::memory_order_relaxed);
  stage_timer_.Add("traversal", traversal_timer.Seconds());
  return Status::OK();
}

Index MaximusSolver::AssignNewUser(const Real* user) const {
  return AssignToNearest(user, clustering_.centroids);
}

Status MaximusSolver::QueryDynamicUser(const Real* user, Index k,
                                       TopKEntry* out_row) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (lists_.empty()) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  const Index n = items_.rows();
  const Index f = items_.cols();
  const Index j = AssignNewUser(user);
  const ClusterList& list = lists_[static_cast<std::size_t>(j)];

  // A dynamic user may sit outside the cluster's theta_b cone.  CBound is
  // Lipschitz in the angle with constant ||i||, so widening the cone by
  // delta inflates every bound by at most max_item_norm * delta; adding
  // that slack to the sorted bounds keeps termination exact.
  const Real cos_uc = CosineSimilarity(user, clustering_.centroids.Row(j), f);
  const Real theta_uc = AngleFromCosine(cos_uc);
  const Real delta =
      std::max(Real{0}, theta_uc - theta_b_[static_cast<std::size_t>(j)]);
  const Real max_norm =
      item_norms_.empty()
          ? Real{0}
          : *std::max_element(item_norms_.begin(), item_norms_.end());
  const Real slack = max_norm * delta;

  const Real user_norm = Nrm2(user, f);
  std::vector<Real> nu(static_cast<std::size_t>(f), 0);
  if (user_norm > 0) {
    for (Index d = 0; d < f; ++d) nu[static_cast<std::size_t>(d)] = user[d] / user_norm;
  }

  TopKHeap heap(k);
  const Index seed = std::min<Index>(k, n);
  for (Index pos = 0; pos < seed; ++pos) {
    const Index id = list.item_ids[static_cast<std::size_t>(pos)];
    heap.Push(id, Dot(nu.data(), items_.Row(id), f));
  }
  for (Index pos = seed; pos < n; ++pos) {
    if (list.bounds[static_cast<std::size_t>(pos)] + slack <
        heap.MinScore()) {
      break;
    }
    const Index id = list.item_ids[static_cast<std::size_t>(pos)];
    heap.Push(id, Dot(nu.data(), items_.Row(id), f));
  }
  heap.ExtractDescending(out_row);
  for (Index e = 0; e < k; ++e) {
    if (out_row[e].item >= 0) out_row[e].score *= user_norm;
  }
  return Status::OK();
}

void AddMaximusSchemaParams(SolverSchema* schema) {
  schema
      ->Int("clusters", MaximusOptions{}.num_clusters,
            "number of k-means user clusters |C|")
      .Int("iterations", MaximusOptions{}.kmeans_iterations,
           "k-means refinement iterations")
      .Int("block_size", MaximusOptions{}.block_size,
           "items covered by the shared per-cluster GEMM "
           "(-1 = auto, 0 = no blocking)")
      .Bool("spherical", MaximusOptions{}.spherical_clustering,
            "use spherical k-means for the user clustering")
      .Int("seed", static_cast<int64_t>(MaximusOptions{}.seed),
           "clustering RNG seed");
}

Status ParseMaximusOptions(const ParamMap& params, MaximusOptions* options) {
  auto clusters = params.GetIndexChecked("clusters");
  MIPS_RETURN_IF_ERROR(clusters.status());
  auto iterations = params.GetIndexChecked("iterations");
  MIPS_RETURN_IF_ERROR(iterations.status());
  auto block_size = params.GetIndexChecked("block_size");
  MIPS_RETURN_IF_ERROR(block_size.status());
  if (*clusters <= 0) {
    return Status::InvalidArgument("clusters must be positive");
  }
  if (*iterations < 0) {
    return Status::InvalidArgument("iterations must be >= 0");
  }
  if (*block_size < -1) {
    return Status::InvalidArgument("block_size must be >= -1");
  }
  options->num_clusters = *clusters;
  options->kmeans_iterations = static_cast<int>(*iterations);
  options->block_size = *block_size;
  options->spherical_clustering = params.GetBool("spherical");
  options->seed = static_cast<uint64_t>(params.GetInt("seed"));
  return Status::OK();
}

namespace {

const SolverRegistrar kMaximusRegistrar(
    [] {
      SolverSchema schema("maximus",
                          "MAXIMUS clustered exact MIPS index (Section III)");
      AddMaximusSchemaParams(&schema);
      return schema;
    }(),
    [](const ParamMap& params) -> StatusOr<std::unique_ptr<MipsSolver>> {
      MaximusOptions options;
      MIPS_RETURN_IF_ERROR(ParseMaximusOptions(params, &options));
      return std::unique_ptr<MipsSolver>(new MaximusSolver(options));
    });

}  // namespace

}  // namespace mips
