#include "solvers/registry.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace mips {

const char* ParamTypeName(ParamType type) {
  switch (type) {
    case ParamType::kInt:
      return "int";
    case ParamType::kReal:
      return "real";
    case ParamType::kBool:
      return "bool";
    case ParamType::kString:
      return "string";
  }
  return "unknown";
}

ParamValue ParamValue::Int(int64_t v) {
  ParamValue value;
  value.type = ParamType::kInt;
  value.int_value = v;
  return value;
}

ParamValue ParamValue::Real(double v) {
  ParamValue value;
  value.type = ParamType::kReal;
  value.real_value = v;
  return value;
}

ParamValue ParamValue::Bool(bool v) {
  ParamValue value;
  value.type = ParamType::kBool;
  value.bool_value = v;
  return value;
}

ParamValue ParamValue::String(std::string v) {
  ParamValue value;
  value.type = ParamType::kString;
  value.string_value = std::move(v);
  return value;
}

std::string ParamValue::ToString() const {
  char buf[64];
  switch (type) {
    case ParamType::kInt:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_value));
      return buf;
    case ParamType::kReal:
      std::snprintf(buf, sizeof(buf), "%g", real_value);
      return buf;
    case ParamType::kBool:
      return bool_value ? "true" : "false";
    case ParamType::kString:
      return string_value;
  }
  return std::string();
}

StatusOr<ParamValue> ParseParamValue(ParamType type, const std::string& text) {
  switch (type) {
    case ParamType::kInt: {
      if (text.empty()) return Status::InvalidArgument("empty int value");
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end != text.c_str() + text.size()) {
        return Status::InvalidArgument("\"" + text + "\" is not an int");
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("\"" + text +
                                       "\" overflows the int range");
      }
      return ParamValue::Int(v);
    }
    case ParamType::kReal: {
      if (text.empty()) return Status::InvalidArgument("empty real value");
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        return Status::InvalidArgument("\"" + text + "\" is not a real");
      }
      return ParamValue::Real(v);
    }
    case ParamType::kBool: {
      if (text == "true" || text == "1" || text == "yes" || text == "on") {
        return ParamValue::Bool(true);
      }
      if (text == "false" || text == "0" || text == "no" || text == "off") {
        return ParamValue::Bool(false);
      }
      return Status::InvalidArgument("\"" + text + "\" is not a bool");
    }
    case ParamType::kString:
      return ParamValue::String(text);
  }
  return Status::Internal("unhandled ParamType");
}

SolverSchema& SolverSchema::Int(std::string name, int64_t def,
                                std::string doc) {
  params_.push_back(
      {std::move(name), ParamType::kInt, ParamValue::Int(def), std::move(doc)});
  return *this;
}

SolverSchema& SolverSchema::Real(std::string name, double def,
                                 std::string doc) {
  params_.push_back({std::move(name), ParamType::kReal, ParamValue::Real(def),
                     std::move(doc)});
  return *this;
}

SolverSchema& SolverSchema::Bool(std::string name, bool def, std::string doc) {
  params_.push_back({std::move(name), ParamType::kBool, ParamValue::Bool(def),
                     std::move(doc)});
  return *this;
}

SolverSchema& SolverSchema::String(std::string name, std::string def,
                                   std::string doc) {
  params_.push_back({std::move(name), ParamType::kString,
                     ParamValue::String(std::move(def)), std::move(doc)});
  return *this;
}

const ParamSpec* SolverSchema::Find(const std::string& key) const {
  for (const ParamSpec& param : params_) {
    if (param.name == key) return &param;
  }
  return nullptr;
}

const ParamValue& ParamMap::At(const std::string& name, ParamType type) const {
  auto it = values_.find(name);
  assert(it != values_.end() && "parameter missing from ParamMap");
  assert(it->second.type == type && "parameter type mismatch");
  (void)type;
  return it->second;
}

int64_t ParamMap::GetInt(const std::string& name) const {
  return At(name, ParamType::kInt).int_value;
}

double ParamMap::GetReal(const std::string& name) const {
  return At(name, ParamType::kReal).real_value;
}

bool ParamMap::GetBool(const std::string& name) const {
  return At(name, ParamType::kBool).bool_value;
}

const std::string& ParamMap::GetString(const std::string& name) const {
  return At(name, ParamType::kString).string_value;
}

StatusOr<Index> ParamMap::GetIndexChecked(const std::string& name) const {
  const int64_t v = GetInt(name);
  if (v < std::numeric_limits<Index>::min() ||
      v > std::numeric_limits<Index>::max()) {
    return Status::InvalidArgument("parameter \"" + name +
                                   "\" is out of 32-bit range");
  }
  return static_cast<Index>(v);
}

void ParamMap::Set(const std::string& name, ParamValue value) {
  values_[name] = std::move(value);
}

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = new SolverRegistry();
  return *registry;
}

void SolverRegistry::Register(SolverSchema schema, SolverFactory factory,
                              bool hidden) {
  MutexLock lock(mu_);
  for (const Entry& entry : entries_) {
    if (entry.schema.name() == schema.name()) {
      std::fprintf(stderr, "duplicate solver registration: %s\n",
                   schema.name().c_str());
      std::abort();
    }
  }
  entries_.push_back({std::move(schema), std::move(factory), hidden});
}

const SolverRegistry::Entry* SolverRegistry::FindEntry(
    const std::string& name) const {
  mu_.AssertHeld();
  for (const Entry& entry : entries_) {
    if (entry.schema.name() == name) return &entry;
  }
  return nullptr;
}

StatusOr<std::unique_ptr<MipsSolver>> SolverRegistry::Create(
    const SolverSpec& spec) const {
  MutexLock lock(mu_);
  const Entry* entry = FindEntry(spec.name);
  if (entry == nullptr) {
    std::vector<std::string> names;
    for (const Entry& e : entries_) {
      if (!e.hidden) names.push_back(e.schema.name());
    }
    std::sort(names.begin(), names.end());
    std::string known;
    for (const std::string& name : names) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("unknown solver: " + spec.name +
                            " (registered: " + known + ")");
  }

  const SolverSchema& schema = entry->schema;
  ParamMap params;
  for (const ParamSpec& param : schema.params()) {
    params.Set(param.name, param.default_value);
  }
  for (const auto& [key, text] : spec.params) {
    const ParamSpec* param = schema.Find(key);
    if (param == nullptr) {
      std::string known;
      for (const ParamSpec& p : schema.params()) {
        if (!known.empty()) known += ", ";
        known += p.name;
      }
      return Status::InvalidArgument(
          "unknown parameter \"" + key + "\" for solver \"" + spec.name +
          "\" (parameters: " + (known.empty() ? "none" : known) + ")");
    }
    auto value = ParseParamValue(param->type, text);
    if (!value.ok()) {
      return Status::InvalidArgument(
          "bad value for parameter \"" + key + "\" of solver \"" + spec.name +
          "\" (expected " + ParamTypeName(param->type) +
          "): " + value.status().message());
    }
    params.Set(key, std::move(*value));
  }
  return entry->factory(params);
}

StatusOr<std::unique_ptr<MipsSolver>> SolverRegistry::Create(
    const std::string& spec_text) const {
  auto spec = ParseSolverSpec(spec_text);
  MIPS_RETURN_IF_ERROR(spec.status());
  return Create(*spec);
}

std::vector<std::string> SolverRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const Entry& entry : entries_) {
    if (!entry.hidden) names.push_back(entry.schema.name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<SolverSchema> SolverRegistry::Describe() const {
  MutexLock lock(mu_);
  std::vector<SolverSchema> schemas;
  for (const Entry& entry : entries_) {
    if (!entry.hidden) schemas.push_back(entry.schema);
  }
  std::sort(schemas.begin(), schemas.end(),
            [](const SolverSchema& a, const SolverSchema& b) {
              return a.name() < b.name();
            });
  return schemas;
}

const SolverSchema* SolverRegistry::FindSchema(const std::string& name) const {
  MutexLock lock(mu_);
  const Entry* entry = FindEntry(name);
  return entry != nullptr ? &entry->schema : nullptr;
}

StatusOr<std::unique_ptr<MipsSolver>> CreateSolverFromSpec(
    const std::string& spec_text) {
  return SolverRegistry::Global().Create(spec_text);
}

std::vector<std::string> RegisteredSolverNames() {
  return SolverRegistry::Global().Names();
}

std::vector<SolverSchema> DescribeSolvers() {
  return SolverRegistry::Global().Describe();
}

std::string SolverHelpText() {
  std::string out;
  for (const SolverSchema& schema : DescribeSolvers()) {
    out += schema.name();
    out += " — ";
    out += schema.summary();
    out += '\n';
    for (const ParamSpec& param : schema.params()) {
      out += "    ";
      out += param.name;
      out += " (";
      out += ParamTypeName(param.type);
      out += ", default ";
      out += param.default_value.ToString();
      out += "): ";
      out += param.doc;
      out += '\n';
    }
  }
  return out;
}

}  // namespace mips
