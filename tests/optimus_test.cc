// Tests for OPTIMUS: correctness of the merged results regardless of the
// choice, sensible report contents, regime-dependent strategy selection
// (BMM on flat norms, index on skewed norms), t-test early stopping, and
// the three-way configuration.

#include <gtest/gtest.h>

#include <memory>

#include "core/maximus.h"
#include "core/optimus.h"
#include "core/registry.h"
#include "solvers/bmm.h"
#include "solvers/fexipro/fexipro.h"
#include "solvers/lemp/lemp.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::ExpectValidTopK;
using ::mips::testing::MakeTestModel;

OptimusOptions SmallSampleOptions() {
  OptimusOptions options;
  // Test models are small; keep the sample floor small so sampling stays a
  // strict subset of the users.
  options.l2_cache_bytes = 16 * 1024;
  options.sample_ratio = 0.02;
  return options;
}

TEST(OptimusTest, RequiresTwoStrategies) {
  const MFModel model = MakeTestModel(50, 50, 8, 3);
  BmmSolver bmm;
  Optimus optimus;
  TopKResult out;
  EXPECT_FALSE(optimus
                   .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                        1, {&bmm}, &out)
                   .ok());
}

TEST(OptimusTest, ResultsExactWhateverTheChoice) {
  const MFModel model = MakeTestModel(400, 200, 10, 5, /*norm_sigma=*/0.5);
  BmmSolver bmm;
  MaximusSolver maximus;
  Optimus optimus(SmallSampleOptions());
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       5, {&bmm, &maximus}, &out, &report)
                  .ok());
  // Compare against an independent brute-force run.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-7);
  ExpectValidTopK(out, AllUsers(400), model, 1e-7);
}

TEST(OptimusTest, ReportIsPopulated) {
  const MFModel model = MakeTestModel(300, 150, 8, 7);
  BmmSolver bmm;
  MaximusSolver maximus;
  Optimus optimus(SmallSampleOptions());
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       3, {&bmm, &maximus}, &out, &report)
                  .ok());
  ASSERT_EQ(report.estimates.size(), 2u);
  EXPECT_TRUE(report.chosen == "bmm" || report.chosen == "maximus");
  EXPECT_GT(report.sample_size, 0);
  EXPECT_LE(report.sample_size, 300);
  for (const auto& est : report.estimates) {
    EXPECT_FALSE(est.name.empty());
    EXPECT_GE(est.construction_seconds, 0.0);
    EXPECT_GT(est.measured_users, 0);
    EXPECT_GT(est.est_per_user_seconds, 0.0);
    EXPECT_GT(est.est_total_seconds, 0.0);
  }
  EXPECT_GT(report.total_seconds, 0.0);
  // The winner must be the strategy with the smallest estimate.
  double best = 1e300;
  std::string best_name;
  for (const auto& est : report.estimates) {
    if (est.est_total_seconds < best) {
      best = est.est_total_seconds;
      best_name = est.name;
    }
  }
  EXPECT_EQ(report.chosen, best_name);
}

TEST(OptimusTest, SampleSizeRespectsCacheFloor) {
  const MFModel model = MakeTestModel(2000, 50, 16, 9);
  BmmSolver bmm;
  MaximusSolver maximus;
  OptimusOptions options;
  options.sample_ratio = 0.0001;            // ratio alone would give 1 user
  options.l2_cache_bytes = 64 * 1024;       // 64 KB / (16*8B) = 512 vectors
  options.max_sample_ratio = 1.0;           // measure the floor itself
  Optimus optimus(options);
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       1, {&bmm, &maximus}, &out, &report)
                  .ok());
  EXPECT_GE(report.sample_size, 512);
}

TEST(OptimusTest, PicksIndexOnPrunableModel) {
  // Strongly skewed item norms + tight user clusters: MAXIMUS visits a
  // handful of items per user while BMM computes all of them.  Enough
  // users that the capped sample still feeds MAXIMUS's per-cluster
  // batching a meaningful batch (a tiny per-cluster GEMM would distort
  // the estimate — the paper's point about batching indexes and samples).
  const MFModel model = MakeTestModel(2000, 3000, 16, 11, /*norm_sigma=*/1.3,
                                      /*dispersion=*/0.15);
  // OPTIMUS itself is not 100% accurate (the paper reports 85-98%), and
  // timing measurements are noisy under suite load; accept the regime
  // conclusion if any of three independently-seeded runs reaches it.
  std::string chosen;
  for (const uint64_t seed : {123u, 456u, 789u}) {
    BmmSolver bmm;
    MaximusSolver maximus;
    OptimusOptions options = SmallSampleOptions();
    options.seed = seed;
    Optimus optimus(options);
    TopKResult out;
    OptimusReport report;
    ASSERT_TRUE(optimus
                    .Run(ConstRowBlock(model.users),
                         ConstRowBlock(model.items), 1, {&bmm, &maximus},
                         &out, &report)
                    .ok());
    chosen = report.chosen;
    if (chosen == "maximus") break;
  }
  EXPECT_EQ(chosen, "maximus");
}

TEST(OptimusTest, PicksBmmOnFlatNorms) {
  // Flat norms and diffuse users: length-based pruning is impossible and
  // the per-item bound arithmetic cannot beat the dense GEMM's throughput.
  const MFModel model = MakeTestModel(400, 2000, 64, 13, /*norm_sigma=*/0.0,
                                      /*dispersion=*/2.0);
  // As above: allow three independently-seeded attempts under suite load.
  std::string chosen;
  for (const uint64_t seed : {123u, 456u, 789u}) {
    BmmSolver bmm;
    FexiproSolver fexipro;  // point-query index: worst case on flat norms
    OptimusOptions options = SmallSampleOptions();
    options.seed = seed;
    Optimus optimus(options);
    TopKResult out;
    OptimusReport report;
    ASSERT_TRUE(optimus
                    .Run(ConstRowBlock(model.users),
                         ConstRowBlock(model.items), 10, {&bmm, &fexipro},
                         &out, &report)
                    .ok());
    chosen = report.chosen;
    if (chosen == "bmm") break;
  }
  EXPECT_EQ(chosen, "bmm");
}

TEST(OptimusTest, TTestEarlyStopsOnClearCutInput) {
  // FEXIPRO per-user times on this input are far from BMM's per-user
  // mean, so the t-test should fire well before the full sample.  The
  // instance is sized so per-user times are tens of microseconds — large
  // relative to timer/scheduler noise, keeping the test stable.
  const MFModel model = MakeTestModel(800, 3000, 64, 15, /*norm_sigma=*/0.0,
                                      /*dispersion=*/0.4);
  BmmSolver bmm;
  FexiproSolver fexipro;
  OptimusOptions options = SmallSampleOptions();
  options.l2_cache_bytes = 64 * 1024;  // 128-user sample: room for the test
  options.enable_ttest = true;
  Optimus optimus(options);
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       1, {&bmm, &fexipro}, &out, &report)
                  .ok());
  const StrategyEstimate* fex = nullptr;
  for (const auto& est : report.estimates) {
    if (est.name == "fexipro-si") fex = &est;
  }
  ASSERT_NE(fex, nullptr);
  EXPECT_TRUE(fex->early_stopped);
  EXPECT_LT(fex->measured_users, report.sample_size);
  // Early stopping must not affect correctness of the merged output.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(1, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-7);
}

TEST(OptimusTest, TTestCanBeDisabled) {
  const MFModel model = MakeTestModel(300, 300, 8, 17, 0.0, 2.0);
  BmmSolver bmm;
  FexiproSolver fexipro;
  OptimusOptions options = SmallSampleOptions();
  options.enable_ttest = false;
  Optimus optimus(options);
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       1, {&bmm, &fexipro}, &out, &report)
                  .ok());
  for (const auto& est : report.estimates) {
    EXPECT_FALSE(est.early_stopped);
    EXPECT_EQ(est.measured_users, report.sample_size);
  }
}

TEST(OptimusTest, ThreeWayOptimization) {
  const MFModel model = MakeTestModel(400, 400, 12, 19, 0.8, 0.3);
  BmmSolver bmm;
  LempSolver lemp;
  MaximusSolver maximus;
  Optimus optimus(SmallSampleOptions());
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       5, {&bmm, &lemp, &maximus}, &out, &report)
                  .ok());
  EXPECT_EQ(report.estimates.size(), 3u);
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-7);
}

TEST(RegistryTest, CreatesEverySolver) {
  for (const std::string& name : AvailableSolvers()) {
    auto solver = CreateSolver(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_EQ((*solver)->name(), name);
  }
  EXPECT_FALSE(CreateSolver("does-not-exist").ok());
}

TEST(RegistryTest, RegistrySolversAreExact) {
  const MFModel model = MakeTestModel(60, 80, 8, 21);
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(4, &expected).ok());
  for (const std::string& name : AvailableSolvers()) {
    auto solver = CreateSolver(name);
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items)).ok());
    TopKResult got;
    ASSERT_TRUE((*solver)->TopKAll(4, &got).ok());
    ExpectSameTopKScores(got, expected, 1e-7);
  }
}

}  // namespace
}  // namespace mips
