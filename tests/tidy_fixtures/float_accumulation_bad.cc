// mips-float-accumulation BAD fixture: raw floating-point reductions
// outside the kernel TUs.  Each must produce a diagnostic.

#include <cstddef>
#include <numeric>
#include <vector>

namespace fixture {

using Real = float;

Real RawDotLoop(const Real* a, const Real* b, int n) {
  Real acc = 0;
  for (int i = 0; i < n; ++i) {
    // A second reduction order for a score-shaped sum: the compiler may
    // vectorise this differently from the dispatched kernels.
    // expect-diagnostic: raw floating-point accumulation
    acc += a[i] * b[i];
  }
  return acc;
}

double RawSumWhileLoop(const std::vector<double>& xs) {
  double sum = 0;
  std::size_t i = 0;
  while (i < xs.size()) {
    // expect-diagnostic: raw floating-point accumulation
    sum += xs[i];
    ++i;
  }
  return sum;
}

double StdAccumulateFold(const std::vector<double>& xs) {
  // expect-diagnostic: std::accumulate/std::reduce
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

}  // namespace fixture
