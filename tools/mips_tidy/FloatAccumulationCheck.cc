#include "FloatAccumulationCheck.h"

#include "MipsTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mips {

namespace {

std::vector<std::string> SplitList(llvm::StringRef Joined) {
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Joined.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  std::vector<std::string> Out;
  for (llvm::StringRef P : Parts) Out.push_back(P.trim().str());
  return Out;
}

/// Nearest enclosing FunctionDecl, walking the parent map (crosses
/// statement and lambda boundaries).
const FunctionDecl *EnclosingFunction(ASTContext &Ctx, const Stmt &S) {
  auto Parents = Ctx.getParents(S);
  while (!Parents.empty()) {
    const auto &Parent = Parents[0];
    if (const auto *FD = Parent.get<FunctionDecl>()) return FD;
    if (const auto *PS = Parent.get<Stmt>()) {
      Parents = Ctx.getParents(*PS);
      continue;
    }
    if (const auto *PD = Parent.get<Decl>()) {
      if (const auto *FD = dyn_cast<FunctionDecl>(PD)) return FD;
      Parents = Ctx.getParents(*PD);
      continue;
    }
    break;
  }
  return nullptr;
}

/// True if `S` sits under a loop with no intervening function, lambda,
/// or local-class boundary — i.e. the loop actually re-executes `S`.  A
/// `+=` inside a lambda (or local class member) that is merely DEFINED
/// inside a loop runs once per call, not once per iteration, and must
/// not be treated as a reduction.
bool InsideLoopSameCallable(ASTContext &Ctx, const Stmt &S) {
  auto Parents = Ctx.getParents(S);
  while (!Parents.empty()) {
    const auto &Parent = Parents[0];
    if (const auto *PS = Parent.get<Stmt>()) {
      if (isa<ForStmt>(PS) || isa<WhileStmt>(PS) || isa<DoStmt>(PS) ||
          isa<CXXForRangeStmt>(PS)) {
        return true;
      }
      if (isa<LambdaExpr>(PS)) return false;
      Parents = Ctx.getParents(*PS);
      continue;
    }
    if (const auto *PD = Parent.get<Decl>()) {
      if (isa<FunctionDecl>(PD) || isa<BlockDecl>(PD) ||
          isa<RecordDecl>(PD)) {
        return false;
      }
      Parents = Ctx.getParents(*PD);
      continue;
    }
    break;
  }
  return false;
}

}  // namespace

FloatAccumulationCheck::FloatAccumulationCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      KernelPathPattern(
          Options.get("KernelPathPattern", "(^|/)(src/linalg|tools)/")),
      KernelPathRegex(KernelPathPattern),
      WhitelistedFunctions(
          Options.get("WhitelistedFunctions", "GemmEquivalentDot")),
      WhitelistedFunctionList(SplitList(WhitelistedFunctions)),
      AllowedCallees(Options.get("AllowedCallees", "Dot;GemmEquivalentDot")),
      AllowedCalleeList(SplitList(AllowedCallees)) {}

void FloatAccumulationCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "KernelPathPattern", KernelPathPattern);
  Options.store(Opts, "WhitelistedFunctions", WhitelistedFunctions);
  Options.store(Opts, "AllowedCallees", AllowedCallees);
}

void FloatAccumulationCheck::registerMatchers(MatchFinder *Finder) {
  // Coarse prefilter only: hasAncestor crosses function and lambda
  // boundaries, so check() re-verifies with InsideLoopSameCallable that
  // the loop actually re-executes the statement.
  const auto InsideLoop = hasAncestor(
      stmt(anyOf(forStmt(), whileStmt(), doStmt(), cxxForRangeStmt())));
  // Builtin compound assignment; overloaded operator+= on class types is
  // not a raw float reduction and is ignored.
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("+=", "-="), InsideLoop).bind("acc"),
      this);
  // std::accumulate / std::reduce ARE reduction loops, wherever they sit.
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::std::accumulate", "::std::reduce"))))
          .bind("fold"),
      this);
}

bool FloatAccumulationCheck::isExemptLocation(const SourceManager &SM,
                                              SourceLocation Loc) const {
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc)) return true;
  const StringRef File = FileNameOf(SM, Loc);
  if (File.empty() || KernelPathRegex.match(File)) return true;
  return HasAllowComment(SM, Loc, "float-accumulation");
}

bool FloatAccumulationCheck::isWhitelistedFunction(
    const MatchFinder::MatchResult &Result, const Stmt *S) const {
  const FunctionDecl *FD = EnclosingFunction(*Result.Context, *S);
  if (FD == nullptr) return false;
  const StringRef Name = FD->getName();
  for (const std::string &W : WhitelistedFunctionList) {
    if (Name == W) return true;
  }
  return false;
}

void FloatAccumulationCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Acc = Result.Nodes.getNodeAs<BinaryOperator>("acc")) {
    const QualType LhsTy = Acc->getLHS()->getType();
    if (LhsTy.isNull() ||
        !LhsTy.getCanonicalType()->isRealFloatingType()) {
      return;
    }
    if (!InsideLoopSameCallable(*Result.Context, *Acc)) return;
    const SourceLocation Loc = SM.getExpansionLoc(Acc->getOperatorLoc());
    if (isExemptLocation(SM, Loc)) return;
    if (isWhitelistedFunction(Result, Acc)) return;
    // `acc += Dot(...)`: the reduction is inside the dispatched kernel;
    // the outer fold's segmentation is fixed source structure.
    if (const auto *Call =
            dyn_cast<CallExpr>(Acc->getRHS()->IgnoreParenImpCasts())) {
      if (const FunctionDecl *Callee = Call->getDirectCallee()) {
        const StringRef Name = Callee->getName();
        for (const std::string &A : AllowedCalleeList) {
          if (Name == A) return;
        }
      }
    }
    diag(Loc,
         "raw floating-point accumulation in a loop introduces a second "
         "reduction order; route the sum through the dispatched kernels "
         "(Dot / GemmNT) or the documented per-K-panel fold, or waive "
         "with '// mips-tidy: allow(float-accumulation): <reason>'");
    return;
  }

  if (const auto *Fold = Result.Nodes.getNodeAs<CallExpr>("fold")) {
    if (!Fold->getType().getCanonicalType()->isRealFloatingType()) return;
    const SourceLocation Loc = SM.getExpansionLoc(Fold->getBeginLoc());
    if (isExemptLocation(SM, Loc)) return;
    if (isWhitelistedFunction(Result, Fold)) return;
    diag(Loc,
         "std::accumulate/std::reduce over floating-point values is an "
         "unpinned reduction order; use the dispatched kernels or waive "
         "with '// mips-tidy: allow(float-accumulation): <reason>'");
  }
}

}  // namespace clang::tidy::mips
