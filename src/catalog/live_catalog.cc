#include "catalog/live_catalog.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <utility>

#include "catalog/segment.h"
#include "linalg/gemm.h"
#include "topk/merge.h"
#include "topk/topk_heap.h"

namespace mips {
namespace {

constexpr TopKEntry kSentinel{-1, -std::numeric_limits<Real>::infinity()};

std::vector<TopKEntry> SentinelRows(Index num_rows, Index k) {
  return std::vector<TopKEntry>(
      static_cast<std::size_t>(num_rows) * static_cast<std::size_t>(k),
      kSentinel);
}

}  // namespace

LiveCatalog::Epoch::~Epoch() {
  if (drain_counter != nullptr) {
    drain_counter->fetch_add(1, std::memory_order_relaxed);
  }
}

bool LiveCatalog::Epoch::Contains(Index id) const {
  return std::binary_search(ids.begin(), ids.end(), id);
}

int64_t LiveCatalog::Epoch::InvalidateDecisions() const {
  if (engine != nullptr) return engine->InvalidateDecisions();
  if (sharded != nullptr) return sharded->InvalidateDecisions();
  return 0;
}

StatusOr<std::unique_ptr<LiveCatalog>> LiveCatalog::Open(
    const ConstRowBlock& users, const ConstRowBlock& items,
    const LiveCatalogOptions& options) {
  if (users.rows() <= 0) {
    return Status::InvalidArgument("user set must be non-empty");
  }
  if (items.rows() > 0 && items.cols() != users.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0, got " +
                                   std::to_string(options.threads));
  }
  if (options.rebuild_threshold < 0) {
    return Status::InvalidArgument(
        "rebuild_threshold must be >= 0, got " +
        std::to_string(options.rebuild_threshold));
  }
  if (options.growth_block < 0) {
    return Status::InvalidArgument("growth_block must be >= 0, got " +
                                   std::to_string(options.growth_block));
  }

  std::unique_ptr<LiveCatalog> catalog(new LiveCatalog());
  catalog->users_ = users;
  catalog->options_ = options;
  if (options.threads > 0 && options.num_shards <= 1) {
    catalog->pool_ = std::make_unique<ThreadPool>(options.threads);
  }

  auto epoch = std::make_shared<Epoch>();
  epoch->items = items;
  epoch->ids.resize(static_cast<std::size_t>(items.rows()));
  std::iota(epoch->ids.begin(), epoch->ids.end(), Index{0});
  if (items.rows() > 0) {
    MIPS_RETURN_IF_ERROR(catalog->OpenEpochEngine(epoch.get()));
  }
  epoch->drain_counter = catalog->epochs_drained_;
  {
    WriterMutexLock lock(catalog->state_mu_);
    catalog->epoch_ = std::move(epoch);
    catalog->next_id_ = items.rows();
    catalog->live_items_ = items.rows();
  }
  return catalog;
}

LiveCatalog::~LiveCatalog() {
  MutexLock lock(rebuild_mu_);
  while (rebuild_running_) rebuild_done_.Wait(lock);
  // The thread already published rebuild_running_ = false under
  // rebuild_mu_ as its last locked act, so joining here cannot deadlock.
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
}

Status LiveCatalog::OpenEpochEngine(Epoch* epoch) {
  if (options_.num_shards <= 1) {
    EngineOptions engine_options = options_.engine;
    engine_options.threads = 0;
    engine_options.shared_pool = pool_.get();
    auto engine = MipsEngine::Open(users_, epoch->items, engine_options);
    MIPS_RETURN_IF_ERROR(engine.status());
    epoch->engine = std::move(*engine);
    return Status::OK();
  }
  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = options_.num_shards;
  sharded_options.sharding = options_.sharding;
  sharded_options.growth_block = options_.growth_block;
  sharded_options.engine = options_.engine;
  sharded_options.threads = options_.threads;
  auto engine = ShardedMipsEngine::Open(users_, epoch->items,
                                        sharded_options);
  MIPS_RETURN_IF_ERROR(engine.status());
  epoch->sharded = std::move(*engine);
  return Status::OK();
}

bool LiveCatalog::IsLive(Index id) const {
  if (active_.row_of_id.find(id) != active_.row_of_id.end()) return true;
  if (active_.dead.find(id) != active_.dead.end()) return false;
  if (sealed_ != nullptr) {
    if (sealed_->row_of_id.find(id) != sealed_->row_of_id.end()) return true;
    if (sealed_->dead.find(id) != sealed_->dead.end()) return false;
  }
  return epoch_->Contains(id);
}

bool LiveCatalog::RebuildDue() const {
  return options_.rebuild_threshold > 0 &&
         active_.mutations >= options_.rebuild_threshold;
}

void LiveCatalog::AppendRow(WriteBuffer* buffer, Index id, const Real* row,
                            Index f) {
  const Index local = buffer->num_rows();
  buffer->data.insert(buffer->data.end(), row,
                      row + static_cast<std::size_t>(f));
  buffer->ids.push_back(id);
  buffer->row_of_id.emplace(id, local);
}

StatusOr<Index> LiveCatalog::Insert(std::span<const Real> vector) {
  const Index f = num_factors();
  if (static_cast<Index>(vector.size()) != f) {
    return Status::InvalidArgument(
        "vector has " + std::to_string(vector.size()) + " factors, want " +
        std::to_string(f));
  }
  Index id = -1;
  bool should_rebuild = false;
  {
    WriterMutexLock lock(state_mu_);
    id = next_id_++;
    AppendRow(&active_, id, vector.data(), f);
    ++active_.mutations;
    ++live_items_;
    should_rebuild = RebuildDue();
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  MaybeStartRebuild(should_rebuild);
  return id;
}

Status LiveCatalog::Update(Index id, std::span<const Real> vector) {
  const Index f = num_factors();
  if (static_cast<Index>(vector.size()) != f) {
    return Status::InvalidArgument(
        "vector has " + std::to_string(vector.size()) + " factors, want " +
        std::to_string(f));
  }
  bool should_rebuild = false;
  {
    WriterMutexLock lock(state_mu_);
    auto it = active_.row_of_id.find(id);
    if (it != active_.row_of_id.end()) {
      // The current version already lives in the active layer: replace
      // it in place (no older version to mask).
      std::memcpy(&active_.data[static_cast<std::size_t>(it->second) *
                                static_cast<std::size_t>(f)],
                  vector.data(), sizeof(Real) * static_cast<std::size_t>(f));
    } else if (IsLive(id)) {
      AppendRow(&active_, id, vector.data(), f);
      active_.dead.insert(id);  // mask the sealed/base version
    } else {
      return Status::NotFound("no live item with id " + std::to_string(id));
    }
    ++active_.mutations;
    should_rebuild = RebuildDue();
  }
  updates_.fetch_add(1, std::memory_order_relaxed);
  MaybeStartRebuild(should_rebuild);
  return Status::OK();
}

Status LiveCatalog::Remove(Index id) {
  bool should_rebuild = false;
  {
    WriterMutexLock lock(state_mu_);
    auto it = active_.row_of_id.find(id);
    if (it != active_.row_of_id.end()) {
      // Tombstone the buffered row in place; the dead-set entry also
      // keeps any sealed/base predecessor masked (the active row may
      // itself have been an update).
      active_.ids[static_cast<std::size_t>(it->second)] = -1;
      active_.row_of_id.erase(it);
      active_.dead.insert(id);
    } else if (IsLive(id)) {
      active_.dead.insert(id);
    } else {
      return Status::NotFound("no live item with id " + std::to_string(id));
    }
    ++active_.mutations;
    --live_items_;
    should_rebuild = RebuildDue();
  }
  removes_.fetch_add(1, std::memory_order_relaxed);
  MaybeStartRebuild(should_rebuild);
  return Status::OK();
}

std::vector<TopKEntry> LiveCatalog::ScanBuffer(
    const WriteBuffer& buffer, const std::unordered_set<Index>* mask,
    const Real* vectors, Index num_rows, Index f, Index k) {
  std::vector<TopKEntry> rows = SentinelRows(num_rows, k);
  const Index n = buffer.num_rows();
  if (n == 0) return rows;
  // Scores come from the serial blocked GEMM: its per-element K-panel
  // fma fold depends only on the two vectors, so a buffered item's score
  // here is bit-for-bit the score any solver would report for it after a
  // rebuild folds it into the base (and no pool is involved, so the scan
  // is safe under the caller's shared lock).
  Matrix scores(num_rows, n);
  GemmNT(vectors, num_rows, buffer.data.data(), n, f, /*alpha=*/1,
         /*beta=*/0, scores.data(), scores.cols());
  TopKHeap heap(k);
  for (Index q = 0; q < num_rows; ++q) {
    const Real* score_row = scores.Row(q);
    for (Index r = 0; r < n; ++r) {
      const Index id = buffer.ids[static_cast<std::size_t>(r)];
      if (id < 0) continue;  // tombstoned in place
      if (mask != nullptr && mask->find(id) != mask->end()) continue;
      if (!heap.WouldAccept(score_row[r])) continue;
      heap.Push(id, score_row[r]);
    }
    heap.ExtractDescending(&rows[static_cast<std::size_t>(q) *
                                 static_cast<std::size_t>(k)]);
  }
  return rows;
}

Status LiveCatalog::Query(Index k, std::span<const Index> user_ids,
                          const Real* vectors, Index num_rows,
                          TopKResult* out) {
  const Index f = num_factors();
  std::shared_ptr<Epoch> epoch;
  std::shared_ptr<const WriteBuffer> sealed;
  std::vector<TopKEntry> active_rows;
  std::unordered_set<Index> active_dead;
  {
    // The only lock a query takes: pin the epoch and scan the mutable
    // active layer while mutators are held off.  Everything after —
    // sealed scan, base query, merge — runs on immutable state.
    ReaderMutexLock lock(state_mu_);
    epoch = epoch_;
    sealed = sealed_;
    active_rows = ScanBuffer(active_, /*mask=*/nullptr, vectors, num_rows,
                             f, k);
    active_dead = active_.dead;
  }

  // The sealed layer is immutable; only its masking set (the active
  // layer's dead ids, frozen above) needed the lock.
  std::vector<TopKEntry> sealed_rows =
      sealed != nullptr
          ? ScanBuffer(*sealed, &active_dead, vectors, num_rows, f, k)
          : SentinelRows(num_rows, k);

  // Base rows are masked by every newer layer.  Over-query by the dead
  // count: at most |dead_union| base rows can be filtered out, so the
  // top-(k + D) base row still contains the top-k live base entries.
  std::unordered_set<Index> dead_union = std::move(active_dead);
  if (sealed != nullptr) {
    dead_union.insert(sealed->dead.begin(), sealed->dead.end());
  }
  std::vector<TopKEntry> base_rows = SentinelRows(num_rows, k);
  if (epoch->has_engine()) {
    const Index k_base = k + static_cast<Index>(dead_union.size());
    TopKResult raw;
    Status status;
    if (!user_ids.empty()) {
      status = epoch->engine != nullptr
                   ? epoch->engine->TopK(k_base, user_ids, &raw)
                   : epoch->sharded->TopK(k_base, user_ids, &raw);
    } else {
      status = epoch->engine != nullptr
                   ? epoch->engine->TopKNewUsers(vectors, num_rows, k_base,
                                                 &raw)
                   : epoch->sharded->TopKNewUsers(vectors, num_rows, k_base,
                                                  &raw);
    }
    MIPS_RETURN_IF_ERROR(status);
    for (Index q = 0; q < num_rows; ++q) {
      const TopKEntry* in = raw.Row(q);
      TopKEntry* dst = &base_rows[static_cast<std::size_t>(q) *
                                  static_cast<std::size_t>(k)];
      Index taken = 0;
      for (Index e = 0; e < k_base && taken < k; ++e) {
        if (in[e].item < 0) break;  // sentinel tail
        // Local row -> catalog id.  The map is strictly increasing, so
        // BetterEntry's id tie-break survives the remap unchanged.
        const Index id = epoch->ids[static_cast<std::size_t>(in[e].item)];
        if (dead_union.find(id) != dead_union.end()) continue;
        dst[taken++] = {id, in[e].score};
      }
    }
  }

  *out = TopKResult(num_rows, k);
  for (Index q = 0; q < num_rows; ++q) {
    const std::size_t offset =
        static_cast<std::size_t>(q) * static_cast<std::size_t>(k);
    const TopKEntry* layer_rows[3] = {&base_rows[offset],
                                      &sealed_rows[offset],
                                      &active_rows[offset]};
    MergeTopKRows(layer_rows, k, k, out->Row(q));
  }
  return Status::OK();
}

Status LiveCatalog::TopK(Index k, std::span<const Index> user_ids,
                         TopKResult* out) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  for (const Index id : user_ids) {
    if (id < 0 || id >= users_.rows()) {
      return Status::OutOfRange(
          "user id out of range: " + std::to_string(id) + " (catalog has " +
          std::to_string(users_.rows()) + " users)");
    }
  }
  const Index num_rows = static_cast<Index>(user_ids.size());
  if (num_rows == 0) {
    *out = TopKResult(0, k);
    return Status::OK();
  }
  // The side scans need the user vectors contiguously; the base engine
  // still serves the ids through its known-user path.
  const Index f = num_factors();
  Matrix gathered(num_rows, f);
  for (Index r = 0; r < num_rows; ++r) {
    std::memcpy(gathered.Row(r), users_.Row(user_ids[static_cast<std::size_t>(r)]),
                sizeof(Real) * static_cast<std::size_t>(f));
  }
  return Query(k, user_ids, gathered.data(), num_rows, out);
}

Status LiveCatalog::TopKAll(Index k, TopKResult* out) {
  std::vector<Index> ids(static_cast<std::size_t>(users_.rows()));
  std::iota(ids.begin(), ids.end(), Index{0});
  return TopK(k, ids, out);
}

Status LiveCatalog::TopKNewUser(const Real* user_vector, Index k,
                                TopKEntry* out_row) {
  TopKResult one;
  MIPS_RETURN_IF_ERROR(TopKNewUsers(user_vector, 1, k, &one));
  const TopKEntry* row = one.Row(0);
  for (Index e = 0; e < k; ++e) out_row[e] = row[e];
  return Status::OK();
}

Status LiveCatalog::TopKNewUsers(const Real* user_vectors, Index num_rows,
                                 Index k, TopKResult* out) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  if (user_vectors == nullptr) {
    return Status::InvalidArgument("user_vectors must not be null");
  }
  if (num_rows <= 0) {
    return Status::InvalidArgument("num_rows must be positive, got " +
                                   std::to_string(num_rows));
  }
  return Query(k, {}, user_vectors, num_rows, out);
}

void LiveCatalog::MaybeStartRebuild(bool should_rebuild) {
  if (!should_rebuild) return;
  MutexLock lock(rebuild_mu_);
  if (rebuild_running_) return;
  (void)StartRebuildLocked();
}

bool LiveCatalog::StartRebuildLocked() {
  if (rebuild_running_) return true;
  // A finished thread parks joinable until the next start (or the dtor).
  if (rebuild_thread_.joinable()) rebuild_thread_.join();

  std::shared_ptr<Epoch> base;
  std::shared_ptr<const WriteBuffer> sealed;
  {
    WriterMutexLock lock(state_mu_);
    if (sealed_ == nullptr) {
      if (active_.ids.empty() && active_.dead.empty()) {
        return false;  // nothing to fold
      }
      // Seal: the active layer freezes (rebuild input), a fresh active
      // layer keeps absorbing mutations during the rebuild.  A sealed
      // layer left over from a FAILED rebuild is reused as-is instead.
      sealed_ = std::make_shared<const WriteBuffer>(std::move(active_));
      active_ = WriteBuffer{};
    }
    base = epoch_;
    sealed = sealed_;
  }
  rebuild_running_ = true;
  rebuilds_started_.fetch_add(1, std::memory_order_relaxed);
  // A dedicated thread, not the engine pool: the fold ends in
  // MipsEngine::Open, whose candidate builds WAIT on the pool — waiting
  // on a pool from inside one of its own tasks deadlocks.
  rebuild_thread_ =
      std::thread([this, base = std::move(base),
                   sealed = std::move(sealed)]() mutable {
        RebuildAndInstall(std::move(base), std::move(sealed));
      });
  return true;
}

void LiveCatalog::RebuildAndInstall(
    std::shared_ptr<Epoch> base, std::shared_ptr<const WriteBuffer> sealed) {
  auto built = BuildEpoch(*base, *sealed);
  base.reset();
  sealed.reset();
  const Status status = built.status();
  if (status.ok()) InstallEpoch(std::move(*built));
  MutexLock lock(rebuild_mu_);
  last_rebuild_error_ = status;
  rebuild_running_ = false;
  rebuild_done_.NotifyAll();
}

StatusOr<std::shared_ptr<LiveCatalog::Epoch>> LiveCatalog::BuildEpoch(
    const Epoch& base, const WriteBuffer& sealed) {
  const Index f = num_factors();

  // Sealed survivors, ascending id (append order is NOT id order once
  // updates interleave with inserts).
  std::vector<std::pair<Index, Index>> sealed_live;  // (id, buffer row)
  for (Index r = 0; r < sealed.num_rows(); ++r) {
    const Index id = sealed.ids[static_cast<std::size_t>(r)];
    if (id >= 0) sealed_live.emplace_back(id, r);
  }
  std::sort(sealed_live.begin(), sealed_live.end());

  Index base_live = 0;
  for (const Index id : base.ids) {
    if (sealed.dead.find(id) == sealed.dead.end()) ++base_live;
  }

  auto next = std::make_shared<Epoch>();
  const Index n = base_live + static_cast<Index>(sealed_live.size());
  next->owned.Resize(n, f);
  next->ids.reserve(static_cast<std::size_t>(n));
  // Two-pointer merge by id.  Surviving base ids and sealed ids are
  // disjoint (an update always dead-marks its predecessor), so the
  // merged id sequence is strictly increasing — the invariant the
  // tie-order remap depends on.
  std::size_t bi = 0;
  std::size_t si = 0;
  Index row = 0;
  const std::size_t row_bytes = sizeof(Real) * static_cast<std::size_t>(f);
  while (bi < base.ids.size() || si < sealed_live.size()) {
    if (bi < base.ids.size() &&
        sealed.dead.find(base.ids[bi]) != sealed.dead.end()) {
      ++bi;  // superseded or removed
      continue;
    }
    const bool take_base =
        bi < base.ids.size() &&
        (si >= sealed_live.size() || base.ids[bi] < sealed_live[si].first);
    if (take_base) {
      next->ids.push_back(base.ids[bi]);
      std::memcpy(next->owned.Row(row), base.items.Row(static_cast<Index>(bi)),
                  row_bytes);
      ++bi;
    } else {
      next->ids.push_back(sealed_live[si].first);
      std::memcpy(next->owned.Row(row),
                  &sealed.data[static_cast<std::size_t>(sealed_live[si].second) *
                               static_cast<std::size_t>(f)],
                  row_bytes);
      ++si;
    }
    ++row;
  }

  next->items = ConstRowBlock(next->owned);
  if (n > 0) {
    MIPS_RETURN_IF_ERROR(OpenEpochEngine(next.get()));
  }
  next->drain_counter = epochs_drained_;
  return next;
}

void LiveCatalog::InstallEpoch(std::shared_ptr<Epoch> next) {
  std::shared_ptr<Epoch> old;
  {
    WriterMutexLock lock(state_mu_);
    old = std::move(epoch_);
    epoch_ = std::move(next);
    sealed_.reset();
  }
  catalog_epoch_.fetch_add(1, std::memory_order_relaxed);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  if (old != nullptr) {
    // Generation-bump the retiring engine's decision cache (kernel
    // install epoch idiom): any query still draining on the old epoch
    // re-decides rather than serving a winner measured on dead
    // statistics.
    decisions_retired_.fetch_add(old->InvalidateDecisions(),
                                 std::memory_order_relaxed);
  }
  // `old` drops here; whichever thread holds the last in-flight
  // reference destroys the retired epoch and bumps epochs_drained_.
}

Status LiveCatalog::Rebuild() {
  MutexLock lock(rebuild_mu_);
  if (!rebuild_running_) {
    if (!StartRebuildLocked()) return Status::OK();  // nothing buffered
  }
  while (rebuild_running_) rebuild_done_.Wait(lock);
  return last_rebuild_error_;
}

Status LiveCatalog::SaveSegment(const std::string& path) const {
  const Index f = num_factors();
  Matrix snapshot;
  {
    ReaderMutexLock lock(state_mu_);
    std::vector<std::pair<Index, const Real*>> rows;
    const std::size_t base_rows = epoch_->ids.size();
    for (std::size_t r = 0; r < base_rows; ++r) {
      const Index id = epoch_->ids[r];
      if (active_.dead.find(id) != active_.dead.end()) continue;
      if (sealed_ != nullptr &&
          sealed_->dead.find(id) != sealed_->dead.end()) {
        continue;
      }
      rows.emplace_back(id, epoch_->items.Row(static_cast<Index>(r)));
    }
    if (sealed_ != nullptr) {
      for (Index r = 0; r < sealed_->num_rows(); ++r) {
        const Index id = sealed_->ids[static_cast<std::size_t>(r)];
        if (id < 0) continue;
        if (active_.dead.find(id) != active_.dead.end()) continue;
        rows.emplace_back(id, &sealed_->data[static_cast<std::size_t>(r) *
                                             static_cast<std::size_t>(f)]);
      }
    }
    for (Index r = 0; r < active_.num_rows(); ++r) {
      const Index id = active_.ids[static_cast<std::size_t>(r)];
      if (id < 0) continue;
      rows.emplace_back(id, &active_.data[static_cast<std::size_t>(r) *
                                          static_cast<std::size_t>(f)]);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    snapshot.Resize(static_cast<Index>(rows.size()), f);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::memcpy(snapshot.Row(static_cast<Index>(r)), rows[r].second,
                  sizeof(Real) * static_cast<std::size_t>(f));
    }
  }
  if (snapshot.rows() == 0) {
    return Status::InvalidArgument("cannot save an empty catalog");
  }
  return CatalogSegment::Write(ConstRowBlock(snapshot), path);
}

Index LiveCatalog::num_items() const {
  ReaderMutexLock lock(state_mu_);
  return live_items_;
}

LiveCatalog::Stats LiveCatalog::stats() const {
  Stats snapshot;
  snapshot.catalog_epoch = catalog_epoch_.load(std::memory_order_relaxed);
  snapshot.inserts = inserts_.load(std::memory_order_relaxed);
  snapshot.updates = updates_.load(std::memory_order_relaxed);
  snapshot.removes = removes_.load(std::memory_order_relaxed);
  snapshot.rebuilds_started =
      rebuilds_started_.load(std::memory_order_relaxed);
  snapshot.swaps = swaps_.load(std::memory_order_relaxed);
  snapshot.epochs_drained = epochs_drained_->load(std::memory_order_relaxed);
  snapshot.decisions_retired =
      decisions_retired_.load(std::memory_order_relaxed);
  {
    ReaderMutexLock lock(state_mu_);
    snapshot.live_items = live_items_;
    snapshot.base_items = epoch_->items.rows();
    snapshot.buffered_rows =
        active_.num_rows() +
        (sealed_ != nullptr ? sealed_->num_rows() : Index{0});
    std::unordered_set<Index> dead_union = active_.dead;
    if (sealed_ != nullptr) {
      dead_union.insert(sealed_->dead.begin(), sealed_->dead.end());
    }
    snapshot.dead_masked = static_cast<Index>(dead_union.size());
    if (epoch_->engine != nullptr) {
      snapshot.base_strategy = epoch_->engine->strategy();
    } else if (epoch_->sharded != nullptr) {
      for (int s = 0; s < epoch_->sharded->num_shards(); ++s) {
        if (!snapshot.base_strategy.empty()) snapshot.base_strategy += ",";
        snapshot.base_strategy += epoch_->sharded->shard_strategy(s);
      }
    }
  }
  {
    MutexLock lock(rebuild_mu_);
    snapshot.rebuild_running = rebuild_running_;
  }
  return snapshot;
}

}  // namespace mips
