// CatalogSegment: mmap-backed persistence for an item catalog.
//
// A segment file holds one row-major item matrix plus its per-row
// Euclidean norms behind a small versioned header.  Opening a segment
// memory-maps it read-only and hands back ConstRowBlock / span views, so
// an engine can Open() directly over the mapped pages: restart cost is
// one mmap instead of a full read (the kernel pages vectors in on first
// touch), and a catalog larger than RAM is served through the page
// cache instead of an up-front allocation.
//
// On-disk layout (little-endian, offsets in bytes):
//
//   0   magic      "MIPSSEG1"                                  (8 bytes)
//   8   version    uint32 (currently 1)
//   12  header_bytes uint32 (64; payload starts here)
//   16  rows       int64
//   24  cols       int64
//   32  payload_bytes int64  (= rows*cols*8 + rows*8, self-check)
//   40  checksum   uint64 (FNV-1a over bytes [0, 40))
//   48  reserved   zeros to byte 64
//   64  items      rows*cols doubles, row-major
//   64 + rows*cols*8  norms   rows doubles (||row||_2, computed with the
//       dispatched Dot kernel — bit-identical across ISAs, so a segment
//       written on one machine byte-matches one written on another)
//
// Durability: Write() streams to a sibling temp file, fsyncs it, and
// atomically rename(2)s it over `path` (then fsyncs the directory), so a
// crash leaves either the old file or the new one — never a torn
// segment at `path`.  Open() still defends against truncated or
// corrupted files (partial copies, disk faults): any header/size/
// checksum mismatch is a clean InvalidArgument, never UB.

#ifndef MIPS_CATALOG_SEGMENT_H_
#define MIPS_CATALOG_SEGMENT_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "linalg/matrix.h"

namespace mips {

/// Read-only memory-mapped view of one persisted item catalog; see the
/// file comment for the format.  Move-only (owns the mapping).
class CatalogSegment {
 public:
  /// Writes `items` (and its freshly computed row norms) to `path` via
  /// the atomic temp-file + rename protocol.  IOError on any filesystem
  /// failure; `path`'s previous content is untouched on error.
  static Status Write(const ConstRowBlock& items, const std::string& path);

  /// Maps `path` read-only.  IOError on open/map failures;
  /// InvalidArgument on bad magic, unsupported version, dimension /
  /// size / checksum mismatches (torn or corrupted files included).
  static StatusOr<CatalogSegment> Open(const std::string& path);

  CatalogSegment(const CatalogSegment&) = delete;
  CatalogSegment& operator=(const CatalogSegment&) = delete;
  CatalogSegment(CatalogSegment&& other) noexcept { MoveFrom(other); }
  CatalogSegment& operator=(CatalogSegment&& other) noexcept {
    if (this != &other) {
      Unmap();
      MoveFrom(other);
    }
    return *this;
  }
  ~CatalogSegment() { Unmap(); }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  /// View of the mapped item matrix.  Valid while this segment is alive.
  ConstRowBlock items() const { return ConstRowBlock(items_, rows_, cols_); }
  /// Per-row Euclidean norms, parallel to items().
  std::span<const Real> norms() const {
    return {norms_, static_cast<std::size_t>(rows_)};
  }

 private:
  CatalogSegment() = default;
  void Unmap();
  void MoveFrom(CatalogSegment& other);

  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  const Real* items_ = nullptr;
  const Real* norms_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
};

}  // namespace mips

#endif  // MIPS_CATALOG_SEGMENT_H_
