// Lesion study: k-means vs spherical k-means inside MAXIMUS
// (Section III-A).
//
// Paper claims to reproduce: spherical clustering minimizes the
// user-centroid angle theta_uc directly, but plain k-means gets within
// ~7% of its angular quality while running 2-3x faster, for a ~5-10%
// end-to-end win — which is why MAXIMUS defaults to k-means.

#include <cstdio>

#include "bench_util.h"
#include "cluster/spherical.h"
#include "common/timer.h"
#include "core/maximus.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);

  std::printf("== Lesion: k-means vs spherical clustering in MAXIMUS "
              "(K=1) ==\n");
  TablePrinter table({"Model", "Clustering", "Cluster time",
                      "Mean theta_uc", "theta ratio", "End-to-end",
                      "w-bar"});
  for (const char* id : {"netflix-nomad-50", "r2-nomad-50", "kdd-ref-51"}) {
    auto preset = FindModelPreset(id);
    preset.status().CheckOK();
    const MFModel model = MakeBenchModel(*preset, config);

    // Measure angular quality of each clustering directly.
    KMeansOptions kopts;
    kopts.num_clusters = 8;
    kopts.max_iterations = 3;
    WallTimer timer;
    Clustering km;
    KMeans(ConstRowBlock(model.users), kopts, &km).CheckOK();
    const double kmeans_time = timer.Seconds();
    timer.Restart();
    Clustering sph;
    SphericalKMeans(ConstRowBlock(model.users), kopts, &sph).CheckOK();
    const double spherical_time = timer.Seconds();
    const AngularQuality q_km =
        MeasureAngularQuality(ConstRowBlock(model.users), km);
    const AngularQuality q_sph =
        MeasureAngularQuality(ConstRowBlock(model.users), sph);

    for (const bool spherical : {false, true}) {
      MaximusOptions options;
      options.spherical_clustering = spherical;
      MaximusSolver maximus(options);
      const EndToEndTiming t = TimeEndToEnd(&maximus, model, /*k=*/1);
      const AngularQuality& q = spherical ? q_sph : q_km;
      table.AddRow(
          {preset->id, spherical ? "spherical" : "k-means",
           FormatSeconds(spherical ? spherical_time : kmeans_time),
           Fmt(q.mean_angle, 4),
           Fmt(q_sph.mean_angle > 0 ? q.mean_angle / q_sph.mean_angle : 1.0,
               3),
           FormatSeconds(t.total()), Fmt(maximus.mean_items_visited(), 1)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: k-means theta_uc within ~7%% of spherical while "
      "clustering 2-3x faster; end-to-end difference within 5-10%%.\n");
  return 0;
}
