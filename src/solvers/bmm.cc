#include "solvers/bmm.h"

#include <algorithm>
#include <memory>

#include "linalg/gemm.h"
#include "solvers/registry.h"
#include "topk/topk_block.h"

namespace mips {
namespace {

// Below this many queried users per pool worker, user partitioning leaves
// workers starved and the GEMM macro-panels are parallelized instead.
constexpr Index kMinUsersPerThread = 128;

}  // namespace

Status BmmSolver::Prepare(const ConstRowBlock& users,
                          const ConstRowBlock& items) {
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (items.rows() <= 0) {
    return Status::InvalidArgument("item set is empty");
  }
  users_ = users;
  items_ = items;
  prepared_users_ = users.rows();

  if (options_.batch_rows > 0) {
    resolved_batch_rows_ = options_.batch_rows;
  } else {
    const std::size_t row_bytes =
        static_cast<std::size_t>(items.rows()) * sizeof(Real);
    const std::size_t rows = options_.score_block_bytes / std::max<std::size_t>(
                                                              1, row_bytes);
    // Lower clamp 128: the GEMM needs enough rows per batch to amortize
    // packing the full item panel even when one score row is very wide
    // (GloVe-scale catalogs).
    resolved_batch_rows_ = static_cast<Index>(
        std::clamp<std::size_t>(rows, 128, 8192));
  }
  return Status::OK();
}

Status BmmSolver::TopKForUsers(Index k, std::span<const Index> user_ids,
                               TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (items_.rows() <= 0) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  const Index q = static_cast<Index>(user_ids.size());
  *out = TopKResult(q, k);
  const Index n = items_.rows();
  const Index f = items_.cols();
  const Index batch = resolved_batch_rows_;

  // Two parallel regimes (both exact, both bit-identical to the serial
  // path).  With enough users per worker, the paper's Figure 6 strategy —
  // static user partitioning, serial GEMM per chunk — amortizes best.
  // Below that, a small mini-batch against a wide item set would leave
  // all but one worker idle, so instead the GEMM itself fans its macro-
  // panels out across the pool and the top-K pass partitions the rows.
  const bool partition_users =
      pool_ == nullptr ||
      q >= static_cast<Index>(pool_->num_threads()) * kMinUsersPerThread;
  if (partition_users) {
    ParallelFor(pool_, q, [&](int64_t begin, int64_t end, int /*chunk*/) {
      Matrix scores(std::min<Index>(batch, static_cast<Index>(end - begin)),
                    n);
      for (int64_t b = begin; b < end; b += batch) {
        const Index m = static_cast<Index>(std::min<int64_t>(batch, end - b));
        // Gather this batch's user rows so the GEMM sees a contiguous A.
        const Matrix block = GatherRows(
            users_, user_ids.subspan(static_cast<std::size_t>(b),
                                     static_cast<std::size_t>(m)));
        GemmNT(block.data(), m, items_.data(), n, f, /*alpha=*/1, /*beta=*/0,
               scores.data(), scores.cols());
        TopKFromScoreBlock(scores.data(), m, n, scores.cols(), k,
                           /*item_offset=*/0, /*item_ids=*/nullptr, out,
                           static_cast<Index>(b));
      }
    });
    return Status::OK();
  }

  Matrix scores(std::min<Index>(batch, q), n);
  for (Index b = 0; b < q; b += batch) {
    const Index m = std::min<Index>(batch, q - b);
    const Matrix block = GatherRows(
        users_, user_ids.subspan(static_cast<std::size_t>(b),
                                 static_cast<std::size_t>(m)));
    GemmNT(block.data(), m, items_.data(), n, f, /*alpha=*/1, /*beta=*/0,
           scores.data(), scores.cols(), pool_);
    ParallelFor(pool_, m, [&](int64_t begin, int64_t end, int /*chunk*/) {
      TopKFromScoreBlock(
          scores.data() + static_cast<std::size_t>(begin) * scores.cols(),
          static_cast<Index>(end - begin), n, scores.cols(), k,
          /*item_offset=*/0, /*item_ids=*/nullptr, out,
          b + static_cast<Index>(begin));
    });
  }
  return Status::OK();
}

namespace {

const SolverRegistrar kBmmRegistrar(
    SolverSchema("bmm", "blocked-GEMM brute force (Section II-B)")
        .Int("batch_rows", BmmOptions{}.batch_rows,
             "users per GEMM batch (0 = auto from score_block_bytes)")
        .Int("score_block_bytes",
             static_cast<int64_t>(BmmOptions{}.score_block_bytes),
             "byte budget for one batch's score block when batch_rows = 0"),
    [](const ParamMap& params) -> StatusOr<std::unique_ptr<MipsSolver>> {
      BmmOptions options;
      auto batch_rows = params.GetIndexChecked("batch_rows");
      MIPS_RETURN_IF_ERROR(batch_rows.status());
      const int64_t block_bytes = params.GetInt("score_block_bytes");
      if (*batch_rows < 0) {
        return Status::InvalidArgument("batch_rows must be >= 0");
      }
      if (block_bytes <= 0) {
        return Status::InvalidArgument("score_block_bytes must be positive");
      }
      options.batch_rows = *batch_rows;
      options.score_block_bytes = static_cast<std::size_t>(block_bytes);
      return std::unique_ptr<MipsSolver>(new BmmSolver(options));
    });

}  // namespace

}  // namespace mips
