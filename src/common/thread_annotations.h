// Clang thread-safety-analysis annotation macros.
//
// These macros attach the compile-time locking contract to the types in
// common/mutex.h and to the guarded members of every concurrent class in
// the library (engine decision cache, batching queue, thread pool, ...).
// Under Clang with -Wthread-safety the analysis then proves, per
// translation unit, that every read/write of a GUARDED_BY member happens
// with its capability held — a future refactor that touches guarded
// state without its lock fails the clang CI leg instead of becoming a
// once-in-a-blue-moon TSan report.  Under GCC (and any compiler without
// the attribute) every macro expands to nothing, so the annotations cost
// zero and the gcc legs are unaffected.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// (the macro set below is the documented idiom, unprefixed like the
// upstream example header; this library has no colliding names).

#ifndef MIPS_COMMON_THREAD_ANNOTATIONS_H_
#define MIPS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define MIPS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MIPS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off-Clang
#endif

/// Marks a type as a lock-like capability ("mutex", "shared_mutex").
#define CAPABILITY(x) MIPS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY MIPS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member that may only be accessed with the given capability held.
#define GUARDED_BY(x) MIPS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define PT_GUARDED_BY(x) MIPS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the capability held exclusively (caller locks).
#define REQUIRES(...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared.
#define REQUIRES_SHARED(...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and holds it on return.
#define ACQUIRE(...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and holds it on return.
#define ACQUIRE_SHARED(...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or shared).
#define RELEASE(...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Release regardless of how the capability was acquired (exclusive OR
/// shared) — the right annotation for a scoped reader-lock destructor.
#define RELEASE_GENERIC(...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; holds the capability iff it returned `b`.
#define TRY_ACQUIRE(b, ...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// Function asserts at runtime that the capability is held; the analysis
/// then treats it as held for the rest of the caller's scope.  This is
/// the bridge between the static contract and the dcheck builds:
/// Mutex::AssertHeld() carries this attribute and aborts under
/// MIPS_ENABLE_DCHECKS when the calling thread does not own the lock, so
/// a REQUIRES(mu_) body can open with mu_.AssertHeld() and have the same
/// contract enforced both at compile time (clang leg) and at run time
/// (sanitizer legs).
#define ASSERT_CAPABILITY(x) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Shared-capability form of ASSERT_CAPABILITY (reader locks).
#define ASSERT_SHARED_CAPABILITY(x) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

/// Function must NOT be called with the capability held (deadlock guard
/// for public entry points of self-locking classes).
#define EXCLUDES(...) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function whose locking is
/// correct but outside what the analysis can express.  Every use must
/// carry a comment saying why.  The library currently has ZERO uses —
/// keep it that way: before reaching for this, try restructuring so the
/// analysis can see the lock, or AssertHeld()/ASSERT_CAPABILITY, which
/// keeps the contract checked at runtime instead of abandoning it.
#define NO_THREAD_SAFETY_ANALYSIS \
  MIPS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // MIPS_COMMON_THREAD_ANNOTATIONS_H_
