// Blocked matrix multiply (BMM) brute force — Section II-B.
//
// Users are scored in row batches: one blocked GEMM per batch produces a
// dense (batch x |I|) score block, and each row is reduced to its top K
// with a bounded min-heap.  All the hardware efficiency lives in the GEMM
// (src/linalg/gemm.cc); the heap pass is the K-dependent tail the paper
// notes ("the runtime for blocked matrix multiply varies with K").
//
// With a thread pool, large query batches are statically partitioned
// across users (the paper's Figure 6 strategy); small batches instead
// parallelize the GEMM macro-panels themselves so a handful of users
// against a wide item set still uses every core.  Both paths produce
// results bit-identical to the single-threaded solver.

#ifndef MIPS_SOLVERS_BMM_H_
#define MIPS_SOLVERS_BMM_H_

#include "solvers/solver.h"

namespace mips {

/// Options for the BMM solver.
struct BmmOptions {
  /// Users scored per GEMM batch.  0 = pick automatically from the score
  /// block memory budget below.
  Index batch_rows = 0;
  /// Budget for one batch's score block when batch_rows == 0.  The paper
  /// sizes batches to available memory; empirically a last-level-cache-
  /// sized block is faster here because the top-K pass re-reads it (see
  /// EXPERIMENTS.md), so the default targets ~16 MB.
  std::size_t score_block_bytes = 16ull << 20;
};

/// Hardware-efficient brute force via blocked GEMM + per-row top-K.
class BmmSolver : public MipsSolver {
 public:
  explicit BmmSolver(const BmmOptions& options = {}) : options_(options) {}

  std::string name() const override { return "bmm"; }
  bool batches_users() const override { return true; }

  Status Prepare(const ConstRowBlock& users,
                 const ConstRowBlock& items) override;
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) override;

  /// Resolved batch size (after Prepare).
  Index batch_rows() const { return resolved_batch_rows_; }

 private:
  BmmOptions options_;
  ConstRowBlock users_;
  ConstRowBlock items_;
  Index resolved_batch_rows_ = 0;
};

}  // namespace mips

#endif  // MIPS_SOLVERS_BMM_H_
