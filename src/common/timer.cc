#include "common/timer.h"

namespace mips {

void StageTimer::Add(const std::string& name, double seconds) {
  for (auto& [stage, total] : stages_) {
    if (stage == name) {
      total += seconds;
      return;
    }
  }
  stages_.emplace_back(name, seconds);
}

double StageTimer::Get(const std::string& name) const {
  for (const auto& [stage, total] : stages_) {
    if (stage == name) return total;
  }
  return 0.0;
}

double StageTimer::Total() const {
  double sum = 0.0;
  for (const auto& [stage, total] : stages_) sum += total;
  return sum;
}

}  // namespace mips
