// Tests for OPTIMUS: correctness of the merged results regardless of the
// choice, sensible report contents, regime-dependent behavior (index wins
// on skewed norms; its advantage erodes on flat norms), t-test early
// stopping, and the three-way configuration.  Regime assertions avoid
// wall-clock *winner* comparisons — on degraded-SIMD VMs the absolute
// BMM-vs-index ordering flips, so tests pin deterministic pruning depths
// and per-strategy cross-instance ratios instead.

#include <gtest/gtest.h>

#include <memory>

#include "core/maximus.h"
#include "core/optimus.h"
#include "core/registry.h"
#include "solvers/bmm.h"
#include "solvers/fexipro/fexipro.h"
#include "solvers/lemp/lemp.h"
#include "solvers/naive.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::ExpectValidTopK;
using ::mips::testing::kSanitizerSkewsWallClock;
using ::mips::testing::MakeTestModel;

OptimusOptions SmallSampleOptions() {
  OptimusOptions options;
  // Test models are small; keep the sample floor small so sampling stays a
  // strict subset of the users.
  options.l2_cache_bytes = 16 * 1024;
  options.sample_ratio = 0.02;
  return options;
}

TEST(OptimusTest, RequiresTwoStrategies) {
  const MFModel model = MakeTestModel(50, 50, 8, 3);
  BmmSolver bmm;
  Optimus optimus;
  TopKResult out;
  EXPECT_FALSE(optimus
                   .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                        1, {&bmm}, &out)
                   .ok());
}

TEST(OptimusTest, ResultsExactWhateverTheChoice) {
  const MFModel model = MakeTestModel(400, 200, 10, 5, /*norm_sigma=*/0.5);
  BmmSolver bmm;
  MaximusSolver maximus;
  Optimus optimus(SmallSampleOptions());
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       5, {&bmm, &maximus}, &out, &report)
                  .ok());
  // Compare against an independent brute-force run.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-7);
  ExpectValidTopK(out, AllUsers(400), model, 1e-7);
}

TEST(OptimusTest, ReportIsPopulated) {
  const MFModel model = MakeTestModel(300, 150, 8, 7);
  BmmSolver bmm;
  MaximusSolver maximus;
  Optimus optimus(SmallSampleOptions());
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       3, {&bmm, &maximus}, &out, &report)
                  .ok());
  ASSERT_EQ(report.estimates.size(), 2u);
  EXPECT_TRUE(report.chosen == "bmm" || report.chosen == "maximus");
  EXPECT_GT(report.sample_size, 0);
  EXPECT_LE(report.sample_size, 300);
  for (const auto& est : report.estimates) {
    EXPECT_FALSE(est.name.empty());
    EXPECT_GE(est.construction_seconds, 0.0);
    EXPECT_GT(est.measured_users, 0);
    EXPECT_GT(est.est_per_user_seconds, 0.0);
    EXPECT_GT(est.est_total_seconds, 0.0);
  }
  EXPECT_GT(report.total_seconds, 0.0);
  // The winner must be the strategy with the smallest estimate.
  double best = 1e300;
  std::string best_name;
  for (const auto& est : report.estimates) {
    if (est.est_total_seconds < best) {
      best = est.est_total_seconds;
      best_name = est.name;
    }
  }
  EXPECT_EQ(report.chosen, best_name);
}

TEST(OptimusTest, SampleSizeRespectsCacheFloor) {
  const MFModel model = MakeTestModel(2000, 50, 16, 9);
  BmmSolver bmm;
  MaximusSolver maximus;
  OptimusOptions options;
  options.sample_ratio = 0.0001;            // ratio alone would give 1 user
  options.l2_cache_bytes = 64 * 1024;       // 64 KB / (16*8B) = 512 vectors
  options.max_sample_ratio = 1.0;           // measure the floor itself
  Optimus optimus(options);
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       1, {&bmm, &maximus}, &out, &report)
                  .ok());
  EXPECT_GE(report.sample_size, 512);
}

TEST(OptimusTest, PicksIndexOnPrunableModel) {
  if (kSanitizerSkewsWallClock) {
    GTEST_SKIP() << "OPTIMUS winner assertions are wall-clock regime "
                    "checks; sanitizer instrumentation slowdown skews them";
  }
  // Strongly skewed item norms + tight user clusters: MAXIMUS visits a
  // handful of items per user while BMM computes all of them.  Enough
  // users that the capped sample still feeds MAXIMUS's per-cluster
  // batching a meaningful batch (a tiny per-cluster GEMM would distort
  // the estimate — the paper's point about batching indexes and samples).
  const MFModel model = MakeTestModel(2000, 3000, 16, 11, /*norm_sigma=*/1.3,
                                      /*dispersion=*/0.15);
  // OPTIMUS itself is not 100% accurate (the paper reports 85-98%), and
  // timing measurements are noisy under suite load; accept the regime
  // conclusion if any of three independently-seeded runs reaches it.
  std::string chosen;
  for (const uint64_t seed : {123u, 456u, 789u}) {
    BmmSolver bmm;
    MaximusSolver maximus;
    OptimusOptions options = SmallSampleOptions();
    options.seed = seed;
    Optimus optimus(options);
    TopKResult out;
    OptimusReport report;
    ASSERT_TRUE(optimus
                    .Run(ConstRowBlock(model.users),
                         ConstRowBlock(model.items), 1, {&bmm, &maximus},
                         &out, &report)
                    .ok());
    chosen = report.chosen;
    if (chosen == "maximus") break;
  }
  EXPECT_EQ(chosen, "maximus");
}

TEST(OptimusTest, FlatNormsErodeIndexAdvantage) {
  // The Figure 5 regime behind "pick BMM on flat norms": flat item norms
  // starve length-based pruning, so a point-query index loses (most of)
  // its per-user advantage while BMM's dense cost is norm-oblivious.  On
  // GEMM-friendly hardware OPTIMUS then picks BMM outright — but the
  // winner string is wall-clock-derived and flips on machines whose
  // blocked-GEMM throughput is degraded (this repo's CI VMs emulate or
  // down-clock AVX-512), which made the old winner assertion flaky.  The
  // test instead pins the signals that identify the regime on any
  // hardware:
  //   (1) pruning collapse — FEXIPRO must fully score several times more
  //       of the item set on flat norms than on skewed norms.  Scan
  //       depths are data-determined, so this is exactly reproducible.
  //   (2) each strategy's estimate compared against ITSELF across the
  //       two instances: FEXIPRO's per-user estimate degrades by a wide
  //       (>= 2x) margin on flat norms while BMM's stays flat (within
  //       2x).  Per-strategy cross-instance ratios cancel absolute
  //       machine speed; the true margins are ~4x and ~1.0x.
  //   (3) the decision stays consistent: chosen == argmin estimate, and
  //       the merged output stays exact.
  const MFModel flat = MakeTestModel(400, 2000, 64, 13, /*norm_sigma=*/0.0,
                                     /*dispersion=*/2.0);
  const MFModel skewed = MakeTestModel(400, 2000, 64, 13, /*norm_sigma=*/1.3,
                                       /*dispersion=*/2.0);

  // (1) Deterministic pruning collapse, measured directly on the solver.
  double flat_exact_fraction = 0;
  double skewed_exact_fraction = 0;
  {
    FexiproSolver fexipro;
    TopKResult out;
    ASSERT_TRUE(fexipro.Prepare(ConstRowBlock(flat.users),
                                ConstRowBlock(flat.items)).ok());
    ASSERT_TRUE(fexipro.TopKAll(10, &out).ok());
    flat_exact_fraction = fexipro.last_exact_fraction();
  }
  {
    FexiproSolver fexipro;
    TopKResult out;
    ASSERT_TRUE(fexipro.Prepare(ConstRowBlock(skewed.users),
                                ConstRowBlock(skewed.items)).ok());
    ASSERT_TRUE(fexipro.TopKAll(10, &out).ok());
    skewed_exact_fraction = fexipro.last_exact_fraction();
  }
  EXPECT_GT(flat_exact_fraction, 1.5 * skewed_exact_fraction)
      << "flat=" << flat_exact_fraction << " skewed=" << skewed_exact_fraction;

  // (2) + (3): OPTIMUS runs on both instances with the same knobs.
  const auto run = [](const MFModel& model, uint64_t seed,
                      OptimusReport* report) {
    BmmSolver bmm;
    FexiproSolver fexipro;
    OptimusOptions options = SmallSampleOptions();
    options.seed = seed;
    Optimus optimus(options);
    TopKResult out;
    ASSERT_TRUE(optimus
                    .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                         10, {&bmm, &fexipro}, &out, report)
                    .ok());
    // Whatever was chosen, the merged result must be exact.
    BmmSolver reference;
    ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                  ConstRowBlock(model.items)).ok());
    TopKResult expected;
    ASSERT_TRUE(reference.TopKAll(10, &expected).ok());
    ExpectSameTopKScores(out, expected, 1e-7);
  };
  const auto per_user = [](const OptimusReport& report,
                           const std::string& name) {
    for (const auto& est : report.estimates) {
      if (est.name == name) return est.est_per_user_seconds;
    }
    ADD_FAILURE() << "no estimate for " << name;
    return 0.0;
  };

  // The cross-instance ratios are wall-clock means over a few dozen
  // sampled users, so one scheduler preemption during a run can swamp
  // them; allow five independently-seeded attempts (the suite's usual
  // idiom, widened after the PR 4 load audit: a sustained load burst on
  // a single-core VM can pollute several consecutive attempts) before
  // declaring the regime signal absent.  The true margins (~4x and
  // ~1.0x against thresholds of 2x and [1/3, 3]) make a clean attempt
  // decisive.
  double fex_ratio = 0;
  double bmm_ratio = 0;
  for (const uint64_t seed : {123u, 456u, 789u, 1011u, 1213u}) {
    OptimusReport flat_report;
    OptimusReport skewed_report;
    run(flat, seed, &flat_report);
    run(skewed, seed, &skewed_report);
    if (HasFatalFailure()) return;
    // (3) The decision must stay consistent on every attempt.
    for (const OptimusReport* report : {&flat_report, &skewed_report}) {
      double best = 1e300;
      std::string best_name;
      for (const auto& est : report->estimates) {
        if (est.est_total_seconds < best) {
          best = est.est_total_seconds;
          best_name = est.name;
        }
      }
      EXPECT_EQ(report->chosen, best_name);
    }
    fex_ratio = per_user(flat_report, "fexipro-si") /
                per_user(skewed_report, "fexipro-si");
    bmm_ratio = per_user(flat_report, "bmm") / per_user(skewed_report, "bmm");
    if (fex_ratio > 2.0 && bmm_ratio > 1.0 / 3 && bmm_ratio < 3.0) break;
  }
  EXPECT_GT(fex_ratio, 2.0) << "index advantage should erode on flat norms";
  EXPECT_GT(bmm_ratio, 1.0 / 3) << "BMM cost must be norm-oblivious";
  EXPECT_LT(bmm_ratio, 3.0) << "BMM cost must be norm-oblivious";
}

TEST(OptimusTest, TTestEarlyStopsOnClearCutInput) {
  if (testing::kSanitizerSkewsWallClock) {
    // The t-statistic is built from wall-clock per-user timings; TSan's
    // ~10x instrumented slowdown inflates their variance enough that the
    // retry loop below still flakes.  The exactness half of this test is
    // covered sanitizer-clean by TTestCanBeDisabled and the differential
    // suite.
    GTEST_SKIP() << "t-test significance is wall-clock-derived";
  }
  // A full-scan point-query strategy (naive) against BMM: their per-user
  // means differ by a wide factor in SOME direction on every machine
  // (which direction depends on the GEMM's throughput — the t-test is
  // two-sided, so it does not matter), and naive's per-user times are
  // hundreds of microseconds with tiny relative variance, so the t-test
  // reaches significance within a few observations.  The early-stop
  // signal is asserted via measured_users from the report — NOT via
  // elapsed-seconds comparisons, which made the old FEXIPRO-based
  // version of this test flake on noisy VMs.
  const MFModel model = MakeTestModel(800, 3000, 64, 15, /*norm_sigma=*/0.0,
                                      /*dispersion=*/0.4);
  // The t-statistic is computed from wall-clock per-user times: a
  // machine-wide load burst can inflate naive's variance enough to keep
  // |t| under the critical value through the whole sample (observed
  // during the PR 4 load audit with a parallel build pegging the core).
  // The gap itself is enormous on any hardware, so allow the suite's
  // usual independently-seeded attempts before declaring early stopping
  // broken; the within-attempt assertions stay counter-based.
  OptimusReport report;
  const StrategyEstimate* est = nullptr;
  TopKResult out;
  for (const uint64_t seed : {123u, 456u, 789u}) {
    BmmSolver bmm;
    NaiveSolver naive;
    OptimusOptions options = SmallSampleOptions();
    options.l2_cache_bytes = 64 * 1024;  // 128-user sample: room for the test
    options.enable_ttest = true;
    options.seed = seed;
    Optimus optimus(options);
    ASSERT_TRUE(optimus
                    .Run(ConstRowBlock(model.users),
                         ConstRowBlock(model.items), 1, {&bmm, &naive}, &out,
                         &report)
                    .ok());
    est = nullptr;
    for (const auto& e : report.estimates) {
      if (e.name == "naive") est = &e;
    }
    ASSERT_NE(est, nullptr);
    if (est->early_stopped) break;
  }
  // Early stopping asserted through the report's sample accounting.
  EXPECT_LT(est->measured_users, report.sample_size);
  EXPECT_TRUE(est->early_stopped);
  EXPECT_GE(est->measured_users, 8);  // the ttest_min_observations floor
  // Early stopping must not affect correctness of the merged output.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(1, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-7);
}

TEST(OptimusTest, TTestCanBeDisabled) {
  const MFModel model = MakeTestModel(300, 300, 8, 17, 0.0, 2.0);
  BmmSolver bmm;
  FexiproSolver fexipro;
  OptimusOptions options = SmallSampleOptions();
  options.enable_ttest = false;
  Optimus optimus(options);
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       1, {&bmm, &fexipro}, &out, &report)
                  .ok());
  for (const auto& est : report.estimates) {
    EXPECT_FALSE(est.early_stopped);
    EXPECT_EQ(est.measured_users, report.sample_size);
  }
}

TEST(OptimusTest, ThreeWayOptimization) {
  const MFModel model = MakeTestModel(400, 400, 12, 19, 0.8, 0.3);
  BmmSolver bmm;
  LempSolver lemp;
  MaximusSolver maximus;
  Optimus optimus(SmallSampleOptions());
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       5, {&bmm, &lemp, &maximus}, &out, &report)
                  .ok());
  EXPECT_EQ(report.estimates.size(), 3u);
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-7);
}

TEST(RegistryTest, CreatesEverySolver) {
  for (const std::string& name : AvailableSolvers()) {
    auto solver = CreateSolver(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_EQ((*solver)->name(), name);
  }
  EXPECT_FALSE(CreateSolver("does-not-exist").ok());
}

TEST(RegistryTest, RegistrySolversAreExact) {
  const MFModel model = MakeTestModel(60, 80, 8, 21);
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(4, &expected).ok());
  for (const std::string& name : AvailableSolvers()) {
    auto solver = CreateSolver(name);
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items)).ok());
    TopKResult got;
    ASSERT_TRUE((*solver)->TopKAll(4, &got).ok());
    ExpectSameTopKScores(got, expected, 1e-7);
  }
}

}  // namespace
}  // namespace mips
