#include "catalog/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <vector>

#include "linalg/blas.h"

namespace mips {
namespace {

constexpr char kMagic[8] = {'M', 'I', 'P', 'S', 'S', 'E', 'G', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kHeaderBytes = 64;

struct SegmentHeader {
  char magic[8];
  uint32_t version;
  uint32_t header_bytes;
  int64_t rows;
  int64_t cols;
  int64_t payload_bytes;
  uint64_t checksum;
  char reserved[16];
};
static_assert(sizeof(SegmentHeader) == kHeaderBytes,
              "header layout must match the documented 64-byte format");

/// FNV-1a over the header prefix the checksum field protects.
uint64_t HeaderChecksum(const SegmentHeader& header) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(&header);
  uint64_t hash = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < offsetof(SegmentHeader, checksum); ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ull;
  }
  return hash;
}

Status CloseAndUnlink(int fd, const std::string& tmp, std::string message) {
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  return Status::IOError(std::move(message));
}

Status WriteFully(int fd, const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status CatalogSegment::Write(const ConstRowBlock& items,
                             const std::string& path) {
  if (items.rows() <= 0 || items.cols() <= 0) {
    return Status::InvalidArgument("segment needs a non-empty item matrix");
  }

  SegmentHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.header_bytes = kHeaderBytes;
  header.rows = items.rows();
  header.cols = items.cols();
  header.payload_bytes =
      static_cast<int64_t>(items.rows()) * items.cols() *
          static_cast<int64_t>(sizeof(Real)) +
      static_cast<int64_t>(items.rows()) * static_cast<int64_t>(sizeof(Real));
  header.checksum = HeaderChecksum(header);

  // Norms via the dispatched level-1 kernels: bit-identical on every ISA,
  // so the written file is byte-reproducible across machines.
  std::vector<Real> norms(static_cast<std::size_t>(items.rows()));
  RowNorms(items.data(), items.rows(), items.cols(), norms.data());

  // Temp file beside the target so rename(2) stays within one filesystem.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open for write: " + tmp + ": " +
                           std::strerror(errno));
  }
  Status status = WriteFully(fd, &header, sizeof(header));
  if (status.ok()) {
    status = WriteFully(fd, items.data(),
                        static_cast<std::size_t>(items.rows()) *
                            static_cast<std::size_t>(items.cols()) *
                            sizeof(Real));
  }
  if (status.ok()) {
    status = WriteFully(fd, norms.data(), norms.size() * sizeof(Real));
  }
  if (!status.ok()) {
    return CloseAndUnlink(fd, tmp, status.message() + " (" + tmp + ")");
  }
  // Data must be durable BEFORE the rename publishes the file: rename is
  // atomic in the namespace, but only fsync makes the bytes behind it
  // crash-safe.
  if (::fsync(fd) != 0) {
    return CloseAndUnlink(fd, tmp,
                          "fsync failed: " + tmp + ": " + std::strerror(errno));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("close failed: " + tmp + ": " +
                           std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("rename failed: " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  // Persist the rename itself (the directory entry).  Failure here is
  // reported but the segment at `path` is already complete and valid.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    const int rc = ::fsync(dir_fd);
    ::close(dir_fd);
    if (rc != 0) {
      return Status::IOError("directory fsync failed: " + dir + ": " +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

StatusOr<CatalogSegment> CatalogSegment::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat failed: " + path + ": " +
                           std::strerror(errno));
  }
  const auto file_bytes = static_cast<std::size_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    return Status::InvalidArgument(
        "truncated segment (file smaller than the 64-byte header): " + path);
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference; the descriptor can close now.
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path + ": " +
                           std::strerror(errno));
  }

  CatalogSegment segment;
  segment.map_ = map;
  segment.map_bytes_ = file_bytes;

  SegmentHeader header{};
  std::memcpy(&header, map, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in segment: " + path);
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument(
        "unsupported segment version " + std::to_string(header.version) +
        " in " + path + " (this build reads version " +
        std::to_string(kVersion) + ")");
  }
  if (header.header_bytes != kHeaderBytes) {
    return Status::InvalidArgument("bad header size in segment: " + path);
  }
  if (header.checksum != HeaderChecksum(header)) {
    return Status::InvalidArgument("header checksum mismatch in segment: " +
                                   path);
  }
  if (header.rows <= 0 || header.cols <= 0 ||
      header.rows > (int64_t{1} << 31) || header.cols > (int64_t{1} << 31)) {
    return Status::InvalidArgument("bad dimensions in segment: " + path);
  }
  const int64_t expected_payload =
      header.rows * header.cols * static_cast<int64_t>(sizeof(Real)) +
      header.rows * static_cast<int64_t>(sizeof(Real));
  if (header.payload_bytes != expected_payload) {
    return Status::InvalidArgument("payload size mismatch in segment: " +
                                   path);
  }
  if (file_bytes != kHeaderBytes + static_cast<std::size_t>(expected_payload)) {
    return Status::InvalidArgument(
        "truncated segment (header promises " +
        std::to_string(kHeaderBytes + expected_payload) + " bytes, file has " +
        std::to_string(file_bytes) + "): " + path);
  }

  segment.rows_ = static_cast<Index>(header.rows);
  segment.cols_ = static_cast<Index>(header.cols);
  const char* base = static_cast<const char*>(map);
  segment.items_ = reinterpret_cast<const Real*>(base + kHeaderBytes);
  segment.norms_ = reinterpret_cast<const Real*>(
      base + kHeaderBytes +
      static_cast<std::size_t>(header.rows) *
          static_cast<std::size_t>(header.cols) * sizeof(Real));
  return segment;
}

void CatalogSegment::Unmap() {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
  }
}

void CatalogSegment::MoveFrom(CatalogSegment& other) {
  map_ = other.map_;
  map_bytes_ = other.map_bytes_;
  items_ = other.items_;
  norms_ = other.norms_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  other.items_ = nullptr;
  other.norms_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
}

}  // namespace mips
