// Exact k-way merge of per-shard top-K rows.
//
// A sharded engine answers one query by running top-K independently on
// every item shard and merging the per-shard rows into the global top-K.
// Because every item lives in exactly one shard, the union of the shard
// rows is a superset of the true global top-K, so the merge is exact.
// Rows are merged under the library-wide BetterEntry order (score desc,
// item id asc), which makes the merged row identical to the row an
// unsharded heap over all items would produce — including the entries
// picked on score ties — regardless of shard count or merge order.

#ifndef MIPS_TOPK_MERGE_H_
#define MIPS_TOPK_MERGE_H_

#include <span>
#include <vector>

#include "topk/result.h"

namespace mips {

/// Merges `rows` — each a sorted-descending top-K row of `k_in` entries,
/// possibly tail-padded with {-1, -inf} sentinels — into the best `k_out`
/// entries, written to out[0..k_out) sorted by BetterEntry.  Sentinels in
/// the inputs are skipped; if fewer than `k_out` real entries exist across
/// all rows, the output tail is sentinel-padded.  Item ids must be
/// globally unique across rows (each item lives in one shard).
void MergeTopKRows(std::span<const TopKEntry* const> rows, Index k_in,
                   Index k_out, TopKEntry* out);

/// Row-by-row merge of whole shard results into *out (resized to
/// (num_queries, k_out)).  Every input must have the same num_queries and
/// the same per-row entry count.
void MergeTopKResults(std::span<const TopKResult* const> shard_results,
                      Index k_out, TopKResult* out);

}  // namespace mips

#endif  // MIPS_TOPK_MERGE_H_
