#include "topk/topk_block.h"

namespace mips {

void TopKFromRow(const Real* scores, Index n, Index k, Index item_offset,
                 const Index* item_ids, TopKEntry* out) {
  TopKHeap heap(k);
  for (Index j = 0; j < n; ++j) {
    // WouldAccept first: for realistic score distributions most columns
    // lose to the current minimum, so this branch is the common fast path.
    if (heap.WouldAccept(scores[j])) {
      const Index id = (item_ids != nullptr) ? item_ids[j] : j + item_offset;
      heap.Push(id, scores[j]);
    }
  }
  heap.ExtractDescending(out);
}

void TopKFromScoreBlock(const Real* scores, Index m, Index n, Index lds,
                        Index k, Index item_offset, const Index* item_ids,
                        TopKResult* out, Index row_offset) {
  for (Index r = 0; r < m; ++r) {
    TopKFromRow(scores + static_cast<std::size_t>(r) * lds, n, k, item_offset,
                item_ids, out->Row(row_offset + r));
  }
}

}  // namespace mips
