// Tests for the LEMP reproduction: bucket structure invariants, exactness
// against brute force under every retrieval algorithm and under the
// adaptive (sample-calibrated) mode, pruning effectiveness on skewed
// norms, and threading.

#include <gtest/gtest.h>

#include <tuple>

#include "common/thread_pool.h"
#include "solvers/bmm.h"
#include "solvers/lemp/lemp.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::ExpectValidTopK;
using ::mips::testing::MakeTestModel;

TEST(LempBucketTest, SortedItemsDescendingAndComplete) {
  const MFModel model = MakeTestModel(5, 200, 8, 3, /*norm_sigma=*/0.8);
  const auto sorted = lemp::SortItemsByNorm(ConstRowBlock(model.items), 4);
  ASSERT_EQ(sorted.vectors.rows(), 200);
  // Norms descending.
  for (std::size_t i = 1; i < sorted.norms.size(); ++i) {
    EXPECT_GE(sorted.norms[i - 1], sorted.norms[i]);
  }
  // ids is a permutation.
  std::vector<Index> ids = sorted.ids;
  std::sort(ids.begin(), ids.end());
  for (Index i = 0; i < 200; ++i) {
    EXPECT_EQ(ids[static_cast<std::size_t>(i)], i);
  }
  // Each sorted row matches its original item.
  for (Index r = 0; r < 200; ++r) {
    const Index src = sorted.ids[static_cast<std::size_t>(r)];
    for (Index c = 0; c < 8; ++c) {
      EXPECT_EQ(sorted.vectors(r, c), model.items(src, c));
    }
  }
}

TEST(LempBucketTest, SuffixNormsCorrect) {
  const MFModel model = MakeTestModel(5, 50, 12, 4);
  const auto sorted = lemp::SortItemsByNorm(ConstRowBlock(model.items), 3);
  const Index ncp = static_cast<Index>(sorted.checkpoint_dims.size());
  ASSERT_GT(ncp, 0);
  for (Index r = 0; r < 50; ++r) {
    for (Index c = 0; c < ncp; ++c) {
      const Index start = sorted.checkpoint_dims[static_cast<std::size_t>(c)];
      EXPECT_NEAR(sorted.suffix_norms[static_cast<std::size_t>(r) * ncp + c],
                  Nrm2(sorted.vectors.Row(r) + start, 12 - start), 1e-12);
    }
  }
}

TEST(LempBucketTest, CheckpointsStrictlyIncreasingInRange) {
  const MFModel model = MakeTestModel(2, 10, 5, 5);
  const auto sorted = lemp::SortItemsByNorm(ConstRowBlock(model.items), 8);
  Index prev = 0;
  for (Index dim : sorted.checkpoint_dims) {
    EXPECT_GT(dim, prev);
    EXPECT_LT(dim, 5);
    prev = dim;
  }
}

TEST(LempBucketTest, BucketsPartitionItems) {
  const MFModel model = MakeTestModel(5, 537, 6, 6);
  const auto sorted = lemp::SortItemsByNorm(ConstRowBlock(model.items), 4);
  const auto buckets = lemp::MakeBuckets(sorted, 100);
  ASSERT_EQ(buckets.size(), 6u);  // ceil(537 / 100)
  Index expected_begin = 0;
  for (const auto& b : buckets) {
    EXPECT_EQ(b.begin, expected_begin);
    EXPECT_GT(b.end, b.begin);
    EXPECT_GE(b.max_norm, b.min_norm);
    expected_begin = b.end;
  }
  EXPECT_EQ(buckets.back().end, 537);
  // Bucket norm ranges are non-increasing across buckets.
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i - 1].min_norm, buckets[i].max_norm - 1e-12);
  }
}

class LempExactnessTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(LempExactnessTest, MatchesBruteForce) {
  const auto [k, forced_algorithm, norm_sigma] = GetParam();
  const MFModel model =
      MakeTestModel(120, 400, 16, /*seed=*/17, /*norm_sigma=*/norm_sigma);
  LempOptions options;
  options.forced_algorithm = forced_algorithm;  // -1 = adaptive
  options.bucket_size = 64;
  LempSolver lemp(options);
  BmmSolver bmm;
  ASSERT_TRUE(lemp.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(lemp.TopKAll(k, &got).ok());
  ASSERT_TRUE(bmm.TopKAll(k, &expected).ok());
  ExpectSameTopKScores(got, expected);
  ExpectValidTopK(got, AllUsers(120), model);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LempExactnessTest,
    ::testing::Combine(::testing::Values(1, 5, 10),
                       ::testing::Values(-1, 0, 1, 2, 3),
                       ::testing::Values(0.05, 0.8)));

TEST(LempBucketTest, CoordinateRangesCoverBucketItems) {
  const MFModel model = MakeTestModel(5, 300, 7, 8, 0.6);
  const auto sorted = lemp::SortItemsByNorm(ConstRowBlock(model.items), 3);
  const auto buckets = lemp::MakeBuckets(sorted, 64);
  for (const auto& bucket : buckets) {
    ASSERT_EQ(bucket.coord_min.size(), 7u);
    for (Index pos = bucket.begin; pos < bucket.end; ++pos) {
      const Real* v = sorted.vectors.Row(pos);
      for (Index d = 0; d < 7; ++d) {
        EXPECT_LE(bucket.coord_min[static_cast<std::size_t>(d)], v[d]);
        EXPECT_GE(bucket.coord_max[static_cast<std::size_t>(d)], v[d]);
      }
    }
  }
}

TEST(LempBucketTest, CoordBoundIsUpperBound) {
  // Property: the bucket coordinate bound dominates u.i for every item in
  // the bucket, for random users.
  const MFModel model = MakeTestModel(30, 200, 6, 9, 0.7);
  const auto sorted = lemp::SortItemsByNorm(ConstRowBlock(model.items), 2);
  const auto buckets = lemp::MakeBuckets(sorted, 50);
  for (Index u = 0; u < 30; ++u) {
    const Real* user = model.users.Row(u);
    for (const auto& bucket : buckets) {
      const Real bound = lemp::CoordBucketBound(user, bucket, 6);
      for (Index pos = bucket.begin; pos < bucket.end; ++pos) {
        EXPECT_GE(bound, Dot(user, sorted.vectors.Row(pos), 6) - 1e-9);
      }
    }
  }
}

TEST(LempSolverTest, PrunesOnSkewedNorms) {
  const MFModel model =
      MakeTestModel(100, 2000, 16, /*seed=*/23, /*norm_sigma=*/1.2);
  LempSolver lemp;
  ASSERT_TRUE(lemp.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(lemp.TopKAll(1, &out).ok());
  // Heavily skewed norms: the vast majority of items must never be
  // scanned.
  EXPECT_LT(lemp.last_scan_fraction(), 0.25);
}

TEST(LempSolverTest, ScansEverythingOnFlatNormsForLargeK) {
  const MFModel model =
      MakeTestModel(30, 200, 8, /*seed=*/29, /*norm_sigma=*/0.0);
  LempSolver lemp;
  ASSERT_TRUE(lemp.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(lemp.TopKAll(10, &out).ok());
  // Equal norms defeat length pruning entirely: the length test
  // ||i|| * ||u|| <= minH can only fire after heap-fill, and with equal
  // norms most items survive it.
  EXPECT_GT(lemp.last_scan_fraction(), 0.5);
}

TEST(LempSolverTest, KLargerThanItemsPads) {
  const MFModel model = MakeTestModel(10, 4, 4, 31);
  LempSolver lemp;
  ASSERT_TRUE(lemp.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(lemp.TopKAll(6, &out).ok());
  for (Index u = 0; u < 10; ++u) {
    EXPECT_GE(out.Row(u)[3].item, 0);
    EXPECT_EQ(out.Row(u)[4].item, -1);
    EXPECT_EQ(out.Row(u)[5].item, -1);
  }
}

TEST(LempSolverTest, RecalibratesWhenKChanges) {
  const MFModel model = MakeTestModel(80, 300, 8, 37, 0.6);
  LempSolver lemp;
  BmmSolver bmm;
  ASSERT_TRUE(lemp.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  for (Index k : {1, 10, 2}) {
    TopKResult got;
    TopKResult expected;
    ASSERT_TRUE(lemp.TopKAll(k, &got).ok());
    ASSERT_TRUE(bmm.TopKAll(k, &expected).ok());
    ExpectSameTopKScores(got, expected);
  }
}

TEST(LempSolverTest, ThreadedMatchesSingleThreaded) {
  const MFModel model = MakeTestModel(90, 250, 10, 41, 0.7);
  LempOptions options;
  options.forced_algorithm = 2;  // fixed algorithm: choice is deterministic
  LempSolver single(options);
  LempSolver threaded(options);
  ThreadPool pool(4);
  threaded.set_thread_pool(&pool);
  ASSERT_TRUE(single.Prepare(ConstRowBlock(model.users),
                             ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(threaded.Prepare(ConstRowBlock(model.users),
                               ConstRowBlock(model.items)).ok());
  TopKResult a;
  TopKResult b;
  ASSERT_TRUE(single.TopKAll(5, &a).ok());
  ASSERT_TRUE(threaded.TopKAll(5, &b).ok());
  ExpectSameTopKScores(a, b, 1e-12);
}

TEST(LempSolverTest, SubsetQueriesExact) {
  const MFModel model = MakeTestModel(50, 150, 8, 43, 0.5);
  LempSolver lemp;
  BmmSolver bmm;
  ASSERT_TRUE(lemp.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  const std::vector<Index> subset = {49, 0, 25, 25};
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(lemp.TopKForUsers(3, subset, &got).ok());
  ASSERT_TRUE(bmm.TopKForUsers(3, subset, &expected).ok());
  ExpectSameTopKScores(got, expected);
}

TEST(LempSolverTest, QueryBeforePrepareFails) {
  LempSolver lemp;
  TopKResult out;
  EXPECT_EQ(lemp.TopKForUsers(1, {}, &out).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LempSolverTest, ZeroNormUserHandled) {
  MFModel model = MakeTestModel(5, 30, 6, 47);
  for (Index c = 0; c < 6; ++c) model.users(2, c) = 0;  // zero user
  LempSolver lemp;
  BmmSolver bmm;
  ASSERT_TRUE(lemp.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(lemp.TopKAll(3, &got).ok());
  ASSERT_TRUE(bmm.TopKAll(3, &expected).ok());
  ExpectSameTopKScores(got, expected);
}

TEST(LempSolverTest, ConstructionStageRecorded) {
  const MFModel model = MakeTestModel(20, 100, 8, 53);
  LempSolver lemp;
  ASSERT_TRUE(lemp.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  EXPECT_GT(lemp.stage_timer().Get("construction"), 0.0);
  EXPECT_FALSE(lemp.buckets().empty());
}

}  // namespace
}  // namespace mips
