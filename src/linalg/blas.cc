#include "linalg/blas.h"

#include <algorithm>
#include <cmath>

#include "linalg/dot_kernel.h"

namespace mips {

Real Dot(const Real* x, const Real* y, Index n) {
  // Dispatched 8-lane fma kernel (dot_kernel.h): AVX-512 / AVX2 /
  // portable, selected by the same runtime install as the GEMM
  // micro-kernel.  Every variant is bit-for-bit identical, so swapping
  // kernels never changes a Dot-derived score.
  return ActiveDotKernel()(x, y, n);
}

Real DotNaive(const Real* x, const Real* y, Index n) {
  Real acc = 0;
  for (Index i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

Real Nrm2Squared(const Real* x, Index n) { return Dot(x, x, n); }

Real Nrm2(const Real* x, Index n) { return std::sqrt(Nrm2Squared(x, n)); }

void Axpy(Real alpha, const Real* x, Real* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(Real alpha, Real* x, Index n) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

void RowNorms(const Real* data, Index rows, Index cols, Real* out) {
  for (Index r = 0; r < rows; ++r) {
    out[r] = Nrm2(data + static_cast<std::size_t>(r) * cols, cols);
  }
}

Real CosineSimilarity(const Real* x, const Real* y, Index n) {
  const Real nx = Nrm2(x, n);
  const Real ny = Nrm2(y, n);
  if (nx == 0 || ny == 0) return 0;
  const Real cos = Dot(x, y, n) / (nx * ny);
  return std::clamp(cos, Real{-1}, Real{1});
}

}  // namespace mips
