// Internal contract between the blocked GEMM driver (gemm.cc), the SIMD
// micro-kernel variants (gemm_kernel_{avx512,avx2,portable}.cc), and the
// runtime dispatcher (simd_dispatch.cc).  Not part of the public API —
// include linalg/simd_dispatch.h to choose or inspect kernels.
//
// One binary carries every variant: each variant lives in its own
// translation unit compiled with exactly the ISA flags it needs
// (-mavx512f / -mavx2 -mfma / none), so the build no longer bakes the
// kernel choice in via __AVX512F__ preprocessor checks, and a CPU whose
// AVX-512 is emulated or down-clocked can fall back to the AVX2 kernel at
// runtime (see ROADMAP "Runtime SIMD dispatch").
//
// Bit-for-bit contract: all three variants compute every C element with
// the SAME IEEE-754 operation sequence —
//
//     acc = 0;  for kk in [0, kb): acc = fma(a[i][kk], b[j][kk], acc);
//     c[i][j] = fma(alpha, acc, c[i][j]);
//
// (hardware vfmadd in the AVX kernels, std::fma in the portable one; both
// are single-rounding by IEEE 754-2008, and per-element chains are
// independent so vector width is irrelevant).  Swapping kernels therefore
// never changes a score: the per-kernel differential tests in
// tests/linalg_test.cc assert exact equality, and the sharded==unsharded
// and threaded==serial bit-for-bit guarantees hold under ANY installed
// kernel — even if a kernel is re-installed between two calls.

#ifndef MIPS_LINALG_GEMM_KERNEL_H_
#define MIPS_LINALG_GEMM_KERNEL_H_

#include "common/types.h"

namespace mips {

// Register tile: MR x NR accumulators = 64 doubles = 8 zmm (AVX-512) or
// 16 ymm (AVX2) registers, leaving room for the A broadcasts and B loads.
inline constexpr Index kGemmMR = 4;
inline constexpr Index kGemmNR = 16;

/// A full MR x NR register tile over packed panels: ap is kb x MR
/// (column-of-rows layout from PackA), bp is kb x NR (PackB), and the
/// result is accumulated into c (ldc-strided) as c += alpha * ap^T bp.
using GemmMicroKernelFn = void (*)(const Real* ap, const Real* bp, Index kb,
                                   Real alpha, Real* c, Index ldc);

/// The three variants.  Every symbol exists in every binary; variants
/// whose ISA the compiler cannot target (flag probe failed at configure
/// time, non-x86 build) forward to the portable kernel and report
/// compiled-in = false below, so the dispatcher never selects them.
void GemmMicroKernelAvx512(const Real* ap, const Real* bp, Index kb,
                           Real alpha, Real* c, Index ldc);
void GemmMicroKernelAvx2(const Real* ap, const Real* bp, Index kb, Real alpha,
                         Real* c, Index ldc);
void GemmMicroKernelPortable(const Real* ap, const Real* bp, Index kb,
                             Real alpha, Real* c, Index ldc);

/// Whether the real intrinsics body (not the portable forward) was
/// compiled into this binary.
bool GemmAvx512KernelCompiled();
bool GemmAvx2KernelCompiled();

/// The installed micro-kernel (simd_dispatch.cc), running the env
/// override / startup probe first if nothing is installed yet.  gemm.cc
/// loads this once per GemmNT call.
GemmMicroKernelFn ActiveGemmMicroKernel();

}  // namespace mips

#endif  // MIPS_LINALG_GEMM_KERNEL_H_
