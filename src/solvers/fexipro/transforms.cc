#include "solvers/fexipro/transforms.h"

#include <algorithm>
#include <cmath>

#include "linalg/blas.h"
#include "linalg/gemm.h"
#include "linalg/sym_eigen.h"

namespace mips {
namespace fexipro {

void SvdTransform::Apply(const Real* in, Real* out) const {
  Gemv(basis.data(), basis.rows(), basis.cols(), in, out);
}

StatusOr<SvdTransform> ComputeSvdTransform(const ConstRowBlock& items,
                                           Real energy_fraction) {
  if (items.rows() <= 0 || items.cols() <= 0) {
    return Status::InvalidArgument("item matrix is empty");
  }
  if (!(energy_fraction > 0 && energy_fraction <= 1)) {
    return Status::InvalidArgument("energy_fraction must be in (0, 1]");
  }
  const Matrix gram = GramMatrix(items);
  EigenDecomposition eigen;
  MIPS_RETURN_IF_ERROR(JacobiEigenSymmetric(gram, &eigen));

  SvdTransform t;
  t.basis = std::move(eigen.vectors);

  // Eigenvalues of P^T P are squared singular values of P; clamp tiny
  // negatives from round-off.
  Real total = 0;
  for (Real& v : eigen.values) {
    v = std::max(Real{0}, v);
    // mips-tidy: allow(float-accumulation): spectrum-energy total picks the
    // head-dimension cut; it never contributes to a score.
    total += v;
  }
  const Index f = t.basis.rows();
  if (total <= 0) {
    t.head_dims = f;
    t.captured_energy = 1;
    return t;
  }
  Real cum = 0;
  t.head_dims = f;
  for (Index r = 0; r < f; ++r) {
    // mips-tidy: allow(float-accumulation): cumulative energy fraction for
    // the head/tail split; not a score.
    cum += eigen.values[static_cast<std::size_t>(r)];
    if (cum / total >= energy_fraction) {
      t.head_dims = r + 1;
      break;
    }
  }
  t.captured_energy = cum / total;
  return t;
}

Matrix ApplySvdToRows(const SvdTransform& t, const ConstRowBlock& in) {
  // out = in * basis^T: transformed coordinate r of a row v is
  // basis.Row(r) . v, which is exactly the NT GEMM form.
  Matrix out;
  GemmNT(in, ConstRowBlock(t.basis), &out);
  return out;
}

void Int16Quantizer::Quantize(const Real* in, Index n, int16_t* out) const {
  for (Index i = 0; i < n; ++i) {
    const Real scaled = std::nearbyint(scale * in[i]);
    out[i] = static_cast<int16_t>(
        std::clamp<Real>(scaled, -32767, 32767));
  }
}

Int16Quantizer MakeQuantizer(Real max_abs) {
  Int16Quantizer q;
  q.scale = max_abs > 0 ? Real{32767} / max_abs : Real{1};
  return q;
}

Real MaxAbsCoordinate(const ConstRowBlock& block) {
  Real max_abs = 0;
  const std::size_t total =
      static_cast<std::size_t>(block.rows()) * block.cols();
  for (std::size_t i = 0; i < total; ++i) {
    max_abs = std::max(max_abs, std::abs(block.data()[i]));
  }
  return max_abs;
}

int64_t DotInt16(const int16_t* a, const int16_t* b, Index n) {
  int64_t acc = 0;
  for (Index i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

int64_t L1Int16(const int16_t* a, Index n) {
  int64_t acc = 0;
  for (Index i = 0; i < n; ++i) acc += std::abs(static_cast<int32_t>(a[i]));
  return acc;
}

Real QuantizedUpperBound(int64_t int_dot, int64_t l1_a, int64_t l1_b, Index n,
                         Real scale_a, Real scale_b) {
  const Real numer = static_cast<Real>(int_dot) +
                     Real{0.5} * static_cast<Real>(l1_a + l1_b) +
                     Real{0.25} * static_cast<Real>(n);
  return numer / (scale_a * scale_b);
}

void ReductionTransform::ApplyToItem(const Real* in, Real* out) const {
  const Index f = in_dims();
  for (Index d = 0; d < f; ++d) {
    out[d] = in[d] + shift[static_cast<std::size_t>(d)];
  }
  out[f] = 1;
}

void ReductionTransform::ApplyToQuery(const Real* in, Real* out) const {
  const Index f = in_dims();
  for (Index d = 0; d < f; ++d) {
    out[d] = in[d];
  }
  // The shift correction is a dot product; route it through the dispatched
  // kernel instead of an ad-hoc scalar fold so its rounding order matches
  // every other reduction in the library.
  out[f] = -Dot(in, shift.data(), f);
}

ReductionTransform MakeReduction(const ConstRowBlock& items) {
  ReductionTransform t;
  const Index f = items.cols();
  t.shift.assign(static_cast<std::size_t>(f), 0);
  for (Index r = 0; r < items.rows(); ++r) {
    const Real* row = items.Row(r);
    for (Index d = 0; d < f; ++d) {
      auto& s = t.shift[static_cast<std::size_t>(d)];
      s = std::max(s, -row[d]);
    }
  }
  return t;
}

}  // namespace fexipro
}  // namespace mips
