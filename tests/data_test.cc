// Unit tests for src/data: synthetic model generation (the knobs that
// drive solver regimes), the 23 dataset presets, matrix I/O round trips,
// and the SGD MF trainer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>

#include "catalog/segment.h"
#include "data/datasets.h"
#include "data/io.h"
#include "data/mf_trainer.h"
#include "data/synthetic.h"
#include "linalg/blas.h"
#include "test_util.h"

namespace mips {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------------------ Synthetic

TEST(SyntheticTest, ShapesAndDeterminism) {
  SyntheticModelConfig config;
  config.num_users = 100;
  config.num_items = 50;
  config.num_factors = 8;
  config.seed = 42;
  auto a = GenerateSyntheticModel(config);
  auto b = GenerateSyntheticModel(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_users(), 100);
  EXPECT_EQ(a->num_items(), 50);
  EXPECT_EQ(a->num_factors(), 8);
  EXPECT_TRUE(a->users == b->users);
  EXPECT_TRUE(a->items == b->items);
  config.seed = 43;
  auto c = GenerateSyntheticModel(config);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->users == c->users);
}

TEST(SyntheticTest, RejectsBadDimensions) {
  SyntheticModelConfig config;
  config.num_users = 0;
  EXPECT_FALSE(GenerateSyntheticModel(config).ok());
  config.num_users = 10;
  config.num_factors = -1;
  EXPECT_FALSE(GenerateSyntheticModel(config).ok());
  config.num_factors = 4;
  config.user_modes = 0;
  EXPECT_FALSE(GenerateSyntheticModel(config).ok());
}

TEST(SyntheticTest, NonNegativeOption) {
  SyntheticModelConfig config;
  config.num_users = 50;
  config.num_items = 50;
  config.num_factors = 6;
  config.non_negative = true;
  auto model = GenerateSyntheticModel(config);
  ASSERT_TRUE(model.ok());
  for (std::size_t i = 0; i < model->users.size(); ++i) {
    EXPECT_GE(model->users.data()[i], 0.0);
  }
  for (std::size_t i = 0; i < model->items.size(); ++i) {
    EXPECT_GE(model->items.data()[i], 0.0);
  }
}

TEST(SyntheticTest, NormSigmaControlsItemNormSpread) {
  SyntheticModelConfig flat;
  flat.num_users = 10;
  flat.num_items = 3000;
  flat.num_factors = 16;
  flat.item_norm_sigma = 0.0;
  SyntheticModelConfig skewed = flat;
  skewed.item_norm_sigma = 1.0;

  auto flat_model = GenerateSyntheticModel(flat);
  auto skewed_model = GenerateSyntheticModel(skewed);
  ASSERT_TRUE(flat_model.ok());
  ASSERT_TRUE(skewed_model.ok());
  const auto flat_stats =
      ComputeVectorSetStats(ConstRowBlock(flat_model->items));
  const auto skewed_stats =
      ComputeVectorSetStats(ConstRowBlock(skewed_model->items));
  EXPECT_NEAR(flat_stats.norm_cv, 0.0, 1e-9);  // sigma=0: all norms equal
  EXPECT_GT(skewed_stats.norm_cv, 0.5);
  EXPECT_GT(skewed_stats.max_norm / skewed_stats.min_norm, 10.0);
}

TEST(SyntheticTest, DispersionControlsUserClustering) {
  // With zero dispersion, every user is exactly on one of the mode
  // directions -> at most user_modes distinct directions.
  SyntheticModelConfig config;
  config.num_users = 500;
  config.num_items = 10;
  config.num_factors = 12;
  config.user_modes = 4;
  config.user_dispersion = 0.0;
  auto model = GenerateSyntheticModel(config);
  ASSERT_TRUE(model.ok());
  std::unordered_set<unsigned long long> directions;
  for (Index u = 0; u < 500; ++u) {
    const Real* row = model->users.Row(u);
    const Real norm = Nrm2(row, 12);
    ASSERT_GT(norm, 0.0);
    // Hash the rounded unit direction.  Unsigned accumulation: the
    // polynomial hash overflows by design, and unsigned wraparound is
    // defined where the old signed form was UB (caught by UBSan).
    unsigned long long h = 0;
    for (Index d = 0; d < 12; ++d) {
      h = h * 1000003ull +
          static_cast<unsigned long long>(llround(row[d] / norm * 1e6));
    }
    directions.insert(h);
  }
  EXPECT_LE(directions.size(), 4u);
}

TEST(SyntheticTest, StatsOnEmptyBlock) {
  Matrix empty;
  const auto stats = ComputeVectorSetStats(ConstRowBlock(empty));
  EXPECT_EQ(stats.mean_norm, 0.0);
  EXPECT_EQ(stats.norm_cv, 0.0);
}

// -------------------------------------------------------------- Presets

TEST(DatasetsTest, TableOneNumbers) {
  const auto& infos = AllDatasetInfos();
  ASSERT_EQ(infos.size(), 4u);
  EXPECT_EQ(infos[0].num_users, 480189);
  EXPECT_EQ(infos[0].num_items, 17770);
  EXPECT_EQ(infos[0].num_ratings, 100480507);
  EXPECT_EQ(infos[1].num_users, 1000990);
  EXPECT_EQ(infos[1].num_items, 624961);
  EXPECT_EQ(infos[2].num_users, 1823179);
  EXPECT_EQ(infos[2].num_ratings, 699640226);
  EXPECT_EQ(infos[3].num_items, 1093514);
  EXPECT_EQ(infos[3].num_ratings, 0);  // GloVe has no ratings
}

TEST(DatasetsTest, TwentyThreePresets) {
  const auto& presets = AllModelPresets();
  EXPECT_EQ(presets.size(), 23u);
  std::unordered_set<std::string> ids;
  for (const auto& p : presets) {
    EXPECT_TRUE(ids.insert(p.id).second) << "duplicate id " << p.id;
    EXPECT_GT(p.factors, 0);
    EXPECT_GT(p.full_users, 0);
    EXPECT_GT(p.full_items, 0);
    EXPECT_GT(p.default_scale, 0.0);
    EXPECT_EQ(p.generator.num_factors, p.factors);
  }
}

TEST(DatasetsTest, FindPreset) {
  auto p = FindModelPreset("netflix-nomad-50");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->dataset, "Netflix");
  EXPECT_EQ(p->factors, 50);
  EXPECT_EQ(p->full_users, 480189);
  EXPECT_FALSE(FindModelPreset("nope-17").ok());
}

TEST(DatasetsTest, KddRefExists) {
  auto p = FindModelPreset("kdd-ref-51");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->factors, 51);
}

TEST(DatasetsTest, ScaledDimsLinearWithFloors) {
  auto p = FindModelPreset("netflix-nomad-50");
  ASSERT_TRUE(p.ok());
  const ScaledDims d1 = ComputeScaledDims(*p, 1.0);
  EXPECT_EQ(d1.users, static_cast<Index>(std::llround(480189 * 0.02)));
  EXPECT_GE(d1.items, 800);  // 17770 * 0.02 = 355 hits the floor
  const ScaledDims d2 = ComputeScaledDims(*p, 2.0);
  EXPECT_GT(d2.users, d1.users);
  // Full scale: multiplier 1/default_scale reproduces paper dimensions.
  const ScaledDims full = ComputeScaledDims(*p, 1.0 / p->default_scale);
  EXPECT_EQ(full.users, 480189);
  EXPECT_EQ(full.items, 17770);
  // Scale cannot exceed the full dimensions.
  const ScaledDims capped = ComputeScaledDims(*p, 1e9);
  EXPECT_EQ(capped.users, 480189);
}

TEST(DatasetsTest, MakeModelProducesScaledModel) {
  auto p = FindModelPreset("r2-nomad-10");
  ASSERT_TRUE(p.ok());
  auto model = MakeModel(*p, 0.05);  // tiny instance for the test
  ASSERT_TRUE(model.ok());
  const ScaledDims dims = ComputeScaledDims(*p, 0.05);
  EXPECT_EQ(model->num_users(), dims.users);
  EXPECT_EQ(model->num_items(), dims.items);
  EXPECT_EQ(model->num_factors(), 10);
  EXPECT_FALSE(MakeModel(*p, 0.0).ok());
}

TEST(DatasetsTest, RegimeCalibration) {
  // Netflix presets must have much flatter item norms than R2 presets —
  // that is the property the whole Figure 2/5 reproduction rests on.
  auto netflix = FindModelPreset("netflix-nomad-50");
  auto r2 = FindModelPreset("r2-nomad-50");
  ASSERT_TRUE(netflix.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(netflix->generator.item_norm_sigma + 0.3,
            r2->generator.item_norm_sigma);
  EXPECT_LT(r2->generator.user_dispersion,
            netflix->generator.user_dispersion);
}

// ------------------------------------------------------------------ I/O

TEST(IoTest, BinaryRoundTrip) {
  const Matrix m = testing::RandomMatrix(17, 9, 55);
  const std::string path = TempPath("m.bin");
  ASSERT_TRUE(SaveMatrixBinary(m, path).ok());
  auto loaded = LoadMatrixBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == m);
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("bad.bin");
  FILE* f = fopen(path.c_str(), "w");
  fputs("NOTAMATRIX", f);
  fclose(f);
  EXPECT_FALSE(LoadMatrixBinary(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, BinaryMissingFile) {
  EXPECT_EQ(LoadMatrixBinary("/nonexistent/file.bin").status().code(),
            StatusCode::kIOError);
}

TEST(IoTest, CsvRoundTrip) {
  const Matrix m = testing::RandomMatrix(5, 3, 66);
  const std::string path = TempPath("m.csv");
  ASSERT_TRUE(SaveMatrixCsv(m, path).ok());
  auto loaded = LoadMatrixCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->rows(), 5);
  ASSERT_EQ(loaded->cols(), 3);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->data()[i], m.data()[i]);  // %.17g round-trips
  }
  std::remove(path.c_str());
}

TEST(IoTest, CsvRejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  FILE* f = fopen(path.c_str(), "w");
  fputs("1,2,3\n4,5\n", f);
  fclose(f);
  EXPECT_FALSE(LoadMatrixCsv(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, CsvRejectsGarbage) {
  const std::string path = TempPath("garbage.csv");
  FILE* f = fopen(path.c_str(), "w");
  fputs("1,two,3\n", f);
  fclose(f);
  EXPECT_FALSE(LoadMatrixCsv(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, CsvEmptyFileGivesEmptyMatrix) {
  const std::string path = TempPath("empty.csv");
  FILE* f = fopen(path.c_str(), "w");
  fclose(f);
  auto loaded = LoadMatrixCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(IoTest, SegmentDurabilityRoundTrip) {
  // The persistence path a restart takes: train/save a model matrix in
  // the classic binary format, persist the item catalog as a
  // CatalogSegment, and reopen both — the mmapped segment must hand back
  // byte-identical rows an engine can Open() over directly.
  const Matrix items = testing::RandomMatrix(23, 7, 91);
  const std::string matrix_path = TempPath("catalog.bin");
  const std::string segment_path = TempPath("catalog.seg");
  ASSERT_TRUE(SaveMatrixBinary(items, matrix_path).ok());
  ASSERT_TRUE(CatalogSegment::Write(ConstRowBlock(items), segment_path).ok());

  auto reloaded = LoadMatrixBinary(matrix_path);
  ASSERT_TRUE(reloaded.ok());
  auto segment = CatalogSegment::Open(segment_path);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  ASSERT_EQ(segment->rows(), reloaded->rows());
  ASSERT_EQ(segment->cols(), reloaded->cols());
  EXPECT_EQ(std::memcmp(segment->items().Row(0), reloaded->data(),
                        sizeof(Real) * reloaded->size()),
            0);
  std::remove(matrix_path.c_str());
  std::remove(segment_path.c_str());
}

// ----------------------------------------------------------- MF trainer

TEST(MFTrainerTest, LearnsLowRankStructure) {
  const Index users = 80;
  const Index items = 60;
  const auto ratings =
      GenerateSyntheticRatings(users, items, 6000, /*true_rank=*/4,
                               /*noise=*/0.05, /*seed=*/77);
  MFTrainConfig config;
  config.num_factors = 6;
  config.epochs = 30;
  auto model = TrainMF(ratings, users, items, config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Real rmse = ComputeRMSE(*model, ratings);
  // Untrained RMSE is roughly the rating stddev (~1.6 for rank-4 N(0,0.8)
  // factors); training must cut it drastically.
  EXPECT_LT(rmse, 0.5);
}

TEST(MFTrainerTest, RmseDecreasesWithEpochs) {
  const auto ratings = GenerateSyntheticRatings(50, 40, 3000, 3, 0.05, 88);
  MFTrainConfig short_run;
  short_run.num_factors = 5;
  short_run.epochs = 1;
  MFTrainConfig long_run = short_run;
  long_run.epochs = 25;
  auto a = TrainMF(ratings, 50, 40, short_run);
  auto b = TrainMF(ratings, 50, 40, long_run);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(ComputeRMSE(*b, ratings), ComputeRMSE(*a, ratings));
}

TEST(MFTrainerTest, RejectsOutOfRangeRatings) {
  std::vector<Rating> ratings = {{5, 100, 1.0}};
  MFTrainConfig config;
  EXPECT_EQ(TrainMF(ratings, 10, 10, config).status().code(),
            StatusCode::kOutOfRange);
}

TEST(MFTrainerTest, RejectsBadConfig) {
  std::vector<Rating> ratings;
  MFTrainConfig config;
  config.num_factors = 0;
  EXPECT_FALSE(TrainMF(ratings, 10, 10, config).ok());
  config.num_factors = 4;
  config.epochs = 0;
  EXPECT_FALSE(TrainMF(ratings, 10, 10, config).ok());
}

TEST(MFTrainerTest, SyntheticRatingsDeterministic) {
  const auto a = GenerateSyntheticRatings(20, 20, 100, 3, 0.1, 5);
  const auto b = GenerateSyntheticRatings(20, 20, 100, 3, 0.1, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(MFTrainerTest, EmptyRatingsRmseZero) {
  MFModel model;
  model.users = testing::RandomMatrix(3, 2, 1);
  model.items = testing::RandomMatrix(3, 2, 2);
  EXPECT_EQ(ComputeRMSE(model, {}), 0.0);
}

}  // namespace
}  // namespace mips
