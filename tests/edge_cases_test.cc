// Adversarial and degenerate inputs across all solvers: exact ties,
// duplicate items, zero vectors, single-dimension factors, identical
// users, and large-k GEMM paths.  Every solver must stay exact (same
// score sequences as brute force) on all of them.

#include <gtest/gtest.h>

#include <cstring>

#include "core/maximus.h"
#include "core/optimus.h"
#include "core/registry.h"
#include "linalg/gemm.h"
#include "mips.h"
#include "solvers/bmm.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::MakeTestModel;
using ::mips::testing::RandomMatrix;

// Runs every registry solver on `model` and compares scores to BMM.
void ExpectAllSolversExact(const MFModel& model, Index k, Real tol = 1e-7) {
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(k, &expected).ok());
  for (const std::string& name : AvailableSolvers()) {
    auto solver = CreateSolver(name);
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items)).ok())
        << name;
    TopKResult got;
    ASSERT_TRUE((*solver)->TopKAll(k, &got).ok()) << name;
    {
      SCOPED_TRACE(name);
      ExpectSameTopKScores(got, expected, tol);
    }
  }
}

TEST(EdgeCasesTest, DuplicateItems) {
  // Every item appears twice: massive exact score ties.
  MFModel model = MakeTestModel(30, 40, 6, 1);
  for (Index i = 0; i < 20; ++i) {
    std::memcpy(model.items.Row(i + 20), model.items.Row(i),
                6 * sizeof(Real));
  }
  ExpectAllSolversExact(model, 5);
}

TEST(EdgeCasesTest, AllItemsIdentical) {
  MFModel model = MakeTestModel(20, 30, 5, 2);
  for (Index i = 1; i < 30; ++i) {
    std::memcpy(model.items.Row(i), model.items.Row(0), 5 * sizeof(Real));
  }
  ExpectAllSolversExact(model, 4);
}

TEST(EdgeCasesTest, AllUsersIdentical) {
  // theta_b collapses to 0 for MAXIMUS; LEMP calibration sees one user.
  MFModel model = MakeTestModel(25, 60, 7, 3);
  for (Index u = 1; u < 25; ++u) {
    std::memcpy(model.users.Row(u), model.users.Row(0), 7 * sizeof(Real));
  }
  ExpectAllSolversExact(model, 3);
}

TEST(EdgeCasesTest, ZeroItemsAmongNormal) {
  MFModel model = MakeTestModel(20, 50, 6, 4);
  for (Index i : {0, 7, 49}) {
    for (Index c = 0; c < 6; ++c) model.items(i, c) = 0;
  }
  ExpectAllSolversExact(model, 5);
}

TEST(EdgeCasesTest, AllZeroUsers) {
  MFModel model = MakeTestModel(10, 20, 4, 5);
  model.users.Fill(0);
  ExpectAllSolversExact(model, 3);
}

TEST(EdgeCasesTest, SingleFactorDimension) {
  // f=1: all angles are 0 or pi; checkpoints collapse; SVD is trivial.
  MFModel model = MakeTestModel(40, 30, 1, 6);
  ExpectAllSolversExact(model, 4);
}

TEST(EdgeCasesTest, SingleItem) {
  MFModel model = MakeTestModel(15, 1, 5, 7);
  ExpectAllSolversExact(model, 1);
}

TEST(EdgeCasesTest, SingleUser) {
  MFModel model = MakeTestModel(1, 100, 8, 8);
  ExpectAllSolversExact(model, 10);
}

TEST(EdgeCasesTest, KEqualsItemCount) {
  MFModel model = MakeTestModel(12, 17, 6, 9);
  ExpectAllSolversExact(model, 17);
}

TEST(EdgeCasesTest, NegativeOnlyFactors) {
  // All coordinates negative: FEXIPRO's reduction shift is maximal and
  // every inner product is positive.
  MFModel model = MakeTestModel(20, 40, 5, 10);
  for (std::size_t i = 0; i < model.users.size(); ++i) {
    model.users.data()[i] = -std::abs(model.users.data()[i]);
  }
  for (std::size_t i = 0; i < model.items.size(); ++i) {
    model.items.data()[i] = -std::abs(model.items.data()[i]);
  }
  ExpectAllSolversExact(model, 5);
}

TEST(EdgeCasesTest, HugeNormOutlierItem) {
  // One item dominates every top-1; indexes must still return the rest
  // of the top-K correctly.
  MFModel model = MakeTestModel(30, 50, 6, 11);
  for (Index c = 0; c < 6; ++c) model.items(13, c) *= 1e6;
  ExpectAllSolversExact(model, 5, /*tol=*/1e-2);  // absolute scores ~1e6
}

TEST(EdgeCasesTest, ConstantScoresEverywhere) {
  // users = e0 * a, items = e0 * b: every (u,i) score is a*b — total tie.
  MFModel model;
  model.users.Resize(10, 3);
  model.items.Resize(12, 3);
  for (Index u = 0; u < 10; ++u) model.users(u, 0) = 2.0;
  for (Index i = 0; i < 12; ++i) model.items(i, 0) = 0.5;
  ExpectAllSolversExact(model, 4);
}

// GEMM K-blocking path: k > 2*KC exercises three K panels and repeated
// C accumulation.
TEST(EdgeCasesTest, GemmDeepK) {
  const Index m = 37;
  const Index n = 53;
  const Index k = 700;  // KC = 256 -> 3 panels
  const Matrix a = RandomMatrix(m, k, 21);
  const Matrix b = RandomMatrix(n, k, 22);
  Matrix c(m, n);
  Matrix ref(m, n);
  GemmNT(a.data(), m, b.data(), n, k, 1, 0, c.data(), n);
  GemmNaiveNT(a.data(), m, b.data(), n, k, 1, 0, ref.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i],
                1e-8 * (1 + std::abs(ref.data()[i])));
  }
}

// GEMM N-blocking path: n > NC (2048) exercises multiple column panels.
TEST(EdgeCasesTest, GemmWideN) {
  const Index m = 9;
  const Index n = 5000;
  const Index k = 33;
  const Matrix a = RandomMatrix(m, k, 23);
  const Matrix b = RandomMatrix(n, k, 24);
  Matrix c(m, n);
  Matrix ref(m, n);
  GemmNT(a.data(), m, b.data(), n, k, 1, 0, c.data(), n);
  GemmNaiveNT(a.data(), m, b.data(), n, k, 1, 0, ref.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i],
                1e-9 * (1 + std::abs(ref.data()[i])));
  }
}

// Randomized GEMM property sweep: 40 random shapes against the naive
// reference.
TEST(EdgeCasesTest, GemmRandomShapeSweep) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const Index m = 1 + static_cast<Index>(rng.UniformInt(90));
    const Index n = 1 + static_cast<Index>(rng.UniformInt(150));
    const Index k = 1 + static_cast<Index>(rng.UniformInt(70));
    const Matrix a = RandomMatrix(m, k, 100 + trial);
    const Matrix b = RandomMatrix(n, k, 200 + trial);
    Matrix c(m, n);
    Matrix ref(m, n);
    GemmNT(a.data(), m, b.data(), n, k, 1, 0, c.data(), n);
    GemmNaiveNT(a.data(), m, b.data(), n, k, 1, 0, ref.data(), n);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c.data()[i], ref.data()[i],
                  1e-9 * (1 + std::abs(ref.data()[i])))
          << "trial " << trial << " shape " << m << "x" << n << "x" << k;
    }
  }
}

TEST(EdgeCasesTest, OptimusWithDuplicateStrategyTypes) {
  // Two BMM instances plus MAXIMUS: degenerate but must still work.
  const MFModel model = MakeTestModel(200, 100, 8, 12);
  BmmSolver bmm1;
  BmmSolver bmm2;
  MaximusSolver maximus;
  OptimusOptions options;
  options.l2_cache_bytes = 8 * 1024;
  Optimus optimus(options);
  TopKResult out;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(model.users), ConstRowBlock(model.items),
                       3, {&bmm1, &bmm2, &maximus}, &out, &report)
                  .ok());
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(3, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-7);
}

TEST(EdgeCasesTest, UmbrellaHeaderCompilesAndWorks) {
  // mips.h pulls in the whole public API; spot-check a cross-module flow.
  const MFModel model = MakeTestModel(50, 30, 4, 13);
  auto solver = CreateSolver("maximus");
  ASSERT_TRUE(solver.ok());
  ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE((*solver)->TopKAll(2, &out).ok());
  EXPECT_EQ(out.num_queries(), 50);
}

}  // namespace
}  // namespace mips
