// mips-unchecked-status BAD fixture: Status/StatusOr results silently
// discarded.  Each must produce a diagnostic.

#include <string>

#include "common/status.h"

namespace fixture {

using mips::Status;
using mips::StatusOr;

Status DoThing();
StatusOr<int> ComputeThing();
Status OtherThing();

void DiscardInCompound() {
  // expect-diagnostic: result of 'DoThing'
  DoThing();
}

void DiscardStatusOr() {
  // expect-diagnostic: result of 'ComputeThing'
  ComputeThing();
}

void DiscardAsIfBody(bool retry) {
  if (retry)
    // expect-diagnostic: result of 'DoThing'
    DoThing();
}

void DiscardInLoop(int n) {
  for (int i = 0; i < n; ++i) {
    // expect-diagnostic: result of 'DoThing'
    DoThing();
  }
}

void DiscardViaCommaOperator() {
  // BOTH sides of a statement-position comma are discarded: the LHS by
  // the comma itself, the RHS because the comma's value is thrown away.
  // expect-diagnostic: result of 'DoThing'
  // expect-diagnostic: result of 'OtherThing'
  DoThing(), OtherThing();
}

}  // namespace fixture
