// Quickstart: the smallest end-to-end use of the library.
//
//   1. Build (or load) a factored model: a users matrix and an items
//      matrix with the same number of latent factors.
//   2. Open a MipsEngine with the strategies you are willing to run,
//      written as specs — strategies are data, not types.  OPTIMUS
//      builds each candidate index, measures a small user sample, and
//      binds the engine to the winner.
//   3. Read back exact top-K recommendations for every user.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "data/synthetic.h"

int main() {
  using namespace mips;

  // A synthetic matrix-factorization model: 20,000 users x 2,000 items,
  // 32 latent factors.  Substitute your own matrices here — any row-major
  // double data works via ConstRowBlock(ptr, rows, cols).
  SyntheticModelConfig config;
  config.num_users = 20000;
  config.num_items = 2000;
  config.num_factors = 32;
  config.item_norm_sigma = 0.6;  // mildly skewed item norms
  config.seed = 2024;
  auto model = GenerateSyntheticModel(config);
  model.status().CheckOK();

  // Candidate serving strategies, as registry specs.  Any registered
  // solver works here; key=value pairs override its schema defaults.
  EngineOptions options;
  options.k = 10;
  options.solvers = {"bmm", "maximus:clusters=32"};
  auto engine = MipsEngine::Open(ConstRowBlock(model->users),
                                 ConstRowBlock(model->items), options);
  engine.status().CheckOK();

  const OptimusReport& report = (*engine)->decision_report();
  std::printf("OPTIMUS chose: %s (sample of %d users, gemm kernel: %s)\n",
              report.chosen.c_str(), report.sample_size,
              report.gemm_kernel.c_str());
  for (const auto& est : report.estimates) {
    std::printf("  %-12s est. %.3f s end-to-end (construction %.3f s)\n",
                est.name.c_str(), est.est_total_seconds,
                est.construction_seconds);
  }

  TopKResult top10;
  (*engine)->TopKAll(10, &top10).CheckOK();
  std::printf("served %d users; cumulative serve time %.3f s\n\n",
              (*engine)->num_users(), (*engine)->stats().serve_seconds);

  // Top-5 of the first three users.
  for (Index u = 0; u < 3; ++u) {
    std::printf("user %d:", u);
    for (Index e = 0; e < 5; ++e) {
      const TopKEntry& entry = top10.Row(u)[e];
      std::printf("  item %d (%.3f)", entry.item, entry.score);
    }
    std::printf("\n");
  }
  return 0;
}
