// Ablation: MAXIMUS parameter sensitivity (Section III-D).
//
// The paper: "MAXIMUS's runtime is robust across various settings of B,
// C, and i. After conducting a parameter sweep, we found that B = 4096,
// |C| = 8, and i = 3 is effective for many inputs.  (Surprisingly, only a
// few iterations of k-means are needed to produce an adequate set of
// clusters.)"  This bench sweeps each parameter around the defaults on a
// BMM-friendly and an index-friendly model and reports end-to-end time
// and w-bar, reproducing the robustness claim (and the one sharp edge:
// block size on unprunable data — see Figure 8).

#include <cstdio>

#include "bench_util.h"
#include "core/maximus.h"

using namespace mips;
using namespace mips::bench;

namespace {

void RunRow(bench::TablePrinter* table, const ModelPreset& preset,
            const MFModel& model, const char* varied,
            const std::string& value, const MaximusOptions& options) {
  MaximusSolver maximus(options);
  const EndToEndTiming t = TimeEndToEnd(&maximus, model, /*k=*/1);
  table->AddRow({preset.id, varied, value, FormatSeconds(t.total()),
                 Fmt(maximus.mean_items_visited(), 1)});
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);

  std::printf("== Ablation: MAXIMUS parameters B / |C| / i (K=1; paper "
              "defaults B=4096 at full scale, |C|=8, i=3) ==\n");
  TablePrinter table({"Model", "Parameter", "Value", "End-to-end", "w-bar"});
  for (const char* id : {"netflix-nomad-50", "r2-nomad-50"}) {
    auto preset = FindModelPreset(id);
    preset.status().CheckOK();
    const MFModel model = MakeBenchModel(*preset, config);

    // Block size sweep (0 = no blocking, -1 = auto segments).
    for (const Index block : {Index{0}, Index{-1}, Index{256}, Index{1024},
                              Index{4096}}) {
      MaximusOptions options;
      options.block_size = block;
      const std::string label = block == 0    ? "disabled"
                                : block == -1 ? "auto (|I|/8)"
                                              : FmtInt(block);
      RunRow(&table, *preset, model, "B", label, options);
    }
    // Cluster count sweep.
    for (const Index clusters : {2, 4, 8, 16, 32}) {
      MaximusOptions options;
      options.num_clusters = clusters;
      RunRow(&table, *preset, model, "|C|", FmtInt(clusters), options);
    }
    // k-means iteration sweep (the paper's "only a few needed").
    for (const int iters : {1, 3, 10}) {
      MaximusOptions options;
      options.kmeans_iterations = iters;
      RunRow(&table, *preset, model, "i", FmtInt(iters), options);
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: runtime is robust across B, |C|, and i; a handful "
      "of k-means iterations suffices (i=1 vs i=10 moves w-bar little); "
      "more clusters tighten theta_b (lower w-bar) but add construction "
      "and dilute per-cluster GEMM batches.\n");
  return 0;
}
