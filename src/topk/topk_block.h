// Top-K extraction over dense score blocks.
//
// After BMM (or MAXIMUS's shared item-blocking GEMM) produces a b x n block
// of scores, each row must be reduced to its K largest entries.  These
// helpers implement that reduction with a per-row bounded heap.

#ifndef MIPS_TOPK_TOPK_BLOCK_H_
#define MIPS_TOPK_TOPK_BLOCK_H_

#include "topk/result.h"
#include "topk/topk_heap.h"

namespace mips {

/// Reduces one score row scores[0..n) to its top K entries (written to
/// out[0..k), sorted descending).  Item j is reported as id
/// `item_ids ? item_ids[j] : j + item_offset`.
void TopKFromRow(const Real* scores, Index n, Index k, Index item_offset,
                 const Index* item_ids, TopKEntry* out);

/// Reduces an m x n score block (leading dimension lds) into result rows
/// [row_offset, row_offset + m) of *out.  Plain column indices are offset
/// by `item_offset` or remapped through `item_ids` (length n) when given.
void TopKFromScoreBlock(const Real* scores, Index m, Index n, Index lds,
                        Index k, Index item_offset, const Index* item_ids,
                        TopKResult* out, Index row_offset);

}  // namespace mips

#endif  // MIPS_TOPK_TOPK_BLOCK_H_
