// Offline analytical cost model for blocked matrix multiply
// (Section IV-A, "Offline Performance Profiling for BMM").
//
// Dense GEMM is compute-bound, so its runtime is predictable from the
// FLOP count and the machine's sustained FLOP rate: t = 2*m*n*k / rate.
// The paper reports this model accurate within ~5% for the multiply
// itself — but NOT for the full BMM top-K pipeline, because the min-heap
// selection is data-dependent and contributes >= 9.5% of runtime on large
// models.  That gap is why OPTIMUS uses online sampling instead; we
// reproduce both the model and its documented limitation
// (bench/cost_model_validation, tests/cost_model in integration_test).
//
// Calibration measures the sustained rate once with a probe GEMM sized
// well past the L2 cache (analogous to "FLOPs per cycle of the CPU" in
// the paper, but robust to unknown clock/SIMD width).

#ifndef MIPS_CORE_COST_MODEL_H_
#define MIPS_CORE_COST_MODEL_H_

#include <cstdint>

#include "common/status.h"
#include "common/types.h"

namespace mips {

/// Calibrated analytical model of GEMM runtime.
class BmmCostModel {
 public:
  /// Builds a model with a known sustained rate (FLOP/s).  Mostly for
  /// tests; use Calibrate() in production.
  explicit BmmCostModel(double sustained_flops)
      : sustained_flops_(sustained_flops) {}

  /// Measures the sustained GEMM rate with a probe multiply, repeated
  /// `probe_repeats` times, keeping the best rate.  The default probe
  /// shape (2048 x 2048 x 50) matches the MIPS scoring regime: many score
  /// rows/columns, latent-factor-sized K — rates there are within ~15% of
  /// the real model shapes, versus ~40% optimistic for a cache-resident
  /// square probe.
  static StatusOr<BmmCostModel> Calibrate(Index probe_m = 2048,
                                          Index probe_n = 2048,
                                          Index probe_k = 50,
                                          int probe_repeats = 3);

  /// Predicted seconds for an (m x k) * (k x n) multiply.
  double PredictGemmSeconds(int64_t m, int64_t n, int64_t k) const;

  /// Predicted seconds for the full BMM top-K pipeline EXCLUDING the
  /// data-dependent heap pass — i.e. the quantity the paper says the
  /// model can predict.  Identical to PredictGemmSeconds; named
  /// separately to make call sites self-documenting.
  double PredictScoringSeconds(int64_t users, int64_t items,
                               int64_t factors) const {
    return PredictGemmSeconds(users, items, factors);
  }

  /// Sustained rate used by the model, in FLOP/s.
  double sustained_flops() const { return sustained_flops_; }

 private:
  double sustained_flops_;
};

}  // namespace mips

#endif  // MIPS_CORE_COST_MODEL_H_
