// mips-heap-bound-strictness GOOD fixture: the sanctioned comparison
// shapes.  Must produce no diagnostics — in particular not on
// WouldAccept's own inclusive `>=` (heap on the right), nor on threshold
// guards against compile-time constants.

#include <vector>

#include "topk/topk_heap.h"

namespace fixture {

using mips::Index;
using mips::Real;
using mips::TopKHeap;

void StrictPrune(TopKHeap& heap, const std::vector<Real>& bounds,
                 const std::vector<Real>& scores) {
  for (Index pos = 0; pos < static_cast<Index>(bounds.size()); ++pos) {
    // The correct prune: strictly below the minimum, so a bound that
    // ties the heap minimum still reaches Push for the id tie-break.
    if (heap.full() && bounds[static_cast<std::size_t>(pos)] < heap.MinScore()) {
      break;
    }
    heap.Push(pos, scores[static_cast<std::size_t>(pos)]);
  }
}

void SnapshotStrictPrune(TopKHeap& heap, const std::vector<Real>& bounds,
                         const std::vector<Real>& scores) {
  const Real min_h = heap.MinScore();
  for (Index pos = 0; pos < static_cast<Index>(bounds.size()); ++pos) {
    if (heap.full() && bounds[static_cast<std::size_t>(pos)] < min_h) continue;
    heap.Push(pos, scores[static_cast<std::size_t>(pos)]);
  }
}

bool InclusiveAccept(const TopKHeap& heap, Real score) {
  // The inclusive ACCEPT test (WouldAccept's own body): ties must be
  // accepted, so `>=` with the heap minimum on the RIGHT is correct.
  return score >= heap.MinScore();
}

bool PreferTheNamedApi(const TopKHeap& heap, Real score) {
  return heap.WouldAccept(score);
}

bool PruningUsable(const TopKHeap& heap) {
  // Threshold guard against a compile-time constant: decides whether
  // cutoffs apply at all; skipping pruning is always exact.
  return heap.full() && !(heap.MinScore() <= Real{0});
}

}  // namespace fixture
