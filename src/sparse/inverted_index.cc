#include "sparse/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mips {
namespace {

/// Relative slack applied to every pruning bound before the strictly-
/// below comparison.  The bounds are sums of at most dims() nonnegative
/// terms, so their worst-case downward rounding error is ~dims() * 2^-53
/// relative (~5e-13 at f = 4096); inflating by 1e-9 dominates that with
/// three orders of magnitude to spare, at the cost of admitting (and
/// exactly rescoring) a vanishing sliver of borderline items.  Inflation
/// only ever makes pruning more conservative, so exactness is never at
/// stake — this guards the *proof* that a pruned item's true score is
/// strictly below the heap minimum.
constexpr Real kBoundSlack = 1e-9;

inline Real Inflate(Real bound) { return bound * (Real{1} + kBoundSlack); }

inline Index GlobalId(std::span<const Index> item_ids, Index local) {
  return item_ids.empty() ? local : item_ids[static_cast<std::size_t>(local)];
}

/// Pushes (global id, +0.0) for every item not stamped this query.  Only
/// called when no item was ever pruned (see the callers' conditions), in
/// which case every unstamped item has zero overlap with the query's
/// nonzero dimensions and its dense GEMM score is exactly +0.0: the dense
/// accumulator starts at +0.0 and only ever adds zero products, which
/// cannot move it off +0.0 under round-to-nearest-even.
void SweepZeroOverlapItems(const InvertedIndex& index,
                           std::span<const Index> item_ids,
                           const SparseQueryScratch& scratch, TopKHeap* heap) {
  for (Index i = 0; i < index.items(); ++i) {
    if (scratch.stamp[static_cast<std::size_t>(i)] != scratch.epoch) {
      heap->Push(GlobalId(item_ids, i), Real{0});
    }
  }
}

/// Value-ordered traversal with admission bounds (postings=abs).
void QueryAbsOrdered(const CsrMatrix& csr, const InvertedIndex& index,
                     const Real* q, std::span<const Index> item_ids,
                     SparseQueryScratch* scratch, TopKHeap* heap,
                     SparseQueryStats* stats) {
  // Contribution caps c_d = |q_d| * max_i |v_{i,d}| for the dimensions
  // that can contribute at all, largest first (dimension id breaks ties
  // so the traversal is deterministic).
  auto& dims = scratch->dims;
  dims.clear();
  for (Index d = 0; d < index.dims(); ++d) {
    if (q[d] == Real{0}) continue;
    const Real cap = std::abs(q[d]) * index.MaxAbs(d);
    if (cap == Real{0}) continue;  // empty posting list
    dims.emplace_back(cap, d);
  }
  std::sort(dims.begin(), dims.end(),
            [](const std::pair<Real, Index>& a, const std::pair<Real, Index>& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });

  // suffix[j] = sum of caps j..m-1: the most the not-yet-started lists
  // can add to ANY item's score.
  const std::size_t m = dims.size();
  auto& suffix = scratch->suffix;
  suffix.assign(m + 1, 0);
  for (std::size_t j = m; j-- > 0;) {
    suffix[j] = suffix[j + 1] + dims[j].first;
  }

  // carry = sum over already-cut lists of |q_d| * |v_cut|: the most a cut
  // tail can still add to any single item (lists hold one posting per
  // item, and the tail's |values| are <= |v_cut| by the abs ordering).
  Real carry = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if (heap->full() && Inflate(suffix[j] + carry) < heap->MinScore()) {
      // No un-admitted item can reach the heap minimum any more.
      if (stats != nullptr) {
        stats->lists_pruned += static_cast<int64_t>(m - j);
      }
      return;
    }
    const Index d = dims[j].second;
    const Real aq = std::abs(q[d]);
    for (const Posting& p : index.Dim(d)) {
      if (stats != nullptr) ++stats->postings_visited;
      if (scratch->stamp[static_cast<std::size_t>(p.item)] == scratch->epoch) {
        continue;  // already rescored exactly
      }
      const Real head = aq * std::abs(p.value);
      const Real bound = head + suffix[j + 1] + carry;
      if (heap->full() && Inflate(bound) < heap->MinScore()) {
        // Every later posting in this list has a smaller head term, so
        // the whole tail is dominated; fold its per-item cap into carry.
        // mips-tidy: allow(float-accumulation): carry is a conservative
        // prune bound, never a score; scores go through GemmEquivalentDot.
        carry += head;
        if (stats != nullptr) ++stats->lists_pruned;
        break;
      }
      scratch->stamp[static_cast<std::size_t>(p.item)] = scratch->epoch;
      const Real score = csr.GemmEquivalentDot(p.item, q);
      if (stats != nullptr) ++stats->items_rescored;
      heap->Push(GlobalId(item_ids, p.item), score);
    }
  }
}

/// Term-at-a-time accumulation in the dense kernel's panel order
/// (postings=id).  No pruning: every touched item's score is built by
/// the identical per-K-panel fma chain the blocked GEMM runs.
void QueryItemOrdered(const InvertedIndex& index, const Real* q,
                      std::span<const Index> item_ids,
                      SparseQueryScratch* scratch, TopKHeap* heap,
                      SparseQueryStats* stats) {
  auto& touched = scratch->touched;
  touched.clear();
  Index panel_end = kGemmKPanel;
  for (Index d = 0; d < index.dims(); ++d) {
    if (q[d] == Real{0}) continue;
    const std::span<const Posting> list = index.Dim(d);
    if (list.empty()) continue;
    if (d >= panel_end) {
      // Panel boundary: fold the finished panel into the running totals,
      // exactly where the dense driver folds its K panel into C.
      // (Panels with no query overlap fold +0.0 in the dense chain — an
      // exact no-op — so only crossed-into panels need a flush.)
      for (const Index i : touched) {
        const auto s = static_cast<std::size_t>(i);
        // mips-tidy: allow(float-accumulation): this IS the sanctioned
        // per-K-panel fold — the same total += acc rounding the dense GEMM
        // driver performs at each panel boundary.
        scratch->score_acc[s] += scratch->panel_acc[s];
        scratch->panel_acc[s] = 0;
      }
      panel_end = (d / kGemmKPanel + 1) * kGemmKPanel;
    }
    const Real qd = q[d];
    for (const Posting& p : list) {
      if (stats != nullptr) ++stats->postings_visited;
      const auto s = static_cast<std::size_t>(p.item);
      if (scratch->stamp[s] != scratch->epoch) {
        scratch->stamp[s] = scratch->epoch;
        scratch->panel_acc[s] = 0;
        scratch->score_acc[s] = 0;
        touched.push_back(p.item);
      }
      scratch->panel_acc[s] = std::fma(p.value, qd, scratch->panel_acc[s]);
    }
  }
  for (const Index i : touched) {
    const auto s = static_cast<std::size_t>(i);
    heap->Push(GlobalId(item_ids, i), scratch->score_acc[s] +
                                          scratch->panel_acc[s]);
  }
}

}  // namespace

InvertedIndex InvertedIndex::Build(const CsrMatrix& csr, PostingOrder order) {
  InvertedIndex index;
  index.order_ = order;
  index.items_ = csr.rows();
  index.dims_ = csr.cols();
  index.max_abs_.assign(static_cast<std::size_t>(csr.cols()), 0);

  std::vector<int64_t> counts(static_cast<std::size_t>(csr.cols()), 0);
  for (Index r = 0; r < csr.rows(); ++r) {
    for (const Index c : csr.RowCols(r)) {
      ++counts[static_cast<std::size_t>(c)];
    }
  }
  index.dim_ptr_.assign(static_cast<std::size_t>(csr.cols()) + 1, 0);
  for (Index d = 0; d < csr.cols(); ++d) {
    index.dim_ptr_[static_cast<std::size_t>(d) + 1] =
        index.dim_ptr_[static_cast<std::size_t>(d)] +
        counts[static_cast<std::size_t>(d)];
  }
  index.postings_.resize(static_cast<std::size_t>(csr.nnz()));

  // Row-ascending fill leaves every list in item-ascending order.
  std::vector<int64_t> cursor(index.dim_ptr_.begin(),
                              index.dim_ptr_.end() - 1);
  for (Index r = 0; r < csr.rows(); ++r) {
    const std::span<const Index> cs = csr.RowCols(r);
    const std::span<const Real> vs = csr.RowValues(r);
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const auto d = static_cast<std::size_t>(cs[i]);
      index.postings_[static_cast<std::size_t>(cursor[d]++)] = {r, vs[i]};
      index.max_abs_[d] = std::max(index.max_abs_[d], std::abs(vs[i]));
    }
  }

  if (order == PostingOrder::kAbsDescending) {
    for (Index d = 0; d < csr.cols(); ++d) {
      auto* begin = index.postings_.data() +
                    index.dim_ptr_[static_cast<std::size_t>(d)];
      auto* end = index.postings_.data() +
                  index.dim_ptr_[static_cast<std::size_t>(d) + 1];
      std::sort(begin, end, [](const Posting& a, const Posting& b) {
        const Real aa = std::abs(a.value);
        const Real ab = std::abs(b.value);
        return aa != ab ? aa > ab : a.item < b.item;
      });
    }
  }
  index.DcheckInvariants();
  return index;
}

void InvertedIndex::DcheckInvariants() const {
#ifdef MIPS_ENABLE_DCHECKS
  MIPS_DCHECK_EQ(dim_ptr_.size(), static_cast<std::size_t>(dims_) + 1);
  MIPS_DCHECK_EQ(dim_ptr_.back(), static_cast<int64_t>(postings_.size()));
  for (Index d = 0; d < dims_; ++d) {
    MIPS_DCHECK_LE(dim_ptr_[static_cast<std::size_t>(d)],
                   dim_ptr_[static_cast<std::size_t>(d) + 1]);
    const std::span<const Posting> list = Dim(d);
    for (std::size_t i = 0; i < list.size(); ++i) {
      MIPS_DCHECK_GE(list[i].item, 0);
      MIPS_DCHECK_LT(list[i].item, items_);
      MIPS_DCHECK_NE(list[i].value, Real{0});
      MIPS_DCHECK_LE(std::abs(list[i].value), MaxAbs(d));
      if (i == 0) continue;
      if (order_ == PostingOrder::kItemAscending) {
        MIPS_DCHECK_LT(list[i - 1].item, list[i].item);
      } else {
        const Real prev = std::abs(list[i - 1].value);
        const Real cur = std::abs(list[i].value);
        MIPS_DCHECK(prev > cur ||
                    (prev == cur && list[i - 1].item < list[i].item));
      }
    }
  }
#endif
}

void SparseTopKQuery(const CsrMatrix& csr, const InvertedIndex& index,
                     const Real* q, Index k,
                     std::span<const Index> item_ids,
                     SparseQueryScratch* scratch, TopKHeap* heap,
                     TopKEntry* out_row, SparseQueryStats* stats) {
  MIPS_DCHECK_EQ(heap->k(), k);
  MIPS_DCHECK(item_ids.empty() ||
              item_ids.size() == static_cast<std::size_t>(csr.rows()));
  scratch->Reserve(csr.rows());
  ++scratch->epoch;
  heap->Clear();

  if (index.order() == PostingOrder::kAbsDescending) {
    QueryAbsOrdered(csr, index, q, item_ids, scratch, heap, stats);
  } else {
    QueryItemOrdered(index, q, item_ids, scratch, heap, stats);
  }

  // Items never touched by the walk score exactly +0.0 (zero overlap).
  // They can only matter when the heap still has room or its minimum is
  // not positive — and in exactly that case no item was ever pruned
  // (pruning needs a full heap with MinScore() above a nonnegative
  // bound, and the minimum never decreases once full), so "untouched"
  // really does mean zero overlap and the sweep is exact.  When the
  // minimum is positive the sweep is provably irrelevant and skipped.
  if (!heap->full() || heap->MinScore() <= Real{0}) {
    SweepZeroOverlapItems(index, item_ids, *scratch, heap);
  }
  heap->ExtractDescending(out_row);
}

}  // namespace mips
