// Figure 7: OPTIMUS runtime estimates vs user-sample ratio.
//
// On KDD-REF (f=51), K=1: for every method (LEMP, FEXIPRO-SI/SIR,
// MAXIMUS, Blocked MM) estimate the total serving runtime by measuring a
// random user sample and extrapolating, at sample ratios from 0.01% to 1%
// (4 runs each, reporting mean +/- stddev), next to the true measured
// runtime.  The paper's findings to reproduce: estimates are robust and
// low-variance for MAXIMUS/BMM/FEXIPRO even below 1%, while LEMP's
// estimates have much higher variance because its per-bucket algorithm
// adaptation re-runs per sample.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "stats/sampling.h"
#include "stats/welford.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  config.scale = 5.0;  // fig7 needs a user-rich instance; see below
  int32_t runs = 4;
  flags.Int32("runs", &runs, "estimate repetitions per sample ratio");
  ParseBenchFlags(argc, argv, &flags, &config);

  auto preset = FindModelPreset("kdd-ref-51");
  preset.status().CheckOK();
  const MFModel model = MakeBenchModel(*preset, config);
  const Index n = model.num_users();
  std::printf("== Figure 7: OPTIMUS runtime estimates on %s "
              "(%d users x %d items), K=1 ==\n",
              preset->display_name.c_str(), n, model.num_items());

  // The paper sweeps sample *ratios* of the full-scale KDD user count
  // (1,000,990 users): 0.01% .. 1% = 100 .. 10,000 sampled users.  At
  // bench scale a raw ratio would mean a 1-user sample, which measures
  // nothing; we therefore sweep the paper's *absolute* sample sizes
  // (ratio x full-scale |U|), capped at half the instance.
  const std::vector<double> ratios = {0.0001, 0.0005, 0.001, 0.005, 0.01};
  const double full_users = static_cast<double>(preset->full_users);
  std::printf("(sample sizes = ratio x full-scale |U| = ratio x %.0f)\n\n",
              full_users);
  TablePrinter table({"Method", "true time", "sample % (of full |U|)",
                      "sampled users", "estimate mean", "estimate stddev",
                      "rel. error"});
  for (const char* name :
       {"lemp", "fexipro-si", "fexipro-sir", "maximus", "bmm"}) {
    auto truth_solver = MakeSolver(name);
    truth_solver
        ->Prepare(ConstRowBlock(model.users), ConstRowBlock(model.items))
        .CheckOK();
    WallTimer timer;
    TopKResult result;
    truth_solver->TopKAll(1, &result).CheckOK();
    const double true_time = timer.Seconds();

    for (const double ratio : ratios) {
      Welford estimates;
      const Index count = std::min<Index>(
          n / 2, std::max<Index>(1, static_cast<Index>(
                                        std::llround(ratio * full_users))));
      for (int run = 0; run < runs; ++run) {
        Rng rng(1000 + static_cast<uint64_t>(run) * 7919 +
                static_cast<uint64_t>(ratio * 1e7));
        const auto sample = SampleWithoutReplacement(n, count, &rng);
        // Fresh solver per run, exactly as OPTIMUS measures: adaptive
        // indexes (LEMP) re-calibrate on each sample, which is the source
        // of their estimate variance in the paper.
        auto solver = MakeSolver(name);
        solver->Prepare(ConstRowBlock(model.users),
                        ConstRowBlock(model.items))
            .CheckOK();
        WallTimer sample_timer;
        TopKResult sample_result;
        solver->TopKForUsers(1, sample, &sample_result).CheckOK();
        const double per_user =
            sample_timer.Seconds() / static_cast<double>(sample.size());
        estimates.Add(per_user * n);
      }
      table.AddRow({name, FormatSeconds(true_time),
                    Fmt(ratio * 100.0, 2) + " %", FmtInt(count),
                    FormatSeconds(estimates.mean()),
                    FormatSeconds(estimates.stddev()),
                    Fmt(100.0 * std::abs(estimates.mean() - true_time) /
                            true_time,
                        1) +
                        " %"});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: estimates converge to the truth by a <1%% sample; "
      "LEMP shows markedly higher estimate variance than MAXIMUS / BMM / "
      "FEXIPRO (its per-bucket retrieval adaptation depends on the "
      "sample); tiny BMM samples under-utilize the blocked kernel and "
      "mis-estimate until the sample fills the L2 cache.\n");
  return 0;
}
