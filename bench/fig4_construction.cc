// Figure 4: index construction time vs end-to-end K=1 retrieval time for
// LEMP and FEXIPRO on Netflix f in {10, 50, 100}.
//
// The paper's point: construction is orders of magnitude cheaper than
// retrieval, which is why OPTIMUS can afford to always build the full
// index before deciding whether to use it.

#include <cstdio>

#include "bench_util.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);

  std::printf("== Figure 4: index construction vs end-to-end retrieval "
              "(K=1, all users) ==\n");
  TablePrinter table({"Model", "Index", "Construction", "Retrieval",
                      "Construct/Total"});
  for (const char* id :
       {"netflix-dsgd-10", "netflix-dsgd-50", "netflix-dsgd-100"}) {
    auto preset = FindModelPreset(id);
    preset.status().CheckOK();
    const MFModel model = MakeBenchModel(*preset, config);
    for (const char* solver_name :
         {"lemp", "fexipro-si", "fexipro-sir", "maximus"}) {
      auto solver = MakeSolver(solver_name);
      const EndToEndTiming t = TimeEndToEnd(solver.get(), model, /*k=*/1);
      table.AddRow({preset->display_name, solver_name,
                    FormatSeconds(t.prepare_seconds),
                    FormatSeconds(t.query_seconds),
                    Fmt(100.0 * t.prepare_seconds / t.total(), 2) + " %"});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: construction is multiple orders of magnitude below "
      "retrieval (avg overhead: LEMP 0.5%%, FEXIPRO 1.9%%, MAXIMUS "
      "1.5%%).\n");
  return 0;
}
