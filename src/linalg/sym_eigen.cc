#include "linalg/sym_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/gemm.h"

namespace mips {

Matrix GramMatrix(const ConstRowBlock& p) {
  // G = P^T P: transpose P once (f x n) and feed the NT kernel, whose rows
  // are then the columns of P.
  Matrix full(p.rows(), p.cols());
  std::copy(p.data(), p.data() + full.size(), full.data());
  const Matrix pt = full.Transposed();
  Matrix g;
  GemmNT(ConstRowBlock(pt), ConstRowBlock(pt), &g);
  return g;
}

Status JacobiEigenSymmetric(const Matrix& a, EigenDecomposition* out,
                            int max_sweeps) {
  const Index n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("matrix must be square");
  }
  if (n == 0) {
    out->values.clear();
    out->vectors = Matrix();
    return Status::OK();
  }

  Real max_abs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(a.data()[i]));
  }
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      if (std::abs(a(i, j) - a(j, i)) > 1e-8 * std::max(Real{1}, max_abs)) {
        return Status::FailedPrecondition("matrix is not symmetric");
      }
    }
  }

  Matrix work = a;
  Matrix v(n, n);
  for (Index i = 0; i < n; ++i) v(i, i) = 1;

  const Real tol = 1e-14 * std::max(Real{1}, max_abs);
  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    Real off = 0;
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) off += std::abs(work(p, q));
    }
    if (off <= tol * n) {
      converged = true;
      break;
    }
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const Real apq = work(p, q);
        if (std::abs(apq) <= tol) continue;
        const Real app = work(p, p);
        const Real aqq = work(q, q);
        // Rotation angle zeroing work(p, q).
        const Real tau = (aqq - app) / (2 * apq);
        const Real t = (tau >= 0)
                           ? Real{1} / (tau + std::sqrt(1 + tau * tau))
                           : Real{-1} / (-tau + std::sqrt(1 + tau * tau));
        const Real cos = Real{1} / std::sqrt(1 + t * t);
        const Real sin = t * cos;

        // A <- J^T A J on rows/columns p and q.
        for (Index i = 0; i < n; ++i) {
          const Real aip = work(i, p);
          const Real aiq = work(i, q);
          work(i, p) = cos * aip - sin * aiq;
          work(i, q) = sin * aip + cos * aiq;
        }
        for (Index i = 0; i < n; ++i) {
          const Real api = work(p, i);
          const Real aqi = work(q, i);
          work(p, i) = cos * api - sin * aqi;
          work(q, i) = sin * api + cos * aqi;
        }
        // V <- V J (columns of V are eigenvectors during iteration).
        for (Index i = 0; i < n; ++i) {
          const Real vip = v(i, p);
          const Real viq = v(i, q);
          v(i, p) = cos * vip - sin * viq;
          v(i, q) = sin * vip + cos * viq;
        }
      }
    }
  }
  if (!converged) {
    // Final check after the last sweep.
    Real off = 0;
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) off += std::abs(work(p, q));
    }
    if (off > 1e-8 * std::max(Real{1}, max_abs) * n) {
      return Status::Internal("Jacobi eigen-decomposition did not converge");
    }
  }

  // Sort eigenpairs by descending eigenvalue; emit eigenvectors as rows.
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<Real> diag(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) diag[static_cast<std::size_t>(i)] = work(i, i);
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return diag[static_cast<std::size_t>(x)] > diag[static_cast<std::size_t>(y)];
  });

  out->values.resize(static_cast<std::size_t>(n));
  out->vectors.Resize(n, n);
  for (Index r = 0; r < n; ++r) {
    const Index src = order[static_cast<std::size_t>(r)];
    out->values[static_cast<std::size_t>(r)] = diag[static_cast<std::size_t>(src)];
    for (Index i = 0; i < n; ++i) {
      out->vectors(r, i) = v(i, src);
    }
  }
  return Status::OK();
}

}  // namespace mips
