// Welford's online mean/variance accumulator.
//
// OPTIMUS measures per-user query times one user at a time and needs a
// numerically stable running mean and variance to drive the incremental
// one-sample t-test (Section IV-A, "Early Stopping with t-test").

#ifndef MIPS_STATS_WELFORD_H_
#define MIPS_STATS_WELFORD_H_

#include <cmath>
#include <cstdint>

namespace mips {

/// Single-pass mean/variance accumulator (Welford 1962).
class Welford {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean; 0 when empty.
  double stderr_mean() const {
    return count_ < 1 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
  }

  void Reset() {
    count_ = 0;
    mean_ = 0;
    m2_ = 0;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace mips

#endif  // MIPS_STATS_WELFORD_H_
