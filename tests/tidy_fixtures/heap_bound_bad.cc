// mips-heap-bound-strictness BAD fixture: non-strict prunes against the
// heap minimum, in the three spellings the check knows.  Each must
// produce a diagnostic.

#include <vector>

#include "topk/topk_heap.h"

namespace fixture {

using mips::Index;
using mips::Real;
using mips::TopKHeap;

void DirectNonStrictPrune(TopKHeap& heap, const std::vector<Real>& bounds,
                          const std::vector<Real>& scores) {
  for (Index pos = 0; pos < static_cast<Index>(bounds.size()); ++pos) {
    // expect-diagnostic: non-strict '<=' prune
    if (heap.full() && bounds[static_cast<std::size_t>(pos)] <= heap.MinScore()) {
      break;
    }
    heap.Push(pos, scores[static_cast<std::size_t>(pos)]);
  }
}

void ReversedNonStrictPrune(TopKHeap& heap, Real bound, Index id,
                            Real score) {
  // expect-diagnostic: non-strict '>=' prune
  if (heap.full() && heap.MinScore() >= bound) return;
  heap.Push(id, score);
}

void SnapshotNonStrictPrune(TopKHeap& heap, const std::vector<Real>& bounds,
                            const std::vector<Real>& scores) {
  const Real min_h = heap.MinScore();
  for (Index pos = 0; pos < static_cast<Index>(bounds.size()); ++pos) {
    // expect-diagnostic: non-strict '<=' prune
    if (heap.full() && bounds[static_cast<std::size_t>(pos)] <= min_h) {
      continue;
    }
    heap.Push(pos, scores[static_cast<std::size_t>(pos)]);
  }
}

}  // namespace fixture
