#include "linalg/simd_dispatch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "linalg/dot_kernel.h"
#include "linalg/gemm_kernel.h"

namespace mips {
namespace {

struct KernelTableEntry {
  GemmKernel kernel;
  const char* name;
  GemmMicroKernelFn fn;
};

constexpr std::array<KernelTableEntry, kNumGemmKernels> kKernelTable = {{
    {GemmKernel::kPortable, "portable", &GemmMicroKernelPortable},
    {GemmKernel::kAvx2, "avx2", &GemmMicroKernelAvx2},
    {GemmKernel::kAvx512, "avx512", &GemmMicroKernelAvx512},
}};

const KernelTableEntry& TableEntry(GemmKernel kernel) {
  return kKernelTable[static_cast<std::size_t>(kernel)];
}

/// The installed kernel, published as an atomic function pointer (null =
/// nothing installed yet; the next GEMM runs the env/probe path).  The
/// id/source atomics are attribution only — a racing reader may observe
/// them a step behind the pointer, but never an inconsistent result,
/// because every variant is bit-for-bit identical (gemm_kernel.h).
std::atomic<GemmMicroKernelFn> g_active_fn{nullptr};
std::atomic<int> g_active_kernel{static_cast<int>(GemmKernel::kPortable)};
std::atomic<int> g_active_source{static_cast<int>(GemmKernelSource::kProbe)};

/// The level-1 dot kernel installed alongside the GEMM kernel: one ISA
/// choice governs both (a machine whose AVX-512 is emulated for GEMM is
/// equally degraded for dots).  Like g_active_fn it may lag an install by
/// a step under a racing reader, which is harmless — every dot variant is
/// bit-for-bit identical (dot_kernel.h).
std::atomic<DotKernelFn> g_active_dot{nullptr};

/// The dot variant matching `kernel`.  A variant whose intrinsics body
/// was not compiled in already forwards to the portable kernel, but
/// selecting the portable entry directly skips the extra call.
DotKernelFn DotKernelFor(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kAvx2:
      return DotAvx2KernelCompiled() ? &DotKernelAvx2 : &DotKernelPortable;
    case GemmKernel::kAvx512:
      return DotAvx512KernelCompiled() ? &DotKernelAvx512
                                       : &DotKernelPortable;
    case GemmKernel::kPortable:
      break;
  }
  return &DotKernelPortable;
}

/// Serializes installs; also guards g_install_probe.
Mutex g_install_mu;
GemmKernelProbe g_install_probe GUARDED_BY(g_install_mu);

/// Bumped on every install (see GemmKernelEpoch in the header).
std::atomic<uint64_t> g_install_epoch{0};

bool CpuSupportsIsa(GemmKernel kernel) {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports accounts for OS AVX state support (XGETBV),
  // not just the CPUID feature bit.
  __builtin_cpu_init();
  switch (kernel) {
    case GemmKernel::kPortable:
      return true;
    case GemmKernel::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case GemmKernel::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return kernel == GemmKernel::kPortable;
#endif
}

/// Best-of-three packed-panel timing, mirroring the macro kernel's hot
/// loop: full 4x16 tiles over a KC-deep panel, the exact workload the
/// blocked GEMM spends its time in.
double TimeKernelGflops(GemmMicroKernelFn fn) {
  constexpr Index kb = 256;  // = kKC in gemm.cc: one full K panel
  constexpr int kIters = 192;
  constexpr int kReps = 3;
  std::vector<Real> ap(static_cast<std::size_t>(kGemmMR) * kb);
  std::vector<Real> bp(static_cast<std::size_t>(kGemmNR) * kb);
  std::vector<Real> c(static_cast<std::size_t>(kGemmMR) * kGemmNR, 0);
  // Deterministic small values (no RNG dependency, no subnormals).
  uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Real>(state >> 11) *
               (1.0 / 9007199254740992.0) - 0.5;
  };
  for (Real& v : ap) v = next();
  for (Real& v : bp) v = next();

  for (int warm = 0; warm < 8; ++warm) {
    fn(ap.data(), bp.data(), kb, 1.0 / 1024, c.data(), kGemmNR);
  }
  double best_seconds = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < kIters; ++it) {
      // Tiny alpha keeps C bounded over thousands of accumulations.
      fn(ap.data(), bp.data(), kb, 1.0 / 1024, c.data(), kGemmNR);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best_seconds = std::min(best_seconds, std::max(seconds, 1e-9));
  }
  const double flops =
      2.0 * kGemmMR * kGemmNR * static_cast<double>(kb) * kIters;
  return flops / best_seconds / 1e9;
}

/// Support flags without timings, for env/forced installs where the
/// probe never ran.
GemmKernelProbe SupportOnlyProbe(GemmKernel chosen) {
  GemmKernelProbe probe;
  for (const KernelTableEntry& entry : kKernelTable) {
    auto& variant = probe.variants[static_cast<std::size_t>(entry.kernel)];
    variant.kernel = entry.kernel;
    variant.supported = GemmKernelSupported(entry.kernel);
  }
  probe.fastest = chosen;
  return probe;
}

void InstallLocked(GemmKernel kernel, GemmKernelSource source,
                   const GemmKernelProbe& probe) REQUIRES(g_install_mu) {
  g_install_mu.AssertHeld();
  g_install_probe = probe;
  g_active_source.store(static_cast<int>(source), std::memory_order_relaxed);
  g_active_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
  g_active_dot.store(DotKernelFor(kernel), std::memory_order_release);
  g_active_fn.store(TableEntry(kernel).fn, std::memory_order_release);
  g_install_epoch.fetch_add(1, std::memory_order_release);
}

GemmMicroKernelFn EnsureInstalled() {
  GemmMicroKernelFn fn = g_active_fn.load(std::memory_order_acquire);
  if (fn != nullptr) return fn;
  MutexLock lock(g_install_mu);
  fn = g_active_fn.load(std::memory_order_relaxed);
  if (fn != nullptr) return fn;

  const char* env = std::getenv("MIPS_GEMM_KERNEL");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "auto") != 0) {
    const auto parsed = ParseGemmKernel(env);
    if (parsed.ok() && GemmKernelSupported(*parsed)) {
      InstallLocked(*parsed, GemmKernelSource::kEnv, SupportOnlyProbe(*parsed));
      return g_active_fn.load(std::memory_order_relaxed);
    }
    MIPS_LOG(Warning) << "MIPS_GEMM_KERNEL=" << env
                       << (parsed.ok() ? " is not supported on this machine"
                                       : " is not a known kernel")
                       << "; falling back to the startup probe";
  }

  const GemmKernelProbe probe = ProbeGemmKernels();
  InstallLocked(probe.fastest, GemmKernelSource::kProbe, probe);
  return g_active_fn.load(std::memory_order_relaxed);
}

}  // namespace

const char* ToString(GemmKernel kernel) { return TableEntry(kernel).name; }

StatusOr<GemmKernel> ParseGemmKernel(std::string_view name) {
  for (const KernelTableEntry& entry : kKernelTable) {
    if (name == entry.name) return entry.kernel;
  }
  return Status::InvalidArgument(
      "unknown GEMM kernel \"" + std::string(name) +
      "\" (expected portable, avx2, or avx512)");
}

bool GemmKernelSupported(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kPortable:
      return true;
    case GemmKernel::kAvx2:
      return GemmAvx2KernelCompiled() && CpuSupportsIsa(kernel);
    case GemmKernel::kAvx512:
      return GemmAvx512KernelCompiled() && CpuSupportsIsa(kernel);
  }
  return false;
}

GemmKernelProbe ProbeGemmKernels() {
  GemmKernelProbe probe;
  double best = -1;
  for (const KernelTableEntry& entry : kKernelTable) {
    auto& variant = probe.variants[static_cast<std::size_t>(entry.kernel)];
    variant.kernel = entry.kernel;
    variant.supported = GemmKernelSupported(entry.kernel);
    if (!variant.supported) continue;
    variant.gflops = TimeKernelGflops(entry.fn);
    if (variant.gflops > best) {
      best = variant.gflops;
      probe.fastest = entry.kernel;
    }
  }
  return probe;
}

GemmKernel ActiveGemmKernel() {
  EnsureInstalled();
  return static_cast<GemmKernel>(
      g_active_kernel.load(std::memory_order_relaxed));
}

Status ForceGemmKernel(GemmKernel kernel) {
  if (!GemmKernelSupported(kernel)) {
    const bool compiled = kernel == GemmKernel::kPortable ||
                          (kernel == GemmKernel::kAvx2
                               ? GemmAvx2KernelCompiled()
                               : GemmAvx512KernelCompiled());
    return Status::FailedPrecondition(
        std::string("GEMM kernel \"") + ToString(kernel) +
        (compiled ? "\" is not supported by this CPU"
                  : "\" was not compiled into this binary"));
  }
  MutexLock lock(g_install_mu);
  InstallLocked(kernel, GemmKernelSource::kForced, SupportOnlyProbe(kernel));
  return Status::OK();
}

GemmKernelSource ActiveGemmKernelSource() {
  EnsureInstalled();
  return static_cast<GemmKernelSource>(
      g_active_source.load(std::memory_order_relaxed));
}

GemmKernelProbe ActiveGemmKernelProbe() {
  EnsureInstalled();
  MutexLock lock(g_install_mu);
  return g_install_probe;
}

uint64_t GemmKernelEpoch() {
  return g_install_epoch.load(std::memory_order_acquire);
}

void ResetGemmKernelForTest() {
  MutexLock lock(g_install_mu);
  g_install_probe = GemmKernelProbe();
  g_active_source.store(static_cast<int>(GemmKernelSource::kProbe),
                        std::memory_order_relaxed);
  g_active_kernel.store(static_cast<int>(GemmKernel::kPortable),
                        std::memory_order_relaxed);
  g_active_dot.store(nullptr, std::memory_order_release);
  g_active_fn.store(nullptr, std::memory_order_release);
}

GemmMicroKernelFn ActiveGemmMicroKernel() { return EnsureInstalled(); }

DotKernelFn ActiveDotKernel() {
  DotKernelFn fn = g_active_dot.load(std::memory_order_acquire);
  if (fn != nullptr) return fn;
  EnsureInstalled();
  fn = g_active_dot.load(std::memory_order_acquire);
  // A racing ResetGemmKernelForTest can null the pointer between the
  // install and this load; the portable kernel is always a bit-identical
  // answer.
  return fn != nullptr ? fn : &DotKernelPortable;
}

}  // namespace mips
