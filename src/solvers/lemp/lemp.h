// LEMP: fast retrieval of large entries in a matrix product.
//
// Reproduction of the LEMP index (Teflioudi, Gemulla, Mykytiuk, SIGMOD'15;
// extended study TODS'16), the state-of-the-art exact MIPS baseline the
// paper benchmarks as LEMP-LI.  The structure:
//
//   1. Sort items by length, partition into buckets of similar magnitude.
//   2. Per user, walk buckets in descending-length order; terminate when
//      max_norm(bucket) * ||u|| <= min(H) (every later bucket is smaller).
//   3. Inside a bucket, retrieve candidates with one of several algorithms
//      (naive dots / length pruning / incremental Cauchy-Schwarz pruning);
//      LEMP picks the algorithm per bucket by measuring a sample of users.
//
// The sample-driven per-bucket adaptivity is deliberately preserved: it is
// what makes LEMP's runtime estimates high-variance under OPTIMUS's user
// sampling (paper Figure 7).

#ifndef MIPS_SOLVERS_LEMP_LEMP_H_
#define MIPS_SOLVERS_LEMP_LEMP_H_

#include <atomic>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "solvers/lemp/bucket.h"
#include "solvers/solver.h"

namespace mips {

/// Tuning knobs for the LEMP reproduction.
struct LempOptions {
  /// Items per bucket; 0 = auto (n/64 clamped to [64, 1024]).
  Index bucket_size = 0;
  /// Users used to calibrate the per-bucket algorithm choice.
  Index calibration_users = 48;
  /// Number of incremental-pruning checkpoints per vector.
  Index num_checkpoints = 4;
  /// Fix every bucket to one algorithm (disables adaptivity); used by the
  /// lesion tests.  -1 = adaptive (default); 0..3 = the BucketAlgorithm
  /// enumerators (NAIVE, LENGTH, INCR, COORD).
  int forced_algorithm = -1;
};

/// The LEMP-LI exact MIPS index.
class LempSolver : public MipsSolver {
 public:
  explicit LempSolver(const LempOptions& options = {}) : options_(options) {}

  std::string name() const override { return "lemp"; }
  bool batches_users() const override { return false; }

  Status Prepare(const ConstRowBlock& users,
                 const ConstRowBlock& items) override;
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) override;

  /// Buckets after Prepare (exposed for tests and the lesion bench).
  const std::vector<lemp::Bucket>& buckets() const { return buckets_; }
  /// Average fraction of items actually scanned over the last query batch
  /// (1.0 = no pruning).  Under concurrent queries this reflects whichever
  /// batch finished last.
  double last_scan_fraction() const {
    return last_scan_fraction_.load(std::memory_order_relaxed);
  }

 private:
  // Runs one user's query; returns the number of item positions scanned.
  Index QueryOneUser(const Real* user, Real user_norm, Index k,
                     const std::vector<lemp::BucketAlgorithm>& algorithms,
                     TopKEntry* out_row) const;

  // Measures per-bucket algorithm costs on the calibration users drawn
  // from `user_ids` and fills bucket_algorithms_.
  void Calibrate(Index k, std::span<const Index> user_ids)
      REQUIRES(calibration_mu_);

  LempOptions options_;
  ConstRowBlock users_;
  ConstRowBlock items_;
  lemp::SortedItems sorted_;
  std::vector<lemp::Bucket> buckets_;
  /// Lazy per-k calibration state, guarded by calibration_mu_: concurrent
  /// query batches (possibly at different ks) must not observe a
  /// half-written algorithm table, and mixed-k traffic must not thrash —
  /// each k is calibrated once and cached, mirroring the engine's own
  /// per-k winner cache.  Queries run on a snapshot copy, so the choice
  /// only affects pruning cost, never exactness.
  Mutex calibration_mu_;
  std::vector<lemp::BucketAlgorithm> bucket_algorithms_
      GUARDED_BY(calibration_mu_);
  std::map<Index, std::vector<lemp::BucketAlgorithm>> algorithms_by_k_
      GUARDED_BY(calibration_mu_);
  mutable std::atomic<double> last_scan_fraction_{0};
};

}  // namespace mips

#endif  // MIPS_SOLVERS_LEMP_LEMP_H_
