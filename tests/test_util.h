// Shared helpers for the test suites: random model builders and exact
// top-K comparison that is robust to ties and to floating-point
// accumulation-order differences between solvers.

#ifndef MIPS_TESTS_TEST_UTIL_H_
#define MIPS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "linalg/blas.h"
#include "topk/result.h"

namespace mips {
namespace testing {

/// True when the binary is built under a sanitizer whose instrumentation
/// slows execution enough to skew wall-clock-derived assertions (TSan
/// ~10x, ASan ~2x — enough to flip an OPTIMUS winner whose index-probe
/// vs BMM margin is measured in wall time).  Tests that assert a
/// timing-derived *winner* should GTEST_SKIP on this; tests that assert
/// exactness or data-determined regime signals must not.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
inline constexpr bool kSanitizerSkewsWallClock = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
inline constexpr bool kSanitizerSkewsWallClock = true;
#else
inline constexpr bool kSanitizerSkewsWallClock = false;
#endif
#else
inline constexpr bool kSanitizerSkewsWallClock = false;
#endif

/// Builds a small synthetic model; `norm_sigma` controls item-norm skew.
inline MFModel MakeTestModel(Index users, Index items, Index f,
                             uint64_t seed = 7, Real norm_sigma = 0.4,
                             Real dispersion = 0.5, bool non_negative = false) {
  SyntheticModelConfig config;
  config.num_users = users;
  config.num_items = items;
  config.num_factors = f;
  config.seed = seed;
  config.item_norm_sigma = norm_sigma;
  config.user_dispersion = dispersion;
  config.user_modes = std::max<Index>(2, users / 64);
  config.non_negative = non_negative;
  auto model = GenerateSyntheticModel(config);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

/// Fills a matrix with iid N(0, sigma) entries.
inline Matrix RandomMatrix(Index rows, Index cols, uint64_t seed,
                           Real sigma = 1.0) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<Real>(rng.Normal(0.0, sigma));
  }
  return m;
}

/// Verifies that two exact top-K results agree: per row, the sorted score
/// sequences must match within `tol` (item ids may differ only where
/// scores tie within `tol`).
inline void ExpectSameTopKScores(const TopKResult& a, const TopKResult& b,
                                 Real tol = 1e-8) {
  ASSERT_EQ(a.num_queries(), b.num_queries());
  ASSERT_EQ(a.k(), b.k());
  for (Index q = 0; q < a.num_queries(); ++q) {
    for (Index e = 0; e < a.k(); ++e) {
      const Real sa = a.Row(q)[e].score;
      const Real sb = b.Row(q)[e].score;
      if (std::isinf(sa) || std::isinf(sb)) {
        EXPECT_EQ(sa, sb) << "row " << q << " entry " << e;
      } else {
        EXPECT_NEAR(sa, sb, tol) << "row " << q << " entry " << e;
      }
    }
  }
}

/// Verifies internal consistency of a result against the model: every
/// reported score equals the true inner product of (user, item), rows are
/// sorted by descending score, and items within a row are distinct.
inline void ExpectValidTopK(const TopKResult& result,
                            const std::vector<Index>& user_ids,
                            const MFModel& model, Real tol = 1e-8) {
  ASSERT_EQ(result.num_queries(), static_cast<Index>(user_ids.size()));
  const Index f = model.num_factors();
  for (Index q = 0; q < result.num_queries(); ++q) {
    const TopKEntry* row = result.Row(q);
    std::vector<Index> seen;
    for (Index e = 0; e < result.k(); ++e) {
      if (row[e].item < 0) {
        // Sentinel padding is allowed only when k exceeds the item count
        // and must fill the tail contiguously.
        EXPECT_GE(result.k(), model.num_items());
        for (Index e2 = e; e2 < result.k(); ++e2) {
          EXPECT_EQ(row[e2].item, -1);
        }
        break;
      }
      EXPECT_LT(row[e].item, model.num_items());
      const Real truth =
          Dot(model.users.Row(user_ids[static_cast<std::size_t>(q)]),
              model.items.Row(row[e].item), f);
      EXPECT_NEAR(row[e].score, truth, tol)
          << "row " << q << " entry " << e << " item " << row[e].item;
      if (e > 0 && row[e - 1].item >= 0) {
        EXPECT_GE(row[e - 1].score, row[e].score - tol);
      }
      seen.push_back(row[e].item);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
        << "duplicate item in row " << q;
  }
}

/// All user ids [0, n).
inline std::vector<Index> AllUsers(Index n) {
  std::vector<Index> ids(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

}  // namespace testing
}  // namespace mips

#endif  // MIPS_TESTS_TEST_UTIL_H_
