// Minimal command-line flag parsing for the bench and example binaries.
//
// Syntax: --name=value or --name value; "--help" prints registered flags.
// This is intentionally tiny — benches need only a handful of numeric knobs
// (--scale, --users, --k, --seed, ...).

#ifndef MIPS_COMMON_FLAGS_H_
#define MIPS_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mips {

/// Registers flags against local variables, then parses argv into them.
///
/// Example:
///   FlagSet flags;
///   double scale = 0.02;
///   flags.Double("scale", &scale, "dataset scale factor");
///   flags.Parse(argc, argv).CheckOK();
class FlagSet {
 public:
  void Double(const std::string& name, double* target, std::string help);
  void Int64(const std::string& name, int64_t* target, std::string help);
  void Int32(const std::string& name, int32_t* target, std::string help);
  void Bool(const std::string& name, bool* target, std::string help);
  void String(const std::string& name, std::string* target, std::string help);

  /// Parses argv.  Unknown flags produce InvalidArgument.  If --help is
  /// present, prints usage and exits(0).
  Status Parse(int argc, char** argv);

  /// One line per registered flag: "--name (help) [default: ...]".
  std::string Usage() const;

 private:
  enum class Kind { kDouble, kInt64, kInt32, kBool, kString };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_value;
  };

  Status Assign(Flag& flag, const std::string& value);

  std::vector<Flag> flags_;
};

}  // namespace mips

#endif  // MIPS_COMMON_FLAGS_H_
