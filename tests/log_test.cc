// Tests for the logging module: level filtering and message assembly.

#include <gtest/gtest.h>

#include "common/log.h"

namespace mips {
namespace {

TEST(LogTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LogTest, EmittingDoesNotCrashAtAnyLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  MIPS_LOG(Debug) << "debug " << 1;
  MIPS_LOG(Info) << "info " << 2.5;
  MIPS_LOG(Warning) << "warning " << "three";
  SetLogLevel(original);
}

TEST(LogTest, StreamsArbitraryTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  const std::string s = "text";
  MIPS_LOG(Info) << s << ' ' << 42 << ' ' << 1.5 << ' ' << true;
  SetLogLevel(original);
}

}  // namespace
}  // namespace mips
