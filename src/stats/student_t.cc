#include "stats/student_t.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace mips {
namespace {

// ln Gamma(x) for x > 0 (Lanczos approximation, |error| < 2e-10).
double LogGamma(double x) {
  static const double kCoef[6] = {76.18009172947146,  -86.50532032941677,
                                  24.01409824083091,  -1.231739572450155,
                                  0.1208650973866179e-2, -0.5395239384953e-5};
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double ser = 1.000000000190015;
  // mips-tidy: allow(float-accumulation): Lanczos series, fixed 6 terms.
  for (double c : kCoef) ser += c / ++y;
  return -tmp + std::log(2.5066282746310005 * ser / x);
}

// Continued-fraction evaluation for the incomplete beta function
// (Numerical Recipes "betacf").
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0 && b > 0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly where it converges fast, and the
  // symmetry I_x(a,b) = 1 - I_{1-x}(b,a) elsewhere.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  assert(df > 0);
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  // P(|T| >= |t|) = I_{df/(df+t^2)}(df/2, 1/2).
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0 ? 1.0 - tail : tail;
}

double StudentTTwoSidedPValue(double t, double df) {
  assert(df > 0);
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(t)) return 0.0;
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

}  // namespace mips
