// Dynamic user maintenance for MAXIMUS — the paper's stated future work.
//
// Section III-E: new users can be served exactly by assigning them to the
// nearest existing centroid, but "the churn in new users may reach a
// critical mass ... periodically scheduling new rounds of user clustering
// to update the centroids is an interesting research question, which we
// leave as future work."  DynamicMaximus implements the obvious policy:
//
//   * AddUser() appends the vector and serves it through the dynamic-user
//     walk (exact, with the Lipschitz bound-widening slack).
//   * When accumulated churn exceeds `recluster_churn_fraction` of the
//     indexed population, the index is rebuilt over ALL users — new users
//     become first-class members, theta_b re-tightens, and their queries
//     return to the fast static path.
//
// Every query remains exact at every point in this lifecycle; what churn
// degrades (and re-clustering restores) is pruning efficiency, which the
// tests and the ablation bench measure via mean_items_visited().

#ifndef MIPS_CORE_DYNAMIC_MAXIMUS_H_
#define MIPS_CORE_DYNAMIC_MAXIMUS_H_

#include <memory>

#include "core/maximus.h"

namespace mips {

/// Options for the dynamic wrapper.
struct DynamicMaximusOptions {
  MaximusOptions base;
  /// Rebuild the index when added-since-last-build exceeds this fraction
  /// of the indexed user count.  <= 0 disables automatic re-clustering.
  double recluster_churn_fraction = 0.2;
};

/// A MAXIMUS index that accepts user churn.
class DynamicMaximus {
 public:
  explicit DynamicMaximus(const DynamicMaximusOptions& options = {})
      : options_(options) {}

  /// Builds the initial index.  The item view must outlive the object;
  /// the initial users are copied so the population can grow.
  Status Initialize(const ConstRowBlock& initial_users,
                    const ConstRowBlock& items);

  /// Appends a new user (vector of num_factors()).  Returns its user id.
  /// May trigger a re-clustering (see options).
  StatusOr<Index> AddUser(const Real* vector);

  /// Exact top-K for any user id (initial or added).
  Status TopKForUser(Index user_id, Index k, TopKEntry* out_row) const;

  /// Batch exact top-K for a mix of indexed and pending user ids:
  /// indexed members go through the inner index's blocked path in one
  /// call, pending users fall back to the dynamic walk.
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) const;

  /// Exact top-K for every current user.
  Status TopKAll(Index k, TopKResult* out);

  /// Forces an immediate rebuild over all current users.
  Status Recluster();

  Index num_users() const { return count_; }
  Index num_factors() const { return users_.cols(); }
  /// Users appended since the last (re)build.
  Index pending_users() const { return count_ - indexed_count_; }
  /// Number of re-clustering rounds performed (excluding Initialize).
  int recluster_rounds() const { return recluster_rounds_; }

  const MaximusSolver& index() const { return *index_; }

 private:
  Status Rebuild();

  DynamicMaximusOptions options_;
  ConstRowBlock items_;
  /// Owned, capacity-doubling user storage; rows [0, count_) are live.
  Matrix users_;
  Index count_ = 0;
  /// Users covered by the current index build.
  Index indexed_count_ = 0;
  int recluster_rounds_ = -1;  // Initialize() brings this to 0
  std::unique_ptr<MaximusSolver> index_;
};

/// Adapts DynamicMaximus to the MipsSolver interface so the registry,
/// OPTIMUS, and MipsEngine can drive a churn-capable MAXIMUS like any
/// other strategy.  Prepare() (re)initializes the index over the given
/// users; the churn APIs (AddUser, Recluster, ...) remain reachable
/// through dynamic().  The MipsSolver surface addresses the Prepare-time
/// population — users appended later are served via dynamic().
class DynamicMaximusSolver : public MipsSolver {
 public:
  explicit DynamicMaximusSolver(const DynamicMaximusOptions& options = {})
      : dynamic_(options) {}

  std::string name() const override { return "dynamic-maximus"; }
  bool batches_users() const override { return true; }

  Status Prepare(const ConstRowBlock& users,
                 const ConstRowBlock& items) override;
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) override;

  /// Exact top-K for a vector outside the indexed population
  /// (Section III-E dynamic walk on the inner index).
  Status QueryNewUser(const Real* user, Index k, TopKEntry* out_row) const;

  DynamicMaximus& dynamic() { return dynamic_; }
  const DynamicMaximus& dynamic() const { return dynamic_; }

 private:
  DynamicMaximus dynamic_;
};

}  // namespace mips

#endif  // MIPS_CORE_DYNAMIC_MAXIMUS_H_
