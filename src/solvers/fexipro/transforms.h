// FEXIPRO's three input transforms (Li, Chan, Yiu, Mamoulis — SIGMOD'17).
//
//  S — SVD: rotate user/item vectors into the basis of the item matrix's
//      right singular vectors, concentrating inner-product "energy" in the
//      leading coordinates so a partial (head) product plus a Cauchy-
//      Schwarz tail bound prunes candidates cheaply.  Orthogonality keeps
//      inner products exact.
//  I — Integer quantization: scale vectors so coordinates fit int16 and
//      bound the true product with an integer dot plus a rounding
//      correction (valid upper bound; see QuantizedUpperBound).
//  R — Reduction: shift item coordinates non-negative and append one
//      dimension so inner products are preserved:
//        item  p -> [p + m, 1],  query q -> [q, -q.m]   gives q'.p' = q.p.

#ifndef MIPS_SOLVERS_FEXIPRO_TRANSFORMS_H_
#define MIPS_SOLVERS_FEXIPRO_TRANSFORMS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace mips {
namespace fexipro {

/// Orthogonal basis from the item matrix's right singular vectors.
struct SvdTransform {
  /// f x f; row r is the singular vector with the r-th largest singular
  /// value, so transformed coordinate r = basis.Row(r) . v.
  Matrix basis;
  /// Number of leading dimensions holding >= the requested energy share.
  Index head_dims = 0;
  /// Fraction of total squared singular value mass in the head.
  Real captured_energy = 0;

  /// out[0..f) = basis * in (both length f).
  void Apply(const Real* in, Real* out) const;
};

/// Computes the transform from the item matrix (n x f).  `energy_fraction`
/// in (0, 1] picks head_dims as the smallest prefix capturing that share
/// of squared singular values.
StatusOr<SvdTransform> ComputeSvdTransform(const ConstRowBlock& items,
                                           Real energy_fraction);

/// Applies `t` to every row of `in` (n x f) -> n x f output.
Matrix ApplySvdToRows(const SvdTransform& t, const ConstRowBlock& in);

/// Symmetric int16 quantizer: q = round(scale * x).
struct Int16Quantizer {
  Real scale = 1;

  void Quantize(const Real* in, Index n, int16_t* out) const;
};

/// Quantizer whose scale maps `max_abs` to int16 max (32767).
Int16Quantizer MakeQuantizer(Real max_abs);

/// Largest |coordinate| in an n x f block.
Real MaxAbsCoordinate(const ConstRowBlock& block);

/// Integer dot product with 64-bit accumulation.
int64_t DotInt16(const int16_t* a, const int16_t* b, Index n);

/// Sum of |a_i| with 64-bit accumulation.
int64_t L1Int16(const int16_t* a, Index n);

/// Upper bound on the exact real dot product of the two pre-quantization
/// vectors, given their integer dot, L1 masses, dimension, and the two
/// quantizer scales.  Derivation: with q = round(s*x), s*x = q + d where
/// |d| <= 1/2, so sum (s_a a)(s_b b) <= q_a.q_b + (L1_a + L1_b)/2 + n/4.
Real QuantizedUpperBound(int64_t int_dot, int64_t l1_a, int64_t l1_b, Index n,
                         Real scale_a, Real scale_b);

/// The "R" reduction: per-dimension shifts making items non-negative plus
/// the appended constant dimension.
struct ReductionTransform {
  /// Per-dimension shift m_d = max(0, -min_i item[i][d]).
  std::vector<Real> shift;

  Index in_dims() const { return static_cast<Index>(shift.size()); }
  Index out_dims() const { return in_dims() + 1; }

  /// item -> [item + m, 1]  (all coordinates non-negative).
  void ApplyToItem(const Real* in, Real* out) const;
  /// query -> [query, -query.m]  (preserves inner products with items).
  void ApplyToQuery(const Real* in, Real* out) const;
};

/// Builds the reduction from an item block (n x f).
ReductionTransform MakeReduction(const ConstRowBlock& items);

}  // namespace fexipro
}  // namespace mips

#endif  // MIPS_SOLVERS_FEXIPRO_TRANSFORMS_H_
