// Unit tests for src/common: Status, timers, RNG, flags, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace mips {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(result.ok());
  std::vector<int> v = std::move(result).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailThenPropagate() {
  MIPS_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  const Status st = FailThenPropagate();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "inner");
}

// ---------------------------------------------------------------- Timer

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.Seconds(), 0.0);
  // Keep the loop observable so the optimizer cannot remove it.
  EXPECT_GT(sink, 0.0);
}

TEST(StageTimerTest, AccumulatesByName) {
  StageTimer timer;
  timer.Add("a", 1.0);
  timer.Add("b", 2.0);
  timer.Add("a", 0.5);
  EXPECT_DOUBLE_EQ(timer.Get("a"), 1.5);
  EXPECT_DOUBLE_EQ(timer.Get("b"), 2.0);
  EXPECT_DOUBLE_EQ(timer.Get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(timer.Total(), 3.5);
  ASSERT_EQ(timer.stages().size(), 2u);
  EXPECT_EQ(timer.stages()[0].first, "a");  // first-use order
  EXPECT_EQ(timer.stages()[1].first, "b");
}

TEST(StageTimerTest, TimeChargesStageAndReturnsValue) {
  StageTimer timer;
  const int out = timer.Time("work", []() { return 7; });
  EXPECT_EQ(out, 7);
  EXPECT_GE(timer.Get("work"), 0.0);
  timer.Time("void_work", []() {});
  EXPECT_EQ(timer.stages().size(), 2u);
}

TEST(StageTimerTest, ClearEmpties) {
  StageTimer timer;
  timer.Add("a", 1.0);
  timer.Clear();
  EXPECT_EQ(timer.stages().size(), 0u);
  EXPECT_DOUBLE_EQ(timer.Total(), 0.0);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(10);
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(n), n);
    }
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.UniformInt(8)];
  for (int c : counts) EXPECT_GT(c, 700);  // ~1000 expected per bucket
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0;
  double sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    // mips-tidy: allow(float-accumulation): moment estimate for the RNG
    // distribution check, asserted with wide tolerances.
    sum += x;
    // mips-tidy: allow(float-accumulation): moment estimate, see above.
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(77);
  const uint64_t first = rng();
  rng();
  rng.Seed(77);
  EXPECT_EQ(rng(), first);
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesAllTypes) {
  FlagSet flags;
  double d = 1.0;
  int64_t i64 = 5;
  int32_t i32 = 6;
  bool b = false;
  std::string s = "x";
  flags.Double("scale", &d, "scale");
  flags.Int64("users", &i64, "users");
  flags.Int32("k", &i32, "k");
  flags.Bool("verbose", &b, "verbose");
  flags.String("name", &s, "name");

  const char* argv[] = {"prog",        "--scale=0.5", "--users", "100",
                        "--k=3",       "--verbose",   "--name",  "hello"};
  ASSERT_TRUE(
      flags.Parse(8, const_cast<char**>(argv)).ok());
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_EQ(i64, 100);
  EXPECT_EQ(i32, 3);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags;
  double d = 0;
  flags.Double("scale", &d, "scale");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, BadValueFails) {
  FlagSet flags;
  double d = 0;
  flags.Double("scale", &d, "scale");
  const char* argv[] = {"prog", "--scale=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags;
  double d = 0;
  flags.Double("scale", &d, "scale");
  const char* argv[] = {"prog", "--scale"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, BadBoolFails) {
  FlagSet flags;
  bool b = false;
  flags.Bool("flag", &b, "flag");
  const char* argv[] = {"prog", "--flag=maybe"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, PositionalArgumentFails) {
  FlagSet flags;
  const char* argv[] = {"prog", "positional"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagSet flags;
  double d = 2.5;
  flags.Double("scale", &d, "the scale");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--scale"), std::string::npos);
  EXPECT_NE(usage.find("the scale"), std::string::npos);
  EXPECT_NE(usage.find("2.5"), std::string::npos);
}

// ----------------------------------------------------------- SplitRange

TEST(SplitRangeTest, ExactPartition) {
  const auto chunks = SplitRange(10, 3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].begin, 0);
  EXPECT_EQ(chunks[0].end, 4);  // 10 = 4 + 3 + 3
  EXPECT_EQ(chunks[1].begin, 4);
  EXPECT_EQ(chunks[1].end, 7);
  EXPECT_EQ(chunks[2].begin, 7);
  EXPECT_EQ(chunks[2].end, 10);
}

TEST(SplitRangeTest, MorePartsThanElements) {
  const auto chunks = SplitRange(2, 5);
  ASSERT_EQ(chunks.size(), 5u);
  int64_t total = 0;
  for (const auto& c : chunks) {
    EXPECT_LE(c.begin, c.end);
    total += c.end - c.begin;
  }
  EXPECT_EQ(total, 2);
}

TEST(SplitRangeTest, ZeroElements) {
  const auto chunks = SplitRange(0, 4);
  for (const auto& c : chunks) EXPECT_EQ(c.begin, c.end);
}

TEST(SplitRangeTest, CoversEveryIndexOnce) {
  for (int64_t n : {1, 7, 100, 1001}) {
    for (int parts : {1, 2, 3, 8, 16}) {
      const auto chunks = SplitRange(n, parts);
      std::vector<int> hit(static_cast<std::size_t>(n), 0);
      for (const auto& c : chunks) {
        for (int64_t i = c.begin; i < c.end; ++i) ++hit[static_cast<std::size_t>(i)];
      }
      for (int h : hit) EXPECT_EQ(h, 1);
    }
  }
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&]() { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&]() { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

// Lifecycle contract (thread_pool.h class comment): these pin the
// guarantees a future work-stealing pool must preserve.

TEST(ThreadPoolLifecycleTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted yet: must return immediately
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  pool.Wait();  // back-to-back, no intervening submissions
  EXPECT_EQ(counter.load(), 8);
  pool.Wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolLifecycleTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // No Wait(): destruction itself must drain the queue.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolLifecycleTest, SubmitDuringShutdownRunsInline) {
  auto pool = std::make_unique<ThreadPool>(1);
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  pool->Submit([&]() {
    blocker_started = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!blocker_started.load()) std::this_thread::yield();

  // Begin destruction on another thread.  The destructor marks the pool
  // shutting down, then blocks joining the worker that is still holding
  // the blocker task — so the pool object stays alive (mid-destructor)
  // until we release it below.
  ThreadPool* raw = pool.get();
  std::thread destroyer([&]() { pool.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // A Submit that arrives after shutdown began must run the task inline
  // on the submitting thread, before Submit returns.
  std::atomic<bool> inline_ran{false};
  const std::thread::id main_id = std::this_thread::get_id();
  raw->Submit([&]() {
    inline_ran = true;
    EXPECT_EQ(std::this_thread::get_id(), main_id);
  });
  EXPECT_TRUE(inline_ran.load());

  release = true;
  destroyer.join();
}

TEST(ParallelForTest, InlineWithoutPool) {
  std::vector<int> hits(50, 0);
  ParallelFor(nullptr, 50, [&](int64_t begin, int64_t end, int chunk) {
    EXPECT_EQ(chunk, 0);
    for (int64_t i = begin; i < end; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversRangeWithPool) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 1000, [&](int64_t begin, int64_t end, int /*chunk*/) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&](int64_t, int64_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace mips
