#include "core/serving.h"

#include "common/timer.h"
#include "core/maximus.h"
#include "core/registry.h"
#include "linalg/blas.h"
#include "topk/topk_heap.h"

namespace mips {

StatusOr<std::unique_ptr<ServingSession>> ServingSession::Open(
    const ConstRowBlock& users, const ConstRowBlock& items,
    const ServingOptions& options) {
  if (options.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.strategies.size() < 2) {
    return Status::InvalidArgument(
        "serving session needs at least two candidate strategies");
  }
  std::unique_ptr<ServingSession> session(new ServingSession());
  session->users_ = users;
  session->items_ = items;
  session->options_ = options;

  std::vector<MipsSolver*> raw;
  for (const std::string& name : options.strategies) {
    auto solver = CreateSolver(name);
    MIPS_RETURN_IF_ERROR(solver.status());
    raw.push_back(solver->get());
    session->solvers_.push_back(std::move(*solver));
  }

  Optimus optimus(options.optimus);
  std::size_t winner = 0;
  MIPS_RETURN_IF_ERROR(optimus.Decide(users, items, options.k, raw, &winner,
                                      &session->report_));
  session->chosen_ = raw[winner];
  session->maximus_ = dynamic_cast<MaximusSolver*>(session->chosen_);
  return session;
}

Status ServingSession::ServeBatch(std::span<const Index> user_ids,
                                  TopKResult* out) {
  WallTimer timer;
  MIPS_RETURN_IF_ERROR(chosen_->TopKForUsers(options_.k, user_ids, out));
  stats_.serve_seconds += timer.Seconds();
  ++stats_.batches_served;
  stats_.users_served += static_cast<int64_t>(user_ids.size());
  return Status::OK();
}

Status ServingSession::ServeNewUser(const Real* user_vector,
                                    TopKEntry* out_row) {
  WallTimer timer;
  if (maximus_ != nullptr) {
    // Exact dynamic-user walk (Section III-E).
    MIPS_RETURN_IF_ERROR(
        maximus_->QueryDynamicUser(user_vector, options_.k, out_row));
  } else {
    // Dense scoring row: one pass of inner products + heap.  Exact and
    // strategy-independent; a single user cannot exploit blocking anyway.
    const Index n = items_.rows();
    const Index f = items_.cols();
    TopKHeap heap(options_.k);
    for (Index i = 0; i < n; ++i) {
      heap.Push(i, Dot(user_vector, items_.Row(i), f));
    }
    heap.ExtractDescending(out_row);
  }
  stats_.serve_seconds += timer.Seconds();
  ++stats_.new_users_served;
  return Status::OK();
}

}  // namespace mips
