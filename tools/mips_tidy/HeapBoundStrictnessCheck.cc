#include "HeapBoundStrictnessCheck.h"

#include "MipsTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mips {

void HeapBoundStrictnessCheck::registerMatchers(MatchFinder *Finder) {
  // heap.MinScore() — on the heap type itself, so unrelated MinScore()
  // methods elsewhere never trigger.
  const auto MinScoreCall = cxxMemberCallExpr(callee(
      cxxMethodDecl(hasName("MinScore"), ofClass(hasName("::mips::TopKHeap")))));
  // ... or a local snapshot of it: `const Real min_h = heap.MinScore();`
  // (the idiom the solver walks use to hoist the call out of the loop).
  const auto MinScoreSnapshot = declRefExpr(to(varDecl(hasInitializer(
      ignoringParenImpCasts(MinScoreCall)))));
  const auto HeapMin =
      expr(ignoringParenImpCasts(expr(anyOf(MinScoreCall, MinScoreSnapshot))));

  // `bound <= MinScore()` — prune allowed at equality: drops exact ties.
  Finder->addMatcher(binaryOperator(hasOperatorName("<="), hasRHS(HeapMin),
                                    hasLHS(expr().bind("bound")))
                         .bind("cmp"),
                     this);
  // `MinScore() >= bound` — the same predicate, reversed.
  Finder->addMatcher(binaryOperator(hasOperatorName(">="), hasLHS(HeapMin),
                                    hasRHS(expr().bind("bound")))
                         .bind("cmp"),
                     this);
}

void HeapBoundStrictnessCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cmp = Result.Nodes.getNodeAs<BinaryOperator>("cmp");
  const auto *Bound = Result.Nodes.getNodeAs<Expr>("bound");
  if (Cmp == nullptr || Bound == nullptr) return;
  // A compile-time-constant operand is a threshold guard (e.g.
  // `MinScore() <= 0` deciding whether pruning is usable at all), not a
  // per-candidate bound; skipping pruning is always exact.
  if (!Bound->isValueDependent() && Bound->isEvaluatable(*Result.Context)) {
    return;
  }
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = SM.getExpansionLoc(Cmp->getOperatorLoc());
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc)) return;
  if (HasAllowComment(SM, Loc, "heap-bound-strictness")) return;

  diag(Loc,
       "non-strict '%0' prune against TopKHeap::MinScore() can drop an "
       "item whose score ties the heap minimum, breaking the "
       "deterministic BetterEntry tie order; prune with a strict "
       "comparison ('bound < MinScore()') or test acceptance with "
       "WouldAccept()")
      << BinaryOperator::getOpcodeStr(Cmp->getOpcode());
}

}  // namespace clang::tidy::mips
