#include "core/optimus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/timer.h"
#include "linalg/simd_dispatch.h"
#include "stats/sampling.h"
#include "stats/ttest.h"

namespace mips {

// Everything the decision phase learns that the serving phase can reuse:
// which users were measured and the top-K rows already computed for them.
struct Optimus::SampleMeasurement {
  std::vector<Index> sample;
  std::vector<TopKResult> results;  // per strategy; rows parallel `sample`
  std::size_t winner = 0;
};

Status Optimus::DecideInternal(const ConstRowBlock& users,
                               const ConstRowBlock& items, Index k,
                               const std::vector<MipsSolver*>& strategies,
                               bool skip_prepare, OptimusReport* report,
                               SampleMeasurement* sample_out) {
  if (strategies.size() < 2) {
    return Status::InvalidArgument("OPTIMUS needs at least two strategies");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  const Index n = users.rows();
  if (n <= 0) return Status::InvalidArgument("user set is empty");

  OptimusReport& rep = *report;
  rep = OptimusReport();
  // Force the kernel install before the first timed GEMM so the probe's
  // cost never lands inside a strategy measurement.
  rep.gemm_kernel = ToString(ActiveGemmKernel());
  rep.estimates.resize(strategies.size());

  // --- Step 1: build every index in full (cheap relative to serving).
  // Skipped for re-decisions over already-Prepared strategies. ---
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    WallTimer timer;
    if (!skip_prepare) {
      MIPS_RETURN_IF_ERROR(strategies[s]->Prepare(users, items));
    }
    rep.estimates[s].name = strategies[s]->name();
    rep.estimates[s].representation = strategies[s]->representation();
    rep.estimates[s].construction_seconds = timer.Seconds();
    // mips-tidy: allow(float-accumulation): wall-clock bookkeeping.
    rep.construction_seconds += rep.estimates[s].construction_seconds;
  }

  // --- Step 2: draw the user sample (ratio floor + L2 cache floor,
  // capped to a strict minority of the users on small instances).  A
  // fixed_sample_users override skips the population sizing entirely:
  // the caller is asking about a concrete batch shape, so the sample IS
  // the batch. ---
  Rng rng(options_.seed);
  Index sample_size;
  if (options_.fixed_sample_users > 0) {
    sample_size = std::min(options_.fixed_sample_users, n);
  } else {
    sample_size = OptimizerSampleSize(
        n, options_.sample_ratio, users.cols(), options_.l2_cache_bytes);
    // Floor of 64: even when the cap binds, BMM's sample GEMM needs enough
    // rows to exercise the blocked kernel (the L2-fill rationale, scaled).
    const Index cap = std::max<Index>(
        64, static_cast<Index>(std::ceil(options_.max_sample_ratio *
                                         static_cast<double>(n))));
    sample_size = std::min(sample_size, std::min(cap, n));
  }
  sample_out->sample = SampleWithoutReplacement(n, sample_size, &rng);
  const std::vector<Index>& sample = sample_out->sample;
  rep.sample_size = static_cast<Index>(sample.size());

  // --- Step 3: measure every strategy on the sample. ---
  // Batching strategies first: their per-user means provide mu0 for the
  // t-test on the point-query strategies.
  sample_out->results.assign(strategies.size(), TopKResult());
  // Fixed-shape decisions over tiny batches (1-8 rows) would otherwise
  // ride on a single sub-millisecond timing; repeat the measurement a few
  // times and keep the best (interference only ever slows a run down).
  const int reps =
      options_.fixed_sample_users > 0
          ? static_cast<int>(std::clamp<Index>(
                32 / static_cast<Index>(sample.size()), 1, 8))
          : 1;
  double best_batching_mean = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    if (!strategies[s]->batches_users()) continue;
    StrategyEstimate& est = rep.estimates[s];
    double best_call = std::numeric_limits<double>::infinity();
    WallTimer timer;
    for (int r = 0; r < reps; ++r) {
      WallTimer call_timer;
      MIPS_RETURN_IF_ERROR(
          strategies[s]->TopKForUsers(k, sample, &sample_out->results[s]));
      best_call = std::min(best_call, call_timer.Seconds());
    }
    est.sampling_seconds = timer.Seconds();
    est.measured_users = static_cast<Index>(sample.size());
    est.est_per_user_seconds = best_call / static_cast<double>(sample.size());
    est.est_total_seconds = est.est_per_user_seconds * n;
    best_batching_mean =
        std::min(best_batching_mean, est.est_per_user_seconds);
    // mips-tidy: allow(float-accumulation): wall-clock bookkeeping.
    rep.sampling_seconds += est.sampling_seconds;
  }
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    if (strategies[s]->batches_users()) continue;
    StrategyEstimate& est = rep.estimates[s];
    sample_out->results[s] = TopKResult(static_cast<Index>(sample.size()), k);
    const bool can_early_stop =
        options_.enable_ttest &&
        best_batching_mean < std::numeric_limits<double>::infinity();
    IncrementalTTest ttest(best_batching_mean, options_.ttest_alpha,
                           options_.ttest_min_observations);
    WallTimer timer;
    Index measured = 0;
    TopKResult one_row;
    for (int r = 0; r < reps && !est.early_stopped; ++r) {
      for (std::size_t i = 0; i < sample.size(); ++i) {
        WallTimer per_user;
        const Index id = sample[i];
        MIPS_RETURN_IF_ERROR(strategies[s]->TopKForUsers(
            k, std::span<const Index>(&id, 1), &one_row));
        const double elapsed = per_user.Seconds();
        if (r == 0) {
          sample_out->results[s].CopyRowFrom(one_row, 0,
                                             static_cast<Index>(i));
          ++measured;
        }
        if (can_early_stop && ttest.Add(elapsed).significant) {
          est.early_stopped = true;
          break;
        }
        if (!can_early_stop) ttest.Add(elapsed);
      }
    }
    est.sampling_seconds = timer.Seconds();
    est.measured_users = measured;
    est.est_per_user_seconds = ttest.accumulator().mean();
    est.est_total_seconds = est.est_per_user_seconds * n;
    // mips-tidy: allow(float-accumulation): wall-clock bookkeeping.
    rep.sampling_seconds += est.sampling_seconds;
  }

  // --- Step 4: choose the minimum-estimate strategy. ---
  std::size_t winner = 0;
  for (std::size_t s = 1; s < strategies.size(); ++s) {
    if (rep.estimates[s].est_total_seconds <
        rep.estimates[winner].est_total_seconds) {
      winner = s;
    }
  }
  sample_out->winner = winner;
  rep.chosen = strategies[winner]->name();
  rep.representation = strategies[winner]->representation();
  return Status::OK();
}

Status Optimus::Decide(const ConstRowBlock& users, const ConstRowBlock& items,
                       Index k, const std::vector<MipsSolver*>& strategies,
                       std::size_t* winner, OptimusReport* report) {
  WallTimer total_timer;
  OptimusReport local_report;
  OptimusReport& rep = report != nullptr ? *report : local_report;
  SampleMeasurement sample;
  MIPS_RETURN_IF_ERROR(DecideInternal(users, items, k, strategies,
                                      /*skip_prepare=*/false, &rep, &sample));
  *winner = sample.winner;
  rep.total_seconds = total_timer.Seconds();
  return Status::OK();
}

Status Optimus::DecidePrepared(const ConstRowBlock& users,
                               const ConstRowBlock& items, Index k,
                               const std::vector<MipsSolver*>& strategies,
                               std::size_t* winner, OptimusReport* report) {
  WallTimer total_timer;
  OptimusReport local_report;
  OptimusReport& rep = report != nullptr ? *report : local_report;
  SampleMeasurement sample;
  MIPS_RETURN_IF_ERROR(DecideInternal(users, items, k, strategies,
                                      /*skip_prepare=*/true, &rep, &sample));
  *winner = sample.winner;
  rep.total_seconds = total_timer.Seconds();
  return Status::OK();
}

Status Optimus::Run(const ConstRowBlock& users, const ConstRowBlock& items,
                    Index k, const std::vector<MipsSolver*>& strategies,
                    TopKResult* out, OptimusReport* report) {
  WallTimer total_timer;
  OptimusReport local_report;
  OptimusReport& rep = report != nullptr ? *report : local_report;
  SampleMeasurement sample;
  MIPS_RETURN_IF_ERROR(DecideInternal(users, items, k, strategies,
                                      /*skip_prepare=*/false, &rep, &sample));
  const std::size_t winner = sample.winner;
  const Index n = users.rows();

  // --- Step 5: serve everyone not already answered by the winner's
  // sample run, then merge. ---
  *out = TopKResult(n, k);
  std::vector<bool> answered(static_cast<std::size_t>(n), false);
  const Index winner_measured = rep.estimates[winner].measured_users;
  for (Index i = 0; i < winner_measured; ++i) {
    const Index id = sample.sample[static_cast<std::size_t>(i)];
    out->CopyRowFrom(sample.results[winner], i, id);
    answered[static_cast<std::size_t>(id)] = true;
  }
  std::vector<Index> remaining;
  remaining.reserve(static_cast<std::size_t>(n));
  for (Index id = 0; id < n; ++id) {
    if (!answered[static_cast<std::size_t>(id)]) remaining.push_back(id);
  }
  WallTimer serve_timer;
  if (!remaining.empty()) {
    TopKResult rest;
    MIPS_RETURN_IF_ERROR(
        strategies[winner]->TopKForUsers(k, remaining, &rest));
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      out->CopyRowFrom(rest, static_cast<Index>(i), remaining[i]);
    }
  }
  rep.serve_seconds = serve_timer.Seconds();
  rep.total_seconds = total_timer.Seconds();
  return Status::OK();
}

}  // namespace mips
