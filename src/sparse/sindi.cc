#include "sparse/sindi.h"

#include <memory>

#include "common/timer.h"
#include "solvers/registry.h"

namespace mips {

Status SindiSolver::Prepare(const ConstRowBlock& users,
                            const ConstRowBlock& items) {
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  WallTimer timer;
  users_ = users;
  csr_ = CsrMatrix::FromDense(items);
  catalog_stats_ = csr_.ComputeStats();
  index_ = InvertedIndex::Build(csr_, order_);
  prepared_users_ = users.rows();
  stage_timer_.Add("construction", timer.Seconds());
  return Status::OK();
}

Status SindiSolver::TopKForUsers(Index k, std::span<const Index> user_ids,
                                 TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  const Index q = static_cast<Index>(user_ids.size());
  *out = TopKResult(q, k);

  ParallelFor(pool_, q, [&](int64_t begin, int64_t end, int /*chunk*/) {
    TopKHeap heap(k);
    SparseQueryScratch scratch;
    SparseQueryStats local;
    for (int64_t r = begin; r < end; ++r) {
      const Real* u = users_.Row(user_ids[static_cast<std::size_t>(r)]);
      SparseTopKQuery(csr_, index_, u, k, /*item_ids=*/{}, &scratch, &heap,
                      out->Row(static_cast<Index>(r)), &local);
    }
    postings_visited_.fetch_add(local.postings_visited,
                                std::memory_order_relaxed);
    items_rescored_.fetch_add(local.items_rescored,
                              std::memory_order_relaxed);
    lists_pruned_.fetch_add(local.lists_pruned, std::memory_order_relaxed);
  });
  return Status::OK();
}

namespace {

StatusOr<std::unique_ptr<MipsSolver>> MakeSindi(const ParamMap& params) {
  const std::string& postings = params.GetString("postings");
  PostingOrder order;
  if (postings == "abs") {
    order = PostingOrder::kAbsDescending;
  } else if (postings == "id") {
    order = PostingOrder::kItemAscending;
  } else {
    return Status::InvalidArgument(
        "sindi: postings must be \"abs\" or \"id\", got \"" + postings +
        "\"");
  }
  return std::unique_ptr<MipsSolver>(new SindiSolver(order));
}

const SolverRegistrar kSindiRegistrar(
    SolverSchema("sindi",
                 "exact sparse MIPS over per-dimension posting lists "
                 "(CSR catalog + inverted index)")
        .String("postings", "abs",
                "posting-list order: \"abs\" (|value| desc, upper-bound "
                "cutoffs) or \"id\" (item asc, unpruned term-at-a-time)"),
    &MakeSindi);

}  // namespace

}  // namespace mips
