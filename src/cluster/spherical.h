// Spherical k-means: cluster by cosine dissimilarity with unit-norm
// centroids.
//
// Koenigstein et al. (and MAXIMUS's design discussion in Section III-A)
// identify spherical clustering as the ideal algorithm for minimizing the
// user-centroid angle theta_uc.  The paper measures that plain k-means gets
// within ~7% of spherical's angular quality at 2-3x lower cost and adopts
// k-means; we implement both so the lesion bench can reproduce that
// comparison.

#ifndef MIPS_CLUSTER_SPHERICAL_H_
#define MIPS_CLUSTER_SPHERICAL_H_

#include "cluster/kmeans.h"

namespace mips {

/// Spherical k-means on `points` (n x f).  Centroids are unit-norm;
/// assignment maximizes cosine similarity.  Zero vectors are assigned to
/// cluster 0.  `out->inertia` holds the total cosine *dissimilarity*
/// (sum of 1 - cos(u, c)).
Status SphericalKMeans(const ConstRowBlock& points,
                       const KMeansOptions& options, Clustering* out);

/// Mean and max angle (radians) between each point and its assigned
/// centroid — the theta_uc quality metric from Section III-A.
struct AngularQuality {
  Real mean_angle = 0;
  Real max_angle = 0;
};
AngularQuality MeasureAngularQuality(const ConstRowBlock& points,
                                     const Clustering& clustering);

}  // namespace mips

#endif  // MIPS_CLUSTER_SPHERICAL_H_
