// Internal contract between the level-1 dot kernels
// (dot_kernel_{avx512,avx2,portable}.cc), the runtime dispatcher
// (simd_dispatch.cc), and blas.cc.  Not part of the public API — call
// Dot() (linalg/blas.h) to use the installed kernel.
//
// The carried PR 4 follow-up: the blocked GEMM got runtime SIMD dispatch,
// but the point-query scan paths (LEMP's incremental dots, FEXIPRO's
// partial products, the naive baseline, Gemv) still rode a single
// autovectorized Dot whose code generation depended on the global
// architecture flags.  These kernels mirror the GEMM design: one TU per
// ISA, compiled with exactly the flags it needs, selected at runtime by
// the SAME installed-kernel choice the GEMM probe makes (an AVX-512 unit
// that is emulated or down-clocked for GEMM is equally wrong for dots).
//
// Bit-for-bit contract: every variant computes the identical IEEE-754
// operation sequence — 8 accumulator lanes where lane j sums elements
// i = j (mod 8) with single-rounding fma, a scalar per-lane fma tail, and
// the fixed reduction tree ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).  The
// portable variant runs 8 scalar std::fma chains; AVX2 maps lanes 0-3 /
// 4-7 onto two ymm registers; AVX-512 maps all 8 onto one zmm.  Per-lane
// chains are independent, so the vector width never changes a result:
// swapping kernels (or machines) cannot change any score derived from
// Dot, which keeps the per-kernel differential tests exact for the
// solvers that score through it.

#ifndef MIPS_LINALG_DOT_KERNEL_H_
#define MIPS_LINALG_DOT_KERNEL_H_

#include <cmath>

#include "common/types.h"

namespace mips {

/// Inner product <x, y> over n elements.
using DotKernelFn = Real (*)(const Real* x, const Real* y, Index n);

/// The three variants.  Every symbol exists in every binary; variants
/// whose ISA the compiler cannot target forward to the portable kernel
/// (which is bit-identical anyway) and report compiled-in = false.
Real DotKernelAvx512(const Real* x, const Real* y, Index n);
Real DotKernelAvx2(const Real* x, const Real* y, Index n);
Real DotKernelPortable(const Real* x, const Real* y, Index n);

/// Whether the real intrinsics body (not the portable forward) was
/// compiled into this binary.
bool DotAvx512KernelCompiled();
bool DotAvx2KernelCompiled();

/// The dot kernel matching the installed GEMM kernel (simd_dispatch.cc),
/// running the env override / startup probe first if nothing is installed
/// yet.  blas.cc's Dot() loads this once per call.
DotKernelFn ActiveDotKernel();

namespace internal {

/// Shared tail + reduction for every dot-kernel variant: finish elements
/// [n8, n) with one scalar fma into lanes [0, n - n8), then reduce all 8
/// lanes in the fixed tree order.  n8 must be n rounded down to a
/// multiple of 8.  Inline so each variant's TU compiles it under its own
/// ISA flags — fma and adds are single-instruction scalars either way,
/// and scalar IEEE ops are flag-independent.
inline Real ReduceDotLanes(Real lanes[8], const Real* x, const Real* y,
                           Index n8, Index n) {
  for (Index r = 0; n8 + r < n; ++r) {
    lanes[r] = std::fma(x[n8 + r], y[n8 + r], lanes[r]);
  }
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

}  // namespace internal

}  // namespace mips

#endif  // MIPS_LINALG_DOT_KERNEL_H_
