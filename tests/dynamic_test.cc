// Tests for DynamicMaximus (user churn + periodic re-clustering — the
// paper's Section III-E future work) and the FEXIPRO bound-cascade lesion
// switches.

#include <gtest/gtest.h>

#include "core/dynamic_maximus.h"
#include "solvers/bmm.h"
#include "solvers/fexipro/fexipro.h"
#include "test_util.h"
#include "topk/topk_heap.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::MakeTestModel;

// Reference top-K for one user by direct scan.
std::vector<TopKEntry> DirectTopK(const Real* user, const Matrix& items,
                                  Index k) {
  TopKHeap heap(k);
  for (Index i = 0; i < items.rows(); ++i) {
    heap.Push(i, Dot(user, items.Row(i), items.cols()));
  }
  std::vector<TopKEntry> out(static_cast<std::size_t>(k));
  heap.ExtractDescending(out.data());
  return out;
}

TEST(DynamicMaximusTest, InitializeValidates) {
  DynamicMaximus dynamic;
  Matrix empty;
  const MFModel model = MakeTestModel(10, 10, 4, 1);
  EXPECT_FALSE(dynamic.Initialize(ConstRowBlock(empty),
                                  ConstRowBlock(model.items)).ok());
  EXPECT_FALSE(dynamic.AddUser(model.users.Row(0)).ok());
  TopKEntry row[1];
  EXPECT_FALSE(dynamic.TopKForUser(0, 1, row).ok());
}

TEST(DynamicMaximusTest, ServesInitialUsersExactly) {
  const MFModel model = MakeTestModel(200, 150, 8, 2, 0.6, 0.3);
  DynamicMaximus dynamic;
  ASSERT_TRUE(dynamic.Initialize(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items)).ok());
  EXPECT_EQ(dynamic.num_users(), 200);
  EXPECT_EQ(dynamic.pending_users(), 0);
  EXPECT_EQ(dynamic.recluster_rounds(), 0);

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  TopKResult got;
  ASSERT_TRUE(dynamic.TopKAll(5, &got).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
}

TEST(DynamicMaximusTest, AddedUsersServedExactlyBeforeAndAfterRecluster) {
  const MFModel model = MakeTestModel(150, 120, 6, 3, 0.6, 0.3);
  const MFModel extra = MakeTestModel(100, 120, 6, 4, 0.6, 1.0);
  DynamicMaximusOptions options;
  options.recluster_churn_fraction = 0.25;
  DynamicMaximus dynamic(options);
  ASSERT_TRUE(dynamic.Initialize(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items)).ok());
  std::vector<TopKEntry> row(4);
  for (Index u = 0; u < 100; ++u) {
    auto id = dynamic.AddUser(extra.users.Row(u));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 150 + u);
    // Every user (old and new) must stay exact at every point in the
    // churn lifecycle.
    ASSERT_TRUE(dynamic.TopKForUser(*id, 4, row.data()).ok());
    const auto expected = DirectTopK(extra.users.Row(u), model.items, 4);
    for (Index e = 0; e < 4; ++e) {
      ASSERT_NEAR(row[static_cast<std::size_t>(e)].score,
                  expected[static_cast<std::size_t>(e)].score, 1e-7)
          << "new user " << u << " entry " << e;
    }
  }
  // 100 added / 150 initial with 25% churn threshold: re-clustering must
  // have happened at least twice.
  EXPECT_GE(dynamic.recluster_rounds(), 2);
  EXPECT_EQ(dynamic.num_users(), 250);
  // After enough churn, most users are indexed (pending below threshold).
  EXPECT_LE(dynamic.pending_users(),
            static_cast<Index>(0.25 * 250) + 1);
}

TEST(DynamicMaximusTest, ReclusterRestoresPruning) {
  // New users from a *different* direction cluster: before re-clustering
  // they pay the widened dynamic bound; after re-clustering they become
  // first-class members and theta_b re-tightens.
  const MFModel model = MakeTestModel(300, 400, 8, 5, /*norm_sigma=*/1.0,
                                      /*dispersion=*/0.2);
  DynamicMaximusOptions options;
  options.recluster_churn_fraction = 0;  // manual control
  DynamicMaximus dynamic(options);
  ASSERT_TRUE(dynamic.Initialize(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items)).ok());
  const MFModel churn = MakeTestModel(150, 400, 8, 6, 1.0, 0.2);
  for (Index u = 0; u < 150; ++u) {
    ASSERT_TRUE(dynamic.AddUser(churn.users.Row(u)).ok());
  }
  EXPECT_EQ(dynamic.pending_users(), 150);
  const int rounds_before = dynamic.recluster_rounds();
  ASSERT_TRUE(dynamic.Recluster().ok());
  EXPECT_EQ(dynamic.recluster_rounds(), rounds_before + 1);
  EXPECT_EQ(dynamic.pending_users(), 0);
  // Still exact for everyone after the rebuild.
  TopKResult got;
  ASSERT_TRUE(dynamic.TopKAll(3, &got).ok());
  for (Index u = 0; u < 450; ++u) {
    const Real* vec = u < 300 ? model.users.Row(u) : churn.users.Row(u - 300);
    const auto expected = DirectTopK(vec, model.items, 3);
    for (Index e = 0; e < 3; ++e) {
      ASSERT_NEAR(got.Row(u)[e].score,
                  expected[static_cast<std::size_t>(e)].score, 1e-7)
          << "user " << u;
    }
  }
}

TEST(DynamicMaximusTest, OutOfRangeUserRejected) {
  const MFModel model = MakeTestModel(20, 20, 4, 7);
  DynamicMaximus dynamic;
  ASSERT_TRUE(dynamic.Initialize(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items)).ok());
  TopKEntry row[2];
  EXPECT_EQ(dynamic.TopKForUser(20, 2, row).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dynamic.TopKForUser(-1, 2, row).code(), StatusCode::kOutOfRange);
}

TEST(DynamicMaximusTest, StorageGrowthKeepsServingExact) {
  // Start tiny so AddUser forces capacity doubling + rebuild.
  const MFModel model = MakeTestModel(20, 60, 5, 8);
  const MFModel extra = MakeTestModel(200, 60, 5, 9);
  DynamicMaximusOptions options;
  options.recluster_churn_fraction = 0;  // growth-triggered rebuilds only
  DynamicMaximus dynamic(options);
  ASSERT_TRUE(dynamic.Initialize(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items)).ok());
  std::vector<TopKEntry> row(3);
  for (Index u = 0; u < 200; ++u) {
    auto id = dynamic.AddUser(extra.users.Row(u));
    ASSERT_TRUE(id.ok());
  }
  EXPECT_EQ(dynamic.num_users(), 220);
  EXPECT_GT(dynamic.recluster_rounds(), 0);  // growth forced rebuilds
  for (Index u = 0; u < 200; u += 37) {
    ASSERT_TRUE(dynamic.TopKForUser(20 + u, 3, row.data()).ok());
    const auto expected = DirectTopK(extra.users.Row(u), model.items, 3);
    for (Index e = 0; e < 3; ++e) {
      EXPECT_NEAR(row[static_cast<std::size_t>(e)].score,
                  expected[static_cast<std::size_t>(e)].score, 1e-7);
    }
  }
}

// ------------------------------------------- FEXIPRO cascade lesions

class FexiproLesionTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(FexiproLesionTest, ExactUnderAnyCascadeSubset) {
  const auto [use_reduction, use_int, use_svd] = GetParam();
  const MFModel model = MakeTestModel(60, 250, 12, 10, 0.8);
  FexiproOptions options;
  options.use_reduction = use_reduction;
  options.use_int_bound = use_int;
  options.use_svd_bound = use_svd;
  FexiproSolver fexipro(options);
  BmmSolver bmm;
  ASSERT_TRUE(fexipro.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(fexipro.TopKAll(5, &got).ok());
  ASSERT_TRUE(bmm.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, FexiproLesionTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(FexiproLesionTest, BoundsReduceExactScoring) {
  // With both bounds off, every surviving length-test item is scored
  // exactly; with bounds on, strictly fewer are.
  const MFModel model = MakeTestModel(80, 1500, 16, 11, /*norm_sigma=*/0.3);
  FexiproOptions off;
  off.use_int_bound = false;
  off.use_svd_bound = false;
  FexiproOptions on;
  FexiproSolver lesioned(off);
  FexiproSolver full(on);
  ASSERT_TRUE(lesioned.Prepare(ConstRowBlock(model.users),
                               ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(full.Prepare(ConstRowBlock(model.users),
                           ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(lesioned.TopKAll(1, &out).ok());
  const double exact_without = lesioned.last_exact_fraction();
  ASSERT_TRUE(full.TopKAll(1, &out).ok());
  const double exact_with = full.last_exact_fraction();
  EXPECT_LT(exact_with, exact_without);
}

}  // namespace
}  // namespace mips
