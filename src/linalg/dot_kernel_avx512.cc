// AVX-512 variant of the 8-lane dot kernel: all 8 lanes in one zmm
// accumulator.  Compiled with -mavx512f in its own TU;
// MIPS_GEMM_NO_AVX512 is defined at configure time when the compiler
// cannot target AVX-512, in which case this TU forwards to the portable
// kernel (bit-identical by the dot_kernel.h contract).

#include "linalg/dot_kernel.h"

#if !defined(MIPS_GEMM_NO_AVX512)

#include <immintrin.h>

namespace mips {

Real DotKernelAvx512(const Real* x, const Real* y, Index n) {
  __m512d acc = _mm512_setzero_pd();
  const Index n8 = n - (n % 8);
  for (Index i = 0; i < n8; i += 8) {
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i), acc);
  }
  alignas(64) Real lanes[8];
  _mm512_store_pd(lanes, acc);
  return internal::ReduceDotLanes(lanes, x, y, n8, n);
}

bool DotAvx512KernelCompiled() { return true; }

}  // namespace mips

#else  // MIPS_GEMM_NO_AVX512

namespace mips {

Real DotKernelAvx512(const Real* x, const Real* y, Index n) {
  return DotKernelPortable(x, y, n);
}

bool DotAvx512KernelCompiled() { return false; }

}  // namespace mips

#endif  // MIPS_GEMM_NO_AVX512
