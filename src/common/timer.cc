#include "common/timer.h"

namespace mips {

void StageTimer::Add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [stage, total] : stages_) {
    if (stage == name) {
      total += seconds;
      return;
    }
  }
  stages_.emplace_back(name, seconds);
}

double StageTimer::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [stage, total] : stages_) {
    if (stage == name) return total;
  }
  return 0.0;
}

double StageTimer::Total() const {
  std::lock_guard<std::mutex> lock(mu_);
  double sum = 0.0;
  for (const auto& [stage, total] : stages_) sum += total;
  return sum;
}

std::vector<std::pair<std::string, double>> StageTimer::stages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

void StageTimer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
}

}  // namespace mips
