// Portable variant of the 4x16 micro-kernel — the fallback every binary
// can run, and the reference the per-kernel differential tests compare
// the SIMD variants against.
//
// The accumulation uses std::fma, not a separate multiply+add: fused
// multiply-add is single-rounding by IEEE 754-2008, exactly like the
// vfmadd instructions in the AVX kernels, so all three variants produce
// bit-for-bit identical C elements (see gemm_kernel.h).  When this TU is
// compiled for an FMA-capable target std::fma inlines to that
// instruction; on pre-FMA targets it falls back to libm's correctly
// rounded implementation — slower, but the probe only installs this
// kernel when nothing faster is supported, and correctness is identical.

#include "linalg/gemm_kernel.h"

#include <cmath>

namespace mips {

void GemmMicroKernelPortable(const Real* ap, const Real* bp, Index kb,
                             Real alpha, Real* c, Index ldc) {
  Real acc[kGemmMR][kGemmNR] = {};
  for (Index kk = 0; kk < kb; ++kk) {
    const Real* brow = bp + kk * kGemmNR;
    const Real* arow = ap + kk * kGemmMR;
    for (Index i = 0; i < kGemmMR; ++i) {
      const Real aval = arow[i];
      for (Index j = 0; j < kGemmNR; ++j) {
        acc[i][j] = std::fma(aval, brow[j], acc[i][j]);
      }
    }
  }
  for (Index i = 0; i < kGemmMR; ++i) {
    Real* crow = c + static_cast<std::size_t>(i) * ldc;
    for (Index j = 0; j < kGemmNR; ++j) {
      crow[j] = std::fma(alpha, acc[i][j], crow[j]);
    }
  }
}

}  // namespace mips
