// Figure 2: the motivating experiment.
//
// End-to-end top-K runtime of blocked matrix multiply vs LEMP vs FEXIPRO
// on the Netflix f=50 model (BMM should win) and the Yahoo R2 f=50 model
// (the indexes should win), for K in {1, 5, 10, 50}.  The paper's claim is
// the *crossover*: neither pure strategy dominates across inputs.

#include <cstdio>

#include "bench_util.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);
  const std::vector<Index> ks = ParseKList(config.ks);

  std::printf("== Figure 2: BMM vs LEMP vs FEXIPRO, Netflix f=50 and "
              "R2 f=50 ==\n");
  for (const char* id : {"netflix-nomad-50", "r2-nomad-50"}) {
    auto preset = FindModelPreset(id);
    preset.status().CheckOK();
    const MFModel model = MakeBenchModel(*preset, config);
    std::printf("\n-- %s (%d users x %d items, f=%d) --\n",
                preset->display_name.c_str(), model.num_users(),
                model.num_items(), model.num_factors());
    TablePrinter table({"K", "Blocked MM", "LEMP", "FEXIPRO-SI",
                        "LEMP/BMM", "FEXIPRO/BMM"});
    for (const Index k : ks) {
      auto bmm = MakeSolver("bmm");
      auto lemp = MakeSolver("lemp");
      auto fexipro = MakeSolver("fexipro-si");
      const double t_bmm = TimeEndToEnd(bmm.get(), model, k).total();
      const double t_lemp = TimeEndToEnd(lemp.get(), model, k).total();
      const double t_fex = TimeEndToEnd(fexipro.get(), model, k).total();
      table.AddRow({FmtInt(k), FormatSeconds(t_bmm), FormatSeconds(t_lemp),
                    FormatSeconds(t_fex), Fmt(t_lemp / t_bmm, 2) + "x",
                    Fmt(t_fex / t_bmm, 2) + "x"});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape: Netflix -> BMM fastest (LEMP/FEXIPRO 1.9-3.1x "
      "slower); R2 -> LEMP/FEXIPRO 2-3.5x faster than BMM.\n");
  return 0;
}
