// Self-registering solver registry with typed parameter schemas.
//
// Each solver family registers itself from its own translation unit via a
// static SolverRegistrar: a schema (name, typed parameters with defaults
// and docs) plus a factory that builds the solver from a fully-resolved
// ParamMap.  Callers create solvers from textual specs (spec.h):
//
//   auto solver = CreateSolverFromSpec("maximus:clusters=64");
//
// Validation is registry-driven: unknown solver names return NotFound
// (listing what is registered), unknown keys and ill-typed values return
// InvalidArgument naming the offending parameter.  DescribeSolvers()
// exposes every visible schema so CLIs can generate --help output that
// can never drift from the registered reality.

#ifndef MIPS_SOLVERS_REGISTRY_H_
#define MIPS_SOLVERS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "solvers/solver.h"
#include "solvers/spec.h"

namespace mips {

/// Type of one schema parameter.
enum class ParamType { kInt, kReal, kBool, kString };

/// "int", "real", "bool", or "string".
const char* ParamTypeName(ParamType type);

/// A typed parameter value (defaults and resolved overrides).
struct ParamValue {
  ParamType type = ParamType::kInt;
  int64_t int_value = 0;
  double real_value = 0;
  bool bool_value = false;
  std::string string_value;

  static ParamValue Int(int64_t v);
  static ParamValue Real(double v);
  static ParamValue Bool(bool v);
  static ParamValue String(std::string v);

  /// Spec-compatible rendering ("64", "0.01", "true", ...).
  std::string ToString() const;
};

/// Parses `text` as a value of `type`.  InvalidArgument on mismatch; the
/// caller wraps the message with parameter context.
StatusOr<ParamValue> ParseParamValue(ParamType type, const std::string& text);

/// Declaration of one schema parameter.
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kInt;
  ParamValue default_value;
  std::string doc;
};

/// A solver's registered interface: its name, a one-line summary, and
/// the typed parameters specs may override.
class SolverSchema {
 public:
  SolverSchema(std::string name, std::string summary)
      : name_(std::move(name)), summary_(std::move(summary)) {}

  /// Fluent parameter declaration (registration-time only).
  SolverSchema& Int(std::string name, int64_t def, std::string doc);
  SolverSchema& Real(std::string name, double def, std::string doc);
  SolverSchema& Bool(std::string name, bool def, std::string doc);
  SolverSchema& String(std::string name, std::string def, std::string doc);

  const std::string& name() const { return name_; }
  const std::string& summary() const { return summary_; }
  const std::vector<ParamSpec>& params() const { return params_; }
  /// Spec for `key`, or nullptr if the schema does not declare it.
  const ParamSpec* Find(const std::string& key) const;

 private:
  std::string name_;
  std::string summary_;
  std::vector<ParamSpec> params_;
};

/// Fully-resolved parameters handed to a factory: every schema parameter
/// is present, either at its default or at the spec's override.  Getters
/// assert on missing names / type mismatches — the registry guarantees
/// both before invoking a factory.
class ParamMap {
 public:
  int64_t GetInt(const std::string& name) const;
  double GetReal(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  /// GetInt narrowed to the 32-bit Index used by matrix dimensions:
  /// InvalidArgument (naming the parameter) when the value does not fit,
  /// so oversized spec values are rejected instead of silently truncated.
  StatusOr<Index> GetIndexChecked(const std::string& name) const;

  void Set(const std::string& name, ParamValue value);

 private:
  const ParamValue& At(const std::string& name, ParamType type) const;

  std::map<std::string, ParamValue> values_;
};

/// Builds a solver from resolved parameters.  Factories may still reject
/// semantically invalid combinations with a Status.
using SolverFactory =
    std::function<StatusOr<std::unique_ptr<MipsSolver>>(const ParamMap&)>;

/// The process-wide solver registry.
class SolverRegistry {
 public:
  /// The singleton used by the static registrars.
  static SolverRegistry& Global();

  /// Registers a schema + factory.  `hidden` entries are creatable but
  /// excluded from Names()/Describe() (used for aliases like "fexipro").
  /// Duplicate names abort: they are a build-time wiring error.
  void Register(SolverSchema schema, SolverFactory factory,
                bool hidden = false) EXCLUDES(mu_);

  /// Creates a solver from a parsed spec: resolves the schema, validates
  /// every override (unknown key / ill-typed value -> InvalidArgument
  /// naming the parameter), and invokes the factory.
  StatusOr<std::unique_ptr<MipsSolver>> Create(const SolverSpec& spec) const
      EXCLUDES(mu_);
  /// Convenience: parse + Create.
  StatusOr<std::unique_ptr<MipsSolver>> Create(
      const std::string& spec_text) const;

  /// Visible solver names, sorted.
  std::vector<std::string> Names() const EXCLUDES(mu_);
  /// Visible schemas, sorted by name.
  std::vector<SolverSchema> Describe() const EXCLUDES(mu_);
  /// Schema for `name` (visible or hidden), or nullptr.  The pointer
  /// stays valid: entries are only ever appended (at static-init time)
  /// and never removed or reordered.
  const SolverSchema* FindSchema(const std::string& name) const EXCLUDES(mu_);

 private:
  struct Entry {
    SolverSchema schema;
    SolverFactory factory;
    bool hidden = false;
  };

  const Entry* FindEntry(const std::string& name) const REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<Entry> entries_ GUARDED_BY(mu_);
};

/// Put one of these at namespace scope in the solver's .cc file:
///
///   namespace {
///   const SolverRegistrar kBmm(
///       SolverSchema("bmm", "blocked matrix multiply brute force")
///           .Int("batch_rows", 0, "users per GEMM batch (0 = auto)"),
///       [](const ParamMap& params) { ... });
///   }  // namespace
struct SolverRegistrar {
  SolverRegistrar(SolverSchema schema, SolverFactory factory,
                  bool hidden = false) {
    SolverRegistry::Global().Register(std::move(schema), std::move(factory),
                                      hidden);
  }
};

/// Free-function surface used by applications and the core facade.
StatusOr<std::unique_ptr<MipsSolver>> CreateSolverFromSpec(
    const std::string& spec_text);
std::vector<std::string> RegisteredSolverNames();
std::vector<SolverSchema> DescribeSolvers();
/// Human-readable multi-line rendering of every visible schema (for
/// --help output).
std::string SolverHelpText();

}  // namespace mips

#endif  // MIPS_SOLVERS_REGISTRY_H_
