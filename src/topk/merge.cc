#include "topk/merge.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mips {

namespace {

/// Read position inside one input row.
struct Cursor {
  const TopKEntry* row;
  Index pos;
};

}  // namespace

void MergeTopKRows(std::span<const TopKEntry* const> rows, Index k_in,
                   Index k_out, TopKEntry* out) {
  assert(k_in > 0 && k_out > 0);
  // Cursor heap keyed by the entry each cursor points at; the best entry
  // (BetterEntry order) sits at the front.  O(k_out * log S) for S shards.
  std::vector<Cursor> heap;
  heap.reserve(rows.size());
  const auto cursor_worse = [](const Cursor& a, const Cursor& b) {
    // push_heap keeps the element for which nothing is "greater" at the
    // front; "greater" == better entry puts the best cursor there.
    return BetterEntry(b.row[b.pos], a.row[a.pos]);
  };
  for (const TopKEntry* row : rows) {
    if (row != nullptr && row[0].item >= 0) heap.push_back({row, 0});
  }
  std::make_heap(heap.begin(), heap.end(), cursor_worse);

  Index written = 0;
  while (written < k_out && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cursor_worse);
    Cursor& best = heap.back();
    out[written++] = best.row[best.pos];
    ++best.pos;
    // A sentinel ({-1, -inf}) marks the end of a row's real entries: rows
    // are sorted descending, so everything after it is padding too.
    if (best.pos < k_in && best.row[best.pos].item >= 0) {
      std::push_heap(heap.begin(), heap.end(), cursor_worse);
    } else {
      heap.pop_back();
    }
  }
  for (; written < k_out; ++written) {
    out[written] = {-1, -std::numeric_limits<Real>::infinity()};
  }
}

void MergeTopKResults(std::span<const TopKResult* const> shard_results,
                      Index k_out, TopKResult* out) {
  assert(!shard_results.empty());
  const Index num_queries = shard_results.front()->num_queries();
  const Index k_in = shard_results.front()->k();
  *out = TopKResult(num_queries, k_out);
  std::vector<const TopKEntry*> rows(shard_results.size());
  for (Index q = 0; q < num_queries; ++q) {
    for (std::size_t s = 0; s < shard_results.size(); ++s) {
      assert(shard_results[s]->num_queries() == num_queries);
      assert(shard_results[s]->k() == k_in);
      rows[s] = shard_results[s]->Row(q);
    }
    MergeTopKRows(rows, k_in, k_out, out->Row(q));
  }
}

}  // namespace mips
