#include "linalg/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/dcheck.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/gemm_kernel.h"

namespace mips {
namespace {

// Register tile (gemm_kernel.h): the full-tile micro-kernel is selected
// at runtime by simd_dispatch.cc among AVX-512 / AVX2+FMA / portable
// variants — all bit-for-bit identical per C element, so the dispatch
// never affects results, only throughput.
constexpr Index kMR = kGemmMR;
constexpr Index kNR = kGemmNR;

// Cache blocking.  KC covers every latent-factor count in the paper
// (f <= 200) in a single K pass; MC*KC*8B ~= 256 KB targets L2.  The
// panel depth is public (gemm.h): the sparse rescore path replicates the
// per-panel accumulation fold and must agree on where panels break.
constexpr Index kKC = kGemmKPanel;
constexpr Index kMC = 128;
constexpr Index kNC = 2048;

// Packs rows [i0, i0+mb) x cols [p0, p0+kb) of row-major `a` (lda = k)
// into MR-tall panels: dst[panel][kk][mr].  Rows beyond mb are zero-padded
// so the micro-kernel never needs an M edge case.
void PackA(const Real* a, Index lda, Index i0, Index mb, Index p0, Index kb,
           Real* dst) {
  MIPS_DCHECK_GT(mb, 0);
  MIPS_DCHECK_GT(kb, 0);
  MIPS_DCHECK_LE(p0 + kb, lda);
  for (Index ip = 0; ip < mb; ip += kMR) {
    const Index mr = std::min(kMR, mb - ip);
    for (Index kk = 0; kk < kb; ++kk) {
      for (Index r = 0; r < mr; ++r) {
        dst[kk * kMR + r] =
            a[static_cast<std::size_t>(i0 + ip + r) * lda + p0 + kk];
      }
      for (Index r = mr; r < kMR; ++r) dst[kk * kMR + r] = 0;
    }
    dst += static_cast<std::size_t>(kb) * kMR;
  }
}

// Packs rows [j0, j0+nb) x cols [p0, p0+kb) of row-major `b` (ldb = k)
// into NR-wide panels: dst[panel][kk][nr], zero-padding the N edge.
void PackB(const Real* b, Index ldb, Index j0, Index nb, Index p0, Index kb,
           Real* dst) {
  MIPS_DCHECK_GT(nb, 0);
  MIPS_DCHECK_GT(kb, 0);
  MIPS_DCHECK_LE(p0 + kb, ldb);
  for (Index jp = 0; jp < nb; jp += kNR) {
    const Index nr = std::min(kNR, nb - jp);
    for (Index kk = 0; kk < kb; ++kk) {
      for (Index cidx = 0; cidx < nr; ++cidx) {
        dst[kk * kNR + cidx] =
            b[static_cast<std::size_t>(j0 + jp + cidx) * ldb + p0 + kk];
      }
      for (Index cidx = nr; cidx < kNR; ++cidx) dst[kk * kNR + cidx] = 0;
    }
    dst += static_cast<std::size_t>(kb) * kNR;
  }
}

// Edge tile (mr < MR or nr < NR): run the SAME full-tile kernel into a
// scratch MR x NR tile seeded with the valid C region, then copy the
// valid region back.  Every C element — full tile or edge — is therefore
// produced by the identical fma sequence of the installed kernel, so a
// score can never depend on which tile position an item happened to land
// in (duplicate items tie bit-for-bit even when one sits in the edge
// fringe), and swapping kernels still changes nothing (gemm_kernel.h).
// The scratch copies touch at most 64 doubles; the packed panels are
// already zero-padded, so the padding lanes compute garbage that is
// simply not copied back.
void MicroKernelEdge(GemmMicroKernelFn full, const Real* __restrict ap,
                     const Real* __restrict bp, Index kb, Real alpha,
                     Real* __restrict c, Index ldc, Index mr, Index nr) {
  // The scratch tile is exactly MR x NR; an oversized (mr, nr) here would
  // read past the packed panels and write past scratch.
  MIPS_DCHECK_GT(mr, 0);
  MIPS_DCHECK_LE(mr, kMR);
  MIPS_DCHECK_GT(nr, 0);
  MIPS_DCHECK_LE(nr, kNR);
  MIPS_DCHECK_GT(kb, 0);
  MIPS_DCHECK_GE(ldc, nr);
  alignas(64) Real scratch[kMR * kNR] = {};
  for (Index i = 0; i < mr; ++i) {
    std::memcpy(scratch + i * kNR, c + static_cast<std::size_t>(i) * ldc,
                static_cast<std::size_t>(nr) * sizeof(Real));
  }
  full(ap, bp, kb, alpha, scratch, kNR);
  for (Index i = 0; i < mr; ++i) {
    std::memcpy(c + static_cast<std::size_t>(i) * ldc, scratch + i * kNR,
                static_cast<std::size_t>(nr) * sizeof(Real));
  }
}

void MicroKernel(GemmMicroKernelFn full, const Real* __restrict ap,
                 const Real* __restrict bp, Index kb, Real alpha,
                 Real* __restrict c, Index ldc, Index mr, Index nr) {
  if (mr == kMR && nr == kNR) {
    full(ap, bp, kb, alpha, c, ldc);
  } else {
    MicroKernelEdge(full, ap, bp, kb, alpha, c, ldc, mr, nr);
  }
}

}  // namespace

void GemmNT(const Real* a, Index m, const Real* b, Index n, Index k,
            Real alpha, Real beta, Real* c, Index ldc) {
  if (m <= 0 || n <= 0) return;

  // Apply beta up front; the blocked passes below then purely accumulate.
  if (beta == 0) {
    for (Index i = 0; i < m; ++i) {
      std::memset(c + static_cast<std::size_t>(i) * ldc, 0,
                  static_cast<std::size_t>(n) * sizeof(Real));
    }
  } else if (beta != 1) {
    for (Index i = 0; i < m; ++i) {
      Scale(beta, c + static_cast<std::size_t>(i) * ldc, n);
    }
  }
  if (k <= 0 || alpha == 0) return;

  // One dispatch load per call (first use runs the env/probe install).
  const GemmMicroKernelFn full_tile = ActiveGemmMicroKernel();

  std::vector<Real> apack(static_cast<std::size_t>(kMC + kMR) * kKC);
  std::vector<Real> bpack(static_cast<std::size_t>(kNC + kNR) * kKC);

  for (Index j0 = 0; j0 < n; j0 += kNC) {
    const Index nb = std::min(kNC, n - j0);
    for (Index p0 = 0; p0 < k; p0 += kKC) {
      const Index kb = std::min(kKC, k - p0);
      PackB(b, k, j0, nb, p0, kb, bpack.data());
      for (Index i0 = 0; i0 < m; i0 += kMC) {
        const Index mb = std::min(kMC, m - i0);
        PackA(a, k, i0, mb, p0, kb, apack.data());
        // Macro kernel: sweep the packed panels.
        for (Index jp = 0; jp < nb; jp += kNR) {
          const Index nr = std::min(kNR, nb - jp);
          const Real* bp =
              bpack.data() + static_cast<std::size_t>(jp / kNR) * kb * kNR;
          for (Index ip = 0; ip < mb; ip += kMR) {
            const Index mr = std::min(kMR, mb - ip);
            const Real* ap =
                apack.data() + static_cast<std::size_t>(ip / kMR) * kb * kMR;
            Real* ctile = c + static_cast<std::size_t>(i0 + ip) * ldc +
                          (j0 + jp);
            MicroKernel(full_tile, ap, bp, kb, alpha, ctile, ldc, mr, nr);
          }
        }
      }
    }
  }
}

void GemmNT(const Real* a, Index m, const Real* b, Index n, Index k,
            Real alpha, Real beta, Real* c, Index ldc, ThreadPool* pool) {
  const int threads = (pool == nullptr) ? 1 : pool->num_threads();
  if (threads <= 1 || m <= 0 || n <= 0) {
    GemmNT(a, m, b, n, k, alpha, beta, c, ldc);
    return;
  }
  // Slab-partition the larger output dimension on register-tile
  // boundaries; every worker runs the full serial blocked algorithm on
  // its own slab (private pack buffers, disjoint C region).  Per C
  // element the K-panel order and micro-kernel accumulation sequence are
  // exactly the serial ones, so the threaded product is bit-for-bit
  // identical to the single-threaded call.
  if (n >= m) {
    const int64_t tiles = (n + kNR - 1) / kNR;
    for (const RangeChunk& chunk : SplitRange(tiles, threads)) {
      const Index j0 = static_cast<Index>(chunk.begin) * kNR;
      const Index j1 = std::min(static_cast<Index>(chunk.end) * kNR, n);
      if (j0 >= j1) continue;
      pool->Submit([=]() {
        GemmNT(a, m, b + static_cast<std::size_t>(j0) * k, j1 - j0, k,
               alpha, beta, c + j0, ldc);
      });
    }
  } else {
    const int64_t tiles = (m + kMR - 1) / kMR;
    for (const RangeChunk& chunk : SplitRange(tiles, threads)) {
      const Index i0 = static_cast<Index>(chunk.begin) * kMR;
      const Index i1 = std::min(static_cast<Index>(chunk.end) * kMR, m);
      if (i0 >= i1) continue;
      pool->Submit([=]() {
        GemmNT(a + static_cast<std::size_t>(i0) * k, i1 - i0, b, n, k,
               alpha, beta, c + static_cast<std::size_t>(i0) * ldc, ldc);
      });
    }
  }
  pool->Wait();
}

void GemmNT(const ConstRowBlock& a, const ConstRowBlock& b, Matrix* c) {
  assert(a.cols() == b.cols());
  c->Resize(a.rows(), b.rows());
  GemmNT(a.data(), a.rows(), b.data(), b.rows(), a.cols(), /*alpha=*/1,
         /*beta=*/0, c->data(), c->cols());
}

void GemmNN(const Real* a, Index m, const Real* b, Index n, Index k,
            Real alpha, Real beta, Real* c, Index ldc) {
  // Transpose B (k x n) into row-major (n x k), then reuse the NT kernel.
  Matrix bt(n, k);
  for (Index kk = 0; kk < k; ++kk) {
    const Real* brow = b + static_cast<std::size_t>(kk) * n;
    for (Index j = 0; j < n; ++j) bt(j, kk) = brow[j];
  }
  GemmNT(a, m, bt.data(), n, k, alpha, beta, c, ldc);
}

void Gemv(const Real* a, Index m, Index k, const Real* x, Real* y) {
  for (Index i = 0; i < m; ++i) {
    y[i] = Dot(a + static_cast<std::size_t>(i) * k, x, k);
  }
}

void GemmNaiveNT(const Real* a, Index m, const Real* b, Index n, Index k,
                 Real alpha, Real beta, Real* c, Index ldc) {
  for (Index i = 0; i < m; ++i) {
    const Real* arow = a + static_cast<std::size_t>(i) * k;
    Real* crow = c + static_cast<std::size_t>(i) * ldc;
    for (Index j = 0; j < n; ++j) {
      const Real* brow = b + static_cast<std::size_t>(j) * k;
      Real acc = 0;
      for (Index kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = alpha * acc + beta * crow[j];
    }
  }
}

void GemmDotNT(const Real* a, Index m, const Real* b, Index n, Index k,
               Real* c, Index ldc) {
  for (Index i = 0; i < m; ++i) {
    const Real* arow = a + static_cast<std::size_t>(i) * k;
    Real* crow = c + static_cast<std::size_t>(i) * ldc;
    for (Index j = 0; j < n; ++j) {
      crow[j] = Dot(arow, b + static_cast<std::size_t>(j) * k, k);
    }
  }
}

}  // namespace mips
