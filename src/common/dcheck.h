// MIPS_DCHECK: debug-build invariant checks for the hot paths.
//
// Release serving binaries must not pay for invariant checks in the
// inner loops (heap pushes, GEMM tile setup, queue accounting), but the
// sanitizer and debug CI legs should fail loudly the moment an invariant
// breaks — close to the cause, not three layers later as a wrong answer
// or an ASan report in unrelated code.  MIPS_DCHECK* compile to nothing
// unless MIPS_ENABLE_DCHECKS is defined (CMake option of the same name;
// the ASan/UBSan CI leg and any -fsanitize build default it on), so they
// can sit on paths far too hot for an always-on check.
//
//   MIPS_DCHECK(ptr != nullptr);
//   MIPS_DCHECK_LT(local, num_items);   // prints both operand values
//
// Policy: DCHECK programmer invariants (index maps in range, tile shapes
// within the register kernel, conservation laws like the batching
// queue's row accounting).  Never DCHECK caller input — user-facing
// validation stays a Status so it is enforced in release builds too.
//
// A failed check prints file:line, the expression, and (for the
// comparison forms) both operand values, then aborts — which the CI
// sanitizer leg reports as the test failure.

#ifndef MIPS_COMMON_DCHECK_H_
#define MIPS_COMMON_DCHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mips {
namespace internal {

[[noreturn]] inline void DcheckFailure(const char* file, int line,
                                       const char* expression,
                                       const std::string& values) {
  std::fprintf(stderr, "DCHECK failed at %s:%d: %s%s\n", file, line,
               expression, values.c_str());
  std::fflush(stderr);
  std::abort();
}

template <typename A, typename B>
[[noreturn]] void DcheckOpFailure(const char* file, int line,
                                  const char* expression, const A& lhs,
                                  const B& rhs) {
  std::ostringstream values;
  values << " (lhs = " << lhs << ", rhs = " << rhs << ")";
  DcheckFailure(file, line, expression, values.str());
}

}  // namespace internal
}  // namespace mips

#ifdef MIPS_ENABLE_DCHECKS

#define MIPS_DCHECK(condition)                                       \
  ((condition) ? static_cast<void>(0)                                \
               : ::mips::internal::DcheckFailure(__FILE__, __LINE__, \
                                                 #condition, ""))

#define MIPS_DCHECK_OP_IMPL(op, lhs, rhs)                              \
  (((lhs)op(rhs)) ? static_cast<void>(0)                               \
                  : ::mips::internal::DcheckOpFailure(                 \
                        __FILE__, __LINE__, #lhs " " #op " " #rhs,     \
                        (lhs), (rhs)))

#else  // !MIPS_ENABLE_DCHECKS

// The dead-branch form type-checks the expression (so a refactor cannot
// silently rot a disabled check and operands never trigger -Wunused)
// while generating no code and evaluating nothing.
#define MIPS_DCHECK(condition) \
  (false ? static_cast<void>(condition) : static_cast<void>(0))

#define MIPS_DCHECK_OP_IMPL(op, lhs, rhs) \
  (false ? static_cast<void>((lhs)op(rhs)) : static_cast<void>(0))

#endif  // MIPS_ENABLE_DCHECKS

#define MIPS_DCHECK_EQ(lhs, rhs) MIPS_DCHECK_OP_IMPL(==, lhs, rhs)
#define MIPS_DCHECK_NE(lhs, rhs) MIPS_DCHECK_OP_IMPL(!=, lhs, rhs)
#define MIPS_DCHECK_LT(lhs, rhs) MIPS_DCHECK_OP_IMPL(<, lhs, rhs)
#define MIPS_DCHECK_LE(lhs, rhs) MIPS_DCHECK_OP_IMPL(<=, lhs, rhs)
#define MIPS_DCHECK_GT(lhs, rhs) MIPS_DCHECK_OP_IMPL(>, lhs, rhs)
#define MIPS_DCHECK_GE(lhs, rhs) MIPS_DCHECK_OP_IMPL(>=, lhs, rhs)

#endif  // MIPS_COMMON_DCHECK_H_
