// mips-unchecked-status
//
// Rationale:
//
//   The library is exception-free: a mips::Status / mips::StatusOr<T>
//   return value IS the error channel.  A call whose result is discarded
//   silently converts "Open failed", "invalid spec", "shard build
//   failed" into undefined downstream behaviour — the worst kind being a
//   partially-initialised engine serving wrong-but-plausible top-k.
//   src/common/status.h marks both types [[nodiscard]], which covers
//   compilers; this check covers the loopholes the attribute leaves open
//   and keeps firing if a refactor drops the attribute.
//
// What the check flags: any call to a function returning Status or
// StatusOr<T> (by value) whose result is used as a plain statement —
// directly in a compound statement, as an if/loop/case body, or as the
// left side of a comma operator.
//
// What it accepts: an explicit `(void)` cast.  Matching [[nodiscard]]
// semantics keeps one rule: a visible, greppable discard is a reviewed
// decision; an invisible one is a bug.
//
// Suppression: `// mips-tidy: allow(unchecked-status): <reason>`.

#ifndef MIPS_TOOLS_MIPS_TIDY_UNCHECKED_STATUS_CHECK_H_
#define MIPS_TOOLS_MIPS_TIDY_UNCHECKED_STATUS_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::mips {

class UncheckedStatusCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::mips

#endif  // MIPS_TOOLS_MIPS_TIDY_UNCHECKED_STATUS_CHECK_H_
