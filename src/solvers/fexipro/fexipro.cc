#include "solvers/fexipro/fexipro.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>

#include "common/timer.h"
#include "linalg/blas.h"
#include "solvers/registry.h"
#include "topk/topk_heap.h"

namespace mips {

// Per-query scratch buffers: the user vector in SVD space, in integer
// space, and its derived norms/masses.
struct FexiproSolver::QueryScratch {
  std::vector<Real> svd_user;       // f
  std::vector<Real> reduced_user;   // f + 1 (SIR only)
  std::vector<int16_t> quant_user;  // int_dims
  Real user_norm = 0;
  Real tail_norm = 0;               // ||u'[h:f)||
  Real user_scale = 1;
  int64_t user_l1 = 0;
};

Status FexiproSolver::Prepare(const ConstRowBlock& users,
                              const ConstRowBlock& items) {
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (items.rows() <= 0) {
    return Status::InvalidArgument("item set is empty");
  }
  users_ = users;
  items_ = items;
  prepared_users_ = users.rows();

  WallTimer timer;
  const Index n = items.rows();
  const Index f = items.cols();

  // --- S: SVD basis and transformed items. ---
  auto svd = fexipro::ComputeSvdTransform(items, options_.svd_energy_fraction);
  MIPS_RETURN_IF_ERROR(svd.status());
  svd_ = std::move(svd.value());
  Matrix transformed = fexipro::ApplySvdToRows(svd_, items);

  // --- Sort by descending norm (orthogonal transform preserves norms). ---
  std::vector<Real> raw_norms(static_cast<std::size_t>(n));
  RowNorms(transformed.data(), n, f, raw_norms.data());
  ids_.resize(static_cast<std::size_t>(n));
  std::iota(ids_.begin(), ids_.end(), 0);
  std::stable_sort(ids_.begin(), ids_.end(), [&](Index a, Index b) {
    return raw_norms[static_cast<std::size_t>(a)] >
           raw_norms[static_cast<std::size_t>(b)];
  });
  sorted_items_.Resize(n, f);
  norms_.resize(static_cast<std::size_t>(n));
  for (Index r = 0; r < n; ++r) {
    const Index src = ids_[static_cast<std::size_t>(r)];
    std::memcpy(sorted_items_.Row(r), transformed.Row(src),
                static_cast<std::size_t>(f) * sizeof(Real));
    norms_[static_cast<std::size_t>(r)] =
        raw_norms[static_cast<std::size_t>(src)];
  }

  const Index h = svd_.head_dims;
  tail_norms_.resize(static_cast<std::size_t>(n));
  for (Index r = 0; r < n; ++r) {
    tail_norms_[static_cast<std::size_t>(r)] =
        Nrm2(sorted_items_.Row(r) + h, f - h);
  }

  // --- R (SIR only) and I: integer-space items. ---
  if (options_.use_reduction) {
    reduction_ = fexipro::MakeReduction(ConstRowBlock(sorted_items_));
    int_dims_ = reduction_.out_dims();
    Matrix reduced(n, int_dims_);
    for (Index r = 0; r < n; ++r) {
      reduction_.ApplyToItem(sorted_items_.Row(r), reduced.Row(r));
    }
    item_quantizer_ =
        fexipro::MakeQuantizer(fexipro::MaxAbsCoordinate(ConstRowBlock(reduced)));
    quantized_items_.resize(static_cast<std::size_t>(n) * int_dims_);
    item_l1_.resize(static_cast<std::size_t>(n));
    for (Index r = 0; r < n; ++r) {
      int16_t* q = quantized_items_.data() +
                   static_cast<std::size_t>(r) * int_dims_;
      item_quantizer_.Quantize(reduced.Row(r), int_dims_, q);
      item_l1_[static_cast<std::size_t>(r)] = fexipro::L1Int16(q, int_dims_);
    }
  } else {
    int_dims_ = f;
    item_quantizer_ = fexipro::MakeQuantizer(
        fexipro::MaxAbsCoordinate(ConstRowBlock(sorted_items_)));
    quantized_items_.resize(static_cast<std::size_t>(n) * int_dims_);
    item_l1_.resize(static_cast<std::size_t>(n));
    for (Index r = 0; r < n; ++r) {
      int16_t* q = quantized_items_.data() +
                   static_cast<std::size_t>(r) * int_dims_;
      item_quantizer_.Quantize(sorted_items_.Row(r), int_dims_, q);
      item_l1_[static_cast<std::size_t>(r)] = fexipro::L1Int16(q, int_dims_);
    }
  }
  stage_timer_.Add("construction", timer.Seconds());
  return Status::OK();
}

Index FexiproSolver::QueryOneUser(const Real* user, Index k,
                                  QueryScratch* s, TopKEntry* out_row) const {
  const Index n = sorted_items_.rows();
  const Index f = sorted_items_.cols();
  const Index h = svd_.head_dims;

  // Transform the query once: SVD rotation, tail norm, integer image.
  s->svd_user.resize(static_cast<std::size_t>(f));
  svd_.Apply(user, s->svd_user.data());
  const Real* su = s->svd_user.data();
  s->user_norm = Nrm2(su, f);
  s->tail_norm = Nrm2(su + h, f - h);

  const Real* int_source = su;
  if (options_.use_reduction) {
    s->reduced_user.resize(static_cast<std::size_t>(int_dims_));
    reduction_.ApplyToQuery(su, s->reduced_user.data());
    int_source = s->reduced_user.data();
  }
  s->quant_user.resize(static_cast<std::size_t>(int_dims_));
  Real max_abs = 0;
  for (Index d = 0; d < int_dims_; ++d) {
    max_abs = std::max(max_abs, std::abs(int_source[d]));
  }
  const fexipro::Int16Quantizer uq = fexipro::MakeQuantizer(max_abs);
  s->user_scale = uq.scale;
  uq.Quantize(int_source, int_dims_, s->quant_user.data());
  s->user_l1 = fexipro::L1Int16(s->quant_user.data(), int_dims_);

  // The bounds are computed in SVD space but the heap holds
  // ORIGINAL-space scores (see the Push below): the rotation preserves
  // dots and norms only to O(f * eps) relative rounding error, so a
  // mathematically valid SVD-space upper bound can land a hair below an
  // item's original-space score.  Every bound is therefore inflated by a
  // slack proportional to ||u'|| * ||i'|| (>= |score| by Cauchy-Schwarz,
  // so it is the right scale) before it may prune.  The constant is
  // generous — 64 * eps * f covers the rotation's O(f)-term rounding
  // with an order of magnitude to spare — and costs nothing: it only
  // ever makes pruning (never correctness) infinitesimally lazier.
  const Real slack_rel = 64 * std::numeric_limits<Real>::epsilon() *
                         static_cast<Real>(f);
  TopKHeap heap(k);
  Index exact = 0;
  for (Index pos = 0; pos < n; ++pos) {
    const Real min_h = heap.MinScore();
    const Real slack =
        slack_rel * norms_[static_cast<std::size_t>(pos)] * s->user_norm;
    // (1) Length bound: the scan order is norm-descending, so the first
    // failing item ends the entire query.  All bounds here prune
    // strictly (`< min_h`): a bound equal to the heap minimum can cover
    // a tied score, and the tied item must reach Push for the id
    // tie-break (topk_heap.h).
    if (heap.full() &&
        norms_[static_cast<std::size_t>(pos)] * s->user_norm + slack <
            min_h) {
      break;
    }
    const Real* item = sorted_items_.Row(pos);
    if (heap.full()) {
      // (2) Integer bound.
      if (options_.use_int_bound) {
        const int16_t* qi = quantized_items_.data() +
                            static_cast<std::size_t>(pos) * int_dims_;
        const int64_t idot = fexipro::DotInt16(s->quant_user.data(), qi,
                                               int_dims_);
        const Real int_bound = fexipro::QuantizedUpperBound(
            idot, s->user_l1, item_l1_[static_cast<std::size_t>(pos)],
            int_dims_, s->user_scale, item_quantizer_.scale);
        if (int_bound + slack < min_h) continue;
      }
      // (3) SVD partial product + Cauchy-Schwarz tail.
      if (options_.use_svd_bound) {
        const Real head = Dot(su, item, h);
        const Real svd_bound =
            head + s->tail_norm * tail_norms_[static_cast<std::size_t>(pos)];
        if (svd_bound + slack < min_h) continue;
      }
      // (4) Exact score — over the ORIGINAL vectors, not the SVD images:
      // the rotation is item-set-dependent and only ulp-preserves dots,
      // so scoring in SVD space would let exact cross-shard ties diverge
      // between sharded and unsharded runs (see the file comment in
      // fexipro.h).  The original row is items_.Row(id): the sorted copy
      // holds transformed vectors only.
      const Index id = ids_[static_cast<std::size_t>(pos)];
      ++exact;
      heap.Push(id, Dot(user, items_.Row(id), f));
    } else {
      const Index id = ids_[static_cast<std::size_t>(pos)];
      ++exact;
      heap.Push(id, Dot(user, items_.Row(id), f));
    }
  }
  heap.ExtractDescending(out_row);
  return exact;
}

Status FexiproSolver::TopKForUsers(Index k, std::span<const Index> user_ids,
                                   TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (sorted_items_.empty()) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  const Index q = static_cast<Index>(user_ids.size());
  *out = TopKResult(q, k);
  if (q == 0) return Status::OK();

  std::atomic<int64_t> total_exact{0};
  ParallelFor(pool_, q, [&](int64_t begin, int64_t end, int /*chunk*/) {
    QueryScratch scratch;
    int64_t exact = 0;
    for (int64_t r = begin; r < end; ++r) {
      const Real* user = users_.Row(user_ids[static_cast<std::size_t>(r)]);
      exact += QueryOneUser(user, k, &scratch,
                            out->Row(static_cast<Index>(r)));
    }
    total_exact.fetch_add(exact, std::memory_order_relaxed);
  });
  last_exact_fraction_.store(
      static_cast<double>(total_exact.load()) /
          (static_cast<double>(q) * static_cast<double>(items_.rows())),
      std::memory_order_relaxed);
  return Status::OK();
}

namespace {

// One schema + factory shared by the SI/SIR variants: "fexipro-si" and
// "fexipro-sir" differ only in the use_reduction default, and the bare
// "fexipro" name is a hidden alias so specs can say
// "fexipro:use_reduction=true" instead of picking a variant name.
SolverSchema FexiproSchema(std::string name, std::string summary,
                           bool reduction_default) {
  SolverSchema schema(std::move(name), std::move(summary));
  schema
      .Bool("use_reduction", reduction_default,
            "apply the non-negativity reduction before quantization (SIR)")
      .Real("svd_energy_fraction", FexiproOptions{}.svd_energy_fraction,
            "energy share captured by the SVD head dimensions")
      .Bool("use_int_bound", FexiproOptions{}.use_int_bound,
            "enable the int16 cascade stage")
      .Bool("use_svd_bound", FexiproOptions{}.use_svd_bound,
            "enable the SVD partial-bound stage");
  return schema;
}

StatusOr<std::unique_ptr<MipsSolver>> MakeFexipro(const ParamMap& params) {
  FexiproOptions options;
  options.use_reduction = params.GetBool("use_reduction");
  options.svd_energy_fraction =
      static_cast<Real>(params.GetReal("svd_energy_fraction"));
  options.use_int_bound = params.GetBool("use_int_bound");
  options.use_svd_bound = params.GetBool("use_svd_bound");
  if (options.svd_energy_fraction <= 0 || options.svd_energy_fraction > 1) {
    return Status::InvalidArgument("svd_energy_fraction must be in (0, 1]");
  }
  return std::unique_ptr<MipsSolver>(new FexiproSolver(options));
}

const SolverRegistrar kFexiproSiRegistrar(
    FexiproSchema("fexipro-si", "FEXIPRO with SVD + integer bounds (SIGMOD'17)",
                  /*reduction_default=*/false),
    MakeFexipro);
const SolverRegistrar kFexiproSirRegistrar(
    FexiproSchema("fexipro-sir",
                  "FEXIPRO-SI plus the non-negativity reduction",
                  /*reduction_default=*/true),
    MakeFexipro);
const SolverRegistrar kFexiproAliasRegistrar(
    FexiproSchema("fexipro", "alias of fexipro-si (set use_reduction for SIR)",
                  /*reduction_default=*/false),
    MakeFexipro, /*hidden=*/true);

}  // namespace

}  // namespace mips
