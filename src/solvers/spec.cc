#include "solvers/spec.h"

namespace mips {

namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return std::string();
  std::size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::string SolverSpec::ToString() const {
  std::string out = name;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += (i == 0) ? ':' : ',';
    out += params[i].first;
    out += '=';
    out += params[i].second;
  }
  return out;
}

const std::string* SolverSpec::Find(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

StatusOr<SolverSpec> ParseSolverSpec(const std::string& text) {
  SolverSpec spec;
  const std::size_t colon = text.find(':');
  spec.name = Trim(text.substr(0, colon));
  if (spec.name.empty()) {
    return Status::InvalidArgument("solver spec has an empty name: \"" +
                                   text + "\"");
  }
  if (colon == std::string::npos) return spec;

  const std::string rest = text.substr(colon + 1);
  if (Trim(rest).empty()) return spec;  // "bmm:" — no overrides

  std::size_t pos = 0;
  while (pos <= rest.size()) {
    std::size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string pair = Trim(rest.substr(pos, comma - pos));
    pos = comma + 1;
    if (pair.empty()) {
      return Status::InvalidArgument("empty parameter in solver spec \"" +
                                     text + "\"");
    }
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("parameter \"" + pair +
                                     "\" in solver spec \"" + text +
                                     "\" is missing '='");
    }
    const std::string key = Trim(pair.substr(0, eq));
    const std::string value = Trim(pair.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("parameter \"" + pair +
                                     "\" in solver spec \"" + text +
                                     "\" has an empty key");
    }
    if (spec.Find(key) != nullptr) {
      return Status::InvalidArgument("duplicate parameter \"" + key +
                                     "\" in solver spec \"" + text + "\"");
    }
    spec.params.emplace_back(key, value);
  }
  return spec;
}

}  // namespace mips
