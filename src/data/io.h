// Matrix persistence: a simple binary format plus CSV import/export.
//
// Binary layout: 8-byte magic "MIPSMAT1", int64 rows, int64 cols, then
// rows*cols little-endian doubles in row-major order.  Used by the examples
// to save trained models and by users who want to feed their own factor
// matrices to the solvers.

#ifndef MIPS_DATA_IO_H_
#define MIPS_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "linalg/matrix.h"

namespace mips {

/// Writes `m` to `path` in the MIPSMAT1 binary format.
Status SaveMatrixBinary(const Matrix& m, const std::string& path);

/// Reads a MIPSMAT1 file.  IOError on open/short-read; InvalidArgument on
/// bad magic or nonsensical dimensions.
StatusOr<Matrix> LoadMatrixBinary(const std::string& path);

/// Writes `m` as comma-separated values, one row per line, %.17g precision
/// (round-trips doubles exactly).
Status SaveMatrixCsv(const Matrix& m, const std::string& path);

/// Reads a CSV of numbers into a Matrix.  All rows must have the same
/// column count.  Empty lines are skipped.
StatusOr<Matrix> LoadMatrixCsv(const std::string& path);

}  // namespace mips

#endif  // MIPS_DATA_IO_H_
