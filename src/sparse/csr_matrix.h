// Compressed-sparse-row item-catalog representation.
//
// Every solver in the repo scores against a dense row-major item matrix,
// but real recommender catalogs are often sparse or mixed (SINDI,
// arXiv:2509.08395; Bruch et al., arXiv:2309.09013).  CsrMatrix is the
// sparse half of that story: an immutable CSR view built either by
// exact-zero compression of a dense block or from coordinate triples,
// carrying the density statistics and per-row norms the hybrid splitter
// and the bench report on.
//
// Exactness contract: GemmEquivalentDot() scores a CSR row against a
// dense query with bit-for-bit the same result the blocked GEMM
// (linalg/gemm.h) produces for the corresponding dense row.  The dense
// kernel accumulates each score in K-panels of kGemmKPanel fma steps and
// folds panels into the output one at a time; skipping the zero-valued
// coordinates is an exact no-op in that chain (the accumulator starts at
// +0.0 and fma(v, 0, acc) / fma(0, q, acc) can never change it — a
// nonnegative-zero accumulator plus a signed-zero product rounds back to
// the accumulator under round-to-nearest-even), so walking only the
// stored entries in ascending-column order with the same per-panel fold
// reproduces the dense bits.  Precondition: finite inputs (a NaN or Inf
// coordinate multiplied by an elided zero would NOT be a no-op); the
// library's model generators and loaders only produce finite values.
//
// Thread safety: immutable after construction — build once, then read
// from any number of threads concurrently with no synchronization.

#ifndef MIPS_SPARSE_CSR_MATRIX_H_
#define MIPS_SPARSE_CSR_MATRIX_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/dcheck.h"
#include "common/status.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"

namespace mips {

/// One (row, col, value) coordinate of a sparse matrix.
struct SparseTriple {
  Index row = 0;
  Index col = 0;
  Real value = 0;
};

/// Immutable CSR matrix over the library's Real/Index types.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Exact-zero compression of a dense row-major block: every coordinate
  /// with value != 0.0 becomes a stored entry, columns ascending.
  static CsrMatrix FromDense(const ConstRowBlock& dense);

  /// FromDense restricted to the given rows: logical row r of the result
  /// is dense row `rows[r]`.  The hybrid splitter uses this to build the
  /// sparse partition without first gathering a dense copy.
  static CsrMatrix FromDenseRows(const ConstRowBlock& dense,
                                 std::span<const Index> rows);

  /// Builds from coordinate triples (any order).  InvalidArgument on
  /// negative dimensions, an out-of-range coordinate, or a duplicate
  /// (row, col) pair.  Exact-zero values are dropped (they compress
  /// away, exactly like FromDense elides them).
  static StatusOr<CsrMatrix> FromTriples(
      Index rows, Index cols, std::span<const SparseTriple> triples);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  /// nnz / (rows * cols); 0 for an empty shape.
  Real density() const {
    const double cells =
        static_cast<double>(rows_) * static_cast<double>(cols_);
    return cells > 0 ? static_cast<Real>(static_cast<double>(nnz()) / cells)
                     : Real{0};
  }

  Index RowNnz(Index row) const {
    MIPS_DCHECK_GE(row, 0);
    MIPS_DCHECK_LT(row, rows_);
    return static_cast<Index>(row_ptr_[static_cast<std::size_t>(row) + 1] -
                              row_ptr_[static_cast<std::size_t>(row)]);
  }
  std::span<const Index> RowCols(Index row) const {
    MIPS_DCHECK_GE(row, 0);
    MIPS_DCHECK_LT(row, rows_);
    const auto begin =
        static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(row)]);
    return {cols_idx_.data() + begin,
            static_cast<std::size_t>(RowNnz(row))};
  }
  std::span<const Real> RowValues(Index row) const {
    MIPS_DCHECK_GE(row, 0);
    MIPS_DCHECK_LT(row, rows_);
    const auto begin =
        static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(row)]);
    return {values_.data() + begin, static_cast<std::size_t>(RowNnz(row))};
  }

  /// Per-row L2 norms over the stored entries (equal to the dense row
  /// norms up to accumulation order), computed once at build through the
  /// dispatched level-1 kernels (linalg/blas.h).
  const std::vector<Real>& row_norms() const { return row_norms_; }

  /// Catalog-shape summary for attribution and the bench report.
  struct Stats {
    Index rows = 0;
    Index cols = 0;
    int64_t nnz = 0;
    Real density = 0;
    Index min_row_nnz = 0;
    Index max_row_nnz = 0;
    Real mean_row_nnz = 0;
  };
  Stats ComputeStats() const;

  /// Inner product of row `row` against the dense query q[0..cols()),
  /// bit-for-bit identical to the blocked GEMM's score for the
  /// corresponding dense row (see the file comment for why eliding the
  /// zero coordinates is exact).
  Real GemmEquivalentDot(Index row, const Real* q) const {
    const std::span<const Index> cs = RowCols(row);
    const std::span<const Real> vs = RowValues(row);
    Real total = 0;
    Real acc = 0;
    Index panel_end = kGemmKPanel;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const Index c = cs[i];
      while (c >= panel_end) {
        // Panel boundary: fold the finished panel's accumulator exactly
        // as the GEMM driver does (c += acc is the single rounding
        // fma(1, acc, c) performs at alpha = 1).
        total += acc;
        acc = 0;
        panel_end += kGemmKPanel;
      }
      acc = std::fma(vs[i], q[c], acc);
    }
    return total + acc;
  }

 private:
  /// Debug-only structural invariants: row_ptr_ monotone and spanning,
  /// columns strictly ascending within each row and in [0, cols_).
  void DcheckInvariants() const;

  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<int64_t> row_ptr_;  // size rows_ + 1
  std::vector<Index> cols_idx_;   // size nnz, ascending within each row
  std::vector<Real> values_;      // parallel to cols_idx_
  std::vector<Real> row_norms_;   // size rows_
};

}  // namespace mips

#endif  // MIPS_SPARSE_CSR_MATRIX_H_
