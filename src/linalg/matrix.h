// Dense row-major matrix with 64-byte-aligned storage.
//
// Every dataset in this library is a Matrix: users are |U| x f, items are
// |I| x f, score blocks are b x |I|.  Row-major layout means each user/item
// vector is contiguous, which is what the dot-product kernels, the GEMM
// packing routines, and the per-row top-K extraction all assume.

#ifndef MIPS_LINALG_MATRIX_H_
#define MIPS_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

#include "common/types.h"

namespace mips {

/// Owning dense row-major matrix of Real with cache-line-aligned storage.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(Index rows, Index cols) { Resize(rows, cols); }

  ~Matrix() { Free(); }

  Matrix(const Matrix& other) { CopyFrom(other); }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      Free();
      CopyFrom(other);
    }
    return *this;
  }

  Matrix(Matrix&& other) noexcept
      : data_(other.data_), rows_(other.rows_), cols_(other.cols_) {
    other.data_ = nullptr;
    other.rows_ = 0;
    other.cols_ = 0;
  }
  Matrix& operator=(Matrix&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      rows_ = other.rows_;
      cols_ = other.cols_;
      other.data_ = nullptr;
      other.rows_ = 0;
      other.cols_ = 0;
    }
    return *this;
  }

  /// Reallocates to rows x cols and zero-fills.  Invalidates row pointers.
  void Resize(Index rows, Index cols);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  /// Total element count as a 64-bit value (rows*cols can exceed 2^31).
  std::size_t size() const {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Real* data() { return data_; }
  const Real* data() const { return data_; }

  /// Pointer to the start of row r (contiguous, cols() elements).
  Real* Row(Index r) {
    assert(r >= 0 && r < rows_);
    return data_ + static_cast<std::size_t>(r) * cols_;
  }
  const Real* Row(Index r) const {
    assert(r >= 0 && r < rows_);
    return data_ + static_cast<std::size_t>(r) * cols_;
  }

  Real& operator()(Index r, Index c) {
    assert(c >= 0 && c < cols_);
    return Row(r)[c];
  }
  Real operator()(Index r, Index c) const {
    assert(c >= 0 && c < cols_);
    return Row(r)[c];
  }

  /// Sets every element to `value`.
  void Fill(Real value);

  /// Returns the transposed matrix (cols x rows).
  Matrix Transposed() const;

  /// Copies a contiguous row range [begin, end) into a new matrix.
  Matrix RowSlice(Index begin, Index end) const;

  /// Exact element-wise equality (used by tests on deterministic paths).
  bool operator==(const Matrix& other) const;

 private:
  void Free();
  void CopyFrom(const Matrix& other);

  Real* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
};

/// Non-owning read-only view of a contiguous row block of a Matrix.
/// Used to run solvers over user subsets (OPTIMUS samples, thread chunks)
/// without copying.
class ConstRowBlock {
 public:
  ConstRowBlock() = default;
  ConstRowBlock(const Matrix& m, Index begin, Index end)
      : data_(m.Row(begin)), rows_(end - begin), cols_(m.cols()) {
    assert(begin >= 0 && begin <= end && end <= m.rows());
  }
  /// View of an entire matrix.
  explicit ConstRowBlock(const Matrix& m)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}
  /// Raw view; `data` must point to rows*cols contiguous Reals.
  ConstRowBlock(const Real* data, Index rows, Index cols)
      : data_(data), rows_(rows), cols_(cols) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  const Real* data() const { return data_; }
  const Real* Row(Index r) const {
    assert(r >= 0 && r < rows_);
    return data_ + static_cast<std::size_t>(r) * cols_;
  }
  Real operator()(Index r, Index c) const {
    assert(c >= 0 && c < cols_);
    return Row(r)[c];
  }

 private:
  const Real* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
};

}  // namespace mips

#endif  // MIPS_LINALG_MATRIX_H_
