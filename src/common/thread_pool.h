// Fixed-size thread pool with a deterministic ParallelFor.
//
// The multi-core experiments in the paper (Figure 6) parallelize MIPS by
// statically partitioning the user set across cores ("a simple partitioning
// scheme across users proves to be an effective parallelization strategy").
// ParallelFor implements exactly that: the [0, n) range is split into
// `threads` contiguous chunks, one per worker, so work placement is
// reproducible and per-thread ranges can be reported for balance analysis.

#ifndef MIPS_COMMON_THREAD_POOL_H_
#define MIPS_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mips {

/// A minimal fixed-size worker pool.  Tasks are std::function<void()>;
/// Wait() blocks until every submitted task has finished.
///
/// Lifecycle contract (the guarantees the work-stealing refactor on the
/// ROADMAP must preserve, locked in by common_test's lifecycle suite):
///
///   * Destruction drains: every task submitted before ~ThreadPool runs
///     to completion before the destructor returns.
///   * Wait() is idempotent — calling it again (even immediately) just
///     re-checks the idle condition and returns.
///   * Submit() during shutdown is defined, not a race: once the
///     destructor has begun, a concurrent Submit runs the task inline on
///     the submitting thread instead of enqueueing it (the worker set is
///     retiring, so enqueueing could strand the task and hang a later
///     Wait).  Either way the task is executed exactly once.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker (inline on the caller
  /// once shutdown has begun; see the class comment).
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and all workers are idle.  Must not
  /// be called from inside a pool task (the task waiting on its own pool
  /// can never observe itself finished — deadlock).
  void Wait() EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_available_;
  CondVar all_idle_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  int in_flight_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
};

/// Contiguous half-open chunk of a parallel iteration space.
struct RangeChunk {
  int64_t begin = 0;
  int64_t end = 0;
};

/// Splits [0, n) into exactly `parts` near-equal contiguous chunks (the
/// first n % parts chunks are one element longer).  Chunks may be empty
/// when parts > n.
std::vector<RangeChunk> SplitRange(int64_t n, int parts);

/// Runs fn(begin, end, chunk_index) over a static partition of [0, n) using
/// `pool` (or inline when pool is null / has one thread).  Blocks until all
/// chunks complete.
template <typename Fn>
void ParallelFor(ThreadPool* pool, int64_t n, Fn&& fn) {
  const int parts = (pool == nullptr) ? 1 : pool->num_threads();
  const std::vector<RangeChunk> chunks = SplitRange(n, parts);
  if (parts <= 1) {
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      if (chunks[c].begin < chunks[c].end) {
        fn(chunks[c].begin, chunks[c].end, static_cast<int>(c));
      }
    }
    return;
  }
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (chunks[c].begin >= chunks[c].end) continue;
    const RangeChunk chunk = chunks[c];
    pool->Submit([&fn, chunk, c]() {
      fn(chunk.begin, chunk.end, static_cast<int>(c));
    });
  }
  pool->Wait();
}

}  // namespace mips

#endif  // MIPS_COMMON_THREAD_POOL_H_
