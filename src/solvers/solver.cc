#include "solvers/solver.h"

#include <cstring>
#include <numeric>

namespace mips {

Status MipsSolver::TopKAll(Index k, TopKResult* out) {
  std::vector<Index> ids(static_cast<std::size_t>(prepared_users_));
  std::iota(ids.begin(), ids.end(), 0);
  return TopKForUsers(k, ids, out);
}

Matrix GatherRows(const ConstRowBlock& users, std::span<const Index> ids) {
  Matrix out(static_cast<Index>(ids.size()), users.cols());
  for (std::size_t r = 0; r < ids.size(); ++r) {
    std::memcpy(out.Row(static_cast<Index>(r)), users.Row(ids[r]),
                static_cast<std::size_t>(users.cols()) * sizeof(Real));
  }
  return out;
}

}  // namespace mips
