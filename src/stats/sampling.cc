#include "stats/sampling.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace mips {

std::vector<Index> SampleWithoutReplacement(Index n, Index count, Rng* rng) {
  std::vector<Index> out;
  if (n <= 0 || count <= 0) return out;
  if (count >= n) {
    out.resize(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = i;
    return out;
  }
  // Floyd's algorithm: O(count) expected insertions, no O(n) scratch.
  std::unordered_set<Index> chosen;
  chosen.reserve(static_cast<std::size_t>(count) * 2);
  for (Index j = n - count; j < n; ++j) {
    const Index t = static_cast<Index>(
        rng->UniformInt(static_cast<uint64_t>(j) + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

Index MinVectorsToFillCache(Index f, std::size_t cache_bytes) {
  const std::size_t bytes_per_vector =
      static_cast<std::size_t>(std::max<Index>(1, f)) * sizeof(Real);
  const std::size_t vectors =
      (cache_bytes + bytes_per_vector - 1) / bytes_per_vector;
  return static_cast<Index>(std::max<std::size_t>(1, vectors));
}

Index OptimizerSampleSize(Index n, double ratio, Index f,
                          std::size_t cache_bytes) {
  const double by_ratio = std::ceil(ratio * static_cast<double>(n));
  const Index fill = MinVectorsToFillCache(f, cache_bytes);
  Index size = std::max<Index>(static_cast<Index>(by_ratio), fill);
  return std::min(size, n);
}

}  // namespace mips
