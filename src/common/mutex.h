// Annotated mutex / lock-guard / condition-variable wrappers.
//
// Thin zero-overhead shims over std::mutex / std::shared_mutex /
// std::condition_variable that carry Clang capability attributes
// (common/thread_annotations.h), so the thread-safety contract of every
// concurrent class in the library is checked at compile time on the
// clang CI leg.  Under GCC the attributes vanish and these classes
// compile to exactly the std types they wrap.
//
// Usage pattern (matches the std lock-guard idiom the codebase used
// before):
//
//   class Queue {
//    public:
//     void Push(Item item) EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       while (full_) not_full_.Wait(lock);   // explicit predicate loop
//       items_.push_back(std::move(item));
//     }
//    private:
//     Mutex mu_;
//     CondVar not_full_;
//     std::deque<Item> items_ GUARDED_BY(mu_);
//     bool full_ GUARDED_BY(mu_) = false;
//   };
//
// Condition predicates are written as explicit while-loops instead of
// the std::condition_variable predicate-lambda overloads: the analysis
// treats a lambda body as a separate function that does not inherit the
// caller's lock set, so a predicate lambda reading guarded state would
// need a per-lambda analysis suppression.  The explicit loop keeps the
// guarded reads inside the locked scope where the analysis can see them.

#ifndef MIPS_COMMON_MUTEX_H_
#define MIPS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#ifdef MIPS_ENABLE_DCHECKS
#include <atomic>
#include <thread>

#include "common/dcheck.h"
#endif

#include "common/thread_annotations.h"

namespace mips {

class CondVar;

/// std::mutex with the "mutex" capability attribute.
///
/// Under MIPS_ENABLE_DCHECKS the mutex additionally tracks its owning
/// thread, which makes AssertHeld() a real runtime check on the
/// sanitizer legs; release builds carry no extra state.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    SetOwner();
  }
  void Unlock() RELEASE() {
    ClearOwner();
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    if (acquired) SetOwner();
    return acquired;
  }

  /// Runtime counterpart of REQUIRES(this): aborts under
  /// MIPS_ENABLE_DCHECKS unless the calling thread holds this mutex, and
  /// is free otherwise.  To the analysis it asserts the capability, so a
  /// REQUIRES body can open with it and both contracts stay aligned.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef MIPS_ENABLE_DCHECKS
    MIPS_DCHECK(owner_.load(std::memory_order_relaxed) ==
                std::this_thread::get_id());
#endif
  }

 private:
  friend class MutexLock;
  friend class CondVar;

  // MutexLock and CondVar acquire/release through the raw std::mutex, so
  // they maintain the owner record via these hooks.
  void SetOwner() {
#ifdef MIPS_ENABLE_DCHECKS
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void ClearOwner() {
#ifdef MIPS_ENABLE_DCHECKS
    owner_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }

  std::mutex mu_;
#ifdef MIPS_ENABLE_DCHECKS
  std::atomic<std::thread::id> owner_{};
#endif
};

/// std::shared_mutex with the "shared_mutex" capability attribute.
/// Exclusive = writers (Lock/Unlock), shared = readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
#ifdef MIPS_ENABLE_DCHECKS
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void Unlock() RELEASE() {
#ifdef MIPS_ENABLE_DCHECKS
    owner_.store(std::thread::id(), std::memory_order_relaxed);
#endif
    mu_.unlock();
  }
  void LockShared() ACQUIRE_SHARED() {
    mu_.lock_shared();
#ifdef MIPS_ENABLE_DCHECKS
    readers_.fetch_add(1, std::memory_order_relaxed);
#endif
  }
  void UnlockShared() RELEASE_SHARED() {
#ifdef MIPS_ENABLE_DCHECKS
    readers_.fetch_sub(1, std::memory_order_relaxed);
#endif
    mu_.unlock_shared();
  }

  /// Runtime counterpart of REQUIRES(this) for the writer side; see
  /// Mutex::AssertHeld().
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef MIPS_ENABLE_DCHECKS
    MIPS_DCHECK(owner_.load(std::memory_order_relaxed) ==
                std::this_thread::get_id());
#endif
  }

  /// Runtime counterpart of REQUIRES_SHARED(this).  Necessarily weaker
  /// than AssertHeld: reader identity is not tracked per thread, so this
  /// checks that SOME reader (or this thread as writer) holds the lock.
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {
#ifdef MIPS_ENABLE_DCHECKS
    MIPS_DCHECK(readers_.load(std::memory_order_relaxed) > 0 ||
                owner_.load(std::memory_order_relaxed) ==
                    std::this_thread::get_id());
#endif
  }

 private:
  std::shared_mutex mu_;
#ifdef MIPS_ENABLE_DCHECKS
  std::atomic<std::thread::id> owner_{};
  std::atomic<int> readers_{0};
#endif
};

/// RAII exclusive lock on a Mutex (drop-in for std::unique_lock): locks
/// on construction, unlocks on destruction.  Lock()/Unlock() allow the
/// scoped manual-release idiom (executor loops that drop the lock around
/// a long computation); CondVar waits through the wrapped unique_lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), lock_(mu.mu_) {
    mu_.SetOwner();
  }
  ~MutexLock() RELEASE() {
    if (lock_.owns_lock()) mu_.ClearOwner();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Manual release/reacquire inside the scope.
  void Unlock() RELEASE() {
    // Guard like the destructor: on a double Unlock we must not erase
    // the owner record of whichever thread DOES hold the mutex before
    // unique_lock throws.
    if (lock_.owns_lock()) mu_.ClearOwner();
    lock_.unlock();
  }
  void Lock() ACQUIRE() {
    lock_.lock();
    mu_.SetOwner();
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// std::condition_variable bound to MutexLock.  Wait/WaitUntil atomically
/// release and reacquire the lock; from the analysis's point of view the
/// capability is held across the call, which is exactly the guarantee the
/// surrounding while-loop relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    lock.mu_.ClearOwner();  // the wait releases the mutex internally
    cv_.wait(lock.lock_);
    lock.mu_.SetOwner();
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    lock.mu_.ClearOwner();
    const std::cv_status status = cv_.wait_until(lock.lock_, deadline);
    lock.mu_.SetOwner();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mips

#endif  // MIPS_COMMON_MUTEX_H_
