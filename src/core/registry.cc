#include "core/registry.h"

namespace mips {

StatusOr<std::unique_ptr<MipsSolver>> CreateSolver(
    const std::string& name_or_spec) {
  return SolverRegistry::Global().Create(name_or_spec);
}

std::vector<std::string> AvailableSolvers() {
  return SolverRegistry::Global().Names();
}

}  // namespace mips
