#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/gemm.h"

namespace mips {
namespace {

// Squared Euclidean distance between two f-vectors.
Real SquaredDistance(const Real* a, const Real* b, Index f) {
  Real acc = 0;
  for (Index i = 0; i < f; ++i) {
    const Real d = a[i] - b[i];
    // mips-tidy: allow(float-accumulation): seeding geometry only; any
    // clustering yields exact results, rounding affects partition choice.
    acc += d * d;
  }
  return acc;
}

// k-means++ D^2 seeding: first center uniform, then each next center drawn
// with probability proportional to squared distance to the closest chosen
// center.
void PlusPlusInit(const ConstRowBlock& points, Index k, Rng* rng,
                  Matrix* centroids) {
  const Index n = points.rows();
  const Index f = points.cols();
  centroids->Resize(k, f);

  std::vector<Real> min_dist2(static_cast<std::size_t>(n),
                              std::numeric_limits<Real>::max());
  Index first = static_cast<Index>(rng->UniformInt(static_cast<uint64_t>(n)));
  std::copy_n(points.Row(first), f, centroids->Row(0));

  for (Index c = 1; c < k; ++c) {
    const Real* last = centroids->Row(c - 1);
    Real total = 0;
    for (Index i = 0; i < n; ++i) {
      const Real d2 = SquaredDistance(points.Row(i), last, f);
      auto& slot = min_dist2[static_cast<std::size_t>(i)];
      slot = std::min(slot, d2);
      // mips-tidy: allow(float-accumulation): D^2 seeding weight total.
      total += slot;
    }
    Index chosen = n - 1;
    if (total > 0) {
      Real target = static_cast<Real>(rng->Uniform()) * total;
      for (Index i = 0; i < n; ++i) {
        // mips-tidy: allow(float-accumulation): D^2 seeding roulette walk.
        target -= min_dist2[static_cast<std::size_t>(i)];
        if (target <= 0) {
          chosen = i;
          break;
        }
      }
    } else {
      // All points coincide with chosen centers; any point works.
      chosen = static_cast<Index>(rng->UniformInt(static_cast<uint64_t>(n)));
    }
    std::copy_n(points.Row(chosen), f, centroids->Row(c));
  }
}

void UniformInit(const ConstRowBlock& points, Index k, Rng* rng,
                 Matrix* centroids) {
  const Index n = points.rows();
  const Index f = points.cols();
  centroids->Resize(k, f);
  // Reservoir-free distinct draw: k <= n is guaranteed by the caller.
  std::vector<Index> perm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (Index i = 0; i < k; ++i) {
    const Index j = i + static_cast<Index>(rng->UniformInt(
                            static_cast<uint64_t>(n - i)));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
    std::copy_n(points.Row(perm[static_cast<std::size_t>(i)]), f,
                centroids->Row(i));
  }
}

}  // namespace

void AssignAllToNearest(const ConstRowBlock& points, const Matrix& centroids,
                        std::vector<Index>* assignment) {
  const Index n = points.rows();
  const Index k = centroids.rows();
  const Index f = points.cols();
  assignment->assign(static_cast<std::size_t>(n), 0);
  if (n == 0 || k == 0) return;

  // argmin_c ||u - c||^2 = argmin_c (||c||^2 - 2 u.c); ||u||^2 is constant
  // per row.  One GEMM gives all u.c products.
  std::vector<Real> c_norm2(static_cast<std::size_t>(k));
  for (Index c = 0; c < k; ++c) {
    c_norm2[static_cast<std::size_t>(c)] = Nrm2Squared(centroids.Row(c), f);
  }

  constexpr Index kBatch = 1024;
  Matrix scores;
  for (Index begin = 0; begin < n; begin += kBatch) {
    const Index b = std::min(kBatch, n - begin);
    GemmNT(ConstRowBlock(points.Row(begin), b, f), ConstRowBlock(centroids),
           &scores);
    for (Index r = 0; r < b; ++r) {
      const Real* srow = scores.Row(r);
      Index best = 0;
      Real best_val = c_norm2[0] - 2 * srow[0];
      for (Index c = 1; c < k; ++c) {
        const Real val = c_norm2[static_cast<std::size_t>(c)] - 2 * srow[c];
        if (val < best_val) {
          best_val = val;
          best = c;
        }
      }
      (*assignment)[static_cast<std::size_t>(begin + r)] = best;
    }
  }
}

Index AssignToNearest(const Real* point, const Matrix& centroids) {
  const Index k = centroids.rows();
  const Index f = centroids.cols();
  Index best = 0;
  Real best_d2 = std::numeric_limits<Real>::max();
  for (Index c = 0; c < k; ++c) {
    const Real d2 = SquaredDistance(point, centroids.Row(c), f);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

std::vector<std::vector<Index>> MembersFromAssignment(
    const std::vector<Index>& assignment, Index num_clusters) {
  std::vector<std::vector<Index>> members(
      static_cast<std::size_t>(num_clusters));
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    members[static_cast<std::size_t>(assignment[i])].push_back(
        static_cast<Index>(i));
  }
  return members;
}

Status KMeans(const ConstRowBlock& points, const KMeansOptions& options,
              Clustering* out) {
  const Index n = points.rows();
  const Index f = points.cols();
  if (n <= 0 || f <= 0) {
    return Status::InvalidArgument("k-means needs a non-empty point set");
  }
  if (options.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  const Index k = std::min<Index>(options.num_clusters, n);
  Rng rng(options.seed);

  if (options.plus_plus_init) {
    PlusPlusInit(points, k, &rng, &out->centroids);
  } else {
    UniformInit(points, k, &rng, &out->centroids);
  }

  out->iterations = 0;
  for (int iter = 0; iter < std::max(1, options.max_iterations); ++iter) {
    AssignAllToNearest(points, out->centroids, &out->assignment);

    // Update step: mean of members.
    std::vector<Index> counts(static_cast<std::size_t>(k), 0);
    out->centroids.Fill(0);
    for (Index i = 0; i < n; ++i) {
      const Index c = out->assignment[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(c)];
      Axpy(1.0, points.Row(i), out->centroids.Row(c), f);
    }
    for (Index c = 0; c < k; ++c) {
      const Index count = counts[static_cast<std::size_t>(c)];
      if (count > 0) {
        Scale(Real{1} / static_cast<Real>(count), out->centroids.Row(c), f);
      } else {
        // Empty cluster: reseed to the point farthest from its centroid so
        // the cluster captures the worst-approximated region.
        Index farthest = 0;
        Real far_d2 = -1;
        for (Index i = 0; i < n; ++i) {
          const Index a = out->assignment[static_cast<std::size_t>(i)];
          const Real d2 =
              SquaredDistance(points.Row(i), out->centroids.Row(a), f);
          if (d2 > far_d2) {
            far_d2 = d2;
            farthest = i;
          }
        }
        std::copy_n(points.Row(farthest), f, out->centroids.Row(c));
      }
    }
    ++out->iterations;
  }

  // Final assignment against the updated centroids, plus inertia.
  AssignAllToNearest(points, out->centroids, &out->assignment);
  out->inertia = 0;
  for (Index i = 0; i < n; ++i) {
    const Index c = out->assignment[static_cast<std::size_t>(i)];
    // mips-tidy: allow(float-accumulation): clustering quality diagnostic.
    out->inertia += SquaredDistance(points.Row(i), out->centroids.Row(c), f);
  }
  out->members = MembersFromAssignment(out->assignment, k);
  return Status::OK();
}

}  // namespace mips
