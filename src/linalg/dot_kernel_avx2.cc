// AVX2+FMA variant of the 8-lane dot kernel: lanes 0-3 and 4-7 live in
// two ymm accumulators.  Compiled with -mavx2 -mfma -mno-avx512f in its
// own TU (see linalg/CMakeLists.txt) so it stays a genuinely 256-bit code
// path; MIPS_GEMM_NO_AVX2 is defined at configure time when the compiler
// cannot target AVX2, in which case this TU forwards to the portable
// kernel (bit-identical by the dot_kernel.h contract).

#include "linalg/dot_kernel.h"

#if !defined(MIPS_GEMM_NO_AVX2)

#include <immintrin.h>

namespace mips {

Real DotKernelAvx2(const Real* x, const Real* y, Index n) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  const Index n8 = n - (n % 8);
  for (Index i = 0; i < n8; i += 8) {
    lo = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), lo);
    hi = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                         _mm256_loadu_pd(y + i + 4), hi);
  }
  alignas(64) Real lanes[8];
  _mm256_store_pd(lanes, lo);
  _mm256_store_pd(lanes + 4, hi);
  return internal::ReduceDotLanes(lanes, x, y, n8, n);
}

bool DotAvx2KernelCompiled() { return true; }

}  // namespace mips

#else  // MIPS_GEMM_NO_AVX2

namespace mips {

Real DotKernelAvx2(const Real* x, const Real* y, Index n) {
  return DotKernelPortable(x, y, n);
}

bool DotAvx2KernelCompiled() { return false; }

}  // namespace mips

#endif  // MIPS_GEMM_NO_AVX2
