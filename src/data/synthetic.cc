#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "linalg/blas.h"

namespace mips {
namespace {

// Fills `out[0..f)` with a uniformly random unit direction.
void RandomUnitVector(Index f, Rng* rng, Real* out) {
  Real norm2 = 0;
  do {
    for (Index i = 0; i < f; ++i) {
      out[i] = static_cast<Real>(rng->Normal());
    }
    norm2 = Nrm2Squared(out, f);
  } while (norm2 == 0);
  Scale(Real{1} / std::sqrt(norm2), out, f);
}

}  // namespace

StatusOr<MFModel> GenerateSyntheticModel(const SyntheticModelConfig& config) {
  if (config.num_users <= 0 || config.num_items <= 0 ||
      config.num_factors <= 0) {
    return Status::InvalidArgument("model dimensions must be positive");
  }
  if (config.user_modes <= 0) {
    return Status::InvalidArgument("user_modes must be positive");
  }
  if (!(config.item_density > 0 && config.item_density <= 1)) {
    return Status::InvalidArgument("item_density must be in (0, 1]");
  }
  if (!(config.dense_item_fraction >= 0 && config.dense_item_fraction <= 1)) {
    return Status::InvalidArgument("dense_item_fraction must be in [0, 1]");
  }

  const Index f = config.num_factors;
  Rng rng(config.seed);
  MFModel model;
  model.name = config.name;

  // --- Items: random direction scaled by a log-normal norm. ---
  model.items.Resize(config.num_items, f);
  for (Index i = 0; i < config.num_items; ++i) {
    Real* row = model.items.Row(i);
    RandomUnitVector(f, &rng, row);
    const Real norm = static_cast<Real>(
        rng.LogNormal(config.item_norm_mu, config.item_norm_sigma));
    Scale(norm, row, f);
  }

  // --- Users: mixture of direction modes with angular dispersion. ---
  Matrix modes(config.user_modes, f);
  for (Index m = 0; m < config.user_modes; ++m) {
    RandomUnitVector(f, &rng, modes.Row(m));
  }
  model.users.Resize(config.num_users, f);
  for (Index u = 0; u < config.num_users; ++u) {
    Real* row = model.users.Row(u);
    const Index m = static_cast<Index>(
        rng.UniformInt(static_cast<uint64_t>(config.user_modes)));
    const Real* mode = modes.Row(m);
    for (Index i = 0; i < f; ++i) {
      row[i] = mode[i] +
               config.user_dispersion * static_cast<Real>(rng.Normal());
    }
    const Real dir_norm = Nrm2(row, f);
    if (dir_norm > 0) Scale(Real{1} / dir_norm, row, f);
    const Real norm =
        static_cast<Real>(rng.LogNormal(0.0, config.user_norm_sigma));
    Scale(norm, row, f);
  }

  // --- Optional non-negativity (implicit-feedback / BPR-like factors). ---
  if (config.non_negative) {
    for (std::size_t i = 0; i < model.users.size(); ++i) {
      model.users.data()[i] = std::abs(model.users.data()[i]);
    }
    for (std::size_t i = 0; i < model.items.size(); ++i) {
      model.items.data()[i] = std::abs(model.items.data()[i]);
    }
  }

  // --- Optional item sparsification, LAST and on a derived stream: at
  // item_density = 1 the generated matrices stay bitwise identical to
  // what this generator produced before the knob existed. ---
  if (config.item_density < 1) {
    MIPS_RETURN_IF_ERROR(SparsifyRows(&model.items, config.item_density,
                                      config.dense_item_fraction,
                                      config.seed ^ 0x5eed5eedull));
  }
  return model;
}

Status SparsifyRows(Matrix* items, Real density, Real dense_fraction,
                    uint64_t seed) {
  if (!(density > 0 && density <= 1)) {
    return Status::InvalidArgument("density must be in (0, 1]");
  }
  if (!(dense_fraction >= 0 && dense_fraction <= 1)) {
    return Status::InvalidArgument("dense_fraction must be in [0, 1]");
  }
  if (density == 1) return Status::OK();

  const Index f = items->cols();
  const Index keep = std::max<Index>(
      1, static_cast<Index>(std::llround(density * static_cast<double>(f))));
  Rng rng(seed);
  std::vector<Index> perm(static_cast<std::size_t>(f));
  for (Index r = 0; r < items->rows(); ++r) {
    if (rng.Uniform() < dense_fraction) continue;  // head item: stays dense
    // Partial Fisher-Yates: the first `keep` entries of `perm` become a
    // uniform random subset — the surviving coordinates.
    for (Index i = 0; i < f; ++i) perm[static_cast<std::size_t>(i)] = i;
    for (Index i = 0; i < keep; ++i) {
      const Index j =
          i + static_cast<Index>(
                  rng.UniformInt(static_cast<uint64_t>(f - i)));
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
    std::sort(perm.begin(), perm.begin() + keep);
    Real* row = items->Row(r);
    Index next = 0;
    for (Index c = 0; c < f; ++c) {
      if (next < keep && perm[static_cast<std::size_t>(next)] == c) {
        ++next;
      } else {
        row[c] = 0;
      }
    }
  }
  return Status::OK();
}

VectorSetStats ComputeVectorSetStats(const ConstRowBlock& vectors) {
  VectorSetStats stats;
  const Index n = vectors.rows();
  if (n == 0) return stats;
  Real sum = 0;
  Real sum2 = 0;
  stats.min_norm = std::numeric_limits<Real>::max();
  for (Index r = 0; r < n; ++r) {
    const Real norm = Nrm2(vectors.Row(r), vectors.cols());
    stats.min_norm = std::min(stats.min_norm, norm);
    stats.max_norm = std::max(stats.max_norm, norm);
    // mips-tidy: allow(float-accumulation): dataset norm statistics.
    sum += norm;
    // mips-tidy: allow(float-accumulation): dataset norm statistics.
    sum2 += norm * norm;
  }
  stats.mean_norm = sum / static_cast<Real>(n);
  const Real var =
      std::max(Real{0}, sum2 / static_cast<Real>(n) -
                            stats.mean_norm * stats.mean_norm);
  stats.norm_cv =
      stats.mean_norm > 0 ? std::sqrt(var) / stats.mean_norm : Real{0};
  return stats;
}

}  // namespace mips
