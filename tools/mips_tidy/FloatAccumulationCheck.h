// mips-float-accumulation
//
// Rationale:
//
//   The library's exactness story ("bit-for-bit identical top-k across
//   kernels, shards, batches, and representations") works because every
//   score is produced by ONE reduction order: the dispatched kernels in
//   src/linalg/ (Dot, GemmNT) and the documented per-K-panel fold that
//   CsrMatrix::GemmEquivalentDot and the SINDI posting walks replicate.
//   A raw floating-point accumulation loop anywhere else introduces a
//   second association order; the compiler may vectorise it differently
//   per TU / per -march, and scores silently diverge between solvers —
//   the PR 4 edge-tile ulp bug class.
//
// What the check flags: a `+=` / `-=` whose left side has floating-point
// type, lexically inside a loop, plus any std::accumulate / std::reduce
// over floating-point values — outside the whitelisted kernel TUs
// (src/linalg/ by default) and whitelisted functions
// (CsrMatrix::GemmEquivalentDot).
//
// What it accepts without a suppression: accumulating the RESULTS of the
// dispatched kernels (`acc += Dot(...)`) — that is precisely "routing
// through the fixed-reduction kernels"; the segmentation of the outer
// fold is deterministic source structure, not compiler choice.
//
// Everything else needs an explicit, reasoned waiver:
//
//   // mips-tidy: allow(float-accumulation): <why this sum is not a score>
//
// Typical legitimate reasons: timing/statistics aggregation, conservative
// pruning bounds (any rounding merely makes pruning lazier or is already
// covered by slack), training-loop gradients, synthetic data generation.

#ifndef MIPS_TOOLS_MIPS_TIDY_FLOAT_ACCUMULATION_CHECK_H_
#define MIPS_TOOLS_MIPS_TIDY_FLOAT_ACCUMULATION_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::mips {

class FloatAccumulationCheck : public ClangTidyCheck {
 public:
  FloatAccumulationCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  bool isExemptLocation(const SourceManager &SM, SourceLocation Loc) const;
  bool isWhitelistedFunction(const ast_matchers::MatchFinder::MatchResult
                                 &Result,
                             const Stmt *S) const;

  /// TUs that ARE the fixed reduction order (the kernel directory).
  const std::string KernelPathPattern;
  llvm::Regex KernelPathRegex;
  /// Functions that replicate the documented per-K-panel fold.
  const std::string WhitelistedFunctions;  // semicolon-separated
  std::vector<std::string> WhitelistedFunctionList;
  /// Callees whose results may be accumulated (the dispatched kernels).
  const std::string AllowedCallees;  // semicolon-separated
  std::vector<std::string> AllowedCalleeList;
};

}  // namespace clang::tidy::mips

#endif  // MIPS_TOOLS_MIPS_TIDY_FLOAT_ACCUMULATION_CHECK_H_
