// Unit and property tests for src/linalg: Matrix, level-1 kernels, the
// blocked GEMM (vs. the naive reference across a shape sweep), the
// runtime SIMD dispatch layer (per-kernel differential suites, forced
// overrides, the probe), and the Jacobi symmetric eigen-decomposition.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/blas.h"
#include "linalg/dot_kernel.h"
#include "linalg/gemm.h"
#include "linalg/simd_dispatch.h"
#include "linalg/matrix.h"
#include "linalg/sym_eigen.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::RandomMatrix;

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(MatrixTest, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0);
}

TEST(MatrixTest, StorageIsAligned) {
  Matrix m(5, 7);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % 64, 0u);
}

TEST(MatrixTest, RowMajorIndexing) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 3;
  m(1, 1) = 5;
  EXPECT_EQ(m.Row(0)[0], 1);
  EXPECT_EQ(m.Row(0)[2], 3);
  EXPECT_EQ(m.Row(1)[1], 5);
  EXPECT_EQ(m.data()[3 * 1 + 1], 5);  // row 1 starts at offset cols
}

TEST(MatrixTest, CopySemantics) {
  Matrix a = RandomMatrix(4, 5, 1);
  Matrix b = a;
  EXPECT_TRUE(a == b);
  b(0, 0) += 1;
  EXPECT_FALSE(a == b);  // deep copy
}

TEST(MatrixTest, CopyAssignSelf) {
  Matrix a = RandomMatrix(3, 3, 2);
  const Matrix snapshot = a;
  a = *&a;
  EXPECT_TRUE(a == snapshot);
}

TEST(MatrixTest, MoveSemantics) {
  Matrix a = RandomMatrix(4, 5, 3);
  const Matrix snapshot = a;
  Matrix b = std::move(a);
  EXPECT_TRUE(b == snapshot);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(MatrixTest, FillSetsEveryElement) {
  Matrix m(3, 3);
  m.Fill(2.5);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 2.5);
}

TEST(MatrixTest, TransposedRoundTrip) {
  const Matrix a = RandomMatrix(37, 53, 4);
  const Matrix t = a.Transposed();
  ASSERT_EQ(t.rows(), 53);
  ASSERT_EQ(t.cols(), 37);
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index c = 0; c < a.cols(); ++c) EXPECT_EQ(a(r, c), t(c, r));
  }
  EXPECT_TRUE(t.Transposed() == a);
}

TEST(MatrixTest, RowSlice) {
  const Matrix a = RandomMatrix(10, 4, 5);
  const Matrix s = a.RowSlice(3, 7);
  ASSERT_EQ(s.rows(), 4);
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 4; ++c) EXPECT_EQ(s(r, c), a(r + 3, c));
  }
  EXPECT_EQ(a.RowSlice(2, 2).rows(), 0);
}

TEST(ConstRowBlockTest, ViewsMatrixRows) {
  const Matrix a = RandomMatrix(6, 3, 6);
  ConstRowBlock whole(a);
  EXPECT_EQ(whole.rows(), 6);
  EXPECT_EQ(whole.data(), a.data());
  ConstRowBlock part(a, 2, 5);
  EXPECT_EQ(part.rows(), 3);
  EXPECT_EQ(part(0, 1), a(2, 1));
  EXPECT_EQ(part(2, 2), a(4, 2));
}

// ------------------------------------------------------------- Level 1

TEST(BlasTest, DotMatchesNaive) {
  Rng rng(7);
  for (Index n : {0, 1, 2, 3, 4, 5, 7, 8, 16, 63, 100, 257}) {
    std::vector<Real> x(static_cast<std::size_t>(n));
    std::vector<Real> y(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = rng.Normal();
      y[static_cast<std::size_t>(i)] = rng.Normal();
    }
    EXPECT_NEAR(Dot(x.data(), y.data(), n), DotNaive(x.data(), y.data(), n),
                1e-10 * (1 + std::abs(DotNaive(x.data(), y.data(), n))));
  }
}

TEST(BlasTest, NormsAndScale) {
  std::vector<Real> x = {3, 4};
  EXPECT_DOUBLE_EQ(Nrm2(x.data(), 2), 5.0);
  EXPECT_DOUBLE_EQ(Nrm2Squared(x.data(), 2), 25.0);
  Scale(2.0, x.data(), 2);
  EXPECT_DOUBLE_EQ(x[0], 6.0);
  EXPECT_DOUBLE_EQ(Nrm2(x.data(), 2), 10.0);
}

TEST(BlasTest, Axpy) {
  std::vector<Real> x = {1, 2, 3};
  std::vector<Real> y = {10, 20, 30};
  Axpy(2.0, x.data(), y.data(), 3);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(BlasTest, RowNorms) {
  Matrix m(2, 2);
  m(0, 0) = 3;
  m(0, 1) = 4;
  m(1, 0) = 0;
  m(1, 1) = 2;
  Real norms[2];
  RowNorms(m.data(), 2, 2, norms);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 2.0);
}

TEST(BlasTest, CosineSimilarity) {
  std::vector<Real> x = {1, 0};
  std::vector<Real> y = {0, 1};
  std::vector<Real> z = {2, 0};
  std::vector<Real> zero = {0, 0};
  EXPECT_NEAR(CosineSimilarity(x.data(), y.data(), 2), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(x.data(), z.data(), 2), 1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity(x.data(), zero.data(), 2), 0.0);
}

TEST(BlasTest, CosineSimilarityClamped) {
  // Nearly parallel vectors can produce cos slightly above 1 in floating
  // point; the result must stay in [-1, 1].
  std::vector<Real> x = {1e150, 1e-150};
  const Real cos = CosineSimilarity(x.data(), x.data(), 2);
  EXPECT_LE(cos, 1.0);
  EXPECT_GE(cos, -1.0);
}

// ----------------------------------------------------------------- GEMM

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, BlockedMatchesReference) {
  const auto [m, n, k] = GetParam();
  const Matrix a = RandomMatrix(m, k, 17 + m);
  const Matrix b = RandomMatrix(n, k, 31 + n);
  Matrix c_blocked(m, n);
  Matrix c_ref(m, n);
  GemmNT(a.data(), m, b.data(), n, k, 1.0, 0.0, c_blocked.data(), n);
  GemmNaiveNT(a.data(), m, b.data(), n, k, 1.0, 0.0, c_ref.data(), n);
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    EXPECT_NEAR(c_blocked.data()[i], c_ref.data()[i],
                1e-9 * (1 + std::abs(c_ref.data()[i])))
        << "element " << i << " shape " << m << "x" << n << "x" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapeTest,
    ::testing::Values(
        // Tiny and degenerate-ish shapes.
        std::make_tuple(1, 1, 1), std::make_tuple(1, 17, 3),
        std::make_tuple(5, 1, 10), std::make_tuple(3, 3, 1),
        // Micro-kernel edges (MR=4, NR=16).
        std::make_tuple(4, 16, 8), std::make_tuple(5, 17, 8),
        std::make_tuple(3, 15, 7), std::make_tuple(8, 32, 16),
        // Cache-block edges (MC=64, KC=256, NC=4096).
        std::make_tuple(64, 64, 64), std::make_tuple(65, 63, 100),
        std::make_tuple(128, 100, 256), std::make_tuple(70, 130, 257),
        std::make_tuple(200, 300, 31),
        // Latent-factor-like shapes.
        std::make_tuple(100, 500, 50), std::make_tuple(37, 211, 10)));

// The threaded overload promises bit-for-bit identity with the serial
// kernel (each slab runs the same K-panel/micro-kernel order), so this
// differential sweep uses exact equality, not a tolerance.
TEST(GemmTest, ThreadedMatchesSerialBitForBit) {
  ThreadPool pool(4);
  for (const auto& [m, n, k] :
       std::vector<std::tuple<int, int, int>>{
           {1, 1, 1},       // degenerate
           {3, 2000, 64},   // wide N: column-slab partition
           {500, 7, 33},    // tall M: row-slab partition
           {129, 131, 70},  // both dims straddle tile edges
           {256, 512, 96},  // tile-aligned
           {2, 4096, 8}}) { // more column tiles than workers
    const Matrix a = RandomMatrix(m, k, 1000 + m);
    const Matrix b = RandomMatrix(n, k, 2000 + n);
    Matrix c_serial(m, n);
    Matrix c_threaded(m, n);
    GemmNT(a.data(), m, b.data(), n, k, 1.5, 0.0, c_serial.data(), n);
    GemmNT(a.data(), m, b.data(), n, k, 1.5, 0.0, c_threaded.data(), n,
           &pool);
    for (std::size_t i = 0; i < c_serial.size(); ++i) {
      ASSERT_EQ(c_serial.data()[i], c_threaded.data()[i])
          << "element " << i << " shape " << m << "x" << n << "x" << k;
    }
    // beta != 0 accumulation partitions identically.
    Matrix acc_serial = RandomMatrix(m, n, 77);
    Matrix acc_threaded = acc_serial;
    GemmNT(a.data(), m, b.data(), n, k, 1.0, 0.5, acc_serial.data(), n);
    GemmNT(a.data(), m, b.data(), n, k, 1.0, 0.5, acc_threaded.data(), n,
           &pool);
    for (std::size_t i = 0; i < acc_serial.size(); ++i) {
      ASSERT_EQ(acc_serial.data()[i], acc_threaded.data()[i])
          << "element " << i << " shape " << m << "x" << n << "x" << k;
    }
  }
}

TEST(GemmTest, AlphaBetaHandling) {
  const Matrix a = RandomMatrix(5, 3, 71);
  const Matrix b = RandomMatrix(4, 3, 72);
  Matrix c = RandomMatrix(5, 4, 73);
  Matrix expected = c;
  GemmNaiveNT(a.data(), 5, b.data(), 4, 3, 2.0, 0.5, expected.data(), 4);
  GemmNT(a.data(), 5, b.data(), 4, 3, 2.0, 0.5, c.data(), 4);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], expected.data()[i], 1e-9);
  }
}

TEST(GemmTest, BetaOneAccumulates) {
  const Matrix a = RandomMatrix(6, 5, 81);
  const Matrix b = RandomMatrix(7, 5, 82);
  Matrix c(6, 7);
  c.Fill(1.0);
  GemmNT(a.data(), 6, b.data(), 7, 5, 1.0, 1.0, c.data(), 7);
  Matrix ref(6, 7);
  GemmNaiveNT(a.data(), 6, b.data(), 7, 5, 1.0, 0.0, ref.data(), 7);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i] + 1.0, 1e-9);
  }
}

TEST(GemmTest, AlphaZeroOnlyScalesC) {
  const Matrix a = RandomMatrix(3, 4, 91);
  const Matrix b = RandomMatrix(2, 4, 92);
  Matrix c(3, 2);
  c.Fill(3.0);
  GemmNT(a.data(), 3, b.data(), 2, 4, 0.0, 2.0, c.data(), 2);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_DOUBLE_EQ(c.data()[i], 6.0);
}

TEST(GemmTest, LeadingDimensionLargerThanN) {
  const Matrix a = RandomMatrix(4, 3, 95);
  const Matrix b = RandomMatrix(5, 3, 96);
  Matrix c(4, 8);  // ldc = 8 > n = 5
  c.Fill(7.0);
  GemmNT(a.data(), 4, b.data(), 5, 3, 1.0, 0.0, c.data(), 8);
  Matrix ref(4, 5);
  GemmNaiveNT(a.data(), 4, b.data(), 5, 3, 1.0, 0.0, ref.data(), 5);
  for (Index r = 0; r < 4; ++r) {
    for (Index col = 0; col < 5; ++col) {
      EXPECT_NEAR(c(r, col), ref(r, col), 1e-9);
    }
    for (Index col = 5; col < 8; ++col) {
      EXPECT_DOUBLE_EQ(c(r, col), 7.0);  // padding untouched
    }
  }
}

TEST(GemmTest, MatrixOverloadResizesOutput) {
  const Matrix a = RandomMatrix(9, 6, 101);
  const Matrix b = RandomMatrix(11, 6, 102);
  Matrix c;
  GemmNT(ConstRowBlock(a), ConstRowBlock(b), &c);
  EXPECT_EQ(c.rows(), 9);
  EXPECT_EQ(c.cols(), 11);
  Matrix ref(9, 11);
  GemmNaiveNT(a.data(), 9, b.data(), 11, 6, 1.0, 0.0, ref.data(), 11);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-9);
  }
}

TEST(GemmTest, GemmNNMatchesManual) {
  const Matrix a = RandomMatrix(5, 4, 111);
  const Matrix bt = RandomMatrix(6, 4, 112);  // b = bt^T is 4 x 6
  const Matrix b = bt.Transposed();
  Matrix c(5, 6);
  GemmNN(a.data(), 5, b.data(), 6, 4, 1.0, 0.0, c.data(), 6);
  Matrix ref(5, 6);
  GemmNaiveNT(a.data(), 5, bt.data(), 6, 4, 1.0, 0.0, ref.data(), 6);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-9);
  }
}

TEST(GemmTest, GemvMatchesDots) {
  const Matrix a = RandomMatrix(7, 9, 121);
  const Matrix x = RandomMatrix(1, 9, 122);
  std::vector<Real> y(7);
  Gemv(a.data(), 7, 9, x.Row(0), y.data());
  for (Index r = 0; r < 7; ++r) {
    EXPECT_NEAR(y[static_cast<std::size_t>(r)], Dot(a.Row(r), x.Row(0), 9),
                1e-10);
  }
}

TEST(GemmTest, GemmDotMatchesReference) {
  const Matrix a = RandomMatrix(13, 21, 131);
  const Matrix b = RandomMatrix(17, 21, 132);
  Matrix c(13, 17);
  GemmDotNT(a.data(), 13, b.data(), 17, 21, c.data(), 17);
  Matrix ref(13, 17);
  GemmNaiveNT(a.data(), 13, b.data(), 17, 21, 1.0, 0.0, ref.data(), 17);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-9);
  }
}

// ------------------------------------------------- runtime SIMD dispatch

std::vector<GemmKernel> SupportedKernels() {
  std::vector<GemmKernel> kernels;
  for (int v = 0; v < kNumGemmKernels; ++v) {
    const GemmKernel kernel = static_cast<GemmKernel>(v);
    if (GemmKernelSupported(kernel)) kernels.push_back(kernel);
  }
  return kernels;
}

/// Restores auto dispatch after every forced-kernel test, so suites that
/// run later are not pinned to whatever kernel a test left installed.
class GemmKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetGemmKernelForTest(); }
};

TEST_F(GemmKernelTest, ParseAndNames) {
  EXPECT_STREQ(ToString(GemmKernel::kPortable), "portable");
  EXPECT_STREQ(ToString(GemmKernel::kAvx2), "avx2");
  EXPECT_STREQ(ToString(GemmKernel::kAvx512), "avx512");
  for (int v = 0; v < kNumGemmKernels; ++v) {
    const GemmKernel kernel = static_cast<GemmKernel>(v);
    auto parsed = ParseGemmKernel(ToString(kernel));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kernel);
  }
  EXPECT_FALSE(ParseGemmKernel("sse9").ok());
  EXPECT_FALSE(ParseGemmKernel("").ok());
  EXPECT_FALSE(ParseGemmKernel("AVX2").ok());  // names are lowercase
}

TEST_F(GemmKernelTest, DotBitForBitAcrossForcedKernels) {
  // The level-1 dot kernels share the GEMM dispatch and the same
  // bit-for-bit contract (linalg/dot_kernel.h): 8 independent lanes,
  // per-lane fma chains, fixed reduction tree.  Forcing any supported
  // kernel must leave every Dot() result EXACTLY unchanged, remainder
  // tails and empty inputs included.
  Rng rng(91);
  for (const Index n : {0, 1, 3, 7, 8, 9, 31, 64, 100, 257}) {
    std::vector<Real> x(static_cast<std::size_t>(n));
    std::vector<Real> y(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = rng.Normal();
      y[static_cast<std::size_t>(i)] = rng.Normal();
    }
    ASSERT_TRUE(ForceGemmKernel(GemmKernel::kPortable).ok());
    const Real want = Dot(x.data(), y.data(), n);
    // The variant entry points agree regardless of what is installed
    // (unsupported ISAs forward to the portable body).
    EXPECT_EQ(DotKernelPortable(x.data(), y.data(), n), want) << "n=" << n;
    EXPECT_EQ(DotKernelAvx2(x.data(), y.data(), n), want) << "n=" << n;
    EXPECT_EQ(DotKernelAvx512(x.data(), y.data(), n), want) << "n=" << n;
    for (int v = 0; v < kNumGemmKernels; ++v) {
      const GemmKernel kernel = static_cast<GemmKernel>(v);
      if (!GemmKernelSupported(kernel)) continue;
      ASSERT_TRUE(ForceGemmKernel(kernel).ok());
      EXPECT_EQ(Dot(x.data(), y.data(), n), want)
          << "n=" << n << " kernel=" << ToString(kernel);
    }
  }
}

TEST_F(GemmKernelTest, PortableAlwaysSupportedAndInstallable) {
  EXPECT_TRUE(GemmKernelSupported(GemmKernel::kPortable));
  ASSERT_TRUE(ForceGemmKernel(GemmKernel::kPortable).ok());
  EXPECT_EQ(ActiveGemmKernel(), GemmKernel::kPortable);
  EXPECT_EQ(ActiveGemmKernelSource(), GemmKernelSource::kForced);
}

TEST_F(GemmKernelTest, ForcedOverrideInstallsEverySupportedKernel) {
  for (int v = 0; v < kNumGemmKernels; ++v) {
    const GemmKernel kernel = static_cast<GemmKernel>(v);
    if (GemmKernelSupported(kernel)) {
      ASSERT_TRUE(ForceGemmKernel(kernel).ok()) << ToString(kernel);
      EXPECT_EQ(ActiveGemmKernel(), kernel);
      EXPECT_EQ(ActiveGemmKernelSource(), GemmKernelSource::kForced);
    } else {
      // Unsupported variants must be refused, not silently downgraded.
      const Status status = ForceGemmKernel(kernel);
      EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
          << ToString(kernel);
    }
  }
}

TEST_F(GemmKernelTest, ProbeMeasuresEverySupportedVariant) {
  const GemmKernelProbe probe = ProbeGemmKernels();
  bool fastest_seen = false;
  for (int v = 0; v < kNumGemmKernels; ++v) {
    const auto& variant = probe.variants[static_cast<std::size_t>(v)];
    EXPECT_EQ(variant.kernel, static_cast<GemmKernel>(v));
    EXPECT_EQ(variant.supported,
              GemmKernelSupported(static_cast<GemmKernel>(v)));
    if (variant.supported) {
      EXPECT_GT(variant.gflops, 0.0) << ToString(variant.kernel);
    } else {
      EXPECT_EQ(variant.gflops, 0.0) << ToString(variant.kernel);
    }
    if (variant.kernel == probe.fastest) fastest_seen = variant.supported;
  }
  EXPECT_TRUE(fastest_seen) << "probe picked an unsupported kernel";
}

TEST_F(GemmKernelTest, EnvOverrideInstallsRequestedKernel) {
  // The env override is read at install time, so resetting the dispatch
  // makes it testable in-process.  Forced installs must still win over
  // the env value.
  ResetGemmKernelForTest();
  ASSERT_EQ(setenv("MIPS_GEMM_KERNEL", "portable", /*overwrite=*/1), 0);
  EXPECT_EQ(ActiveGemmKernel(), GemmKernel::kPortable);
  EXPECT_EQ(ActiveGemmKernelSource(), GemmKernelSource::kEnv);

  ResetGemmKernelForTest();
  ASSERT_EQ(setenv("MIPS_GEMM_KERNEL", "not-a-kernel", 1), 0);
  const GemmKernel probed = ActiveGemmKernel();  // warns, falls back
  EXPECT_TRUE(GemmKernelSupported(probed));
  EXPECT_EQ(ActiveGemmKernelSource(), GemmKernelSource::kProbe);

  ASSERT_EQ(setenv("MIPS_GEMM_KERNEL", "portable", 1), 0);
  const auto kernels = SupportedKernels();
  ASSERT_TRUE(ForceGemmKernel(kernels.back()).ok());
  EXPECT_EQ(ActiveGemmKernel(), kernels.back());
  ASSERT_EQ(unsetenv("MIPS_GEMM_KERNEL"), 0);
}

// Every compiled-and-supported variant must produce BIT-FOR-BIT the
// portable kernel's results — not merely close ones.  All variants run
// the identical per-element IEEE fma sequence (gemm_kernel.h), so the
// differential is exact across NT / NN / threaded paths and edge tiles
// (m, n not multiples of MR=4 / NR=16, where the scratch-tile edge path
// must also ride the installed kernel).
TEST_F(GemmKernelTest, VariantsMatchPortableBitForBitNT) {
  const auto shapes = std::vector<std::tuple<int, int, int>>{
      {1, 1, 1},      {5, 17, 8},    {3, 15, 7},     {4, 16, 8},
      {129, 131, 70}, {64, 64, 64},  {100, 500, 50}, {2, 300, 257},
      {37, 211, 10},  {70, 130, 31},
  };
  for (const auto& [m, n, k] : shapes) {
    const Matrix a = RandomMatrix(m, k, 400 + m);
    const Matrix b = RandomMatrix(n, k, 500 + n);
    ASSERT_TRUE(ForceGemmKernel(GemmKernel::kPortable).ok());
    Matrix want(m, n);
    GemmNT(a.data(), m, b.data(), n, k, 1.25, 0.0, want.data(), n);
    for (const GemmKernel kernel : SupportedKernels()) {
      if (kernel == GemmKernel::kPortable) continue;
      ASSERT_TRUE(ForceGemmKernel(kernel).ok());
      Matrix got(m, n);
      GemmNT(a.data(), m, b.data(), n, k, 1.25, 0.0, got.data(), n);
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got.data()[i], want.data()[i])
            << ToString(kernel) << " element " << i << " shape " << m << "x"
            << n << "x" << k;
      }
    }
  }
}

TEST_F(GemmKernelTest, VariantsMatchPortableBitForBitNNAndThreaded) {
  ThreadPool pool(3);
  const auto shapes = std::vector<std::tuple<int, int, int>>{
      {5, 6, 4}, {129, 131, 70}, {3, 2000, 64}, {500, 7, 33}};
  for (const auto& [m, n, k] : shapes) {
    const Matrix a = RandomMatrix(m, k, 600 + m);
    const Matrix bt = RandomMatrix(n, k, 700 + n);  // NT operand
    const Matrix b = bt.Transposed();               // NN operand (k x n)
    ASSERT_TRUE(ForceGemmKernel(GemmKernel::kPortable).ok());
    Matrix want_nn(m, n);
    GemmNN(a.data(), m, b.data(), n, k, 1.0, 0.0, want_nn.data(), n);
    Matrix want_threaded(m, n);
    GemmNT(a.data(), m, bt.data(), n, k, 1.0, 0.0, want_threaded.data(), n,
           &pool);
    for (const GemmKernel kernel : SupportedKernels()) {
      if (kernel == GemmKernel::kPortable) continue;
      ASSERT_TRUE(ForceGemmKernel(kernel).ok());
      Matrix got_nn(m, n);
      GemmNN(a.data(), m, b.data(), n, k, 1.0, 0.0, got_nn.data(), n);
      Matrix got_threaded(m, n);
      GemmNT(a.data(), m, bt.data(), n, k, 1.0, 0.0, got_threaded.data(), n,
             &pool);
      for (std::size_t i = 0; i < want_nn.size(); ++i) {
        ASSERT_EQ(got_nn.data()[i], want_nn.data()[i])
            << "NN " << ToString(kernel) << " element " << i;
        ASSERT_EQ(got_threaded.data()[i], want_threaded.data()[i])
            << "threaded " << ToString(kernel) << " element " << i;
      }
    }
  }
}

// Full tiles and edge tiles must agree: a duplicated row landing at a
// tile-interior column and at the ragged fringe must receive identical
// scores (this is what keeps duplicate items exactly tied under any
// sharding — see sharded_test).
TEST_F(GemmKernelTest, EdgeTileMatchesFullTilePerElement) {
  const Index m = 4;
  const Index k = 50;
  const Index n = 19;  // columns 16..18 are the edge fringe
  const Matrix a = RandomMatrix(m, k, 901);
  Matrix b = RandomMatrix(n, k, 902);
  // Column 18 (edge) duplicates column 2 (full tile).
  for (Index kk = 0; kk < k; ++kk) b(18, kk) = b(2, kk);
  for (const GemmKernel kernel : SupportedKernels()) {
    ASSERT_TRUE(ForceGemmKernel(kernel).ok());
    Matrix c(m, n);
    GemmNT(a.data(), m, b.data(), n, k, 1.0, 0.0, c.data(), n);
    for (Index r = 0; r < m; ++r) {
      ASSERT_EQ(c(r, 18), c(r, 2)) << ToString(kernel) << " row " << r;
    }
  }
}

// ----------------------------------------------------------- Sym eigen

TEST(SymEigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1;
  a(1, 1) = 5;
  a(2, 2) = 3;
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &eig).ok());
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 5, 1e-12);
  EXPECT_NEAR(eig.values[1], 3, 1e-12);
  EXPECT_NEAR(eig.values[2], 1, 1e-12);
}

TEST(SymEigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &eig).ok());
  EXPECT_NEAR(eig.values[0], 3, 1e-12);
  EXPECT_NEAR(eig.values[1], 1, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::abs(eig.vectors(0, 1)), std::sqrt(0.5), 1e-10);
}

TEST(SymEigenTest, ReconstructsRandomSymmetric) {
  const Index n = 24;
  Matrix base = RandomMatrix(n, n, 141);
  Matrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) a(i, j) = base(i, j) + base(j, i);
  }
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &eig).ok());
  // A == V^T diag(values) V with rows of `vectors` the eigenvectors.
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      Real sum = 0;
      for (Index r = 0; r < n; ++r) {
        // mips-tidy: allow(float-accumulation): naive reconstruction
        // reference for the eigendecomposition, EXPECT_NEAR with 1e-8.
        sum += eig.values[static_cast<std::size_t>(r)] * eig.vectors(r, i) *
               eig.vectors(r, j);
      }
      EXPECT_NEAR(sum, a(i, j), 1e-8);
    }
  }
  // Eigenvalues descending.
  for (std::size_t r = 1; r < eig.values.size(); ++r) {
    EXPECT_GE(eig.values[r - 1], eig.values[r] - 1e-12);
  }
}

TEST(SymEigenTest, EigenvectorsOrthonormal) {
  const Index n = 16;
  Matrix base = RandomMatrix(n, n, 151);
  Matrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) a(i, j) = base(i, j) + base(j, i);
  }
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &eig).ok());
  for (Index r = 0; r < n; ++r) {
    for (Index s = 0; s < n; ++s) {
      const Real dot = Dot(eig.vectors.Row(r), eig.vectors.Row(s), n);
      EXPECT_NEAR(dot, r == s ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(SymEigenTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EigenDecomposition eig;
  EXPECT_EQ(JacobiEigenSymmetric(a, &eig).code(),
            StatusCode::kInvalidArgument);
}

TEST(SymEigenTest, RejectsNonSymmetric) {
  Matrix a(2, 2);
  a(0, 1) = 1;
  a(1, 0) = 2;
  EigenDecomposition eig;
  EXPECT_EQ(JacobiEigenSymmetric(a, &eig).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SymEigenTest, GramMatrixIsCorrect) {
  const Matrix p = RandomMatrix(40, 7, 161);
  const Matrix g = GramMatrix(ConstRowBlock(p));
  ASSERT_EQ(g.rows(), 7);
  ASSERT_EQ(g.cols(), 7);
  for (Index a = 0; a < 7; ++a) {
    for (Index b = 0; b < 7; ++b) {
      Real expected = 0;
      for (Index r = 0; r < 40; ++r) expected += p(r, a) * p(r, b);
      EXPECT_NEAR(g(a, b), expected, 1e-9);
    }
  }
}

TEST(SymEigenTest, GramEigenvaluesNonNegative) {
  const Matrix p = RandomMatrix(30, 8, 171);
  EigenDecomposition eig;
  ASSERT_TRUE(JacobiEigenSymmetric(GramMatrix(ConstRowBlock(p)), &eig).ok());
  for (Real v : eig.values) EXPECT_GE(v, -1e-8);
}

}  // namespace
}  // namespace mips
