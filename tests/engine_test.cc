// Tests for the MipsEngine facade: spec-driven opening, equivalence with
// a direct Optimus::Run, per-call k handling (re-decide and fallback),
// strategy override, the new-user path, and cumulative stats.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/maximus.h"
#include "core/optimus.h"
#include "linalg/blas.h"
#include "linalg/simd_dispatch.h"
#include "solvers/bmm.h"
#include "test_util.h"
#include "topk/topk_heap.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::MakeTestModel;

EngineOptions SmallEngineOptions(Index k = 5) {
  EngineOptions options;
  options.k = k;
  options.optimus.l2_cache_bytes = 16 * 1024;
  return options;
}

TEST(EngineOpenTest, ValidatesOptions) {
  const MFModel model = MakeTestModel(100, 50, 8, 1);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  EXPECT_FALSE(MipsEngine::Open(users, items, SmallEngineOptions(0)).ok());

  EngineOptions no_solvers = SmallEngineOptions();
  no_solvers.solvers.clear();
  EXPECT_FALSE(MipsEngine::Open(users, items, no_solvers).ok());

  EngineOptions unknown = SmallEngineOptions();
  unknown.solvers = {"bmm", "no-such-solver"};
  auto status = MipsEngine::Open(users, items, unknown);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.status().message().find("no-such-solver"),
            std::string::npos);

  // A malformed candidate spec surfaces the registry error naming the
  // offending key.
  EngineOptions bad_key = SmallEngineOptions();
  bad_key.solvers = {"bmm", "maximus:warp_speed=9"};
  auto bad = MipsEngine::Open(users, items, bad_key);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("warp_speed"), std::string::npos);
}

TEST(EngineTest, MatchesDirectOptimusRun) {
  // The integration requirement: MipsEngine must return results
  // identical to driving Optimus::Run by hand with the same candidates
  // and knobs.
  const MFModel model = MakeTestModel(300, 200, 10, 3, /*norm_sigma=*/0.6);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  auto engine = MipsEngine::Open(users, items, SmallEngineOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  TopKResult got;
  ASSERT_TRUE((*engine)->TopKAll(5, &got).ok());

  BmmSolver bmm;
  MaximusSolver maximus;
  OptimusOptions optimus_options;
  optimus_options.l2_cache_bytes = 16 * 1024;
  Optimus optimus(optimus_options);
  TopKResult expected;
  OptimusReport report;
  ASSERT_TRUE(
      optimus.Run(users, items, 5, {&bmm, &maximus}, &expected, &report)
          .ok());

  // The sample is seed-deterministic; the winner may legitimately vary
  // with timing noise, but exactness may not.
  EXPECT_EQ((*engine)->decision_report().sample_size, report.sample_size);
  ExpectSameTopKScores(got, expected, 1e-7);
}

TEST(EngineTest, PerCallKRedecidesAndStaysExact) {
  const MFModel model = MakeTestModel(250, 120, 8, 7);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  auto engine = MipsEngine::Open(users, items, SmallEngineOptions(5));
  ASSERT_TRUE(engine.ok());

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());

  // A diverging k triggers exactly one re-decision; repeats hit the
  // cache.
  const std::vector<Index> batch = {0, 17, 249, 3};
  for (int repeat = 0; repeat < 3; ++repeat) {
    TopKResult got;
    TopKResult expected;
    ASSERT_TRUE((*engine)->TopK(9, batch, &got).ok());
    ASSERT_TRUE(reference.TopKForUsers(9, batch, &expected).ok());
    ExpectSameTopKScores(got, expected, 1e-7);
  }
  EXPECT_EQ((*engine)->stats().redecisions, 1);
  EXPECT_GT((*engine)->stats().redecision_seconds, 0.0);

  // The decision k itself never re-decides.
  TopKResult at_decision_k;
  ASSERT_TRUE((*engine)->TopK(5, batch, &at_decision_k).ok());
  EXPECT_EQ((*engine)->stats().redecisions, 1);
}

TEST(EngineTest, PerCallKFallbackWhenRedecideDisabled) {
  const MFModel model = MakeTestModel(200, 90, 8, 9);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  EngineOptions options = SmallEngineOptions(5);
  options.redecide_on_new_k = false;
  auto engine = MipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok());

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  TopKResult got;
  TopKResult expected;
  const std::vector<Index> batch = {1, 2, 3};
  ASSERT_TRUE((*engine)->TopK(12, batch, &got).ok());
  ASSERT_TRUE(reference.TopKForUsers(12, batch, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
  EXPECT_EQ((*engine)->stats().redecisions, 0);
}

TEST(EngineTest, SingleCandidateSkipsDecision) {
  const MFModel model = MakeTestModel(120, 60, 6, 11);
  EngineOptions options = SmallEngineOptions();
  options.solvers = {"lemp:bucket_size=64"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->strategy(), "lemp");
  EXPECT_TRUE((*engine)->decision_report().estimates.empty());

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE((*engine)->TopKAll(5, &got).ok());
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
}

TEST(EngineTest, ForceStrategyOverridesDecision) {
  const MFModel model = MakeTestModel(150, 80, 8, 13);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  EngineOptions options = SmallEngineOptions();
  options.solvers = {"bmm", "maximus", "lemp"};
  auto engine = MipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok());

  EXPECT_FALSE((*engine)->ForceStrategy("fexipro-si").ok());

  ASSERT_TRUE((*engine)->ForceStrategy("lemp").ok());
  EXPECT_EQ((*engine)->strategy(), "lemp");
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE((*engine)->TopKAll(4, &got).ok());
  ASSERT_TRUE(reference.TopKAll(4, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);

  (*engine)->ClearForcedStrategy();
  EXPECT_EQ((*engine)->strategy(), (*engine)->decision_report().chosen);
}

TEST(EngineTest, TunedVariantsAreAddressableBySpec) {
  // Two tuned variants of the same solver share a name; the exact
  // opening spec must still select each.
  const MFModel model = MakeTestModel(150, 80, 8, 21);
  EngineOptions options = SmallEngineOptions();
  options.solvers = {"maximus:clusters=2", "maximus:clusters=8"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_EQ((*engine)->candidate_specs().size(), 2u);
  EXPECT_EQ((*engine)->candidate_names()[0], (*engine)->candidate_names()[1]);

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(4, &expected).ok());
  for (const char* spec : {"maximus:clusters=8", "maximus:clusters=2"}) {
    ASSERT_TRUE((*engine)->ForceStrategy(spec).ok()) << spec;
    TopKResult got;
    ASSERT_TRUE((*engine)->TopKAll(4, &got).ok());
    ExpectSameTopKScores(got, expected, 1e-7);
  }
}

TEST(EngineTest, NewUsersAreExactUnderEveryStrategy) {
  const MFModel model = MakeTestModel(400, 150, 8, 5, 0.5, 0.3);
  const MFModel extra = MakeTestModel(20, 150, 8, 6, 0.5, 1.2);
  for (const char* forced : {"bmm", "maximus", "dynamic-maximus"}) {
    EngineOptions options = SmallEngineOptions();
    options.solvers = {"bmm", "maximus", "dynamic-maximus"};
    auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items), options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->ForceStrategy(forced).ok());
    std::vector<TopKEntry> row(5);
    for (Index u = 0; u < 10; ++u) {
      ASSERT_TRUE(
          (*engine)->TopKNewUser(extra.users.Row(u), 5, row.data()).ok());
      TopKHeap heap(5);
      for (Index i = 0; i < 150; ++i) {
        heap.Push(i, Dot(extra.users.Row(u), model.items.Row(i), 8));
      }
      std::vector<TopKEntry> expected(5);
      heap.ExtractDescending(expected.data());
      for (Index e = 0; e < 5; ++e) {
        EXPECT_NEAR(row[static_cast<std::size_t>(e)].score,
                    expected[static_cast<std::size_t>(e)].score, 1e-7)
            << forced << " user " << u << " entry " << e;
      }
    }
    EXPECT_EQ((*engine)->stats().new_users_served, 10);
  }
}

TEST(EngineTest, ValidatesQueryArguments) {
  const MFModel model = MakeTestModel(50, 30, 4, 15);
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items),
                                 SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  TopKResult out;

  // Out-of-range user ids are rejected before any solver runs, naming the
  // offending id.
  const std::vector<Index> bad = {0, 50};
  auto status = (*engine)->TopK(5, bad, &out);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(status.message().find("50"), std::string::npos)
      << status.ToString();
  const std::vector<Index> negative = {-3, 1};
  status = (*engine)->TopK(5, negative, &out);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(status.message().find("-3"), std::string::npos)
      << status.ToString();

  // Non-positive k is rejected with the offending value.
  const std::vector<Index> ok = {0, 49};
  status = (*engine)->TopK(0, ok, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("0"), std::string::npos)
      << status.ToString();
  status = (*engine)->TopK(-7, ok, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("-7"), std::string::npos)
      << status.ToString();

  // The new-user path applies the same k validation plus a null check.
  std::vector<TopKEntry> row(5);
  status = (*engine)->TopKNewUser(model.users.Row(0), -2, row.data());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("-2"), std::string::npos)
      << status.ToString();
  EXPECT_EQ((*engine)->TopKNewUser(nullptr, 5, row.data()).code(),
            StatusCode::kInvalidArgument);

  // Failed validations must not pollute the serving counters.
  EXPECT_EQ((*engine)->stats().batches_served, 0);
  EXPECT_EQ((*engine)->stats().new_users_served, 0);
}

TEST(EngineTest, StatsAccumulate) {
  const MFModel model = MakeTestModel(100, 60, 6, 17);
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items),
                                 SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  TopKResult out;
  const std::vector<Index> batch = {0, 1, 2};
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  std::vector<TopKEntry> row(5);
  ASSERT_TRUE(
      (*engine)->TopKNewUser(model.users.Row(0), 5, row.data()).ok());
  EXPECT_EQ((*engine)->stats().batches_served, 2);
  EXPECT_EQ((*engine)->stats().users_served, 6);
  EXPECT_EQ((*engine)->stats().new_users_served, 1);
  EXPECT_GT((*engine)->stats().serve_seconds, 0.0);
}

TEST(EngineTest, DecisionCacheCountsHitsAndMisses) {
  const MFModel model = MakeTestModel(120, 60, 6, 25);
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items),
                                 SmallEngineOptions(5));
  ASSERT_TRUE(engine.ok());
  TopKResult out;
  const std::vector<Index> batch = {0, 1};

  // Opening k: pure hits.
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  EXPECT_EQ((*engine)->stats().decision_cache_hits, 2);
  EXPECT_EQ((*engine)->stats().decision_cache_misses, 0);
  EXPECT_EQ((*engine)->stats().decision_cache_size, 1);

  // New k: one miss + re-decision, then hits.
  ASSERT_TRUE((*engine)->TopK(9, batch, &out).ok());
  ASSERT_TRUE((*engine)->TopK(9, batch, &out).ok());
  EXPECT_EQ((*engine)->stats().decision_cache_misses, 1);
  EXPECT_EQ((*engine)->stats().decision_cache_hits, 3);
  EXPECT_EQ((*engine)->stats().decision_cache_size, 2);
  EXPECT_EQ((*engine)->stats().decision_cache_evictions, 0);

  // A forced strategy bypasses the cache entirely.
  ASSERT_TRUE((*engine)->ForceStrategy("bmm").ok());
  ASSERT_TRUE((*engine)->TopK(7, batch, &out).ok());
  EXPECT_EQ((*engine)->stats().decision_cache_misses, 1);
  EXPECT_EQ((*engine)->stats().decision_cache_hits, 3);
}

TEST(EngineTest, WarmBatchShapesPreDecideAtOpen) {
  const MFModel model = MakeTestModel(160, 80, 8, 31);
  EngineOptions options = SmallEngineOptions(5);
  options.batch_shape_decisions = true;
  options.warm_batch_shapes = {1, 64};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // A 48-row batch buckets to 64, which Open pre-decided: the first
  // query at that shape is a pure cache hit, no inline sampling.
  TopKResult out;
  std::vector<Index> batch;
  for (Index i = 0; i < 48; ++i) batch.push_back(i);
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  EXPECT_EQ((*engine)->stats().decision_cache_misses, 0);
  EXPECT_EQ((*engine)->stats().decision_cache_hits, 1);
  EXPECT_EQ((*engine)->stats().redecisions, 0);

  // Singletons were warmed too.
  ASSERT_TRUE((*engine)->TopK(5, {batch.data(), 1}, &out).ok());
  EXPECT_EQ((*engine)->stats().decision_cache_misses, 0);
  EXPECT_EQ((*engine)->stats().decision_cache_hits, 2);

  // An unwarmed shape still pays its decision inline, as before.
  ASSERT_TRUE((*engine)->TopK(5, {batch.data(), 8}, &out).ok());
  EXPECT_EQ((*engine)->stats().decision_cache_misses, 1);
}

TEST(EngineOpenTest, ValidatesWarmBatchShapes) {
  const MFModel model = MakeTestModel(100, 50, 8, 1);
  EngineOptions options = SmallEngineOptions();
  options.batch_shape_decisions = true;
  options.warm_batch_shapes = {16, 0};
  EXPECT_FALSE(MipsEngine::Open(ConstRowBlock(model.users),
                                ConstRowBlock(model.items), options)
                   .ok());
}

TEST(EngineTest, DecisionTtlExpiresCachedWinners) {
  // Every cached winner (the pinned opening k included) goes stale
  // between the sleep-separated queries, so the query after the sleep
  // re-runs the sampling decision and counts an expiration.  Sleeping
  // strictly longer than the TTL guarantees staleness; the TTL itself is
  // generous (250 ms) so the pre-sleep queries — including Open's own
  // decision and the first TopK — comfortably fit inside it even on a
  // loaded machine (the only soft timing assumption this test makes).
  const MFModel model = MakeTestModel(120, 60, 6, 29);
  EngineOptions options = SmallEngineOptions(5);
  options.solvers = {"bmm", "naive"};
  options.decision_ttl_seconds = 0.25;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  TopKResult out;
  const std::vector<Index> batch = {0, 1};
  // Well inside the TTL the opening decision serves as a plain hit.
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  MipsEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_expirations, 0);
  EXPECT_EQ(stats.redecisions, 0);

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_expirations, 1);
  EXPECT_EQ(stats.redecisions, 1);
  EXPECT_EQ(stats.decision_cache_size, 1);  // refreshed in place

  // The refreshed winner is fresh again: an immediate re-query hits.
  const int64_t hits_before = stats.decision_cache_hits;
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_expirations, 1);
  EXPECT_EQ(stats.decision_cache_hits, hits_before + 1);

  // Results stay exact across expirations.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKForUsers(5, batch, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-9);
}

TEST(EngineTest, KernelReinstallInvalidatesCachedDecisions) {
  // A mid-flight ForceGemmKernel re-install — even of the kernel that is
  // already active — means every cached winner was measured under a
  // throughput regime that no longer provably exists.  The engine must
  // drop them proactively (counted as invalidations, not TTL
  // expirations) and re-decide on the next query instead of serving a
  // possibly-wrong winner until a TTL runs out.
  const MFModel model = MakeTestModel(120, 60, 6, 41);
  EngineOptions options = SmallEngineOptions(5);
  options.solvers = {"bmm", "naive"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  TopKResult out;
  const std::vector<Index> batch = {0, 1};
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  MipsEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_invalidations, 0);
  EXPECT_EQ(stats.redecisions, 0);

  ASSERT_TRUE(ForceGemmKernel(ActiveGemmKernel()).ok());
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_invalidations, 1);
  EXPECT_EQ(stats.decision_cache_expirations, 0);
  EXPECT_EQ(stats.redecisions, 1);

  // The refreshed winner carries the new epoch: an immediate re-query
  // is a plain hit.
  const int64_t hits_before = stats.decision_cache_hits;
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_invalidations, 1);
  EXPECT_EQ(stats.decision_cache_hits, hits_before + 1);

  // Results stay exact across the invalidation.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKForUsers(5, batch, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-9);
  ResetGemmKernelForTest();
}

TEST(EngineTest, InvalidateDecisionsRetiresCachedWinners) {
  // The catalog-swap hook (catalog/live_catalog.h): an explicit
  // InvalidateDecisions() bumps the decision generation, so every cached
  // winner — measured against catalog statistics that no longer serve —
  // lazily expires on its next lookup exactly like a kernel re-install.
  const MFModel model = MakeTestModel(120, 60, 6, 43);
  EngineOptions options = SmallEngineOptions(5);
  options.solvers = {"bmm", "naive"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  TopKResult out;
  const std::vector<Index> batch = {0, 1};
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  ASSERT_TRUE((*engine)->TopK(7, batch, &out).ok());  // re-decision #1
  EXPECT_EQ((*engine)->stats().decision_cache_size, 2);
  EXPECT_EQ((*engine)->stats().redecisions, 1);

  // Returns the number of entries it marked stale (both cached ks).
  EXPECT_EQ((*engine)->InvalidateDecisions(), 2);
  MipsEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_invalidations, 0);  // lazy: none looked up

  // The next query at each k finds its winner stale, re-decides, and
  // caches a fresh one under the new generation.
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_invalidations, 1);
  EXPECT_EQ(stats.redecisions, 2);
  const int64_t hits_before = stats.decision_cache_hits;
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_invalidations, 1);
  EXPECT_EQ(stats.decision_cache_hits, hits_before + 1);

  // Results stay exact across the invalidation.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKForUsers(5, batch, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-9);
}

TEST(EngineTest, DecisionTtlIgnoredWhenRedecideImpossible) {
  // With re-deciding disabled (or a single candidate) there is nothing
  // to refresh a stale winner with, so the TTL must be inert: no
  // expirations, no redecisions, the opening winner serves forever.
  const MFModel model = MakeTestModel(100, 50, 6, 31);
  for (const bool single_candidate : {false, true}) {
    EngineOptions options = SmallEngineOptions(5);
    options.decision_ttl_seconds = 0.005;
    if (single_candidate) {
      options.solvers = {"bmm"};
    } else {
      options.solvers = {"bmm", "naive"};
      options.redecide_on_new_k = false;
    }
    auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items), options);
    ASSERT_TRUE(engine.ok());
    TopKResult out;
    const std::vector<Index> batch = {0, 1};
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
    const MipsEngine::Stats stats = (*engine)->stats();
    EXPECT_EQ(stats.decision_cache_expirations, 0);
    EXPECT_EQ(stats.redecisions, 0);
  }
}

TEST(EngineOpenTest, ValidatesTtlAndKernelOptions) {
  const MFModel model = MakeTestModel(60, 40, 6, 33);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  EngineOptions bad_ttl = SmallEngineOptions();
  bad_ttl.decision_ttl_seconds = -1;
  EXPECT_FALSE(MipsEngine::Open(users, items, bad_ttl).ok());

  EngineOptions bad_kernel = SmallEngineOptions();
  bad_kernel.gemm_kernel = "avx1024";
  EXPECT_FALSE(MipsEngine::Open(users, items, bad_kernel).ok());
}

TEST(EngineTest, GemmKernelSurfacedInStatsAndReport) {
  const MFModel model = MakeTestModel(100, 50, 6, 35);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  // Forced via EngineOptions: installed process-wide, recorded in both
  // the stats snapshot and the opening decision report.
  EngineOptions options = SmallEngineOptions();
  options.gemm_kernel = "portable";
  auto engine = MipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->stats().gemm_kernel, "portable");
  EXPECT_EQ((*engine)->decision_report().gemm_kernel, "portable");
  EXPECT_EQ(ActiveGemmKernel(), GemmKernel::kPortable);

  // Single-candidate engines skip the decision but still attribute it.
  EngineOptions single = SmallEngineOptions();
  single.solvers = {"bmm"};
  single.gemm_kernel = "portable";
  auto single_engine = MipsEngine::Open(users, items, single);
  ASSERT_TRUE(single_engine.ok());
  EXPECT_EQ((*single_engine)->decision_report().gemm_kernel, "portable");

  // "auto" records whatever the process-wide dispatch resolved to.
  ResetGemmKernelForTest();
  auto auto_engine = MipsEngine::Open(users, items, SmallEngineOptions());
  ASSERT_TRUE(auto_engine.ok());
  EXPECT_EQ((*auto_engine)->stats().gemm_kernel,
            ToString(ActiveGemmKernel()));
  ResetGemmKernelForTest();
}

TEST(EngineTest, DecisionCacheEvictsLeastRecentlyUsedK) {
  // Flood the engine with distinct ks: the per-k winner cache must stay
  // within decision_cache_capacity, evicting LRU entries (never the
  // pinned opening k), and an evicted k must re-decide when it returns.
  const MFModel model = MakeTestModel(100, 50, 6, 27);
  EngineOptions options = SmallEngineOptions(5);
  options.solvers = {"bmm", "naive"};
  options.decision_cache_capacity = 4;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  TopKResult out;
  const std::vector<Index> batch = {0, 1, 2};
  for (Index k = 1; k <= 12; ++k) {
    if (k == 5) continue;  // the opening k is already cached
    ASSERT_TRUE((*engine)->TopK(k, batch, &out).ok());
  }
  MipsEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.decision_cache_misses, 11);
  EXPECT_EQ(stats.redecisions, 11);
  EXPECT_LE(stats.decision_cache_size, 4);
  // 1 pinned + 11 inserted - 4 kept = 8 dropped.
  EXPECT_EQ(stats.decision_cache_evictions, 8);

  // The pinned opening k never re-decides, no matter how much was
  // evicted around it.
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  EXPECT_EQ((*engine)->stats().redecisions, 11);

  // An evicted k (k=1 is long gone) pays a fresh re-decision; a resident
  // one (k=12, just used) does not.
  ASSERT_TRUE((*engine)->TopK(12, batch, &out).ok());
  EXPECT_EQ((*engine)->stats().redecisions, 11);
  ASSERT_TRUE((*engine)->TopK(1, batch, &out).ok());
  EXPECT_EQ((*engine)->stats().redecisions, 12);

  // Every answer stayed exact throughout the churn.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE((*engine)->TopK(8, batch, &out).ok());
  ASSERT_TRUE(reference.TopKForUsers(8, batch, &expected).ok());
  ExpectSameTopKScores(out, expected, 1e-7);
}

// ----------------------------------------------------------- concurrency
//
// These suites exercise the thread-safety contract: many simultaneous
// TopK callers with mixed k values (forcing concurrent per-k
// re-decisions through the shared-mutex cache) plus concurrent stats()
// and strategy() readers, with every answer checked against a serial
// reference.  Mismatches are counted in atomics and asserted after the
// join so no gtest machinery runs on worker threads.

struct ConcurrentHarnessResult {
  std::atomic<int64_t> status_failures{0};
  std::atomic<int64_t> score_mismatches{0};
};

// Hammers `engine` from `num_threads` client threads with mini-batches at
// rotating k values, comparing scores against `references[k]`.
void HammerEngine(MipsEngine* engine, const std::vector<Index>& ks,
                  const std::map<Index, TopKResult>& references,
                  int num_threads, int iterations, Index num_users,
                  ConcurrentHarnessResult* result) {
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    clients.emplace_back([&, t]() {
      for (int i = 0; i < iterations; ++i) {
        const Index k =
            ks[static_cast<std::size_t>(t + i) % ks.size()];
        // Deterministic per-(thread, iteration) mini-batch.
        std::vector<Index> batch;
        for (Index u = 0; u < 7; ++u) {
          batch.push_back((static_cast<Index>(t) * 31 +
                           static_cast<Index>(i) * 13 + u * 17) %
                          num_users);
        }
        TopKResult got;
        if (!engine->TopK(k, batch, &got).ok()) {
          result->status_failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const TopKResult& expected = references.at(k);
        for (std::size_t r = 0; r < batch.size(); ++r) {
          for (Index e = 0; e < k; ++e) {
            const Real got_score = got.Row(static_cast<Index>(r))[e].score;
            const Real want_score = expected.Row(batch[r])[e].score;
            if (std::abs(got_score - want_score) > 1e-7) {
              result->score_mismatches.fetch_add(1,
                                                 std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  // Concurrent metadata readers: stats() snapshots and strategy() lookups
  // must never tear or throw while the clients run.
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    int64_t last_users = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const MipsEngine::Stats snapshot = engine->stats();
      if (snapshot.users_served < last_users) {
        result->status_failures.fetch_add(1, std::memory_order_relaxed);
      }
      last_users = snapshot.users_served;
      (void)engine->strategy();
    }
  });
  for (auto& c : clients) c.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

class ConcurrentTopK : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentTopK, MixedKMatchesSerialReference) {
  const int engine_threads = GetParam();
  const Index num_users = 300;
  const MFModel model = MakeTestModel(num_users, 150, 8, 23,
                                      /*norm_sigma=*/0.6);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  EngineOptions options = SmallEngineOptions(5);
  options.threads = engine_threads;  // engine pool shared by all callers
  // Three candidate families so concurrent re-decisions measure a
  // batching index AND the point-query LEMP path (lazy per-k calibration)
  // while query traffic is in flight.
  options.solvers = {"bmm", "maximus", "lemp"};
  auto engine = MipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Serial ground truth per k, computed before any concurrent traffic.
  const std::vector<Index> ks = {3, 5, 9, 12};
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  std::map<Index, TopKResult> references;
  for (const Index k : ks) {
    ASSERT_TRUE(reference.TopKAll(k, &references[k]).ok());
  }

  ConcurrentHarnessResult result;
  HammerEngine(engine->get(), ks, references, /*num_threads=*/8,
               /*iterations=*/24, num_users, &result);
  EXPECT_EQ(result.status_failures.load(), 0);
  EXPECT_EQ(result.score_mismatches.load(), 0);

  // 8 threads x 24 iterations x 7 users, every batch served.
  EXPECT_EQ((*engine)->stats().batches_served, 8 * 24);
  EXPECT_EQ((*engine)->stats().users_served, 8 * 24 * 7);
  // The decision cache serializes re-decisions under the exclusive lock:
  // exactly one per k that diverges from the opening k, no matter how
  // many threads raced to trigger it.
  EXPECT_EQ((*engine)->stats().redecisions,
            static_cast<int64_t>(ks.size()) - 1);
}

INSTANTIATE_TEST_SUITE_P(EnginePoolSizes, ConcurrentTopK,
                         ::testing::Values(0, 2));

TEST(ConcurrentTopKTest, ForcedStrategyFlipsStayExact) {
  // ForceStrategy/ClearForcedStrategy race against traffic: every answer
  // must still be exact regardless of which strategy served it.
  const Index num_users = 200;
  const MFModel model = MakeTestModel(num_users, 100, 8, 29);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  auto engine = MipsEngine::Open(users, items, SmallEngineOptions(4));
  ASSERT_TRUE(engine.ok());

  const std::vector<Index> ks = {4};
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  std::map<Index, TopKResult> references;
  ASSERT_TRUE(reference.TopKAll(4, &references[4]).ok());

  std::atomic<bool> stop{false};
  std::thread flipper([&]() {
    int flips = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (flips % 2 == 0) {
        (void)(*engine)->ForceStrategy("maximus");
      } else {
        (*engine)->ClearForcedStrategy();
      }
      ++flips;
    }
  });
  ConcurrentHarnessResult result;
  HammerEngine(engine->get(), ks, references, /*num_threads=*/4,
               /*iterations=*/16, num_users, &result);
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  EXPECT_EQ(result.status_failures.load(), 0);
  EXPECT_EQ(result.score_mismatches.load(), 0);
}

TEST(EngineTest, ThreadedEngineStaysExact) {
  const MFModel model = MakeTestModel(300, 150, 8, 19);
  EngineOptions options = SmallEngineOptions();
  options.threads = 3;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok());
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE((*engine)->TopKAll(5, &got).ok());
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
}

}  // namespace
}  // namespace mips
