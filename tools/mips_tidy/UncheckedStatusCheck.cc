#include "UncheckedStatusCheck.h"

#include "MipsTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mips {

void UncheckedStatusCheck::registerMatchers(MatchFinder *Finder) {
  // Functions returning Status or any StatusOr<T> specialisation BY
  // VALUE.  Reference-returning accessors (StatusOr::status()) carry no
  // ownership of the error and are not flagged.
  const auto ReturnsStatus = returns(hasCanonicalType(hasDeclaration(
      namedDecl(hasAnyName("::mips::Status", "::mips::StatusOr")))));
  const auto FallibleCall =
      callExpr(callee(functionDecl(ReturnsStatus))).bind("call");
  // `ignoringImplicit` strips the ExprWithCleanups / CXXBindTemporaryExpr
  // shells around a discarded prvalue of class type, but NOT an explicit
  // `(void)` cast — so `(void)DoThing();` stays a legal, visible discard.
  const auto DiscardedCall = expr(ignoringImplicit(FallibleCall));
  // A discarded expression is either the call itself, or a comma
  // operator whose RHS is the call: in `Foo(), Bar();` the value of
  // Bar() — the comma's result — is what gets discarded.  (The comma's
  // LHS is always discarded regardless of position; the dedicated
  // matcher below handles it everywhere.)
  const auto Discarded = expr(anyOf(
      DiscardedCall,
      ignoringImplicit(binaryOperator(hasOperatorName(","),
                                      hasRHS(DiscardedCall)))));

  Finder->addMatcher(compoundStmt(forEach(Discarded)), this);
  Finder->addMatcher(
      ifStmt(eachOf(hasThen(Discarded), hasElse(Discarded))), this);
  Finder->addMatcher(whileStmt(hasBody(Discarded)), this);
  Finder->addMatcher(doStmt(hasBody(Discarded)), this);
  Finder->addMatcher(forStmt(eachOf(hasLoopInit(Discarded),
                                    hasIncrement(Discarded),
                                    hasBody(Discarded))),
                     this);
  Finder->addMatcher(cxxForRangeStmt(hasBody(Discarded)), this);
  Finder->addMatcher(switchCase(forEach(Discarded)), this);
  // A comma's LHS is discarded wherever the comma sits; `Discarded`
  // (not just DiscardedCall) also reaches the middle of a nested chain
  // like `A(), B(), C();`, whose left comma is the outer comma's LHS.
  Finder->addMatcher(
      binaryOperator(hasOperatorName(","), hasLHS(Discarded)), this);
}

void UncheckedStatusCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (Call == nullptr) return;
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = SM.getExpansionLoc(Call->getBeginLoc());
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc)) return;
  if (HasAllowComment(SM, Loc, "unchecked-status")) return;

  // The matcher requires a functionDecl callee, so this cannot be null.
  const FunctionDecl *Callee = Call->getDirectCallee();
  if (Callee == nullptr) return;
  diag(Loc,
       "result of %0 (a Status/StatusOr) is discarded — the error channel "
       "is lost; handle it, propagate with MIPS_RETURN_IF_ERROR, assert "
       "with CheckOK(), or discard visibly with a (void) cast")
      << Callee;
}

}  // namespace clang::tidy::mips
