// Figure 6: multi-core scaling of BMM, MAXIMUS, and LEMP (K = 1).
//
// The paper partitions users across cores and observes near-linear
// speedups for all three methods.  We reproduce the same partitioning
// with the library thread pool across T in {1, 2, 4, 8, 16} software
// threads.  NOTE: on a host with fewer physical cores than T the measured
// wall-clock speedup saturates at the core count (this machine may have a
// single core — see DESIGN.md substitution #3), so the bench also reports
// the per-thread work balance of the static user partition, which is the
// property that determines scaling on real multi-core hardware.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/thread_pool.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);

  auto preset = FindModelPreset("netflix-nomad-50");
  preset.status().CheckOK();
  const MFModel model = MakeBenchModel(*preset, config);

  std::printf("== Figure 6: multi-core scaling, K=1, %s (%d users) ==\n",
              preset->display_name.c_str(), model.num_users());
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  TablePrinter table({"Method", "Threads", "Time", "Speedup vs 1T",
                      "Partition balance"});
  for (const char* name : {"bmm", "maximus", "lemp"}) {
    double base = 0;
    for (const int threads : {1, 2, 4, 8, 16}) {
      auto solver = MakeSolver(name);
      ThreadPool pool(threads);
      if (threads > 1) solver->set_thread_pool(&pool);
      const double t = TimeEndToEnd(solver.get(), model, /*k=*/1).total();
      if (threads == 1) base = t;
      // Balance of the static user partition: min/max chunk size.
      const auto chunks = SplitRange(model.num_users(), threads);
      int64_t lo = model.num_users();
      int64_t hi = 0;
      for (const auto& c : chunks) {
        lo = std::min(lo, c.end - c.begin);
        hi = std::max(hi, c.end - c.begin);
      }
      table.AddRow({name, FmtInt(threads), FormatSeconds(t),
                    Fmt(base / t, 2) + "x",
                    Fmt(hi > 0 ? static_cast<double>(lo) / hi : 1.0, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: near-linear speedup 1 -> 16 cores for BMM, MAXIMUS "
      "and LEMP (read-only indexes + user partitioning).  On a 1-core "
      "host expect speedup ~1x with balance ~1.0: the partition is even, "
      "the hardware is the limit.\n");
  return 0;
}
