// Figure 5: the full evaluation grid.
//
// End-to-end wall-clock time of all five methods (Blocked MM, MAXIMUS,
// LEMP, FEXIPRO-SIR, FEXIPRO-SI) on all 23 reference models for
// K in {1, 5, 10, 50} — 92 model/top-K combinations, 460 runs.  Also
// prints the paper's headline aggregates: who is fastest on how many
// combinations, and the average speedups of MAXIMUS over the baselines.
//
// Use --models=<substring> and --k=<list> to run a slice; --scale to grow
// or shrink every instance.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "stats/welford.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);
  const std::vector<Index> ks = ParseKList(config.ks);
  const std::vector<std::string> methods = {"bmm", "maximus", "lemp",
                                            "fexipro-sir", "fexipro-si"};

  std::printf("== Figure 5: end-to-end MIPS wall-clock time, all models x "
              "K in {%s} ==\n\n", config.ks.c_str());
  TablePrinter table({"Model", "K", "Blocked MM", "MAXIMUS", "LEMP",
                      "FEXIPRO-SIR", "FEXIPRO-SI", "fastest"});

  std::map<std::string, int> wins;            // three-way, as in the paper
  Welford maximus_vs_lemp;
  Welford maximus_vs_fexipro_si;
  Welford maximus_vs_bmm;
  int bmm_faster_than_maximus = 0;
  int combos = 0;
  double max_speedup_vs_lemp = 0;

  for (const auto& preset : SelectPresets(config)) {
    const MFModel model = MakeBenchModel(preset, config);
    for (const Index k : ks) {
      std::map<std::string, double> times;
      for (const auto& name : methods) {
        auto solver = MakeSolver(name);
        times[name] = TimeEndToEnd(solver.get(), model, k).total();
      }
      // Paper aggregates consider BMM / MAXIMUS / LEMP for "fastest".
      std::string fastest = "bmm";
      for (const char* candidate : {"maximus", "lemp"}) {
        if (times[candidate] < times[fastest]) fastest = candidate;
      }
      ++wins[fastest];
      ++combos;
      maximus_vs_lemp.Add(times["lemp"] / times["maximus"]);
      maximus_vs_fexipro_si.Add(times["fexipro-si"] / times["maximus"]);
      maximus_vs_bmm.Add(times["bmm"] / times["maximus"]);
      max_speedup_vs_lemp =
          std::max(max_speedup_vs_lemp, times["lemp"] / times["maximus"]);
      if (times["bmm"] < times["maximus"]) ++bmm_faster_than_maximus;

      table.AddRow({preset.id, FmtInt(k), FormatSeconds(times["bmm"]),
                    FormatSeconds(times["maximus"]),
                    FormatSeconds(times["lemp"]),
                    FormatSeconds(times["fexipro-sir"]),
                    FormatSeconds(times["fexipro-si"]), fastest});
    }
  }
  table.Print();

  std::printf("\n== Aggregates over %d model/top-K combinations ==\n",
              combos);
  std::printf("fastest counts (BMM / MAXIMUS / LEMP): %d / %d / %d\n",
              wins["bmm"], wins["maximus"], wins["lemp"]);
  std::printf("MAXIMUS speedup vs LEMP:        avg %.2fx, max %.1fx\n",
              maximus_vs_lemp.mean(), max_speedup_vs_lemp);
  std::printf("MAXIMUS speedup vs FEXIPRO-SI:  avg %.2fx\n",
              maximus_vs_fexipro_si.mean());
  std::printf("MAXIMUS speedup vs BMM:         avg %.2fx; BMM faster on "
              "%.1f%% of combos\n",
              maximus_vs_bmm.mean(),
              100.0 * bmm_faster_than_maximus / std::max(1, combos));
  std::printf(
      "\nPaper shape: no single winner (paper: BMM fastest on 53/92, "
      "MAXIMUS 28/92, LEMP 11/92); MAXIMUS avg 1.8x over LEMP (up to "
      "10.6x), >10x over FEXIPRO, 2.7x over BMM on average but BMM faster "
      "on 34.8%% of combos.\n");
  return 0;
}
