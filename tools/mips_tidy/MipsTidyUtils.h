// Shared helpers for the mips-* clang-tidy checks.
//
// The one piece of policy that lives here is the suppression syntax:
//
//   // mips-tidy: allow(<check-tag>): <reason>
//
// placed on the flagged line or the line directly above it.  Unlike a
// bare NOLINT, the tag names the specific contract being waived and the
// grammar demands a reason after the colon, so a suppression reads as a
// reviewed decision, not a silencing.  (NOLINT still works — clang-tidy
// honours it before the check runs — but the repo convention is the
// tagged form; see README "Correctness tooling".)

#ifndef MIPS_TOOLS_MIPS_TIDY_MIPS_TIDY_UTILS_H_
#define MIPS_TOOLS_MIPS_TIDY_MIPS_TIDY_UTILS_H_

#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::mips {

/// Returns the text of the line containing `Offset` in `Buffer`.
inline llvm::StringRef LineContaining(llvm::StringRef Buffer, size_t Offset) {
  if (Offset >= Buffer.size()) return llvm::StringRef();
  size_t Begin = Buffer.rfind('\n', Offset);
  Begin = (Begin == llvm::StringRef::npos) ? 0 : Begin + 1;
  size_t End = Buffer.find('\n', Offset);
  if (End == llvm::StringRef::npos) End = Buffer.size();
  return Buffer.slice(Begin, End);
}

/// True if the line holding `Loc` — or the line directly above it —
/// carries a `mips-tidy: allow(<Tag>)` suppression comment.
inline bool HasAllowComment(const SourceManager &SM, SourceLocation Loc,
                            llvm::StringRef Tag) {
  Loc = SM.getExpansionLoc(Loc);
  if (Loc.isInvalid()) return false;
  bool Invalid = false;
  llvm::StringRef Buffer = SM.getBufferData(SM.getFileID(Loc), &Invalid);
  if (Invalid) return false;
  const unsigned Offset = SM.getFileOffset(Loc);
  const std::string Needle = ("mips-tidy: allow(" + Tag + ")").str();

  llvm::StringRef Line = LineContaining(Buffer, Offset);
  if (Line.contains(Needle)) return true;
  // Previous line: step to the character before this line's start.
  size_t Begin = Buffer.rfind('\n', Offset);
  if (Begin == llvm::StringRef::npos || Begin == 0) return false;
  return LineContaining(Buffer, Begin - 1).contains(Needle);
}

/// Filename (as spelled in the compile command) for a location, or empty.
inline llvm::StringRef FileNameOf(const SourceManager &SM,
                                  SourceLocation Loc) {
  return SM.getFilename(SM.getExpansionLoc(Loc));
}

}  // namespace clang::tidy::mips

#endif  // MIPS_TOOLS_MIPS_TIDY_MIPS_TIDY_UTILS_H_
