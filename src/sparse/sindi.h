// sindi: exact sparse MIPS over an inverted index (spec "sindi:postings=...").
//
// The solver compresses the prepared item matrix into a CsrMatrix, builds
// per-dimension posting lists (sparse/inverted_index.h), and answers each
// user query with the SparseTopKQuery walk — value-ordered with
// upper-bound cutoffs ("postings=abs", the default) or item-ordered
// term-at-a-time ("postings=id", the unpruned ablation baseline).  Both
// modes return bit-for-bit the dense BMM reference answer under the
// library-wide tie order; density only changes the speed, never the bits.
//
// sindi is a point-query solver (batches_users() == false): per-user cost
// is the real cost, so OPTIMUS samples it user-by-user and may early-stop
// with the t-test, exactly like naive/LEMP/FEXIPRO.

#ifndef MIPS_SPARSE_SINDI_H_
#define MIPS_SPARSE_SINDI_H_

#include <atomic>
#include <string>

#include "solvers/solver.h"
#include "sparse/csr_matrix.h"
#include "sparse/inverted_index.h"

namespace mips {

/// Exact inverted-index sparse solver.
class SindiSolver : public MipsSolver {
 public:
  explicit SindiSolver(PostingOrder order) : order_(order) {}

  std::string name() const override {
    return order_ == PostingOrder::kAbsDescending ? "sindi" : "sindi-id";
  }
  bool batches_users() const override { return false; }
  std::string representation() const override { return "sparse"; }

  Status Prepare(const ConstRowBlock& users,
                 const ConstRowBlock& items) override;
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) override;

  /// Catalog shape the solver indexed (valid after Prepare()).
  const CsrMatrix::Stats& catalog_stats() const { return catalog_stats_; }
  /// Query-walk counters accumulated across every TopKForUsers call.
  SparseQueryStats query_stats() const {
    return {postings_visited_.load(std::memory_order_relaxed),
            items_rescored_.load(std::memory_order_relaxed),
            lists_pruned_.load(std::memory_order_relaxed)};
  }

 private:
  PostingOrder order_;
  ConstRowBlock users_;
  CsrMatrix csr_;
  InvertedIndex index_;
  CsrMatrix::Stats catalog_stats_;

  // Diagnostics only: concurrent query chunks add their local counters
  // once per chunk (relaxed; no ordering is implied with the results).
  std::atomic<int64_t> postings_visited_{0};
  std::atomic<int64_t> items_rescored_{0};
  std::atomic<int64_t> lists_pruned_{0};
};

}  // namespace mips

#endif  // MIPS_SPARSE_SINDI_H_
