// BatchingEngine: async admission control + request coalescing in front
// of the exact MIPS engines.
//
// The paper's central trade (Section II, Figure 2) is that blocked
// matrix multiply amortizes beautifully over a *batch* of users while
// index probes do not — which means a serving tier that receives one
// user per request is leaving the BMM side of the OPTIMUS decision on
// the table: a 1-row GEMM is all overhead, so the optimizer is pushed
// toward index probes even when the aggregate traffic would be served
// several times faster as mini-batch GEMMs.  BatchingEngine restores
// the batch: concurrent single-user TopKNewUser calls are admitted into
// a bounded queue and coalesced (per k — rows of one GEMM must share k)
// into mini-batches under a bounded-delay policy:
//
//   - a batch dispatches as soon as `max_batch_rows` rows of one k are
//     pending ("size flush"), or
//   - when the oldest pending request has waited `max_wait` ("timeout
//     flush"), whichever comes first.
//
// Each batch runs through the backend's batched new-user path
// (MipsEngine::TopKNewUsers / ShardedMipsEngine::TopKNewUsers), where
// the engine's shape-keyed decision cache re-runs OPTIMUS for the
// realized batch size (EngineOptions::batch_shape_decisions) — so a
// 64-row coalesced batch can pick BMM while singleton stragglers keep
// their index winner.  Every answer is bit-for-bit identical to the
// singleton TopKNewUser answer for the same vector: the GEMM computes
// each (row, item) score with a fixed per-element operation sequence
// that does not depend on how many other rows share the batch.
//
// Overload behavior is explicit, not emergent.  Admission counts
// *outstanding* rows (pending + assembled + executing); when it would
// exceed `max_queue_rows` the configured OverloadPolicy applies:
//
//   kBlock       — the caller waits for capacity (bounded by its
//                  deadline, if it has one): closed-loop clients get
//                  backpressure instead of unbounded memory.
//   kShed        — fail fast with ResourceExhausted: open-loop clients
//                  get an immediate signal to retry elsewhere.
//   kDropExpired — purge pending requests whose deadline has already
//                  passed (they resolve DeadlineExceeded) to make room;
//                  shed only if still full.
//
// Requests may carry a deadline; the dispatcher purges expired requests
// before assembling each batch (resolving them DeadlineExceeded without
// wasting backend work).  A request already assembled into a batch is
// committed: it is served even if its deadline passes mid-execution.
//
// Threading: one dispatcher thread assembles batches; `executor_threads`
// workers execute them (>= 1; with 1, assembly of batch N+1 still
// overlaps execution of batch N).  The user vector is copied at
// admission, so the caller's pointer only needs to outlive Submit; the
// caller's `out_row` must stay alive until the returned future resolves.
// Submit/TopKNewUser/Flush/stats are safe from any number of threads.
// Destruction drains: pending requests are served, then workers join.

#ifndef MIPS_SERVE_BATCHING_ENGINE_H_
#define MIPS_SERVE_BATCHING_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "topk/result.h"

namespace mips {

class MipsEngine;
class ShardedMipsEngine;

/// What admission does when outstanding rows would exceed the bound.
enum class OverloadPolicy { kBlock, kShed, kDropExpired };

/// "block", "shed", "drop_expired".
const char* ToString(OverloadPolicy policy);
StatusOr<OverloadPolicy> ParseOverloadPolicy(std::string_view name);

/// Configuration for BatchingEngine.
struct BatchingOptions {
  /// Dispatch a batch as soon as this many rows of one k are pending.
  /// Also the assembly cap during timeout flushes and drains.
  Index max_batch_rows = 64;
  /// Dispatch the oldest pending request's group after it has waited
  /// this long, even if the batch is not full.  <= 0 means "size-only":
  /// partial batches dispatch only via Flush or shutdown drain.
  double max_wait_ms = 2.0;
  /// Admission bound on outstanding rows (pending + assembled +
  /// executing).  Must be >= max_batch_rows.
  Index max_queue_rows = 1024;
  /// What admission does at the bound.
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Deadline applied to requests that do not carry their own.
  /// <= 0 means no default deadline.
  double default_deadline_ms = 0;
  /// Threads executing assembled batches (>= 1).
  int executor_threads = 1;
};

/// Coalesces concurrent single-user queries into mini-batches; see the
/// file comment.
class BatchingEngine {
 public:
  /// The batched serving path batches are executed against:
  /// (user_vectors, num_rows, k, out).  Must be safe for concurrent
  /// calls when executor_threads > 1.
  using Backend =
      std::function<Status(const Real*, Index, Index, TopKResult*)>;

  /// Fronts an arbitrary backend (tests inject counting fakes here).
  /// `num_factors` is the width of every submitted user vector.
  static StatusOr<std::unique_ptr<BatchingEngine>> Create(
      Backend backend, Index num_factors, const BatchingOptions& options);
  /// Fronts `engine`'s batched new-user path.  The engine must outlive
  /// the batching engine.
  static StatusOr<std::unique_ptr<BatchingEngine>> Create(
      MipsEngine* engine, const BatchingOptions& options);
  /// Fronts `engine`'s sharded batched new-user path.
  static StatusOr<std::unique_ptr<BatchingEngine>> Create(
      ShardedMipsEngine* engine, const BatchingOptions& options);

  /// Drains: every admitted request is served (or resolved with its
  /// deadline/shutdown status) before destruction returns.
  ~BatchingEngine();

  /// Admits one new-user query.  The vector is copied before returning;
  /// `out_row` (k entries) must stay alive until the future resolves.
  /// The future carries OK after out_row is filled, or the admission /
  /// deadline / backend error.  `deadline_ms` <= 0 uses
  /// options.default_deadline_ms.
  std::future<Status> SubmitNewUser(const Real* user_vector, Index k,
                                    TopKEntry* out_row,
                                    double deadline_ms = 0) EXCLUDES(mu_);

  /// Synchronous wrapper: Submit + wait.  Drop-in for
  /// MipsEngine::TopKNewUser, but coalesced with concurrent callers.
  Status TopKNewUser(const Real* user_vector, Index k, TopKEntry* out_row)
      EXCLUDES(mu_);

  /// Dispatches everything currently pending (in max_batch_rows chunks)
  /// without waiting out max_wait, and returns once the pending queue
  /// has been handed to executors (not necessarily completed).
  void Flush() EXCLUDES(mu_);

  /// Cumulative counters + a snapshot of current queue state.  All
  /// counters are in requests (rows) unless named otherwise.
  struct Stats {
    int64_t submitted = 0;
    /// Resolved OK (backend answered).
    int64_t served = 0;
    /// Rejected at admission (ResourceExhausted under kShed /
    /// kDropExpired, or shutdown).
    int64_t shed = 0;
    /// Resolved DeadlineExceeded (purged while pending, dropped by
    /// kDropExpired, or deadline elapsed while blocked at admission).
    int64_t expired = 0;
    /// Admissions that waited under kBlock.
    int64_t blocked = 0;
    int64_t batches_dispatched = 0;
    int64_t size_flushes = 0;
    int64_t timeout_flushes = 0;
    /// Flush() / shutdown-drain dispatches.
    int64_t forced_flushes = 0;
    /// batch rows -> number of batches dispatched with exactly that
    /// many rows.
    std::map<Index, int64_t> batch_size_histogram;
    /// Outstanding rows right now (pending + assembled + executing).
    Index queue_rows = 0;
    Index max_queue_rows_observed = 0;
    /// Wall time spent inside the backend (summed over executors).
    double backend_seconds = 0;
    /// Queueing delay (admission -> batch assembly) summed over served
    /// rows; mean delay = queue_wait_seconds / served.
    double queue_wait_seconds = 0;
  };
  Stats stats() const EXCLUDES(mu_);

  const BatchingOptions& options() const { return options_; }
  Index num_factors() const { return num_factors_; }

 private:
  struct Request {
    std::vector<Real> vector;
    Index k = 0;
    TopKEntry* out_row = nullptr;
    std::chrono::steady_clock::time_point arrival;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::promise<Status> promise;
  };
  struct Batch {
    Index k = 0;
    std::vector<Request> requests;
  };

  BatchingEngine(Backend backend, Index num_factors,
                 const BatchingOptions& options);

  void DispatcherLoop() EXCLUDES(mu_);
  void ExecutorLoop() EXCLUDES(mu_);
  /// Resolves expired pending requests with DeadlineExceeded.  Returns
  /// the number purged.
  Index PurgeExpiredLocked(std::chrono::steady_clock::time_point now)
      REQUIRES(mu_);
  /// Moves up to max_batch_rows pending requests with key `k` (arrival
  /// order) into a Batch on ready_.
  void AssembleLocked(Index k, int64_t* flush_counter) REQUIRES(mu_);
  void ExecuteBatch(Batch batch) EXCLUDES(mu_);
  /// Rows currently tracked by the queue structures: pending + assembled
  /// (ready_) + executing.  The admission ledger invariant — this sum
  /// always equals outstanding_rows_ — is DCHECKed at every accounting
  /// step (debug/sanitizer builds).
  Index TrackedRowsLocked() const REQUIRES(mu_);

  Backend backend_;
  Index num_factors_ = 0;
  BatchingOptions options_;

  mutable Mutex mu_;
  CondVar cv_work_;   // dispatcher: pending changed
  CondVar cv_ready_;  // executors: ready batch available
  CondVar cv_space_;  // blocked admitters: rows completed
  CondVar cv_flush_;  // Flush(): pending drained
  std::deque<Request> pending_ GUARDED_BY(mu_);
  std::map<Index, Index> pending_rows_by_k_ GUARDED_BY(mu_);
  std::deque<Batch> ready_ GUARDED_BY(mu_);
  /// Admission ledger: rows admitted and not yet resolved
  /// (= pending + assembled + executing; see TrackedRowsLocked).
  Index outstanding_rows_ GUARDED_BY(mu_) = 0;
  /// Rows inside batches executors have taken off ready_ and not yet
  /// completed (the "executing" term of the ledger).
  Index executing_rows_ GUARDED_BY(mu_) = 0;
  bool flush_requested_ GUARDED_BY(mu_) = false;
  /// No new admissions; dispatcher drains.
  bool stopping_ GUARDED_BY(mu_) = false;
  /// ready_ is final; executors may exit.
  bool executors_done_ GUARDED_BY(mu_) = false;
  Stats stats_ GUARDED_BY(mu_);

  std::thread dispatcher_;
  std::vector<std::thread> executors_;
};

}  // namespace mips

#endif  // MIPS_SERVE_BATCHING_ENGINE_H_
