# Runs clang-tidy with the mips-tidy plugin over one fixture and diffs
# the findings against the fixture's own `// expect-diagnostic:` lines.
#
#   MODE=bad   every expect-diagnostic substring must appear, and the
#              check name itself must fire at least once
#   MODE=good  no mips-* diagnostic may appear at all
#
# Prints "[SKIP] ..." (matched by the tests' SKIP_REGULAR_EXPRESSION)
# instead of failing when the plugin or tool is missing, so a build
# without LLVM/Clang dev packages passes ctest with these tests skipped.
#
# Inputs: -DTIDY= -DPLUGIN= -DFIXTURE= -DCHECK= -DMODE= -DSRC_DIR=

foreach(var TIDY PLUGIN FIXTURE CHECK MODE SRC_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_tidy_fixture.cmake: missing -D${var}=")
  endif()
endforeach()

if(NOT EXISTS "${PLUGIN}")
  message(STATUS "[SKIP] mips-tidy plugin not built (${PLUGIN})")
  return()
endif()
if(NOT EXISTS "${TIDY}")
  message(STATUS "[SKIP] clang-tidy not available (${TIDY})")
  return()
endif()

execute_process(
  COMMAND "${TIDY}" "--load=${PLUGIN}" "--checks=-*,${CHECK}"
          "--header-filter=.*" --quiet "${FIXTURE}"
          -- -std=c++20 -w "-I${SRC_DIR}"
  OUTPUT_VARIABLE TIDY_OUT
  ERROR_VARIABLE TIDY_ERR
  RESULT_VARIABLE TIDY_RC)
set(TIDY_ALL "${TIDY_OUT}\n${TIDY_ERR}")

if(NOT TIDY_RC EQUAL 0)
  message(FATAL_ERROR
      "clang-tidy failed (rc=${TIDY_RC}) on ${FIXTURE}:\n${TIDY_ALL}")
endif()

if(MODE STREQUAL "bad")
  # The check must prove itself live on its bad fixture.
  string(FIND "${TIDY_ALL}" "[${CHECK}]" CHECK_POS)
  if(CHECK_POS EQUAL -1)
    message(FATAL_ERROR
        "expected at least one [${CHECK}] diagnostic on ${FIXTURE}, "
        "got none:\n${TIDY_ALL}")
  endif()
  file(READ "${FIXTURE}" FIXTURE_TEXT)
  string(REGEX MATCHALL "expect-diagnostic: [^\n]*" EXPECTED
         "${FIXTURE_TEXT}")
  if(NOT EXPECTED)
    message(FATAL_ERROR
        "bad fixture ${FIXTURE} declares no expect-diagnostic lines")
  endif()
  foreach(line IN LISTS EXPECTED)
    string(REPLACE "expect-diagnostic: " "" needle "${line}")
    string(STRIP "${needle}" needle)
    string(FIND "${TIDY_ALL}" "${needle}" POS)
    if(POS EQUAL -1)
      message(FATAL_ERROR
          "missing expected diagnostic \"${needle}\" on ${FIXTURE}; "
          "clang-tidy output:\n${TIDY_ALL}")
    endif()
  endforeach()
elseif(MODE STREQUAL "good")
  string(FIND "${TIDY_ALL}" "[mips-" POS)
  if(NOT POS EQUAL -1)
    message(FATAL_ERROR
        "good fixture ${FIXTURE} must stay silent, but produced:\n"
        "${TIDY_ALL}")
  endif()
else()
  message(FATAL_ERROR "unknown MODE '${MODE}' (want bad|good)")
endif()

message(STATUS "OK (${MODE}): ${FIXTURE}")
