// Randomized differential testing: many seeded random workload
// configurations, every solver (and OPTIMUS, and the serving session)
// must produce identical exact top-K score sequences.  This is the
// library's fuzz harness — any divergence between two exact solvers is a
// bug by definition, whatever the input distribution.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/maximus.h"
#include "core/optimus.h"
#include "core/registry.h"
#include "core/serving.h"
#include "linalg/simd_dispatch.h"
#include "solvers/bmm.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::ExpectSameTopKScores;

// One random workload drawn from a seeded generator: dimensions, K,
// norm skew, clusterability, and sign structure all vary.
struct RandomWorkload {
  MFModel model;
  Index k = 1;
};

RandomWorkload DrawWorkload(uint64_t seed) {
  Rng rng(seed);
  SyntheticModelConfig config;
  config.seed = seed * 31 + 7;
  config.num_users = 10 + static_cast<Index>(rng.UniformInt(150));
  config.num_items = 5 + static_cast<Index>(rng.UniformInt(300));
  config.num_factors = 1 + static_cast<Index>(rng.UniformInt(40));
  config.item_norm_sigma = rng.Uniform(0.0, 1.5);
  config.item_norm_mu = rng.Uniform(-0.5, 0.5);
  config.user_modes = 1 + static_cast<Index>(rng.UniformInt(12));
  config.user_dispersion = rng.Uniform(0.0, 2.0);
  config.user_norm_sigma = rng.Uniform(0.0, 0.8);
  config.non_negative = rng.UniformInt(3) == 0;
  RandomWorkload workload;
  auto model = GenerateSyntheticModel(config);
  EXPECT_TRUE(model.ok());
  workload.model = std::move(model).value();
  // K occasionally exceeds the item count to exercise padding.
  workload.k = 1 + static_cast<Index>(
                       rng.UniformInt(static_cast<uint64_t>(
                           workload.model.num_items() + 3)));
  return workload;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, AllSolversAgreeOnRandomWorkload) {
  const RandomWorkload workload =
      DrawWorkload(static_cast<uint64_t>(GetParam()));
  const MFModel& model = workload.model;
  SCOPED_TRACE(::testing::Message()
               << "seed=" << GetParam() << " users=" << model.num_users()
               << " items=" << model.num_items()
               << " f=" << model.num_factors() << " k=" << workload.k);

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(workload.k, &expected).ok());

  for (const std::string& name : AvailableSolvers()) {
    auto solver = CreateSolver(name);
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items)).ok())
        << name;
    TopKResult got;
    ASSERT_TRUE((*solver)->TopKAll(workload.k, &got).ok()) << name;
    SCOPED_TRACE(name);
    // Scores can be large when norm_mu is high; scale the tolerance.
    ExpectSameTopKScores(got, expected,
                         1e-7 * (1 + std::abs(expected.Row(0)[0].score)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1, 33));

// Forcing each compiled-and-supported GEMM kernel must leave every
// solver's top-k BIT-FOR-BIT unchanged — ids and scores — because all
// kernel variants run the identical per-element fma sequence
// (linalg/gemm_kernel.h).  This is the engine-level guarantee behind the
// runtime dispatch: an operator (or the startup probe) can swap kernels
// on a live fleet without a single score moving.
/// TearDown (not a trailing statement) restores auto dispatch, so a
/// failing ASSERT mid-test cannot leak a forced kernel into later suites.
class DifferentialKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetGemmKernelForTest(); }
};

TEST_F(DifferentialKernelTest, TopKBitForBitAcrossForcedKernels) {
  std::vector<GemmKernel> kernels;
  for (int v = 0; v < kNumGemmKernels; ++v) {
    if (GemmKernelSupported(static_cast<GemmKernel>(v))) {
      kernels.push_back(static_cast<GemmKernel>(v));
    }
  }
  // LEMP's adaptive mode picks per-bucket algorithms by wall-clock
  // calibration, and its (all exact) algorithms accumulate the same dot
  // in different orders — nondeterminism that has nothing to do with the
  // GEMM kernel, so it is pinned to one algorithm (INCR) here.
  std::vector<std::string> specs;
  for (const std::string& name : AvailableSolvers()) {
    specs.push_back(name == "lemp" ? "lemp:forced_algorithm=2" : name);
  }
  for (int seed = 200; seed < 206; ++seed) {
    const RandomWorkload workload = DrawWorkload(static_cast<uint64_t>(seed));
    const MFModel& model = workload.model;
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    // Reference under the portable kernel, per solver family.
    std::map<std::string, TopKResult> expected;
    ASSERT_TRUE(ForceGemmKernel(GemmKernel::kPortable).ok());
    for (const std::string& name : specs) {
      auto solver = CreateSolver(name);
      ASSERT_TRUE(solver.ok());
      ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model.users),
                                     ConstRowBlock(model.items)).ok());
      ASSERT_TRUE((*solver)->TopKAll(workload.k, &expected[name]).ok());
    }
    for (const GemmKernel kernel : kernels) {
      ASSERT_TRUE(ForceGemmKernel(kernel).ok());
      for (const std::string& name : specs) {
        auto solver = CreateSolver(name);
        ASSERT_TRUE(solver.ok());
        ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model.users),
                                       ConstRowBlock(model.items)).ok());
        TopKResult got;
        ASSERT_TRUE((*solver)->TopKAll(workload.k, &got).ok());
        const TopKResult& want = expected[name];
        ASSERT_EQ(got.num_queries(), want.num_queries());
        for (Index q = 0; q < got.num_queries(); ++q) {
          for (Index e = 0; e < got.k(); ++e) {
            ASSERT_EQ(got.Row(q)[e].item, want.Row(q)[e].item)
                << name << " under " << ToString(kernel) << " row " << q
                << " entry " << e;
            const Real gs = got.Row(q)[e].score;
            const Real ws = want.Row(q)[e].score;
            // Exact equality (NaN-free fixtures; padding sentinels are
            // -inf and compare equal to themselves).
            ASSERT_EQ(gs, ws) << name << " under " << ToString(kernel)
                              << " row " << q << " entry " << e;
          }
        }
      }
    }
  }
}

TEST(DifferentialOptimusTest, OptimusExactOnRandomWorkloads) {
  for (int seed = 100; seed < 108; ++seed) {
    const RandomWorkload workload = DrawWorkload(static_cast<uint64_t>(seed));
    const MFModel& model = workload.model;
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);

    BmmSolver reference;
    ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                  ConstRowBlock(model.items)).ok());
    TopKResult expected;
    ASSERT_TRUE(reference.TopKAll(workload.k, &expected).ok());

    BmmSolver bmm;
    MaximusSolver maximus;
    OptimusOptions options;
    options.l2_cache_bytes = 4 * 1024;
    options.seed = static_cast<uint64_t>(seed);
    Optimus optimus(options);
    TopKResult got;
    ASSERT_TRUE(optimus
                    .Run(ConstRowBlock(model.users),
                         ConstRowBlock(model.items), workload.k,
                         {&bmm, &maximus}, &got)
                    .ok());
    ExpectSameTopKScores(got, expected,
                         1e-7 * (1 + std::abs(expected.Row(0)[0].score)));
  }
}

TEST(DifferentialServingTest, SessionsExactOnRandomBatches) {
  for (int seed = 200; seed < 205; ++seed) {
    const RandomWorkload workload = DrawWorkload(static_cast<uint64_t>(seed));
    const MFModel& model = workload.model;
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);

    ServingOptions options;
    options.k = workload.k;
    options.optimus.l2_cache_bytes = 4 * 1024;
    auto session = ServingSession::Open(ConstRowBlock(model.users),
                                        ConstRowBlock(model.items), options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    BmmSolver reference;
    ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                  ConstRowBlock(model.items)).ok());

    Rng rng(static_cast<uint64_t>(seed) + 999);
    for (int batch = 0; batch < 5; ++batch) {
      std::vector<Index> ids;
      const int size = 1 + static_cast<int>(rng.UniformInt(7));
      for (int i = 0; i < size; ++i) {
        ids.push_back(static_cast<Index>(
            rng.UniformInt(static_cast<uint64_t>(model.num_users()))));
      }
      TopKResult got;
      TopKResult expected;
      ASSERT_TRUE((*session)->ServeBatch(ids, &got).ok());
      ASSERT_TRUE(reference.TopKForUsers(workload.k, ids, &expected).ok());
      ExpectSameTopKScores(got, expected,
                           1e-7 * (1 + std::abs(expected.Row(0)[0].score)));
    }
  }
}

}  // namespace
}  // namespace mips
