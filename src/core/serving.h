// Online serving session: the paper's Clipper-style setting.
//
// Section II-A: "MAXIMUS, our proposed index, can also accelerate MIPS
// for a subset of users at a time, as might happen in a model serving
// system like Clipper that collects tens of requests at once."
//
// ServingSession is the fixed-k compatibility wrapper over MipsEngine
// (engine.h): open a session on a trained model, let OPTIMUS pick the
// serving strategy once (via its sampling decision, not a full batch
// run), then answer mini-batches of known users and individual *new*
// users for the lifetime of the session.  New callers should prefer
// MipsEngine directly — it adds per-call k, spec-driven candidates,
// strategy override, and an internal thread pool.

#ifndef MIPS_CORE_SERVING_H_
#define MIPS_CORE_SERVING_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/optimus.h"
#include "serve/batching_engine.h"
#include "shard/sharded_engine.h"
#include "solvers/solver.h"

namespace mips {

/// Configuration for a serving session.
struct ServingOptions {
  /// Top-K size every query in this session uses.
  Index k = 10;
  /// Candidate strategies as registry specs; OPTIMUS picks among them.
  std::vector<std::string> strategies = {"bmm", "maximus"};
  /// Optimizer knobs for the opening decision.
  OptimusOptions optimus;
  /// Item shards (> 1 serves through a ShardedMipsEngine: one OPTIMUS
  /// decision per shard, exact scatter/gather answers).
  int num_shards = 1;
  /// Item placement when num_shards > 1.
  ShardingStrategy sharding = ShardingStrategy::kContiguous;
  /// Coalesce concurrent ServeNewUser calls into mini-batches behind a
  /// BatchingEngine (serve/batching_engine.h).  Turning this on also
  /// enables shape-keyed strategy decisions in the wrapped engine
  /// (EngineOptions::batch_shape_decisions with re-decisions on), so
  /// OPTIMUS re-answers "index or BMM?" per realized batch size instead
  /// of assuming population-scale batches.
  bool batching = false;
  /// Queueing/coalescing knobs when `batching` is on.
  BatchingOptions batching_options;
};

/// A long-lived serving endpoint over one (users, items) model.
class ServingSession {
 public:
  /// Builds the candidate indexes, runs the OPTIMUS decision, and returns
  /// a session bound to the winning strategy.  The model views must
  /// outlive the session.
  static StatusOr<std::unique_ptr<ServingSession>> Open(
      const ConstRowBlock& users, const ConstRowBlock& items,
      const ServingOptions& options);

  /// Exact top-K for a mini-batch of known users (ids into the session's
  /// user matrix).
  Status ServeBatch(std::span<const Index> user_ids, TopKResult* out);

  /// Exact top-K for a user vector that was NOT in the session's user
  /// matrix (Section III-E).  `out_row` must hold k entries.  With
  /// batching on, concurrent callers are coalesced into one GEMM-sized
  /// mini-batch; the answer stays bit-for-bit the singleton answer.
  Status ServeNewUser(const Real* user_vector, TopKEntry* out_row);

  /// Async admission with an optional per-request deadline (batching
  /// sessions only; FailedPrecondition otherwise).  See
  /// BatchingEngine::SubmitNewUser for lifetime rules.
  std::future<Status> SubmitNewUser(const Real* user_vector,
                                    TopKEntry* out_row,
                                    double deadline_ms = 0);

  /// Name of the strategy OPTIMUS selected at Open time.  For a sharded
  /// session this is the '|'-joined per-shard winners in shard order
  /// (e.g. "lemp|bmm"), frozen at Open: sessions are fixed-k with
  /// re-decisions disabled, so it only goes stale if the caller forces
  /// strategies through the mutable sharded_engine() handle — read
  /// sharded_engine()->shard_strategy(s) for live values in that case
  /// (the unsharded path's strategy() does reflect forcing live).
  const std::string& strategy() const {
    return engine_ != nullptr ? engine_->strategy() : sharded_strategy_;
  }
  /// The opening decision trace (first non-empty shard's trace when
  /// sharded; per-shard traces are on sharded_engine()->shard_engine(s)).
  const OptimusReport& decision_report() const {
    return engine_ != nullptr
               ? engine_->decision_report()
               : sharded_engine_->shard_engine(first_active_shard_)
                     ->decision_report();
  }

  /// Cumulative serving statistics.  Computed on demand from the wrapped
  /// engine's atomic counters, so concurrent serve calls (a batching
  /// session's normal traffic) never race on session state.
  struct Stats {
    int64_t batches_served = 0;
    int64_t users_served = 0;
    int64_t new_users_served = 0;
    double serve_seconds = 0;
  };
  Stats stats() const;

  /// The engine this session wraps (full API: per-call k, overrides).
  /// Null when the session is sharded — use sharded_engine() then.
  MipsEngine* engine() { return engine_.get(); }
  /// The sharded engine (num_shards > 1 sessions); null otherwise.
  ShardedMipsEngine* sharded_engine() { return sharded_engine_.get(); }
  /// The admission/coalescing front (batching sessions); null otherwise.
  BatchingEngine* batching_engine() { return batching_.get(); }

 private:
  ServingSession() = default;

  Index k_ = 0;
  std::unique_ptr<MipsEngine> engine_;
  std::unique_ptr<ShardedMipsEngine> sharded_engine_;
  /// Declared after the engines so it is destroyed (drained) first.
  std::unique_ptr<BatchingEngine> batching_;
  std::string sharded_strategy_;
  int first_active_shard_ = 0;
};

}  // namespace mips

#endif  // MIPS_CORE_SERVING_H_
