// User-sampling helpers for OPTIMUS.
//
// Two pieces: uniform sampling without replacement (the random user subset
// OPTIMUS times each strategy on) and the L2-cache occupancy lower bound
// from Section IV-A ("the sample size must at least occupy the entire L2
// cache" so GEMM on the sample exhibits the same blocked-kernel behavior
// as the full run).

#ifndef MIPS_STATS_SAMPLING_H_
#define MIPS_STATS_SAMPLING_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mips {

/// Draws `count` distinct indices uniformly from [0, n), sorted ascending.
/// If count >= n, returns all of [0, n).
std::vector<Index> SampleWithoutReplacement(Index n, Index count, Rng* rng);

/// Minimum number of f-dimensional Real vectors whose payload fills
/// `cache_bytes` (>= 1).
Index MinVectorsToFillCache(Index f, std::size_t cache_bytes);

/// OPTIMUS sample size: max(ratio * n, L2 fill count), clamped to n.
Index OptimizerSampleSize(Index n, double ratio, Index f,
                          std::size_t cache_bytes);

}  // namespace mips

#endif  // MIPS_STATS_SAMPLING_H_
