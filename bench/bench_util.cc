#include "bench_util.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/timer.h"

namespace mips {
namespace bench {

void ParseBenchFlags(int argc, char** argv, FlagSet* flags,
                     BenchConfig* config) {
  flags->Double("scale", &config->scale,
                "multiplier on each preset's default scale");
  flags->String("k", &config->ks, "comma-separated top-K values");
  flags->String("models", &config->models,
                "substring filter on preset ids (empty = all)");
  int64_t seed = 0;
  flags->Int64("seed", &seed, "seed override (0 = preset default)");
  flags->Int32("threads", &config->threads, "worker threads");
  const Status status = flags->Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(2);
  }
  config->seed = static_cast<uint64_t>(seed);
}

std::vector<Index> ParseKList(const std::string& csv) {
  std::vector<Index> ks;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) ks.push_back(static_cast<Index>(std::stol(tok)));
  }
  return ks;
}

MFModel MakeBenchModel(const ModelPreset& preset, const BenchConfig& config) {
  ModelPreset p = preset;
  if (config.seed != 0) p.generator.seed = config.seed;
  auto model = MakeModel(p, config.scale);
  model.status().CheckOK();
  return std::move(model).value();
}

std::vector<ModelPreset> SelectPresets(const BenchConfig& config) {
  std::vector<ModelPreset> out;
  for (const auto& preset : AllModelPresets()) {
    if (config.models.empty() ||
        preset.id.find(config.models) != std::string::npos) {
      out.push_back(preset);
    }
  }
  return out;
}

std::unique_ptr<MipsSolver> MakeSolver(const std::string& spec) {
  auto solver = CreateSolver(spec);
  solver.status().CheckOK();
  return std::move(solver).value();
}

EndToEndTiming TimeEndToEnd(MipsSolver* solver, const MFModel& model,
                            Index k) {
  EndToEndTiming timing;
  WallTimer timer;
  solver->Prepare(ConstRowBlock(model.users), ConstRowBlock(model.items))
      .CheckOK();
  timing.prepare_seconds = timer.Seconds();
  timer.Restart();
  TopKResult result;
  solver->TopKAll(k, &result).CheckOK();
  timing.query_seconds = timer.Seconds();
  return timing;
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  if (rows_.empty()) return;
  std::vector<std::size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(rows_.front());
  std::printf("|");
  for (std::size_t c = 0; c < widths.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (std::size_t r = 1; r < rows_.size(); ++r) print_row(rows_[r]);
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtInt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return buf;
}

}  // namespace bench
}  // namespace mips
