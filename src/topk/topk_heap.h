// Bounded min-heap for streaming top-K selection.
//
// This is the "min-heap from the C++ standard library" the paper's BMM
// baseline uses (Section II-B), and the heap H in MAXIMUS's QueryIndex
// (Algorithm 1).  The heap keeps the K best (item, score) pairs seen so
// far; MinScore() is the pruning threshold min(H) the index walks compare
// bounds against.

#ifndef MIPS_TOPK_TOPK_HEAP_H_
#define MIPS_TOPK_TOPK_HEAP_H_

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "topk/result.h"

namespace mips {

/// Fixed-capacity min-heap ordered by score (heap front = current minimum).
class TopKHeap {
 public:
  explicit TopKHeap(Index k) : k_(k) { heap_.reserve(static_cast<std::size_t>(k)); }

  Index k() const { return k_; }
  Index size() const { return static_cast<Index>(heap_.size()); }
  bool full() const { return size() == k_; }

  /// Smallest score currently held, or -infinity while the heap is not yet
  /// full (so every candidate is accepted until K entries exist).
  Real MinScore() const {
    return full() ? heap_.front().score
                  : -std::numeric_limits<Real>::infinity();
  }

  /// True if a candidate with this score would enter the heap.
  bool WouldAccept(Real score) const { return score > MinScore(); }

  /// Inserts (item, score) if it beats the current minimum (or the heap is
  /// not full).  Returns true if inserted.
  bool Push(Index item, Real score) {
    if (!full()) {
      heap_.push_back({item, score});
      std::push_heap(heap_.begin(), heap_.end(), MinOnTop);
      return true;
    }
    if (score <= heap_.front().score) return false;
    std::pop_heap(heap_.begin(), heap_.end(), MinOnTop);
    heap_.back() = {item, score};
    std::push_heap(heap_.begin(), heap_.end(), MinOnTop);
    return true;
  }

  void Clear() { heap_.clear(); }

  /// Writes the heap contents into out[0..k), sorted by (score desc, item
  /// asc).  If fewer than K entries were pushed (n < K items exist), the
  /// tail is filled with {-1, -inf} sentinels.  The heap is left empty.
  void ExtractDescending(TopKEntry* out) {
    std::sort(heap_.begin(), heap_.end(), [](const TopKEntry& a,
                                             const TopKEntry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.item < b.item;
    });
    Index i = 0;
    for (; i < size(); ++i) out[i] = heap_[static_cast<std::size_t>(i)];
    for (; i < k_; ++i) {
      out[i] = {-1, -std::numeric_limits<Real>::infinity()};
    }
    heap_.clear();
  }

 private:
  // std::push_heap builds a max-heap under the comparator; "greater"
  // therefore puts the minimum at the front.
  static bool MinOnTop(const TopKEntry& a, const TopKEntry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  }

  Index k_;
  std::vector<TopKEntry> heap_;
};

}  // namespace mips

#endif  // MIPS_TOPK_TOPK_HEAP_H_
