#include "core/approx_cluster.h"

#include <algorithm>
#include <unordered_set>

#include "cluster/spherical.h"
#include "linalg/blas.h"
#include "linalg/gemm.h"
#include "topk/topk_block.h"

namespace mips {

Status ApproxClusterTopK::Prepare(const ConstRowBlock& users,
                                  const ConstRowBlock& items) {
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (users.rows() <= 0 || items.rows() <= 0) {
    return Status::InvalidArgument("user and item sets must be non-empty");
  }
  users_ = users;
  items_ = items;
  KMeansOptions kopts;
  kopts.num_clusters = options_.num_clusters;
  kopts.max_iterations = options_.kmeans_iterations;
  kopts.seed = options_.seed;
  return options_.spherical ? SphericalKMeans(users, kopts, &clustering_)
                            : KMeans(users, kopts, &clustering_);
}

Status ApproxClusterTopK::TopKAll(Index k, TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (clustering_.centroids.empty()) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  const Index n = users_.rows();
  const Index f = users_.cols();
  const Index num_clusters = clustering_.centroids.rows();

  // Exact top-K of each centroid: one GEMM + per-row heap.
  Matrix centroid_scores;
  GemmNT(ConstRowBlock(clustering_.centroids), items_, &centroid_scores);
  TopKResult centroid_topk(num_clusters, k);
  TopKFromScoreBlock(centroid_scores.data(), num_clusters, items_.rows(),
                     centroid_scores.cols(), k, 0, nullptr, &centroid_topk, 0);

  // Every member receives its centroid's item list, re-scored with its own
  // vector (ordering may differ from the true user ordering — that is the
  // approximation).
  *out = TopKResult(n, k);
  for (Index u = 0; u < n; ++u) {
    const Index c = clustering_.assignment[static_cast<std::size_t>(u)];
    const TopKEntry* src = centroid_topk.Row(c);
    TopKEntry* dst = out->Row(u);
    for (Index e = 0; e < k; ++e) {
      dst[e].item = src[e].item;
      dst[e].score = src[e].item >= 0
                         ? Dot(users_.Row(u), items_.Row(src[e].item), f)
                         : src[e].score;
    }
  }
  return Status::OK();
}

double MeanRecallAtK(const TopKResult& approx, const TopKResult& exact) {
  if (approx.num_queries() != exact.num_queries() ||
      approx.k() != exact.k() || approx.num_queries() == 0) {
    return 0;
  }
  const Index k = exact.k();
  double recall_sum = 0;
  for (Index q = 0; q < exact.num_queries(); ++q) {
    std::unordered_set<Index> truth;
    Index valid = 0;
    for (Index e = 0; e < k; ++e) {
      if (exact.Row(q)[e].item >= 0) {
        truth.insert(exact.Row(q)[e].item);
        ++valid;
      }
    }
    if (valid == 0) continue;
    Index hits = 0;
    for (Index e = 0; e < k; ++e) {
      if (truth.count(approx.Row(q)[e].item) > 0) ++hits;
    }
    // mips-tidy: allow(float-accumulation): recall metric over queries.
    recall_sum += static_cast<double>(hits) / static_cast<double>(valid);
  }
  return recall_sum / static_cast<double>(exact.num_queries());
}

}  // namespace mips
