// OPTIMUS: the online, sampling-based MIPS serving optimizer (Section IV).
//
// Given a model and a set of candidate strategies (always including BMM in
// the paper's setup, plus one or more indexes), OPTIMUS:
//
//   1. Builds every index in full — construction is 0.5-2% of serving time
//      for the fast indexes (Figure 4), so this is cheap insurance.
//   2. Draws a random user sample: max(sample_ratio * |U|, enough vectors
//      to occupy the L2 cache) — the cache floor ensures the sample GEMM
//      exhibits the same blocked-kernel behavior as the full run.
//   3. Times each strategy on the sample.  Batching strategies (BMM,
//      MAXIMUS) run the whole sample at once; point-query strategies
//      (LEMP, FEXIPRO) are timed user-by-user with an incremental
//      one-sample t-test against the best batching mean, stopping early
//      when the difference is already significant.
//   4. Extrapolates per-user cost to |U|, picks the minimum, serves the
//      remaining users with the winner, and reuses the sample's results.
//
// The report records every estimate and timing component so the Table II
// bench can compute accuracy, overhead, and oracle gaps.

#ifndef MIPS_CORE_OPTIMUS_H_
#define MIPS_CORE_OPTIMUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "solvers/solver.h"

namespace mips {

/// OPTIMUS tuning knobs (paper defaults: 0.5% sample, 256 KB L2, 5% alpha).
struct OptimusOptions {
  double sample_ratio = 0.005;
  std::size_t l2_cache_bytes = kDefaultL2CacheBytes;
  /// Upper bound on the sample as a fraction of |U| (min 64 users).  The
  /// L2-fill floor is calibrated for paper-scale user sets (>= 480K users,
  /// where 0.5% easily fills the cache); on scaled-down instances the
  /// floor could swallow a third of all users and turn "optimizer
  /// overhead" into an artifact.  Set to 1.0 to disable the cap.
  double max_sample_ratio = 0.05;
  /// Enable t-test early stopping for non-batching strategies.
  bool enable_ttest = true;
  double ttest_alpha = 0.05;
  int ttest_min_observations = 8;
  uint64_t seed = 123;
  /// When > 0, the sample is exactly this many users (capped at |U|) and
  /// the ratio/L2-floor sizing above is bypassed.  This is how a serving
  /// layer asks "which strategy wins for a B-row mini-batch?": batching
  /// strategies are then timed on a single B-row call — a 1-row "batch"
  /// GEMM pays the full item-panel sweep for one user, while 64 coalesced
  /// rows amortize it — so the decision reflects the realized batch
  /// shape instead of the full-population extrapolation (see
  /// EngineOptions::batch_shape_decisions).  0 = population sizing.
  Index fixed_sample_users = 0;
};

/// Measured/estimated cost of one candidate strategy.
struct StrategyEstimate {
  std::string name;
  /// Item-catalog representation the strategy executes against ("dense",
  /// "sparse", "hybrid" — MipsSolver::representation()).
  std::string representation;
  double construction_seconds = 0;
  /// Wall time spent measuring this strategy on the sample.
  double sampling_seconds = 0;
  /// Users actually measured (may be < sample size under early stopping).
  Index measured_users = 0;
  /// Extrapolated per-user serving cost.
  double est_per_user_seconds = 0;
  /// est_per_user_seconds * |U|: the quantity strategies are ranked by.
  double est_total_seconds = 0;
  bool early_stopped = false;
};

/// Outcome of one OPTIMUS run.
struct OptimusReport {
  std::string chosen;
  /// Representation of the winning strategy ("dense", "sparse", "hybrid")
  /// so a dense-vs-sparse arbitration is attributable at a glance; the
  /// per-strategy estimates carry the measured sample timings both plans
  /// were judged by.
  std::string representation;
  /// The GEMM micro-kernel installed while the decision was measured
  /// ("portable" / "avx2" / "avx512" — see linalg/simd_dispatch.h).
  /// Every wall-clock estimate below was taken under this kernel's
  /// throughput, so recording it keeps the decision attributable when
  /// hardware regimes differ (e.g. emulated AVX-512).
  std::string gemm_kernel;
  std::vector<StrategyEstimate> estimates;
  Index sample_size = 0;
  /// Serving the non-sample users with the winner.
  double serve_seconds = 0;
  /// End-to-end wall time (construction + sampling + decision + serving).
  double total_seconds = 0;
  /// Sum of construction times over all strategies.
  double construction_seconds = 0;
  /// Sum of sampling times over all strategies.
  double sampling_seconds = 0;
};

/// The optimizer.  Strategies are borrowed (caller owns and outlives the
/// run); Prepare() is called on each by Run().
class Optimus {
 public:
  explicit Optimus(const OptimusOptions& options = {}) : options_(options) {}

  /// Selects and executes the fastest strategy for this (users, items, K)
  /// input.  Requires >= 2 strategies.  *out receives exact top-K for all
  /// users; *report (optional) receives the decision trace.
  Status Run(const ConstRowBlock& users, const ConstRowBlock& items, Index k,
             const std::vector<MipsSolver*>& strategies, TopKResult* out,
             OptimusReport* report = nullptr);

  /// Decision only: builds the indexes, measures the sample, and fills
  /// *winner with the index into `strategies` of the chosen solver —
  /// without serving the full user set.  Used by serving sessions that
  /// answer mini-batches on demand (Section II-A's Clipper-style setting).
  /// All strategies are left Prepared.
  Status Decide(const ConstRowBlock& users, const ConstRowBlock& items,
                Index k, const std::vector<MipsSolver*>& strategies,
                std::size_t* winner, OptimusReport* report = nullptr);

  /// Decide() for strategies that are ALREADY Prepared on (users, items):
  /// skips index construction and only re-runs the sampling measurement.
  /// Used by MipsEngine when a query k diverges from the decision k —
  /// the candidate indexes are k-independent, so rebuilding them would
  /// add construction latency to a serving call for nothing.
  Status DecidePrepared(const ConstRowBlock& users, const ConstRowBlock& items,
                        Index k, const std::vector<MipsSolver*>& strategies,
                        std::size_t* winner, OptimusReport* report = nullptr);

 private:
  struct SampleMeasurement;
  Status DecideInternal(const ConstRowBlock& users,
                        const ConstRowBlock& items, Index k,
                        const std::vector<MipsSolver*>& strategies,
                        bool skip_prepare, OptimusReport* report,
                        SampleMeasurement* sample);

  OptimusOptions options_;
};

}  // namespace mips

#endif  // MIPS_CORE_OPTIMUS_H_
