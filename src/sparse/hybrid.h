// hybrid: density-split execution over a mixed item catalog
// (spec "hybrid:density_threshold=...,postings=...").
//
// Real catalogs are often mixed: a dense head of popular, fully-trained
// items plus a long sparse tail.  Neither pure plan fits — the blocked
// GEMM wastes multiplies on the tail's zeros, the inverted index drowns
// in the head's full posting lists.  The hybrid solver splits the
// prepared items at a per-row density threshold: rows at or above it form
// a gathered dense partition scored with the blocked GEMM, the rest
// become a CSR + inverted-index partition scored with SparseTopKQuery,
// and each user's two partial top-K rows are merged with the exact k-way
// merge (topk/merge.h).
//
// Exactness: every item lives in exactly one partition; the GEMM's
// per-element K-panel chain does not depend on which other rows share the
// matrix, and the sparse walk is bit-for-bit the same chain (see
// sparse/csr_matrix.h) — so the merged rows are bit-for-bit identical to
// an unsharded dense BMM over the whole catalog, ties included (both
// partitions report global item ids, and MergeTopKRows applies the
// library-wide BetterEntry order).
//
// hybrid batches users (the dense partition's GEMM dominates its cost
// profile), so OPTIMUS samples it with batch timings, like bmm/maximus.

#ifndef MIPS_SPARSE_HYBRID_H_
#define MIPS_SPARSE_HYBRID_H_

#include <string>
#include <vector>

#include "solvers/solver.h"
#include "sparse/csr_matrix.h"
#include "sparse/inverted_index.h"

namespace mips {

/// Density-split dense + sparse solver.
class HybridSolver : public MipsSolver {
 public:
  HybridSolver(Real density_threshold, PostingOrder order)
      : density_threshold_(density_threshold), order_(order) {}

  std::string name() const override { return "hybrid"; }
  bool batches_users() const override { return true; }
  std::string representation() const override { return "hybrid"; }

  Status Prepare(const ConstRowBlock& users,
                 const ConstRowBlock& items) override;
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) override;

  /// Partition sizes after Prepare().
  Index dense_items() const { return static_cast<Index>(dense_ids_.size()); }
  Index sparse_items() const {
    return static_cast<Index>(sparse_ids_.size());
  }

 private:
  Real density_threshold_;
  PostingOrder order_;
  ConstRowBlock users_;

  // Both id lists are ascending, so partition-local row order preserves
  // the global item order and remapped ties resolve identically.
  std::vector<Index> dense_ids_;
  std::vector<Index> sparse_ids_;
  Matrix dense_items_;  // gathered rows dense_ids_ of the catalog
  CsrMatrix sparse_csr_;
  InvertedIndex sparse_index_;
  Index batch_rows_ = 0;
};

}  // namespace mips

#endif  // MIPS_SPARSE_HYBRID_H_
