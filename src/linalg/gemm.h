// Blocked, register-tiled dense matrix multiply — the library's "BLAS
// sgemm" substitute.
//
// The dominant operation in this codebase is scoring a block of users
// against a block of items:
//
//     S (m x n)  =  U (m x f)  *  I^T      with U, I row-major,
//
// i.e. a GEMM where the second operand is accessed transposed ("NT" form:
// every S[u][i] is a row-row dot product).  GemmNT implements the BLIS/
// OpenBLAS design: pack panels of both operands into contiguous buffers,
// then drive a register-tiled micro-kernel (MR x NR accumulators) over the
// packed data so FMA vector code runs with no strided loads.  This is what
// gives blocked matrix multiply its "decades of hardware optimization"
// constant factor over naive loops (Section II-B).
//
// The full-tile micro-kernel is selected AT RUNTIME among AVX-512,
// AVX2+FMA, and portable variants (linalg/simd_dispatch.h): the binary
// carries all three, and the first GEMM call installs the fastest
// supported one (or whatever MIPS_GEMM_KERNEL / ForceGemmKernel asks
// for).  All variants compute every C element with the identical IEEE
// FMA sequence, so results are bit-for-bit independent of the choice.
//
// GemmNaiveNT (triple loop) and GemmDotNT (row-dot loop, i.e. repeated
// sdot) are kept as reference points for the micro benchmarks that
// reproduce the paper's "40x over naive inner products" claim.

#ifndef MIPS_LINALG_GEMM_H_
#define MIPS_LINALG_GEMM_H_

#include "linalg/matrix.h"

namespace mips {

class ThreadPool;

/// K-panel depth of the blocked driver: every C element is accumulated in
/// per-panel chains of up to this many fma steps, folded into the output
/// one panel at a time (acc = 0; acc = fma(a, b, acc) over the panel;
/// c += acc).  Exported because the sparse scoring path (src/sparse)
/// replicates exactly this fold over a CSR row to stay bit-for-bit
/// identical to the dense GEMM score.
inline constexpr Index kGemmKPanel = 256;

/// C (m x n) = alpha * A * B^T + beta * C.
///
/// A is m x k row-major, B is n x k row-major (so B^T is k x n), and C is
/// m x n row-major with leading dimension ldc >= n.
void GemmNT(const Real* a, Index m, const Real* b, Index n, Index k,
            Real alpha, Real beta, Real* c, Index ldc);

/// Multi-threaded GemmNT: statically partitions the macro-panels of the
/// larger output dimension (register-tile-aligned slabs of N, or of M)
/// across `pool`.  Each worker runs the serial blocked kernel on its own
/// pack buffers over a disjoint slab of C, with the same K-panel and
/// micro-kernel accumulation order as the serial call — results are
/// bit-for-bit identical to GemmNT without a pool.  Null pool (or one
/// worker) falls back to the serial path.  Must not be called from inside
/// a task already running on `pool` (the internal Wait would deadlock).
void GemmNT(const Real* a, Index m, const Real* b, Index n, Index k,
            Real alpha, Real beta, Real* c, Index ldc, ThreadPool* pool);

/// Convenience overload: resizes *c to (a.rows() x b.rows()) and computes
/// C = A * B^T.
void GemmNT(const ConstRowBlock& a, const ConstRowBlock& b, Matrix* c);

/// C (m x n) = alpha * A (m x k) * B (k x n) + beta * C.  Implemented by
/// transposing B once and delegating to GemmNT; intended for the small
/// f x f basis products (FEXIPRO), not for the hot scoring path.
void GemmNN(const Real* a, Index m, const Real* b, Index n, Index k,
            Real alpha, Real beta, Real* c, Index ldc);

/// y (m) = A (m x k) * x (k): blocked matrix-vector product.
void Gemv(const Real* a, Index m, Index k, const Real* x, Real* y);

/// Reference triple-loop C = A * B^T (+beta*C).  O(mnk) with no blocking;
/// used for correctness tests and the naive baseline benchmark.
void GemmNaiveNT(const Real* a, Index m, const Real* b, Index n, Index k,
                 Real alpha, Real beta, Real* c, Index ldc);

/// Row-by-row dot-product C = A * B^T, i.e. the "repeated sdot" strategy
/// from Section II-B (vectorized dots but no cache blocking).
void GemmDotNT(const Real* a, Index m, const Real* b, Index n, Index k,
               Real* c, Index ldc);

}  // namespace mips

#endif  // MIPS_LINALG_GEMM_H_
