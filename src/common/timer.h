// Wall-clock timing utilities used by the solvers, the OPTIMUS cost
// estimator, and the benchmark harness.
//
// All times are reported in seconds as double.  StageTimer accumulates named
// phases (clustering, index construction, traversal, ...) so benches can
// print the Figure 8-style breakdowns.

#ifndef MIPS_COMMON_TIMER_H_
#define MIPS_COMMON_TIMER_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mips {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time into named stages.  Stages keep first-use order so
/// breakdown tables print deterministically.
///
/// Thread-safe: solvers charge stage time from concurrently-running query
/// calls (e.g. MAXIMUS's traversal stage under a multi-client engine), so
/// every accessor synchronizes internally.  stages() therefore returns a
/// snapshot copy rather than a reference.
class StageTimer {
 public:
  /// Adds `seconds` to stage `name` (creating it on first use).
  void Add(const std::string& name, double seconds) EXCLUDES(mu_);

  /// Runs `fn()` and charges its wall time to stage `name`.
  template <typename Fn>
  auto Time(const std::string& name, Fn&& fn) {
    WallTimer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      Add(name, t.Seconds());
    } else {
      auto result = fn();
      Add(name, t.Seconds());
      return result;
    }
  }

  /// Total over stage `name`; 0 if the stage never ran.
  double Get(const std::string& name) const EXCLUDES(mu_);

  /// Sum over all stages.
  double Total() const EXCLUDES(mu_);

  /// Snapshot of (name, seconds) pairs in first-use order.
  std::vector<std::pair<std::string, double>> stages() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<std::pair<std::string, double>> stages_ GUARDED_BY(mu_);
};

}  // namespace mips

#endif  // MIPS_COMMON_TIMER_H_
