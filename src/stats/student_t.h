// Student-t distribution CDF (via the regularized incomplete beta
// function), used to convert t statistics into p-values for OPTIMUS's
// early-stopping test.

#ifndef MIPS_STATS_STUDENT_T_H_
#define MIPS_STATS_STUDENT_T_H_

namespace mips {

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1], a, b > 0.
double RegularizedIncompleteBeta(double a, double b, double x);

/// P(T <= t) for Student's t with `df` degrees of freedom (df > 0).
double StudentTCdf(double t, double df);

/// Two-sided p-value for an observed t statistic: P(|T| >= |t|).
double StudentTTwoSidedPValue(double t, double df);

}  // namespace mips

#endif  // MIPS_STATS_STUDENT_T_H_
