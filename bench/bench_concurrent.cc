// Closed- and open-loop multi-client serving throughput (Figure 6
// extended into the Clipper-style setting).
//
// Closed loop: the paper's multi-core result parallelizes *inside* one
// query batch (user partitioning); a serving deployment additionally
// faces many independent clients hitting the same MipsEngine.  T client
// threads issue mixed-k TopK mini-batches back-to-back against one
// shared engine for a fixed wall-clock window; the table reports per-T
// throughput (QPS over requests and users) and request latency
// percentiles (p50/p99).  The mixed k values deliberately exercise the
// engine's per-k decision cache — the first request at each new k pays
// the (shared-mutex-serialized) OPTIMUS re-decision; the steady state
// is lock-shared reads.
//
//   bench_concurrent --clients=8 --seconds=2 --k=1,5,10 --threads=0
//
// Open loop (--rates): single-user new-user requests arrive on a
// Poisson process at each offered rate, regardless of how fast the
// server drains them — the regime where request coalescing matters.
// Each rate runs twice through the SAME admission pipeline
// (serve/batching_engine.h): a no-batching baseline (max_batch_rows=1:
// every request is its own 1-row GEMM) and the coalescing configuration
// (--batch_rows/--batch_wait_ms), so the delta is the batching win in
// isolation.  The table reports offered vs achieved QPS, latency
// percentiles over served requests, shed/expired counts (overload
// behavior under --batch_policy), and the realized mean batch size.
//
//   bench_concurrent --rates=100,200,400 --open_seconds=2 \
//       --batch_rows=64 --batch_wait_ms=2 --batch_policy=shed
//
// --threads sizes the engine's internal pool (parallelism inside one
// batch); --clients scales the number of concurrent callers.  On a
// 1-core host expect flat QPS with rising latency as clients grow; on
// real multi-core hardware QPS should scale until cores saturate.
// --json_out additionally writes every measurement (closed and open
// loop) as JSON for checked-in snapshots and CI trend lines.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "serve/batching_engine.h"
#include "shard/sharded_engine.h"

using namespace mips;
using namespace mips::bench;

namespace {

std::vector<std::string> SplitSpecs(const std::string& csv) {
  std::vector<std::string> specs;
  std::string current;
  for (const char c : csv) {
    if (c == ',') {
      if (!current.empty()) specs.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) specs.push_back(current);
  return specs;
}

double Percentile(std::vector<double>* sorted_seconds, double p) {
  if (sorted_seconds->empty()) return 0;
  const std::size_t idx = std::min(
      sorted_seconds->size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_seconds->size())));
  return (*sorted_seconds)[idx];
}

std::vector<double> ParseRateList(const std::string& csv) {
  std::vector<double> rates;
  for (const std::string& spec : SplitSpecs(csv)) {
    const double rate = std::strtod(spec.c_str(), nullptr);
    if (rate > 0) rates.push_back(rate);
  }
  return rates;
}

/// One measurement row, kept for --json_out.
struct ClosedLoopRow {
  std::string label;
  int clients = 0;
  int64_t requests = 0;
  double qps = 0;
  double users_per_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  int64_t redecisions = 0;
};

struct OpenLoopRow {
  std::string mode;  // "no_batching" or "batching"
  double offered_qps = 0;
  int64_t submitted = 0;
  int64_t served = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  double achieved_qps = 0;
  double p50_s = 0;
  double p99_s = 0;
  int64_t batches = 0;
  double mean_batch_rows = 0;
};

/// One closed-loop client sweep (1, 2, 4, ... max_clients) against any
/// engine, expressed as a serve callback so the unsharded and sharded
/// engines run through identical harness code.
void RunSweep(const std::string& label, int max_clients, int batch_size,
              double seconds, const std::vector<Index>& ks, Index num_users,
              const std::function<void(Index, std::span<const Index>,
                                       TopKResult*)>& serve,
              const std::function<int64_t()>& redecisions,
              std::vector<ClosedLoopRow>* json_rows) {
  std::printf("-- %s --\n", label.c_str());
  TablePrinter table({"Clients", "Requests", "QPS", "Users/s", "p50", "p99",
                      "Redecisions"});
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    const int64_t redecisions_before = redecisions();
    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> workers;
    for (int t = 0; t < clients; ++t) {
      workers.emplace_back([&, t]() {
        std::vector<double>& mine = latencies[static_cast<std::size_t>(t)];
        std::vector<Index> batch(static_cast<std::size_t>(batch_size));
        TopKResult out;
        Index cursor = static_cast<Index>(t) * 97 % num_users;
        std::size_t request = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const Index k = ks[request++ % ks.size()];
          for (auto& id : batch) {
            cursor = (cursor + 1) % num_users;
            id = cursor;
          }
          WallTimer timer;
          serve(k, batch, &out);
          mine.push_back(timer.Seconds());
        }
      });
    }
    WallTimer window;
    while (window.Seconds() < seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers) w.join();
    const double elapsed = window.Seconds();

    std::vector<double> all;
    for (const auto& lane : latencies) {
      all.insert(all.end(), lane.begin(), lane.end());
    }
    std::sort(all.begin(), all.end());
    const double qps = static_cast<double>(all.size()) / elapsed;
    ClosedLoopRow row;
    row.label = label;
    row.clients = clients;
    row.requests = static_cast<int64_t>(all.size());
    row.qps = qps;
    row.users_per_s = qps * batch_size;
    row.p50_s = Percentile(&all, 0.50);
    row.p99_s = Percentile(&all, 0.99);
    row.redecisions = redecisions() - redecisions_before;
    if (json_rows != nullptr) json_rows->push_back(row);
    table.AddRow({FmtInt(clients), FmtInt(row.requests), Fmt(qps, 1),
                  Fmt(row.users_per_s, 1), FormatSeconds(row.p50_s),
                  FormatSeconds(row.p99_s), FmtInt(row.redecisions)});
  }
  table.Print();
  std::printf("\n");
}

/// One open-loop run: Poisson arrivals at `offered_qps` for
/// `window_seconds`, submitted asynchronously through a fresh
/// BatchingEngine in front of `engine`.  The arrival thread pre-draws
/// the whole schedule and never blocks on completions (true open loop;
/// use policy=shed so admission cannot block it either).  A collector
/// thread resolves futures in submission order — batches complete FIFO
/// per k, so the timestamp it takes after each get() is the request's
/// completion time to within the (sub-microsecond) bookkeeping cost.
OpenLoopRow RunOpenLoop(const std::string& mode, MipsEngine* engine,
                        const MFModel& model, double offered_qps,
                        double window_seconds, Index k,
                        const BatchingOptions& batching, uint64_t seed) {
  auto created = BatchingEngine::Create(engine, batching);
  created.status().CheckOK();
  BatchingEngine* batcher = created->get();

  const int64_t total = std::max<int64_t>(
      1, static_cast<int64_t>(offered_qps * window_seconds));
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(offered_qps);
  std::vector<double> schedule(static_cast<std::size_t>(total));
  double t = 0;
  for (double& arrival : schedule) {
    // mips-tidy: allow(float-accumulation): Poisson arrival schedule.
    t += gap(rng);
    arrival = t;
  }

  const Index num_users = model.num_users();
  using Clock = std::chrono::steady_clock;
  std::vector<TopKEntry> out(static_cast<std::size_t>(total) *
                             static_cast<std::size_t>(k));
  std::vector<std::future<Status>> futures(static_cast<std::size_t>(total));
  std::vector<Clock::time_point> submit_time(static_cast<std::size_t>(total));
  std::atomic<int64_t> submitted_count{0};

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(total));
  int64_t served = 0, shed = 0, expired = 0, other_errors = 0;
  Clock::time_point last_completion{};

  std::thread collector([&]() {
    for (int64_t i = 0; i < total; ++i) {
      while (submitted_count.load(std::memory_order_acquire) <= i) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      const std::size_t idx = static_cast<std::size_t>(i);
      const Status status = futures[idx].get();
      const Clock::time_point done = Clock::now();
      last_completion = done;
      if (status.ok()) {
        ++served;
        latencies.push_back(
            std::chrono::duration<double>(done - submit_time[idx]).count());
      } else if (status.code() == StatusCode::kResourceExhausted) {
        ++shed;
      } else if (status.code() == StatusCode::kDeadlineExceeded) {
        ++expired;
      } else {
        ++other_errors;
      }
    }
  });

  const Clock::time_point start = Clock::now();
  for (int64_t i = 0; i < total; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const Clock::time_point target =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(schedule[idx]));
    // If we are behind schedule the arrivals burst instead of thinning —
    // that is what "open loop" means.
    if (target > Clock::now()) std::this_thread::sleep_until(target);
    const Index user = static_cast<Index>(i % num_users);
    submit_time[idx] = Clock::now();
    futures[idx] = batcher->SubmitNewUser(model.users.Row(user), k,
                                          &out[idx * static_cast<std::size_t>(k)]);
    submitted_count.store(i + 1, std::memory_order_release);
  }
  collector.join();

  const BatchingEngine::Stats stats = batcher->stats();
  OpenLoopRow row;
  row.mode = mode;
  row.offered_qps = offered_qps;
  row.submitted = total;
  row.served = served;
  row.shed = shed;
  row.expired = expired + other_errors;
  const double elapsed =
      std::chrono::duration<double>(last_completion - start).count();
  row.achieved_qps = elapsed > 0 ? static_cast<double>(served) / elapsed : 0;
  std::sort(latencies.begin(), latencies.end());
  row.p50_s = Percentile(&latencies, 0.50);
  row.p99_s = Percentile(&latencies, 0.99);
  row.batches = stats.batches_dispatched;
  row.mean_batch_rows =
      stats.batches_dispatched > 0
          ? static_cast<double>(stats.served) /
                static_cast<double>(stats.batches_dispatched)
          : 0;
  return row;
}

void WriteJson(const std::string& path, const std::string& model_name,
               const BenchConfig& config, int engine_threads,
               const std::vector<ClosedLoopRow>& closed,
               const std::vector<OpenLoopRow>& open) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"concurrent\",\n");
  std::fprintf(f, "  \"model\": \"%s\",\n", model_name.c_str());
  std::fprintf(f, "  \"scale\": %g,\n", config.scale);
  std::fprintf(f, "  \"engine_threads\": %d,\n", engine_threads);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"closed_loop\": [");
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const ClosedLoopRow& r = closed[i];
    std::fprintf(f,
                 "%s\n    {\"label\": \"%s\", \"clients\": %d, "
                 "\"requests\": %lld, \"qps\": %.1f, \"users_per_s\": %.1f, "
                 "\"p50_s\": %.6g, \"p99_s\": %.6g, \"redecisions\": %lld}",
                 i == 0 ? "" : ",", r.label.c_str(), r.clients,
                 static_cast<long long>(r.requests), r.qps, r.users_per_s,
                 r.p50_s, r.p99_s, static_cast<long long>(r.redecisions));
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"open_loop\": [");
  for (std::size_t i = 0; i < open.size(); ++i) {
    const OpenLoopRow& r = open[i];
    std::fprintf(f,
                 "%s\n    {\"mode\": \"%s\", \"offered_qps\": %.1f, "
                 "\"submitted\": %lld, \"served\": %lld, \"shed\": %lld, "
                 "\"expired\": %lld, \"achieved_qps\": %.1f, "
                 "\"p50_s\": %.6g, \"p99_s\": %.6g, \"batches\": %lld, "
                 "\"mean_batch_rows\": %.2f}",
                 i == 0 ? "" : ",", r.mode.c_str(), r.offered_qps,
                 static_cast<long long>(r.submitted),
                 static_cast<long long>(r.served),
                 static_cast<long long>(r.shed),
                 static_cast<long long>(r.expired), r.achieved_qps, r.p50_s,
                 r.p99_s, static_cast<long long>(r.batches),
                 r.mean_batch_rows);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  int32_t max_clients = 8;
  int32_t batch_size = 16;
  int32_t shards = 0;
  std::string shard_strategy = "contiguous";
  double seconds = 2.0;
  std::string solvers = "bmm,maximus";
  std::string rates;
  double open_seconds = 2.0;
  int32_t open_k = 10;
  int32_t batch_rows = 64;
  double batch_wait_ms = 2.0;
  std::string batch_policy = "shed";
  int32_t queue_rows = 1024;
  double deadline_ms = 0;
  int32_t executors = 2;
  std::string json_out;
  flags.Int32("clients", &max_clients,
              "max concurrent client threads (sweeps 1,2,4,... up to this)");
  flags.Int32("batch", &batch_size, "users per TopK request");
  flags.Int32("shards", &shards,
              "also sweep a ShardedMipsEngine with this many item shards "
              "(0 = unsharded only) and report the overhead vs the "
              "unsharded baseline");
  flags.String("shard_strategy", &shard_strategy,
               "item placement for --shards: contiguous or hash");
  flags.Double("seconds", &seconds, "measurement window per client count");
  flags.String("solvers", &solvers, "engine candidate specs, comma-separated");
  flags.String("rates", &rates,
               "open-loop offered rates in requests/s, comma-separated "
               "(empty = closed loop only); each rate runs a no-batching "
               "baseline and the --batch_rows coalescing config");
  flags.Double("open_seconds", &open_seconds,
               "open-loop arrival window per rate");
  flags.Int32("open_k", &open_k, "k for open-loop new-user requests");
  flags.Int32("batch_rows", &batch_rows,
              "open loop: max coalesced rows per dispatched batch");
  flags.Double("batch_wait_ms", &batch_wait_ms,
               "open loop: bounded-delay flush timeout");
  flags.String("batch_policy", &batch_policy,
               "open loop overload policy: shed, block, or drop_expired "
               "(block stalls the Poisson arrival thread at the bound, "
               "turning the run closed-loop under overload)");
  flags.Int32("queue_rows", &queue_rows,
              "open loop: admission bound on outstanding rows");
  flags.Double("deadline_ms", &deadline_ms,
               "open loop: per-request deadline (0 = none)");
  flags.Int32("executors", &executors,
              "open loop: batch executor threads");
  flags.String("json_out", &json_out,
               "write all measurements to this file as JSON");
  config.ks = "1,5,10";
  ParseBenchFlags(argc, argv, &flags, &config);

  auto preset = FindModelPreset("netflix-nomad-50");
  preset.status().CheckOK();
  const MFModel model = MakeBenchModel(*preset, config);
  const std::vector<Index> ks = ParseKList(config.ks);

  EngineOptions options;
  options.k = ks.empty() ? 10 : ks.front();
  options.solvers = SplitSpecs(solvers);
  options.threads = config.threads > 1 ? config.threads : 0;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  engine.status().CheckOK();

  std::printf(
      "== Concurrent serving: %s (%d users, %d items), batch=%d, "
      "ks=%s, engine threads=%d ==\n",
      preset->display_name.c_str(), model.num_users(), model.num_items(),
      batch_size, config.ks.c_str(), options.threads);
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  const Index num_users = model.num_users();
  std::vector<ClosedLoopRow> closed_rows;
  std::vector<OpenLoopRow> open_rows;
  RunSweep("unsharded baseline", max_clients, batch_size, seconds, ks,
           num_users,
           [&](Index k, std::span<const Index> batch, TopKResult* out) {
             (*engine)->TopK(k, batch, out).CheckOK();
           },
           [&]() { return (*engine)->stats().redecisions; }, &closed_rows);

  if (shards > 1) {
    auto strategy = ParseShardingStrategy(shard_strategy);
    strategy.status().CheckOK();
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.sharding = *strategy;
    sharded_options.engine = options;
    sharded_options.threads = options.threads;
    auto sharded = ShardedMipsEngine::Open(ConstRowBlock(model.users),
                                           ConstRowBlock(model.items),
                                           sharded_options);
    sharded.status().CheckOK();
    RunSweep("sharded: " + std::to_string(shards) + " " + shard_strategy +
                 " item shards",
             max_clients, batch_size, seconds, ks, num_users,
             [&](Index k, std::span<const Index> batch, TopKResult* out) {
               (*sharded)->TopK(k, batch, out).CheckOK();
             },
             [&]() { return (*sharded)->stats().redecisions; }, &closed_rows);

    // Per-shard decision summary: the paper's point is that the winner is
    // data-dependent, so heterogeneous shards should show heterogeneous
    // choices — and the re-decision column shows what the mixed-k stream
    // cost each shard.
    TablePrinter shard_table({"Shard", "Items", "Opening choice", "Serving",
                              "Redecisions", "Cache hit/miss"});
    const ShardedMipsEngine::Stats stats = (*sharded)->stats();
    for (int s = 0; s < (*sharded)->num_shards(); ++s) {
      const auto& shard = stats.shards[static_cast<std::size_t>(s)];
      shard_table.AddRow(
          {FmtInt(s), FmtInt(shard.num_items),
           shard.opening_choice.empty() ? "-" : shard.opening_choice,
           shard.strategy.empty() ? "-" : shard.strategy,
           FmtInt(shard.stats.redecisions),
           FmtInt(shard.stats.decision_cache_hits) + "/" +
               FmtInt(shard.stats.decision_cache_misses)});
    }
    shard_table.Print();
    std::printf("\n");
  }

  std::printf(
      "Closed loop: each client issues its next request as soon as the "
      "previous one returns.  Re-decisions only appear in the first "
      "window (the per-k cache is shared and persistent).\n");

  const std::vector<double> open_rates = ParseRateList(rates);
  if (!open_rates.empty()) {
    // A dedicated engine with shape-keyed decisions: OPTIMUS re-decides
    // per realized batch size, so 1-row baseline traffic and 64-row
    // coalesced batches each get the winner for *their* shape.
    EngineOptions open_options = options;
    open_options.k = open_k;
    open_options.redecide_on_new_k = true;
    open_options.batch_shape_decisions = true;
    auto open_engine = MipsEngine::Open(ConstRowBlock(model.users),
                                        ConstRowBlock(model.items),
                                        open_options);
    open_engine.status().CheckOK();

    auto policy = ParseOverloadPolicy(batch_policy);
    policy.status().CheckOK();
    BatchingOptions coalescing;
    coalescing.max_batch_rows = batch_rows;
    coalescing.max_wait_ms = batch_wait_ms;
    coalescing.max_queue_rows = std::max<Index>(queue_rows, batch_rows);
    coalescing.overload_policy = *policy;
    coalescing.default_deadline_ms = deadline_ms;
    coalescing.executor_threads = executors;
    BatchingOptions singleton = coalescing;
    singleton.max_batch_rows = 1;
    singleton.max_queue_rows = std::max<Index>(queue_rows, 1);

    std::printf(
        "\n== Open loop: Poisson arrivals, k=%d, %.1fs per rate, "
        "policy=%s, batch_rows=%d, wait=%.1fms ==\n",
        open_k, open_seconds, ToString(*policy), batch_rows, batch_wait_ms);
    TablePrinter open_table({"Mode", "Offered", "Achieved", "Served", "Shed",
                             "Expired", "p50", "p99", "Rows/batch"});
    uint64_t seed = config.seed;
    struct ModeConfig {
      const char* name;
      const BatchingOptions* opts;
    };
    const ModeConfig modes[] = {{"no_batching", &singleton},
                                {"batching", &coalescing}};
    for (const double rate : open_rates) {
      for (const ModeConfig& mode : modes) {
        const OpenLoopRow row =
            RunOpenLoop(mode.name, open_engine->get(), model, rate,
                        open_seconds, open_k, *mode.opts, ++seed);
        open_rows.push_back(row);
        open_table.AddRow({row.mode, Fmt(row.offered_qps, 1),
                           Fmt(row.achieved_qps, 1), FmtInt(row.served),
                           FmtInt(row.shed), FmtInt(row.expired),
                           FormatSeconds(row.p50_s), FormatSeconds(row.p99_s),
                           Fmt(row.mean_batch_rows, 2)});
      }
    }
    open_table.Print();
    std::printf(
        "\nOpen loop: arrivals do not wait for completions; under "
        "overload the %s policy decides what gives.  Both modes run the "
        "same admission pipeline — no_batching pins max_batch_rows=1.\n",
        ToString(*policy));
  }

  if (!json_out.empty()) {
    WriteJson(json_out, preset->display_name, config, options.threads,
              closed_rows, open_rows);
  }
  return 0;
}
