// mips-float-accumulation GOOD fixture: the sanctioned ways to sum
// floating-point values.  Must produce no diagnostics.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

using Real = float;

// Stands in for the dispatched kernel entry point (linalg/blas.h): the
// check exempts accumulation of Dot results by callee name.
Real Dot(const Real* a, const Real* b, int n);

Real CheckpointedFold(const Real* a, const Real* b,
                      const std::vector<int>& checkpoints, int n) {
  Real partial = 0;
  int start = 0;
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    // Accumulating KERNEL results over a fixed segmentation: the inner
    // reduction order is pinned inside Dot, the outer fold is source
    // structure.  This is the LEMP incremental-pruning idiom.
    partial += Dot(a + start, b + start, checkpoints[c] - start);
    start = checkpoints[c];
  }
  partial += Dot(a + start, b + start, n - start);
  return partial;
}

int64_t IntegerAccumulation(const int32_t* xs, int n) {
  int64_t acc = 0;
  // Integer sums are associative; no reduction-order hazard.
  for (int i = 0; i < n; ++i) acc += xs[i];
  return acc;
}

double WaivedTimingSum(const std::vector<double>& stage_seconds) {
  double total = 0;
  for (double s : stage_seconds) {
    // mips-tidy: allow(float-accumulation): timing aggregation, not a score
    total += s;
  }
  return total;
}

double WaivedWithWrappedReason(const std::vector<double>& stage_seconds) {
  double total = 0;
  for (double s : stage_seconds) {
    // The mandatory reason often wraps onto continuation lines, leaving
    // the tag two or three comment lines above the statement; the check
    // must honour the whole contiguous comment block.
    // mips-tidy: allow(float-accumulation): timing aggregation whose
    // justification deliberately spans multiple comment lines to pin
    // the multi-line suppression behaviour.
    total += s;
  }
  return total;
}

Real LambdaDefinedInsideLoop(const Real* a, const Real* b, int n) {
  Real out = 0;
  for (int i = 0; i < n; ++i) {
    // The lambda body runs once per CALL, not once per iteration of the
    // lexically enclosing loop — no reduction order is introduced here.
    auto fold_once = [](Real x, Real y) {
      Real acc = x;
      acc += y;
      return acc;
    };
    out = fold_once(out, Dot(a + i, b + i, 1));
  }
  return out;
}

Real NotInALoop(Real a, Real b) {
  Real acc = a;
  acc += b;  // a single fold is one order by construction
  return acc;
}

}  // namespace fixture
