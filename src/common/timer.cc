#include "common/timer.h"

namespace mips {

void StageTimer::Add(const std::string& name, double seconds) {
  MutexLock lock(mu_);
  for (auto& [stage, total] : stages_) {
    if (stage == name) {
      // mips-tidy: allow(float-accumulation): wall-clock bookkeeping.
      total += seconds;
      return;
    }
  }
  stages_.emplace_back(name, seconds);
}

double StageTimer::Get(const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& [stage, total] : stages_) {
    if (stage == name) return total;
  }
  return 0.0;
}

double StageTimer::Total() const {
  MutexLock lock(mu_);
  double sum = 0.0;
  // mips-tidy: allow(float-accumulation): wall-clock bookkeeping.
  for (const auto& [stage, total] : stages_) sum += total;
  return sum;
}

std::vector<std::pair<std::string, double>> StageTimer::stages() const {
  MutexLock lock(mu_);
  return stages_;
}

void StageTimer::Clear() {
  MutexLock lock(mu_);
  stages_.clear();
}

}  // namespace mips
