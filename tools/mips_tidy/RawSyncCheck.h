// mips-raw-sync
//
// Rationale (in the spirit of the .clang-tidy header: every check here is
// a contract, not a preference):
//
//   The compile-time locking contract (PR 6) only covers state the
//   thread-safety analysis can see, and the analysis only sees mutexes
//   that carry capability attributes — i.e. the annotated Mutex /
//   SharedMutex / CondVar wrappers in src/common/mutex.h.  A raw
//   std::mutex is invisible to it: guarded members cannot name it in
//   GUARDED_BY, functions cannot REQUIRES it, and the clang-threadsafety
//   CI leg silently proves nothing about any state it protects.  PR 2's
//   unlocked LEMP calibration was exactly this hole.  Therefore any use
//   of the raw std synchronisation vocabulary outside src/common/ (where
//   the wrappers themselves live) is an error.
//
// Suppression: `// mips-tidy: allow(raw-sync): <reason>` on the line or
// the line above — legitimate only in code that interoperates with an
// external API that hands us a std lock type.

#ifndef MIPS_TOOLS_MIPS_TIDY_RAW_SYNC_CHECK_H_
#define MIPS_TOOLS_MIPS_TIDY_RAW_SYNC_CHECK_H_

#include <set>
#include <utility>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::mips {

class RawSyncCheck : public ClangTidyCheck {
 public:
  RawSyncCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  /// Paths where the raw std types are allowed (the wrapper TUs).
  const std::string ExemptPathPattern;
  llvm::Regex ExemptPathRegex;
  /// One diagnostic per source location even if several TypeLocs land on
  /// the same spelling (elaborated + named type, template args, ...).
  std::set<std::pair<unsigned, unsigned>> ReportedOffsets;
};

}  // namespace clang::tidy::mips

#endif  // MIPS_TOOLS_MIPS_TIDY_RAW_SYNC_CHECK_H_
