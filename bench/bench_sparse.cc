// Sparse & hybrid MIPS: density sweep.
//
// Generates one synthetic model, sparsifies its item catalog to each
// density in --densities (plus a dense head when --dense_fraction > 0),
// and times the dense BMM baseline against the sindi inverted-index
// walks (abs-ordered with cutoffs, id-ordered TAAT) and the hybrid
// density split.  Every strategy is exact — the sweep shows WHERE the
// sparse plans overtake the dense GEMM, which is exactly the arbitration
// OPTIMUS performs at serve time (the last column runs it and reports
// the chosen representation).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "sparse/csr_matrix.h"

using namespace mips;
using namespace mips::bench;

namespace {

std::vector<double> ParseDensities(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t sep = csv.find(',', pos);
    if (sep == std::string::npos) sep = csv.size();
    const std::string tok = csv.substr(pos, sep - pos);
    if (!tok.empty()) out.push_back(std::stod(tok));
    pos = sep + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  int32_t users = 4096;
  int32_t items = 8192;
  int32_t factors = 128;
  int32_t k = 10;
  int32_t threads = 1;
  std::string densities_csv = "0.01,0.05,0.1,0.25,0.5,1.0";
  double dense_fraction = 0.0;
  int64_t seed = 7;
  flags.Int32("users", &users, "user count");
  flags.Int32("items", &items, "item count");
  flags.Int32("factors", &factors, "factor dimension");
  flags.Int32("k", &k, "top-K size");
  flags.Int32("threads", &threads, "worker threads per solver (0 = serial)");
  flags.String("densities", &densities_csv,
               "comma-separated item densities to sweep");
  flags.Double("dense_fraction", &dense_fraction,
               "fraction of item rows kept fully dense at each density "
               "(mixed catalogs; exercises the hybrid split)");
  flags.Int64("seed", &seed, "model seed");
  flags.Parse(argc, argv).CheckOK();

  std::printf("== Sparse & hybrid MIPS density sweep (%d users x %d items, "
              "f=%d, k=%d, threads=%d) ==\n",
              users, items, factors, k, threads);
  TablePrinter table({"density", "nnz/row", "bmm", "sindi(abs)", "sindi(id)",
                      "hybrid", "abs/bmm", "OPTIMUS pick"});
  for (const double density : ParseDensities(densities_csv)) {
    SyntheticModelConfig config;
    config.num_users = users;
    config.num_items = items;
    config.num_factors = factors;
    config.seed = static_cast<uint64_t>(seed);
    config.item_density = static_cast<Real>(density);
    config.dense_item_fraction = static_cast<Real>(dense_fraction);
    auto model = GenerateSyntheticModel(config);
    model.status().CheckOK();
    const CsrMatrix::Stats stats =
        CsrMatrix::FromDense(ConstRowBlock(model->items)).ComputeStats();

    ThreadPool pool(threads > 0 ? threads : 1);
    const auto time_spec = [&](const std::string& spec) {
      auto solver = MakeSolver(spec);
      if (threads > 0) solver->set_thread_pool(&pool);
      return TimeEndToEnd(solver.get(), *model, k).total();
    };
    const double t_bmm = time_spec("bmm");
    const double t_abs = time_spec("sindi:postings=abs");
    const double t_id = time_spec("sindi:postings=id");
    const double t_hybrid = time_spec("hybrid");

    // What would OPTIMUS serve here?  One engine over the dense and
    // sparse plans; the report attributes the winning representation.
    EngineOptions options;
    options.k = k;
    options.solvers = {"bmm", "sindi"};
    options.threads = threads;
    auto engine = MipsEngine::Open(ConstRowBlock(model->users),
                                   ConstRowBlock(model->items), options);
    engine.status().CheckOK();
    const OptimusReport& report = (*engine)->decision_report();

    table.AddRow({Fmt(stats.density, 3), Fmt(stats.mean_row_nnz, 1),
                  FormatSeconds(t_bmm), FormatSeconds(t_abs),
                  FormatSeconds(t_id), FormatSeconds(t_hybrid),
                  Fmt(t_abs / t_bmm, 2) + "x",
                  report.chosen + " (" + report.representation + ")"});
  }
  table.Print();
  std::printf(
      "\nExpected shape: at low density the inverted-index walk skips most "
      "of the multiplies and wins; near density 1 the blocked GEMM's "
      "hardware efficiency dominates.  All cells are exact solvers — the "
      "sweep locates the crossover OPTIMUS arbitrates automatically.\n");
  return 0;
}
