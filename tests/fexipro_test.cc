// Tests for the FEXIPRO reproduction: each transform in isolation (SVD
// preserves inner products and concentrates energy; the integer bound is a
// true upper bound; the reduction preserves inner products and makes items
// non-negative), then end-to-end exactness for SI and SIR.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "solvers/bmm.h"
#include "solvers/fexipro/fexipro.h"
#include "solvers/fexipro/transforms.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::ExpectValidTopK;
using ::mips::testing::MakeTestModel;
using ::mips::testing::RandomMatrix;

// ------------------------------------------------------------------ SVD

TEST(SvdTransformTest, PreservesInnerProductsAndNorms) {
  const MFModel model = MakeTestModel(20, 100, 12, 3);
  auto t = fexipro::ComputeSvdTransform(ConstRowBlock(model.items), 0.8);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  std::vector<Real> tu(12);
  std::vector<Real> ti(12);
  for (Index u = 0; u < 5; ++u) {
    t->Apply(model.users.Row(u), tu.data());
    EXPECT_NEAR(Nrm2(tu.data(), 12), Nrm2(model.users.Row(u), 12), 1e-9);
    for (Index i = 0; i < 10; ++i) {
      t->Apply(model.items.Row(i), ti.data());
      EXPECT_NEAR(Dot(tu.data(), ti.data(), 12),
                  Dot(model.users.Row(u), model.items.Row(i), 12), 1e-9);
    }
  }
}

TEST(SvdTransformTest, ConcentratesEnergyInHead) {
  const MFModel model = MakeTestModel(10, 400, 16, 5);
  auto t = fexipro::ComputeSvdTransform(ConstRowBlock(model.items), 0.7);
  ASSERT_TRUE(t.ok());
  EXPECT_GE(t->head_dims, 1);
  EXPECT_LE(t->head_dims, 16);
  EXPECT_GE(t->captured_energy, 0.7);

  // Per-coordinate energy of the transformed items must be non-increasing
  // (coordinates ordered by singular value).
  const Matrix transformed =
      fexipro::ApplySvdToRows(*t, ConstRowBlock(model.items));
  std::vector<Real> energy(16, 0);
  for (Index r = 0; r < transformed.rows(); ++r) {
    for (Index c = 0; c < 16; ++c) {
      // mips-tidy: allow(float-accumulation): per-coordinate energy check
      // of the SVD rotation, compared with a relative tolerance.
      energy[static_cast<std::size_t>(c)] +=
          transformed(r, c) * transformed(r, c);
    }
  }
  for (std::size_t c = 1; c < energy.size(); ++c) {
    EXPECT_LE(energy[c], energy[c - 1] * (1 + 1e-9));
  }
}

TEST(SvdTransformTest, ApplyToRowsMatchesApply) {
  const MFModel model = MakeTestModel(4, 30, 8, 7);
  auto t = fexipro::ComputeSvdTransform(ConstRowBlock(model.items), 0.9);
  ASSERT_TRUE(t.ok());
  const Matrix rows = fexipro::ApplySvdToRows(*t, ConstRowBlock(model.items));
  std::vector<Real> single(8);
  for (Index r = 0; r < 30; ++r) {
    t->Apply(model.items.Row(r), single.data());
    for (Index c = 0; c < 8; ++c) {
      EXPECT_NEAR(rows(r, c), single[static_cast<std::size_t>(c)], 1e-9);
    }
  }
}

TEST(SvdTransformTest, FullEnergyUsesAllDims) {
  const MFModel model = MakeTestModel(4, 50, 6, 9);
  auto t = fexipro::ComputeSvdTransform(ConstRowBlock(model.items), 1.0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->head_dims, 6);
}

TEST(SvdTransformTest, RejectsBadArguments) {
  Matrix empty;
  EXPECT_FALSE(fexipro::ComputeSvdTransform(ConstRowBlock(empty), 0.5).ok());
  const MFModel model = MakeTestModel(4, 10, 4, 11);
  EXPECT_FALSE(
      fexipro::ComputeSvdTransform(ConstRowBlock(model.items), 0.0).ok());
  EXPECT_FALSE(
      fexipro::ComputeSvdTransform(ConstRowBlock(model.items), 1.5).ok());
}

// -------------------------------------------------------------- Integer

TEST(QuantizerTest, RoundTripAccuracy) {
  Rng rng(13);
  std::vector<Real> x(64);
  Real max_abs = 0;
  for (auto& v : x) {
    v = rng.Normal();
    max_abs = std::max(max_abs, std::abs(v));
  }
  const auto q = fexipro::MakeQuantizer(max_abs);
  std::vector<int16_t> qx(64);
  q.Quantize(x.data(), 64, qx.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(static_cast<Real>(qx[i]) / q.scale, x[i],
                0.51 / q.scale);  // rounding error <= 1/2 quantum
  }
}

TEST(QuantizerTest, ZeroMaxAbsIsSafe) {
  const auto q = fexipro::MakeQuantizer(0.0);
  EXPECT_EQ(q.scale, 1.0);
  std::vector<Real> x = {0, 0};
  std::vector<int16_t> qx(2);
  q.Quantize(x.data(), 2, qx.data());
  EXPECT_EQ(qx[0], 0);
}

TEST(QuantizerTest, DotAndL1) {
  std::vector<int16_t> a = {1, -2, 3};
  std::vector<int16_t> b = {4, 5, -6};
  EXPECT_EQ(fexipro::DotInt16(a.data(), b.data(), 3), 4 - 10 - 18);
  EXPECT_EQ(fexipro::L1Int16(a.data(), 3), 6);
}

TEST(QuantizerTest, DotInt16NoOverflowAtExtremes) {
  // 256 dims of +/-32767 exercises accumulation well past int32 range.
  std::vector<int16_t> a(256, 32767);
  std::vector<int16_t> b(256, 32767);
  EXPECT_EQ(fexipro::DotInt16(a.data(), b.data(), 256),
            256ll * 32767ll * 32767ll);
}

// Property: the quantized bound is always >= the true inner product.
TEST(QuantizerTest, UpperBoundProperty) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const Index n = 1 + static_cast<Index>(rng.UniformInt(64));
    std::vector<Real> x(static_cast<std::size_t>(n));
    std::vector<Real> y(static_cast<std::size_t>(n));
    Real mx = 0;
    Real my = 0;
    for (Index i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = rng.Normal(0, 2);
      y[static_cast<std::size_t>(i)] = rng.Normal(0, 3);
      mx = std::max(mx, std::abs(x[static_cast<std::size_t>(i)]));
      my = std::max(my, std::abs(y[static_cast<std::size_t>(i)]));
    }
    const auto qx = fexipro::MakeQuantizer(mx);
    const auto qy = fexipro::MakeQuantizer(my);
    std::vector<int16_t> ix(static_cast<std::size_t>(n));
    std::vector<int16_t> iy(static_cast<std::size_t>(n));
    qx.Quantize(x.data(), n, ix.data());
    qy.Quantize(y.data(), n, iy.data());
    const Real bound = fexipro::QuantizedUpperBound(
        fexipro::DotInt16(ix.data(), iy.data(), n),
        fexipro::L1Int16(ix.data(), n), fexipro::L1Int16(iy.data(), n), n,
        qx.scale, qy.scale);
    const Real truth = Dot(x.data(), y.data(), n);
    EXPECT_GE(bound, truth - 1e-9) << "trial " << trial << " n " << n;
    // And not absurdly loose: within the analytic worst case.
    EXPECT_LE(bound - truth,
              (static_cast<Real>(fexipro::L1Int16(ix.data(), n)) +
               static_cast<Real>(fexipro::L1Int16(iy.data(), n)) + n) /
                  (qx.scale * qy.scale));
  }
}

// ------------------------------------------------------------ Reduction

TEST(ReductionTest, ItemsBecomeNonNegativeAndDotsArePreserved) {
  const MFModel model = MakeTestModel(10, 80, 9, 19);
  const auto t = fexipro::MakeReduction(ConstRowBlock(model.items));
  ASSERT_EQ(t.in_dims(), 9);
  ASSERT_EQ(t.out_dims(), 10);
  std::vector<Real> item_out(10);
  std::vector<Real> user_out(10);
  for (Index i = 0; i < 80; ++i) {
    t.ApplyToItem(model.items.Row(i), item_out.data());
    for (Real v : item_out) EXPECT_GE(v, -1e-12);
    EXPECT_DOUBLE_EQ(item_out[9], 1.0);
    for (Index u = 0; u < 5; ++u) {
      t.ApplyToQuery(model.users.Row(u), user_out.data());
      EXPECT_NEAR(Dot(user_out.data(), item_out.data(), 10),
                  Dot(model.users.Row(u), model.items.Row(i), 9), 1e-9);
    }
  }
}

TEST(ReductionTest, NonNegativeItemsNeedNoShift) {
  Matrix items(3, 2);
  items(0, 0) = 1;
  items(1, 1) = 2;
  items(2, 0) = 0.5;
  const auto t = fexipro::MakeReduction(ConstRowBlock(items));
  EXPECT_EQ(t.shift[0], 0.0);
  EXPECT_EQ(t.shift[1], 0.0);
}

// ------------------------------------------------------------ End-to-end

class FexiproExactnessTest
    : public ::testing::TestWithParam<std::tuple<int, bool, double>> {};

TEST_P(FexiproExactnessTest, MatchesBruteForce) {
  const auto [k, use_reduction, norm_sigma] = GetParam();
  const MFModel model =
      MakeTestModel(80, 300, 16, /*seed=*/21, /*norm_sigma=*/norm_sigma);
  FexiproOptions options;
  options.use_reduction = use_reduction;
  FexiproSolver fexipro(options);
  BmmSolver bmm;
  ASSERT_TRUE(fexipro.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(fexipro.TopKAll(k, &got).ok());
  ASSERT_TRUE(bmm.TopKAll(k, &expected).ok());
  ExpectSameTopKScores(got, expected);
  ExpectValidTopK(got, AllUsers(80), model);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FexiproExactnessTest,
    ::testing::Combine(::testing::Values(1, 5, 10),
                       ::testing::Bool(),
                       ::testing::Values(0.05, 0.9)));

TEST(FexiproSolverTest, NamesDependOnVariant) {
  FexiproSolver si;
  FexiproOptions options;
  options.use_reduction = true;
  FexiproSolver sir(options);
  EXPECT_EQ(si.name(), "fexipro-si");
  EXPECT_EQ(sir.name(), "fexipro-sir");
  EXPECT_FALSE(si.batches_users());
}

TEST(FexiproSolverTest, PrunesOnSkewedNorms) {
  const MFModel model =
      MakeTestModel(60, 2000, 16, /*seed=*/25, /*norm_sigma=*/1.2);
  FexiproSolver fexipro;
  ASSERT_TRUE(fexipro.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(fexipro.TopKAll(1, &out).ok());
  EXPECT_LT(fexipro.last_exact_fraction(), 0.25);
}

TEST(FexiproSolverTest, KLargerThanItemsPads) {
  const MFModel model = MakeTestModel(5, 3, 4, 27);
  FexiproSolver fexipro;
  ASSERT_TRUE(fexipro.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(fexipro.TopKAll(5, &out).ok());
  for (Index u = 0; u < 5; ++u) {
    EXPECT_GE(out.Row(u)[2].item, 0);
    EXPECT_EQ(out.Row(u)[3].item, -1);
  }
}

TEST(FexiproSolverTest, ZeroNormUserHandled) {
  MFModel model = MakeTestModel(6, 40, 5, 29);
  for (Index c = 0; c < 5; ++c) model.users(1, c) = 0;
  FexiproSolver fexipro;
  BmmSolver bmm;
  ASSERT_TRUE(fexipro.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(fexipro.TopKAll(2, &got).ok());
  ASSERT_TRUE(bmm.TopKAll(2, &expected).ok());
  ExpectSameTopKScores(got, expected);
}

TEST(FexiproSolverTest, QueryBeforePrepareFails) {
  FexiproSolver fexipro;
  TopKResult out;
  EXPECT_EQ(fexipro.TopKForUsers(1, {}, &out).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FexiproSolverTest, ConstructionStageRecorded) {
  const MFModel model = MakeTestModel(10, 60, 8, 33);
  FexiproSolver fexipro;
  ASSERT_TRUE(fexipro.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  EXPECT_GT(fexipro.stage_timer().Get("construction"), 0.0);
  EXPECT_GE(fexipro.head_dims(), 1);
}

}  // namespace
}  // namespace mips
