// Koenigstein-style approximate cluster top-K (Related Work, Section VI).
//
// The original use of the user-clustering idea: precompute each cluster
// centroid's exact top-K and serve it verbatim to every member.  Fast but
// approximate — MAXIMUS turns the same bound into an exact method.  We keep
// the approximate variant as a baseline and to measure how much accuracy
// the exact walk buys (recall measurement below).

#ifndef MIPS_CORE_APPROX_CLUSTER_H_
#define MIPS_CORE_APPROX_CLUSTER_H_

#include <cstdint>

#include "cluster/kmeans.h"
#include "common/status.h"
#include "topk/result.h"

namespace mips {

/// Options for the approximate cluster server.
struct ApproxClusterOptions {
  Index num_clusters = 64;
  int kmeans_iterations = 5;
  /// Spherical clustering (the original paper's choice) or plain k-means.
  bool spherical = true;
  uint64_t seed = 42;
};

/// Serves every user its cluster centroid's exact top-K.
class ApproxClusterTopK {
 public:
  explicit ApproxClusterTopK(const ApproxClusterOptions& options = {})
      : options_(options) {}

  /// Clusters the users and computes each centroid's exact top-K' lists
  /// lazily per query K.
  Status Prepare(const ConstRowBlock& users, const ConstRowBlock& items);

  /// Approximate top-K for all prepared users.  Scores reported are the
  /// *user's own* inner products with the centroid's top items (so recall
  /// and rating distortion can be evaluated against exact results).
  Status TopKAll(Index k, TopKResult* out);

  const Clustering& clustering() const { return clustering_; }

 private:
  ApproxClusterOptions options_;
  ConstRowBlock users_;
  ConstRowBlock items_;
  Clustering clustering_;
};

/// Mean fraction of each row's exact top-K item set recovered by the
/// approximate result (recall@K).  Requires identical shapes.
double MeanRecallAtK(const TopKResult& approx, const TopKResult& exact);

}  // namespace mips

#endif  // MIPS_CORE_APPROX_CLUSTER_H_
