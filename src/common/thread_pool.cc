#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/dcheck.h"

namespace mips {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  // Workers drain the queue before exiting (WorkerLoop only returns on
  // shutting_down_ AND an empty queue), so join implies every task
  // submitted before this destructor began has run.
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (!shutting_down_) {
      queue_.push(std::move(task));
      task = nullptr;
    }
    // Shutdown already began: fall through and run inline below, outside
    // the lock.  The workers are retiring, so an enqueued task could be
    // stranded after the last worker checks the queue.
  }
  if (task != nullptr) {
    task();
    return;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) {
    all_idle_.Wait(lock);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(lock);
      }
      if (queue_.empty()) {
        // shutting_down_ must hold: the wait above only exits on work or
        // shutdown.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      MIPS_DCHECK_GE(in_flight_, 0);
      if (queue_.empty() && in_flight_ == 0) all_idle_.NotifyAll();
    }
  }
}

std::vector<RangeChunk> SplitRange(int64_t n, int parts) {
  const int p = std::max(1, parts);
  std::vector<RangeChunk> chunks(static_cast<std::size_t>(p));
  const int64_t base = n / p;
  const int64_t extra = n % p;
  int64_t pos = 0;
  for (int i = 0; i < p; ++i) {
    const int64_t len = base + (i < extra ? 1 : 0);
    chunks[static_cast<std::size_t>(i)] = {pos, pos + len};
    pos += len;
  }
  return chunks;
}

}  // namespace mips
