#include "cluster/spherical.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/gemm.h"

namespace mips {
namespace {

// Normalizes every row to unit length in place; zero rows are left as-is.
void NormalizeRows(Matrix* m) {
  for (Index r = 0; r < m->rows(); ++r) {
    const Real norm = Nrm2(m->Row(r), m->cols());
    if (norm > 0) Scale(Real{1} / norm, m->Row(r), m->cols());
  }
}

// Assignment by maximum dot product against unit-norm centroids, which for
// unit centroids equals maximum cosine similarity.
void AssignByCosine(const ConstRowBlock& points, const Matrix& centroids,
                    std::vector<Index>* assignment) {
  const Index n = points.rows();
  const Index k = centroids.rows();
  assignment->assign(static_cast<std::size_t>(n), 0);
  constexpr Index kBatch = 1024;
  Matrix scores;
  for (Index begin = 0; begin < n; begin += kBatch) {
    const Index b = std::min(kBatch, n - begin);
    GemmNT(ConstRowBlock(points.Row(begin), b, points.cols()),
           ConstRowBlock(centroids), &scores);
    for (Index r = 0; r < b; ++r) {
      const Real* srow = scores.Row(r);
      Index best = 0;
      Real best_val = srow[0];
      for (Index c = 1; c < k; ++c) {
        if (srow[c] > best_val) {
          best_val = srow[c];
          best = c;
        }
      }
      (*assignment)[static_cast<std::size_t>(begin + r)] = best;
    }
  }
}

}  // namespace

Status SphericalKMeans(const ConstRowBlock& points,
                       const KMeansOptions& options, Clustering* out) {
  const Index n = points.rows();
  const Index f = points.cols();
  if (n <= 0 || f <= 0) {
    return Status::InvalidArgument(
        "spherical k-means needs a non-empty point set");
  }
  if (options.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  const Index k = std::min<Index>(options.num_clusters, n);
  Rng rng(options.seed);

  // Seed with k distinct input rows, normalized.
  out->centroids.Resize(k, f);
  std::vector<Index> perm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (Index i = 0; i < k; ++i) {
    const Index j = i + static_cast<Index>(
                            rng.UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
    std::copy_n(points.Row(perm[static_cast<std::size_t>(i)]), f,
                out->centroids.Row(i));
  }
  NormalizeRows(&out->centroids);

  out->iterations = 0;
  for (int iter = 0; iter < std::max(1, options.max_iterations); ++iter) {
    AssignByCosine(points, out->centroids, &out->assignment);

    std::vector<Index> counts(static_cast<std::size_t>(k), 0);
    out->centroids.Fill(0);
    for (Index i = 0; i < n; ++i) {
      const Index c = out->assignment[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(c)];
      Axpy(1.0, points.Row(i), out->centroids.Row(c), f);
    }
    for (Index c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) {
        // Empty cluster: reseed to a random point.
        const Index pick = static_cast<Index>(
            rng.UniformInt(static_cast<uint64_t>(n)));
        std::copy_n(points.Row(pick), f, out->centroids.Row(c));
      }
    }
    // Project onto the unit sphere (the "spherical" step).
    NormalizeRows(&out->centroids);
    ++out->iterations;
  }

  AssignByCosine(points, out->centroids, &out->assignment);
  out->inertia = 0;
  for (Index i = 0; i < n; ++i) {
    const Index c = out->assignment[static_cast<std::size_t>(i)];
    // mips-tidy: allow(float-accumulation): clustering quality diagnostic;
    // partitioning never alters exact results, only index quality.
    out->inertia += Real{1} - CosineSimilarity(points.Row(i),
                                               out->centroids.Row(c), f);
  }
  out->members = MembersFromAssignment(out->assignment, k);
  return Status::OK();
}

AngularQuality MeasureAngularQuality(const ConstRowBlock& points,
                                     const Clustering& clustering) {
  AngularQuality q;
  const Index n = points.rows();
  if (n == 0) return q;
  Real sum = 0;
  for (Index i = 0; i < n; ++i) {
    const Index c = clustering.assignment[static_cast<std::size_t>(i)];
    const Real cos = CosineSimilarity(points.Row(i),
                                      clustering.centroids.Row(c),
                                      points.cols());
    const Real angle = std::acos(cos);
    // mips-tidy: allow(float-accumulation): angular-quality diagnostic.
    sum += angle;
    q.max_angle = std::max(q.max_angle, angle);
  }
  q.mean_angle = sum / static_cast<Real>(n);
  return q;
}

}  // namespace mips
