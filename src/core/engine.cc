#include "core/engine.h"

#include <mutex>
#include <numeric>

#include "common/timer.h"
#include "core/dynamic_maximus.h"
#include "core/maximus.h"
#include "linalg/blas.h"
#include "solvers/registry.h"
#include "topk/topk_heap.h"

namespace mips {

StatusOr<std::unique_ptr<MipsEngine>> MipsEngine::Open(
    const ConstRowBlock& users, const ConstRowBlock& items,
    const EngineOptions& options) {
  if (options.k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(options.k));
  }
  if (options.solvers.empty()) {
    return Status::InvalidArgument(
        "engine needs at least one candidate solver spec");
  }
  if (users.rows() <= 0 || items.rows() <= 0) {
    return Status::InvalidArgument("user and item sets must be non-empty");
  }
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0, got " +
                                   std::to_string(options.threads));
  }

  std::unique_ptr<MipsEngine> engine(new MipsEngine());
  engine->users_ = users;
  engine->items_ = items;
  engine->options_ = options;

  for (const std::string& spec : options.solvers) {
    auto solver = SolverRegistry::Global().Create(spec);
    MIPS_RETURN_IF_ERROR(solver.status());
    engine->names_.push_back((*solver)->name());
    engine->specs_.push_back(spec);
    engine->solvers_.push_back(std::move(*solver));
  }
  if (options.threads > 0) {
    engine->pool_ = std::make_unique<ThreadPool>(options.threads);
  }

  // Build every candidate index.  Construction is a small share of
  // serving time per index (Figure 4), but N candidates over a large item
  // set is a real cold-start cost, so the builds run concurrently on the
  // engine pool when one exists.  The solvers are handed the pool only
  // AFTER this phase: a Prepare() that used the injected pool would be
  // waiting on the very pool its own task occupies (ThreadPool::Wait
  // deadlocks from inside a task), and withholding the pool makes that
  // impossible by construction rather than by convention.
  const std::size_t num_candidates = engine->solvers_.size();
  std::vector<Status> build_status(num_candidates);
  std::vector<double> build_seconds(num_candidates, 0);
  WallTimer build_timer;
  if (engine->pool_ != nullptr && num_candidates > 1) {
    for (std::size_t s = 0; s < num_candidates; ++s) {
      engine->pool_->Submit([&engine, &users, &items, &build_status,
                             &build_seconds, s]() {
        WallTimer timer;
        build_status[s] = engine->solvers_[s]->Prepare(users, items);
        build_seconds[s] = timer.Seconds();
      });
    }
    engine->pool_->Wait();
  } else {
    for (std::size_t s = 0; s < num_candidates; ++s) {
      WallTimer timer;
      build_status[s] = engine->solvers_[s]->Prepare(users, items);
      build_seconds[s] = timer.Seconds();
    }
  }
  for (std::size_t s = 0; s < num_candidates; ++s) {
    MIPS_RETURN_IF_ERROR(build_status[s]);
  }
  const double build_wall_seconds = build_timer.Seconds();
  if (engine->pool_ != nullptr) {
    for (auto& solver : engine->solvers_) {
      solver->set_thread_pool(engine->pool_.get());
    }
  }

  if (num_candidates == 1) {
    // Nothing to decide: serve with the only candidate.
    engine->report_.chosen = engine->names_[0];
    engine->report_.construction_seconds = build_seconds[0];
    engine->report_.total_seconds = build_wall_seconds;
    engine->winner_by_k_[options.k] = 0;
    return engine;
  }

  // The candidates are already Prepared (above, possibly in parallel), so
  // the decision only needs the sampling measurement.
  std::vector<MipsSolver*> raw;
  for (const auto& solver : engine->solvers_) raw.push_back(solver.get());
  Optimus optimus(options.optimus);
  std::size_t winner = 0;
  MIPS_RETURN_IF_ERROR(optimus.DecidePrepared(users, items, options.k, raw,
                                              &winner, &engine->report_));
  // DecidePrepared skipped construction; patch the measured per-candidate
  // build times into the report so its trace stays complete.
  for (std::size_t s = 0; s < num_candidates &&
                          s < engine->report_.estimates.size();
       ++s) {
    engine->report_.estimates[s].construction_seconds = build_seconds[s];
    engine->report_.construction_seconds += build_seconds[s];
  }
  engine->report_.total_seconds += build_wall_seconds;
  engine->winner_by_k_[options.k] = winner;
  return engine;
}

StatusOr<std::size_t> MipsEngine::StrategyForK(Index k) {
  const std::size_t forced = forced_.load(std::memory_order_acquire);
  if (forced != kNoForcedStrategy) return forced;
  {
    std::shared_lock<std::shared_mutex> lock(decision_mu_);
    auto it = winner_by_k_.find(k);
    if (it != winner_by_k_.end()) return it->second;
    if (!options_.redecide_on_new_k || solvers_.size() < 2) {
      // Fall back to the opening decision: still exact, possibly not the
      // fastest strategy for this k.
      return winner_by_k_.at(options_.k);
    }
  }
  // The decision k and the query k diverged: re-run the sampling
  // decision at the new k and cache the winner.  The candidates were
  // all Prepared at Open (indexes are k-independent), so only the
  // sampling measurement is repeated.  The exclusive lock serializes
  // concurrent first-queries of the same new k: one caller measures,
  // the rest (re-checking under the lock) reuse its cached winner.
  std::unique_lock<std::shared_mutex> lock(decision_mu_);
  auto it = winner_by_k_.find(k);
  if (it != winner_by_k_.end()) return it->second;
  std::vector<MipsSolver*> raw;
  for (const auto& solver : solvers_) raw.push_back(solver.get());
  Optimus optimus(options_.optimus);
  std::size_t winner = 0;
  OptimusReport report;
  MIPS_RETURN_IF_ERROR(
      optimus.DecidePrepared(users_, items_, k, raw, &winner, &report));
  winner_by_k_[k] = winner;
  stats_.redecisions.fetch_add(1, std::memory_order_relaxed);
  stats_.redecision_seconds.fetch_add(report.total_seconds,
                                      std::memory_order_relaxed);
  return winner;
}

Status MipsEngine::TopK(Index k, std::span<const Index> user_ids,
                        TopKResult* out) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  for (const Index id : user_ids) {
    if (id < 0 || id >= users_.rows()) {
      return Status::OutOfRange(
          "user id out of range: " + std::to_string(id) + " (engine has " +
          std::to_string(users_.rows()) + " users)");
    }
  }
  auto strategy = StrategyForK(k);
  MIPS_RETURN_IF_ERROR(strategy.status());
  WallTimer timer;
  MIPS_RETURN_IF_ERROR(solvers_[*strategy]->TopKForUsers(k, user_ids, out));
  stats_.serve_seconds.fetch_add(timer.Seconds(), std::memory_order_relaxed);
  stats_.batches_served.fetch_add(1, std::memory_order_relaxed);
  stats_.users_served.fetch_add(static_cast<int64_t>(user_ids.size()),
                                std::memory_order_relaxed);
  return Status::OK();
}

Status MipsEngine::TopKAll(Index k, TopKResult* out) {
  std::vector<Index> ids(static_cast<std::size_t>(users_.rows()));
  std::iota(ids.begin(), ids.end(), 0);
  return TopK(k, ids, out);
}

Status MipsEngine::TopKNewUser(const Real* user_vector, Index k,
                               TopKEntry* out_row) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  if (user_vector == nullptr) {
    return Status::InvalidArgument("user_vector must not be null");
  }
  auto strategy = StrategyForK(k);
  MIPS_RETURN_IF_ERROR(strategy.status());
  MipsSolver* solver = solvers_[*strategy].get();
  WallTimer timer;
  if (auto* maximus = dynamic_cast<MaximusSolver*>(solver)) {
    // Exact dynamic-user walk (Section III-E).
    MIPS_RETURN_IF_ERROR(maximus->QueryDynamicUser(user_vector, k, out_row));
  } else if (auto* dynamic = dynamic_cast<DynamicMaximusSolver*>(solver)) {
    MIPS_RETURN_IF_ERROR(dynamic->QueryNewUser(user_vector, k, out_row));
  } else {
    // Dense scoring row: one pass of inner products + heap.  Exact and
    // strategy-independent; a single user cannot exploit blocking anyway.
    const Index n = items_.rows();
    const Index f = items_.cols();
    TopKHeap heap(k);
    for (Index i = 0; i < n; ++i) {
      heap.Push(i, Dot(user_vector, items_.Row(i), f));
    }
    heap.ExtractDescending(out_row);
  }
  stats_.serve_seconds.fetch_add(timer.Seconds(), std::memory_order_relaxed);
  stats_.new_users_served.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status MipsEngine::ForceStrategy(const std::string& name_or_spec) {
  // Solver name first; the exact opening spec disambiguates when two
  // candidates are tuned variants of the same solver.
  for (std::size_t s = 0; s < names_.size(); ++s) {
    if (names_[s] == name_or_spec) {
      forced_.store(s, std::memory_order_release);
      return Status::OK();
    }
  }
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s] == name_or_spec) {
      forced_.store(s, std::memory_order_release);
      return Status::OK();
    }
  }
  std::string candidates;
  for (const std::string& candidate : specs_) {
    if (!candidates.empty()) candidates += ", ";
    candidates += candidate;
  }
  return Status::NotFound("no candidate named \"" + name_or_spec +
                          "\" (candidates: " + candidates + ")");
}

void MipsEngine::ClearForcedStrategy() {
  forced_.store(kNoForcedStrategy, std::memory_order_release);
}

const std::string& MipsEngine::strategy() const {
  const std::size_t forced = forced_.load(std::memory_order_acquire);
  if (forced != kNoForcedStrategy) return names_[forced];
  std::shared_lock<std::shared_mutex> lock(decision_mu_);
  return names_[winner_by_k_.at(options_.k)];
}

MipsEngine::Stats MipsEngine::stats() const {
  Stats snapshot;
  snapshot.batches_served = stats_.batches_served.load(std::memory_order_relaxed);
  snapshot.users_served = stats_.users_served.load(std::memory_order_relaxed);
  snapshot.new_users_served =
      stats_.new_users_served.load(std::memory_order_relaxed);
  snapshot.redecisions = stats_.redecisions.load(std::memory_order_relaxed);
  snapshot.serve_seconds = stats_.serve_seconds.load(std::memory_order_relaxed);
  snapshot.redecision_seconds =
      stats_.redecision_seconds.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace mips
