// Item-axis partitioning for sharded MIPS serving.
//
// A sharded engine splits the ITEM catalog — the axis that grows beyond
// one node's memory in production recommenders — into disjoint shards and
// serves each with its own MipsEngine.  Two placement strategies:
//
//   * kContiguous — shard s owns a contiguous global-id range (SplitRange
//     over [0, |I|)).  Zero-copy: each shard is a ConstRowBlock view into
//     the original item matrix, and local→global is an offset add.  The
//     natural choice when ids are already grouped by catalog segment
//     (and the one that exposes heterogeneous per-shard statistics, e.g.
//     a norm-skewed segment next to a flat one).
//   * kHash — shard of item i is a multiplicative hash of i.  Rows are
//     gathered into per-shard matrices owned by the partition, with an
//     explicit local→global id map.  Spreads any norm/popularity skew
//     uniformly, so shards stay load-balanced at the cost of one copy of
//     the item matrix.
//   * kGrowth — contiguous like kContiguous, but the block size is
//     PINNED instead of derived from the current item count: shard s
//     owns rows [s*B, (s+1)*B) and the LAST shard additionally absorbs
//     everything past (S-1)*B.  Under kContiguous every append re-splits
//     the range and moves rows between all shards; under kGrowth with a
//     pinned B, appends land only in the newest shard, so a growing
//     catalog (catalog/live_catalog.h) re-partitions without disturbing
//     the prefix shards' item sets.  Zero-copy views, like kContiguous.
//
// Every item lives in exactly one shard, so per-shard exact top-K merged
// across shards (topk/merge.h) reproduces the unsharded answer.

#ifndef MIPS_SHARD_PARTITION_H_
#define MIPS_SHARD_PARTITION_H_

#include <string>
#include <vector>

#include "common/dcheck.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace mips {

/// Item placement policy; see the file comment.
enum class ShardingStrategy { kContiguous, kHash, kGrowth };

const char* ToString(ShardingStrategy strategy);
/// Parses "contiguous" / "hash" / "growth" (CLI and bench flags).
StatusOr<ShardingStrategy> ParseShardingStrategy(const std::string& name);

/// Shard index of a global item id under kHash placement (64-bit
/// multiplicative mix so consecutive ids spread uniformly).
int HashShardOfItem(Index global_id, int num_shards);

/// One shard's slice of the item catalog.  `items` views either the
/// original matrix (contiguous) or partition-owned gathered storage
/// (hash); rows are in increasing global-id order either way.
struct ItemShard {
  ConstRowBlock items;
  /// kContiguous: global id = local + global_offset.
  Index global_offset = 0;
  /// kHash: global id = global_ids[local]; empty for kContiguous.
  std::vector<Index> global_ids;

  Index num_items() const { return items.rows(); }
  /// Precondition: 0 <= local < num_items() (DCHECKed — a local id from
  /// one shard remapped through another is the classic sharding bug, and
  /// under kHash it reads out of the global_ids vector's bounds).
  Index ToGlobal(Index local) const {
    MIPS_DCHECK_GE(local, 0);
    MIPS_DCHECK_LT(local, num_items());
    return global_ids.empty() ? local + global_offset
                              : global_ids[static_cast<std::size_t>(local)];
  }
};

/// A disjoint, exhaustive split of an item matrix into shards.  Shards
/// may be empty when num_shards exceeds the item count (a sharded engine
/// simply has nothing to ask them).  The source matrix must outlive the
/// partition (contiguous shards view it directly).
class ItemPartition {
 public:
  /// Empty partition (no shards); Create() returns the real thing.
  ItemPartition() = default;

  /// Move-only: hash shards' `items` views point into this partition's
  /// own gathered_ storage.  A copy would deep-copy the storage while the
  /// copied views kept pointing at the source — a use-after-free once the
  /// source dies.  Moves keep the Matrix heap pointers, so views survive.
  ItemPartition(const ItemPartition&) = delete;
  ItemPartition& operator=(const ItemPartition&) = delete;
  ItemPartition(ItemPartition&&) = default;
  ItemPartition& operator=(ItemPartition&&) = default;

  /// Splits `items` into `num_shards` shards under `strategy`.
  /// InvalidArgument for num_shards < 1 or an empty item set.
  /// `growth_block` pins the kGrowth block size B (0 derives
  /// ceil(rows / num_shards) from the current item count); it is ignored
  /// by the other strategies.  Pin B across successive Create calls on a
  /// growing catalog to keep the prefix shards' contents stable.
  static StatusOr<ItemPartition> Create(const ConstRowBlock& items,
                                        int num_shards,
                                        ShardingStrategy strategy,
                                        Index growth_block = 0);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ItemShard& shard(int s) const {
    return shards_[static_cast<std::size_t>(s)];
  }
  ShardingStrategy strategy() const { return strategy_; }
  Index num_items() const { return num_items_; }
  /// The resolved kGrowth block size (0 under other strategies).
  Index growth_block() const { return growth_block_; }

  /// Inverse map: the shard owning a global item id.
  /// Precondition: 0 <= global_id < num_items() (DCHECKed).
  int ShardOfItem(Index global_id) const;

 private:
  std::vector<ItemShard> shards_;
  /// Gathered per-shard row storage backing hash-shard views (parallel to
  /// shards_ under kHash; unused for kContiguous).
  std::vector<Matrix> gathered_;
  ShardingStrategy strategy_ = ShardingStrategy::kContiguous;
  Index num_items_ = 0;
  /// Resolved kGrowth block size B (0 for the other strategies).
  Index growth_block_ = 0;
};

}  // namespace mips

#endif  // MIPS_SHARD_PARTITION_H_
