#include "serve/batching_engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/dcheck.h"
#include "common/timer.h"
#include "core/engine.h"
#include "shard/sharded_engine.h"

namespace mips {
namespace {

using Clock = std::chrono::steady_clock;

Clock::duration FromMs(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

std::future<Status> ResolvedFuture(Status status) {
  std::promise<Status> promise;
  std::future<Status> future = promise.get_future();
  promise.set_value(std::move(status));
  return future;
}

}  // namespace

const char* ToString(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShed:
      return "shed";
    case OverloadPolicy::kDropExpired:
      return "drop_expired";
  }
  return "unknown";
}

StatusOr<OverloadPolicy> ParseOverloadPolicy(std::string_view name) {
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "shed") return OverloadPolicy::kShed;
  if (name == "drop_expired") return OverloadPolicy::kDropExpired;
  return Status::InvalidArgument(
      "unknown overload policy \"" + std::string(name) +
      "\" (expected block, shed, or drop_expired)");
}

BatchingEngine::BatchingEngine(Backend backend, Index num_factors,
                               const BatchingOptions& options)
    : backend_(std::move(backend)),
      num_factors_(num_factors),
      options_(options) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  executors_.reserve(static_cast<std::size_t>(options_.executor_threads));
  for (int t = 0; t < options_.executor_threads; ++t) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

StatusOr<std::unique_ptr<BatchingEngine>> BatchingEngine::Create(
    Backend backend, Index num_factors, const BatchingOptions& options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("backend must not be null");
  }
  if (num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive, got " +
                                   std::to_string(num_factors));
  }
  if (options.max_batch_rows < 1) {
    return Status::InvalidArgument("max_batch_rows must be >= 1, got " +
                                   std::to_string(options.max_batch_rows));
  }
  if (options.max_queue_rows < options.max_batch_rows) {
    return Status::InvalidArgument(
        "max_queue_rows (" + std::to_string(options.max_queue_rows) +
        ") must be >= max_batch_rows (" +
        std::to_string(options.max_batch_rows) + ")");
  }
  if (options.executor_threads < 1) {
    return Status::InvalidArgument("executor_threads must be >= 1, got " +
                                   std::to_string(options.executor_threads));
  }
  return std::unique_ptr<BatchingEngine>(
      new BatchingEngine(std::move(backend), num_factors, options));
}

StatusOr<std::unique_ptr<BatchingEngine>> BatchingEngine::Create(
    MipsEngine* engine, const BatchingOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  return Create(
      [engine](const Real* vectors, Index rows, Index k, TopKResult* out) {
        return engine->TopKNewUsers(vectors, rows, k, out);
      },
      engine->num_factors(), options);
}

StatusOr<std::unique_ptr<BatchingEngine>> BatchingEngine::Create(
    ShardedMipsEngine* engine, const BatchingOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  return Create(
      [engine](const Real* vectors, Index rows, Index k, TopKResult* out) {
        return engine->TopKNewUsers(vectors, rows, k, out);
      },
      engine->num_factors(), options);
}

BatchingEngine::~BatchingEngine() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_work_.NotifyAll();
  cv_space_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher drained pending_ into ready_ and raised
  // executors_done_ before exiting; executors finish ready_ and return.
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
}

std::future<Status> BatchingEngine::SubmitNewUser(const Real* user_vector,
                                                  Index k,
                                                  TopKEntry* out_row,
                                                  double deadline_ms) {
  if (user_vector == nullptr) {
    return ResolvedFuture(
        Status::InvalidArgument("user_vector must not be null"));
  }
  if (out_row == nullptr) {
    return ResolvedFuture(Status::InvalidArgument("out_row must not be null"));
  }
  if (k <= 0) {
    return ResolvedFuture(Status::InvalidArgument(
        "k must be positive, got " + std::to_string(k)));
  }

  Request req;
  req.k = k;
  req.out_row = out_row;
  req.arrival = Clock::now();
  const double effective_deadline_ms =
      deadline_ms > 0 ? deadline_ms : options_.default_deadline_ms;
  if (effective_deadline_ms > 0) {
    req.has_deadline = true;
    req.deadline = req.arrival + FromMs(effective_deadline_ms);
  }
  req.vector.assign(user_vector, user_vector + num_factors_);
  std::future<Status> future = req.promise.get_future();

  MutexLock lock(mu_);
  ++stats_.submitted;
  if (stopping_) {
    ++stats_.shed;
    req.promise.set_value(
        Status::FailedPrecondition("batching engine is shutting down"));
    return future;
  }
  if (outstanding_rows_ >= options_.max_queue_rows) {
    switch (options_.overload_policy) {
      case OverloadPolicy::kShed:
        ++stats_.shed;
        req.promise.set_value(Status::ResourceExhausted(
            "admission queue full (" +
            std::to_string(options_.max_queue_rows) + " outstanding rows)"));
        return future;
      case OverloadPolicy::kDropExpired:
        // Make room from requests that can no longer be answered in time
        // anyway; shed only if none had expired.
        PurgeExpiredLocked(Clock::now());
        if (outstanding_rows_ >= options_.max_queue_rows) {
          ++stats_.shed;
          req.promise.set_value(Status::ResourceExhausted(
              "admission queue full (" +
              std::to_string(options_.max_queue_rows) +
              " outstanding rows, none expired)"));
          return future;
        }
        break;
      case OverloadPolicy::kBlock: {
        ++stats_.blocked;
        // Explicit predicate loop (common/mutex.h): wait for room or
        // shutdown, bounded by the request's deadline when it has one.
        bool timed_out = false;
        while (!stopping_ && outstanding_rows_ >= options_.max_queue_rows) {
          if (req.has_deadline) {
            if (cv_space_.WaitUntil(lock, req.deadline) ==
                std::cv_status::timeout) {
              timed_out = !stopping_ &&
                          outstanding_rows_ >= options_.max_queue_rows;
              break;
            }
          } else {
            cv_space_.Wait(lock);
          }
        }
        if (timed_out) {
          ++stats_.expired;
          req.promise.set_value(Status::DeadlineExceeded(
              "deadline elapsed while blocked at admission"));
          return future;
        }
        if (stopping_) {
          ++stats_.shed;
          req.promise.set_value(
              Status::FailedPrecondition("batching engine is shutting down"));
          return future;
        }
        break;
      }
    }
  }
  ++outstanding_rows_;
  stats_.max_queue_rows_observed =
      std::max(stats_.max_queue_rows_observed, outstanding_rows_);
  ++pending_rows_by_k_[k];
  pending_.push_back(std::move(req));
  MIPS_DCHECK_EQ(outstanding_rows_, TrackedRowsLocked());
  cv_work_.NotifyOne();
  return future;
}

Status BatchingEngine::TopKNewUser(const Real* user_vector, Index k,
                                   TopKEntry* out_row) {
  return SubmitNewUser(user_vector, k, out_row).get();
}

void BatchingEngine::Flush() {
  MutexLock lock(mu_);
  if (pending_.empty()) return;
  flush_requested_ = true;
  cv_work_.NotifyOne();
  while (flush_requested_) cv_flush_.Wait(lock);
}

Index BatchingEngine::PurgeExpiredLocked(Clock::time_point now) {
  mu_.AssertHeld();
  Index purged = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->has_deadline && now >= it->deadline) {
      it->promise.set_value(
          Status::DeadlineExceeded("deadline elapsed while queued"));
      auto group = pending_rows_by_k_.find(it->k);
      MIPS_DCHECK(group != pending_rows_by_k_.end());
      if (--group->second == 0) pending_rows_by_k_.erase(group);
      --outstanding_rows_;
      ++stats_.expired;
      ++purged;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  MIPS_DCHECK_EQ(outstanding_rows_, TrackedRowsLocked());
  if (purged > 0) cv_space_.NotifyAll();
  return purged;
}

void BatchingEngine::AssembleLocked(Index k, int64_t* flush_counter) {
  mu_.AssertHeld();
  Batch batch;
  batch.k = k;
  batch.requests.reserve(
      static_cast<std::size_t>(std::min(options_.max_batch_rows,
                                        pending_rows_by_k_.at(k))));
  const Clock::time_point now = Clock::now();
  for (auto it = pending_.begin();
       it != pending_.end() &&
       static_cast<Index>(batch.requests.size()) < options_.max_batch_rows;) {
    if (it->k != k) {
      ++it;
      continue;
    }
    // mips-tidy: allow(float-accumulation): wall-clock bookkeeping.
    stats_.queue_wait_seconds +=
        std::chrono::duration<double>(now - it->arrival).count();
    batch.requests.push_back(std::move(*it));
    it = pending_.erase(it);
  }
  const Index rows = static_cast<Index>(batch.requests.size());
  auto group = pending_rows_by_k_.find(k);
  MIPS_DCHECK(group != pending_rows_by_k_.end());
  MIPS_DCHECK_GE(group->second, rows);
  group->second -= rows;
  if (group->second == 0) pending_rows_by_k_.erase(group);
  ++stats_.batches_dispatched;
  ++*flush_counter;
  ++stats_.batch_size_histogram[rows];
  ready_.push_back(std::move(batch));
  MIPS_DCHECK_EQ(outstanding_rows_, TrackedRowsLocked());
  cv_ready_.NotifyOne();
}

void BatchingEngine::DispatcherLoop() {
  MutexLock lock(mu_);
  for (;;) {
    MIPS_DCHECK_EQ(outstanding_rows_, TrackedRowsLocked());
    const Clock::time_point now = Clock::now();
    PurgeExpiredLocked(now);

    // Size flushes first: a full group never waits on the clock.
    Index full_k = -1;
    for (const auto& [k, count] : pending_rows_by_k_) {
      if (count >= options_.max_batch_rows) {
        full_k = k;
        break;
      }
    }
    if (full_k >= 0) {
      AssembleLocked(full_k, &stats_.size_flushes);
      continue;
    }

    // Forced flushes (Flush() and the shutdown drain) dispatch whatever
    // is pending, oldest group first, in max_batch_rows chunks.
    if ((flush_requested_ || stopping_) && !pending_.empty()) {
      AssembleLocked(pending_.front().k, &stats_.forced_flushes);
      continue;
    }
    if (flush_requested_) {
      flush_requested_ = false;
      cv_flush_.NotifyAll();
    }
    if (stopping_) break;

    // Timeout flush: the oldest request has waited its bounded delay.
    const bool timed = options_.max_wait_ms > 0 && !pending_.empty();
    const Clock::duration max_wait = FromMs(options_.max_wait_ms);
    if (timed && now >= pending_.front().arrival + max_wait) {
      AssembleLocked(pending_.front().k, &stats_.timeout_flushes);
      continue;
    }

    // Sleep until the next actionable instant: the oldest request's
    // flush point or the earliest pending deadline (to purge promptly),
    // whichever is sooner.  Submissions/Flush/shutdown notify cv_work_.
    Clock::time_point wake = Clock::time_point::max();
    if (timed) wake = pending_.front().arrival + max_wait;
    for (const Request& req : pending_) {
      if (req.has_deadline) wake = std::min(wake, req.deadline);
    }
    if (wake == Clock::time_point::max()) {
      cv_work_.Wait(lock);
    } else {
      cv_work_.WaitUntil(lock, wake);
    }
  }
  executors_done_ = true;
  cv_ready_.NotifyAll();
  cv_flush_.NotifyAll();
}

void BatchingEngine::ExecutorLoop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!executors_done_ && ready_.empty()) cv_ready_.Wait(lock);
    if (ready_.empty()) {
      // executors_done_ must hold: the wait above only exits on a ready
      // batch or the dispatcher's final signal.
      return;
    }
    Batch batch = std::move(ready_.front());
    ready_.pop_front();
    executing_rows_ += static_cast<Index>(batch.requests.size());
    lock.Unlock();
    ExecuteBatch(std::move(batch));
    lock.Lock();
  }
}

void BatchingEngine::ExecuteBatch(Batch batch) {
  const Index rows = static_cast<Index>(batch.requests.size());
  const Index k = batch.k;
  std::vector<Real> buffer(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(num_factors_));
  for (Index r = 0; r < rows; ++r) {
    std::copy(batch.requests[static_cast<std::size_t>(r)].vector.begin(),
              batch.requests[static_cast<std::size_t>(r)].vector.end(),
              buffer.begin() +
                  static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(num_factors_));
  }
  TopKResult result;
  WallTimer timer;
  const Status status = backend_(buffer.data(), rows, k, &result);
  const double backend_seconds = timer.Seconds();
  if (status.ok()) {
    for (Index r = 0; r < rows; ++r) {
      const TopKEntry* src = result.Row(r);
      TopKEntry* dst = batch.requests[static_cast<std::size_t>(r)].out_row;
      for (Index e = 0; e < k; ++e) dst[e] = src[e];
    }
  }
  {
    MutexLock lock(mu_);
    MIPS_DCHECK_GE(executing_rows_, rows);
    MIPS_DCHECK_GE(outstanding_rows_, rows);
    executing_rows_ -= rows;
    outstanding_rows_ -= rows;
    MIPS_DCHECK_EQ(outstanding_rows_, TrackedRowsLocked());
    stats_.backend_seconds += backend_seconds;
    if (status.ok()) stats_.served += rows;
  }
  cv_space_.NotifyAll();
  // Resolve promises after capacity is released: a caller woken by its
  // future can immediately re-submit and find the row it freed.
  for (Request& req : batch.requests) {
    req.promise.set_value(status);
  }
}

Index BatchingEngine::TrackedRowsLocked() const {
  mu_.AssertHeld();
  // The per-k index is a view over pending_; they must never disagree.
  Index by_k = 0;
  for (const auto& [k, count] : pending_rows_by_k_) by_k += count;
  MIPS_DCHECK_EQ(by_k, static_cast<Index>(pending_.size()));
  Index rows = static_cast<Index>(pending_.size());
  for (const Batch& batch : ready_) {
    rows += static_cast<Index>(batch.requests.size());
  }
  return rows + executing_rows_;
}

BatchingEngine::Stats BatchingEngine::stats() const {
  MutexLock lock(mu_);
  Stats snapshot = stats_;
  snapshot.queue_rows = outstanding_rows_;
  return snapshot;
}

}  // namespace mips
