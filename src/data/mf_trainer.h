// A small SGD matrix-factorization trainer.
//
// The paper serves *trained* MF models; to make the end-to-end examples
// realistic (train -> serve with OPTIMUS) we include a plain biased-free
// SGD trainer for explicit feedback, in the spirit of the NOMAD/DSGD
// models it cites — single-machine, but the same objective:
//
//   min_{U,I}  sum_{(u,i,r)} (r - u.i)^2  +  lambda (||u||^2 + ||i||^2)
//
// Also provides a synthetic ratings generator (low-rank ground truth plus
// noise) so training works fully offline.

#ifndef MIPS_DATA_MF_TRAINER_H_
#define MIPS_DATA_MF_TRAINER_H_

#include <cstdint>
#include <vector>

#include "data/synthetic.h"

namespace mips {

/// One observed (user, item, rating) triple.
struct Rating {
  Index user = 0;
  Index item = 0;
  Real value = 0;
};

/// SGD hyperparameters.
struct MFTrainConfig {
  Index num_factors = 10;
  int epochs = 15;
  Real learning_rate = 0.02;
  Real regularization = 0.05;
  /// Initial factor scale (factors ~ N(0, init_scale)).
  Real init_scale = 0.1;
  uint64_t seed = 7;
};

/// Trains an MF model on the given ratings.  InvalidArgument if the config
/// or dimensions are degenerate.
StatusOr<MFModel> TrainMF(const std::vector<Rating>& ratings, Index num_users,
                          Index num_items, const MFTrainConfig& config);

/// Root-mean-square error of `model` over `ratings`.
Real ComputeRMSE(const MFModel& model, const std::vector<Rating>& ratings);

/// Draws `count` ratings from a random rank-`true_rank` model plus Gaussian
/// noise, for offline training demos.  (user, item) pairs may repeat.
std::vector<Rating> GenerateSyntheticRatings(Index num_users, Index num_items,
                                             std::size_t count,
                                             Index true_rank, Real noise,
                                             uint64_t seed);

}  // namespace mips

#endif  // MIPS_DATA_MF_TRAINER_H_
