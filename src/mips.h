// Umbrella header: include everything a typical application needs.
//
//   #include "mips.h"
//
// Fine-grained headers remain available for compile-time-conscious users
// (each src/ subdirectory is an independent library; see README).

#ifndef MIPS_MIPS_H_
#define MIPS_MIPS_H_

#include "catalog/live_catalog.h" // IWYU pragma: export
#include "catalog/segment.h"      // IWYU pragma: export
#include "common/status.h"        // IWYU pragma: export
#include "common/thread_pool.h"   // IWYU pragma: export
#include "common/types.h"         // IWYU pragma: export
#include "core/approx_cluster.h"  // IWYU pragma: export
#include "core/cost_model.h"      // IWYU pragma: export
#include "core/dynamic_maximus.h"  // IWYU pragma: export
#include "core/engine.h"          // IWYU pragma: export
#include "core/maximus.h"         // IWYU pragma: export
#include "core/optimus.h"         // IWYU pragma: export
#include "core/registry.h"        // IWYU pragma: export
#include "core/serving.h"         // IWYU pragma: export
#include "data/datasets.h"        // IWYU pragma: export
#include "data/io.h"              // IWYU pragma: export
#include "data/mf_trainer.h"      // IWYU pragma: export
#include "data/synthetic.h"       // IWYU pragma: export
#include "linalg/matrix.h"        // IWYU pragma: export
#include "linalg/simd_dispatch.h" // IWYU pragma: export
#include "serve/batching_engine.h"  // IWYU pragma: export
#include "shard/partition.h"      // IWYU pragma: export
#include "shard/sharded_engine.h" // IWYU pragma: export
#include "solvers/bmm.h"          // IWYU pragma: export
#include "solvers/fexipro/fexipro.h"  // IWYU pragma: export
#include "solvers/lemp/lemp.h"    // IWYU pragma: export
#include "solvers/naive.h"        // IWYU pragma: export
#include "solvers/registry.h"     // IWYU pragma: export
#include "solvers/solver.h"       // IWYU pragma: export
#include "solvers/spec.h"         // IWYU pragma: export
#include "sparse/csr_matrix.h"    // IWYU pragma: export
#include "sparse/hybrid.h"        // IWYU pragma: export
#include "sparse/inverted_index.h"  // IWYU pragma: export
#include "sparse/sindi.h"         // IWYU pragma: export
#include "topk/result.h"          // IWYU pragma: export

#endif  // MIPS_MIPS_H_
