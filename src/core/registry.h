// Spec-based solver factory for benches, examples, and the OPTIMUS
// driver.  Thin forwarding layer over the self-registering registry in
// solvers/registry.h — kept so existing callers of CreateSolver /
// AvailableSolvers keep working, now with full spec support.

#ifndef MIPS_CORE_REGISTRY_H_
#define MIPS_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "solvers/registry.h"  // IWYU pragma: export
#include "solvers/solver.h"
#include "solvers/spec.h"  // IWYU pragma: export

namespace mips {

/// Creates a solver from a spec: a bare registered name ("naive", "bmm",
/// "lemp", "fexipro-si", "fexipro-sir", "maximus", "dynamic-maximus")
/// builds paper-default options; "name:key=value,..." overrides schema
/// parameters.  NotFound for unknown names, InvalidArgument naming the
/// offending key for unknown/ill-typed parameters.
StatusOr<std::unique_ptr<MipsSolver>> CreateSolver(
    const std::string& name_or_spec);

/// All registered (visible) solver names, sorted — derived from the
/// registry, so it can never drift from what CreateSolver accepts.
std::vector<std::string> AvailableSolvers();

}  // namespace mips

#endif  // MIPS_CORE_REGISTRY_H_
