// LEMP bucket structures.
//
// LEMP (Teflioudi et al., SIGMOD'15 / TODS'16) sorts items by vector length
// and partitions them into buckets of similar magnitude.  For each queried
// user it processes buckets in descending-length order, terminating as soon
// as a whole bucket (and hence every later one) cannot beat the user's
// current K-th best score; inside a bucket one of several retrieval
// algorithms scans the candidates.

#ifndef MIPS_SOLVERS_LEMP_BUCKET_H_
#define MIPS_SOLVERS_LEMP_BUCKET_H_

#include <algorithm>
#include <vector>

#include "linalg/matrix.h"

namespace mips {
namespace lemp {

/// In-bucket retrieval algorithms (the LEMP-LI family we reproduce, plus
/// a coordinate-range prune in the spirit of LEMP-COORD).
enum class BucketAlgorithm {
  /// Full inner products for every item in the bucket.
  kNaive = 0,
  /// Length-based pruning: stop the (norm-sorted) scan once
  /// ||i|| * ||u|| <= min(H).
  kLength = 1,
  /// Length pruning + incremental pruning: partial inner products with a
  /// Cauchy-Schwarz bound on the remaining coordinates.
  kIncremental = 2,
  /// Coordinate-range pruning: skip the whole bucket when the per-
  /// dimension bound sum_d max(u_d * max_d, u_d * min_d) cannot beat
  /// min(H), where [min_d, max_d] is the bucket's coordinate range.
  /// (A bucket-granular variant of LEMP's COORD idea; per-item scans then
  /// fall back to length pruning.)
  kCoord = 3,
};

inline const char* BucketAlgorithmName(BucketAlgorithm algorithm) {
  switch (algorithm) {
    case BucketAlgorithm::kNaive:
      return "NAIVE";
    case BucketAlgorithm::kLength:
      return "LENGTH";
    case BucketAlgorithm::kIncremental:
      return "INCR";
    case BucketAlgorithm::kCoord:
      return "COORD";
  }
  return "?";
}

inline constexpr int kNumBucketAlgorithms = 4;

/// One bucket: a contiguous range of the norm-sorted item order.
struct Bucket {
  Index begin = 0;  // first position in the sorted order
  Index end = 0;    // one past the last position
  Real max_norm = 0;
  Real min_norm = 0;
  /// Per-dimension coordinate ranges over the bucket's items (length f),
  /// used by the kCoord bucket-level bound.
  std::vector<Real> coord_min;
  std::vector<Real> coord_max;
  /// Algorithm chosen by the per-bucket calibration (mutable online state).
  BucketAlgorithm algorithm = BucketAlgorithm::kIncremental;
};

/// The kCoord bucket-level upper bound on u.i over all items i in the
/// bucket: each coordinate contributes its best case over the bucket's
/// coordinate range.
inline Real CoordBucketBound(const Real* user, const Bucket& bucket,
                             Index f) {
  Real bound = 0;
  for (Index d = 0; d < f; ++d) {
    // mips-tidy: allow(float-accumulation): coordinate-wise prune bound,
    // not a score; it has no dense-kernel counterpart whose rounding
    // order it could mirror.
    bound += std::max(user[d] * bucket.coord_max[static_cast<std::size_t>(d)],
                      user[d] * bucket.coord_min[static_cast<std::size_t>(d)]);
  }
  return bound;
}

/// Index data shared by all queries: items re-ordered by descending norm,
/// plus the per-item data the in-bucket algorithms need.
struct SortedItems {
  /// Items copied in descending-norm order (row r = vector of rank r).
  Matrix vectors;
  /// Norm of each sorted row.
  std::vector<Real> norms;
  /// Original item id of each sorted row.
  std::vector<Index> ids;
  /// Suffix norms at checkpoints: suffix_norms[r * num_checkpoints + c] =
  /// ||vector r restricted to dims [checkpoint_dims[c], f)||.
  std::vector<Real> suffix_norms;
  /// Checkpoint start dimensions (ascending; first entry > 0).
  std::vector<Index> checkpoint_dims;
};

/// Builds the sorted-item structures from a raw item matrix.
SortedItems SortItemsByNorm(const ConstRowBlock& items, Index num_checkpoints);

/// Splits [0, n) into buckets of `bucket_size` consecutive sorted items
/// (the last bucket may be smaller) and fills their norm bounds.
std::vector<Bucket> MakeBuckets(const SortedItems& sorted, Index bucket_size);

}  // namespace lemp
}  // namespace mips

#endif  // MIPS_SOLVERS_LEMP_BUCKET_H_
