// Tests for MAXIMUS: the Koenigstein bound as a property test, index
// construction invariants, exactness against brute force across a
// parameter sweep (clusters, blocking, K, clustering flavor), the item
// blocking lesion, dynamic users, and threading.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/thread_pool.h"
#include "core/cbound.h"
#include "core/maximus.h"
#include "solvers/bmm.h"
#include "test_util.h"
#include "topk/topk_heap.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::ExpectValidTopK;
using ::mips::testing::MakeTestModel;

// ----------------------------------------------------------- The bound

TEST(CBoundTest, AngleFromCosineClamps) {
  EXPECT_DOUBLE_EQ(AngleFromCosine(1.5), 0.0);
  EXPECT_DOUBLE_EQ(AngleFromCosine(-1.5), M_PI);
  EXPECT_NEAR(AngleFromCosine(0.0), M_PI / 2, 1e-12);
}

TEST(CBoundTest, WideConeDegeneratesToNorm) {
  // theta_b >= theta_ic: the bound is just the item norm.
  EXPECT_DOUBLE_EQ(CBound(2.5, 0.3, 0.3), 2.5);
  EXPECT_DOUBLE_EQ(CBound(2.5, 0.3, 1.0), 2.5);
}

TEST(CBoundTest, TightConeScalesByCos) {
  EXPECT_NEAR(CBound(2.0, 1.0, 0.25), 2.0 * std::cos(0.75), 1e-12);
}

TEST(CBoundTest, MonotoneInTheta) {
  // Wider cones can only loosen the bound.
  Real prev = 0;
  for (Real theta_b : {0.0, 0.2, 0.4, 0.8, 1.5, 3.0}) {
    const Real b = CBound(1.0, 1.2, theta_b);
    EXPECT_GE(b, prev - 1e-12);
    prev = b;
  }
}

// Property: CBound is Lipschitz in theta_b with constant ||i||.  This is
// what makes the dynamic-user walk exact: a user outside the cluster cone
// by delta can inflate every bound by at most max_norm * delta, so adding
// that slack to the sorted list keeps termination conservative
// (MaximusSolver::QueryDynamicUser).
TEST(CBoundTest, LipschitzInTheta) {
  Rng rng(4);
  for (int trial = 0; trial < 5000; ++trial) {
    const Real norm = rng.Uniform(0.0, 5.0);
    const Real theta_ic = rng.Uniform(0.0, M_PI);
    const Real theta_b = rng.Uniform(0.0, M_PI);
    const Real delta = rng.Uniform(0.0, M_PI - 0.0);
    const Real widened = std::min(theta_b + delta, Real{M_PI});
    EXPECT_LE(CBound(norm, theta_ic, widened),
              CBound(norm, theta_ic, theta_b) + norm * delta + 1e-12)
        << "norm=" << norm << " theta_ic=" << theta_ic
        << " theta_b=" << theta_b << " delta=" << delta;
  }
}

// Property (Equation 2): for random user/item/centroid triples, the
// normalized rating never exceeds the bound computed from the angles.
TEST(CBoundTest, UpperBoundsNormalizedRating) {
  Rng rng(3);
  const Index f = 12;
  std::vector<Real> u(f);
  std::vector<Real> i(f);
  std::vector<Real> c(f);
  for (int trial = 0; trial < 2000; ++trial) {
    for (Index d = 0; d < f; ++d) {
      u[static_cast<std::size_t>(d)] = rng.Normal();
      i[static_cast<std::size_t>(d)] = rng.Normal(0, 2);
      c[static_cast<std::size_t>(d)] = rng.Normal();
    }
    const Real norm_u = Nrm2(u.data(), f);
    const Real norm_i = Nrm2(i.data(), f);
    const Real theta_ic =
        AngleFromCosine(CosineSimilarity(i.data(), c.data(), f));
    const Real theta_uc =
        AngleFromCosine(CosineSimilarity(u.data(), c.data(), f));
    const Real r_star = Dot(u.data(), i.data(), f) / norm_u;
    EXPECT_LE(r_star, CBound(norm_i, theta_ic, theta_uc) + 1e-9)
        << "trial " << trial;
    // The cluster-level bound with any theta_b >= theta_uc also holds.
    EXPECT_LE(r_star, CBound(norm_i, theta_ic, theta_uc + 0.3) + 1e-9);
  }
}

// --------------------------------------------------------- Construction

TEST(MaximusTest, PrepareBuildsClustersAndTimers) {
  const MFModel model = MakeTestModel(300, 200, 10, 5);
  MaximusOptions options;
  options.num_clusters = 6;
  MaximusSolver maximus(options);
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  EXPECT_EQ(maximus.clustering().centroids.rows(), 6);
  EXPECT_EQ(maximus.theta_b().size(), 6u);
  for (Real theta : maximus.theta_b()) {
    EXPECT_GE(theta, 0.0);
    EXPECT_LE(theta, M_PI + 1e-9);
  }
  EXPECT_GT(maximus.stage_timer().Get("clustering"), 0.0);
  EXPECT_GT(maximus.stage_timer().Get("construction"), 0.0);
}

TEST(MaximusTest, ThetaBCoversAllMembers) {
  const MFModel model = MakeTestModel(200, 50, 8, 7);
  MaximusSolver maximus;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  const Clustering& clustering = maximus.clustering();
  for (Index u = 0; u < 200; ++u) {
    const Index j = clustering.assignment[static_cast<std::size_t>(u)];
    const Real theta = AngleFromCosine(CosineSimilarity(
        model.users.Row(u), clustering.centroids.Row(j), 8));
    EXPECT_LE(theta, maximus.theta_b()[static_cast<std::size_t>(j)] + 1e-9);
  }
}

TEST(MaximusTest, RejectsBadInput) {
  MaximusSolver maximus;
  Matrix empty;
  const MFModel model = MakeTestModel(10, 10, 4, 9);
  EXPECT_FALSE(maximus.Prepare(ConstRowBlock(empty),
                               ConstRowBlock(model.items)).ok());
  TopKResult out;
  EXPECT_EQ(maximus.TopKForUsers(1, {}, &out).code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------ Exactness

class MaximusExactnessTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, bool, double>> {};

TEST_P(MaximusExactnessTest, MatchesBruteForce) {
  const auto [k, clusters, block_size, spherical, dispersion] = GetParam();
  const MFModel model =
      MakeTestModel(150, 250, 12, /*seed=*/31, /*norm_sigma=*/0.6,
                    /*dispersion=*/dispersion);
  MaximusOptions options;
  options.num_clusters = clusters;
  options.block_size = block_size;
  options.spherical_clustering = spherical;
  MaximusSolver maximus(options);
  BmmSolver bmm;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(maximus.TopKAll(k, &got).ok());
  ASSERT_TRUE(bmm.TopKAll(k, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
  ExpectValidTopK(got, AllUsers(150), model, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaximusExactnessTest,
    ::testing::Values(
        std::make_tuple(1, 8, 64, false, 0.3),
        std::make_tuple(5, 8, 64, false, 0.3),
        std::make_tuple(10, 8, 0, false, 0.3),     // blocking disabled
        std::make_tuple(5, 1, 32, false, 0.5),     // single cluster
        std::make_tuple(5, 16, 16, false, 0.5),    // many clusters
        std::make_tuple(5, 8, 1024, false, 0.5),   // block > items
        std::make_tuple(5, 8, 64, true, 0.3),      // spherical clustering
        std::make_tuple(50, 4, 64, false, 1.0)));  // large K, diffuse users

TEST(MaximusTest, VisitStatisticsBounded) {
  const MFModel model =
      MakeTestModel(200, 500, 10, /*seed=*/37, /*norm_sigma=*/0.9,
                    /*dispersion=*/0.2);
  MaximusSolver maximus;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(maximus.TopKAll(1, &out).ok());
  EXPECT_GE(maximus.mean_items_visited(), 1.0);
  EXPECT_LE(maximus.mean_items_visited(), 500.0);
  // Tight user clusters + skewed norms: pruning must be substantial.
  EXPECT_LT(maximus.mean_items_visited(), 250.0);
}

TEST(MaximusTest, LesionItemBlockingSameResults) {
  const MFModel model = MakeTestModel(120, 300, 10, 41, 0.7, 0.4);
  MaximusOptions with_blocking;
  with_blocking.block_size = 128;
  MaximusOptions without_blocking;
  without_blocking.block_size = 0;
  MaximusSolver a(with_blocking);
  MaximusSolver b(without_blocking);
  ASSERT_TRUE(a.Prepare(ConstRowBlock(model.users),
                        ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(b.Prepare(ConstRowBlock(model.users),
                        ConstRowBlock(model.items)).ok());
  TopKResult ra;
  TopKResult rb;
  ASSERT_TRUE(a.TopKAll(5, &ra).ok());
  ASSERT_TRUE(b.TopKAll(5, &rb).ok());
  ExpectSameTopKScores(ra, rb, 1e-7);
}

TEST(MaximusTest, SubsetQueriesExact) {
  const MFModel model = MakeTestModel(90, 120, 8, 43);
  MaximusSolver maximus;
  BmmSolver bmm;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  const std::vector<Index> subset = {88, 3, 41, 3, 0};
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(maximus.TopKForUsers(3, subset, &got).ok());
  ASSERT_TRUE(bmm.TopKForUsers(3, subset, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
}

TEST(MaximusTest, ThreadedMatchesSingleThreaded) {
  const MFModel model = MakeTestModel(160, 200, 10, 47);
  MaximusSolver single;
  MaximusSolver threaded;
  ThreadPool pool(4);
  threaded.set_thread_pool(&pool);
  ASSERT_TRUE(single.Prepare(ConstRowBlock(model.users),
                             ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(threaded.Prepare(ConstRowBlock(model.users),
                               ConstRowBlock(model.items)).ok());
  TopKResult a;
  TopKResult b;
  ASSERT_TRUE(single.TopKAll(5, &a).ok());
  ASSERT_TRUE(threaded.TopKAll(5, &b).ok());
  ExpectSameTopKScores(a, b, 1e-9);
}

TEST(MaximusTest, KLargerThanItemsPads) {
  const MFModel model = MakeTestModel(12, 4, 6, 53);
  MaximusSolver maximus;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(maximus.TopKAll(6, &out).ok());
  for (Index u = 0; u < 12; ++u) {
    EXPECT_GE(out.Row(u)[3].item, 0);
    EXPECT_EQ(out.Row(u)[4].item, -1);
  }
}

TEST(MaximusTest, ZeroNormUserGetsZeroScores) {
  MFModel model = MakeTestModel(20, 30, 5, 59);
  for (Index c = 0; c < 5; ++c) model.users(4, c) = 0;
  MaximusSolver maximus;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(maximus.TopKAll(3, &out).ok());
  for (Index e = 0; e < 3; ++e) {
    EXPECT_EQ(out.Row(4)[e].score, 0.0);
  }
}

// --------------------------------------------------------- Dynamic users

TEST(MaximusTest, DynamicUserQueryIsExact) {
  // Prepare on 200 users, then query 50 *new* users drawn from the same
  // distribution (plus a few adversarially far-from-centroid ones).
  const MFModel model = MakeTestModel(200, 300, 10, 61, 0.6, 0.4);
  const MFModel extra = MakeTestModel(50, 300, 10, 62, 0.6, 1.5);
  MaximusSolver maximus;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  const Index k = 5;
  std::vector<TopKEntry> row(static_cast<std::size_t>(k));
  for (Index u = 0; u < 50; ++u) {
    ASSERT_TRUE(maximus.QueryDynamicUser(extra.users.Row(u), k, row.data()).ok());
    // Reference: direct scan.
    TopKHeap heap(k);
    for (Index i = 0; i < 300; ++i) {
      heap.Push(i, Dot(extra.users.Row(u), model.items.Row(i), 10));
    }
    std::vector<TopKEntry> expected(static_cast<std::size_t>(k));
    heap.ExtractDescending(expected.data());
    for (Index e = 0; e < k; ++e) {
      EXPECT_NEAR(row[static_cast<std::size_t>(e)].score,
                  expected[static_cast<std::size_t>(e)].score, 1e-7)
          << "user " << u << " entry " << e;
    }
  }
}

TEST(MaximusTest, AssignNewUserMatchesNearestCentroid) {
  const MFModel model = MakeTestModel(100, 50, 6, 67);
  MaximusSolver maximus;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items)).ok());
  for (Index u = 0; u < 20; ++u) {
    EXPECT_EQ(maximus.AssignNewUser(model.users.Row(u)),
              AssignToNearest(model.users.Row(u),
                              maximus.clustering().centroids));
  }
}

}  // namespace
}  // namespace mips
