#include "data/mf_trainer.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"

namespace mips {

StatusOr<MFModel> TrainMF(const std::vector<Rating>& ratings, Index num_users,
                          Index num_items, const MFTrainConfig& config) {
  if (num_users <= 0 || num_items <= 0 || config.num_factors <= 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (config.epochs <= 0 || config.learning_rate <= 0) {
    return Status::InvalidArgument("epochs and learning_rate must be positive");
  }
  for (const Rating& r : ratings) {
    if (r.user < 0 || r.user >= num_users || r.item < 0 ||
        r.item >= num_items) {
      return Status::OutOfRange("rating references out-of-range user/item");
    }
  }

  const Index f = config.num_factors;
  Rng rng(config.seed);
  MFModel model;
  model.name = "trained-mf";
  model.users.Resize(num_users, f);
  model.items.Resize(num_items, f);
  for (std::size_t i = 0; i < model.users.size(); ++i) {
    model.users.data()[i] =
        static_cast<Real>(rng.Normal(0.0, config.init_scale));
  }
  for (std::size_t i = 0; i < model.items.size(); ++i) {
    model.items.data()[i] =
        static_cast<Real>(rng.Normal(0.0, config.init_scale));
  }

  // SGD over a reshuffled example order each epoch.
  std::vector<std::size_t> order(ratings.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const Real lr = config.learning_rate;
  const Real reg = config.regularization;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = rng.UniformInt(i);
      std::swap(order[i - 1], order[j]);
    }
    for (const std::size_t idx : order) {
      const Rating& r = ratings[idx];
      Real* u = model.users.Row(r.user);
      Real* v = model.items.Row(r.item);
      const Real err = r.value - Dot(u, v, f);
      for (Index k = 0; k < f; ++k) {
        const Real uk = u[k];
        // mips-tidy: allow(float-accumulation): element-wise SGD update,
        // not a dot-product reduction.
        u[k] += lr * (err * v[k] - reg * uk);
        // mips-tidy: allow(float-accumulation): element-wise SGD update,
        // not a dot-product reduction.
        v[k] += lr * (err * uk - reg * v[k]);
      }
    }
  }
  return model;
}

Real ComputeRMSE(const MFModel& model, const std::vector<Rating>& ratings) {
  if (ratings.empty()) return 0;
  Real sse = 0;
  const Index f = model.num_factors();
  for (const Rating& r : ratings) {
    const Real pred = Dot(model.users.Row(r.user), model.items.Row(r.item), f);
    const Real err = r.value - pred;
    // mips-tidy: allow(float-accumulation): RMSE training diagnostic.
    sse += err * err;
  }
  return std::sqrt(sse / static_cast<Real>(ratings.size()));
}

std::vector<Rating> GenerateSyntheticRatings(Index num_users, Index num_items,
                                             std::size_t count,
                                             Index true_rank, Real noise,
                                             uint64_t seed) {
  Rng rng(seed);
  // Ground-truth low-rank factors.
  Matrix gu(num_users, true_rank);
  Matrix gi(num_items, true_rank);
  for (std::size_t i = 0; i < gu.size(); ++i) {
    gu.data()[i] = static_cast<Real>(rng.Normal(0.0, 0.8));
  }
  for (std::size_t i = 0; i < gi.size(); ++i) {
    gi.data()[i] = static_cast<Real>(rng.Normal(0.0, 0.8));
  }
  std::vector<Rating> ratings;
  ratings.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    Rating r;
    r.user = static_cast<Index>(rng.UniformInt(static_cast<uint64_t>(num_users)));
    r.item = static_cast<Index>(rng.UniformInt(static_cast<uint64_t>(num_items)));
    r.value = Dot(gu.Row(r.user), gi.Row(r.item), true_rank) +
              static_cast<Real>(rng.Normal(0.0, noise));
    ratings.push_back(r);
  }
  return ratings;
}

}  // namespace mips
