// Symmetric eigen-decomposition via cyclic Jacobi rotations.
//
// FEXIPRO's "S" transform needs the right singular vectors of the item
// matrix P (n x f).  Since f <= 200 in every paper workload, we obtain them
// from the eigen-decomposition of the f x f Gram matrix G = P^T P: the
// eigenvectors of G are the right singular vectors of P and the singular
// values are sqrt(eigenvalues).  Jacobi is simple, numerically robust for
// symmetric matrices, and O(f^3) per sweep — negligible next to the MIPS
// scoring cost.

#ifndef MIPS_LINALG_SYM_EIGEN_H_
#define MIPS_LINALG_SYM_EIGEN_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace mips {

/// Result of a symmetric eigen-decomposition: A = V^T diag(values) V with
/// row r of `vectors` holding the eigenvector for values[r].  Eigenvalues
/// are sorted in descending order.
struct EigenDecomposition {
  std::vector<Real> values;
  Matrix vectors;  // f x f; row r = eigenvector r (unit length)
};

/// Decomposes the symmetric matrix `a` (f x f).  Returns InvalidArgument if
/// `a` is not square, FailedPrecondition if it is not symmetric within
/// 1e-8 * max|a|, and Internal if Jacobi fails to converge in `max_sweeps`.
Status JacobiEigenSymmetric(const Matrix& a, EigenDecomposition* out,
                            int max_sweeps = 64);

/// Gram matrix G = P^T P (f x f) of a row-major n x f matrix.
Matrix GramMatrix(const ConstRowBlock& p);

}  // namespace mips

#endif  // MIPS_LINALG_SYM_EIGEN_H_
