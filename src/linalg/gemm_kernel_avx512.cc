// AVX-512 variant of the 4x16 micro-kernel.  Compiled with -mavx512f in
// its own TU (see src/linalg/CMakeLists.txt) so the binary carries it even
// when the rest of the build targets a smaller ISA; executed only after
// the dispatcher verified CPUID support.  MIPS_GEMM_NO_AVX512 is defined
// at configure time when the compiler cannot target AVX-512 at all.

#include "linalg/gemm_kernel.h"

#if !defined(MIPS_GEMM_NO_AVX512)

#include <immintrin.h>

namespace mips {

// 8 zmm accumulators, one broadcast + two FMAs per (k, row) step.  This
// is where BMM's "decades of hardware optimization" constant factor comes
// from — on hardware whose 512-bit units are real, not emulated.
void GemmMicroKernelAvx512(const Real* ap, const Real* bp, Index kb,
                           Real alpha, Real* c, Index ldc) {
  __m512d acc00 = _mm512_setzero_pd(), acc01 = _mm512_setzero_pd();
  __m512d acc10 = _mm512_setzero_pd(), acc11 = _mm512_setzero_pd();
  __m512d acc20 = _mm512_setzero_pd(), acc21 = _mm512_setzero_pd();
  __m512d acc30 = _mm512_setzero_pd(), acc31 = _mm512_setzero_pd();
  for (Index kk = 0; kk < kb; ++kk) {
    const __m512d b0 = _mm512_loadu_pd(bp + kk * kGemmNR);
    const __m512d b1 = _mm512_loadu_pd(bp + kk * kGemmNR + 8);
    const __m512d a0 = _mm512_set1_pd(ap[kk * kGemmMR + 0]);
    acc00 = _mm512_fmadd_pd(a0, b0, acc00);
    acc01 = _mm512_fmadd_pd(a0, b1, acc01);
    const __m512d a1 = _mm512_set1_pd(ap[kk * kGemmMR + 1]);
    acc10 = _mm512_fmadd_pd(a1, b0, acc10);
    acc11 = _mm512_fmadd_pd(a1, b1, acc11);
    const __m512d a2 = _mm512_set1_pd(ap[kk * kGemmMR + 2]);
    acc20 = _mm512_fmadd_pd(a2, b0, acc20);
    acc21 = _mm512_fmadd_pd(a2, b1, acc21);
    const __m512d a3 = _mm512_set1_pd(ap[kk * kGemmMR + 3]);
    acc30 = _mm512_fmadd_pd(a3, b0, acc30);
    acc31 = _mm512_fmadd_pd(a3, b1, acc31);
  }
  const __m512d valpha = _mm512_set1_pd(alpha);
  const auto update = [&](Real* crow, __m512d lo, __m512d hi) {
    _mm512_storeu_pd(crow,
                     _mm512_fmadd_pd(valpha, lo, _mm512_loadu_pd(crow)));
    _mm512_storeu_pd(crow + 8,
                     _mm512_fmadd_pd(valpha, hi, _mm512_loadu_pd(crow + 8)));
  };
  update(c + 0 * static_cast<std::size_t>(ldc), acc00, acc01);
  update(c + 1 * static_cast<std::size_t>(ldc), acc10, acc11);
  update(c + 2 * static_cast<std::size_t>(ldc), acc20, acc21);
  update(c + 3 * static_cast<std::size_t>(ldc), acc30, acc31);
}

bool GemmAvx512KernelCompiled() { return true; }

}  // namespace mips

#else  // MIPS_GEMM_NO_AVX512

namespace mips {

void GemmMicroKernelAvx512(const Real* ap, const Real* bp, Index kb,
                           Real alpha, Real* c, Index ldc) {
  GemmMicroKernelPortable(ap, bp, kb, alpha, c, ldc);
}

bool GemmAvx512KernelCompiled() { return false; }

}  // namespace mips

#endif  // MIPS_GEMM_NO_AVX512
