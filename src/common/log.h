// Tiny leveled logging to stderr.  Benches and examples use INFO; library
// code logs only unusual situations (e.g. k-means empty-cluster reseeds) at
// DEBUG so default output stays quiet.

#ifndef MIPS_COMMON_LOG_H_
#define MIPS_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace mips {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Messages below this level are dropped.  Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MIPS_LOG(level)                                             \
  ::mips::internal::LogMessage(::mips::LogLevel::k##level, __FILE__, \
                               __LINE__)

}  // namespace mips

#endif  // MIPS_COMMON_LOG_H_
