// ShardedMipsEngine: scatter/gather exact MIPS over an item-sharded
// catalog, with an independent OPTIMUS decision per shard.
//
// The paper's core result is that the index-vs-BMM winner depends on the
// data — norm skew, dimensionality, k (Figure 2/5) — so a sharded catalog
// should not make one global decision.  Each shard here is a full
// MipsEngine over (all users, that shard's items): it builds its own
// candidate indexes, runs its own OPTIMUS decision, and may pick a
// different solver than its neighbors (a norm-skewed shard prunes with
// LEMP while a flat shard falls back to BMM).  stats() surfaces every
// shard's winner, serve counters, and re-decisions so that heterogeneity
// is observable, not hidden.
//
// Serving is scatter/gather: a TopK/TopKNewUser call fans across the
// shards, each answers exact top-k over its items (local ids), ids are
// remapped to global through the partition, and the per-shard rows are
// k-way merged (topk/merge.h) into the exact global top-k.  Every item
// lives in exactly one shard and every layer — heap eviction, strict
// pruning bounds, row extraction, merge — uses the library-wide
// BetterEntry tie order, so the merged result is bit-for-bit the
// unsharded engine's answer, including which of several exactly tied
// items is reported.  This holds for every solver family, FEXIPRO
// included: solvers whose pruning runs in an item-set-dependent
// transform space (FEXIPRO's SVD rotation) rescore survivors against
// the original vectors before they enter the heap, so a shard's
// rotation can never shift a reported score by an ulp and flip an exact
// cross-shard tie.
//
// Threading: the sharded engine owns one pool shared by every shard
// engine (EngineOptions::shared_pool) — shard candidate indexes build
// concurrently during Open (each shard's Open runs on its own thread,
// its candidate Prepares on the shared pool), and at query time each
// shard's intra-batch parallelism draws from the same pool.  The scatter
// itself visits shards sequentially on the calling thread: per-shard
// work already multiplexes onto the pool, and a serving deployment gets
// its cross-shard concurrency from many simultaneous callers — the same
// contract as MipsEngine (PR 2), with no risk of waiting on the pool
// from inside a pool task.  The known cost of that contract carries
// over too: ThreadPool::Wait is global-idle, so under a pool (threads >
// 0) one caller's intra-batch wait also drains other callers' queued
// chunks; the per-caller task group on the ROADMAP would decouple them
// and additionally allow a parallel scatter.
//
// Thread safety mirrors MipsEngine: after Open, TopK / TopKAll /
// TopKNewUser / stats() / ForceStrategy* may be called from any number
// of threads concurrently.

#ifndef MIPS_SHARD_SHARDED_ENGINE_H_
#define MIPS_SHARD_SHARDED_ENGINE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "shard/partition.h"

namespace mips {

/// Configuration for ShardedMipsEngine::Open.
struct ShardedEngineOptions {
  /// Number of item shards (>= 1; 1 degenerates to an unsharded engine
  /// behind the sharded interface).
  int num_shards = 2;
  /// Item placement policy (see shard/partition.h).
  ShardingStrategy sharding = ShardingStrategy::kContiguous;
  /// Pinned block size for kGrowth placement (0 = derive from the item
  /// count at Open); ignored by the other strategies.
  Index growth_block = 0;
  /// Per-shard engine configuration (decision k, candidate specs,
  /// optimus knobs, redecide/cache policy).  `threads` and `shared_pool`
  /// are overridden: every shard runs on the sharded engine's own pool.
  EngineOptions engine;
  /// Worker threads in the pool shared by all shard engines
  /// (0 = single-threaded).
  int threads = 0;
};

/// Exact MIPS over an item-sharded catalog; see the file comment.
class ShardedMipsEngine {
 public:
  /// Partitions the items, opens one MipsEngine per non-empty shard
  /// (concurrently), and runs each shard's OPTIMUS decision.  The model
  /// views must outlive the engine.
  static StatusOr<std::unique_ptr<ShardedMipsEngine>> Open(
      const ConstRowBlock& users, const ConstRowBlock& items,
      const ShardedEngineOptions& options = {});

  /// Exact global top-K for a mini-batch of known users: scatter to every
  /// shard, gather + merge.  Identical to the unsharded MipsEngine result
  /// (ids remapped to global; BetterEntry order).  Safe for concurrent
  /// callers.
  Status TopK(Index k, std::span<const Index> user_ids, TopKResult* out)
      EXCLUDES(stats_mu_);

  /// Exact global top-K for every prepared user.
  Status TopKAll(Index k, TopKResult* out);

  /// Exact global top-K for a user vector outside the prepared user
  /// matrix.  `out_row` must hold k entries.  Routed through the one-row
  /// batched path, so the answer is bit-for-bit the num_rows = 1 case of
  /// TopKNewUsers below.
  Status TopKNewUser(const Real* user_vector, Index k, TopKEntry* out_row);

  /// Exact global top-K for a mini-batch of new-user vectors
  /// (`num_rows` x num_factors(), row-major): scatter the whole batch to
  /// every shard's batched new-user path, remap, k-way merge.  Each row of
  /// *out is bit-for-bit what TopKNewUser returns for that vector alone —
  /// the per-shard GEMM computes each (row, item) score independently of
  /// the other batch rows — which is what lets a serving layer coalesce
  /// singleton traffic without changing any answer.
  Status TopKNewUsers(const Real* user_vectors, Index num_rows, Index k,
                      TopKResult* out) EXCLUDES(stats_mu_);

  /// Forces every shard onto the candidate named by solver name or exact
  /// opening spec.  All shards share the same candidate list, so this
  /// either applies everywhere or fails everywhere (NotFound).
  Status ForceStrategy(const std::string& name_or_spec);
  /// Forces a single shard, leaving the others on their own decisions
  /// (operator escape hatch: pin one degenerate shard without giving up
  /// per-shard optimization elsewhere).
  Status ForceStrategyOnShard(int shard, const std::string& name_or_spec);
  /// Returns every shard to decision-driven selection.
  void ClearForcedStrategy();

  /// MipsEngine::InvalidateDecisions over every non-empty shard (the
  /// catalog layer's swap-time retirement hook); returns the total
  /// number of cached decisions retired.
  int64_t InvalidateDecisions();

  int num_shards() const { return partition_.num_shards(); }
  const ItemPartition& partition() const { return partition_; }
  /// The engine serving shard s, or null for an empty shard.
  /// Precondition: 0 <= s < num_shards() (asserted, like Matrix::Row).
  const MipsEngine* shard_engine(int s) const {
    assert(s >= 0 && s < num_shards());
    return engines_[static_cast<std::size_t>(s)].get();
  }
  /// Strategy currently serving shard s ("" for an empty shard).
  /// Precondition: 0 <= s < num_shards() (asserted).
  std::string shard_strategy(int s) const;

  Index num_users() const { return users_.rows(); }
  Index num_items() const { return partition_.num_items(); }
  Index num_factors() const { return users_.cols(); }

  /// Aggregate + per-shard serving statistics.
  struct ShardSnapshot {
    Index num_items = 0;
    /// Strategy serving the shard's decision k right now ("" if empty).
    std::string strategy;
    /// The shard's opening OPTIMUS winner ("" if empty).
    std::string opening_choice;
    MipsEngine::Stats stats;
  };
  struct Stats {
    /// Sharded-engine-level counters (one batch = one scatter/gather).
    int64_t batches_served = 0;
    int64_t users_served = 0;
    int64_t new_users_served = 0;
    /// End-to-end scatter + gather + merge time.
    double serve_seconds = 0;
    /// Sums over shards (each shard's own counters are in `shards`).
    int64_t redecisions = 0;
    int64_t decision_cache_hits = 0;
    int64_t decision_cache_misses = 0;
    int64_t decision_cache_evictions = 0;
    int64_t decision_cache_expirations = 0;
    int64_t decision_cache_invalidations = 0;
    /// The process-global GEMM micro-kernel every shard's GEMMs dispatch
    /// to ("" when every shard is empty).
    std::string gemm_kernel;
    std::vector<ShardSnapshot> shards;
  };
  Stats stats() const EXCLUDES(stats_mu_);

  /// Just the sharded-engine-level counters above — one lock, four
  /// copies, no per-shard snapshot.  For per-request hot paths
  /// (ServingSession) where stats()'s vector + string + per-shard-lock
  /// cost is too much.  The snapshot is cross-field consistent: a
  /// scatter/gather publishes all of its counter updates under one lock,
  /// so a reader never sees batches_served without its serve_seconds.
  struct Counters {
    int64_t batches_served = 0;
    int64_t users_served = 0;
    int64_t new_users_served = 0;
    double serve_seconds = 0;
  };
  Counters counters() const EXCLUDES(stats_mu_);

 private:
  ShardedMipsEngine() = default;

  /// Scatter a batch, remap ids to global, merge into *out.
  Status ScatterGather(Index k, std::span<const Index> user_ids,
                       TopKResult* out);

  ConstRowBlock users_;
  ShardedEngineOptions options_;
  ItemPartition partition_;
  std::unique_ptr<ThreadPool> pool_;
  /// One engine per shard; null for empty shards.
  std::vector<std::unique_ptr<MipsEngine>> engines_;
  /// Indices of non-empty shards (scatter order).
  std::vector<int> active_shards_;

  /// Engine-level serve counters.  A mutex (not per-field atomics) so
  /// each scatter/gather's updates publish together and counters() hands
  /// back a cross-field-consistent snapshot; the lock is taken once per
  /// batch, far off any per-item path.
  mutable Mutex stats_mu_;
  Counters counters_ GUARDED_BY(stats_mu_);
};

}  // namespace mips

#endif  // MIPS_SHARD_SHARDED_ENGINE_H_
