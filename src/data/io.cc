#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace mips {
namespace {
constexpr char kMagic[8] = {'M', 'I', 'P', 'S', 'M', 'A', 'T', '1'};
}  // namespace

Status SaveMatrixBinary(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(Real)));
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

StatusOr<Matrix> LoadMatrixBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  int64_t rows = 0;
  int64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in || rows < 0 || cols < 0 || rows > (int64_t{1} << 31) ||
      cols > (int64_t{1} << 31)) {
    return Status::InvalidArgument("bad dimensions in " + path);
  }
  Matrix m(static_cast<Index>(rows), static_cast<Index>(cols));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(Real)));
  if (!in) return Status::IOError("short read: " + path);
  return m;
}

Status SaveMatrixCsv(const Matrix& m, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  for (Index r = 0; r < m.rows(); ++r) {
    const Real* row = m.Row(r);
    for (Index c = 0; c < m.cols(); ++c) {
      std::fprintf(f, c == 0 ? "%.17g" : ",%.17g", row[c]);
    }
    std::fputc('\n', f);
  }
  const bool ok = std::fclose(f) == 0;
  return ok ? Status::OK() : Status::IOError("close failed: " + path);
}

StatusOr<Matrix> LoadMatrixCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<std::vector<Real>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<Real> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad number '" + cell + "' in " + path);
      }
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::InvalidArgument("ragged rows in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<Index>(rows.size()),
           static_cast<Index>(rows.front().size()));
  for (Index r = 0; r < m.rows(); ++r) {
    const auto& src = rows[static_cast<std::size_t>(r)];
    std::memcpy(m.Row(r), src.data(), src.size() * sizeof(Real));
  }
  return m;
}

}  // namespace mips
