#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "linalg/blas.h"
#include "solvers/lemp/bucket.h"

namespace mips {
namespace lemp {

SortedItems SortItemsByNorm(const ConstRowBlock& items,
                            Index num_checkpoints) {
  const Index n = items.rows();
  const Index f = items.cols();
  SortedItems sorted;

  std::vector<Real> raw_norms(static_cast<std::size_t>(n));
  RowNorms(items.data(), n, f, raw_norms.data());

  sorted.ids.resize(static_cast<std::size_t>(n));
  std::iota(sorted.ids.begin(), sorted.ids.end(), 0);
  std::stable_sort(sorted.ids.begin(), sorted.ids.end(),
                   [&](Index a, Index b) {
                     return raw_norms[static_cast<std::size_t>(a)] >
                            raw_norms[static_cast<std::size_t>(b)];
                   });

  sorted.vectors.Resize(n, f);
  sorted.norms.resize(static_cast<std::size_t>(n));
  for (Index r = 0; r < n; ++r) {
    const Index src = sorted.ids[static_cast<std::size_t>(r)];
    std::memcpy(sorted.vectors.Row(r), items.Row(src),
                static_cast<std::size_t>(f) * sizeof(Real));
    sorted.norms[static_cast<std::size_t>(r)] =
        raw_norms[static_cast<std::size_t>(src)];
  }

  // Checkpoint dimensions: num_checkpoints evenly spaced cut points in
  // (0, f), deduplicated (small f can collapse some).
  for (Index c = 1; c <= num_checkpoints; ++c) {
    const Index dim = static_cast<Index>(
        static_cast<int64_t>(f) * c / (num_checkpoints + 1));
    if (dim > 0 && dim < f &&
        (sorted.checkpoint_dims.empty() ||
         sorted.checkpoint_dims.back() != dim)) {
      sorted.checkpoint_dims.push_back(dim);
    }
  }

  const Index ncp = static_cast<Index>(sorted.checkpoint_dims.size());
  sorted.suffix_norms.resize(static_cast<std::size_t>(n) * ncp);
  for (Index r = 0; r < n; ++r) {
    const Real* v = sorted.vectors.Row(r);
    for (Index c = 0; c < ncp; ++c) {
      const Index start = sorted.checkpoint_dims[static_cast<std::size_t>(c)];
      sorted.suffix_norms[static_cast<std::size_t>(r) * ncp + c] =
          Nrm2(v + start, f - start);
    }
  }
  return sorted;
}

std::vector<Bucket> MakeBuckets(const SortedItems& sorted, Index bucket_size) {
  const Index n = sorted.vectors.rows();
  const Index f = sorted.vectors.cols();
  std::vector<Bucket> buckets;
  if (n == 0 || bucket_size <= 0) return buckets;
  for (Index begin = 0; begin < n; begin += bucket_size) {
    Bucket b;
    b.begin = begin;
    b.end = std::min<Index>(n, begin + bucket_size);
    b.max_norm = sorted.norms[static_cast<std::size_t>(b.begin)];
    b.min_norm = sorted.norms[static_cast<std::size_t>(b.end - 1)];
    // Per-dimension coordinate ranges for the kCoord bound.
    b.coord_min.assign(static_cast<std::size_t>(f),
                       std::numeric_limits<Real>::max());
    b.coord_max.assign(static_cast<std::size_t>(f),
                       std::numeric_limits<Real>::lowest());
    for (Index pos = b.begin; pos < b.end; ++pos) {
      const Real* v = sorted.vectors.Row(pos);
      for (Index d = 0; d < f; ++d) {
        auto& lo = b.coord_min[static_cast<std::size_t>(d)];
        auto& hi = b.coord_max[static_cast<std::size_t>(d)];
        lo = std::min(lo, v[d]);
        hi = std::max(hi, v[d]);
      }
    }
    buckets.push_back(std::move(b));
  }
  return buckets;
}

}  // namespace lemp
}  // namespace mips
