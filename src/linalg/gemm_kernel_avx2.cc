// AVX2+FMA variant of the 4x16 micro-kernel: 16 ymm accumulators.
// Compiled with -mavx2 -mfma -mno-avx512f in its own TU so it stays a
// genuinely 256-bit code path even when the rest of the build targets
// AVX-512 — on VM classes that emulate or down-clock 512-bit ops this is
// the kernel the startup probe ends up installing.  MIPS_GEMM_NO_AVX2 is
// defined at configure time when the compiler cannot target AVX2.

#include "linalg/gemm_kernel.h"

#if !defined(MIPS_GEMM_NO_AVX2)

#include <immintrin.h>

namespace mips {

void GemmMicroKernelAvx2(const Real* ap, const Real* bp, Index kb, Real alpha,
                         Real* c, Index ldc) {
  __m256d acc[kGemmMR][4];
  for (Index i = 0; i < kGemmMR; ++i) {
    for (int v = 0; v < 4; ++v) acc[i][v] = _mm256_setzero_pd();
  }
  for (Index kk = 0; kk < kb; ++kk) {
    __m256d b[4];
    for (int v = 0; v < 4; ++v) {
      b[v] = _mm256_loadu_pd(bp + kk * kGemmNR + 4 * v);
    }
    for (Index i = 0; i < kGemmMR; ++i) {
      const __m256d a = _mm256_set1_pd(ap[kk * kGemmMR + i]);
      for (int v = 0; v < 4; ++v) {
        acc[i][v] = _mm256_fmadd_pd(a, b[v], acc[i][v]);
      }
    }
  }
  const __m256d valpha = _mm256_set1_pd(alpha);
  for (Index i = 0; i < kGemmMR; ++i) {
    Real* crow = c + static_cast<std::size_t>(i) * ldc;
    for (int v = 0; v < 4; ++v) {
      _mm256_storeu_pd(crow + 4 * v,
                       _mm256_fmadd_pd(valpha, acc[i][v],
                                       _mm256_loadu_pd(crow + 4 * v)));
    }
  }
}

bool GemmAvx2KernelCompiled() { return true; }

}  // namespace mips

#else  // MIPS_GEMM_NO_AVX2

namespace mips {

void GemmMicroKernelAvx2(const Real* ap, const Real* bp, Index kb, Real alpha,
                         Real* c, Index ldc) {
  GemmMicroKernelPortable(ap, bp, kb, alpha, c, ldc);
}

bool GemmAvx2KernelCompiled() { return false; }

}  // namespace mips

#endif  // MIPS_GEMM_NO_AVX2
