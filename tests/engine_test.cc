// Tests for the MipsEngine facade: spec-driven opening, equivalence with
// a direct Optimus::Run, per-call k handling (re-decide and fallback),
// strategy override, the new-user path, and cumulative stats.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/maximus.h"
#include "core/optimus.h"
#include "linalg/blas.h"
#include "solvers/bmm.h"
#include "test_util.h"
#include "topk/topk_heap.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::MakeTestModel;

EngineOptions SmallEngineOptions(Index k = 5) {
  EngineOptions options;
  options.k = k;
  options.optimus.l2_cache_bytes = 16 * 1024;
  return options;
}

TEST(EngineOpenTest, ValidatesOptions) {
  const MFModel model = MakeTestModel(100, 50, 8, 1);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  EXPECT_FALSE(MipsEngine::Open(users, items, SmallEngineOptions(0)).ok());

  EngineOptions no_solvers = SmallEngineOptions();
  no_solvers.solvers.clear();
  EXPECT_FALSE(MipsEngine::Open(users, items, no_solvers).ok());

  EngineOptions unknown = SmallEngineOptions();
  unknown.solvers = {"bmm", "no-such-solver"};
  auto status = MipsEngine::Open(users, items, unknown);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.status().message().find("no-such-solver"),
            std::string::npos);

  // A malformed candidate spec surfaces the registry error naming the
  // offending key.
  EngineOptions bad_key = SmallEngineOptions();
  bad_key.solvers = {"bmm", "maximus:warp_speed=9"};
  auto bad = MipsEngine::Open(users, items, bad_key);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("warp_speed"), std::string::npos);
}

TEST(EngineTest, MatchesDirectOptimusRun) {
  // The integration requirement: MipsEngine must return results
  // identical to driving Optimus::Run by hand with the same candidates
  // and knobs.
  const MFModel model = MakeTestModel(300, 200, 10, 3, /*norm_sigma=*/0.6);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  auto engine = MipsEngine::Open(users, items, SmallEngineOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  TopKResult got;
  ASSERT_TRUE((*engine)->TopKAll(5, &got).ok());

  BmmSolver bmm;
  MaximusSolver maximus;
  OptimusOptions optimus_options;
  optimus_options.l2_cache_bytes = 16 * 1024;
  Optimus optimus(optimus_options);
  TopKResult expected;
  OptimusReport report;
  ASSERT_TRUE(
      optimus.Run(users, items, 5, {&bmm, &maximus}, &expected, &report)
          .ok());

  // The sample is seed-deterministic; the winner may legitimately vary
  // with timing noise, but exactness may not.
  EXPECT_EQ((*engine)->decision_report().sample_size, report.sample_size);
  ExpectSameTopKScores(got, expected, 1e-7);
}

TEST(EngineTest, PerCallKRedecidesAndStaysExact) {
  const MFModel model = MakeTestModel(250, 120, 8, 7);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  auto engine = MipsEngine::Open(users, items, SmallEngineOptions(5));
  ASSERT_TRUE(engine.ok());

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());

  // A diverging k triggers exactly one re-decision; repeats hit the
  // cache.
  const std::vector<Index> batch = {0, 17, 249, 3};
  for (int repeat = 0; repeat < 3; ++repeat) {
    TopKResult got;
    TopKResult expected;
    ASSERT_TRUE((*engine)->TopK(9, batch, &got).ok());
    ASSERT_TRUE(reference.TopKForUsers(9, batch, &expected).ok());
    ExpectSameTopKScores(got, expected, 1e-7);
  }
  EXPECT_EQ((*engine)->stats().redecisions, 1);
  EXPECT_GT((*engine)->stats().redecision_seconds, 0.0);

  // The decision k itself never re-decides.
  TopKResult at_decision_k;
  ASSERT_TRUE((*engine)->TopK(5, batch, &at_decision_k).ok());
  EXPECT_EQ((*engine)->stats().redecisions, 1);
}

TEST(EngineTest, PerCallKFallbackWhenRedecideDisabled) {
  const MFModel model = MakeTestModel(200, 90, 8, 9);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  EngineOptions options = SmallEngineOptions(5);
  options.redecide_on_new_k = false;
  auto engine = MipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok());

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  TopKResult got;
  TopKResult expected;
  const std::vector<Index> batch = {1, 2, 3};
  ASSERT_TRUE((*engine)->TopK(12, batch, &got).ok());
  ASSERT_TRUE(reference.TopKForUsers(12, batch, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
  EXPECT_EQ((*engine)->stats().redecisions, 0);
}

TEST(EngineTest, SingleCandidateSkipsDecision) {
  const MFModel model = MakeTestModel(120, 60, 6, 11);
  EngineOptions options = SmallEngineOptions();
  options.solvers = {"lemp:bucket_size=64"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->strategy(), "lemp");
  EXPECT_TRUE((*engine)->decision_report().estimates.empty());

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE((*engine)->TopKAll(5, &got).ok());
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
}

TEST(EngineTest, ForceStrategyOverridesDecision) {
  const MFModel model = MakeTestModel(150, 80, 8, 13);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  EngineOptions options = SmallEngineOptions();
  options.solvers = {"bmm", "maximus", "lemp"};
  auto engine = MipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok());

  EXPECT_FALSE((*engine)->ForceStrategy("fexipro-si").ok());

  ASSERT_TRUE((*engine)->ForceStrategy("lemp").ok());
  EXPECT_EQ((*engine)->strategy(), "lemp");
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE((*engine)->TopKAll(4, &got).ok());
  ASSERT_TRUE(reference.TopKAll(4, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);

  (*engine)->ClearForcedStrategy();
  EXPECT_EQ((*engine)->strategy(), (*engine)->decision_report().chosen);
}

TEST(EngineTest, TunedVariantsAreAddressableBySpec) {
  // Two tuned variants of the same solver share a name; the exact
  // opening spec must still select each.
  const MFModel model = MakeTestModel(150, 80, 8, 21);
  EngineOptions options = SmallEngineOptions();
  options.solvers = {"maximus:clusters=2", "maximus:clusters=8"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_EQ((*engine)->candidate_specs().size(), 2u);
  EXPECT_EQ((*engine)->candidate_names()[0], (*engine)->candidate_names()[1]);

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(4, &expected).ok());
  for (const char* spec : {"maximus:clusters=8", "maximus:clusters=2"}) {
    ASSERT_TRUE((*engine)->ForceStrategy(spec).ok()) << spec;
    TopKResult got;
    ASSERT_TRUE((*engine)->TopKAll(4, &got).ok());
    ExpectSameTopKScores(got, expected, 1e-7);
  }
}

TEST(EngineTest, NewUsersAreExactUnderEveryStrategy) {
  const MFModel model = MakeTestModel(400, 150, 8, 5, 0.5, 0.3);
  const MFModel extra = MakeTestModel(20, 150, 8, 6, 0.5, 1.2);
  for (const char* forced : {"bmm", "maximus", "dynamic-maximus"}) {
    EngineOptions options = SmallEngineOptions();
    options.solvers = {"bmm", "maximus", "dynamic-maximus"};
    auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items), options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->ForceStrategy(forced).ok());
    std::vector<TopKEntry> row(5);
    for (Index u = 0; u < 10; ++u) {
      ASSERT_TRUE(
          (*engine)->TopKNewUser(extra.users.Row(u), 5, row.data()).ok());
      TopKHeap heap(5);
      for (Index i = 0; i < 150; ++i) {
        heap.Push(i, Dot(extra.users.Row(u), model.items.Row(i), 8));
      }
      std::vector<TopKEntry> expected(5);
      heap.ExtractDescending(expected.data());
      for (Index e = 0; e < 5; ++e) {
        EXPECT_NEAR(row[static_cast<std::size_t>(e)].score,
                    expected[static_cast<std::size_t>(e)].score, 1e-7)
            << forced << " user " << u << " entry " << e;
      }
    }
    EXPECT_EQ((*engine)->stats().new_users_served, 10);
  }
}

TEST(EngineTest, ValidatesQueryArguments) {
  const MFModel model = MakeTestModel(50, 30, 4, 15);
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items),
                                 SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  TopKResult out;
  const std::vector<Index> bad = {0, 50};
  EXPECT_EQ((*engine)->TopK(5, bad, &out).code(), StatusCode::kOutOfRange);
  const std::vector<Index> ok = {0, 49};
  EXPECT_EQ((*engine)->TopK(0, ok, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, StatsAccumulate) {
  const MFModel model = MakeTestModel(100, 60, 6, 17);
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items),
                                 SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  TopKResult out;
  const std::vector<Index> batch = {0, 1, 2};
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  ASSERT_TRUE((*engine)->TopK(5, batch, &out).ok());
  std::vector<TopKEntry> row(5);
  ASSERT_TRUE(
      (*engine)->TopKNewUser(model.users.Row(0), 5, row.data()).ok());
  EXPECT_EQ((*engine)->stats().batches_served, 2);
  EXPECT_EQ((*engine)->stats().users_served, 6);
  EXPECT_EQ((*engine)->stats().new_users_served, 1);
  EXPECT_GT((*engine)->stats().serve_seconds, 0.0);
}

TEST(EngineTest, ThreadedEngineStaysExact) {
  const MFModel model = MakeTestModel(300, 150, 8, 19);
  EngineOptions options = SmallEngineOptions();
  options.threads = 3;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok());
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE((*engine)->TopKAll(5, &got).ok());
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  ExpectSameTopKScores(got, expected, 1e-7);
}

}  // namespace
}  // namespace mips
