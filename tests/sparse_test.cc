// Sparse & hybrid MIPS tests: CsrMatrix construction/validation, the
// inverted-index posting orders, and — the load-bearing part — the
// bit-for-bit differential contract: sindi (both posting orders) and
// hybrid must reproduce the dense BMM reference EXACTLY, scores and tie
// order included, at every density, sharded or not.  Exactness here is
// ASSERT_EQ on doubles, deliberately: the sparse walks replicate the
// blocked GEMM's per-K-panel fma fold (sparse/csr_matrix.h), so any ulp
// of divergence is a bug, not tolerance noise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/optimus.h"
#include "core/registry.h"
#include "linalg/gemm.h"
#include "shard/sharded_engine.h"
#include "solvers/bmm.h"
#include "sparse/csr_matrix.h"
#include "sparse/hybrid.h"
#include "sparse/inverted_index.h"
#include "sparse/sindi.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::MakeTestModel;

// Synthetic model with a sparsified item catalog (see data/synthetic.h:
// density = 1 leaves the matrices bitwise identical to the dense
// generator; dense_fraction keeps a random head of rows fully dense).
MFModel MakeSparseModel(Index users, Index items, Index f, Real density,
                        Real dense_fraction = 0, uint64_t seed = 7) {
  SyntheticModelConfig config;
  config.num_users = users;
  config.num_items = items;
  config.num_factors = f;
  config.seed = seed;
  config.item_density = density;
  config.dense_item_fraction = dense_fraction;
  config.user_modes = std::max<Index>(2, users / 16);
  auto model = GenerateSyntheticModel(config);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

// Bit-for-bit top-K equality: item ids AND score doubles must be
// identical (padding sentinels are {-1, -inf} and compare equal).
void ExpectBitIdentical(const TopKResult& got, const TopKResult& want) {
  ASSERT_EQ(got.num_queries(), want.num_queries());
  ASSERT_EQ(got.k(), want.k());
  for (Index q = 0; q < got.num_queries(); ++q) {
    for (Index e = 0; e < got.k(); ++e) {
      ASSERT_EQ(got.Row(q)[e].item, want.Row(q)[e].item)
          << "row " << q << " entry " << e;
      ASSERT_EQ(got.Row(q)[e].score, want.Row(q)[e].score)
          << "row " << q << " entry " << e
          << " item " << got.Row(q)[e].item;
    }
  }
}

TopKResult BmmReference(const MFModel& model, Index k) {
  BmmSolver reference;
  EXPECT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  EXPECT_TRUE(reference.TopKAll(k, &expected).ok());
  return expected;
}

// ---------------------------------------------------------------------
// CsrMatrix
// ---------------------------------------------------------------------

TEST(CsrMatrixTest, FromDenseCompressesExactZeros) {
  Matrix dense(4, 6);
  std::memset(dense.data(), 0, dense.size() * sizeof(Real));
  dense.Row(0)[1] = 2.5;
  dense.Row(0)[4] = -1.0;
  // Row 1 stays all-zero: an empty CSR row, not a dropped row.
  dense.Row(2)[0] = 0.5;
  dense.Row(2)[5] = 3.0;
  dense.Row(3)[3] = -0.25;

  const CsrMatrix csr = CsrMatrix::FromDense(ConstRowBlock(dense));
  EXPECT_EQ(csr.rows(), 4);
  EXPECT_EQ(csr.cols(), 6);
  EXPECT_EQ(csr.nnz(), 5);
  EXPECT_EQ(csr.RowNnz(1), 0);
  ASSERT_EQ(csr.RowNnz(0), 2);
  EXPECT_EQ(csr.RowCols(0)[0], 1);
  EXPECT_EQ(csr.RowCols(0)[1], 4);
  EXPECT_EQ(csr.RowValues(0)[0], 2.5);
  EXPECT_EQ(csr.RowValues(0)[1], -1.0);
  EXPECT_NEAR(csr.density(), 5.0 / 24.0, 1e-12);

  const CsrMatrix::Stats stats = csr.ComputeStats();
  EXPECT_EQ(stats.rows, 4);
  EXPECT_EQ(stats.cols, 6);
  EXPECT_EQ(stats.nnz, 5);
  EXPECT_EQ(stats.min_row_nnz, 0);
  EXPECT_EQ(stats.max_row_nnz, 2);
  EXPECT_NEAR(stats.mean_row_nnz, 1.25, 1e-12);

  ASSERT_EQ(csr.row_norms().size(), 4u);
  EXPECT_EQ(csr.row_norms()[1], 0.0);
  EXPECT_NEAR(csr.row_norms()[0], std::sqrt(2.5 * 2.5 + 1.0), 1e-12);
}

TEST(CsrMatrixTest, FromDenseRowsGathersSubset) {
  const MFModel model = MakeSparseModel(4, 20, 16, 0.3);
  const std::vector<Index> rows = {1, 5, 6, 19};
  const CsrMatrix sub =
      CsrMatrix::FromDenseRows(ConstRowBlock(model.items), rows);
  const CsrMatrix full = CsrMatrix::FromDense(ConstRowBlock(model.items));
  ASSERT_EQ(sub.rows(), 4);
  EXPECT_EQ(sub.cols(), full.cols());
  for (Index r = 0; r < sub.rows(); ++r) {
    const Index src = rows[static_cast<std::size_t>(r)];
    ASSERT_EQ(sub.RowNnz(r), full.RowNnz(src));
    for (Index i = 0; i < sub.RowNnz(r); ++i) {
      EXPECT_EQ(sub.RowCols(r)[static_cast<std::size_t>(i)],
                full.RowCols(src)[static_cast<std::size_t>(i)]);
      EXPECT_EQ(sub.RowValues(r)[static_cast<std::size_t>(i)],
                full.RowValues(src)[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(CsrMatrixTest, FromTriplesAnyOrderMatchesFromDense) {
  Matrix dense(3, 5);
  std::memset(dense.data(), 0, dense.size() * sizeof(Real));
  dense.Row(0)[2] = 1.5;
  dense.Row(1)[0] = -2.0;
  dense.Row(1)[4] = 0.75;
  dense.Row(2)[1] = 4.0;
  // Deliberately shuffled triples, plus an exact zero that must drop.
  const std::vector<SparseTriple> triples = {
      {2, 1, 4.0}, {1, 4, 0.75}, {0, 2, 1.5}, {1, 0, -2.0}, {0, 3, 0.0}};
  auto csr = CsrMatrix::FromTriples(3, 5, triples);
  ASSERT_TRUE(csr.ok()) << csr.status().ToString();
  const CsrMatrix want = CsrMatrix::FromDense(ConstRowBlock(dense));
  ASSERT_EQ(csr->nnz(), want.nnz());
  for (Index r = 0; r < 3; ++r) {
    ASSERT_EQ(csr->RowNnz(r), want.RowNnz(r)) << "row " << r;
    for (Index i = 0; i < csr->RowNnz(r); ++i) {
      EXPECT_EQ(csr->RowCols(r)[static_cast<std::size_t>(i)],
                want.RowCols(r)[static_cast<std::size_t>(i)]);
      EXPECT_EQ(csr->RowValues(r)[static_cast<std::size_t>(i)],
                want.RowValues(r)[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(CsrMatrixTest, FromTriplesValidates) {
  EXPECT_FALSE(CsrMatrix::FromTriples(-1, 5, {}).ok());
  EXPECT_FALSE(
      CsrMatrix::FromTriples(2, 2, std::vector<SparseTriple>{{2, 0, 1.0}})
          .ok());  // row out of range
  EXPECT_FALSE(
      CsrMatrix::FromTriples(2, 2, std::vector<SparseTriple>{{0, -1, 1.0}})
          .ok());  // col out of range
  EXPECT_FALSE(CsrMatrix::FromTriples(
                   2, 2, std::vector<SparseTriple>{{0, 1, 1.0}, {0, 1, 2.0}})
                   .ok());  // duplicate coordinate
  auto empty = CsrMatrix::FromTriples(0, 0, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->nnz(), 0);
}

TEST(CsrMatrixTest, GemmEquivalentDotMatchesBlockedGemm) {
  // f = 300 > kGemmKPanel so the walk crosses a panel boundary, which is
  // where the fold order could diverge if it were wrong.
  static_assert(kGemmKPanel == 256, "fixture sized to cross one panel");
  const MFModel model = MakeSparseModel(6, 40, 300, 0.15);
  const CsrMatrix csr = CsrMatrix::FromDense(ConstRowBlock(model.items));
  Matrix scores(model.num_users(), model.num_items());
  GemmNT(ConstRowBlock(model.users), ConstRowBlock(model.items), &scores);
  for (Index u = 0; u < model.num_users(); ++u) {
    for (Index i = 0; i < model.num_items(); ++i) {
      ASSERT_EQ(csr.GemmEquivalentDot(i, model.users.Row(u)),
                scores.Row(u)[i])
          << "user " << u << " item " << i;
    }
  }
}

// ---------------------------------------------------------------------
// InvertedIndex
// ---------------------------------------------------------------------

TEST(InvertedIndexTest, PostingOrders) {
  Matrix dense(4, 3);
  std::memset(dense.data(), 0, dense.size() * sizeof(Real));
  dense.Row(0)[0] = 1.0;
  dense.Row(1)[0] = -3.0;
  dense.Row(2)[0] = 2.0;
  dense.Row(3)[0] = -1.0;  // |value| ties row 0: item order breaks it
  dense.Row(1)[2] = 0.5;
  // Dimension 1 has no nonzeros at all.
  const CsrMatrix csr = CsrMatrix::FromDense(ConstRowBlock(dense));

  const InvertedIndex abs_index =
      InvertedIndex::Build(csr, PostingOrder::kAbsDescending);
  ASSERT_EQ(abs_index.dims(), 3);
  EXPECT_EQ(abs_index.items(), 4);
  const std::span<const Posting> d0 = abs_index.Dim(0);
  ASSERT_EQ(d0.size(), 4u);
  EXPECT_EQ(d0[0].item, 1);  // |-3|
  EXPECT_EQ(d0[1].item, 2);  // |2|
  EXPECT_EQ(d0[2].item, 0);  // |1| tie: lower item first
  EXPECT_EQ(d0[3].item, 3);  // |-1|
  EXPECT_EQ(abs_index.MaxAbs(0), 3.0);
  EXPECT_TRUE(abs_index.Dim(1).empty());
  EXPECT_EQ(abs_index.MaxAbs(1), 0.0);

  const InvertedIndex id_index =
      InvertedIndex::Build(csr, PostingOrder::kItemAscending);
  const std::span<const Posting> i0 = id_index.Dim(0);
  ASSERT_EQ(i0.size(), 4u);
  for (std::size_t p = 1; p < i0.size(); ++p) {
    EXPECT_LT(i0[p - 1].item, i0[p].item);
  }
}

// ---------------------------------------------------------------------
// sindi: bit-for-bit differential vs dense BMM
// ---------------------------------------------------------------------

TEST(SindiDifferentialTest, BitForBitAcrossDensitiesOrdersAndK) {
  // f = 300 crosses a K-panel boundary; density 1.0 checks the walks on
  // a fully dense catalog (no sparsity advantage, same bits).
  for (const Real density : {0.01, 0.1, 0.5, 1.0}) {
    const MFModel model = MakeSparseModel(24, 160, 300, density);
    for (const Index k : {Index{1}, Index{10}}) {
      const TopKResult expected = BmmReference(model, k);
      for (const std::string spec :
           {"sindi:postings=abs", "sindi:postings=id"}) {
        SCOPED_TRACE(::testing::Message() << spec << " density=" << density
                                          << " k=" << k);
        auto solver = CreateSolver(spec);
        ASSERT_TRUE(solver.ok()) << solver.status().ToString();
        ASSERT_TRUE((*solver)
                        ->Prepare(ConstRowBlock(model.users),
                                  ConstRowBlock(model.items))
                        .ok());
        TopKResult got;
        ASSERT_TRUE((*solver)->TopKAll(k, &got).ok());
        ExpectBitIdentical(got, expected);
      }
    }
  }
}

TEST(SindiDifferentialTest, ExactTiesResolveToSameItems) {
  // Duplicate item rows produce EXACT score ties; the walks must report
  // the same (lowest-id-first) winners the dense reference does.
  MFModel model = MakeSparseModel(16, 64, 48, 0.2);
  for (const Index dup : {Index{10}, Index{40}, Index{63}}) {
    std::memcpy(model.items.Row(dup), model.items.Row(3),
                static_cast<std::size_t>(model.num_factors()) * sizeof(Real));
  }
  const TopKResult expected = BmmReference(model, 8);
  for (const std::string spec : {"sindi:postings=abs", "sindi:postings=id"}) {
    SCOPED_TRACE(spec);
    auto solver = CreateSolver(spec);
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE((*solver)
                    ->Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items))
                    .ok());
    TopKResult got;
    ASSERT_TRUE((*solver)->TopKAll(8, &got).ok());
    ExpectBitIdentical(got, expected);
  }
}

TEST(SindiDifferentialTest, ZeroOverlapItemsAndPadding) {
  // One nonzero per item row and k > items: the heap never fills, the
  // zero-overlap sweep must surface the +0.0-scoring items in id order,
  // and the tail must pad with {-1, -inf} — all exactly like BMM.
  const MFModel model = MakeSparseModel(12, 8, 40, 0.01);
  const Index k = 12;
  const TopKResult expected = BmmReference(model, k);
  for (const std::string spec : {"sindi:postings=abs", "sindi:postings=id"}) {
    SCOPED_TRACE(spec);
    auto solver = CreateSolver(spec);
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE((*solver)
                    ->Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(model.items))
                    .ok());
    TopKResult got;
    ASSERT_TRUE((*solver)->TopKAll(k, &got).ok());
    ExpectBitIdentical(got, expected);
  }
}

TEST(SindiDifferentialTest, ShardedMatchesUnshardedBitForBit) {
  const MFModel model = MakeSparseModel(48, 300, 96, 0.1);
  const Index k = 10;
  const TopKResult expected = BmmReference(model, k);

  ShardedEngineOptions options;
  options.num_shards = 3;
  options.threads = 2;  // concurrent per-shard walks; same bits
  options.engine.k = k;
  options.engine.solvers = {"sindi"};
  auto sharded = ShardedMipsEngine::Open(ConstRowBlock(model.users),
                                         ConstRowBlock(model.items), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  const std::vector<Index> users = AllUsers(model.num_users());
  TopKResult got;
  ASSERT_TRUE((*sharded)->TopK(k, users, &got).ok());
  ExpectBitIdentical(got, expected);
}

TEST(SindiSolverTest, ExposesCatalogAndQueryStats) {
  const MFModel model = MakeSparseModel(16, 128, 64, 0.1);
  SindiSolver solver(PostingOrder::kAbsDescending);
  ASSERT_TRUE(solver.Prepare(ConstRowBlock(model.users),
                             ConstRowBlock(model.items)).ok());
  const CsrMatrix::Stats want =
      CsrMatrix::FromDense(ConstRowBlock(model.items)).ComputeStats();
  EXPECT_EQ(solver.catalog_stats().nnz, want.nnz);
  EXPECT_EQ(solver.catalog_stats().rows, want.rows);
  TopKResult out;
  ASSERT_TRUE(solver.TopKAll(5, &out).ok());
  EXPECT_GT(solver.query_stats().postings_visited, 0);
  EXPECT_GT(solver.query_stats().items_rescored, 0);
}

// ---------------------------------------------------------------------
// hybrid: density split + exact merge
// ---------------------------------------------------------------------

TEST(HybridTest, SplitsMixedCatalogAndMatchesBmmBitForBit) {
  // 30% dense head + very sparse tail: both partitions non-empty.
  const MFModel model = MakeSparseModel(24, 200, 96, 0.05, 0.3);
  HybridSolver solver(/*density_threshold=*/0.25,
                      PostingOrder::kAbsDescending);
  ASSERT_TRUE(solver.Prepare(ConstRowBlock(model.users),
                             ConstRowBlock(model.items)).ok());
  EXPECT_GT(solver.dense_items(), 0);
  EXPECT_GT(solver.sparse_items(), 0);
  EXPECT_EQ(solver.dense_items() + solver.sparse_items(), model.num_items());
  for (const Index k : {Index{1}, Index{10}}) {
    SCOPED_TRACE(::testing::Message() << "k=" << k);
    const TopKResult expected = BmmReference(model, k);
    TopKResult got;
    ASSERT_TRUE(solver.TopKForUsers(k, AllUsers(model.num_users()), &got)
                    .ok());
    ExpectBitIdentical(got, expected);
  }
}

TEST(HybridTest, DegeneratePartitionsStayExact) {
  const MFModel dense_model = MakeSparseModel(12, 80, 64, 1.0);
  {
    // Every row at density 1 >= 0.25: the sparse partition is empty.
    HybridSolver solver(0.25, PostingOrder::kAbsDescending);
    ASSERT_TRUE(solver.Prepare(ConstRowBlock(dense_model.users),
                               ConstRowBlock(dense_model.items)).ok());
    EXPECT_EQ(solver.sparse_items(), 0);
    TopKResult got;
    ASSERT_TRUE(
        solver.TopKForUsers(7, AllUsers(dense_model.num_users()), &got).ok());
    ExpectBitIdentical(got, BmmReference(dense_model, 7));
  }
  {
    // Threshold above 1: every row lands in the sparse partition.
    HybridSolver solver(1.5, PostingOrder::kItemAscending);
    ASSERT_TRUE(solver.Prepare(ConstRowBlock(dense_model.users),
                               ConstRowBlock(dense_model.items)).ok());
    EXPECT_EQ(solver.dense_items(), 0);
    TopKResult got;
    ASSERT_TRUE(
        solver.TopKForUsers(7, AllUsers(dense_model.num_users()), &got).ok());
    ExpectBitIdentical(got, BmmReference(dense_model, 7));
  }
}

// ---------------------------------------------------------------------
// Registry specs
// ---------------------------------------------------------------------

TEST(SparseRegistryTest, SpecsRoundTrip) {
  const std::vector<std::string> available = AvailableSolvers();
  EXPECT_NE(std::find(available.begin(), available.end(), "sindi"),
            available.end());
  EXPECT_NE(std::find(available.begin(), available.end(), "hybrid"),
            available.end());

  auto abs_solver = CreateSolver("sindi");
  ASSERT_TRUE(abs_solver.ok());
  EXPECT_EQ((*abs_solver)->name(), "sindi");
  EXPECT_EQ((*abs_solver)->representation(), "sparse");
  EXPECT_FALSE((*abs_solver)->batches_users());

  auto id_solver = CreateSolver("sindi:postings=id");
  ASSERT_TRUE(id_solver.ok());
  EXPECT_EQ((*id_solver)->name(), "sindi-id");

  EXPECT_FALSE(CreateSolver("sindi:postings=bogus").ok());

  auto hybrid = CreateSolver("hybrid:density_threshold=0.5,postings=id");
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ((*hybrid)->name(), "hybrid");
  EXPECT_EQ((*hybrid)->representation(), "hybrid");
  EXPECT_TRUE((*hybrid)->batches_users());

  EXPECT_FALSE(CreateSolver("hybrid:density_threshold=-1").ok());
  EXPECT_FALSE(CreateSolver("hybrid:postings=sideways").ok());
}

// ---------------------------------------------------------------------
// OPTIMUS / engine representation attribution
// ---------------------------------------------------------------------

TEST(SparseOptimusTest, ReportAttributesRepresentations) {
  // Mechanical attribution — no wall-clock winner asserted, so this runs
  // under sanitizers too: every estimate carries its strategy's
  // representation and measured sample timings, and the report's
  // representation is the winner's.
  const MFModel model = MakeSparseModel(96, 256, 64, 0.1);
  BmmSolver bmm;
  SindiSolver sindi(PostingOrder::kAbsDescending);
  Optimus optimus;
  std::size_t winner = 0;
  OptimusReport report;
  ASSERT_TRUE(optimus
                  .Decide(ConstRowBlock(model.users),
                          ConstRowBlock(model.items), 10, {&bmm, &sindi},
                          &winner, &report)
                  .ok());
  ASSERT_EQ(report.estimates.size(), 2u);
  EXPECT_EQ(report.estimates[0].representation, "dense");
  EXPECT_EQ(report.estimates[1].representation, "sparse");
  for (const StrategyEstimate& est : report.estimates) {
    EXPECT_GT(est.measured_users, 0) << est.name;
    EXPECT_GT(est.sampling_seconds, 0) << est.name;
  }
  EXPECT_EQ(report.chosen, report.estimates[winner].name);
  EXPECT_EQ(report.representation, report.estimates[winner].representation);
  EXPECT_EQ(report.representation, winner == 0 ? "dense" : "sparse");
}

TEST(SparseOptimusTest, SparseWinningWorkloadIsAttributedSparse) {
  if (testing::kSanitizerSkewsWallClock) {
    GTEST_SKIP() << "wall-clock winner assertion; sanitizer skews timings";
  }
  // ~1 nonzero per 128-dim item row: the inverted-index walk touches two
  // orders of magnitude fewer coordinates than the dense GEMM, so the
  // sampling decision lands on sindi with a wide margin.
  const MFModel model = MakeSparseModel(256, 4096, 128, 0.01);
  EngineOptions options;
  options.k = 10;
  options.solvers = {"bmm", "sindi"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const OptimusReport& report = (*engine)->decision_report();
  EXPECT_EQ(report.chosen, "sindi");
  EXPECT_EQ(report.representation, "sparse");
  ASSERT_EQ(report.estimates.size(), 2u);
  for (const StrategyEstimate& est : report.estimates) {
    EXPECT_GT(est.measured_users, 0) << est.name;
    EXPECT_GT(est.sampling_seconds, 0) << est.name;
  }
  EXPECT_EQ((*engine)->stats().representation, "sparse");
}

TEST(SparseEngineTest, StatsTrackForcedRepresentation) {
  const MFModel model = MakeSparseModel(48, 160, 64, 0.1);
  EngineOptions options;
  options.k = 5;
  options.solvers = {"bmm", "sindi", "hybrid"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->stats().representation,
            (*engine)->decision_report().representation);
  ASSERT_TRUE((*engine)->ForceStrategy("sindi").ok());
  EXPECT_EQ((*engine)->stats().representation, "sparse");
  ASSERT_TRUE((*engine)->ForceStrategy("hybrid").ok());
  EXPECT_EQ((*engine)->stats().representation, "hybrid");
  ASSERT_TRUE((*engine)->ForceStrategy("bmm").ok());
  EXPECT_EQ((*engine)->stats().representation, "dense");
  (*engine)->ClearForcedStrategy();
  EXPECT_EQ((*engine)->stats().representation,
            (*engine)->decision_report().representation);

  // Whatever OPTIMUS picked, the served answers are the dense bits.
  TopKResult got;
  ASSERT_TRUE((*engine)->TopKAll(5, &got).ok());
  ExpectBitIdentical(got, BmmReference(model, 5));
}

}  // namespace
}  // namespace mips
