// Reference dataset and model presets.
//
// Table I of the paper lists four datasets (Netflix, Yahoo KDD, Yahoo R2,
// GloVe-Twitter); Figure 5 evaluates 23 MF models trained on them.  Each
// preset here records the full-scale dimensions for reporting plus a
// calibrated SyntheticModelConfig whose norm-skew / clusterability knobs
// put the generated model in the same solver-preference regime the paper
// measured for that model family (Netflix-like: BMM-friendly, flat item
// norms; R2-like: index-friendly, skewed norms; etc.).
//
// Benches run models at `default_scale` (dimensions scaled linearly, with
// floors so index structure remains meaningful); `--scale` multiplies it.
// scale_multiplier chosen so default_scale * multiplier == 1 reproduces the
// paper's full dimensions.

#ifndef MIPS_DATA_DATASETS_H_
#define MIPS_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.h"

namespace mips {

/// One row of Table I (full-scale dataset statistics).
struct DatasetInfo {
  std::string name;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_ratings = 0;  // 0 = not a ratings dataset (GloVe)
};

/// The four reference datasets with the paper's Table I numbers.
const std::vector<DatasetInfo>& AllDatasetInfos();

/// A reference model preset: full dimensions + calibrated generator knobs.
struct ModelPreset {
  /// Preset id, e.g. "netflix-nomad-50".
  std::string id;
  /// Display name, e.g. "Netflix-NOMAD, f = 50".
  std::string display_name;
  /// Dataset this model was trained on ("Netflix", "KDD", "R2", "GloVe").
  std::string dataset;
  Index factors = 0;
  int64_t full_users = 0;
  int64_t full_items = 0;
  /// Scale at which benches run this preset by default.
  double default_scale = 0.02;
  /// Distribution knobs (dimensions are filled in by MakeModel).
  SyntheticModelConfig generator;
};

/// All 23 reference model presets in Figure 5 order.
const std::vector<ModelPreset>& AllModelPresets();

/// Looks up a preset by id ("netflix-nomad-50").  NotFound on miss.
StatusOr<ModelPreset> FindModelPreset(const std::string& id);

/// Dimensions of `preset` at default_scale * scale_multiplier, linear in
/// both axes with floors (users >= 1000, items >= 800) and capped at full
/// size.
struct ScaledDims {
  Index users = 0;
  Index items = 0;
};
ScaledDims ComputeScaledDims(const ModelPreset& preset,
                             double scale_multiplier);

/// Instantiates the preset's synthetic model at the scaled dimensions.
StatusOr<MFModel> MakeModel(const ModelPreset& preset,
                            double scale_multiplier = 1.0);

}  // namespace mips

#endif  // MIPS_DATA_DATASETS_H_
