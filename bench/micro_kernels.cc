// Micro benchmarks (google-benchmark) for the hardware-efficiency claims
// in Section II-B: blocked GEMM vs repeated-sdot vs the naive triple loop
// ("substantial empirical speedups over naive inner products (40x) or
// even matrix-vector multiply (20x)"), plus the top-K heap pass, the
// k-means assignment GEMM, and the level-1 dot kernels.
//
// The binary first prints the runtime SIMD dispatch report — per-variant
// packed-panel GFLOP/s from KernelProbe and the kernel it installs — and
// registers one BM_GemmBlocked run per *supported* kernel variant, so a
// machine with pathological AVX-512 (the ~4x-slower emulated case that
// motivated runtime dispatch) is visible directly in the output.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "linalg/blas.h"
#include "linalg/gemm.h"
#include "linalg/simd_dispatch.h"
#include "topk/topk_block.h"

namespace mips {
namespace {

Matrix RandomMatrix(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<Real>(rng.Normal());
  }
  return m;
}

void ReportGemmRates(benchmark::State& state, Index m, Index n, Index k) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * n * k * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_GemmBlocked(benchmark::State& state) {
  const Index m = static_cast<Index>(state.range(0));
  const Index n = static_cast<Index>(state.range(1));
  const Index k = static_cast<Index>(state.range(2));
  const Matrix a = RandomMatrix(m, k, 1);
  const Matrix b = RandomMatrix(n, k, 2);
  Matrix c(m, n);
  for (auto _ : state) {
    GemmNT(a.data(), m, b.data(), n, k, 1, 0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  ReportGemmRates(state, m, n, k);
}
BENCHMARK(BM_GemmBlocked)
    ->Args({1024, 1024, 50})
    ->Args({2048, 2048, 100})
    ->Args({512, 4096, 50});

void BM_GemmDotLoop(benchmark::State& state) {
  const Index m = static_cast<Index>(state.range(0));
  const Index n = static_cast<Index>(state.range(1));
  const Index k = static_cast<Index>(state.range(2));
  const Matrix a = RandomMatrix(m, k, 1);
  const Matrix b = RandomMatrix(n, k, 2);
  Matrix c(m, n);
  for (auto _ : state) {
    GemmDotNT(a.data(), m, b.data(), n, k, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  ReportGemmRates(state, m, n, k);
}
BENCHMARK(BM_GemmDotLoop)->Args({1024, 1024, 50});

void BM_GemmNaive(benchmark::State& state) {
  const Index m = static_cast<Index>(state.range(0));
  const Index n = static_cast<Index>(state.range(1));
  const Index k = static_cast<Index>(state.range(2));
  const Matrix a = RandomMatrix(m, k, 1);
  const Matrix b = RandomMatrix(n, k, 2);
  Matrix c(m, n);
  for (auto _ : state) {
    GemmNaiveNT(a.data(), m, b.data(), n, k, 1, 0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  ReportGemmRates(state, m, n, k);
}
BENCHMARK(BM_GemmNaive)->Args({1024, 1024, 50});

void BM_Gemv(benchmark::State& state) {
  // Matrix-vector scoring: the "one user at a time" strategy.
  const Index n = 4096;
  const Index k = 50;
  const Matrix items = RandomMatrix(n, k, 3);
  const Matrix user = RandomMatrix(1, k, 4);
  std::vector<Real> scores(static_cast<std::size_t>(n));
  for (auto _ : state) {
    Gemv(items.data(), n, k, user.Row(0), scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  ReportGemmRates(state, 1, n, k);
}
BENCHMARK(BM_Gemv);

void BM_DotProduct(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  const Matrix x = RandomMatrix(1, n, 5);
  const Matrix y = RandomMatrix(1, n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(x.Row(0), y.Row(0), n));
  }
}
BENCHMARK(BM_DotProduct)->Arg(50)->Arg(100)->Arg(200);

void BM_TopKFromScoreBlock(benchmark::State& state) {
  const Index m = 256;
  const Index n = 8192;
  const Index k = static_cast<Index>(state.range(0));
  const Matrix scores = RandomMatrix(m, n, 7);
  TopKResult result(m, k);
  for (auto _ : state) {
    TopKFromScoreBlock(scores.data(), m, n, n, k, 0, nullptr, &result, 0);
    benchmark::DoNotOptimize(result.Row(0));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(m) * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_TopKFromScoreBlock)->Arg(1)->Arg(10)->Arg(50);

void BM_KMeans(benchmark::State& state) {
  SyntheticModelConfig config;
  config.num_users = 8192;
  config.num_items = 1;
  config.num_factors = 50;
  const auto model = GenerateSyntheticModel(config);
  KMeansOptions options;
  options.num_clusters = 8;
  options.max_iterations = 3;
  for (auto _ : state) {
    Clustering clustering;
    KMeans(ConstRowBlock(model->users), options, &clustering).CheckOK();
    benchmark::DoNotOptimize(clustering.assignment.data());
  }
}
BENCHMARK(BM_KMeans);

// One blocked-GEMM benchmark per installed kernel variant (registered in
// main for the variants this machine supports).  Forcing the kernel
// inside the benchmark keeps later registrations honest even though the
// install is process-global.
void BM_GemmBlockedKernel(benchmark::State& state, GemmKernel kernel) {
  ForceGemmKernel(kernel).CheckOK();
  const Index m = 1024, n = 1024, k = 50;
  const Matrix a = RandomMatrix(m, k, 1);
  const Matrix b = RandomMatrix(n, k, 2);
  Matrix c(m, n);
  for (auto _ : state) {
    GemmNT(a.data(), m, b.data(), n, k, 1, 0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  ReportGemmRates(state, m, n, k);
}

void PrintKernelProbeReport() {
  // Install first (env override, else probe) — exactly as any serving
  // binary's first GEMM would — then report the measurements that
  // install was actually based on.  Only when the choice came from an
  // override (no probe ran) is a fresh timing sweep taken for display.
  const GemmKernel installed = ActiveGemmKernel();
  const GemmKernelSource install_source = ActiveGemmKernelSource();
  const GemmKernelProbe probe = install_source == GemmKernelSource::kProbe
                                    ? ActiveGemmKernelProbe()
                                    : ProbeGemmKernels();
  std::printf("GEMM micro-kernel probe (packed 4x16 panel, kb=256):\n");
  for (const auto& variant : probe.variants) {
    if (variant.supported) {
      std::printf("  %-8s %8.2f GFLOP/s%s\n", ToString(variant.kernel),
                  variant.gflops,
                  variant.kernel == probe.fastest ? "   <-- probe pick" : "");
    } else {
      std::printf("  %-8s unsupported on this machine\n",
                  ToString(variant.kernel));
    }
  }
  const char* source = "probe";
  switch (install_source) {
    case GemmKernelSource::kEnv:
      source = "MIPS_GEMM_KERNEL env override";
      break;
    case GemmKernelSource::kForced:
      source = "ForceGemmKernel";
      break;
    case GemmKernelSource::kProbe:
      break;
  }
  std::printf("installed: %s (%s)\n\n", ToString(installed), source);
}

void RegisterPerKernelBenchmarks() {
  for (int v = 0; v < kNumGemmKernels; ++v) {
    const GemmKernel kernel = static_cast<GemmKernel>(v);
    if (!GemmKernelSupported(kernel)) continue;
    const std::string name =
        std::string("BM_GemmBlocked/kernel:") + ToString(kernel);
    benchmark::RegisterBenchmark(
        name.c_str(), [kernel](benchmark::State& state) {
          BM_GemmBlockedKernel(state, kernel);
        });
  }
}

}  // namespace
}  // namespace mips

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // ActiveGemmKernel() (inside the report) performs the startup install —
  // env override or probe — exactly as any serving binary would.
  mips::PrintKernelProbeReport();
  mips::RegisterPerKernelBenchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
