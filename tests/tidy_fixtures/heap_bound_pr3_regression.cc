// mips-heap-bound-strictness REGRESSION fixture: the PR 3 bug, verbatim.
//
// Before PR 3's fix, the MAXIMUS norm-sorted index walk terminated on
// `bound <= heap.MinScore()`.  An item whose upper bound EQUALS the heap
// minimum can still hold a score that exactly ties the minimum — with
// duplicate items (or any exact score tie) the bound is tight — and
// skipping it means the reported item id depends on which shard/visit
// order reached the tie first, instead of on the library-wide
// BetterEntry order (score desc, item id asc).  Sharded and unsharded
// runs then return different-but-equal-scoring ids and the bit-for-bit
// sharding test fails.  The fix (src/core/maximus.cc, and the identical
// prunes in lemp.cc / fexipro.cc) is the strict `<`.
//
// This file reproduces the pre-fix walk so the check demonstrably
// catches the original bug.

#include <vector>

#include "topk/topk_heap.h"

namespace fixture {

using mips::Index;
using mips::Real;
using mips::TopKHeap;

struct NormSortedList {
  std::vector<Real> bounds;     // upper bound per position, descending
  std::vector<Index> item_ids;  // item id per position
};

void QueryIndexPr3(const NormSortedList& list, const std::vector<Real>& scores,
                   Index k, mips::TopKEntry* out_row) {
  TopKHeap heap(k);
  const Index n = static_cast<Index>(list.bounds.size());
  for (Index pos = 0; pos < n; ++pos) {
    // The PR 3 `<=`-bound tie bug: terminates on a bound that can still
    // cover a score tying the heap minimum.
    // expect-diagnostic: non-strict '<=' prune
    // expect-diagnostic: mips-heap-bound-strictness
    if (heap.full() &&
        list.bounds[static_cast<std::size_t>(pos)] <= heap.MinScore()) {
      break;
    }
    const Index id = list.item_ids[static_cast<std::size_t>(pos)];
    heap.Push(id, scores[static_cast<std::size_t>(id)]);
  }
  heap.ExtractDescending(out_row);
}

}  // namespace fixture
