// Unit and property tests for src/topk: the bounded heap and block
// extraction, validated against a sort-based reference across a
// parameterized (n, k) sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "topk/merge.h"
#include "topk/topk_block.h"
#include "topk/topk_heap.h"

namespace mips {
namespace {

// Reference top-K by full sort with the library's tie order.
std::vector<TopKEntry> ReferenceTopK(const std::vector<Real>& scores,
                                     Index k) {
  std::vector<TopKEntry> all(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    all[i] = {static_cast<Index>(i), scores[i]};
  }
  std::sort(all.begin(), all.end(), [](const TopKEntry& a, const TopKEntry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  });
  std::vector<TopKEntry> out(static_cast<std::size_t>(k));
  for (Index e = 0; e < k; ++e) {
    out[static_cast<std::size_t>(e)] =
        e < static_cast<Index>(all.size())
            ? all[static_cast<std::size_t>(e)]
            : TopKEntry{-1, -std::numeric_limits<Real>::infinity()};
  }
  return out;
}

TEST(TopKHeapTest, EmptyHeapAcceptsEverything) {
  TopKHeap heap(3);
  EXPECT_FALSE(heap.full());
  EXPECT_EQ(heap.MinScore(), -std::numeric_limits<Real>::infinity());
  EXPECT_TRUE(heap.WouldAccept(-1e300));
}

TEST(TopKHeapTest, TracksMinimumWhenFull) {
  TopKHeap heap(2);
  heap.Push(0, 5.0);
  heap.Push(1, 3.0);
  EXPECT_TRUE(heap.full());
  EXPECT_DOUBLE_EQ(heap.MinScore(), 3.0);
  // A tie with the minimum may still enter (Push tie-breaks by item id),
  // so WouldAccept cannot reject it.
  EXPECT_TRUE(heap.WouldAccept(3.0));
  EXPECT_FALSE(heap.WouldAccept(2.5));
  EXPECT_TRUE(heap.WouldAccept(3.5));
  heap.Push(2, 4.0);
  EXPECT_DOUBLE_EQ(heap.MinScore(), 4.0);
}

TEST(TopKHeapTest, RejectsNonImproving) {
  TopKHeap heap(1);
  EXPECT_TRUE(heap.Push(5, 1.0));
  EXPECT_FALSE(heap.Push(1, 0.5));
  EXPECT_FALSE(heap.Push(7, 1.0));  // tie with higher id does not replace
  EXPECT_TRUE(heap.Push(2, 1.0));   // tie with lower id replaces
  EXPECT_FALSE(heap.Push(2, 1.0));  // an entry never replaces itself
  EXPECT_TRUE(heap.Push(3, 2.0));
  TopKEntry out[1];
  heap.ExtractDescending(out);
  EXPECT_EQ(out[0].item, 3);
}

TEST(TopKHeapTest, ExtractSortsAndPads) {
  TopKHeap heap(4);
  heap.Push(7, 1.0);
  heap.Push(8, 3.0);
  TopKEntry out[4];
  heap.ExtractDescending(out);
  EXPECT_EQ(out[0].item, 8);
  EXPECT_EQ(out[1].item, 7);
  EXPECT_EQ(out[2].item, -1);
  EXPECT_EQ(out[3].item, -1);
  EXPECT_TRUE(std::isinf(out[2].score));
  EXPECT_EQ(heap.size(), 0);  // extraction empties the heap
}

TEST(TopKHeapTest, TieBreaksByItemId) {
  TopKHeap heap(3);
  heap.Push(9, 2.0);
  heap.Push(1, 2.0);
  heap.Push(5, 2.0);
  TopKEntry out[3];
  heap.ExtractDescending(out);
  EXPECT_EQ(out[0].item, 1);
  EXPECT_EQ(out[1].item, 5);
  EXPECT_EQ(out[2].item, 9);
}

TEST(TopKHeapTest, ClearResets) {
  TopKHeap heap(2);
  heap.Push(0, 1.0);
  heap.Push(1, 2.0);
  heap.Clear();
  EXPECT_FALSE(heap.full());
  EXPECT_EQ(heap.size(), 0);
}

class TopKPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TopKPropertyTest, HeapMatchesSortReference) {
  const auto [n, k, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  std::vector<Real> scores(static_cast<std::size_t>(n));
  for (auto& s : scores) s = rng.Normal();
  // Inject some duplicates to exercise tie handling.
  if (n >= 4) {
    scores[1] = scores[0];
    scores[static_cast<std::size_t>(n - 1)] = scores[static_cast<std::size_t>(n / 2)];
  }

  TopKHeap heap(k);
  for (Index i = 0; i < n; ++i) {
    heap.Push(i, scores[static_cast<std::size_t>(i)]);
  }
  std::vector<TopKEntry> got(static_cast<std::size_t>(k));
  heap.ExtractDescending(got.data());
  const std::vector<TopKEntry> expected = ReferenceTopK(scores, k);
  for (Index e = 0; e < k; ++e) {
    EXPECT_EQ(got[static_cast<std::size_t>(e)].item,
              expected[static_cast<std::size_t>(e)].item)
        << "n=" << n << " k=" << k << " entry " << e;
    EXPECT_EQ(got[static_cast<std::size_t>(e)].score,
              expected[static_cast<std::size_t>(e)].score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 16, 100, 1000),
                       ::testing::Values(1, 2, 5, 10, 50),
                       ::testing::Values(1, 2, 3)));

TEST(TopKFromRowTest, OffsetsItemIds) {
  const std::vector<Real> scores = {1.0, 9.0, 5.0};
  TopKEntry out[2];
  TopKFromRow(scores.data(), 3, 2, /*item_offset=*/100, nullptr, out);
  EXPECT_EQ(out[0].item, 101);
  EXPECT_EQ(out[1].item, 102);
}

TEST(TopKFromRowTest, RemapsThroughItemIds) {
  const std::vector<Real> scores = {1.0, 9.0, 5.0};
  const std::vector<Index> ids = {70, 80, 90};
  TopKEntry out[2];
  TopKFromRow(scores.data(), 3, 2, 0, ids.data(), out);
  EXPECT_EQ(out[0].item, 80);
  EXPECT_DOUBLE_EQ(out[0].score, 9.0);
  EXPECT_EQ(out[1].item, 90);
}

TEST(TopKFromScoreBlockTest, ReducesEveryRow) {
  const Index m = 7;
  const Index n = 23;
  const Index k = 4;
  Rng rng(99);
  Matrix scores(m, n);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores.data()[i] = rng.Normal();
  }
  TopKResult result(m, k);
  TopKFromScoreBlock(scores.data(), m, n, n, k, 0, nullptr, &result, 0);
  for (Index r = 0; r < m; ++r) {
    std::vector<Real> row(scores.Row(r), scores.Row(r) + n);
    const auto expected = ReferenceTopK(row, k);
    for (Index e = 0; e < k; ++e) {
      EXPECT_EQ(result.Row(r)[e].item, expected[static_cast<std::size_t>(e)].item);
    }
  }
}

TEST(TopKFromScoreBlockTest, RespectsRowOffsetAndLds) {
  const Index n = 5;
  const Index lds = 8;  // padded leading dimension
  Matrix scores(2, lds);
  for (Index c = 0; c < n; ++c) {
    scores(0, c) = c;        // best item: 4
    scores(1, c) = -c;       // best item: 0
  }
  TopKResult result(4, 1);
  TopKFromScoreBlock(scores.data(), 2, n, lds, 1, 0, nullptr, &result,
                     /*row_offset=*/2);
  EXPECT_EQ(result.Row(2)[0].item, 4);
  EXPECT_EQ(result.Row(3)[0].item, 0);
}

constexpr Real kNegInf = -std::numeric_limits<Real>::infinity();

TEST(MergeTopKRowsTest, InterleavesSortedRows) {
  const TopKEntry a[3] = {{0, 9.0}, {2, 5.0}, {4, 1.0}};
  const TopKEntry b[3] = {{1, 8.0}, {3, 4.0}, {5, 2.0}};
  const TopKEntry* rows[] = {a, b};
  TopKEntry out[4];
  MergeTopKRows(rows, 3, 4, out);
  EXPECT_EQ(out[0].item, 0);
  EXPECT_EQ(out[1].item, 1);
  EXPECT_EQ(out[2].item, 2);
  EXPECT_EQ(out[3].item, 3);
}

TEST(MergeTopKRowsTest, TieBreaksByItemIdAcrossRows) {
  // Equal scores across shards must come out lower-id-first, regardless
  // of which row holds which id.
  const TopKEntry a[2] = {{7, 3.0}, {9, 3.0}};
  const TopKEntry b[2] = {{2, 3.0}, {8, 3.0}};
  const TopKEntry* rows[] = {a, b};
  TopKEntry out[3];
  MergeTopKRows(rows, 2, 3, out);
  EXPECT_EQ(out[0].item, 2);
  EXPECT_EQ(out[1].item, 7);
  EXPECT_EQ(out[2].item, 8);
}

TEST(MergeTopKRowsTest, SkipsSentinelsAndPads) {
  // Row a has one real entry (a small shard answered k=3 with padding);
  // row b is entirely padding (an empty-ish shard); row c is null (no
  // engine).  The merge must surface the real entries and pad the rest.
  const TopKEntry a[3] = {{4, 2.0}, {-1, kNegInf}, {-1, kNegInf}};
  const TopKEntry b[3] = {{-1, kNegInf}, {-1, kNegInf}, {-1, kNegInf}};
  const TopKEntry c[3] = {{6, 5.0}, {1, 2.0}, {-1, kNegInf}};
  const TopKEntry* rows[] = {a, b, nullptr, c};
  TopKEntry out[5];
  MergeTopKRows(rows, 3, 5, out);
  EXPECT_EQ(out[0].item, 6);
  EXPECT_EQ(out[1].item, 1);  // ties (2.0): lower id first
  EXPECT_EQ(out[2].item, 4);
  EXPECT_EQ(out[3].item, -1);
  EXPECT_EQ(out[4].item, -1);
  EXPECT_EQ(out[4].score, kNegInf);
}

class MergePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MergePropertyTest, ShardedMergeMatchesSingleHeap) {
  // Partition n scored items round-robin across S shards, take each
  // shard's top-k with a heap, merge — the result must equal the global
  // top-k from one heap over all items, including duplicate scores.
  const auto [n, num_shards, seed] = GetParam();
  const Index k = 7;
  Rng rng(static_cast<uint64_t>(seed));
  std::vector<Real> scores(static_cast<std::size_t>(n));
  for (auto& s : scores) s = rng.Normal();
  if (n >= 6) {
    scores[3] = scores[0];  // duplicates spanning shard boundaries
    scores[5] = scores[0];
    scores[static_cast<std::size_t>(n - 1)] = scores[1];
  }

  std::vector<std::vector<TopKEntry>> shard_rows(
      static_cast<std::size_t>(num_shards),
      std::vector<TopKEntry>(static_cast<std::size_t>(k)));
  std::vector<TopKHeap> heaps(static_cast<std::size_t>(num_shards),
                              TopKHeap(k));
  for (Index i = 0; i < n; ++i) {
    heaps[static_cast<std::size_t>(i % num_shards)].Push(
        i, scores[static_cast<std::size_t>(i)]);
  }
  std::vector<const TopKEntry*> rows;
  for (int s = 0; s < num_shards; ++s) {
    heaps[static_cast<std::size_t>(s)].ExtractDescending(
        shard_rows[static_cast<std::size_t>(s)].data());
    rows.push_back(shard_rows[static_cast<std::size_t>(s)].data());
  }
  std::vector<TopKEntry> merged(static_cast<std::size_t>(k));
  MergeTopKRows(rows, k, k, merged.data());

  const std::vector<TopKEntry> expected = ReferenceTopK(scores, k);
  for (Index e = 0; e < k; ++e) {
    EXPECT_EQ(merged[static_cast<std::size_t>(e)].item,
              expected[static_cast<std::size_t>(e)].item)
        << "n=" << n << " shards=" << num_shards << " entry " << e;
    EXPECT_EQ(merged[static_cast<std::size_t>(e)].score,
              expected[static_cast<std::size_t>(e)].score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergePropertyTest,
    ::testing::Combine(::testing::Values(1, 3, 8, 40, 500),
                       ::testing::Values(1, 2, 3, 7),
                       ::testing::Values(1, 2, 3)));

TEST(MergeTopKResultsTest, MergesEveryRow) {
  TopKResult a(2, 2);
  a.Row(0)[0] = {0, 5.0};
  a.Row(0)[1] = {1, 1.0};
  a.Row(1)[0] = {0, 2.0};
  a.Row(1)[1] = {1, 1.5};
  TopKResult b(2, 2);
  b.Row(0)[0] = {2, 4.0};
  b.Row(0)[1] = {3, 3.0};
  b.Row(1)[0] = {3, 9.0};
  b.Row(1)[1] = {2, kNegInf};
  const TopKResult* results[] = {&a, &b};
  TopKResult out;
  MergeTopKResults(results, 3, &out);
  ASSERT_EQ(out.num_queries(), 2);
  ASSERT_EQ(out.k(), 3);
  EXPECT_EQ(out.Row(0)[0].item, 0);
  EXPECT_EQ(out.Row(0)[1].item, 2);
  EXPECT_EQ(out.Row(0)[2].item, 3);
  EXPECT_EQ(out.Row(1)[0].item, 3);
  EXPECT_EQ(out.Row(1)[1].item, 0);
  EXPECT_EQ(out.Row(1)[2].item, 1);
}

TEST(TopKResultTest, CopyRowFrom) {
  TopKResult a(2, 2);
  a.Row(1)[0] = {5, 1.5};
  a.Row(1)[1] = {6, 0.5};
  TopKResult b(3, 2);
  b.CopyRowFrom(a, 1, 2);
  EXPECT_EQ(b.Row(2)[0].item, 5);
  EXPECT_DOUBLE_EQ(b.Row(2)[1].score, 0.5);
}

}  // namespace
}  // namespace mips
