// Table II: effectiveness of the online optimizer on the reference
// models.
//
// For each optimizer configuration (BMM+LEMP, BMM+FEXIPRO-SI,
// BMM+FEXIPRO-SIR, BMM+MAXIMUS, and the three-way BMM+LEMP+MAXIMUS), runs
// OPTIMUS over the model/top-K grid and reports, exactly as in the paper:
//   * Accuracy  — how often OPTIMUS picks the truly fastest strategy;
//   * Overhead  — OPTIMUS end-to-end time vs a zero-overhead oracle
//                 (mean and stddev over combos);
//   * Speedups vs the LEMP-only baseline for: the index alone, OPTIMUS
//                 (with overhead), and the oracle.
//
// Ground-truth runtimes per strategy are measured once per combo and
// shared across configurations.  Default: all models x K in {1, 10} at
// 3x the usual bench scale — index construction must be small relative
// to serving for the paper's overhead accounting to be meaningful, and
// that ratio improves with scale (see EXPERIMENTS.md).  Pass
// --k=1,5,10,50 for the paper's full 92-combination grid.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/timer.h"
#include "core/optimus.h"
#include "stats/welford.h"

using namespace mips;
using namespace mips::bench;

namespace {

// Aggregates for one optimizer configuration.
struct ConfigStats {
  int correct = 0;
  int combos = 0;
  Welford overhead;
  Welford speedup_index_only;
  Welford speedup_optimus;
  Welford speedup_oracle;
};

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  config.ks = "1,10";  // default subset; --k=1,5,10,50 for the full grid
  config.scale = 2.0;  // larger scale = more faithful overhead accounting
  ParseBenchFlags(argc, argv, &flags, &config);
  const std::vector<Index> ks = ParseKList(config.ks);

  const std::vector<std::vector<std::string>> configurations = {
      {"bmm", "lemp"},
      {"bmm", "fexipro-si"},
      {"bmm", "fexipro-sir"},
      {"bmm", "maximus"},
      {"bmm", "lemp", "maximus"},
  };
  const std::vector<std::string> all_strategies = {
      "bmm", "lemp", "fexipro-si", "fexipro-sir", "maximus"};

  const auto presets = SelectPresets(config);
  std::printf("== Table II: optimizer effectiveness over %zu models x "
              "{%s} (scale multiplier %.2g) ==\n",
              presets.size(), config.ks.c_str(), config.scale);

  std::vector<ConfigStats> stats(configurations.size());
  for (const auto& preset : presets) {
    const MFModel model = MakeBenchModel(preset, config);
    for (const Index k : ks) {
      // Ground truth: full end-to-end time of every strategy, measured
      // once and shared across optimizer configurations.
      std::map<std::string, double> full_time;
      for (const auto& name : all_strategies) {
        auto solver = MakeSolver(name);
        full_time[name] = TimeEndToEnd(solver.get(), model, k).total();
      }
      const double lemp_baseline = full_time.at("lemp");

      for (std::size_t cfg = 0; cfg < configurations.size(); ++cfg) {
        const auto& strategy_names = configurations[cfg];
        std::string best_name = strategy_names.front();
        double best_time = full_time.at(best_name);
        for (const auto& name : strategy_names) {
          if (full_time.at(name) < best_time) {
            best_time = full_time.at(name);
            best_name = name;
          }
        }
        const double index_only_time = full_time.at(strategy_names[1]);

        std::vector<std::unique_ptr<MipsSolver>> solvers;
        std::vector<MipsSolver*> raw;
        for (const auto& name : strategy_names) {
          solvers.push_back(MakeSolver(name));
          raw.push_back(solvers.back().get());
        }
        Optimus optimus;
        TopKResult result;
        OptimusReport report;
        WallTimer timer;
        optimus
            .Run(ConstRowBlock(model.users), ConstRowBlock(model.items), k,
                 raw, &result, &report)
            .CheckOK();
        const double optimus_time = timer.Seconds();

        ConfigStats& cs = stats[cfg];
        ++cs.combos;
        if (report.chosen == best_name) ++cs.correct;
        cs.overhead.Add(optimus_time / best_time - 1.0);
        cs.speedup_index_only.Add(lemp_baseline / index_only_time);
        cs.speedup_optimus.Add(lemp_baseline / optimus_time);
        cs.speedup_oracle.Add(lemp_baseline / best_time);
      }
    }
  }

  TablePrinter table({"Optimizer Choices", "Accuracy", "Avg. Overhead",
                      "Std. Dev. Overhead", "Index Only",
                      "OPTIMUS (w/ overhead)", "Oracle (no overhead)"});
  for (std::size_t cfg = 0; cfg < configurations.size(); ++cfg) {
    const auto& strategy_names = configurations[cfg];
    const ConfigStats& cs = stats[cfg];
    std::string label = "BMM";
    for (std::size_t i = 1; i < strategy_names.size(); ++i) {
      label += " + " + strategy_names[i];
    }
    const bool three_way = strategy_names.size() > 2;
    table.AddRow(
        {label, Fmt(100.0 * cs.correct / std::max(1, cs.combos), 1) + " %",
         Fmt(100.0 * cs.overhead.mean(), 1) + " %",
         Fmt(100.0 * cs.overhead.stddev(), 1) + " %",
         three_way ? "-" : Fmt(cs.speedup_index_only.mean(), 2) + "x",
         Fmt(cs.speedup_optimus.mean(), 2) + "x",
         Fmt(cs.speedup_oracle.mean(), 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nPaper shape (92 combos): accuracy 85-98%%; overhead 4-9%%; "
      "OPTIMUS within ~12%% of the oracle; BMM+MAXIMUS best two-way pair "
      "(paper: 3.15x vs LEMP baseline, oracle 3.43x); the three-way "
      "configuration pays more overhead and slightly trails BMM+MAXIMUS.  "
      "At bench scale, index construction (especially MAXIMUS's k-means) "
      "is a far larger share of end-to-end time than at paper scale, so "
      "measured overheads are higher; they shrink with --scale.\n");
  return 0;
}
