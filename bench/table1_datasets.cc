// Table I: datasets for evaluation.
//
// Prints the paper's full-scale dataset statistics alongside the scaled
// dimensions each bench binary actually runs, plus the generated item-norm
// statistics that place every preset in its solver-preference regime
// (flat norms -> BMM-friendly; skewed norms -> index-friendly).

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);

  std::printf("== Table I: datasets for evaluation (paper full scale) ==\n");
  TablePrinter table({"Dataset", "# users", "# items", "# ratings"});
  for (const auto& info : AllDatasetInfos()) {
    table.AddRow({info.name, FmtInt(info.num_users), FmtInt(info.num_items),
                  info.num_ratings > 0 ? FmtInt(info.num_ratings) : "-"});
  }
  table.Print();

  std::printf(
      "\n== Scaled bench instances (scale multiplier %.3g) and generated "
      "norm statistics ==\n",
      config.scale);
  TablePrinter scaled({"Preset", "users", "items", "f", "item norm CV",
                       "max/min norm"});
  for (const auto& preset : SelectPresets(config)) {
    const MFModel model = MakeBenchModel(preset, config);
    const VectorSetStats stats =
        ComputeVectorSetStats(ConstRowBlock(model.items));
    scaled.AddRow({preset.id, FmtInt(model.num_users()),
                   FmtInt(model.num_items()), FmtInt(model.num_factors()),
                   Fmt(stats.norm_cv, 3),
                   Fmt(stats.min_norm > 0 ? stats.max_norm / stats.min_norm
                                          : 0.0,
                       1)});
  }
  scaled.Print();
  return 0;
}
