#include "core/engine.h"

#include <numeric>

#include "common/timer.h"
#include "core/dynamic_maximus.h"
#include "core/maximus.h"
#include "linalg/blas.h"
#include "solvers/registry.h"
#include "topk/topk_heap.h"

namespace mips {

StatusOr<std::unique_ptr<MipsEngine>> MipsEngine::Open(
    const ConstRowBlock& users, const ConstRowBlock& items,
    const EngineOptions& options) {
  if (options.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.solvers.empty()) {
    return Status::InvalidArgument(
        "engine needs at least one candidate solver spec");
  }
  if (users.rows() <= 0 || items.rows() <= 0) {
    return Status::InvalidArgument("user and item sets must be non-empty");
  }
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }

  std::unique_ptr<MipsEngine> engine(new MipsEngine());
  engine->users_ = users;
  engine->items_ = items;
  engine->options_ = options;

  for (const std::string& spec : options.solvers) {
    auto solver = SolverRegistry::Global().Create(spec);
    MIPS_RETURN_IF_ERROR(solver.status());
    engine->names_.push_back((*solver)->name());
    engine->specs_.push_back(spec);
    engine->solvers_.push_back(std::move(*solver));
  }
  if (options.threads > 0) {
    engine->pool_ = std::make_unique<ThreadPool>(options.threads);
    for (auto& solver : engine->solvers_) {
      solver->set_thread_pool(engine->pool_.get());
    }
  }

  if (engine->solvers_.size() == 1) {
    // Nothing to decide: prepare the only candidate and serve with it.
    WallTimer timer;
    MIPS_RETURN_IF_ERROR(engine->solvers_[0]->Prepare(users, items));
    engine->report_.chosen = engine->names_[0];
    engine->report_.construction_seconds = timer.Seconds();
    engine->report_.total_seconds = engine->report_.construction_seconds;
    engine->winner_by_k_[options.k] = 0;
    return engine;
  }

  std::vector<MipsSolver*> raw;
  for (const auto& solver : engine->solvers_) raw.push_back(solver.get());
  Optimus optimus(options.optimus);
  std::size_t winner = 0;
  MIPS_RETURN_IF_ERROR(optimus.Decide(users, items, options.k, raw, &winner,
                                      &engine->report_));
  engine->winner_by_k_[options.k] = winner;
  return engine;
}

StatusOr<std::size_t> MipsEngine::StrategyForK(Index k) {
  if (forced_ != kNoForcedStrategy) return forced_;
  auto it = winner_by_k_.find(k);
  if (it != winner_by_k_.end()) return it->second;
  if (!options_.redecide_on_new_k || solvers_.size() < 2) {
    // Fall back to the opening decision: still exact, possibly not the
    // fastest strategy for this k.
    return winner_by_k_.at(options_.k);
  }
  // The decision k and the query k diverged: re-run the sampling
  // decision at the new k and cache the winner.  The candidates were
  // all Prepared at Open (indexes are k-independent), so only the
  // sampling measurement is repeated.
  std::vector<MipsSolver*> raw;
  for (const auto& solver : solvers_) raw.push_back(solver.get());
  Optimus optimus(options_.optimus);
  std::size_t winner = 0;
  OptimusReport report;
  MIPS_RETURN_IF_ERROR(
      optimus.DecidePrepared(users_, items_, k, raw, &winner, &report));
  winner_by_k_[k] = winner;
  ++stats_.redecisions;
  stats_.redecision_seconds += report.total_seconds;
  return winner;
}

Status MipsEngine::TopK(Index k, std::span<const Index> user_ids,
                        TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  for (const Index id : user_ids) {
    if (id < 0 || id >= users_.rows()) {
      return Status::OutOfRange("user id out of range: " +
                                std::to_string(id));
    }
  }
  auto strategy = StrategyForK(k);
  MIPS_RETURN_IF_ERROR(strategy.status());
  WallTimer timer;
  MIPS_RETURN_IF_ERROR(solvers_[*strategy]->TopKForUsers(k, user_ids, out));
  stats_.serve_seconds += timer.Seconds();
  ++stats_.batches_served;
  stats_.users_served += static_cast<int64_t>(user_ids.size());
  return Status::OK();
}

Status MipsEngine::TopKAll(Index k, TopKResult* out) {
  std::vector<Index> ids(static_cast<std::size_t>(users_.rows()));
  std::iota(ids.begin(), ids.end(), 0);
  return TopK(k, ids, out);
}

Status MipsEngine::TopKNewUser(const Real* user_vector, Index k,
                               TopKEntry* out_row) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  auto strategy = StrategyForK(k);
  MIPS_RETURN_IF_ERROR(strategy.status());
  MipsSolver* solver = solvers_[*strategy].get();
  WallTimer timer;
  if (auto* maximus = dynamic_cast<MaximusSolver*>(solver)) {
    // Exact dynamic-user walk (Section III-E).
    MIPS_RETURN_IF_ERROR(maximus->QueryDynamicUser(user_vector, k, out_row));
  } else if (auto* dynamic = dynamic_cast<DynamicMaximusSolver*>(solver)) {
    MIPS_RETURN_IF_ERROR(dynamic->QueryNewUser(user_vector, k, out_row));
  } else {
    // Dense scoring row: one pass of inner products + heap.  Exact and
    // strategy-independent; a single user cannot exploit blocking anyway.
    const Index n = items_.rows();
    const Index f = items_.cols();
    TopKHeap heap(k);
    for (Index i = 0; i < n; ++i) {
      heap.Push(i, Dot(user_vector, items_.Row(i), f));
    }
    heap.ExtractDescending(out_row);
  }
  stats_.serve_seconds += timer.Seconds();
  ++stats_.new_users_served;
  return Status::OK();
}

Status MipsEngine::ForceStrategy(const std::string& name_or_spec) {
  // Solver name first; the exact opening spec disambiguates when two
  // candidates are tuned variants of the same solver.
  for (std::size_t s = 0; s < names_.size(); ++s) {
    if (names_[s] == name_or_spec) {
      forced_ = s;
      return Status::OK();
    }
  }
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s] == name_or_spec) {
      forced_ = s;
      return Status::OK();
    }
  }
  std::string candidates;
  for (const std::string& candidate : specs_) {
    if (!candidates.empty()) candidates += ", ";
    candidates += candidate;
  }
  return Status::NotFound("no candidate named \"" + name_or_spec +
                          "\" (candidates: " + candidates + ")");
}

void MipsEngine::ClearForcedStrategy() { forced_ = kNoForcedStrategy; }

const std::string& MipsEngine::strategy() const {
  if (forced_ != kNoForcedStrategy) return names_[forced_];
  return names_[winner_by_k_.at(options_.k)];
}

}  // namespace mips
