// Tests for the serving-session facade (Clipper-style mini-batches +
// dynamic users) and the Section IV-A analytical BMM cost model.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/timer.h"
#include "core/cost_model.h"
#include "core/maximus.h"
#include "core/serving.h"
#include "linalg/gemm.h"
#include "solvers/bmm.h"
#include "test_util.h"
#include "topk/topk_heap.h"

namespace mips {
namespace {

using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::MakeTestModel;

ServingOptions SmallServingOptions(Index k = 5) {
  ServingOptions options;
  options.k = k;
  options.optimus.l2_cache_bytes = 16 * 1024;
  return options;
}

// ------------------------------------------------------------- Serving

TEST(ServingSessionTest, OpenValidatesOptions) {
  const MFModel model = MakeTestModel(100, 50, 8, 1);
  ServingOptions bad_k = SmallServingOptions(0);
  EXPECT_FALSE(ServingSession::Open(ConstRowBlock(model.users),
                                    ConstRowBlock(model.items), bad_k)
                   .ok());
  ServingOptions one_strategy = SmallServingOptions();
  one_strategy.strategies = {"bmm"};
  EXPECT_FALSE(ServingSession::Open(ConstRowBlock(model.users),
                                    ConstRowBlock(model.items), one_strategy)
                   .ok());
  ServingOptions unknown = SmallServingOptions();
  unknown.strategies = {"bmm", "no-such-solver"};
  EXPECT_FALSE(ServingSession::Open(ConstRowBlock(model.users),
                                    ConstRowBlock(model.items), unknown)
                   .ok());
}

TEST(ServingSessionTest, BatchesAreExact) {
  const MFModel model = MakeTestModel(300, 200, 10, 3, /*norm_sigma=*/0.6);
  auto session =
      ServingSession::Open(ConstRowBlock(model.users),
                           ConstRowBlock(model.items), SmallServingOptions());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE((*session)->strategy() == "bmm" ||
              (*session)->strategy() == "maximus");

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  // Several mini-batches, overlapping and out of order.
  const std::vector<std::vector<Index>> batches = {
      {0, 5, 7}, {299, 1, 1, 42}, {100}, {250, 249, 248, 0}};
  for (const auto& batch : batches) {
    TopKResult got;
    TopKResult expected;
    ASSERT_TRUE((*session)->ServeBatch(batch, &got).ok());
    ASSERT_TRUE(reference.TopKForUsers(5, batch, &expected).ok());
    ExpectSameTopKScores(got, expected, 1e-7);
  }
  EXPECT_EQ((*session)->stats().batches_served, 4);
  EXPECT_EQ((*session)->stats().users_served, 12);
  EXPECT_GT((*session)->stats().serve_seconds, 0.0);
}

TEST(ServingSessionTest, NewUsersAreExact) {
  const MFModel model = MakeTestModel(400, 150, 8, 5, 0.5, 0.3);
  const MFModel extra = MakeTestModel(20, 150, 8, 6, 0.5, 1.2);
  for (const char* index : {"maximus", "lemp"}) {
    ServingOptions options = SmallServingOptions();
    options.strategies = {"bmm", index};
    auto session = ServingSession::Open(ConstRowBlock(model.users),
                                        ConstRowBlock(model.items), options);
    ASSERT_TRUE(session.ok());
    std::vector<TopKEntry> row(5);
    for (Index u = 0; u < 20; ++u) {
      ASSERT_TRUE((*session)->ServeNewUser(extra.users.Row(u), row.data()).ok());
      // Reference by direct scan.
      TopKHeap heap(5);
      for (Index i = 0; i < 150; ++i) {
        heap.Push(i, Dot(extra.users.Row(u), model.items.Row(i), 8));
      }
      std::vector<TopKEntry> expected(5);
      heap.ExtractDescending(expected.data());
      for (Index e = 0; e < 5; ++e) {
        EXPECT_NEAR(row[static_cast<std::size_t>(e)].score,
                    expected[static_cast<std::size_t>(e)].score, 1e-7)
            << index << " user " << u << " entry " << e;
      }
    }
    EXPECT_EQ((*session)->stats().new_users_served, 20);
  }
}

TEST(ServingSessionTest, DecisionReportPopulated) {
  const MFModel model = MakeTestModel(300, 100, 8, 7);
  auto session =
      ServingSession::Open(ConstRowBlock(model.users),
                           ConstRowBlock(model.items), SmallServingOptions());
  ASSERT_TRUE(session.ok());
  const OptimusReport& report = (*session)->decision_report();
  EXPECT_EQ(report.estimates.size(), 2u);
  EXPECT_EQ(report.chosen, (*session)->strategy());
  EXPECT_GT(report.sample_size, 0);
  // Decide() must not have served the whole user set.
  EXPECT_EQ(report.serve_seconds, 0.0);
}

TEST(OptimusDecideTest, AgreesWithRunChoice) {
  const MFModel model = MakeTestModel(800, 1000, 12, 9, /*norm_sigma=*/1.2,
                                      /*dispersion=*/0.2);
  const auto margin = [](const OptimusReport& report) {
    double best = 1e300;
    double second = 1e300;
    for (const auto& est : report.estimates) {
      if (est.est_total_seconds < best) {
        second = best;
        best = est.est_total_seconds;
      } else if (est.est_total_seconds < second) {
        second = est.est_total_seconds;
      }
    }
    return second / best;
  };
  // The winner is only required to agree when both runs saw a clear-cut
  // (>1.5x) gap — near-tied estimates may legitimately flip between two
  // timings (the paper's own optimizer accuracy is 85-98%), and either
  // choice serves exactly.  A machine-wide load burst can inflate a
  // *wrong* clear-cut margin for the duration of one measurement, so a
  // clear-cut DISAGREEMENT retries under a fresh seed (the suite's
  // three-attempt idiom) instead of failing outright.
  bool agreed = false;
  std::string decide_chosen;
  std::string run_chosen;
  for (const uint64_t seed : {123u, 456u, 789u}) {
    OptimusOptions options;
    options.l2_cache_bytes = 16 * 1024;
    options.seed = seed;
    // Decide.
    BmmSolver bmm_a;
    MaximusSolver maximus_a;
    Optimus optimus_a(options);
    std::size_t winner = 99;
    OptimusReport decide_report;
    ASSERT_TRUE(optimus_a
                    .Decide(ConstRowBlock(model.users),
                            ConstRowBlock(model.items), 1,
                            {&bmm_a, &maximus_a}, &winner, &decide_report)
                    .ok());
    ASSERT_LT(winner, 2u);
    // Run with the same seed.
    BmmSolver bmm_b;
    MaximusSolver maximus_b;
    Optimus optimus_b(options);
    TopKResult out;
    OptimusReport run_report;
    ASSERT_TRUE(optimus_b
                    .Run(ConstRowBlock(model.users),
                         ConstRowBlock(model.items), 1, {&bmm_b, &maximus_b},
                         &out, &run_report)
                    .ok());
    // The sampling procedure is seed-deterministic, so Decide and Run
    // must draw identical samples and apply the same selection rule —
    // these invariants hold on every attempt, whatever the load.
    EXPECT_EQ(decide_report.sample_size, run_report.sample_size);
    for (const OptimusReport* report : {&decide_report, &run_report}) {
      double best = 1e300;
      std::string best_name;
      for (const auto& est : report->estimates) {
        if (est.est_total_seconds < best) {
          best = est.est_total_seconds;
          best_name = est.name;
        }
      }
      EXPECT_EQ(report->chosen, best_name);
    }
    decide_chosen = decide_report.chosen;
    run_chosen = run_report.chosen;
    if (margin(decide_report) <= 1.5 || margin(run_report) <= 1.5 ||
        decide_chosen == run_chosen) {
      agreed = true;
      break;
    }
  }
  EXPECT_TRUE(agreed) << "clear-cut margins disagreed on every attempt: "
                      << "Decide chose " << decide_chosen << ", Run chose "
                      << run_chosen;
}

// ----------------------------------------------------------- Cost model

TEST(CostModelTest, ValidatesProbeArguments) {
  EXPECT_FALSE(BmmCostModel::Calibrate(0, 10, 10).ok());
  EXPECT_FALSE(BmmCostModel::Calibrate(10, 10, 10, 0).ok());
}

TEST(CostModelTest, PredictionScalesLinearlyInFlops) {
  const BmmCostModel model(/*sustained_flops=*/10e9);
  const double t1 = model.PredictGemmSeconds(100, 100, 100);
  EXPECT_DOUBLE_EQ(t1, 2.0 * 100 * 100 * 100 / 10e9);
  EXPECT_DOUBLE_EQ(model.PredictGemmSeconds(200, 100, 100), 2.0 * t1);
  EXPECT_DOUBLE_EQ(model.PredictGemmSeconds(100, 300, 100), 3.0 * t1);
  EXPECT_EQ(model.PredictGemmSeconds(0, 10, 10), 0.0);
}

TEST(CostModelTest, CalibratedModelPredictsGemmRuntime) {
  // Measure a differently-shaped GEMM and compare (paper: within ~5%; we
  // allow a generous band for a noisy shared VM — the point is the right
  // magnitude, not cycle accuracy).  The shape keeps the score block in
  // the memory-streaming regime of the calibration probe (C = 16 MB vs
  // the probe's 32 MB): the runtime-dispatched kernels sustain 27+
  // GFLOP/s, where a cache-resident C runs measurably hotter than a
  // streamed one and a single-constant flops model cannot bridge the two
  // regimes (it never could — the slow compile-time portable kernel just
  // hid the spread under its compute-bound constant).
  //
  // Even best-of-5 wall-clock bands flake when the whole attempt lands
  // under interference, so this uses the suite's retry idiom (cf. the
  // independently-seeded attempts in optimus_test): pass if any of three
  // independent calibrate-and-measure attempts lands inside the band.
  const Index m = 1024;
  const Index n = 2048;
  const Index k = 64;
  Matrix a = testing::RandomMatrix(m, k, 1);
  Matrix b = testing::RandomMatrix(n, k, 2);
  Matrix c(m, n);
  bool within_band = false;
  double predicted = 0;
  double measured = 0;
  for (int attempt = 0; attempt < 3 && !within_band; ++attempt) {
    auto model = BmmCostModel::Calibrate();
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    EXPECT_GT(model->sustained_flops(), 1e8);  // any real machine exceeds
    GemmNT(a.data(), m, b.data(), n, k, 1, 0, c.data(), n);  // warm up
    const int reps = 5;
    measured = 1e300;  // best-of: interference only slows runs down
    for (int r = 0; r < reps; ++r) {
      WallTimer timer;
      GemmNT(a.data(), m, b.data(), n, k, 1, 0, c.data(), n);
      measured = std::min(measured, timer.Seconds());
    }
    predicted = model->PredictGemmSeconds(m, n, k);
    within_band = predicted > measured * 0.5 && predicted < measured * 2.0;
  }
  EXPECT_TRUE(within_band)
      << "predicted " << predicted << "s vs measured " << measured
      << "s after three attempts";
}

// The paper's documented limitation: the analytical model covers the
// multiply but NOT the top-K heap pass, so it must underpredict the full
// BMM pipeline (heap >= 9.5% on large models).
TEST(CostModelTest, UnderpredictsFullBmmPipeline) {
  auto cost_model = BmmCostModel::Calibrate();
  ASSERT_TRUE(cost_model.ok());
  const MFModel model = MakeTestModel(2000, 3000, 50, 11);
  BmmSolver bmm;
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(bmm.TopKAll(50, &out).ok());  // warm up
  WallTimer timer;
  ASSERT_TRUE(bmm.TopKAll(50, &out).ok());
  const double measured = timer.Seconds();
  const double predicted =
      cost_model->PredictScoringSeconds(2000, 3000, 50);
  EXPECT_LT(predicted, measured);  // the heap pass is unmodeled
}

}  // namespace
}  // namespace mips
