// Tests for the src/shard subsystem: the item partitioner (contiguous +
// hash, id maps, degenerate shard counts), ShardedMipsEngine exactness
// against the unsharded engine (bit-for-bit ids, matching scores) across
// solver specs / mixed k / new users / degenerate shards, per-shard
// OPTIMUS heterogeneity on a norm-skewed fixture, strategy forcing
// (global and per-shard), the sharded ServingSession, and a
// ConcurrentShardedTopK suite mirroring engine_test's harness.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/serving.h"
#include "linalg/blas.h"
#include "shard/partition.h"
#include "shard/sharded_engine.h"
#include "solvers/bmm.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::MakeTestModel;

using ::mips::testing::kSanitizerSkewsWallClock;

ShardedEngineOptions SmallShardedOptions(
    int num_shards, Index k = 5,
    ShardingStrategy sharding = ShardingStrategy::kContiguous) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.sharding = sharding;
  options.engine.k = k;
  options.engine.optimus.l2_cache_bytes = 16 * 1024;
  return options;
}

/// Sharded results must reproduce the unsharded engine bit-for-bit on
/// item ids (continuous random scores — no ties) and match scores to
/// accumulation-order tolerance (shard and unsharded answers may be
/// served by different solvers).
void ExpectIdenticalTopK(const TopKResult& got, const TopKResult& want) {
  ASSERT_EQ(got.num_queries(), want.num_queries());
  ASSERT_EQ(got.k(), want.k());
  for (Index q = 0; q < got.num_queries(); ++q) {
    for (Index e = 0; e < got.k(); ++e) {
      EXPECT_EQ(got.Row(q)[e].item, want.Row(q)[e].item)
          << "row " << q << " entry " << e;
      if (std::isinf(want.Row(q)[e].score)) {
        EXPECT_EQ(got.Row(q)[e].score, want.Row(q)[e].score);
      } else {
        EXPECT_NEAR(got.Row(q)[e].score, want.Row(q)[e].score, 1e-9)
            << "row " << q << " entry " << e;
      }
    }
  }
}

// --------------------------------------------------------- ItemPartition

TEST(ItemPartitionTest, ValidatesArguments) {
  const MFModel model = MakeTestModel(10, 20, 4, 1);
  const ConstRowBlock items(model.items);
  EXPECT_FALSE(
      ItemPartition::Create(items, 0, ShardingStrategy::kContiguous).ok());
  EXPECT_FALSE(ItemPartition::Create(ConstRowBlock(nullptr, 0, 4), 2,
                                     ShardingStrategy::kContiguous)
                   .ok());
}

TEST(ItemPartitionTest, ContiguousCoversEveryItemOnce) {
  const MFModel model = MakeTestModel(10, 23, 4, 2);
  const ConstRowBlock items(model.items);
  auto partition =
      ItemPartition::Create(items, 4, ShardingStrategy::kContiguous);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->num_shards(), 4);
  EXPECT_EQ(partition->num_items(), 23);

  std::set<Index> seen;
  for (int s = 0; s < partition->num_shards(); ++s) {
    const ItemShard& shard = partition->shard(s);
    for (Index local = 0; local < shard.num_items(); ++local) {
      const Index global = shard.ToGlobal(local);
      EXPECT_TRUE(seen.insert(global).second) << "item " << global
                                              << " in two shards";
      EXPECT_EQ(partition->ShardOfItem(global), s);
      // The shard's row must be the original item vector.
      EXPECT_EQ(0, std::memcmp(shard.items.Row(local), items.Row(global),
                               sizeof(Real) * 4));
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), items.rows());
  // 23 = 6 + 6 + 6 + 5: SplitRange gives the first shards the remainder.
  EXPECT_EQ(partition->shard(0).num_items(), 6);
  EXPECT_EQ(partition->shard(3).num_items(), 5);
}

TEST(ItemPartitionTest, HashCoversEveryItemOnce) {
  const MFModel model = MakeTestModel(10, 200, 6, 3);
  const ConstRowBlock items(model.items);
  auto partition = ItemPartition::Create(items, 3, ShardingStrategy::kHash);
  ASSERT_TRUE(partition.ok());

  std::set<Index> seen;
  for (int s = 0; s < partition->num_shards(); ++s) {
    const ItemShard& shard = partition->shard(s);
    // Hash shards gather rows in increasing global-id order.
    for (Index local = 0; local < shard.num_items(); ++local) {
      const Index global = shard.ToGlobal(local);
      if (local > 0) EXPECT_LT(shard.ToGlobal(local - 1), global);
      EXPECT_TRUE(seen.insert(global).second);
      EXPECT_EQ(partition->ShardOfItem(global), s);
      EXPECT_EQ(HashShardOfItem(global, 3), s);
      EXPECT_EQ(0, std::memcmp(shard.items.Row(local), items.Row(global),
                               sizeof(Real) * 6));
    }
    // The multiplicative hash should spread 200 ids roughly evenly.
    EXPECT_GT(shard.num_items(), 200 / 3 / 2);
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), items.rows());
}

TEST(ItemPartitionTest, GrowthCoversEveryItemOnce) {
  const MFModel model = MakeTestModel(10, 23, 4, 6);
  const ConstRowBlock items(model.items);
  auto partition = ItemPartition::Create(items, 4, ShardingStrategy::kGrowth);
  ASSERT_TRUE(partition.ok());
  // Derived block: ceil(23 / 4) = 6; the last shard absorbs the rest.
  EXPECT_EQ(partition->growth_block(), 6);
  EXPECT_EQ(partition->shard(0).num_items(), 6);
  EXPECT_EQ(partition->shard(3).num_items(), 5);

  std::set<Index> seen;
  for (int s = 0; s < partition->num_shards(); ++s) {
    const ItemShard& shard = partition->shard(s);
    for (Index local = 0; local < shard.num_items(); ++local) {
      const Index global = shard.ToGlobal(local);
      EXPECT_TRUE(seen.insert(global).second);
      EXPECT_EQ(partition->ShardOfItem(global), s);
      EXPECT_EQ(0, std::memcmp(shard.items.Row(local), items.Row(global),
                               sizeof(Real) * 4));
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), items.rows());
}

TEST(ItemPartitionTest, GrowthPinnedBlockKeepsPrefixShardsStable) {
  // The live-catalog use case: the catalog appends, the partition is
  // recreated with the SAME pinned block, and only the last shard's
  // contents may change.
  const MFModel model = MakeTestModel(10, 40, 4, 7);
  const ConstRowBlock items(model.items);
  const Index kBlock = 8;

  auto before = ItemPartition::Create(
      ConstRowBlock(items.Row(0), 25, 4), 3, ShardingStrategy::kGrowth,
      kBlock);
  ASSERT_TRUE(before.ok());
  auto after = ItemPartition::Create(
      ConstRowBlock(items.Row(0), 40, 4), 3, ShardingStrategy::kGrowth,
      kBlock);
  ASSERT_TRUE(after.ok());

  // Prefix shards: identical ranges before and after the append.
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(before->shard(s).num_items(), kBlock);
    EXPECT_EQ(after->shard(s).num_items(), kBlock);
    EXPECT_EQ(before->shard(s).global_offset, after->shard(s).global_offset);
    EXPECT_EQ(before->shard(s).items.Row(0), after->shard(s).items.Row(0));
  }
  // The append landed entirely in the newest shard.
  EXPECT_EQ(before->shard(2).num_items(), 25 - 2 * kBlock);
  EXPECT_EQ(after->shard(2).num_items(), 40 - 2 * kBlock);
  for (Index id = 25; id < 40; ++id) {
    EXPECT_EQ(after->ShardOfItem(id), 2);
  }
  // Under kContiguous the same append would re-split every shard.
  auto contiguous = ItemPartition::Create(
      ConstRowBlock(items.Row(0), 40, 4), 3, ShardingStrategy::kContiguous);
  ASSERT_TRUE(contiguous.ok());
  EXPECT_NE(contiguous->shard(0).num_items(), kBlock);
}

TEST(ItemPartitionTest, GrowthHandlesShortCatalogsAndBadBlocks) {
  const MFModel model = MakeTestModel(10, 5, 4, 8);
  const ConstRowBlock items(model.items);
  // Block larger than the catalog: everything in shard 0, later shards
  // empty (the last shard's absorb range is empty too).
  auto partition = ItemPartition::Create(items, 3,
                                         ShardingStrategy::kGrowth, 100);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->shard(0).num_items(), 5);
  EXPECT_EQ(partition->shard(1).num_items(), 0);
  EXPECT_EQ(partition->shard(2).num_items(), 0);
  for (Index id = 0; id < 5; ++id) EXPECT_EQ(partition->ShardOfItem(id), 0);

  EXPECT_FALSE(ItemPartition::Create(items, 3, ShardingStrategy::kGrowth, -1)
                   .ok());
}

TEST(ItemPartitionTest, ParseAndPrintGrowthStrategy) {
  auto parsed = ParseShardingStrategy("growth");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ShardingStrategy::kGrowth);
  EXPECT_STREQ(ToString(ShardingStrategy::kGrowth), "growth");
  EXPECT_FALSE(ParseShardingStrategy("grow").ok());
}

TEST(ItemPartitionTest, MoreShardsThanItemsLeavesEmptyShards) {
  const MFModel model = MakeTestModel(10, 3, 4, 4);
  auto partition = ItemPartition::Create(ConstRowBlock(model.items), 8,
                                         ShardingStrategy::kContiguous);
  ASSERT_TRUE(partition.ok());
  Index total = 0;
  int empty = 0;
  for (int s = 0; s < 8; ++s) {
    total += partition->shard(s).num_items();
    if (partition->shard(s).num_items() == 0) ++empty;
  }
  EXPECT_EQ(total, 3);
  EXPECT_EQ(empty, 5);
}

// ---------------------------------------------- sharded vs unsharded

class ShardedExactness
    : public ::testing::TestWithParam<std::tuple<int, ShardingStrategy>> {};

TEST_P(ShardedExactness, MatchesUnshardedAcrossSpecsAndK) {
  const auto [num_shards, sharding] = GetParam();
  const MFModel model = MakeTestModel(160, 220, 8, 31, /*norm_sigma=*/0.8);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  const std::vector<std::vector<std::string>> candidate_sets = {
      {"bmm"},
      {"lemp"},
      {"maximus:clusters=4"},
      {"fexipro-si"},
      {"bmm", "maximus", "lemp"},
  };
  for (const auto& specs : candidate_sets) {
    ShardedEngineOptions options = SmallShardedOptions(num_shards, 5, sharding);
    options.engine.solvers = specs;
    auto sharded = ShardedMipsEngine::Open(users, items, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_EQ((*sharded)->num_shards(), num_shards);
    EXPECT_EQ((*sharded)->num_items(), 220);

    EngineOptions unsharded_options = options.engine;
    auto unsharded = MipsEngine::Open(users, items, unsharded_options);
    ASSERT_TRUE(unsharded.ok());

    for (const Index k : {1, 5, 12}) {
      TopKResult got;
      TopKResult want;
      ASSERT_TRUE((*sharded)->TopKAll(k, &got).ok());
      ASSERT_TRUE((*unsharded)->TopKAll(k, &want).ok());
      ExpectIdenticalTopK(got, want);
    }
    // Mini-batch path with scattered user ids.
    const std::vector<Index> batch = {0, 17, 159, 3, 86};
    TopKResult got;
    TopKResult want;
    ASSERT_TRUE((*sharded)->TopK(7, batch, &got).ok());
    ASSERT_TRUE((*unsharded)->TopK(7, batch, &want).ok());
    ExpectIdenticalTopK(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardLayouts, ShardedExactness,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(ShardingStrategy::kContiguous,
                                         ShardingStrategy::kHash,
                                         ShardingStrategy::kGrowth)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "shards_" +
             std::string(ToString(std::get<1>(info.param)));
    });

TEST(ShardedEngineTest, TiedScoresMergeDeterministicallyAcrossShards) {
  // Exact duplicate item vectors spread across shards produce exactly
  // tied scores at the top of every row.  The library-wide tie order
  // (lower id wins; heap Push, strict pruning bounds, k-way merge) must
  // make every solver family — batching, point-query with norm pruning,
  // clustered index, and the SVD-transform cascade — report the same
  // ids sharded and unsharded, with the lowest duplicate ids first.
  // FEXIPRO participates since its original-space rescoring (fexipro.h):
  // the per-shard SVD rotation steers only its pruning, never the
  // reported score, so exact cross-shard ties stay exact ties.
  MFModel model = MakeTestModel(80, 60, 8, 61, /*norm_sigma=*/0.3,
                                /*dispersion=*/0.5, /*non_negative=*/true);
  // A dominant non-negative vector duplicated into all three contiguous
  // shards (shard ranges: [0,20), [20,40), [40,60)).  Non-negative
  // factors guarantee every user scores it above the unit-scale rest.
  const std::vector<Index> duplicates = {3, 21, 27, 44, 58};
  for (Index c = 0; c < 8; ++c) {
    model.items(duplicates[0], c) = 5.0 + static_cast<Real>(c) * 0.25;
  }
  for (std::size_t d = 1; d < duplicates.size(); ++d) {
    std::memcpy(model.items.Row(duplicates[d]), model.items.Row(duplicates[0]),
                sizeof(Real) * 8);
  }
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  for (const char* spec : {"bmm", "naive", "lemp", "maximus:clusters=4",
                           "fexipro-si", "fexipro-sir"}) {
    ShardedEngineOptions options = SmallShardedOptions(3);
    options.engine.solvers = {spec};
    auto sharded = ShardedMipsEngine::Open(users, items, options);
    ASSERT_TRUE(sharded.ok()) << spec << ": " << sharded.status().ToString();
    auto unsharded = MipsEngine::Open(users, items, options.engine);
    ASSERT_TRUE(unsharded.ok()) << spec;

    for (const Index k : {3, 5, 7}) {
      TopKResult got;
      TopKResult want;
      ASSERT_TRUE((*sharded)->TopKAll(k, &got).ok()) << spec;
      ASSERT_TRUE((*unsharded)->TopKAll(k, &want).ok()) << spec;
      for (Index q = 0; q < got.num_queries(); ++q) {
        // The tied duplicates fill the head of the row lowest-id-first.
        for (Index e = 0; e < std::min<Index>(k, 5); ++e) {
          EXPECT_EQ(got.Row(q)[e].item, duplicates[static_cast<std::size_t>(e)])
              << spec << " row " << q << " entry " << e;
        }
        for (Index e = 0; e < k; ++e) {
          EXPECT_EQ(got.Row(q)[e].item, want.Row(q)[e].item)
              << spec << " row " << q << " entry " << e;
        }
      }
    }
  }
}

TEST(ShardedEngineTest, FexiproMatchesUnshardedBitForBit) {
  // The PR 3 carve-out, retired: FEXIPRO's reported scores used to pass
  // through the per-shard SVD rotation, so the same item could score
  // ulp-differently in different shards.  With original-space rescoring
  // (fexipro.h) the reported score for a (user, item) pair is one Dot
  // over the raw rows — identical whichever shard the item landed in —
  // so sharded results must now match the unsharded engine EXACTLY,
  // scores included, for both FEXIPRO variants and both placements.
  const MFModel model = MakeTestModel(120, 180, 8, 67, /*norm_sigma=*/0.8);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  for (const char* spec : {"fexipro-si", "fexipro-sir"}) {
    for (const ShardingStrategy sharding :
         {ShardingStrategy::kContiguous, ShardingStrategy::kHash}) {
      ShardedEngineOptions options = SmallShardedOptions(3, 5, sharding);
      options.engine.solvers = {spec};
      auto sharded = ShardedMipsEngine::Open(users, items, options);
      ASSERT_TRUE(sharded.ok()) << spec << ": " << sharded.status().ToString();
      auto unsharded = MipsEngine::Open(users, items, options.engine);
      ASSERT_TRUE(unsharded.ok()) << spec;
      for (const Index k : {1, 5, 9}) {
        TopKResult got;
        TopKResult want;
        ASSERT_TRUE((*sharded)->TopKAll(k, &got).ok()) << spec;
        ASSERT_TRUE((*unsharded)->TopKAll(k, &want).ok()) << spec;
        ASSERT_EQ(got.num_queries(), want.num_queries());
        for (Index q = 0; q < got.num_queries(); ++q) {
          for (Index e = 0; e < k; ++e) {
            ASSERT_EQ(got.Row(q)[e].item, want.Row(q)[e].item)
                << spec << " row " << q << " entry " << e;
            // Bit-for-bit: exact double equality, no tolerance.
            ASSERT_EQ(got.Row(q)[e].score, want.Row(q)[e].score)
                << spec << " row " << q << " entry " << e;
          }
        }
      }
    }
  }
}

TEST(ShardedEngineTest, NewUsersMatchUnsharded) {
  const MFModel model = MakeTestModel(200, 150, 8, 33, 0.6);
  const MFModel extra = MakeTestModel(12, 150, 8, 34, 0.6, 1.1);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);

  ShardedEngineOptions options = SmallShardedOptions(3);
  options.engine.solvers = {"bmm", "maximus", "lemp"};
  auto sharded = ShardedMipsEngine::Open(users, items, options);
  ASSERT_TRUE(sharded.ok());
  auto unsharded = MipsEngine::Open(users, items, options.engine);
  ASSERT_TRUE(unsharded.ok());

  std::vector<TopKEntry> got(5);
  std::vector<TopKEntry> want(5);
  for (Index u = 0; u < 12; ++u) {
    ASSERT_TRUE(
        (*sharded)->TopKNewUser(extra.users.Row(u), 5, got.data()).ok());
    ASSERT_TRUE(
        (*unsharded)->TopKNewUser(extra.users.Row(u), 5, want.data()).ok());
    for (Index e = 0; e < 5; ++e) {
      EXPECT_EQ(got[static_cast<std::size_t>(e)].item,
                want[static_cast<std::size_t>(e)].item)
          << "user " << u << " entry " << e;
      EXPECT_NEAR(got[static_cast<std::size_t>(e)].score,
                  want[static_cast<std::size_t>(e)].score, 1e-9);
    }
  }
  EXPECT_EQ((*sharded)->stats().new_users_served, 12);
}

TEST(ShardedEngineTest, DegenerateShardsStayExact) {
  // More shards than items: empty shards get no engine, k larger than
  // every shard pads per shard, and the merged result is still the
  // unsharded answer.
  const MFModel model = MakeTestModel(40, 6, 4, 35);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  ShardedEngineOptions options = SmallShardedOptions(8, 3);
  options.engine.solvers = {"bmm"};
  auto sharded = ShardedMipsEngine::Open(users, items, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  int empty_shards = 0;
  for (int s = 0; s < (*sharded)->num_shards(); ++s) {
    if ((*sharded)->shard_engine(s) == nullptr) {
      ++empty_shards;
      EXPECT_EQ((*sharded)->shard_strategy(s), "");
    }
  }
  EXPECT_EQ(empty_shards, 2);  // 6 items over 8 shards

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  for (const Index k : {1, 3, 6, 9}) {  // 9 > |items|: sentinel padding
    TopKResult got;
    TopKResult want;
    ASSERT_TRUE((*sharded)->TopKAll(k, &got).ok());
    ASSERT_TRUE(reference.TopKAll(k, &want).ok());
    ExpectIdenticalTopK(got, want);
  }
}

TEST(ShardedEngineTest, ValidatesArguments) {
  const MFModel model = MakeTestModel(30, 20, 4, 36);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  EXPECT_FALSE(
      ShardedMipsEngine::Open(users, items, SmallShardedOptions(0)).ok());

  auto engine = ShardedMipsEngine::Open(users, items, SmallShardedOptions(2));
  ASSERT_TRUE(engine.ok());
  TopKResult out;
  const std::vector<Index> bad = {0, 30};
  EXPECT_EQ((*engine)->TopK(5, bad, &out).code(), StatusCode::kOutOfRange);
  const std::vector<Index> ok_ids = {0, 29};
  EXPECT_EQ((*engine)->TopK(0, ok_ids, &out).code(),
            StatusCode::kInvalidArgument);
  std::vector<TopKEntry> row(5);
  EXPECT_EQ((*engine)->TopKNewUser(nullptr, 5, row.data()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*engine)->stats().batches_served, 0);
}

// ------------------------------------------------------ strategy forcing

TEST(ShardedEngineTest, ForceStrategyAppliesToEveryShard) {
  const MFModel model = MakeTestModel(120, 90, 8, 37);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  ShardedEngineOptions options = SmallShardedOptions(3);
  options.engine.solvers = {"bmm", "maximus", "lemp"};
  auto engine = ShardedMipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok());

  EXPECT_FALSE((*engine)->ForceStrategy("fexipro-si").ok());
  ASSERT_TRUE((*engine)->ForceStrategy("lemp").ok());
  for (int s = 0; s < 3; ++s) EXPECT_EQ((*engine)->shard_strategy(s), "lemp");

  // Per-shard override on top: shard 1 pinned to bmm, the rest stay.
  ASSERT_TRUE((*engine)->ForceStrategyOnShard(1, "bmm").ok());
  EXPECT_EQ((*engine)->shard_strategy(0), "lemp");
  EXPECT_EQ((*engine)->shard_strategy(1), "bmm");
  EXPECT_FALSE((*engine)->ForceStrategyOnShard(7, "bmm").ok());

  // Mixed per-shard strategies still merge to the exact global answer.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  TopKResult got;
  TopKResult want;
  ASSERT_TRUE((*engine)->TopKAll(4, &got).ok());
  ASSERT_TRUE(reference.TopKAll(4, &want).ok());
  ExpectIdenticalTopK(got, want);

  (*engine)->ClearForcedStrategy();
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ((*engine)->shard_strategy(s),
              (*engine)->shard_engine(s)->decision_report().chosen);
  }
}

// ------------------------------------------- per-shard OPTIMUS decisions

/// Builds a model whose item catalog is heterogeneous on the axis the
/// paper shows decides the index-vs-BMM race: the first half has
/// perfectly flat norms (nothing for a length-based bound to prune — BMM
/// territory), the second half extreme log-normal norm skew (the index
/// walk terminates after a tiny prefix).  Users are near-isotropic so the
/// flat half cannot be rescued by angle pruning alone.
MFModel MakeSplitNormModel(Index num_users, Index items_per_half, Index f,
                           uint64_t seed) {
  const MFModel flat =
      MakeTestModel(num_users, items_per_half, f, seed, /*norm_sigma=*/0.0,
                    /*dispersion=*/2.0);
  const MFModel skewed =
      MakeTestModel(8, items_per_half, f, seed + 1, /*norm_sigma=*/2.5,
                    /*dispersion=*/2.0);
  MFModel model;
  model.name = "split-norm";
  model.users = flat.users;
  model.items.Resize(2 * items_per_half, f);
  std::memcpy(model.items.Row(0), flat.items.Row(0),
              sizeof(Real) * static_cast<std::size_t>(items_per_half) * f);
  std::memcpy(model.items.Row(items_per_half), skewed.items.Row(0),
              sizeof(Real) * static_cast<std::size_t>(items_per_half) * f);
  return model;
}

TEST(ShardedDecisionTest, NormSkewedShardsChooseDifferentWinners) {
  if (kSanitizerSkewsWallClock) {
    GTEST_SKIP() << "OPTIMUS winner assertions are wall-clock regime "
                    "checks; sanitizer instrumentation slowdown skews them";
  }
  // Contiguous 2-way sharding puts the flat half and the skewed half on
  // different shards; each shard's own OPTIMUS decision should disagree
  // (the whole point of deciding per shard).  The candidates are bmm and
  // maximus deliberately: both are dominated by the same blocked-GEMM
  // kernel, so the per-shard winner is set by MAXIMUS's data-determined
  // visit counts — collapsed bound on flat norms (scan everything, pay
  // clustering overhead on top of BMM's cost), tiny visited prefix under
  // heavy skew — rather than by this machine's GEMM throughput (the
  // AVX-512 degradation that made absolute index-vs-BMM winner
  // assertions unsound; see optimus_test).  The shard size is chosen for
  // the runtime-dispatched kernels: at 27+ GFLOP/s a 2000-item shard
  // costs BMM single-digit microseconds per user and per-query fixed
  // overheads decide the race instead of the regime, so each half
  // carries 8000 items x 48 factors — big enough that scanning
  // everything (BMM on the skewed half) is decisively more arithmetic
  // than MAXIMUS's tiny visited prefix on ANY kernel.  Decisions are
  // still wall-clock measurements over a few dozen sampled users, so the
  // suite's usual three-attempt idiom absorbs scheduler preemptions.
  std::string flat_choice;
  std::string skew_choice;
  for (uint64_t attempt = 0; attempt < 3; ++attempt) {
    const MFModel model =
        MakeSplitNormModel(400, 8000, 48, /*seed=*/41 + 10 * attempt);
    const ConstRowBlock users(model.users);
    const ConstRowBlock items(model.items);
    ShardedEngineOptions options = SmallShardedOptions(2, 10);
    options.engine.solvers = {"bmm", "maximus:clusters=16"};
    options.engine.optimus.l2_cache_bytes = kDefaultL2CacheBytes;
    options.engine.optimus.seed = 123 + attempt;
    auto engine = ShardedMipsEngine::Open(users, items, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    flat_choice = (*engine)->stats().shards[0].opening_choice;
    skew_choice = (*engine)->stats().shards[1].opening_choice;

    // Heterogeneous winners (or not), one exact global answer.
    BmmSolver reference;
    ASSERT_TRUE(reference.Prepare(users, items).ok());
    const std::vector<Index> batch = {0, 99, 399, 7};
    TopKResult got;
    TopKResult want;
    ASSERT_TRUE((*engine)->TopK(10, batch, &got).ok());
    ASSERT_TRUE(reference.TopKForUsers(10, batch, &want).ok());
    ExpectIdenticalTopK(got, want);

    if (flat_choice == "bmm" && skew_choice == "maximus") break;
  }
  EXPECT_EQ(flat_choice, "bmm")
      << "flat-norm shard should fall back to BMM";
  EXPECT_EQ(skew_choice, "maximus")
      << "norm-skewed shard should prune with the index";
}

// ------------------------------------------------------- ServingSession

TEST(ShardedServingTest, SessionServesThroughShards) {
  const MFModel model = MakeTestModel(150, 120, 8, 43, 0.7);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  ServingOptions options;
  options.k = 6;
  options.strategies = {"bmm", "lemp"};
  options.optimus.l2_cache_bytes = 16 * 1024;
  options.num_shards = 3;
  auto session = ServingSession::Open(users, items, options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_NE((*session)->sharded_engine(), nullptr);
  EXPECT_EQ((*session)->engine(), nullptr);
  // The strategy summary joins the per-shard winners in shard order.
  EXPECT_EQ((*session)->strategy(),
            (*session)->sharded_engine()->shard_strategy(0) + "|" +
                (*session)->sharded_engine()->shard_strategy(1) + "|" +
                (*session)->sharded_engine()->shard_strategy(2));

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  const std::vector<Index> batch = {0, 5, 149};
  TopKResult got;
  TopKResult want;
  ASSERT_TRUE((*session)->ServeBatch(batch, &got).ok());
  ASSERT_TRUE(reference.TopKForUsers(6, batch, &want).ok());
  ExpectIdenticalTopK(got, want);
  EXPECT_EQ((*session)->stats().batches_served, 1);
  EXPECT_EQ((*session)->stats().users_served, 3);

  std::vector<TopKEntry> row(6);
  ASSERT_TRUE((*session)->ServeNewUser(model.users.Row(0), row.data()).ok());
  ASSERT_TRUE(
      reference.TopKForUsers(6, std::vector<Index>{0}, &want).ok());
  for (Index e = 0; e < 6; ++e) {
    EXPECT_EQ(row[static_cast<std::size_t>(e)].item, want.Row(0)[e].item);
  }
  EXPECT_EQ((*session)->stats().new_users_served, 1);
}

// --------------------------------------------------------- concurrency
//
// Mirrors engine_test's ConcurrentTopK harness: many client threads with
// mixed k against one ShardedMipsEngine, every answer compared to a
// serial reference, with concurrent stats()/shard_strategy() readers.

struct ConcurrentResult {
  std::atomic<int64_t> status_failures{0};
  std::atomic<int64_t> mismatches{0};
};

void HammerShardedEngine(ShardedMipsEngine* engine,
                         const std::vector<Index>& ks,
                         const std::map<Index, TopKResult>& references,
                         int num_threads, int iterations, Index num_users,
                         ConcurrentResult* result) {
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    clients.emplace_back([&, t]() {
      for (int i = 0; i < iterations; ++i) {
        const Index k = ks[static_cast<std::size_t>(t + i) % ks.size()];
        std::vector<Index> batch;
        for (Index u = 0; u < 7; ++u) {
          batch.push_back((static_cast<Index>(t) * 31 +
                           static_cast<Index>(i) * 13 + u * 17) %
                          num_users);
        }
        TopKResult got;
        if (!engine->TopK(k, batch, &got).ok()) {
          result->status_failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const TopKResult& expected = references.at(k);
        for (std::size_t r = 0; r < batch.size(); ++r) {
          for (Index e = 0; e < k; ++e) {
            const TopKEntry got_entry = got.Row(static_cast<Index>(r))[e];
            const TopKEntry want_entry = expected.Row(batch[r])[e];
            if (got_entry.item != want_entry.item ||
                std::abs(got_entry.score - want_entry.score) > 1e-9) {
              result->mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    int64_t last_users = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const ShardedMipsEngine::Stats snapshot = engine->stats();
      if (snapshot.users_served < last_users) {
        result->status_failures.fetch_add(1, std::memory_order_relaxed);
      }
      last_users = snapshot.users_served;
      (void)engine->shard_strategy(0);
    }
  });
  for (auto& c : clients) c.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

class ConcurrentShardedTopK : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentShardedTopK, MixedKMatchesSerialReference) {
  const int engine_threads = GetParam();
  const Index num_users = 240;
  const MFModel model = MakeTestModel(num_users, 150, 8, 47,
                                      /*norm_sigma=*/0.6);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  ShardedEngineOptions options = SmallShardedOptions(3);
  options.threads = engine_threads;
  options.engine.solvers = {"bmm", "maximus", "lemp"};
  auto engine = ShardedMipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::vector<Index> ks = {3, 5, 9, 12};
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  std::map<Index, TopKResult> references;
  for (const Index k : ks) {
    ASSERT_TRUE(reference.TopKAll(k, &references[k]).ok());
  }

  ConcurrentResult result;
  HammerShardedEngine(engine->get(), ks, references, /*num_threads=*/8,
                      /*iterations=*/24, num_users, &result);
  EXPECT_EQ(result.status_failures.load(), 0);
  EXPECT_EQ(result.mismatches.load(), 0);

  const ShardedMipsEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.batches_served, 8 * 24);
  EXPECT_EQ(stats.users_served, 8 * 24 * 7);
  // Each shard re-decides once per diverging k, serialized by its own
  // decision cache.
  EXPECT_EQ(stats.redecisions,
            static_cast<int64_t>(3 * (ks.size() - 1)));
}

INSTANTIATE_TEST_SUITE_P(ShardedPoolSizes, ConcurrentShardedTopK,
                         ::testing::Values(0, 2));

TEST(ConcurrentShardedTest, ForcedStrategyFlipsStayExact) {
  const Index num_users = 160;
  const MFModel model = MakeTestModel(num_users, 100, 8, 53);
  const ConstRowBlock users(model.users);
  const ConstRowBlock items(model.items);
  ShardedEngineOptions options = SmallShardedOptions(2, 4);
  options.engine.solvers = {"bmm", "maximus"};
  auto engine = ShardedMipsEngine::Open(users, items, options);
  ASSERT_TRUE(engine.ok());

  const std::vector<Index> ks = {4};
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(users, items).ok());
  std::map<Index, TopKResult> references;
  ASSERT_TRUE(reference.TopKAll(4, &references[4]).ok());

  std::atomic<bool> stop{false};
  std::thread flipper([&]() {
    int flips = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      switch (flips % 3) {
        case 0:
          (void)(*engine)->ForceStrategy("maximus");
          break;
        case 1:
          (void)(*engine)->ForceStrategyOnShard(1, "bmm");
          break;
        default:
          (*engine)->ClearForcedStrategy();
      }
      ++flips;
    }
  });
  ConcurrentResult result;
  HammerShardedEngine(engine->get(), ks, references, /*num_threads=*/4,
                      /*iterations=*/16, num_users, &result);
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  EXPECT_EQ(result.status_failures.load(), 0);
  EXPECT_EQ(result.mismatches.load(), 0);
}

}  // namespace
}  // namespace mips
