// Movie recommender: the paper's Figure 1 scenario end to end.
//
//   ratings matrix --(SGD matrix factorization)--> user/item factors
//                  --(MipsEngine)--> exact top-K movies per user
//
// Demonstrates: the MF trainer, model persistence, spec-driven engine
// serving, and the dynamic-user path (a brand-new user gets exact
// recommendations without re-clustering, Section III-E) — all without
// naming a single concrete solver type.
//
// Build & run:  ./build/examples/movie_recommender

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "data/io.h"
#include "data/mf_trainer.h"

int main() {
  using namespace mips;

  // --- 1. Synthesize a ratings history and train an MF model. ---
  const Index num_users = 5000;
  const Index num_movies = 1200;
  std::printf("generating ratings and training MF model (%d users x %d "
              "movies)...\n",
              num_users, num_movies);
  const auto ratings = GenerateSyntheticRatings(
      num_users, num_movies, /*count=*/400000, /*true_rank=*/8,
      /*noise=*/0.1, /*seed=*/11);

  MFTrainConfig train_config;
  train_config.num_factors = 16;
  train_config.epochs = 8;
  train_config.learning_rate = 0.015;
  auto model = TrainMF(ratings, num_users, num_movies, train_config);
  model.status().CheckOK();
  std::printf("training RMSE: %.4f\n", ComputeRMSE(*model, ratings));

  // --- 2. Persist the factors (as a real serving system would). ---
  const std::string user_path = "/tmp/movie_users.mipsmat";
  const std::string item_path = "/tmp/movie_items.mipsmat";
  SaveMatrixBinary(model->users, user_path).CheckOK();
  SaveMatrixBinary(model->items, item_path).CheckOK();
  auto users = LoadMatrixBinary(user_path);
  auto items = LoadMatrixBinary(item_path);
  users.status().CheckOK();
  items.status().CheckOK();
  std::printf("factors persisted and reloaded (%s, %s)\n", user_path.c_str(),
              item_path.c_str());

  // --- 3. Serve exact top-10 for everyone through the engine. ---
  EngineOptions options;
  options.k = 10;
  options.solvers = {"bmm", "maximus"};
  auto engine =
      MipsEngine::Open(ConstRowBlock(*users), ConstRowBlock(*items), options);
  engine.status().CheckOK();
  TopKResult top10;
  (*engine)->TopKAll(10, &top10).CheckOK();
  std::printf("\nOPTIMUS chose %s; decision %.3f s, serve %.3f s for %d "
              "users\n",
              (*engine)->strategy().c_str(),
              (*engine)->decision_report().total_seconds,
              (*engine)->stats().serve_seconds, num_users);
  std::printf("user 0 top-5 movies:");
  for (Index e = 0; e < 5; ++e) {
    std::printf("  #%d (%.2f)", top10.Row(0)[e].item, top10.Row(0)[e].score);
  }
  std::printf("\n");

  // --- 4. A new user arrives after the decision (Section III-E). ---
  // The engine serves them exactly whatever strategy won: MAXIMUS's
  // dynamic-user walk when an index is bound, a dense scoring row
  // otherwise.  No re-clustering, no concrete types.
  Rng rng(99);
  std::vector<Real> new_user(16);
  for (auto& v : new_user) v = static_cast<Real>(rng.Normal(0.0, 0.3));
  std::vector<TopKEntry> recs(10);
  (*engine)->TopKNewUser(new_user.data(), 10, recs.data()).CheckOK();
  std::printf("new (unclustered) user served via %s; top-5:",
              (*engine)->strategy().c_str());
  for (Index e = 0; e < 5; ++e) {
    std::printf("  #%d (%.2f)", recs[static_cast<std::size_t>(e)].item,
                recs[static_cast<std::size_t>(e)].score);
  }
  std::printf("\n");
  return 0;
}
