#include "RawSyncCheck.h"

#include "MipsTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mips {

RawSyncCheck::RawSyncCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      ExemptPathPattern(
          Options.get("ExemptPathPattern", "(^|/)(src/common|tools)/")),
      ExemptPathRegex(ExemptPathPattern) {}

void RawSyncCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ExemptPathPattern", ExemptPathPattern);
}

void RawSyncCheck::registerMatchers(MatchFinder *Finder) {
  // The raw synchronisation vocabulary.  Matching the *record decl*
  // through the canonical desugared type catches plain classes
  // (std::mutex), template specialisations (std::lock_guard<std::mutex>),
  // and any typedef/alias spelling of either.
  const auto RawSyncDecl = cxxRecordDecl(hasAnyName(
      "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
      "::std::recursive_timed_mutex", "::std::shared_mutex",
      "::std::shared_timed_mutex", "::std::condition_variable",
      "::std::condition_variable_any", "::std::lock_guard",
      "::std::unique_lock", "::std::scoped_lock", "::std::shared_lock"));
  Finder->addMatcher(
      typeLoc(loc(qualType(hasUnqualifiedDesugaredType(
                  recordType(hasDeclaration(RawSyncDecl.bind("decl")))))))
          .bind("typeloc"),
      this);
}

void RawSyncCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *TL = Result.Nodes.getNodeAs<TypeLoc>("typeloc");
  const auto *Decl = Result.Nodes.getNodeAs<CXXRecordDecl>("decl");
  if (TL == nullptr || Decl == nullptr) return;
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc = SM.getExpansionLoc(TL->getBeginLoc());
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc)) return;

  const StringRef File = FileNameOf(SM, Loc);
  if (File.empty() || ExemptPathRegex.match(File)) return;
  if (!ReportedOffsets
           .insert({SM.getFileID(Loc).getHashValue(), SM.getFileOffset(Loc)})
           .second) {
    return;
  }
  if (HasAllowComment(SM, Loc, "raw-sync")) return;

  diag(Loc,
       "raw 'std::%0' bypasses the annotated wrappers in common/mutex.h; "
       "thread-safety analysis cannot see state it guards — use "
       "mips::Mutex / mips::SharedMutex / mips::CondVar / the *MutexLock "
       "guards instead")
      << Decl->getName();
}

}  // namespace clang::tidy::mips
