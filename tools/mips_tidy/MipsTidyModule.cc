// mips-tidy: the library's contracts as machine-checked clang-tidy rules.
//
// This module is loaded out-of-tree:
//
//   clang-tidy --load=build/tools/mips_tidy/libmips_tidy.so \
//              --checks='-*,mips-*' --list-checks
//
// Check family (rationale lives at the top of each check header, in the
// same every-rule-is-a-contract style as the repo's .clang-tidy):
//
//   mips-raw-sync              std sync primitives outside src/common/
//                              are invisible to thread-safety analysis
//                              (PR 2 unlocked-calibration bug class).
//   mips-heap-bound-strictness non-strict prunes against
//                              TopKHeap::MinScore() drop exact ties
//                              (PR 3 `<=`-bound bug class).
//   mips-float-accumulation    raw float reduction loops outside the
//                              kernel TUs fork the reduction order
//                              (PR 4 edge-tile ulp bug class).
//   mips-unchecked-status      a discarded Status/StatusOr loses the
//                              error channel entirely.
//
// The module is version-locked to the clang-tidy that loads it: an
// out-of-tree plugin resolves its symbols from the clang-tidy binary at
// dlopen time, so tools/mips_tidy/CMakeLists.txt refuses to configure
// against a mismatched LLVM and CI pins one major version for both the
// build and the run.

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "FloatAccumulationCheck.h"
#include "HeapBoundStrictnessCheck.h"
#include "RawSyncCheck.h"
#include "UncheckedStatusCheck.h"

namespace clang::tidy {
namespace mips {

class MipsTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<RawSyncCheck>("mips-raw-sync");
    Factories.registerCheck<HeapBoundStrictnessCheck>(
        "mips-heap-bound-strictness");
    Factories.registerCheck<FloatAccumulationCheck>(
        "mips-float-accumulation");
    Factories.registerCheck<UncheckedStatusCheck>("mips-unchecked-status");
  }
};

}  // namespace mips

// Register the module with the loading clang-tidy's global registry.
static ClangTidyModuleRegistry::Add<mips::MipsTidyModule> X(
    "mips-module", "Exactness, sync, and Status contracts of the MIPS library.");

// Anchor so the shared object exports at least one symbol of its own.
volatile int MipsTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
