// mips_cli: command-line exact MIPS over matrix files.
//
// Load user/item factor matrices (MIPSMAT1 binary or CSV), serve top-K
// through the MipsEngine facade, and write the results as CSV
// (user_id,rank,item_id,score).  The on-ramp for using this library
// without writing C++:
//
//   # generate a demo model first (or bring your own matrices)
//   ./build/examples/mips_cli --demo=r2-nomad-50
//       --users_out=/tmp/u.bin --items_out=/tmp/i.bin
//   # serve top-10 with the optimizer and inspect the decision
//   ./build/examples/mips_cli --users=/tmp/u.bin --items=/tmp/i.bin
//       --solver=optimus --k=10 --out=/tmp/topk.csv
//   # or pick one solver and tune it via its spec
//   ./build/examples/mips_cli --users=/tmp/u.bin --items=/tmp/i.bin
//       --solver=maximus:clusters=64,block_size=2048
//   # persist the catalog as a mmap-able segment, then restart from it
//   ./build/examples/mips_cli --users=/tmp/u.bin --items=/tmp/i.bin
//       --save_segment=/tmp/items.seg
//   ./build/examples/mips_cli --users=/tmp/u.bin
//       --load_segment=/tmp/items.seg --k=10 --out=/tmp/topk.csv
//
// --solver accepts "optimus" (OPTIMUS over the --candidates list) or any
// registry spec "name:key=value,...".  --list_solvers prints every
// registered solver with its schema; malformed specs fail with an error
// naming the offending key.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/segment.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/engine.h"
#include "data/datasets.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "serve/batching_engine.h"
#include "sparse/csr_matrix.h"
#include "shard/sharded_engine.h"
#include "solvers/registry.h"

using namespace mips;

namespace {

StatusOr<Matrix> LoadAny(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".csv") {
    return LoadMatrixCsv(path);
  }
  return LoadMatrixBinary(path);
}

Status WriteTopKCsv(const TopKResult& result, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  std::fprintf(f, "user_id,rank,item_id,score\n");
  for (Index q = 0; q < result.num_queries(); ++q) {
    for (Index e = 0; e < result.k(); ++e) {
      const TopKEntry& entry = result.Row(q)[e];
      if (entry.item < 0) continue;  // k exceeded the item count
      std::fprintf(f, "%d,%d,%d,%.17g\n", q, e + 1, entry.item, entry.score);
    }
  }
  return std::fclose(f) == 0 ? Status::OK()
                             : Status::IOError("close failed: " + path);
}

// Replays every loaded user row as a concurrent single-user request
// through the batching tier: `clients` threads each submit synchronous
// TopKNewUser calls, which the BatchingEngine coalesces into
// mini-batches behind their backs.  Answers land in result row q for
// user q, same layout TopKAll produces.
void ServeViaBatching(BatchingEngine* batcher, Matrix* users, Index k,
                      int clients, TopKResult* result) {
  const Index n = users->rows();
  *result = TopKResult(n, k);
  std::atomic<Index> next{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&]() {
      while (true) {
        const Index q = next.fetch_add(1, std::memory_order_relaxed);
        if (q >= n) break;
        batcher->TopKNewUser(users->Row(q), k, result->Row(q)).CheckOK();
      }
    });
  }
  for (auto& w : workers) w.join();
}

void PrintBatchingStats(const BatchingEngine& batcher) {
  const BatchingEngine::Stats s = batcher.stats();
  const double mean_rows =
      s.batches_dispatched > 0
          ? static_cast<double>(s.served) /
                static_cast<double>(s.batches_dispatched)
          : 0;
  const double mean_wait_us =
      s.served > 0 ? s.queue_wait_seconds / static_cast<double>(s.served) * 1e6
                   : 0;
  std::printf(
      "batching: %lld served in %lld batches (%.1f rows/batch mean); "
      "flushes: %lld size, %lld timeout, %lld forced; "
      "mean queue wait %.0f us; backend time %.3f s\n",
      static_cast<long long>(s.served),
      static_cast<long long>(s.batches_dispatched), mean_rows,
      static_cast<long long>(s.size_flushes),
      static_cast<long long>(s.timeout_flushes),
      static_cast<long long>(s.forced_flushes), mean_wait_us,
      s.backend_seconds);
}

// Splits the --candidates list on ';' (specs contain ',' internally).
std::vector<std::string> SplitCandidates(const std::string& csv) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t sep = csv.find(';', pos);
    if (sep == std::string::npos) sep = csv.size();
    const std::string spec = csv.substr(pos, sep - pos);
    if (!spec.empty()) specs.push_back(spec);
    pos = sep + 1;
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  std::string users_path;
  std::string items_path;
  std::string out_path = "/tmp/topk.csv";
  std::string solver_spec = "optimus";
  std::string candidates = "bmm;maximus;lemp";
  std::string demo;
  std::string users_out = "/tmp/mips_users.bin";
  std::string items_out = "/tmp/mips_items.bin";
  std::string save_segment;
  std::string load_segment;
  double density = 1.0;
  double dense_fraction = 0.0;
  int32_t k = 10;
  int32_t threads = 0;
  int32_t shards = 1;
  std::string shard_strategy = "contiguous";
  bool list_solvers = false;
  double demo_scale = 1.0;
  bool batching = false;
  int32_t batch_rows = 64;
  double batch_wait_ms = 2.0;
  std::string batch_policy = "block";
  int32_t batch_clients = 4;
  flags.String("users", &users_path, "user factor matrix (.bin or .csv)");
  flags.String("items", &items_path, "item factor matrix (.bin or .csv)");
  flags.String("out", &out_path, "output CSV path");
  flags.String("solver", &solver_spec,
               "\"optimus\" or a registry spec \"name:key=value,...\" "
               "(see --list_solvers)");
  flags.String("candidates", &candidates,
               "';'-separated candidate specs for --solver=optimus");
  flags.Int32("k", &k, "top-K size");
  flags.Int32("threads", &threads, "worker threads (0 = single-threaded)");
  flags.Int32("shards", &shards,
              "item shards (>1 serves via ShardedMipsEngine with one "
              "OPTIMUS decision per shard)");
  flags.String("shard_strategy", &shard_strategy,
               "item placement for --shards>1: contiguous or hash");
  flags.Bool("list_solvers", &list_solvers,
             "print every registered solver with its parameter schema");
  flags.Bool("batching", &batching,
             "serve each user row as a concurrent single-user request "
             "through the async batching tier (coalesced mini-batches, "
             "shape-keyed OPTIMUS decisions) instead of one TopKAll call");
  flags.Int32("batch_rows", &batch_rows,
              "--batching: max coalesced rows per dispatched batch");
  flags.Double("batch_wait_ms", &batch_wait_ms,
               "--batching: bounded-delay flush timeout");
  flags.String("batch_policy", &batch_policy,
               "--batching overload policy: block, shed, or drop_expired");
  flags.Int32("batch_clients", &batch_clients,
              "--batching: concurrent submitter threads");
  flags.Double("density", &density,
               "sparsify the loaded item matrix to this per-row density "
               "before serving (1 = leave dense); exposes the sparse/"
               "hybrid solvers' regime, answers stay exact");
  flags.Double("dense_fraction", &dense_fraction,
               "--density<1: fraction of item rows kept fully dense "
               "(mixed head/tail catalogs for the hybrid solver)");
  flags.String("demo", &demo,
               "generate a preset model instead of serving (preset id, "
               "e.g. netflix-nomad-50)");
  flags.Double("demo_scale", &demo_scale, "scale multiplier for --demo");
  flags.String("users_out", &users_out, "--demo: where to write users");
  flags.String("items_out", &items_out, "--demo: where to write items");
  flags.String("save_segment", &save_segment,
               "persist the item catalog (post --density sparsification) "
               "as a mmap-able catalog segment at this path "
               "(catalog/segment.h: versioned header, checksummed, "
               "crash-safe rename install)");
  flags.String("load_segment", &load_segment,
               "serve items from a catalog segment instead of --items; "
               "the engine opens zero-copy over the mapped pages "
               "(incompatible with --density<1: the mapping is "
               "read-only)");
  flags.Parse(argc, argv).CheckOK();

  // --- Schema listing mode. ---
  if (list_solvers) {
    std::printf("%s", SolverHelpText().c_str());
    return 0;
  }

  // --- Demo-generation mode. ---
  if (!demo.empty()) {
    auto preset = FindModelPreset(demo);
    if (!preset.ok()) {
      std::fprintf(stderr, "%s\navailable presets:\n",
                   preset.status().ToString().c_str());
      for (const auto& p : AllModelPresets()) {
        std::fprintf(stderr, "  %s\n", p.id.c_str());
      }
      return 2;
    }
    auto model = MakeModel(*preset, demo_scale);
    model.status().CheckOK();
    SaveMatrixBinary(model->users, users_out).CheckOK();
    SaveMatrixBinary(model->items, items_out).CheckOK();
    std::printf("wrote %s (%d x %d) and %s (%d x %d)\n", users_out.c_str(),
                model->num_users(), model->num_factors(), items_out.c_str(),
                model->num_items(), model->num_factors());
    return 0;
  }

  // --- Serving mode. ---
  if (users_path.empty() || (items_path.empty() && load_segment.empty())) {
    std::fprintf(stderr,
                 "need --users and --items or --load_segment (or --demo)\n%s",
                 flags.Usage().c_str());
    return 2;
  }
  auto users = LoadAny(users_path);
  users.status().CheckOK();

  // Items come from a matrix file (mutable, so --density can sparsify)
  // or from a mapped catalog segment (zero-copy, read-only).
  Matrix items_owned;
  std::optional<CatalogSegment> segment;
  ConstRowBlock item_view;
  if (!load_segment.empty()) {
    if (density < 1.0) {
      std::fprintf(stderr,
                   "--density<1 rewrites item rows, but a mapped segment "
                   "is read-only; load via --items instead\n");
      return 2;
    }
    auto opened = CatalogSegment::Open(load_segment);
    opened.status().CheckOK();
    segment.emplace(std::move(*opened));
    item_view = segment->items();
    std::printf("mapped segment %s: %d items, f=%d\n", load_segment.c_str(),
                item_view.rows(), item_view.cols());
  } else {
    auto items = LoadAny(items_path);
    items.status().CheckOK();
    items_owned = std::move(*items);
    if (density < 1.0) {
      SparsifyRows(&items_owned, static_cast<Real>(density),
                   static_cast<Real>(dense_fraction), /*seed=*/1)
          .CheckOK();
      const CsrMatrix::Stats s =
          CsrMatrix::FromDense(ConstRowBlock(items_owned)).ComputeStats();
      std::printf(
          "sparsified items: density %.4f (%lld nnz; row nnz min/mean/max "
          "%d/%.1f/%d)\n",
          s.density, static_cast<long long>(s.nnz), s.min_row_nnz,
          s.mean_row_nnz, s.max_row_nnz);
    }
    item_view = ConstRowBlock(items_owned);
  }
  if (users->cols() != item_view.cols()) {
    std::fprintf(stderr, "factor dimensions differ: %d vs %d\n",
                 users->cols(), item_view.cols());
    return 2;
  }
  if (!save_segment.empty()) {
    CatalogSegment::Write(item_view, save_segment).CheckOK();
    std::printf("wrote segment %s (%d items, f=%d)\n", save_segment.c_str(),
                item_view.rows(), item_view.cols());
  }
  std::printf("model: %d users x %d items, f=%d; k=%d\n", users->rows(),
              item_view.rows(), users->cols(), k);

  EngineOptions options;
  options.k = k;
  options.threads = threads;
  // The batching tier serves realized mini-batch shapes, so let the
  // optimizer key its decisions on them.
  options.redecide_on_new_k = batching;
  options.batch_shape_decisions = batching;
  const bool use_optimus = solver_spec == "optimus";
  options.solvers =
      use_optimus ? SplitCandidates(candidates)
                  : std::vector<std::string>{solver_spec};

  BatchingOptions batching_options;
  batching_options.max_batch_rows = batch_rows;
  batching_options.max_wait_ms = batch_wait_ms;
  batching_options.max_queue_rows =
      std::max<Index>(batching_options.max_queue_rows, batch_rows);
  if (batching) {
    auto policy = ParseOverloadPolicy(batch_policy);
    policy.status().CheckOK();
    batching_options.overload_policy = *policy;
  }

  WallTimer timer;
  TopKResult result;
  double elapsed = 0;
  if (shards > 1) {
    // Sharded serving: one engine (and one OPTIMUS decision) per item
    // shard, exact scatter/gather answers.
    auto strategy = ParseShardingStrategy(shard_strategy);
    strategy.status().CheckOK();
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.sharding = *strategy;
    sharded_options.engine = options;
    sharded_options.threads = threads;
    auto engine = ShardedMipsEngine::Open(ConstRowBlock(*users), item_view,
                                          sharded_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 2;
    }
    for (int s = 0; s < (*engine)->num_shards(); ++s) {
      const MipsEngine* shard = (*engine)->shard_engine(s);
      if (shard == nullptr) {
        std::printf("shard %d: empty\n", s);
        continue;
      }
      std::printf("shard %d: %d items, %s %s\n", s, shard->num_items(),
                  use_optimus ? "OPTIMUS chose" : "serving with",
                  (*engine)->shard_strategy(s).c_str());
    }
    if (batching) {
      auto batcher = BatchingEngine::Create(engine->get(), batching_options);
      batcher.status().CheckOK();
      ServeViaBatching(batcher->get(), &*users, k, batch_clients, &result);
      elapsed = timer.Seconds();
      PrintBatchingStats(**batcher);
    } else {
      (*engine)->TopKAll(k, &result).CheckOK();
      elapsed = timer.Seconds();
    }
  } else {
    auto engine =
        MipsEngine::Open(ConstRowBlock(*users), item_view, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 2;
    }
    if (use_optimus) {
      const OptimusReport& report = (*engine)->decision_report();
      std::printf("OPTIMUS chose %s (representation: %s, gemm kernel: %s); "
                  "estimates:",
                  report.chosen.c_str(), report.representation.c_str(),
                  report.gemm_kernel.c_str());
      for (const auto& est : report.estimates) {
        std::printf(" %s=%.3fs", est.name.c_str(), est.est_total_seconds);
      }
      std::printf("\n");
    }
    if (batching) {
      auto batcher = BatchingEngine::Create(engine->get(), batching_options);
      batcher.status().CheckOK();
      ServeViaBatching(batcher->get(), &*users, k, batch_clients, &result);
      elapsed = timer.Seconds();
      PrintBatchingStats(**batcher);
    } else {
      (*engine)->TopKAll(k, &result).CheckOK();
      elapsed = timer.Seconds();
    }
  }
  WriteTopKCsv(result, out_path).CheckOK();
  std::printf("served %d users in %.3f s (%.1f us/user); results -> %s\n",
              result.num_queries(), elapsed,
              elapsed / result.num_queries() * 1e6, out_path.c_str());
  return 0;
}
