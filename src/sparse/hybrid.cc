#include "sparse/hybrid.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/timer.h"
#include "linalg/gemm.h"
#include "solvers/registry.h"
#include "topk/merge.h"
#include "topk/topk_block.h"

namespace mips {
namespace {

/// Score-block byte budget for the dense partition's GEMM batches (same
/// default regime as bmm's auto batch sizing).
constexpr std::size_t kScoreBlockBytes = std::size_t{16} << 20;

}  // namespace

Status HybridSolver::Prepare(const ConstRowBlock& users,
                             const ConstRowBlock& items) {
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  WallTimer timer;
  users_ = users;
  prepared_users_ = users.rows();

  const Index f = items.cols();
  dense_ids_.clear();
  sparse_ids_.clear();
  for (Index r = 0; r < items.rows(); ++r) {
    const Real* row = items.Row(r);
    Index nnz = 0;
    for (Index c = 0; c < f; ++c) {
      if (row[c] != Real{0}) ++nnz;
    }
    const Real density =
        f > 0 ? static_cast<Real>(nnz) / static_cast<Real>(f) : Real{0};
    if (density >= density_threshold_) {
      dense_ids_.push_back(r);
    } else {
      sparse_ids_.push_back(r);
    }
  }

  dense_items_ = GatherRows(items, dense_ids_);
  sparse_csr_ = CsrMatrix::FromDenseRows(items, sparse_ids_);
  sparse_index_ = InvertedIndex::Build(sparse_csr_, order_);

  const std::size_t row_bytes =
      std::max<std::size_t>(1, dense_ids_.size() * sizeof(Real));
  batch_rows_ = static_cast<Index>(
      std::clamp<std::size_t>(kScoreBlockBytes / row_bytes, 128, 8192));
  stage_timer_.Add("construction", timer.Seconds());
  return Status::OK();
}

Status HybridSolver::TopKForUsers(Index k, std::span<const Index> user_ids,
                                  TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  const Index q = static_cast<Index>(user_ids.size());
  *out = TopKResult(q, k);
  const Index f = users_.cols();
  const Index nd = dense_items_.rows();
  const Index batch = batch_rows_;

  ParallelFor(pool_, q, [&](int64_t begin, int64_t end, int /*chunk*/) {
    TopKHeap heap(k);
    SparseQueryScratch scratch;
    std::vector<TopKEntry> dense_row(static_cast<std::size_t>(k));
    std::vector<TopKEntry> sparse_row(static_cast<std::size_t>(k));
    Matrix scores(
        nd > 0 ? std::min<Index>(batch, static_cast<Index>(end - begin)) : 0,
        nd);
    for (int64_t b = begin; b < end; b += batch) {
      const Index m = static_cast<Index>(std::min<int64_t>(batch, end - b));
      if (nd > 0) {
        const Matrix block = GatherRows(
            users_, user_ids.subspan(static_cast<std::size_t>(b),
                                     static_cast<std::size_t>(m)));
        GemmNT(block.data(), m, dense_items_.data(), nd, f, /*alpha=*/1,
               /*beta=*/0, scores.data(), scores.cols());
      }
      for (Index r = 0; r < m; ++r) {
        const Index row = static_cast<Index>(b) + r;
        const Real* u = users_.Row(user_ids[static_cast<std::size_t>(row)]);
        if (nd > 0 && sparse_csr_.rows() > 0) {
          TopKFromRow(scores.Row(r), nd, k, /*item_offset=*/0,
                      dense_ids_.data(), dense_row.data());
          SparseTopKQuery(sparse_csr_, sparse_index_, u, k, sparse_ids_,
                          &scratch, &heap, sparse_row.data(),
                          /*stats=*/nullptr);
          const TopKEntry* rows[] = {dense_row.data(), sparse_row.data()};
          MergeTopKRows(rows, k, k, out->Row(row));
        } else if (nd > 0) {
          TopKFromRow(scores.Row(r), nd, k, /*item_offset=*/0,
                      dense_ids_.data(), out->Row(row));
        } else {
          SparseTopKQuery(sparse_csr_, sparse_index_, u, k, sparse_ids_,
                          &scratch, &heap, out->Row(row),
                          /*stats=*/nullptr);
        }
      }
    }
  });
  return Status::OK();
}

namespace {

const SolverRegistrar kHybridRegistrar(
    SolverSchema("hybrid",
                 "density-split dense GEMM + sparse inverted-index "
                 "execution with an exact top-K merge")
        .Real("density_threshold", 0.25,
              "items with row density >= this go to the dense GEMM "
              "partition; the rest to the CSR inverted index (0 = all "
              "dense, > 1 = all sparse)")
        .String("postings", "abs",
                "posting-list order of the sparse partition: \"abs\" or "
                "\"id\" (see sindi)"),
    [](const ParamMap& params) -> StatusOr<std::unique_ptr<MipsSolver>> {
      const double threshold = params.GetReal("density_threshold");
      if (!(threshold >= 0)) {  // rejects negatives and NaN
        return Status::InvalidArgument(
            "hybrid: density_threshold must be >= 0");
      }
      const std::string& postings = params.GetString("postings");
      PostingOrder order;
      if (postings == "abs") {
        order = PostingOrder::kAbsDescending;
      } else if (postings == "id") {
        order = PostingOrder::kItemAscending;
      } else {
        return Status::InvalidArgument(
            "hybrid: postings must be \"abs\" or \"id\", got \"" + postings +
            "\"");
      }
      return std::unique_ptr<MipsSolver>(
          new HybridSolver(static_cast<Real>(threshold), order));
    });

}  // namespace

}  // namespace mips
