// The Koenigstein et al. angular upper bound (paper Equations 2 and 3).
//
// For a user u assigned to centroid c and an item i, with theta_xy the
// angle between vectors x and y, the scale-free rating r*_ui = u.i / ||u||
// obeys (Eq. 2):
//
//     r*_ui <= ||i|| * cos(theta_ic - theta_uc)   if theta_uc < theta_ic
//     r*_ui <= ||i||                              otherwise
//
// MAXIMUS coarsens theta_uc to the *cluster-wide* maximum theta_b =
// max_{u in C} theta_uc (Eq. 3), so one sorted item list per cluster bounds
// every member's ratings.  All angles are in [0, pi].

#ifndef MIPS_CORE_CBOUND_H_
#define MIPS_CORE_CBOUND_H_

#include <algorithm>
#include <cmath>

#include "common/types.h"

namespace mips {

/// Equation 3: upper bound on the scale-free rating of an item with norm
/// `item_norm` at angle `theta_ic` from the centroid, for any user within
/// angle `theta_b` of the centroid.
inline Real CBound(Real item_norm, Real theta_ic, Real theta_b) {
  return theta_b < theta_ic ? item_norm * std::cos(theta_ic - theta_b)
                            : item_norm;
}

/// Angle in [0, pi] whose cosine is `cosine` (input clamped to [-1, 1] so
/// floating-point drift never yields NaN).
inline Real AngleFromCosine(Real cosine) {
  return std::acos(std::clamp(cosine, Real{-1}, Real{1}));
}

}  // namespace mips

#endif  // MIPS_CORE_CBOUND_H_
