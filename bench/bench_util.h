// Shared infrastructure for the paper-reproduction bench binaries: common
// flags (--scale, --k, --seed, ...), preset model instantiation, solver
// timing, and aligned table printing that mirrors the paper's tables.

#ifndef MIPS_BENCH_BENCH_UTIL_H_
#define MIPS_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "solvers/solver.h"

namespace mips {
namespace bench {

/// Flags every bench binary accepts.
struct BenchConfig {
  /// Multiplier on each preset's default scale (1.0 = bench default;
  /// 1/default_scale = full paper dimensions).
  double scale = 1.0;
  /// Comma-separated K values (paper: 1,5,10,50).
  std::string ks = "1,5,10,50";
  /// Restrict to presets whose id contains this substring (empty = all).
  std::string models;
  uint64_t seed = 0;  // 0 = keep each preset's own seed
  int32_t threads = 1;
};

/// Registers the common flags on `flags` and parses argv.  Exits on
/// --help; aborts on malformed flags (bench binaries are leaf tools).
void ParseBenchFlags(int argc, char** argv, FlagSet* flags,
                     BenchConfig* config);

/// Parses "1,5,10,50" into {1,5,10,50}.
std::vector<Index> ParseKList(const std::string& csv);

/// Instantiates a preset at config.scale (applying the seed override).
MFModel MakeBenchModel(const ModelPreset& preset, const BenchConfig& config);

/// Presets selected by config.models (substring match on id).
std::vector<ModelPreset> SelectPresets(const BenchConfig& config);

/// Creates a solver from a registry spec ("name" = paper defaults,
/// "name:key=value,..." overrides); aborts on malformed specs — bench
/// binaries are leaf tools.
std::unique_ptr<MipsSolver> MakeSolver(const std::string& spec);

/// End-to-end wall time: Prepare + TopKAll.  Construction is included,
/// matching the paper's end-to-end measurements ("which includes index
/// construction time").
struct EndToEndTiming {
  double prepare_seconds = 0;
  double query_seconds = 0;
  double total() const { return prepare_seconds + query_seconds; }
};
EndToEndTiming TimeEndToEnd(MipsSolver* solver, const MFModel& model,
                            Index k);

/// Markdown-ish aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Prints header + separator + rows with aligned columns.
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Compact duration formatting ("12.3 ms", "4.56 s").
std::string FormatSeconds(double seconds);
/// Fixed-precision helpers.
std::string Fmt(double value, int precision = 3);
std::string FmtInt(int64_t value);

}  // namespace bench
}  // namespace mips

#endif  // MIPS_BENCH_BENCH_UTIL_H_
