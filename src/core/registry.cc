#include "core/registry.h"

#include "core/maximus.h"
#include "solvers/bmm.h"
#include "solvers/fexipro/fexipro.h"
#include "solvers/lemp/lemp.h"
#include "solvers/naive.h"

namespace mips {

StatusOr<std::unique_ptr<MipsSolver>> CreateSolver(const std::string& name) {
  if (name == "naive") {
    return std::unique_ptr<MipsSolver>(new NaiveSolver());
  }
  if (name == "bmm") {
    return std::unique_ptr<MipsSolver>(new BmmSolver());
  }
  if (name == "lemp") {
    return std::unique_ptr<MipsSolver>(new LempSolver());
  }
  if (name == "fexipro-si") {
    return std::unique_ptr<MipsSolver>(new FexiproSolver());
  }
  if (name == "fexipro-sir") {
    FexiproOptions options;
    options.use_reduction = true;
    return std::unique_ptr<MipsSolver>(new FexiproSolver(options));
  }
  if (name == "maximus") {
    return std::unique_ptr<MipsSolver>(new MaximusSolver());
  }
  return Status::NotFound("unknown solver: " + name);
}

std::vector<std::string> AvailableSolvers() {
  return {"naive", "bmm", "lemp", "fexipro-si", "fexipro-sir", "maximus"};
}

}  // namespace mips
