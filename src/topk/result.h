// Result container for batch top-K queries.
//
// Every solver produces a TopKResult: for each of the Q query users, K
// (item, score) entries sorted by descending score.  Storage is one flat
// array so batch results for millions of users stay cache- and
// allocation-friendly.

#ifndef MIPS_TOPK_RESULT_H_
#define MIPS_TOPK_RESULT_H_

#include <cassert>
#include <vector>

#include "common/types.h"

namespace mips {

/// One retrieved item with its inner-product score.
struct TopKEntry {
  Index item = -1;
  Real score = 0;

  bool operator==(const TopKEntry& other) const = default;
};

/// The one total order every top-K producer in this library agrees on:
/// higher score first, lower item id on equal scores.  TopKHeap eviction,
/// row extraction, and the shard k-way merge all use it, so a result row
/// is deterministic regardless of item visit order — and a sharded
/// scatter/gather merge reproduces the unsharded row bit-for-bit.
inline bool BetterEntry(const TopKEntry& a, const TopKEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// Batch top-K results: `num_queries` rows of exactly `k` entries each,
/// each row sorted by (score desc, item asc).
class TopKResult {
 public:
  TopKResult() = default;
  TopKResult(Index num_queries, Index k)
      : num_queries_(num_queries),
        k_(k),
        entries_(static_cast<std::size_t>(num_queries) * k) {}

  Index num_queries() const { return num_queries_; }
  Index k() const { return k_; }

  /// Mutable pointer to the K entries of query q.
  TopKEntry* Row(Index q) {
    assert(q >= 0 && q < num_queries_);
    return entries_.data() + static_cast<std::size_t>(q) * k_;
  }
  const TopKEntry* Row(Index q) const {
    assert(q >= 0 && q < num_queries_);
    return entries_.data() + static_cast<std::size_t>(q) * k_;
  }

  /// Copies the K entries of query `src_q` in `src` into query `dst_q`.
  void CopyRowFrom(const TopKResult& src, Index src_q, Index dst_q) {
    assert(src.k() == k_);
    const TopKEntry* in = src.Row(src_q);
    TopKEntry* out = Row(dst_q);
    for (Index i = 0; i < k_; ++i) out[i] = in[i];
  }

 private:
  Index num_queries_ = 0;
  Index k_ = 0;
  std::vector<TopKEntry> entries_;
};

}  // namespace mips

#endif  // MIPS_TOPK_RESULT_H_
