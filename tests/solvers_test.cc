// Tests for the solver interface and the two brute-force solvers: naive
// (reference semantics) and BMM (must agree exactly with naive), including
// a parameterized parity sweep, subset queries, threading, and padding.

#include <gtest/gtest.h>

#include <tuple>

#include "common/thread_pool.h"
#include "solvers/bmm.h"
#include "solvers/naive.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::ExpectValidTopK;
using ::mips::testing::MakeTestModel;

TEST(GatherRowsTest, GathersInOrder) {
  const Matrix m = testing::RandomMatrix(6, 3, 1);
  const std::vector<Index> ids = {4, 0, 4};
  const Matrix g = GatherRows(ConstRowBlock(m), ids);
  ASSERT_EQ(g.rows(), 3);
  for (Index c = 0; c < 3; ++c) {
    EXPECT_EQ(g(0, c), m(4, c));
    EXPECT_EQ(g(1, c), m(0, c));
    EXPECT_EQ(g(2, c), m(4, c));
  }
}

TEST(NaiveSolverTest, ValidatesInput) {
  NaiveSolver solver;
  const MFModel model = MakeTestModel(10, 10, 4);
  Matrix wrong(10, 5);
  EXPECT_FALSE(solver.Prepare(ConstRowBlock(model.users),
                              ConstRowBlock(wrong)).ok());
  ASSERT_TRUE(solver.Prepare(ConstRowBlock(model.users),
                             ConstRowBlock(model.items)).ok());
  TopKResult out;
  EXPECT_FALSE(solver.TopKForUsers(0, {}, &out).ok());  // k must be > 0
}

TEST(NaiveSolverTest, ResultsAreInternallyConsistent) {
  const MFModel model = MakeTestModel(40, 60, 8);
  NaiveSolver solver;
  ASSERT_TRUE(solver.Prepare(ConstRowBlock(model.users),
                             ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(solver.TopKAll(5, &out).ok());
  ExpectValidTopK(out, AllUsers(40), model);
}

TEST(NaiveSolverTest, TopOneIsArgmax) {
  const MFModel model = MakeTestModel(20, 30, 6);
  NaiveSolver solver;
  ASSERT_TRUE(solver.Prepare(ConstRowBlock(model.users),
                             ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(solver.TopKAll(1, &out).ok());
  for (Index u = 0; u < 20; ++u) {
    Real best = -1e300;
    Index best_item = -1;
    for (Index i = 0; i < 30; ++i) {
      const Real s = Dot(model.users.Row(u), model.items.Row(i), 6);
      if (s > best) {
        best = s;
        best_item = i;
      }
    }
    EXPECT_EQ(out.Row(u)[0].item, best_item);
    EXPECT_NEAR(out.Row(u)[0].score, best, 1e-10);
  }
}

class BmmParityTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(BmmParityTest, MatchesNaive) {
  const auto [users, items, f, k] = GetParam();
  const MFModel model = MakeTestModel(users, items, f,
                                      /*seed=*/static_cast<uint64_t>(
                                          users * 31 + items * 7 + f + k));
  NaiveSolver naive;
  BmmSolver bmm;
  ASSERT_TRUE(naive.Prepare(ConstRowBlock(model.users),
                            ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult expected;
  TopKResult got;
  ASSERT_TRUE(naive.TopKAll(k, &expected).ok());
  ASSERT_TRUE(bmm.TopKAll(k, &got).ok());
  ExpectSameTopKScores(got, expected);
  ExpectValidTopK(got, AllUsers(users), model);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BmmParityTest,
    ::testing::Values(std::make_tuple(1, 1, 1, 1),
                      std::make_tuple(3, 7, 2, 1),
                      std::make_tuple(50, 20, 10, 5),
                      std::make_tuple(64, 128, 16, 10),
                      std::make_tuple(200, 333, 25, 50),
                      std::make_tuple(17, 1000, 50, 10),
                      std::make_tuple(100, 5, 8, 5)));

TEST(BmmSolverTest, KLargerThanItemsPads) {
  const MFModel model = MakeTestModel(10, 3, 4);
  BmmSolver bmm;
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(bmm.TopKAll(5, &out).ok());
  for (Index u = 0; u < 10; ++u) {
    EXPECT_GE(out.Row(u)[0].item, 0);
    EXPECT_GE(out.Row(u)[2].item, 0);
    EXPECT_EQ(out.Row(u)[3].item, -1);
    EXPECT_EQ(out.Row(u)[4].item, -1);
  }
}

TEST(BmmSolverTest, SubsetQueries) {
  const MFModel model = MakeTestModel(60, 40, 8);
  BmmSolver bmm;
  NaiveSolver naive;
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(naive.Prepare(ConstRowBlock(model.users),
                            ConstRowBlock(model.items)).ok());
  const std::vector<Index> subset = {3, 17, 17, 59, 0};
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(bmm.TopKForUsers(4, subset, &got).ok());
  ASSERT_TRUE(naive.TopKForUsers(4, subset, &expected).ok());
  ExpectSameTopKScores(got, expected);
  ExpectValidTopK(got, subset, model);
}

TEST(BmmSolverTest, SmallBatchSizesStillExact) {
  const MFModel model = MakeTestModel(70, 25, 6);
  BmmOptions options;
  options.batch_rows = 7;  // forces many partial batches
  BmmSolver bmm(options);
  NaiveSolver naive;
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(naive.Prepare(ConstRowBlock(model.users),
                            ConstRowBlock(model.items)).ok());
  EXPECT_EQ(bmm.batch_rows(), 7);
  TopKResult got;
  TopKResult expected;
  ASSERT_TRUE(bmm.TopKAll(3, &got).ok());
  ASSERT_TRUE(naive.TopKAll(3, &expected).ok());
  ExpectSameTopKScores(got, expected);
}

TEST(BmmSolverTest, AutoBatchRespectsMemoryBudget) {
  const MFModel model = MakeTestModel(10, 1000, 4);
  BmmOptions options;
  options.score_block_bytes = 64 * 1024;  // 64 KB / (1000*8B) = 8 rows
  BmmSolver bmm(options);
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  EXPECT_EQ(bmm.batch_rows(), 128);  // clamped to the minimum of 128
}

TEST(BmmSolverTest, ThreadedMatchesSingleThreaded) {
  const MFModel model = MakeTestModel(128, 90, 12);
  BmmSolver single;
  BmmSolver threaded;
  ThreadPool pool(4);
  threaded.set_thread_pool(&pool);
  ASSERT_TRUE(single.Prepare(ConstRowBlock(model.users),
                             ConstRowBlock(model.items)).ok());
  ASSERT_TRUE(threaded.Prepare(ConstRowBlock(model.users),
                               ConstRowBlock(model.items)).ok());
  TopKResult a;
  TopKResult b;
  ASSERT_TRUE(single.TopKAll(7, &a).ok());
  ASSERT_TRUE(threaded.TopKAll(7, &b).ok());
  ExpectSameTopKScores(a, b, 1e-12);
  // Identical accumulation per user means identical item choices too.
  for (Index u = 0; u < 128; ++u) {
    for (Index e = 0; e < 7; ++e) {
      EXPECT_EQ(a.Row(u)[e].item, b.Row(u)[e].item);
    }
  }
}

TEST(BmmSolverTest, QueryBeforePrepareFails) {
  BmmSolver bmm;
  TopKResult out;
  EXPECT_EQ(bmm.TopKForUsers(1, {}, &out).code(),
            StatusCode::kFailedPrecondition);
}

TEST(BmmSolverTest, EmptyQuerySet) {
  const MFModel model = MakeTestModel(10, 10, 4);
  BmmSolver bmm;
  ASSERT_TRUE(bmm.Prepare(ConstRowBlock(model.users),
                          ConstRowBlock(model.items)).ok());
  TopKResult out;
  ASSERT_TRUE(bmm.TopKForUsers(3, {}, &out).ok());
  EXPECT_EQ(out.num_queries(), 0);
}

TEST(SolverInterfaceTest, NamesAndBatchingFlags) {
  NaiveSolver naive;
  BmmSolver bmm;
  EXPECT_EQ(naive.name(), "naive");
  EXPECT_EQ(bmm.name(), "bmm");
  EXPECT_FALSE(naive.batches_users());
  EXPECT_TRUE(bmm.batches_users());
}

}  // namespace
}  // namespace mips
