// Unit tests for src/stats: Welford accumulation, the Student-t CDF
// against known quantiles, the incremental t-test, and OPTIMUS's sampling
// helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "stats/sampling.h"
#include "stats/student_t.h"
#include "stats/ttest.h"
#include "stats/welford.h"

namespace mips {
namespace {

// -------------------------------------------------------------- Welford

TEST(WelfordTest, EmptyAccumulator) {
  Welford w;
  EXPECT_EQ(w.count(), 0);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.stderr_mean(), 0.0);
}

TEST(WelfordTest, MatchesTwoPassFormulas) {
  Rng rng(5);
  std::vector<double> xs;
  Welford w;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    xs.push_back(x);
    w.Add(x);
  }
  double mean = 0;
  // mips-tidy: allow(float-accumulation): naive two-pass reference the
  // Welford accumulator is differentially tested against.
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  // mips-tidy: allow(float-accumulation): naive two-pass reference.
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_NEAR(w.mean(), mean, 1e-10);
  EXPECT_NEAR(w.variance(), var, 1e-9);
  EXPECT_NEAR(w.stderr_mean(), std::sqrt(var / 1000.0), 1e-10);
}

TEST(WelfordTest, SingleObservation) {
  Welford w;
  w.Add(4.2);
  EXPECT_EQ(w.count(), 1);
  EXPECT_DOUBLE_EQ(w.mean(), 4.2);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(WelfordTest, ResetClears) {
  Welford w;
  w.Add(1);
  w.Add(2);
  w.Reset();
  EXPECT_EQ(w.count(), 0);
  EXPECT_EQ(w.mean(), 0.0);
}

TEST(WelfordTest, ConstantSequenceHasZeroVariance) {
  Welford w;
  for (int i = 0; i < 50; ++i) w.Add(7.0);
  EXPECT_DOUBLE_EQ(w.mean(), 7.0);
  EXPECT_NEAR(w.variance(), 0.0, 1e-18);
}

// ------------------------------------------------------------ Student-t

TEST(StudentTTest, CdfSymmetry) {
  for (double df : {1.0, 5.0, 30.0}) {
    for (double t : {0.5, 1.0, 2.5}) {
      EXPECT_NEAR(StudentTCdf(t, df) + StudentTCdf(-t, df), 1.0, 1e-12);
    }
    EXPECT_NEAR(StudentTCdf(0.0, df), 0.5, 1e-12);
  }
}

TEST(StudentTTest, KnownCriticalValues) {
  // Standard t-table: P(T <= t_{0.975, df}) = 0.975.
  EXPECT_NEAR(StudentTCdf(12.706, 1), 0.975, 1e-3);
  EXPECT_NEAR(StudentTCdf(2.571, 5), 0.975, 1e-3);
  EXPECT_NEAR(StudentTCdf(2.228, 10), 0.975, 1e-3);
  EXPECT_NEAR(StudentTCdf(2.042, 30), 0.975, 1e-3);
  // And the 95th percentile.
  EXPECT_NEAR(StudentTCdf(1.812, 10), 0.95, 1e-3);
}

TEST(StudentTTest, ApproachesNormalForLargeDf) {
  // t(1000) ~ N(0,1): P(T <= 1.96) ~ 0.975.
  EXPECT_NEAR(StudentTCdf(1.96, 1000), 0.975, 2e-3);
}

TEST(StudentTTest, TwoSidedPValues) {
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228, 10), 0.05, 2e-3);
  EXPECT_NEAR(StudentTTwoSidedPValue(-2.228, 10), 0.05, 2e-3);
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10), 1.0, 1e-12);
  EXPECT_EQ(StudentTTwoSidedPValue(
                std::numeric_limits<double>::infinity(), 10),
            0.0);
}

TEST(StudentTTest, IncompleteBetaEdges) {
  EXPECT_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
  // I_x(1,1) = x (uniform distribution).
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.37), 0.37, 1e-10);
  // I_x(2,1) = x^2.
  EXPECT_NEAR(RegularizedIncompleteBeta(2, 1, 0.5), 0.25, 1e-10);
}

// --------------------------------------------------------------- t-test

TEST(IncrementalTTestTest, RequiresMinimumObservations) {
  IncrementalTTest test(0.0, 0.05, /*min_observations=*/8);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(test.Add(10.0 + i * 0.01).significant);
  }
  // The 8th observation far from mu0 with tiny variance is significant.
  EXPECT_TRUE(test.Add(10.0).significant);
}

TEST(IncrementalTTestTest, NoRejectionWhenMeanMatches) {
  Rng rng(21);
  IncrementalTTest test(5.0, 0.01);
  bool rejected = false;
  for (int i = 0; i < 200; ++i) {
    if (test.Add(rng.Normal(5.0, 1.0)).significant) rejected = true;
  }
  EXPECT_FALSE(rejected);
}

TEST(IncrementalTTestTest, RejectsClearDifferenceQuickly) {
  Rng rng(22);
  IncrementalTTest test(0.0, 0.05);
  int needed = 0;
  for (int i = 0; i < 1000; ++i) {
    ++needed;
    if (test.Add(rng.Normal(10.0, 0.5)).significant) break;
  }
  EXPECT_LE(needed, 10);  // should trigger right at min_observations
}

TEST(IncrementalTTestTest, ZeroVarianceHandling) {
  IncrementalTTest same(3.0, 0.05, 2);
  same.Add(3.0);
  const TTestResult r1 = same.Add(3.0);
  EXPECT_FALSE(r1.significant);
  EXPECT_EQ(r1.p_value, 1.0);

  IncrementalTTest diff(0.0, 0.05, 2);
  diff.Add(3.0);
  const TTestResult r2 = diff.Add(3.0);
  EXPECT_TRUE(r2.significant);
  EXPECT_EQ(r2.p_value, 0.0);
}

TEST(IncrementalTTestTest, TStatisticSign) {
  IncrementalTTest test(5.0, 0.05, 2);
  test.Add(1.0);
  test.Add(2.0);
  EXPECT_LT(test.Test().t_statistic, 0);  // sample mean below mu0
}

// ------------------------------------------------------------- Sampling

TEST(SamplingTest, DistinctSortedInRange) {
  Rng rng(31);
  const auto sample = SampleWithoutReplacement(1000, 50, &rng);
  ASSERT_EQ(sample.size(), 50u);
  std::unordered_set<Index> seen;
  Index prev = -1;
  for (Index id : sample) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 1000);
    EXPECT_GT(id, prev);  // sorted ascending, hence distinct
    prev = id;
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(SamplingTest, CountAtLeastNReturnsAll) {
  Rng rng(32);
  const auto sample = SampleWithoutReplacement(10, 25, &rng);
  ASSERT_EQ(sample.size(), 10u);
  for (Index i = 0; i < 10; ++i) {
    EXPECT_EQ(sample[static_cast<std::size_t>(i)], i);
  }
}

TEST(SamplingTest, EmptyCases) {
  Rng rng(33);
  EXPECT_TRUE(SampleWithoutReplacement(0, 5, &rng).empty());
  EXPECT_TRUE(SampleWithoutReplacement(5, 0, &rng).empty());
}

TEST(SamplingTest, DeterministicGivenSeed) {
  Rng a(34);
  Rng b(34);
  EXPECT_EQ(SampleWithoutReplacement(500, 20, &a),
            SampleWithoutReplacement(500, 20, &b));
}

TEST(SamplingTest, RoughlyUniform) {
  // Each of 100 ids should appear in a 10% sample about 100 times over
  // 1000 trials.
  std::vector<int> counts(100, 0);
  Rng rng(35);
  for (int trial = 0; trial < 1000; ++trial) {
    for (Index id : SampleWithoutReplacement(100, 10, &rng)) {
      ++counts[static_cast<std::size_t>(id)];
    }
  }
  for (int c : counts) {
    EXPECT_GT(c, 50);
    EXPECT_LT(c, 170);
  }
}

TEST(SamplingTest, CacheFillCount) {
  // 256 KB / (50 dims * 8 B) = 655.36 -> 656 vectors.
  EXPECT_EQ(MinVectorsToFillCache(50, 256 * 1024), 656);
  // One giant vector fills any cache.
  EXPECT_EQ(MinVectorsToFillCache(1 << 20, 1024), 1);
  EXPECT_GE(MinVectorsToFillCache(0, 1024), 1);
}

TEST(SamplingTest, OptimizerSampleSizeTakesMax) {
  // Ratio floor dominates: 0.5% of 1M users = 5000 > L2 fill (656).
  EXPECT_EQ(OptimizerSampleSize(1000000, 0.005, 50, 256 * 1024), 5000);
  // Cache floor dominates for small user sets.
  EXPECT_EQ(OptimizerSampleSize(100000, 0.005, 50, 256 * 1024), 656);
  // Clamped at n.
  EXPECT_EQ(OptimizerSampleSize(300, 0.005, 50, 256 * 1024), 300);
}

}  // namespace
}  // namespace mips
