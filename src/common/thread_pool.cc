#include "common/thread_pool.h"

#include <algorithm>

namespace mips {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

std::vector<RangeChunk> SplitRange(int64_t n, int parts) {
  const int p = std::max(1, parts);
  std::vector<RangeChunk> chunks(static_cast<std::size_t>(p));
  const int64_t base = n / p;
  const int64_t extra = n % p;
  int64_t pos = 0;
  for (int i = 0; i < p; ++i) {
    const int64_t len = base + (i < extra ? 1 : 0);
    chunks[static_cast<std::size_t>(i)] = {pos, pos + len};
    pos += len;
  }
  return chunks;
}

}  // namespace mips
