// Randomized differential testing: many seeded random workload
// configurations, every solver (and OPTIMUS, and the serving session)
// must produce identical exact top-K score sequences.  This is the
// library's fuzz harness — any divergence between two exact solvers is a
// bug by definition, whatever the input distribution.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/maximus.h"
#include "core/optimus.h"
#include "core/registry.h"
#include "core/serving.h"
#include "solvers/bmm.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::ExpectSameTopKScores;

// One random workload drawn from a seeded generator: dimensions, K,
// norm skew, clusterability, and sign structure all vary.
struct RandomWorkload {
  MFModel model;
  Index k = 1;
};

RandomWorkload DrawWorkload(uint64_t seed) {
  Rng rng(seed);
  SyntheticModelConfig config;
  config.seed = seed * 31 + 7;
  config.num_users = 10 + static_cast<Index>(rng.UniformInt(150));
  config.num_items = 5 + static_cast<Index>(rng.UniformInt(300));
  config.num_factors = 1 + static_cast<Index>(rng.UniformInt(40));
  config.item_norm_sigma = rng.Uniform(0.0, 1.5);
  config.item_norm_mu = rng.Uniform(-0.5, 0.5);
  config.user_modes = 1 + static_cast<Index>(rng.UniformInt(12));
  config.user_dispersion = rng.Uniform(0.0, 2.0);
  config.user_norm_sigma = rng.Uniform(0.0, 0.8);
  config.non_negative = rng.UniformInt(3) == 0;
  RandomWorkload workload;
  auto model = GenerateSyntheticModel(config);
  EXPECT_TRUE(model.ok());
  workload.model = std::move(model).value();
  // K occasionally exceeds the item count to exercise padding.
  workload.k = 1 + static_cast<Index>(
                       rng.UniformInt(static_cast<uint64_t>(
                           workload.model.num_items() + 3)));
  return workload;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, AllSolversAgreeOnRandomWorkload) {
  const RandomWorkload workload =
      DrawWorkload(static_cast<uint64_t>(GetParam()));
  const MFModel& model = workload.model;
  SCOPED_TRACE(::testing::Message()
               << "seed=" << GetParam() << " users=" << model.num_users()
               << " items=" << model.num_items()
               << " f=" << model.num_factors() << " k=" << workload.k);

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(workload.k, &expected).ok());

  for (const std::string& name : AvailableSolvers()) {
    auto solver = CreateSolver(name);
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items)).ok())
        << name;
    TopKResult got;
    ASSERT_TRUE((*solver)->TopKAll(workload.k, &got).ok()) << name;
    SCOPED_TRACE(name);
    // Scores can be large when norm_mu is high; scale the tolerance.
    ExpectSameTopKScores(got, expected,
                         1e-7 * (1 + std::abs(expected.Row(0)[0].score)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1, 33));

TEST(DifferentialOptimusTest, OptimusExactOnRandomWorkloads) {
  for (int seed = 100; seed < 108; ++seed) {
    const RandomWorkload workload = DrawWorkload(static_cast<uint64_t>(seed));
    const MFModel& model = workload.model;
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);

    BmmSolver reference;
    ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                  ConstRowBlock(model.items)).ok());
    TopKResult expected;
    ASSERT_TRUE(reference.TopKAll(workload.k, &expected).ok());

    BmmSolver bmm;
    MaximusSolver maximus;
    OptimusOptions options;
    options.l2_cache_bytes = 4 * 1024;
    options.seed = static_cast<uint64_t>(seed);
    Optimus optimus(options);
    TopKResult got;
    ASSERT_TRUE(optimus
                    .Run(ConstRowBlock(model.users),
                         ConstRowBlock(model.items), workload.k,
                         {&bmm, &maximus}, &got)
                    .ok());
    ExpectSameTopKScores(got, expected,
                         1e-7 * (1 + std::abs(expected.Row(0)[0].score)));
  }
}

TEST(DifferentialServingTest, SessionsExactOnRandomBatches) {
  for (int seed = 200; seed < 205; ++seed) {
    const RandomWorkload workload = DrawWorkload(static_cast<uint64_t>(seed));
    const MFModel& model = workload.model;
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);

    ServingOptions options;
    options.k = workload.k;
    options.optimus.l2_cache_bytes = 4 * 1024;
    auto session = ServingSession::Open(ConstRowBlock(model.users),
                                        ConstRowBlock(model.items), options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    BmmSolver reference;
    ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                  ConstRowBlock(model.items)).ok());

    Rng rng(static_cast<uint64_t>(seed) + 999);
    for (int batch = 0; batch < 5; ++batch) {
      std::vector<Index> ids;
      const int size = 1 + static_cast<int>(rng.UniformInt(7));
      for (int i = 0; i < size; ++i) {
        ids.push_back(static_cast<Index>(
            rng.UniformInt(static_cast<uint64_t>(model.num_users()))));
      }
      TopKResult got;
      TopKResult expected;
      ASSERT_TRUE((*session)->ServeBatch(ids, &got).ok());
      ASSERT_TRUE(reference.TopKForUsers(workload.k, ids, &expected).ok());
      ExpectSameTopKScores(got, expected,
                           1e-7 * (1 + std::abs(expected.Row(0)[0].score)));
    }
  }
}

}  // namespace
}  // namespace mips
