#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace mips {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace mips
