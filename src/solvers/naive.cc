#include "solvers/naive.h"

#include <memory>

#include "linalg/blas.h"
#include "solvers/registry.h"
#include "topk/topk_heap.h"

namespace mips {

Status NaiveSolver::Prepare(const ConstRowBlock& users,
                            const ConstRowBlock& items) {
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  users_ = users;
  items_ = items;
  prepared_users_ = users.rows();
  return Status::OK();
}

Status NaiveSolver::TopKForUsers(Index k, std::span<const Index> user_ids,
                                 TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  const Index q = static_cast<Index>(user_ids.size());
  *out = TopKResult(q, k);
  const Index n = items_.rows();
  const Index f = items_.cols();

  ParallelFor(pool_, q, [&](int64_t begin, int64_t end, int /*chunk*/) {
    TopKHeap heap(k);
    for (int64_t r = begin; r < end; ++r) {
      const Real* u = users_.Row(user_ids[static_cast<std::size_t>(r)]);
      heap.Clear();
      for (Index j = 0; j < n; ++j) {
        heap.Push(j, Dot(u, items_.Row(j), f));
      }
      heap.ExtractDescending(out->Row(static_cast<Index>(r)));
    }
  });
  return Status::OK();
}

namespace {

const SolverRegistrar kNaiveRegistrar(
    SolverSchema("naive",
                 "per-pair dot-product brute force (Section II-B strawman)"),
    [](const ParamMap&) -> StatusOr<std::unique_ptr<MipsSolver>> {
      return std::unique_ptr<MipsSolver>(new NaiveSolver());
    });

}  // namespace

}  // namespace mips
