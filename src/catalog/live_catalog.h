// LiveCatalog: exact MIPS serving over a catalog that mutates online.
//
// Every engine below this layer freezes its item set at Open().  A
// production catalog does not hold still — new items arrive, embeddings
// refresh, items are taken down — and the paper's central result makes
// mutation more than a storage problem: the index-vs-BMM winner is a
// function of the catalog's statistics (norm distribution, size), so a
// mutated catalog eventually needs a FRESH OPTIMUS decision, not just
// patched rows.  LiveCatalog layers mutability on top of the immutable
// engines with an epoch design:
//
//   * Base epoch — an immutable snapshot of the catalog (rows sorted by
//     ascending item id) served by a normal MipsEngine (or
//     ShardedMipsEngine when num_shards > 1) that made its own OPTIMUS
//     decision over exactly that snapshot.
//   * Write buffer — Insert/Update/Remove land in a small in-memory
//     buffer (an "active" layer, plus a "sealed" layer while a rebuild
//     is in flight).  Queries serve buffered rows exactly via a
//     brute-force side scan whose scores come from the same blocked-GEMM
//     accumulation order as every solver (GemmNT's per-element K-panel
//     fold is independent of the surrounding batch), merged into the
//     base engine's row through the library-wide BetterEntry k-way
//     merge.  Buffered versions mask their base predecessors through
//     per-layer dead-id sets; the base engine is over-queried by the
//     dead count so masking can never starve the merge.
//   * Background rebuild — once the buffer passes rebuild_threshold
//     mutations (or on an explicit Rebuild() call) a dedicated thread
//     folds the sealed buffer into a replacement snapshot, opens a fresh
//     engine over it — running the OPTIMUS decision anew on the mutated
//     statistics — and swaps it in under a brief exclusive lock.
//     Queries never wait on a rebuild: they briefly hold a shared lock
//     for the O(buffer) side scan and the epoch-pointer grab, and
//     in-flight queries drain on the retiring epoch via shared_ptr
//     reference counts (the retired engine is destroyed by whichever
//     query drops the last reference).
//
// Exactness contract: after any mutation sequence, every TopK answer
// reports exactly the items a cold Open() over the equivalent catalog —
// the matrix holding the live rows in ascending-id order — would
// report.  When the serving solver scores through the blocked GEMM
// (BMM-served catalogs), the answers are additionally BIT-FOR-BIT
// identical, including which of several exactly tied items each row
// reports.  Index solvers (maximus et al.) fold their scores through
// their own accumulation order (normalized blocked scores rescaled, or
// per-item dots), which differs from the canonical GEMM fold in the
// last ulp — so an index-served answer matches the cold open to that
// tolerance, the exact boundary the sharded engine's cross-shard merge
// has always had between differently-solved shards.  Three properties
// carry the proof: (1) the side scan scores buffered rows with the same
// fixed serial-GEMM fma fold a rebuilt epoch's BMM would report,
// (2) item ids are assigned monotonically and never reused, so the row
// order of any snapshot equals id order and the BetterEntry tie-break
// is preserved by the local-row -> global-id remap, and (3) each layer
// masks exactly the older versions it supersedes, so every live item is
// scored exactly once per query.
//
// Thread safety: Insert/Update/Remove/TopK*/Rebuild/SaveSegment/stats()
// may be called from any number of threads concurrently after Open().
// Mutations are serialized by a writer lock held for O(f) work; queries
// share the lock only for the side scan.  Rebuild() blocks the CALLER
// until the in-flight (or newly started) rebuild installs; it never
// blocks queries or mutations.

#ifndef MIPS_CATALOG_LIVE_CATALOG_H_
#define MIPS_CATALOG_LIVE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "shard/partition.h"
#include "shard/sharded_engine.h"
#include "topk/result.h"

namespace mips {

/// Configuration for LiveCatalog::Open.
struct LiveCatalogOptions {
  /// Per-epoch engine configuration (decision k, candidate solver specs,
  /// optimus knobs, decision-cache policy).  Every rebuilt epoch reruns
  /// the OPTIMUS decision under these options over the folded catalog.
  EngineOptions engine;
  /// Item shards per epoch (1 = plain MipsEngine; > 1 = per-epoch
  /// ShardedMipsEngine with one decision per shard).
  int num_shards = 1;
  /// Placement policy for sharded epochs.  kGrowth pins a block size so
  /// appends land in the newest shard and prefix shards keep their rows
  /// across append-only rebuilds (shard/partition.h).
  ShardingStrategy sharding = ShardingStrategy::kContiguous;
  /// Pinned kGrowth block size (0 = derive from the epoch's item count).
  Index growth_block = 0;
  /// Worker threads for epoch engines (0 = single-threaded).  Unsharded
  /// epochs share one catalog-owned pool across swaps; sharded epochs
  /// own a pool per epoch (the sharded engine's contract).
  int threads = 0;
  /// Buffered mutations that trigger a background rebuild (0 = rebuild
  /// only on explicit Rebuild() calls).
  int64_t rebuild_threshold = 0;
};

/// Exact MIPS over an online-mutable catalog; see the file comment.
class LiveCatalog {
 public:
  /// Opens over an initial item catalog (rows become items 0..n-1; the
  /// views must outlive the catalog).  `items` may be an empty view —
  /// the catalog then starts engine-less and serves purely from the
  /// write buffer until the first rebuild.
  static StatusOr<std::unique_ptr<LiveCatalog>> Open(
      const ConstRowBlock& users, const ConstRowBlock& items,
      const LiveCatalogOptions& options = {});

  /// Blocks until any in-flight rebuild finishes, then joins its thread.
  ~LiveCatalog();

  LiveCatalog(const LiveCatalog&) = delete;
  LiveCatalog& operator=(const LiveCatalog&) = delete;

  /// Adds a new item; returns its permanent id.  Ids are assigned
  /// monotonically and never reused (a removed id stays dead forever) —
  /// the invariant the exactness proof's tie-order argument rests on.
  StatusOr<Index> Insert(std::span<const Real> vector)
      EXCLUDES(state_mu_, rebuild_mu_);
  /// Replaces the vector of a live item.  NotFound for dead/unknown ids.
  Status Update(Index id, std::span<const Real> vector)
      EXCLUDES(state_mu_, rebuild_mu_);
  /// Removes a live item.  NotFound for dead/unknown ids.
  Status Remove(Index id) EXCLUDES(state_mu_, rebuild_mu_);

  /// Exact top-K over the LIVE catalog for a mini-batch of known users;
  /// entry ids are catalog item ids.  Safe for concurrent callers; never
  /// blocks on a rebuild.
  Status TopK(Index k, std::span<const Index> user_ids, TopKResult* out)
      EXCLUDES(state_mu_);
  /// Exact top-K for every prepared user.
  Status TopKAll(Index k, TopKResult* out) EXCLUDES(state_mu_);
  /// Exact top-K for one vector outside the user matrix (`out_row` must
  /// hold k entries); bit-for-bit the 1-row case of TopKNewUsers.
  Status TopKNewUser(const Real* user_vector, Index k, TopKEntry* out_row)
      EXCLUDES(state_mu_);
  /// Exact top-K for `num_rows` new-user vectors (row-major).  Row r
  /// depends only on input row r, so a serving layer may coalesce
  /// batches across epoch swaps without changing any answer.
  Status TopKNewUsers(const Real* user_vectors, Index num_rows, Index k,
                      TopKResult* out) EXCLUDES(state_mu_);

  /// Folds the write buffer into a fresh epoch NOW and waits for the
  /// swap (joining an already-running rebuild if one is in flight).
  /// No-op when nothing is buffered.  Queries keep flowing while this
  /// caller waits.
  Status Rebuild() EXCLUDES(rebuild_mu_, state_mu_);

  /// Persists the live catalog (rows in ascending-id order) to `path`
  /// via CatalogSegment's atomic-rename protocol.  Reopening the segment
  /// compacts ids to 0..n-1 in the same order.
  Status SaveSegment(const std::string& path) const EXCLUDES(state_mu_);

  Index num_users() const { return users_.rows(); }
  Index num_factors() const { return users_.cols(); }
  /// Live item count (base + buffered - removed).
  Index num_items() const EXCLUDES(state_mu_);
  /// Monotone epoch counter, bumped at every swap install.  Lock-free —
  /// cheap enough to sample around individual queries (bench harnesses
  /// use it to attribute latency to swap windows).
  int64_t catalog_epoch() const {
    return catalog_epoch_.load(std::memory_order_relaxed);
  }

  /// Cumulative mutation / rebuild / drain counters.  Each field is
  /// individually consistent; fields may be mutually skewed by in-flight
  /// requests.
  struct Stats {
    /// Swap generation: bumped once per installed epoch.  The per-epoch
    /// engines' decision caches die with their epoch, and the retiring
    /// engine's surviving decisions are additionally invalidated through
    /// MipsEngine::InvalidateDecisions (counted in decisions_retired).
    int64_t catalog_epoch = 0;
    int64_t inserts = 0;
    int64_t updates = 0;
    int64_t removes = 0;
    int64_t rebuilds_started = 0;
    /// Epochs installed (successful rebuilds).
    int64_t swaps = 0;
    /// Retired epochs fully drained (last in-flight reference dropped).
    int64_t epochs_drained = 0;
    /// Cached per-k decisions retired with their epochs at swap time.
    int64_t decisions_retired = 0;
    bool rebuild_running = false;
    Index live_items = 0;
    /// Rows in the current base snapshot (lags live_items by the buffer).
    Index base_items = 0;
    /// Buffered rows a query's side scan currently covers (sealed +
    /// active, tombstones included).
    Index buffered_rows = 0;
    /// Ids currently masked out of older layers (dead-set union size).
    Index dead_masked = 0;
    /// Strategy serving the current base epoch ("" while engine-less;
    /// per-shard strategies joined with "," for sharded epochs).
    std::string base_strategy;
  };
  Stats stats() const EXCLUDES(state_mu_, rebuild_mu_);

 private:
  /// One mutation layer.  `data` holds num_rows() row-major vectors;
  /// ids[row] is the row's catalog id (-1 = tombstoned in place).  `dead`
  /// masks every OLDER layer's version of an id (update supersedes,
  /// remove deletes); a layer's own rows are never in its own dead set.
  struct WriteBuffer {
    std::vector<Real> data;
    std::vector<Index> ids;
    std::unordered_map<Index, Index> row_of_id;
    std::unordered_set<Index> dead;
    int64_t mutations = 0;

    Index num_rows() const { return static_cast<Index>(ids.size()); }
  };

  /// One immutable catalog snapshot + the engine serving it.  Held by
  /// shared_ptr: queries pin the epoch they started on, and the dtor —
  /// run by whichever thread drops the last reference — counts the
  /// drain.
  struct Epoch {
    /// Row storage for rebuilt epochs (empty for the view-backed initial
    /// epoch, whose rows live in the caller's matrix or a mapped
    /// segment).
    Matrix owned;
    /// The snapshot rows, ascending-id order.
    ConstRowBlock items;
    /// Row -> catalog id, strictly ascending (so local-row tie order is
    /// id tie order).
    std::vector<Index> ids;
    std::unique_ptr<MipsEngine> engine;
    std::unique_ptr<ShardedMipsEngine> sharded;
    /// Bumped by ~Epoch so the catalog's stats() can report drains after
    /// the epoch object itself is gone.
    std::shared_ptr<std::atomic<int64_t>> drain_counter;

    ~Epoch();
    bool has_engine() const {
      return engine != nullptr || sharded != nullptr;
    }
    bool Contains(Index id) const;  // binary search over ids
    /// Invalidate the serving engine's cached decisions (swap-time
    /// retirement); returns how many were cached.
    int64_t InvalidateDecisions() const;
  };

  LiveCatalog() = default;

  /// True while `id` resolves to a live row in some layer.
  bool IsLive(Index id) const REQUIRES_SHARED(state_mu_);
  /// Whether the active buffer crossed rebuild_threshold.
  bool RebuildDue() const REQUIRES_SHARED(state_mu_);
  /// Appends one f-wide row for `id` to `buffer`.
  static void AppendRow(WriteBuffer* buffer, Index id, const Real* row,
                        Index f);
  /// Brute-force side scan of one buffer layer: scores every live,
  /// unmasked row against the query batch with the blocked GEMM (the
  /// same per-element fma fold every solver reports) and returns
  /// per-query top-k rows of GLOBAL ids, sentinel-padded, in BetterEntry
  /// order.
  static std::vector<TopKEntry> ScanBuffer(
      const WriteBuffer& buffer, const std::unordered_set<Index>* mask,
      const Real* vectors, Index num_rows, Index f, Index k);

  /// Shared query spine: side scans + base query + 3-way merge.  For
  /// known users `user_ids` selects base rows and `vectors` holds the
  /// same users' vectors gathered contiguously; for new users `user_ids`
  /// is empty and `vectors` points at the caller's batch.
  Status Query(Index k, std::span<const Index> user_ids,
               const Real* vectors, Index num_rows, TopKResult* out)
      EXCLUDES(state_mu_);

  /// Starts the background rebuild if one is not running and there is
  /// anything to fold; returns whether a rebuild is now in flight.
  bool StartRebuildLocked() REQUIRES(rebuild_mu_) EXCLUDES(state_mu_);
  /// Rebuild-thread body: fold, open, install, signal completion.
  void RebuildAndInstall(std::shared_ptr<Epoch> base,
                         std::shared_ptr<const WriteBuffer> sealed)
      EXCLUDES(rebuild_mu_, state_mu_);
  /// Folds `sealed` into `base` and opens a fresh engine (fresh OPTIMUS
  /// decision) over the merged snapshot.
  StatusOr<std::shared_ptr<Epoch>> BuildEpoch(const Epoch& base,
                                              const WriteBuffer& sealed);
  /// Opens the engine (sharded or not) for a snapshot epoch in place.
  Status OpenEpochEngine(Epoch* epoch);
  /// Swaps `next` in as the serving epoch and retires the old one.
  void InstallEpoch(std::shared_ptr<Epoch> next) EXCLUDES(state_mu_);
  /// Kicks the background rebuild when the buffer crossed the threshold.
  void MaybeStartRebuild(bool should_rebuild)
      EXCLUDES(rebuild_mu_, state_mu_);

  ConstRowBlock users_;
  LiveCatalogOptions options_;
  /// Pool shared by unsharded epoch engines across swaps (null when
  /// threads == 0 or epochs are sharded).
  std::unique_ptr<ThreadPool> pool_;

  /// Guards the serving state.  Shared: queries (epoch/sealed pointer
  /// grab + active-buffer side scan) and read-only snapshots.  Exclusive:
  /// mutations, sealing, and the epoch swap — all O(f) or O(1).
  mutable SharedMutex state_mu_;
  std::shared_ptr<Epoch> epoch_ GUARDED_BY(state_mu_);  // never null
  /// Immutable buffer being folded by the in-flight rebuild (null
  /// otherwise).  Masked by active_.dead, masks the base.
  std::shared_ptr<const WriteBuffer> sealed_ GUARDED_BY(state_mu_);
  WriteBuffer active_ GUARDED_BY(state_mu_);
  Index next_id_ GUARDED_BY(state_mu_) = 0;
  Index live_items_ GUARDED_BY(state_mu_) = 0;

  /// Rebuild lifecycle.  Lock order: rebuild_mu_ before state_mu_ (the
  /// seal step nests them); never the reverse.
  mutable Mutex rebuild_mu_;
  CondVar rebuild_done_;
  bool rebuild_running_ GUARDED_BY(rebuild_mu_) = false;
  std::thread rebuild_thread_ GUARDED_BY(rebuild_mu_);
  Status last_rebuild_error_ GUARDED_BY(rebuild_mu_) = Status::OK();

  std::atomic<int64_t> catalog_epoch_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> updates_{0};
  std::atomic<int64_t> removes_{0};
  std::atomic<int64_t> rebuilds_started_{0};
  std::atomic<int64_t> swaps_{0};
  std::atomic<int64_t> decisions_retired_{0};
  /// Shared with every Epoch; see Epoch::drain_counter.
  std::shared_ptr<std::atomic<int64_t>> epochs_drained_ =
      std::make_shared<std::atomic<int64_t>>(0);
};

}  // namespace mips

#endif  // MIPS_CATALOG_LIVE_CATALOG_H_
