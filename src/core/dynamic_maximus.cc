#include "core/dynamic_maximus.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>

#include "solvers/registry.h"

namespace mips {

Status DynamicMaximus::Initialize(const ConstRowBlock& initial_users,
                                  const ConstRowBlock& items) {
  if (initial_users.rows() <= 0 || items.rows() <= 0) {
    return Status::InvalidArgument("user and item sets must be non-empty");
  }
  if (initial_users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  items_ = items;
  count_ = initial_users.rows();
  // Start with headroom so early AddUser calls avoid reallocation.
  const Index capacity = std::max<Index>(count_ * 2, count_ + 64);
  users_.Resize(capacity, initial_users.cols());
  std::memcpy(users_.data(), initial_users.data(),
              static_cast<std::size_t>(count_) * initial_users.cols() *
                  sizeof(Real));
  recluster_rounds_ = -1;
  return Rebuild();
}

Status DynamicMaximus::Rebuild() {
  index_ = std::make_unique<MaximusSolver>(options_.base);
  MIPS_RETURN_IF_ERROR(index_->Prepare(
      ConstRowBlock(users_.data(), count_, users_.cols()), items_));
  indexed_count_ = count_;
  ++recluster_rounds_;
  return Status::OK();
}

StatusOr<Index> DynamicMaximus::AddUser(const Real* vector) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("Initialize was not called");
  }
  const Index f = users_.cols();
  if (count_ == users_.rows()) {
    // Grow storage.  The index holds a view into the old buffer, so it
    // must be rebuilt over the new one; fold the rebuild into a full
    // re-clustering round since we are paying for a pass anyway.
    Matrix bigger(users_.rows() * 2, f);
    std::memcpy(bigger.data(), users_.data(),
                static_cast<std::size_t>(count_) * f * sizeof(Real));
    users_ = std::move(bigger);
    std::memcpy(users_.Row(count_), vector,
                static_cast<std::size_t>(f) * sizeof(Real));
    ++count_;
    MIPS_RETURN_IF_ERROR(Rebuild());
    return count_ - 1;
  }
  std::memcpy(users_.Row(count_), vector,
              static_cast<std::size_t>(f) * sizeof(Real));
  ++count_;

  const double churn = static_cast<double>(count_ - indexed_count_) /
                       static_cast<double>(std::max<Index>(1, indexed_count_));
  if (options_.recluster_churn_fraction > 0 &&
      churn > options_.recluster_churn_fraction) {
    MIPS_RETURN_IF_ERROR(Rebuild());
  }
  return count_ - 1;
}

Status DynamicMaximus::TopKForUser(Index user_id, Index k,
                                   TopKEntry* out_row) const {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("Initialize was not called");
  }
  if (user_id < 0 || user_id >= count_) {
    return Status::OutOfRange("unknown user id");
  }
  if (user_id < indexed_count_) {
    // First-class index member: the static fast path.
    TopKResult one;
    MIPS_RETURN_IF_ERROR(index_->TopKForUsers(
        k, std::span<const Index>(&user_id, 1), &one));
    std::copy_n(one.Row(0), k, out_row);
    return Status::OK();
  }
  // Appended since the last build: exact dynamic walk.
  return index_->QueryDynamicUser(users_.Row(user_id), k, out_row);
}

Status DynamicMaximus::TopKForUsers(Index k, std::span<const Index> user_ids,
                                    TopKResult* out) const {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("Initialize was not called");
  }
  const Index q = static_cast<Index>(user_ids.size());
  *out = TopKResult(q, k);
  // Indexed members batch through the inner index; pending users take
  // the exact dynamic walk.
  std::vector<Index> indexed_ids;
  std::vector<Index> indexed_rows;
  for (Index r = 0; r < q; ++r) {
    const Index id = user_ids[static_cast<std::size_t>(r)];
    if (id < 0 || id >= count_) {
      return Status::OutOfRange("unknown user id");
    }
    if (id < indexed_count_) {
      indexed_ids.push_back(id);
      indexed_rows.push_back(r);
    } else {
      MIPS_RETURN_IF_ERROR(
          index_->QueryDynamicUser(users_.Row(id), k, out->Row(r)));
    }
  }
  if (!indexed_ids.empty()) {
    TopKResult batch;
    MIPS_RETURN_IF_ERROR(index_->TopKForUsers(k, indexed_ids, &batch));
    for (std::size_t i = 0; i < indexed_rows.size(); ++i) {
      out->CopyRowFrom(batch, static_cast<Index>(i), indexed_rows[i]);
    }
  }
  return Status::OK();
}

Status DynamicMaximus::TopKAll(Index k, TopKResult* out) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("Initialize was not called");
  }
  *out = TopKResult(count_, k);
  // Indexed users in one batch; pending users via the dynamic walk.
  std::vector<Index> indexed(static_cast<std::size_t>(indexed_count_));
  std::iota(indexed.begin(), indexed.end(), 0);
  TopKResult batch;
  MIPS_RETURN_IF_ERROR(index_->TopKForUsers(k, indexed, &batch));
  for (Index u = 0; u < indexed_count_; ++u) {
    out->CopyRowFrom(batch, u, u);
  }
  for (Index u = indexed_count_; u < count_; ++u) {
    MIPS_RETURN_IF_ERROR(
        index_->QueryDynamicUser(users_.Row(u), k, out->Row(u)));
  }
  return Status::OK();
}

Status DynamicMaximus::Recluster() {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("Initialize was not called");
  }
  return Rebuild();
}

Status DynamicMaximusSolver::Prepare(const ConstRowBlock& users,
                                     const ConstRowBlock& items) {
  MIPS_RETURN_IF_ERROR(dynamic_.Initialize(users, items));
  prepared_users_ = users.rows();
  return Status::OK();
}

Status DynamicMaximusSolver::TopKForUsers(Index k,
                                          std::span<const Index> user_ids,
                                          TopKResult* out) {
  return dynamic_.TopKForUsers(k, user_ids, out);
}

Status DynamicMaximusSolver::QueryNewUser(const Real* user, Index k,
                                          TopKEntry* out_row) const {
  if (prepared_users_ == 0) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  return dynamic_.index().QueryDynamicUser(user, k, out_row);
}

namespace {

const SolverRegistrar kDynamicMaximusRegistrar(
    [] {
      SolverSchema schema("dynamic-maximus",
                          "MAXIMUS with user churn and automatic "
                          "re-clustering (Section III-E)");
      AddMaximusSchemaParams(&schema);
      schema.Real("recluster_churn_fraction",
                  DynamicMaximusOptions{}.recluster_churn_fraction,
                  "rebuild when pending users exceed this fraction of the "
                  "indexed population (<= 0 disables)");
      return schema;
    }(),
    [](const ParamMap& params) -> StatusOr<std::unique_ptr<MipsSolver>> {
      DynamicMaximusOptions options;
      MIPS_RETURN_IF_ERROR(ParseMaximusOptions(params, &options.base));
      options.recluster_churn_fraction =
          params.GetReal("recluster_churn_fraction");
      return std::unique_ptr<MipsSolver>(new DynamicMaximusSolver(options));
    });

}  // namespace

}  // namespace mips
