// Deterministic pseudo-random number generation.
//
// Every stochastic component (k-means seeding, synthetic data, OPTIMUS user
// sampling) takes an explicit seed so experiments are reproducible run to
// run.  Rng wraps a SplitMix64-seeded xoshiro256** generator: fast, high
// quality, and independent of libstdc++'s unspecified distributions where
// determinism matters (we implement our own normal/uniform transforms).

#ifndef MIPS_COMMON_RNG_H_
#define MIPS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/types.h"

namespace mips {

/// xoshiro256** PRNG with SplitMix64 seeding.  Satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n).  Precondition: n > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (-n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Box-Muller; one value per call, spare cached).
  double Normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Log-normal deviate: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mips

#endif  // MIPS_COMMON_RNG_H_
