// Bounded min-heap for streaming top-K selection.
//
// This is the "min-heap from the C++ standard library" the paper's BMM
// baseline uses (Section II-B), and the heap H in MAXIMUS's QueryIndex
// (Algorithm 1).  The heap keeps the K best (item, score) pairs seen so
// far; MinScore() is the pruning threshold min(H) the index walks compare
// bounds against.

#ifndef MIPS_TOPK_TOPK_HEAP_H_
#define MIPS_TOPK_TOPK_HEAP_H_

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "common/dcheck.h"
#include "topk/result.h"

namespace mips {

/// Fixed-capacity min-heap ordered by score (heap front = current minimum).
class TopKHeap {
 public:
  explicit TopKHeap(Index k) : k_(k) {
    MIPS_DCHECK_GT(k, 0);
    heap_.reserve(static_cast<std::size_t>(k));
  }

  Index k() const { return k_; }
  Index size() const { return static_cast<Index>(heap_.size()); }
  bool full() const { return size() == k_; }

  /// Smallest score currently held, or -infinity while the heap is not yet
  /// full (so every candidate is accepted until K entries exist).
  Real MinScore() const {
    return full() ? heap_.front().score
                  : -std::numeric_limits<Real>::infinity();
  }

  /// True if a candidate with this score could enter the heap.  Scores
  /// equal to the minimum are accepted so that Push can apply the
  /// deterministic item-id tie-break.  For the same reason, index walks
  /// must prune on `bound < MinScore()` (strictly below), never
  /// `bound <= MinScore()`: an upper bound equal to the heap minimum can
  /// belong to a score that TIES the minimum, and skipping it would make
  /// the reported id depend on visit order instead of on BetterEntry.
  bool WouldAccept(Real score) const { return score >= MinScore(); }

  /// Inserts (item, score) if it beats the current minimum under
  /// BetterEntry — strictly higher score, or an equal score with a lower
  /// item id (so heap contents are deterministic under ties regardless of
  /// visit order).  Returns true if inserted.
  bool Push(Index item, Real score) {
    if (!full()) {
      heap_.push_back({item, score});
      std::push_heap(heap_.begin(), heap_.end(), MinOnTop);
      return true;
    }
    if (!BetterEntry({item, score}, heap_.front())) return false;
    std::pop_heap(heap_.begin(), heap_.end(), MinOnTop);
    heap_.back() = {item, score};
    std::push_heap(heap_.begin(), heap_.end(), MinOnTop);
    return true;
  }

  void Clear() { heap_.clear(); }

  /// Writes the heap contents into out[0..k), sorted by (score desc, item
  /// asc).  If fewer than K entries were pushed (n < K items exist), the
  /// tail is filled with {-1, -inf} sentinels.  The heap is left empty.
  void ExtractDescending(TopKEntry* out) {
    MIPS_DCHECK(out != nullptr);
    MIPS_DCHECK_LE(size(), k_);
    std::sort(heap_.begin(), heap_.end(), BetterEntry);
    Index i = 0;
    for (; i < size(); ++i) out[i] = heap_[static_cast<std::size_t>(i)];
    for (; i < k_; ++i) {
      out[i] = {-1, -std::numeric_limits<Real>::infinity()};
    }
    // Adjacent rows must obey the library-wide tie order: score strictly
    // descending, item id ascending among exact ties.
    for (Index j = 1; j < i; ++j) {
      MIPS_DCHECK(!BetterEntry(out[j], out[j - 1]));
    }
    heap_.clear();
  }

 private:
  // std::push_heap builds a max-heap under the comparator; "better" on
  // top of the comparison therefore puts the worst entry — lowest score,
  // largest item id among ties — at the front, which is exactly the entry
  // Push must evict first.
  static bool MinOnTop(const TopKEntry& a, const TopKEntry& b) {
    return BetterEntry(a, b);
  }

  Index k_;
  std::vector<TopKEntry> heap_;
};

}  // namespace mips

#endif  // MIPS_TOPK_TOPK_HEAP_H_
