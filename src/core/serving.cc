#include "core/serving.h"

namespace mips {

StatusOr<std::unique_ptr<ServingSession>> ServingSession::Open(
    const ConstRowBlock& users, const ConstRowBlock& items,
    const ServingOptions& options) {
  if (options.strategies.size() < 2) {
    return Status::InvalidArgument(
        "serving session needs at least two candidate strategies");
  }
  EngineOptions engine_options;
  engine_options.k = options.k;
  engine_options.solvers = options.strategies;
  engine_options.optimus = options.optimus;
  // Sessions are fixed-k by contract; a diverging k would indicate a
  // caller bug, so serve it with the opening winner instead of paying
  // for a re-decision.
  engine_options.redecide_on_new_k = false;
  auto engine = MipsEngine::Open(users, items, engine_options);
  MIPS_RETURN_IF_ERROR(engine.status());

  std::unique_ptr<ServingSession> session(new ServingSession());
  session->k_ = options.k;
  session->engine_ = std::move(*engine);
  return session;
}

Status ServingSession::ServeBatch(std::span<const Index> user_ids,
                                  TopKResult* out) {
  MIPS_RETURN_IF_ERROR(engine_->TopK(k_, user_ids, out));
  const MipsEngine::Stats& engine_stats = engine_->stats();
  stats_.batches_served = engine_stats.batches_served;
  stats_.users_served = engine_stats.users_served;
  stats_.serve_seconds = engine_stats.serve_seconds;
  return Status::OK();
}

Status ServingSession::ServeNewUser(const Real* user_vector,
                                    TopKEntry* out_row) {
  MIPS_RETURN_IF_ERROR(engine_->TopKNewUser(user_vector, k_, out_row));
  const MipsEngine::Stats& engine_stats = engine_->stats();
  stats_.new_users_served = engine_stats.new_users_served;
  stats_.serve_seconds = engine_stats.serve_seconds;
  return Status::OK();
}

}  // namespace mips
