// Level-1 BLAS-style kernels (dot, norms, axpy) plus the prefix/suffix dot
// products used by the pruning indexes.
//
// These are the "sdot" building blocks from Section II-B of the paper.
// Dot() dispatches at runtime to an 8-lane fma kernel (AVX-512 / AVX2 /
// portable — linalg/dot_kernel.h) selected by the same installed-kernel
// choice as the blocked GEMM, with every variant bit-for-bit identical;
// the naive single-accumulator loop is kept as DotNaive for the
// naive-vs-blocked micro benchmark.

#ifndef MIPS_LINALG_BLAS_H_
#define MIPS_LINALG_BLAS_H_

#include <cstddef>

#include "common/types.h"

namespace mips {

/// Inner product <x, y> over n elements (runtime-dispatched 8-lane fma
/// kernel; bit-for-bit identical under every installed variant).
Real Dot(const Real* x, const Real* y, Index n);

/// Reference single-accumulator inner product (intentionally unoptimized).
Real DotNaive(const Real* x, const Real* y, Index n);

/// Inner product over the first `h` coordinates only (FEXIPRO partial
/// products).  Precondition: 0 <= h <= n for vectors of length n.
inline Real DotPrefix(const Real* x, const Real* y, Index h) {
  return Dot(x, y, h);
}

/// Euclidean norm ||x||_2.
Real Nrm2(const Real* x, Index n);

/// Squared Euclidean norm ||x||_2^2.
Real Nrm2Squared(const Real* x, Index n);

/// y += alpha * x.
void Axpy(Real alpha, const Real* x, Real* y, Index n);

/// x *= alpha.
void Scale(Real alpha, Real* x, Index n);

/// Per-row Euclidean norms of an n x f row-major block into out[0..n).
void RowNorms(const Real* data, Index rows, Index cols, Real* out);

/// Cosine of the angle between x and y; 0 if either vector is zero.
/// The result is clamped to [-1, 1] so acos() is always safe.
Real CosineSimilarity(const Real* x, const Real* y, Index n);

}  // namespace mips

#endif  // MIPS_LINALG_BLAS_H_
