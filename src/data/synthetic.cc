#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "linalg/blas.h"

namespace mips {
namespace {

// Fills `out[0..f)` with a uniformly random unit direction.
void RandomUnitVector(Index f, Rng* rng, Real* out) {
  Real norm2 = 0;
  do {
    for (Index i = 0; i < f; ++i) {
      out[i] = static_cast<Real>(rng->Normal());
    }
    norm2 = Nrm2Squared(out, f);
  } while (norm2 == 0);
  Scale(Real{1} / std::sqrt(norm2), out, f);
}

}  // namespace

StatusOr<MFModel> GenerateSyntheticModel(const SyntheticModelConfig& config) {
  if (config.num_users <= 0 || config.num_items <= 0 ||
      config.num_factors <= 0) {
    return Status::InvalidArgument("model dimensions must be positive");
  }
  if (config.user_modes <= 0) {
    return Status::InvalidArgument("user_modes must be positive");
  }

  const Index f = config.num_factors;
  Rng rng(config.seed);
  MFModel model;
  model.name = config.name;

  // --- Items: random direction scaled by a log-normal norm. ---
  model.items.Resize(config.num_items, f);
  for (Index i = 0; i < config.num_items; ++i) {
    Real* row = model.items.Row(i);
    RandomUnitVector(f, &rng, row);
    const Real norm = static_cast<Real>(
        rng.LogNormal(config.item_norm_mu, config.item_norm_sigma));
    Scale(norm, row, f);
  }

  // --- Users: mixture of direction modes with angular dispersion. ---
  Matrix modes(config.user_modes, f);
  for (Index m = 0; m < config.user_modes; ++m) {
    RandomUnitVector(f, &rng, modes.Row(m));
  }
  model.users.Resize(config.num_users, f);
  for (Index u = 0; u < config.num_users; ++u) {
    Real* row = model.users.Row(u);
    const Index m = static_cast<Index>(
        rng.UniformInt(static_cast<uint64_t>(config.user_modes)));
    const Real* mode = modes.Row(m);
    for (Index i = 0; i < f; ++i) {
      row[i] = mode[i] +
               config.user_dispersion * static_cast<Real>(rng.Normal());
    }
    const Real dir_norm = Nrm2(row, f);
    if (dir_norm > 0) Scale(Real{1} / dir_norm, row, f);
    const Real norm =
        static_cast<Real>(rng.LogNormal(0.0, config.user_norm_sigma));
    Scale(norm, row, f);
  }

  // --- Optional non-negativity (implicit-feedback / BPR-like factors). ---
  if (config.non_negative) {
    for (std::size_t i = 0; i < model.users.size(); ++i) {
      model.users.data()[i] = std::abs(model.users.data()[i]);
    }
    for (std::size_t i = 0; i < model.items.size(); ++i) {
      model.items.data()[i] = std::abs(model.items.data()[i]);
    }
  }
  return model;
}

VectorSetStats ComputeVectorSetStats(const ConstRowBlock& vectors) {
  VectorSetStats stats;
  const Index n = vectors.rows();
  if (n == 0) return stats;
  Real sum = 0;
  Real sum2 = 0;
  stats.min_norm = std::numeric_limits<Real>::max();
  for (Index r = 0; r < n; ++r) {
    const Real norm = Nrm2(vectors.Row(r), vectors.cols());
    stats.min_norm = std::min(stats.min_norm, norm);
    stats.max_norm = std::max(stats.max_norm, norm);
    sum += norm;
    sum2 += norm * norm;
  }
  stats.mean_norm = sum / static_cast<Real>(n);
  const Real var =
      std::max(Real{0}, sum2 / static_cast<Real>(n) -
                            stats.mean_norm * stats.mean_norm);
  stats.norm_cv =
      stats.mean_norm > 0 ? std::sqrt(var) / stats.mean_norm : Real{0};
  return stats;
}

}  // namespace mips
