// Core scalar and index typedefs shared by every module.
//
// The paper evaluates all solvers in double precision ("Each index is
// implemented in C++ with double-precision floating-point arithmetic"), so
// Real is double throughout.  Index types are 32-bit: the largest reference
// dataset (GloVe-Twitter) has ~1.1M item vectors, far below 2^31.

#ifndef MIPS_COMMON_TYPES_H_
#define MIPS_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace mips {

/// Floating-point scalar used for all vector/matrix payloads.
using Real = double;

/// Row/column index into a user or item matrix.
using Index = int32_t;

/// Byte size of the L2 cache assumed by the OPTIMUS sampling lower bound
/// (Section IV-A of the paper uses 256 KB).
inline constexpr std::size_t kDefaultL2CacheBytes = 256 * 1024;

}  // namespace mips

#endif  // MIPS_COMMON_TYPES_H_
