// MAXIMUS: the paper's hardware-friendly exact MIPS index (Section III).
//
// Construction (Algorithm 1, ConstructIndex):
//   1. Cluster users with k-means (|C| = 8 clusters, i = 3 iterations by
//      default; spherical k-means available for the lesion study).
//   2. Per cluster j: theta_b = max member angle to the centroid; compute
//      the Equation-3 bound for every item and sort items by it
//      (descending) into the cluster's list L[j].
//
// Query (Algorithm 1, QueryIndex): walk the user's cluster list with a
// K-heap of true (normalized) scores; stop at the first position whose
// bound cannot beat min(H).  Scores are computed on the *normalized* user
// so they are directly comparable to the scale-free bound; final results
// are rescaled by ||u|| (ordering is scale-invariant).
//
// Hardware-efficient item blocking (Section III-D): the first B items of
// each cluster list are scored for all queried cluster members with one
// blocked GEMM, sharing work across users; the walk only falls back to
// scalar dots past position B.

#ifndef MIPS_CORE_MAXIMUS_H_
#define MIPS_CORE_MAXIMUS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "solvers/solver.h"

namespace mips {

/// MAXIMUS parameters (paper defaults: B = 4096, |C| = 8, i = 3).
struct MaximusOptions {
  Index num_clusters = 8;
  int kmeans_iterations = 3;
  /// Items covered by the shared per-cluster GEMM.  -1 = auto: |I|/8
  /// clamped to [64, 4096] — the paper's B = 4096 assumes full-scale item
  /// catalogs (17K-1M items); at down-scaled sizes a fixed 4096 would cover
  /// the whole catalog and degenerate MAXIMUS into BMM.  0 disables
  /// blocking (the Figure 8 lesion); > 0 is an explicit block size.
  Index block_size = -1;
  /// Use spherical k-means instead of plain k-means (Section III-A study).
  bool spherical_clustering = false;
  uint64_t seed = 42;
};

class SolverSchema;
class ParamMap;

/// Declares the MAXIMUS schema parameters (clusters, iterations,
/// block_size, spherical, seed) on `schema` — shared by the maximus and
/// dynamic-maximus registrars so their accepted specs cannot drift.
void AddMaximusSchemaParams(SolverSchema* schema);

/// Parses and range-checks the shared parameters into `options`.
Status ParseMaximusOptions(const ParamMap& params, MaximusOptions* options);

/// The MAXIMUS exact MIPS index.
class MaximusSolver : public MipsSolver {
 public:
  explicit MaximusSolver(const MaximusOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "maximus"; }
  bool batches_users() const override { return true; }

  Status Prepare(const ConstRowBlock& users,
                 const ConstRowBlock& items) override;
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) override;

  /// Average number of item-list positions visited per user in the last
  /// query batch (the w-bar of the Section III-D runtime analysis).
  /// Under concurrent queries this reflects whichever batch finished last.
  double mean_items_visited() const {
    return mean_items_visited_.load(std::memory_order_relaxed);
  }

  /// Cluster-wide max user-centroid angles theta_b (per cluster).
  const std::vector<Real>& theta_b() const { return theta_b_; }

  /// The clustering produced during Prepare.
  const Clustering& clustering() const { return clustering_; }

  /// Assigns an unseen user vector to its nearest centroid and returns the
  /// cluster id — the Section III-E dynamic-user path.  The bound remains
  /// valid for the new user only if its angle to the centroid is <=
  /// theta_b; QueryDynamicUser handles the general case by widening the
  /// effective bound with the user's own angle.
  Index AssignNewUser(const Real* user) const;

  /// Exact top-K for a user vector that was not part of Prepare's user
  /// set.  Walks the assigned cluster's list with the user-specific
  /// Equation-2 bound (theta_uc in place of theta_b when larger).
  Status QueryDynamicUser(const Real* user, Index k, TopKEntry* out_row) const;

 private:
  struct ClusterList {
    std::vector<Index> item_ids;   // items sorted by descending bound
    std::vector<Real> bounds;      // the sorted Equation-3 bounds
    Matrix block;                  // first min(B, n) item vectors, gathered
  };

  MaximusOptions options_;
  ConstRowBlock users_;
  ConstRowBlock items_;

  Clustering clustering_;
  std::vector<Real> theta_b_;
  std::vector<ClusterList> lists_;
  std::vector<Real> item_norms_;

  mutable std::atomic<double> mean_items_visited_{0};
};

}  // namespace mips

#endif  // MIPS_CORE_MAXIMUS_H_
