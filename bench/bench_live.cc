// Live-catalog serving under online mutation (the serving-layer story
// the static benches cannot tell).
//
// A LiveCatalog serves exact top-K while Insert/Update/Remove land in
// its write buffer and background rebuilds fold the buffer into fresh
// epochs (catalog/live_catalog.h).  The question for a deployment is
// what mutations and epoch swaps cost the *query* path: the side scan
// over the buffer grows with buffered rows, and a swap retires cached
// OPTIMUS decisions, so the first queries after an install pay
// re-decisions.
//
// The harness runs two open-loop phases against one catalog:
//
//   static: Poisson query arrivals only — the no-mutation baseline.
//   live:   the same query load, plus a mutator thread replaying a
//           paced insert/update/remove stream (--mutation_rate ops/s,
//           --mix insert:update:remove).  Buffered mutations trip the
//           catalog's rebuild threshold, so background rebuilds and
//           epoch swaps happen mid-measurement.
//
// Each query samples the catalog's (lock-free) epoch counter before
// and after, and a monitor thread tracks whether a rebuild is running;
// latencies are bucketed into "steady" and "rebuild/swap window" so
// the table shows what the swap machinery costs while it is active,
// not just averaged away.
//
//   bench_live --seconds=2 --rate=400 --mutation_rate=200 \
//       --mix=60:25:15 --rebuild_threshold=64 --shards=4
//
// --json_out writes every phase row for checked-in snapshots.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "catalog/live_catalog.h"
#include "common/timer.h"
#include "shard/partition.h"

using namespace mips;
using namespace mips::bench;

namespace {

std::vector<std::string> SplitSpecs(const std::string& csv) {
  std::vector<std::string> specs;
  std::string current;
  for (const char c : csv) {
    if (c == ',') {
      if (!current.empty()) specs.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) specs.push_back(current);
  return specs;
}

double Percentile(std::vector<double>* sorted_seconds, double p) {
  if (sorted_seconds->empty()) return 0;
  const std::size_t idx = std::min(
      sorted_seconds->size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_seconds->size())));
  return (*sorted_seconds)[idx];
}

/// insert:update:remove fractions, normalized from "60:25:15".
struct MutationMix {
  double insert = 0.6;
  double update = 0.25;
  double remove = 0.15;
};

bool ParseMix(const std::string& spec, MutationMix* mix) {
  double i = 0, u = 0, r = 0;
  if (std::sscanf(spec.c_str(), "%lf:%lf:%lf", &i, &u, &r) != 3) return false;
  const double total = i + u + r;
  if (!(total > 0) || i < 0 || u < 0 || r < 0) return false;
  mix->insert = i / total;
  mix->update = u / total;
  mix->remove = r / total;
  return true;
}

/// One measurement row, kept for --json_out.
struct PhaseRow {
  std::string phase;
  int64_t requests = 0;
  double offered_qps = 0;
  double achieved_qps = 0;
  double p50_s = 0;
  double p99_s = 0;
  int64_t steady_samples = 0;
  double p50_steady_s = 0;
  double p99_steady_s = 0;
  int64_t window_samples = 0;  // taken during a rebuild or across a swap
  double p50_window_s = 0;
  double p99_window_s = 0;
  int64_t mutations = 0;
  int64_t mutation_errors = 0;
  int64_t rebuilds = 0;
  int64_t swaps = 0;
  int64_t epochs_drained = 0;
  int64_t decisions_retired = 0;
  int64_t live_items = 0;
};

struct MutatorConfig {
  double rate = 0;  // ops/s; 0 disables the mutator entirely
  MutationMix mix;
  Index min_live = 0;  // removes are skipped below this floor
};

/// Replays a paced mutation stream until `stop`.  The mutator owns the
/// id universe (single writer): it starts from the base ids and tracks
/// inserts/removes locally, so Update/Remove always target live ids.
void RunMutator(LiveCatalog* catalog, const ConstRowBlock& items,
                const MutatorConfig& config, uint64_t seed,
                const std::atomic<bool>* stop, int64_t* applied,
                int64_t* errors) {
  using Clock = std::chrono::steady_clock;
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(config.rate);
  std::uniform_real_distribution<double> op_draw(0.0, 1.0);
  std::uniform_real_distribution<Real> perturb(Real(0.9), Real(1.1));
  const Index f = items.cols();
  std::vector<Index> live(static_cast<std::size_t>(catalog->num_items()));
  for (std::size_t i = 0; i < live.size(); ++i) {
    live[i] = static_cast<Index>(i);
  }
  std::vector<Real> vector(static_cast<std::size_t>(f));
  Clock::time_point next = Clock::now();
  while (!stop->load(std::memory_order_relaxed)) {
    next += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap(rng)));
    if (next > Clock::now()) std::this_thread::sleep_until(next);
    if (stop->load(std::memory_order_relaxed)) break;

    const std::size_t src = static_cast<std::size_t>(
        rng() % static_cast<uint64_t>(items.rows()));
    const Real* row = items.Row(static_cast<Index>(src));
    for (std::size_t d = 0; d < vector.size(); ++d) {
      vector[d] = row[d] * perturb(rng);
    }

    double u = op_draw(rng);
    // Force inserts back in whenever the floor makes removes illegal, so
    // the realized mix stays close to the requested one over time.
    const bool can_shrink =
        static_cast<Index>(live.size()) > config.min_live;
    Status status;
    if (u < config.mix.insert || live.empty()) {
      auto id = catalog->Insert(vector);
      status = id.status();
      if (id.ok()) live.push_back(*id);
    } else if (u < config.mix.insert + config.mix.update || !can_shrink) {
      const std::size_t pick = static_cast<std::size_t>(
          rng() % static_cast<uint64_t>(live.size()));
      status = catalog->Update(live[pick], vector);
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng() % static_cast<uint64_t>(live.size()));
      status = catalog->Remove(live[pick]);
      if (status.ok()) {
        live[pick] = live.back();
        live.pop_back();
      }
    }
    if (status.ok()) {
      ++*applied;
    } else {
      ++*errors;
    }
  }
}

/// One open-loop phase: Poisson query arrivals split across `clients`
/// threads, each issuing single new-user requests synchronously and
/// classifying its own latencies by the catalog's epoch counter and
/// the monitor's rebuild flag.
PhaseRow RunPhase(const std::string& phase, LiveCatalog* catalog,
                  const MFModel& model, int clients, double offered_qps,
                  double seconds, Index k, const MutatorConfig& mutator,
                  uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  const LiveCatalog::Stats before = catalog->stats();

  std::atomic<bool> stop{false};
  std::atomic<bool> rebuild_active{false};
  std::thread monitor([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      rebuild_active.store(catalog->stats().rebuild_running,
                           std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  int64_t mutations = 0, mutation_errors = 0;
  std::thread mutator_thread;
  if (mutator.rate > 0) {
    mutator_thread = std::thread([&]() {
      RunMutator(catalog, ConstRowBlock(model.items), mutator, seed ^ 0x9e3779b9,
                 &stop, &mutations, &mutation_errors);
    });
  }

  struct Lane {
    std::vector<double> steady;
    std::vector<double> window;
  };
  std::vector<Lane> lanes(static_cast<std::size_t>(clients));
  std::vector<std::thread> workers;
  const double per_client_rate = offered_qps / clients;
  const Index num_users = model.num_users();
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&, t]() {
      Lane& lane = lanes[static_cast<std::size_t>(t)];
      std::mt19937_64 rng(seed + static_cast<uint64_t>(t) * 7919);
      std::exponential_distribution<double> gap(per_client_rate);
      std::vector<TopKEntry> out(static_cast<std::size_t>(k));
      Index cursor = static_cast<Index>(t) * 131 % num_users;
      Clock::time_point next = Clock::now();
      while (!stop.load(std::memory_order_relaxed)) {
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(gap(rng)));
        // Behind schedule => burst, not thin out (open loop).
        if (next > Clock::now()) std::this_thread::sleep_until(next);
        if (stop.load(std::memory_order_relaxed)) break;
        cursor = (cursor + 1) % num_users;
        const bool rebuilding = rebuild_active.load(std::memory_order_relaxed);
        const int64_t epoch_before = catalog->catalog_epoch();
        WallTimer timer;
        catalog->TopKNewUser(model.users.Row(cursor), k, out.data()).CheckOK();
        const double latency = timer.Seconds();
        const bool in_window = rebuilding ||
                               rebuild_active.load(std::memory_order_relaxed) ||
                               catalog->catalog_epoch() != epoch_before;
        (in_window ? lane.window : lane.steady).push_back(latency);
      }
    });
  }

  WallTimer window_timer;
  while (window_timer.Seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  if (mutator_thread.joinable()) mutator_thread.join();
  monitor.join();
  const double elapsed = window_timer.Seconds();

  std::vector<double> steady, in_window, all;
  for (const Lane& lane : lanes) {
    steady.insert(steady.end(), lane.steady.begin(), lane.steady.end());
    in_window.insert(in_window.end(), lane.window.begin(), lane.window.end());
  }
  all = steady;
  all.insert(all.end(), in_window.begin(), in_window.end());
  std::sort(steady.begin(), steady.end());
  std::sort(in_window.begin(), in_window.end());
  std::sort(all.begin(), all.end());

  const LiveCatalog::Stats after = catalog->stats();
  PhaseRow row;
  row.phase = phase;
  row.requests = static_cast<int64_t>(all.size());
  row.offered_qps = offered_qps;
  row.achieved_qps =
      elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  row.p50_s = Percentile(&all, 0.50);
  row.p99_s = Percentile(&all, 0.99);
  row.steady_samples = static_cast<int64_t>(steady.size());
  row.p50_steady_s = Percentile(&steady, 0.50);
  row.p99_steady_s = Percentile(&steady, 0.99);
  row.window_samples = static_cast<int64_t>(in_window.size());
  row.p50_window_s = Percentile(&in_window, 0.50);
  row.p99_window_s = Percentile(&in_window, 0.99);
  row.mutations = mutations;
  row.mutation_errors = mutation_errors;
  row.rebuilds = after.rebuilds_started - before.rebuilds_started;
  row.swaps = after.swaps - before.swaps;
  row.epochs_drained = after.epochs_drained - before.epochs_drained;
  row.decisions_retired = after.decisions_retired - before.decisions_retired;
  row.live_items = after.live_items;
  return row;
}

void WriteJson(const std::string& path, const std::string& model_name,
               const BenchConfig& config, int shards,
               int64_t rebuild_threshold, double mutation_rate,
               const std::string& mix, const std::vector<PhaseRow>& phases) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"live\",\n");
  std::fprintf(f, "  \"model\": \"%s\",\n", model_name.c_str());
  std::fprintf(f, "  \"scale\": %g,\n", config.scale);
  std::fprintf(f, "  \"shards\": %d,\n", shards);
  std::fprintf(f, "  \"rebuild_threshold\": %lld,\n",
               static_cast<long long>(rebuild_threshold));
  std::fprintf(f, "  \"mutation_rate\": %g,\n", mutation_rate);
  std::fprintf(f, "  \"mix\": \"%s\",\n", mix.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"phases\": [");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseRow& r = phases[i];
    std::fprintf(
        f,
        "%s\n    {\"phase\": \"%s\", \"requests\": %lld, "
        "\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
        "\"p50_s\": %.6g, \"p99_s\": %.6g, "
        "\"steady_samples\": %lld, \"p50_steady_s\": %.6g, "
        "\"p99_steady_s\": %.6g, \"window_samples\": %lld, "
        "\"p50_window_s\": %.6g, \"p99_window_s\": %.6g, "
        "\"mutations\": %lld, \"mutation_errors\": %lld, "
        "\"rebuilds\": %lld, \"swaps\": %lld, \"epochs_drained\": %lld, "
        "\"decisions_retired\": %lld, \"live_items\": %lld}",
        i == 0 ? "" : ",", r.phase.c_str(),
        static_cast<long long>(r.requests), r.offered_qps, r.achieved_qps,
        r.p50_s, r.p99_s, static_cast<long long>(r.steady_samples),
        r.p50_steady_s, r.p99_steady_s,
        static_cast<long long>(r.window_samples), r.p50_window_s,
        r.p99_window_s, static_cast<long long>(r.mutations),
        static_cast<long long>(r.mutation_errors),
        static_cast<long long>(r.rebuilds), static_cast<long long>(r.swaps),
        static_cast<long long>(r.epochs_drained),
        static_cast<long long>(r.decisions_retired),
        static_cast<long long>(r.live_items));
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  int32_t clients = 4;
  int32_t k = 10;
  int32_t shards = 0;
  int64_t rebuild_threshold = 64;
  double seconds = 2.0;
  double rate = 400.0;
  double mutation_rate = 200.0;
  std::string mix_spec = "60:25:15";
  std::string solvers = "bmm,maximus";
  std::string json_out;
  flags.Int32("clients", &clients, "concurrent query client threads");
  flags.Int32("k", &k, "top-K per query");
  flags.Int32("shards", &shards,
              "item shards per epoch (0/1 = unsharded; > 1 uses the "
              "growth strategy so appends land in the newest shard)");
  flags.Int64("rebuild_threshold", &rebuild_threshold,
              "buffered mutations that trigger a background rebuild");
  flags.Double("seconds", &seconds, "measurement window per phase");
  flags.Double("rate", &rate, "offered query rate (requests/s, open loop)");
  flags.Double("mutation_rate", &mutation_rate,
               "offered mutation rate during the live phase (ops/s)");
  flags.String("mix", &mix_spec,
               "insert:update:remove mix for the mutation stream");
  flags.String("solvers", &solvers, "engine candidate specs, comma-separated");
  flags.String("json_out", &json_out,
               "write all phase measurements to this file as JSON");
  ParseBenchFlags(argc, argv, &flags, &config);

  MutationMix mix;
  if (!ParseMix(mix_spec, &mix)) {
    std::fprintf(stderr, "bad --mix %s (want insert:update:remove)\n",
                 mix_spec.c_str());
    return 1;
  }

  auto preset = FindModelPreset("netflix-nomad-50");
  preset.status().CheckOK();
  const MFModel model = MakeBenchModel(*preset, config);

  LiveCatalogOptions options;
  options.engine.k = k;
  options.engine.solvers = SplitSpecs(solvers);
  options.threads = config.threads > 1 ? config.threads : 0;
  options.rebuild_threshold = rebuild_threshold;
  if (shards > 1) {
    options.num_shards = shards;
    options.sharding = ShardingStrategy::kGrowth;
  }
  auto catalog = LiveCatalog::Open(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items), options);
  catalog.status().CheckOK();

  std::printf(
      "== Live catalog: %s (%d users, %d items), k=%d, clients=%d, "
      "query rate=%.0f/s, mutation rate=%.0f/s (%s), "
      "rebuild_threshold=%lld, shards=%d ==\n",
      preset->display_name.c_str(), model.num_users(), model.num_items(), k,
      clients, rate, mutation_rate, mix_spec.c_str(),
      static_cast<long long>(rebuild_threshold), shards);
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  MutatorConfig none;
  MutatorConfig live;
  live.rate = mutation_rate;
  live.mix = mix;
  live.min_live = static_cast<Index>(k) + 16;

  std::vector<PhaseRow> rows;
  rows.push_back(RunPhase("static", catalog->get(), model, clients, rate,
                          seconds, k, none, config.seed));
  rows.push_back(RunPhase("live", catalog->get(), model, clients, rate,
                          seconds, k, live, config.seed + 1));

  TablePrinter table({"Phase", "Requests", "QPS", "p50", "p99", "Steady p99",
                      "Window p99", "Window n", "Mutations", "Rebuilds",
                      "Swaps"});
  for (const PhaseRow& r : rows) {
    table.AddRow({r.phase, FmtInt(r.requests), Fmt(r.achieved_qps, 1),
                  FormatSeconds(r.p50_s), FormatSeconds(r.p99_s),
                  FormatSeconds(r.p99_steady_s),
                  r.window_samples > 0 ? FormatSeconds(r.p99_window_s) : "-",
                  FmtInt(r.window_samples), FmtInt(r.mutations),
                  FmtInt(r.rebuilds), FmtInt(r.swaps)});
  }
  table.Print();
  std::printf(
      "\n\"Window\" latencies were sampled while a background rebuild "
      "was running or across an epoch swap; \"steady\" is everything "
      "else.  The static phase is the same open-loop query load with "
      "the mutator disabled.\n");

  const LiveCatalog::Stats stats = (*catalog)->stats();
  std::printf(
      "catalog: epoch=%lld live_items=%lld buffered=%lld dead_masked=%lld "
      "drained=%lld decisions_retired=%lld\n",
      static_cast<long long>(stats.catalog_epoch),
      static_cast<long long>(stats.live_items),
      static_cast<long long>(stats.buffered_rows),
      static_cast<long long>(stats.dead_masked),
      static_cast<long long>(stats.epochs_drained),
      static_cast<long long>(stats.decisions_retired));

  if (!json_out.empty()) {
    WriteJson(json_out, preset->display_name, config, shards,
              rebuild_threshold, mutation_rate, mix_spec, rows);
  }
  return 0;
}
