// mips-raw-sync BAD fixture: every declaration below reaches for the raw
// std synchronisation vocabulary outside src/common/, which the
// thread-safety analysis cannot attach capabilities to.  Each use must
// produce a mips-raw-sync diagnostic.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace fixture {

class BadQueue {
 public:
  void Push(int v) {
    // expect-diagnostic: raw 'std::lock_guard'
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
    cv_.notify_one();
  }

  int Pop() {
    // expect-diagnostic: raw 'std::unique_lock'
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock);
    return value_;
  }

 private:
  // expect-diagnostic: raw 'std::mutex'
  std::mutex mu_;
  // expect-diagnostic: raw 'std::condition_variable'
  std::condition_variable cv_;
  int value_ = 0;
};

class BadCache {
 public:
  int Read() const {
    // expect-diagnostic: raw 'std::shared_lock'
    std::shared_lock<std::shared_mutex> lock(mu_);
    return value_;
  }

 private:
  // expect-diagnostic: raw 'std::shared_mutex'
  mutable std::shared_mutex mu_;
  int value_ = 0;
};

}  // namespace fixture
