// Shared helpers for the mips-* clang-tidy checks.
//
// The one piece of policy that lives here is the suppression syntax:
//
//   // mips-tidy: allow(<check-tag>): <reason>
//
// placed on the flagged line or in the block of comment lines directly
// above it (the reason may wrap onto continuation lines, so the tag can
// sit several comment lines above the statement).  Unlike a bare
// NOLINT, the tag names the specific contract being waived and the
// grammar demands a reason after the colon, so a suppression reads as a
// reviewed decision, not a silencing.  (NOLINT still works — clang-tidy
// honours it before the check runs — but the repo convention is the
// tagged form; see README "Correctness tooling".)

#ifndef MIPS_TOOLS_MIPS_TIDY_MIPS_TIDY_UTILS_H_
#define MIPS_TOOLS_MIPS_TIDY_MIPS_TIDY_UTILS_H_

#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::mips {

/// Returns the text of the line containing `Offset` in `Buffer`.
inline llvm::StringRef LineContaining(llvm::StringRef Buffer, size_t Offset) {
  if (Offset >= Buffer.size()) return llvm::StringRef();
  size_t Begin = Buffer.rfind('\n', Offset);
  Begin = (Begin == llvm::StringRef::npos) ? 0 : Begin + 1;
  size_t End = Buffer.find('\n', Offset);
  if (End == llvm::StringRef::npos) End = Buffer.size();
  return Buffer.slice(Begin, End);
}

/// True if `Line` holds nothing but a `//` comment (and whitespace).
inline bool IsCommentOnlyLine(llvm::StringRef Line) {
  return Line.trim().starts_with("//");
}

/// True if the line holding `Loc` — or any line in the contiguous run of
/// comment-only lines directly above it — carries a
/// `mips-tidy: allow(<Tag>)` suppression comment.  Walking the whole
/// comment block (rather than just one line) lets the mandatory reason
/// wrap onto continuation lines without detaching the tag.
inline bool HasAllowComment(const SourceManager &SM, SourceLocation Loc,
                            llvm::StringRef Tag) {
  Loc = SM.getExpansionLoc(Loc);
  if (Loc.isInvalid()) return false;
  bool Invalid = false;
  llvm::StringRef Buffer = SM.getBufferData(SM.getFileID(Loc), &Invalid);
  if (Invalid) return false;
  const unsigned Offset = SM.getFileOffset(Loc);
  const std::string Needle = ("mips-tidy: allow(" + Tag + ")").str();

  if (LineContaining(Buffer, Offset).contains(Needle)) return true;
  // Walk upward while the preceding lines are comment-only: `Begin` is
  // the '\n' terminating the line above the one last examined.
  size_t Begin = Buffer.rfind('\n', Offset);
  while (Begin != llvm::StringRef::npos && Begin > 0) {
    // A blank line ends the run (LineContaining would silently skip it
    // and attach a comment block on the far side of the gap).
    if (Buffer[Begin - 1] == '\n') return false;
    llvm::StringRef Prev = LineContaining(Buffer, Begin - 1);
    if (!IsCommentOnlyLine(Prev)) return false;
    if (Prev.contains(Needle)) return true;
    Begin = Buffer.rfind('\n', Begin - 1);
  }
  return false;
}

/// Filename (as spelled in the compile command) for a location, or empty.
inline llvm::StringRef FileNameOf(const SourceManager &SM,
                                  SourceLocation Loc) {
  return SM.getFilename(SM.getExpansionLoc(Loc));
}

}  // namespace clang::tidy::mips

#endif  // MIPS_TOOLS_MIPS_TIDY_MIPS_TIDY_UTILS_H_
