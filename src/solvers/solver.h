// The common interface every MIPS serving strategy implements.
//
// A solver is prepared once against a (users, items) model — this is where
// indexes are constructed — and then answers batch top-K queries for any
// subset of the prepared users.  OPTIMUS drives solvers purely through this
// interface: Prepare() to build the index, TopKForUsers() on a sample to
// estimate cost, TopKForUsers() on the remainder with the winner.
//
// batches_users() distinguishes solvers whose per-user cost is only
// realized when many users are scored together (BMM, MAXIMUS — hardware
// blocking) from point-query solvers (naive, LEMP, FEXIPRO).  OPTIMUS may
// apply its t-test early stopping only to the latter (Section IV-A).
//
// Thread-safety contract: once Prepare() has returned, TopKForUsers() may
// be called from any number of threads concurrently — index structures
// are read-only at query time, and any per-batch diagnostics (stage
// timers, visit counters, LEMP's lazy calibration) synchronize
// internally.  Prepare() itself must not run concurrently with queries or
// with another Prepare() on the same solver.  Prepare() implementations
// must also never Submit()/Wait() on the injected thread pool — engine
// Open() runs Prepare tasks *on* that pool (waiting on it from inside a
// task deadlocks), and enforces this by injecting the pool only after
// construction finishes.  Parallelize queries, not construction.

#ifndef MIPS_SOLVERS_SOLVER_H_
#define MIPS_SOLVERS_SOLVER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "linalg/matrix.h"
#include "topk/result.h"

namespace mips {

/// Abstract batch exact-MIPS solver.
class MipsSolver {
 public:
  virtual ~MipsSolver() = default;

  /// Short identifier, e.g. "bmm", "maximus", "lemp", "fexipro-si".
  virtual std::string name() const = 0;

  /// True if the solver exploits scoring many users at once (so per-user
  /// timings of single-user calls are not representative).
  virtual bool batches_users() const = 0;

  /// Which item-catalog representation the solver executes against:
  /// "dense" (the default — row-major matrix), "sparse" (CSR + inverted
  /// index, src/sparse), or "hybrid" (density-split partitions).  OPTIMUS
  /// surfaces the winner's representation in its report so a decision
  /// between dense and sparse plans is attributable.
  virtual std::string representation() const { return "dense"; }

  /// Builds index structures over the model.  The views must stay valid for
  /// the lifetime of the solver.  Calling Prepare again re-indexes.
  virtual Status Prepare(const ConstRowBlock& users,
                         const ConstRowBlock& items) = 0;

  /// Computes exact top-K for each user id in `user_ids` (indices into the
  /// prepared user matrix).  Writes result row r for user_ids[r]; *out is
  /// resized to (user_ids.size(), k).  If k exceeds the item count, rows
  /// are padded with {-1, -inf} sentinel entries.
  virtual Status TopKForUsers(Index k, std::span<const Index> user_ids,
                              TopKResult* out) = 0;

  /// Convenience: top-K for every prepared user.
  Status TopKAll(Index k, TopKResult* out);

  /// Optional thread pool for data-parallel execution over users.  Null
  /// (default) means single-threaded.  The pool must outlive the solver's
  /// queries.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Per-stage wall-time breakdown accumulated by Prepare/queries
  /// (clustering, construction, traversal, ...).  Solvers without stages
  /// leave it empty.
  const StageTimer& stage_timer() const { return stage_timer_; }
  StageTimer* mutable_stage_timer() { return &stage_timer_; }

 protected:
  /// Number of users the solver was prepared with (set by subclasses).
  Index prepared_users_ = 0;

  ThreadPool* pool_ = nullptr;
  StageTimer stage_timer_;
};

/// Gathers the given user rows of `users` into a dense matrix (one row per
/// id, in order).  Shared helper for batching solvers.
Matrix GatherRows(const ConstRowBlock& users, std::span<const Index> ids);

}  // namespace mips

#endif  // MIPS_SOLVERS_SOLVER_H_
