// Runtime SIMD dispatch for the blocked-GEMM micro-kernel.
//
// The paper's BMM cost model assumes blocked matrix multiply rides
// "decades of hardware optimization" — but the constant factor is only
// right if the kernel matches the machine.  On at least one VM class the
// AVX-512 path is ~4x SLOWER than the AVX2 one (emulated or down-clocked
// 512-bit units), which silently corrupts every OPTIMUS index-vs-BMM
// decision made on such hardware.  Instead of baking the kernel in at
// compile time, one binary now carries AVX-512, AVX2+FMA, and portable
// variants of the 4x16 micro-kernel; the first GEMM call (or an explicit
// ForceGemmKernel) installs one of them process-wide:
//
//   1. If MIPS_GEMM_KERNEL is set in the environment to "avx512", "avx2"
//      or "portable" and that variant is supported, it is installed.
//      ("auto", empty, or an unsupported/unknown value falls through to
//      the probe with a warning.)
//   2. Otherwise KernelProbe times every supported variant on a small
//      packed-panel workload (a few ms, once per process) and installs
//      the fastest.
//
// ForceGemmKernel() (EngineOptions::gemm_kernel goes through it)
// overrides both.  The installed kernel is process-global and published
// through an atomic function pointer, so installation may happen
// concurrently with running GEMMs; because every variant computes each C
// element with the identical IEEE operation sequence (gemm_kernel.h),
// results are bit-for-bit the same whichever variant a call observes.
//
// MipsEngine::stats().gemm_kernel and OptimusReport::gemm_kernel record
// the installed kernel so serving decisions stay attributable to the
// throughput they were measured under.

#ifndef MIPS_LINALG_SIMD_DISPATCH_H_
#define MIPS_LINALG_SIMD_DISPATCH_H_

#include <array>
#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace mips {

/// The micro-kernel variants every binary carries, in increasing ISA
/// order.  kPortable is always supported.
enum class GemmKernel { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr int kNumGemmKernels = 3;

/// "portable", "avx2", "avx512".
const char* ToString(GemmKernel kernel);

/// Parses a kernel name as accepted by MIPS_GEMM_KERNEL and
/// EngineOptions::gemm_kernel ("auto" is handled by the callers, not
/// here).  InvalidArgument on unknown names.
StatusOr<GemmKernel> ParseGemmKernel(std::string_view name);

/// Whether `kernel` can run here: its real body was compiled in AND the
/// CPU (and OS, for AVX state) support its ISA.
bool GemmKernelSupported(GemmKernel kernel);

/// How the installed kernel was chosen.
enum class GemmKernelSource { kProbe, kEnv, kForced };

/// Outcome of timing the micro-kernel variants (KernelProbe).
struct GemmKernelProbe {
  struct Variant {
    GemmKernel kernel = GemmKernel::kPortable;
    bool supported = false;
    /// Measured packed-panel throughput; 0 for unsupported variants.
    double gflops = 0;
  };
  /// All kNumGemmKernels variants, in enum order.
  std::array<Variant, kNumGemmKernels> variants;
  /// The fastest supported variant.
  GemmKernel fastest = GemmKernel::kPortable;
};

/// Times every supported variant on a packed MRxNR panel workload (a few
/// hundred microseconds per variant) and returns the measurements.  Pure
/// measurement: does not install anything.
GemmKernelProbe ProbeGemmKernels();

/// The kernel GEMM calls are currently dispatched to, installing one
/// first (env override, then probe) if this is the first use.
GemmKernel ActiveGemmKernel();

/// Installs `kernel` process-wide, overriding the env variable and any
/// probe outcome.  FailedPrecondition if the kernel is not supported on
/// this machine.  Safe to call concurrently with running GEMMs (results
/// are bit-for-bit identical under every variant).
Status ForceGemmKernel(GemmKernel kernel);

/// How the currently installed kernel was chosen, installing one first
/// (env override, then probe) if this is the first use.
GemmKernelSource ActiveGemmKernelSource();

/// The probe measurements the active kernel was installed from.  When the
/// choice came from the env override or ForceGemmKernel the probe never
/// ran and the variants carry gflops = 0 (support flags are still
/// filled).  Installs a kernel first if none is installed.
GemmKernelProbe ActiveGemmKernelProbe();

/// Monotonic count of kernel installs (probe, env, or ForceGemmKernel —
/// including re-installs of the already-active kernel).  0 until the
/// first install.  Consumers that cache wall-clock measurements (the
/// engine's per-k decision cache) snapshot this at measurement time and
/// treat a later mismatch as "measured under a different throughput
/// regime": a mid-flight ForceGemmKernel then proactively invalidates
/// those decisions instead of waiting out their TTL.
uint64_t GemmKernelEpoch();

/// Testing hook: uninstalls the active kernel so the next use re-runs the
/// env-override/probe path.  Not for production use — concurrent GEMMs
/// stay correct (see above), but the choice becomes nondeterministic
/// relative to in-flight ForceGemmKernel calls.
void ResetGemmKernelForTest();

}  // namespace mips

#endif  // MIPS_LINALG_SIMD_DISPATCH_H_
