// Unit tests for src/cluster: k-means invariants, assignment-only mode,
// spherical k-means, and the angular-quality comparison from the paper's
// Section III-A (k-means close to spherical on angle, cheaper to run).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "cluster/kmeans.h"
#include "cluster/spherical.h"
#include "linalg/blas.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::RandomMatrix;

Matrix WellSeparatedPoints(Index per_cluster, Index f, Index num_clusters,
                           uint64_t seed) {
  // Clusters at 100 * e_j with small noise: unambiguous ground truth.
  Rng rng(seed);
  Matrix points(per_cluster * num_clusters, f);
  for (Index c = 0; c < num_clusters; ++c) {
    for (Index i = 0; i < per_cluster; ++i) {
      Real* row = points.Row(c * per_cluster + i);
      for (Index d = 0; d < f; ++d) row[d] = rng.Normal(0.0, 0.3);
      // mips-tidy: allow(float-accumulation): one-shot fixture offset, not
      // a reduction.
      row[c % f] += 100.0;
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  const Matrix points = WellSeparatedPoints(50, 8, 4, 1);
  KMeansOptions options;
  options.num_clusters = 4;
  options.max_iterations = 10;
  Clustering clustering;
  ASSERT_TRUE(KMeans(ConstRowBlock(points), options, &clustering).ok());
  // All points from the same generator cluster share an assignment.
  for (Index c = 0; c < 4; ++c) {
    const Index rep = clustering.assignment[static_cast<std::size_t>(c * 50)];
    for (Index i = 1; i < 50; ++i) {
      EXPECT_EQ(clustering.assignment[static_cast<std::size_t>(c * 50 + i)], rep);
    }
  }
  // And distinct generator clusters get distinct assignments.
  std::vector<Index> reps;
  for (Index c = 0; c < 4; ++c) {
    reps.push_back(clustering.assignment[static_cast<std::size_t>(c * 50)]);
  }
  std::sort(reps.begin(), reps.end());
  EXPECT_TRUE(std::adjacent_find(reps.begin(), reps.end()) == reps.end());
}

TEST(KMeansTest, AssignmentIsNearestCentroid) {
  const Matrix points = RandomMatrix(300, 6, 2);
  KMeansOptions options;
  options.num_clusters = 7;
  options.max_iterations = 3;
  Clustering clustering;
  ASSERT_TRUE(KMeans(ConstRowBlock(points), options, &clustering).ok());
  for (Index i = 0; i < points.rows(); ++i) {
    EXPECT_EQ(clustering.assignment[static_cast<std::size_t>(i)],
              AssignToNearest(points.Row(i), clustering.centroids))
        << "point " << i;
  }
}

TEST(KMeansTest, MembersPartitionThePoints) {
  const Matrix points = RandomMatrix(200, 4, 3);
  KMeansOptions options;
  options.num_clusters = 5;
  Clustering clustering;
  ASSERT_TRUE(KMeans(ConstRowBlock(points), options, &clustering).ok());
  std::vector<int> hit(200, 0);
  for (std::size_t c = 0; c < clustering.members.size(); ++c) {
    for (Index i : clustering.members[c]) {
      EXPECT_EQ(clustering.assignment[static_cast<std::size_t>(i)],
                static_cast<Index>(c));
      ++hit[static_cast<std::size_t>(i)];
    }
  }
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  const Matrix points = RandomMatrix(150, 5, 4);
  KMeansOptions options;
  options.num_clusters = 6;
  options.seed = 99;
  Clustering a;
  Clustering b;
  ASSERT_TRUE(KMeans(ConstRowBlock(points), options, &a).ok());
  ASSERT_TRUE(KMeans(ConstRowBlock(points), options, &b).ok());
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_TRUE(a.centroids == b.centroids);
}

TEST(KMeansTest, ClampsKToN) {
  const Matrix points = RandomMatrix(3, 4, 5);
  KMeansOptions options;
  options.num_clusters = 10;
  Clustering clustering;
  ASSERT_TRUE(KMeans(ConstRowBlock(points), options, &clustering).ok());
  EXPECT_EQ(clustering.centroids.rows(), 3);
}

TEST(KMeansTest, RejectsEmptyInput) {
  Matrix empty;
  KMeansOptions options;
  Clustering clustering;
  EXPECT_FALSE(KMeans(ConstRowBlock(empty), options, &clustering).ok());
}

TEST(KMeansTest, RejectsNonPositiveClusters) {
  const Matrix points = RandomMatrix(5, 2, 6);
  KMeansOptions options;
  options.num_clusters = 0;
  Clustering clustering;
  EXPECT_FALSE(KMeans(ConstRowBlock(points), options, &clustering).ok());
}

TEST(KMeansTest, UniformInitAlsoWorks) {
  const Matrix points = WellSeparatedPoints(30, 6, 3, 7);
  KMeansOptions options;
  options.num_clusters = 3;
  options.plus_plus_init = false;
  options.max_iterations = 10;
  Clustering clustering;
  ASSERT_TRUE(KMeans(ConstRowBlock(points), options, &clustering).ok());
  EXPECT_EQ(clustering.centroids.rows(), 3);
  EXPECT_GT(clustering.iterations, 0);
}

TEST(KMeansTest, InertiaImprovesWithIterations) {
  const Matrix points = RandomMatrix(400, 8, 8);
  KMeansOptions one;
  one.num_clusters = 8;
  one.max_iterations = 1;
  one.seed = 5;
  KMeansOptions many = one;
  many.max_iterations = 10;
  Clustering c1;
  Clustering c10;
  ASSERT_TRUE(KMeans(ConstRowBlock(points), one, &c1).ok());
  ASSERT_TRUE(KMeans(ConstRowBlock(points), many, &c10).ok());
  EXPECT_LE(c10.inertia, c1.inertia * 1.0001);
}

TEST(KMeansTest, AssignAllMatchesSingle) {
  const Matrix points = RandomMatrix(120, 5, 9);
  const Matrix centroids = RandomMatrix(6, 5, 10);
  std::vector<Index> assignment;
  AssignAllToNearest(ConstRowBlock(points), centroids, &assignment);
  ASSERT_EQ(assignment.size(), 120u);
  for (Index i = 0; i < 120; ++i) {
    EXPECT_EQ(assignment[static_cast<std::size_t>(i)],
              AssignToNearest(points.Row(i), centroids));
  }
}

TEST(KMeansTest, MembersFromAssignmentRebuilds) {
  const std::vector<Index> assignment = {0, 2, 1, 0, 2};
  const auto members = MembersFromAssignment(assignment, 3);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<Index>{0, 3}));
  EXPECT_EQ(members[1], (std::vector<Index>{2}));
  EXPECT_EQ(members[2], (std::vector<Index>{1, 4}));
}

// The Section III-E scenario: cluster 10% of users, assign the rest.
TEST(KMeansTest, AssignmentOnlyModeForNewUsers) {
  const Matrix points = WellSeparatedPoints(100, 8, 4, 11);
  KMeansOptions options;
  options.num_clusters = 4;
  options.max_iterations = 10;
  Clustering clustering;
  // Cluster on a 10% sample spread across the point set (every 10th row);
  // clustering a contiguous prefix would only see one generator cluster.
  Matrix sample(40, 8);
  for (Index i = 0; i < 40; ++i) {
    std::copy_n(points.Row(i * 10), 8, sample.Row(i));
  }
  ASSERT_TRUE(KMeans(ConstRowBlock(sample), options, &clustering).ok());
  // Assign everyone; well-separated data should still be coherent.
  std::vector<Index> assignment;
  AssignAllToNearest(ConstRowBlock(points), clustering.centroids, &assignment);
  for (Index c = 0; c < 4; ++c) {
    const Index rep = assignment[static_cast<std::size_t>(c * 100)];
    for (Index i = 1; i < 100; ++i) {
      EXPECT_EQ(assignment[static_cast<std::size_t>(c * 100 + i)], rep);
    }
  }
}

// ------------------------------------------------------------ Spherical

TEST(SphericalKMeansTest, CentroidsAreUnitNorm) {
  const Matrix points = RandomMatrix(200, 6, 12);
  KMeansOptions options;
  options.num_clusters = 5;
  Clustering clustering;
  ASSERT_TRUE(
      SphericalKMeans(ConstRowBlock(points), options, &clustering).ok());
  for (Index c = 0; c < clustering.centroids.rows(); ++c) {
    EXPECT_NEAR(Nrm2(clustering.centroids.Row(c), 6), 1.0, 1e-9);
  }
}

TEST(SphericalKMeansTest, AssignmentMaximizesCosine) {
  const Matrix points = RandomMatrix(150, 5, 13);
  KMeansOptions options;
  options.num_clusters = 4;
  Clustering clustering;
  ASSERT_TRUE(
      SphericalKMeans(ConstRowBlock(points), options, &clustering).ok());
  for (Index i = 0; i < points.rows(); ++i) {
    const Index assigned = clustering.assignment[static_cast<std::size_t>(i)];
    const Real assigned_cos = CosineSimilarity(
        points.Row(i), clustering.centroids.Row(assigned), 5);
    for (Index c = 0; c < clustering.centroids.rows(); ++c) {
      const Real cos =
          CosineSimilarity(points.Row(i), clustering.centroids.Row(c), 5);
      EXPECT_LE(cos, assigned_cos + 1e-9);
    }
  }
}

TEST(SphericalKMeansTest, IgnoresVectorLength) {
  // Same directions, wildly different lengths, two clear direction groups.
  Matrix points(40, 4);
  Rng rng(14);
  for (Index i = 0; i < 40; ++i) {
    Real* row = points.Row(i);
    const bool group = i % 2 == 0;
    row[0] = group ? 1.0 : 0.0;
    row[1] = group ? 0.0 : 1.0;
    row[2] = 0.01 * rng.Normal();
    row[3] = 0.01 * rng.Normal();
    const Real scale = std::pow(10.0, static_cast<double>(i % 5));
    Scale(scale, row, 4);
  }
  KMeansOptions options;
  options.num_clusters = 2;
  options.max_iterations = 10;
  Clustering clustering;
  ASSERT_TRUE(
      SphericalKMeans(ConstRowBlock(points), options, &clustering).ok());
  const Index even = clustering.assignment[0];
  const Index odd = clustering.assignment[1];
  EXPECT_NE(even, odd);
  for (Index i = 0; i < 40; ++i) {
    EXPECT_EQ(clustering.assignment[static_cast<std::size_t>(i)],
              i % 2 == 0 ? even : odd);
  }
}

TEST(SphericalKMeansTest, RejectsEmptyInput) {
  Matrix empty;
  KMeansOptions options;
  Clustering clustering;
  EXPECT_FALSE(
      SphericalKMeans(ConstRowBlock(empty), options, &clustering).ok());
}

TEST(AngularQualityTest, ZeroForPerfectClustering) {
  Matrix points(4, 2);
  points(0, 0) = 1;
  points(1, 0) = 2;  // same direction as row 0
  points(2, 1) = 1;
  points(3, 1) = 3;
  KMeansOptions options;
  options.num_clusters = 2;
  options.max_iterations = 10;
  Clustering clustering;
  ASSERT_TRUE(
      SphericalKMeans(ConstRowBlock(points), options, &clustering).ok());
  const AngularQuality q =
      MeasureAngularQuality(ConstRowBlock(points), clustering);
  EXPECT_NEAR(q.mean_angle, 0.0, 1e-6);
  EXPECT_NEAR(q.max_angle, 0.0, 1e-6);
}

// Section III-A's empirical claim, scaled down: on direction-clustered
// users, plain k-means produces user-centroid angles within a modest
// factor of spherical k-means' angles.
TEST(AngularQualityTest, KMeansCloseToSphericalOnClusteredUsers) {
  const MFModel model =
      testing::MakeTestModel(2000, 10, 32, /*seed=*/15, /*norm_sigma=*/0.3,
                             /*dispersion=*/0.3);
  KMeansOptions options;
  options.num_clusters = 8;
  options.max_iterations = 5;
  options.seed = 3;

  Clustering km;
  Clustering sph;
  ASSERT_TRUE(KMeans(ConstRowBlock(model.users), options, &km).ok());
  ASSERT_TRUE(SphericalKMeans(ConstRowBlock(model.users), options, &sph).ok());
  const AngularQuality qk =
      MeasureAngularQuality(ConstRowBlock(model.users), km);
  const AngularQuality qs =
      MeasureAngularQuality(ConstRowBlock(model.users), sph);
  EXPECT_GT(qk.mean_angle, 0.0);
  EXPECT_GT(qs.mean_angle, 0.0);
  // The paper reports ~7% looser for k-means; allow generous slack but
  // catch regressions where k-means becomes wildly worse.
  EXPECT_LT(qk.mean_angle, qs.mean_angle * 1.6);
}

}  // namespace
}  // namespace mips
