// Word embeddings: the GloVe-Twitter scenario from the paper's Table I.
//
// High-dimensional similarity search over a large vocabulary: queries are
// a small set of "words" (user vectors), the catalog is ~20k embedding
// vectors, and we want the exact top inner-product neighbors.  This is
// the items >> users regime, where the best strategy differs from the
// recommender setting — exactly why OPTIMUS exists.
//
// Demonstrates: preset instantiation, per-query (point) serving with a
// non-batching index, and the approximate cluster baseline's
// recall/speed trade-off.
//
// Build & run:  ./build/examples/word_embeddings

#include <cstdio>

#include "common/timer.h"
#include "core/approx_cluster.h"
#include "core/optimus.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "solvers/bmm.h"
#include "solvers/lemp/lemp.h"

int main() {
  using namespace mips;

  // The GloVe-Twitter f=100 preset at bench scale: 2,000 query vectors
  // against ~21,870 embedding vectors.
  auto preset = FindModelPreset("glove-twitter-100");
  preset.status().CheckOK();
  auto model = MakeModel(*preset, 1.0);
  model.status().CheckOK();
  std::printf("vocabulary: %d embeddings, queries: %d, f=%d\n",
              model->num_items(), model->num_users(), model->num_factors());

  // --- Exact neighbors via OPTIMUS (BMM vs LEMP). ---
  BmmSolver bmm;
  LempSolver lemp;
  Optimus optimus;
  TopKResult neighbors;
  OptimusReport report;
  optimus
      .Run(ConstRowBlock(model->users), ConstRowBlock(model->items),
           /*k=*/8, {&bmm, &lemp}, &neighbors, &report)
      .CheckOK();
  std::printf("OPTIMUS chose %s (%.3f s end-to-end)\n", report.chosen.c_str(),
              report.total_seconds);
  for (Index q = 0; q < 3; ++q) {
    std::printf("query %d nearest:", q);
    for (Index e = 0; e < 4; ++e) {
      std::printf("  %d (%.2f)", neighbors.Row(q)[e].item,
                  neighbors.Row(q)[e].score);
    }
    std::printf("\n");
  }

  // --- Point queries: one word at a time (online serving). ---
  // LEMP answers single queries without batching; useful when requests
  // trickle in instead of arriving as one batch.
  LempSolver point_index;
  point_index.Prepare(ConstRowBlock(model->users), ConstRowBlock(model->items))
      .CheckOK();
  WallTimer timer;
  TopKResult one;
  for (Index q = 0; q < 100; ++q) {
    point_index.TopKForUsers(8, std::span<const Index>(&q, 1), &one)
        .CheckOK();
  }
  std::printf("\npoint-query serving: %.1f us/query (LEMP, scan fraction "
              "%.2f)\n",
              timer.Seconds() / 100 * 1e6, point_index.last_scan_fraction());

  // --- Approximate alternative: cluster top-K (Koenigstein). ---
  // Serves each query its cluster's list: much cheaper, not exact.  The
  // paper's MAXIMUS turns this bound into an exact method instead.
  ApproxClusterOptions approx_options;
  approx_options.num_clusters = 128;
  ApproxClusterTopK approx(approx_options);
  approx.Prepare(ConstRowBlock(model->users), ConstRowBlock(model->items))
      .CheckOK();
  timer.Restart();
  TopKResult approx_result;
  approx.TopKAll(8, &approx_result).CheckOK();
  const double approx_time = timer.Seconds();
  const double recall = MeanRecallAtK(approx_result, neighbors);
  std::printf("approximate cluster top-K: %.3f s, recall@8 = %.3f "
              "(exactness is what MAXIMUS adds)\n",
              approx_time, recall);
  return 0;
}
