// MipsEngine: the one configuration-driven entry point for exact MIPS
// serving.
//
// Callers hand Open() a model plus candidate strategies *as specs*
// ("bmm", "maximus:clusters=64", ...).  The engine builds every
// candidate via the solver registry (concurrently, on the engine's pool,
// when threads > 0), runs the OPTIMUS decision once at the configured k,
// owns the solvers and the optional thread pool, and then serves:
//
//   * TopK(k, user_ids)   — mini-batches of known users at any k.  When
//     a call's k diverges from the k the decision was made at, the
//     engine re-runs the (cheap, sampling-based) decision for the new k
//     and caches the winner — or falls back to the opening winner when
//     re-deciding is disabled.  Either way every answer stays exact.
//   * TopKAll(k)          — every prepared user.
//   * TopKNewUser(...)    — a vector outside the prepared user matrix
//     (Section III-E): MAXIMUS's dynamic walk when a MAXIMUS-family
//     strategy is chosen, a dense scoring row otherwise.
//
// ForceStrategy() overrides the optimizer by candidate name (benches,
// lesion studies, operator escape hatch); stats() snapshots cumulative
// serving counters.  ServingSession (serving.h) is a thin compatibility
// wrapper over this class.
//
// Thread safety (the contract the multi-client server relies on):
//
//   * After Open() returns, TopK / TopKAll / TopKNewUser / stats() /
//     strategy() may be called from any number of threads concurrently.
//     Candidate indexes are read-only at query time; the per-k decision
//     cache is guarded by a shared mutex so the hot path (k already
//     decided) takes only a shared lock, and the exclusive lock is held
//     only while a brand-new k runs Optimus::DecidePrepared.  Concurrent
//     callers of other, already-cached ks briefly queue behind that
//     decision; exactness is never affected.
//   * stats() counters are atomics; the returned snapshot is internally
//     consistent per field (not across fields).
//   * ForceStrategy / ClearForcedStrategy are safe to call concurrently
//     with queries; in-flight batches may finish on the previous
//     strategy.
//   * The `threads` pool is shared by all candidates and by concurrent
//     callers: a batch's ParallelFor chunks simply interleave with other
//     batches' chunks in the pool's FIFO queue.

#ifndef MIPS_CORE_ENGINE_H_
#define MIPS_CORE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/optimus.h"
#include "solvers/solver.h"

namespace mips {

/// Configuration for MipsEngine::Open.
struct EngineOptions {
  /// The k the opening OPTIMUS decision is made at (queries may use any
  /// k; see redecide_on_new_k).
  Index k = 10;
  /// Candidate strategies as registry specs.  One candidate skips the
  /// decision; two or more run OPTIMUS.
  std::vector<std::string> solvers = {"bmm", "maximus"};
  /// Optimizer knobs for the opening (and any per-k re-) decision.
  OptimusOptions optimus;
  /// Worker threads owned by the engine and shared by all candidates
  /// (0 = single-threaded).  Also used to build the candidate indexes
  /// concurrently during Open.  Ignored when `shared_pool` is set.
  int threads = 0;
  /// Optional externally owned worker pool.  When non-null the engine
  /// uses it instead of creating its own (and `threads` is ignored); the
  /// pool must outlive the engine.  ShardedMipsEngine uses this to run N
  /// shard engines on one pool.  The caller must not Open() the engine
  /// from inside a task running ON this pool — Open waits on the pool for
  /// the candidate builds, and ThreadPool::Wait from inside a task
  /// deadlocks.
  ThreadPool* shared_pool = nullptr;
  /// When a query's k has no cached decision: true re-runs the OPTIMUS
  /// decision at that k (and caches it), false reuses the opening
  /// winner.  Exactness is unaffected either way.
  bool redecide_on_new_k = true;
  /// Upper bound on cached per-k decisions (the opening k is pinned and
  /// counts toward the bound; it is never evicted).  When a new k's
  /// decision would exceed the bound, the least-recently-used cached k is
  /// evicted — a later query at that k re-decides.  Bounds the memory an
  /// adversarial stream of distinct ks can pin.  0 = unbounded.
  int decision_cache_capacity = 64;
  /// Time-to-live for cached per-k winners, in seconds (0 = never
  /// expire).  Eviction only bounds memory; a TTL bounds STALENESS: a
  /// winner measured under one load profile (or one installed GEMM
  /// kernel) expires, and the next query at that k re-runs the sampling
  /// decision — including the pinned opening k.  Expirations are counted
  /// in Stats::decision_cache_expirations.  Ignored when re-deciding is
  /// impossible (redecide_on_new_k = false, or a single candidate):
  /// expiring an entry that cannot be re-measured would serve nothing.
  double decision_ttl_seconds = 0;
  /// Which GEMM micro-kernel the engine's BMM/index GEMMs dispatch to
  /// (linalg/simd_dispatch.h).  "auto" keeps the process-wide choice
  /// (MIPS_GEMM_KERNEL env override, else the startup micro-probe);
  /// "avx512" / "avx2" / "portable" force-install that kernel
  /// process-wide before the opening decision (Open fails if it is not
  /// supported on this machine).  The installed kernel is recorded in
  /// stats() and in the OPTIMUS decision report.
  std::string gemm_kernel = "auto";
};

/// A long-lived exact-MIPS serving engine over one (users, items) model.
/// The model views must outlive the engine.  See the file comment for the
/// thread-safety contract.
class MipsEngine {
 public:
  /// Builds the candidates from their specs, prepares them (in parallel
  /// on the engine pool when threads > 0), and runs the opening OPTIMUS
  /// decision.  Spec errors (unknown solver, unknown or ill-typed
  /// parameter) are returned verbatim from the registry.
  static StatusOr<std::unique_ptr<MipsEngine>> Open(
      const ConstRowBlock& users, const ConstRowBlock& items,
      const EngineOptions& options = {});

  /// Exact top-K for a mini-batch of known users (ids into the engine's
  /// user matrix), served by the strategy decided for this k.  Safe for
  /// concurrent callers.
  Status TopK(Index k, std::span<const Index> user_ids, TopKResult* out);

  /// Exact top-K for every prepared user.
  Status TopKAll(Index k, TopKResult* out);

  /// Exact top-K for a user vector that is NOT in the prepared user
  /// matrix.  `out_row` must hold k entries.
  Status TopKNewUser(const Real* user_vector, Index k, TopKEntry* out_row);

  /// Overrides the optimizer: every subsequent query uses the candidate
  /// whose solver name — or, for tuned variants of the same solver,
  /// whose exact opening spec — matches `name_or_spec`.  NotFound if no
  /// candidate matches.
  Status ForceStrategy(const std::string& name_or_spec);
  /// Returns to decision-driven strategy selection.
  void ClearForcedStrategy();

  /// Name of the strategy serving the engine's decision k right now
  /// (the forced strategy when one is set).
  const std::string& strategy() const;
  /// The opening decision trace (empty estimates for single-candidate
  /// engines).
  const OptimusReport& decision_report() const { return report_; }
  /// Solver names of the candidates, in spec order.  Two tuned variants
  /// of the same solver share a name; candidate_specs() disambiguates.
  const std::vector<std::string>& candidate_names() const { return names_; }
  /// The opening specs, verbatim, in order.
  const std::vector<std::string>& candidate_specs() const { return specs_; }

  Index num_users() const { return users_.rows(); }
  Index num_items() const { return items_.rows(); }
  Index num_factors() const { return items_.cols(); }

  /// Snapshot of the cumulative serving statistics.  Each field is
  /// individually consistent; fields may be mutually skewed by in-flight
  /// requests.
  struct Stats {
    int64_t batches_served = 0;
    int64_t users_served = 0;
    int64_t new_users_served = 0;
    /// Per-k OPTIMUS re-decisions triggered by diverging query ks.
    int64_t redecisions = 0;
    double serve_seconds = 0;
    double redecision_seconds = 0;
    /// Decision-cache accounting: a hit is a query whose k already has a
    /// cached winner; a miss triggers either a re-decision or the
    /// opening-winner fallback (redecide_on_new_k = false).  Evictions
    /// count cached ks dropped to keep the cache within
    /// decision_cache_capacity; size is the current entry count.
    int64_t decision_cache_hits = 0;
    int64_t decision_cache_misses = 0;
    int64_t decision_cache_evictions = 0;
    /// Cached winners dropped because they outlived decision_ttl_seconds
    /// (each one also counts as a miss for the query that found it
    /// stale).
    int64_t decision_cache_expirations = 0;
    int64_t decision_cache_size = 0;
    /// The GEMM micro-kernel installed at snapshot time ("portable",
    /// "avx2", "avx512") — the throughput regime every wall-clock
    /// decision in this engine was measured under.
    std::string gemm_kernel;
  };
  Stats stats() const;

 private:
  MipsEngine() = default;

  /// Index into solvers_ of the strategy serving k (decides and caches
  /// on a miss).  Lock-free-ish hot path: shared lock on a cache hit,
  /// exclusive lock (serializing the decision) on a miss or a
  /// TTL-expired winner.
  StatusOr<std::size_t> StrategyForK(Index k);

  struct CachedDecision;
  /// Whether `entry` outlived decision_ttl_seconds (always false when
  /// TTL is disabled or re-deciding is impossible).
  bool DecisionExpired(const CachedDecision& entry) const;

  /// The pool serving this engine: the shared external pool when one was
  /// injected, else the engine-owned pool (null = single-threaded).
  ThreadPool* pool() const {
    return options_.shared_pool != nullptr ? options_.shared_pool
                                           : owned_pool_.get();
  }

  ConstRowBlock users_;
  ConstRowBlock items_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::vector<std::unique_ptr<MipsSolver>> solvers_;
  std::vector<std::string> names_;  // solver names, parallel to solvers_
  std::vector<std::string> specs_;  // opening specs, parallel to solvers_

  /// One cached per-k decision.  `last_used` is a recency stamp from
  /// decision_clock_, bumped with a relaxed store on every (shared-locked)
  /// hit; eviction drops the smallest stamp.  `created` is the TTL
  /// anchor: written once at insertion (under the exclusive lock, so it
  /// is safely published to shared-lock readers).  Stored in a node-based
  /// map so the atomic member never needs to move.
  struct CachedDecision {
    CachedDecision(std::size_t w, std::chrono::steady_clock::time_point t)
        : winner(w), created(t) {}
    std::size_t winner;
    std::chrono::steady_clock::time_point created;
    mutable std::atomic<uint64_t> last_used{0};
  };

  /// Guards winner_by_k_.  Shared: cache lookups.  Exclusive: inserting
  /// the winner for a new k (held across DecidePrepared so one decision
  /// runs at a time and latecomers reuse its result) and evicting.
  mutable std::shared_mutex decision_mu_;
  std::map<Index, CachedDecision> winner_by_k_;
  std::atomic<uint64_t> decision_clock_{0};

  /// Caches `winner` for k, evicting the least-recently-used non-pinned
  /// entries while the cache exceeds capacity.  Caller holds decision_mu_
  /// exclusively.
  void InsertDecision(Index k, std::size_t winner);

  std::atomic<std::size_t> forced_{kNoForcedStrategy};
  OptimusReport report_;

  struct AtomicStats {
    std::atomic<int64_t> batches_served{0};
    std::atomic<int64_t> users_served{0};
    std::atomic<int64_t> new_users_served{0};
    std::atomic<int64_t> redecisions{0};
    std::atomic<double> serve_seconds{0};
    std::atomic<double> redecision_seconds{0};
    std::atomic<int64_t> decision_cache_hits{0};
    std::atomic<int64_t> decision_cache_misses{0};
    std::atomic<int64_t> decision_cache_evictions{0};
    std::atomic<int64_t> decision_cache_expirations{0};
  };
  AtomicStats stats_;

  static constexpr std::size_t kNoForcedStrategy =
      static_cast<std::size_t>(-1);
};

}  // namespace mips

#endif  // MIPS_CORE_ENGINE_H_
