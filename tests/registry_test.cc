// Tests for the spec grammar (spec.h) and the self-registering solver
// registry (registry.h): parsing, schema round-trips, and every error
// path a malformed spec can take.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dynamic_maximus.h"
#include "core/maximus.h"
#include "core/registry.h"
#include "linalg/blas.h"
#include "solvers/registry.h"
#include "solvers/spec.h"
#include "test_util.h"
#include "topk/topk_heap.h"

namespace mips {
namespace {

using ::mips::testing::MakeTestModel;

// ------------------------------------------------------------ Spec parsing

TEST(SolverSpecTest, ParsesBareName) {
  auto spec = ParseSolverSpec("maximus");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "maximus");
  EXPECT_TRUE(spec->params.empty());
  EXPECT_EQ(spec->ToString(), "maximus");
}

TEST(SolverSpecTest, ParsesParams) {
  auto spec = ParseSolverSpec("maximus:clusters=64,seed=7");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "maximus");
  ASSERT_EQ(spec->params.size(), 2u);
  EXPECT_EQ(spec->params[0].first, "clusters");
  EXPECT_EQ(spec->params[0].second, "64");
  EXPECT_EQ(spec->params[1].first, "seed");
  EXPECT_EQ(spec->params[1].second, "7");
  EXPECT_EQ(spec->ToString(), "maximus:clusters=64,seed=7");
}

TEST(SolverSpecTest, TrimsWhitespace) {
  auto spec = ParseSolverSpec("  lemp : bucket_size = 128 ");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "lemp");
  ASSERT_EQ(spec->params.size(), 1u);
  EXPECT_EQ(spec->params[0].first, "bucket_size");
  EXPECT_EQ(spec->params[0].second, "128");
}

TEST(SolverSpecTest, EmptyParamListIsAllowed) {
  auto spec = ParseSolverSpec("bmm:");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->params.empty());
}

TEST(SolverSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseSolverSpec("").ok());
  EXPECT_FALSE(ParseSolverSpec(":clusters=4").ok());
  // Missing '=' — the error must name the fragment.
  auto missing_eq = ParseSolverSpec("maximus:clusters");
  ASSERT_FALSE(missing_eq.ok());
  EXPECT_NE(missing_eq.status().message().find("clusters"),
            std::string::npos);
  // Empty key.
  EXPECT_FALSE(ParseSolverSpec("maximus:=4").ok());
  // Duplicate key — named in the error.
  auto dup = ParseSolverSpec("maximus:clusters=4,clusters=8");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("clusters"), std::string::npos);
  // Empty pair between separators.
  EXPECT_FALSE(ParseSolverSpec("maximus:clusters=4,,seed=1").ok());
}

// ------------------------------------------------------------- Registry

TEST(RegistrySchemaTest, RegistersExpectedSolvers) {
  // The canonical solver families must all be present — this also guards
  // against the linker dropping a static registrar.
  const std::vector<std::string> expected = {
      "bmm",     "dynamic-maximus", "fexipro-si", "fexipro-sir",
      "hybrid",  "lemp",            "maximus",    "naive",
      "sindi"};
  EXPECT_EQ(AvailableSolvers(), expected);
  EXPECT_EQ(RegisteredSolverNames(), expected);
}

TEST(RegistrySchemaTest, DescribeCoversEveryVisibleSolver) {
  const std::vector<SolverSchema> schemas = DescribeSolvers();
  ASSERT_EQ(schemas.size(), AvailableSolvers().size());
  for (std::size_t i = 0; i < schemas.size(); ++i) {
    EXPECT_EQ(schemas[i].name(), AvailableSolvers()[i]);
    for (const ParamSpec& param : schemas[i].params()) {
      EXPECT_FALSE(param.doc.empty())
          << schemas[i].name() << "." << param.name << " lacks a doc string";
    }
  }
  EXPECT_NE(SolverHelpText().find("maximus"), std::string::npos);
}

TEST(RegistrySchemaTest, DefaultsRoundTripThroughSpecs) {
  // Spelling out every schema default explicitly must create the same
  // kind of solver as the bare name.
  for (const SolverSchema& schema : DescribeSolvers()) {
    std::string spec = schema.name();
    for (std::size_t i = 0; i < schema.params().size(); ++i) {
      spec += (i == 0) ? ':' : ',';
      spec += schema.params()[i].name;
      spec += '=';
      spec += schema.params()[i].default_value.ToString();
    }
    auto bare = CreateSolver(schema.name());
    auto spelled = CreateSolver(spec);
    ASSERT_TRUE(bare.ok()) << schema.name();
    ASSERT_TRUE(spelled.ok()) << spec << ": " << spelled.status().ToString();
    EXPECT_EQ((*bare)->name(), (*spelled)->name()) << spec;
    EXPECT_EQ((*bare)->name(), schema.name()) << spec;
  }
}

TEST(RegistryErrorsTest, UnknownSolverListsRegistered) {
  auto solver = CreateSolver("does-not-exist");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kNotFound);
  EXPECT_NE(solver.status().message().find("does-not-exist"),
            std::string::npos);
  EXPECT_NE(solver.status().message().find("maximus"), std::string::npos);
}

TEST(RegistryErrorsTest, UnknownKeyNamesTheKey) {
  auto solver = CreateSolver("maximus:cluster_count=4");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(solver.status().message().find("cluster_count"),
            std::string::npos);
  EXPECT_NE(solver.status().message().find("maximus"), std::string::npos);
}

TEST(RegistryErrorsTest, BadValueNamesKeyAndType) {
  auto not_an_int = CreateSolver("maximus:clusters=four");
  ASSERT_FALSE(not_an_int.ok());
  EXPECT_EQ(not_an_int.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(not_an_int.status().message().find("clusters"),
            std::string::npos);
  EXPECT_NE(not_an_int.status().message().find("int"), std::string::npos);

  auto not_a_bool = CreateSolver("fexipro:use_reduction=maybe");
  ASSERT_FALSE(not_a_bool.ok());
  EXPECT_NE(not_a_bool.status().message().find("use_reduction"),
            std::string::npos);

  auto not_a_real = CreateSolver("fexipro:svd_energy_fraction=high");
  ASSERT_FALSE(not_a_real.ok());
  EXPECT_NE(not_a_real.status().message().find("svd_energy_fraction"),
            std::string::npos);
}

TEST(RegistryErrorsTest, RejectsOutOfRangeIntValues) {
  // Values that fit int64 but not the 32-bit Index must be rejected,
  // not silently truncated (2^32+1 would truncate to clusters=1).
  EXPECT_FALSE(CreateSolver("maximus:clusters=4294967297").ok());
  EXPECT_FALSE(CreateSolver("lemp:calibration_users=4294967296").ok());
  // Beyond int64: strtoll overflow.
  EXPECT_FALSE(CreateSolver("maximus:seed=99999999999999999999999").ok());
}

TEST(RegistryErrorsTest, FactoriesRejectSemanticallyInvalidValues) {
  EXPECT_FALSE(CreateSolver("maximus:clusters=0").ok());
  EXPECT_FALSE(CreateSolver("maximus:clusters=-3").ok());
  EXPECT_FALSE(CreateSolver("bmm:score_block_bytes=0").ok());
  EXPECT_FALSE(CreateSolver("lemp:forced_algorithm=9").ok());
  EXPECT_FALSE(CreateSolver("fexipro:svd_energy_fraction=1.5").ok());
}

TEST(RegistryVariantsTest, FexiproReductionFlagSelectsVariant) {
  // The satellite requirement: fexipro-sir is the schema'd variant
  // "fexipro:use_reduction=true".
  auto sir_by_flag = CreateSolver("fexipro:use_reduction=true");
  ASSERT_TRUE(sir_by_flag.ok());
  EXPECT_EQ((*sir_by_flag)->name(), "fexipro-sir");
  auto si_by_default = CreateSolver("fexipro");
  ASSERT_TRUE(si_by_default.ok());
  EXPECT_EQ((*si_by_default)->name(), "fexipro-si");
  auto si_from_sir = CreateSolver("fexipro-sir:use_reduction=false");
  ASSERT_TRUE(si_from_sir.ok());
  EXPECT_EQ((*si_from_sir)->name(), "fexipro-si");
}

TEST(RegistryVariantsTest, HiddenAliasIsNotListed) {
  const std::vector<std::string> names = AvailableSolvers();
  EXPECT_EQ(std::count(names.begin(), names.end(), "fexipro"), 0);
  EXPECT_TRUE(CreateSolver("fexipro").ok());
}

TEST(RegistryOptionsTest, OverridesReachTheSolver) {
  // clusters=2 must actually produce a 2-cluster MAXIMUS index.
  const MFModel model = MakeTestModel(60, 40, 6, 3);
  auto solver = CreateSolver("maximus:clusters=2,iterations=1");
  ASSERT_TRUE(solver.ok());
  ASSERT_TRUE((*solver)
                  ->Prepare(ConstRowBlock(model.users),
                            ConstRowBlock(model.items))
                  .ok());
  auto* maximus = dynamic_cast<MaximusSolver*>(solver->get());
  ASSERT_NE(maximus, nullptr);
  EXPECT_EQ(maximus->clustering().centroids.rows(), 2);
  EXPECT_EQ(maximus->theta_b().size(), 2u);
}

TEST(RegistryOptionsTest, DynamicMaximusServesChurn) {
  // The registered adapter must expose the churn lifecycle and stay
  // exact for users added after Prepare.
  const MFModel model = MakeTestModel(80, 50, 8, 5);
  const MFModel extra = MakeTestModel(4, 50, 8, 6);
  auto solver = CreateSolver("dynamic-maximus:recluster_churn_fraction=0.5");
  ASSERT_TRUE(solver.ok());
  ASSERT_TRUE((*solver)
                  ->Prepare(ConstRowBlock(model.users),
                            ConstRowBlock(model.items))
                  .ok());
  auto* adapter = dynamic_cast<DynamicMaximusSolver*>(solver->get());
  ASSERT_NE(adapter, nullptr);
  auto id = adapter->dynamic().AddUser(extra.users.Row(0));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 80);
  std::vector<TopKEntry> row(5);
  ASSERT_TRUE(adapter->dynamic().TopKForUser(*id, 5, row.data()).ok());
  // Reference by dense scan.
  TopKHeap heap(5);
  for (Index i = 0; i < 50; ++i) {
    heap.Push(i, Dot(extra.users.Row(0), model.items.Row(i), 8));
  }
  std::vector<TopKEntry> expected(5);
  heap.ExtractDescending(expected.data());
  for (Index e = 0; e < 5; ++e) {
    EXPECT_NEAR(row[static_cast<std::size_t>(e)].score,
                expected[static_cast<std::size_t>(e)].score, 1e-9);
  }
}

}  // namespace
}  // namespace mips
