// Naive brute-force MIPS: a double loop of vector inner products.
//
// This is the Section II-B strawman ("repeatedly calling sdot in a double
// for-loop over the user and item vectors").  It computes exactly the same
// scores as BMM but with no cache blocking, so the BMM-vs-naive gap in the
// micro benches quantifies the paper's "constant factor" argument.

#ifndef MIPS_SOLVERS_NAIVE_H_
#define MIPS_SOLVERS_NAIVE_H_

#include "solvers/solver.h"

namespace mips {

/// Brute force via per-pair dot products (vectorized dots, no blocking).
class NaiveSolver : public MipsSolver {
 public:
  std::string name() const override { return "naive"; }
  bool batches_users() const override { return false; }

  Status Prepare(const ConstRowBlock& users,
                 const ConstRowBlock& items) override;
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) override;

 private:
  ConstRowBlock users_;
  ConstRowBlock items_;
};

}  // namespace mips

#endif  // MIPS_SOLVERS_NAIVE_H_
