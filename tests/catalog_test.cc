// Tests for src/catalog: LiveCatalog's exactness contract (every answer
// after a mutation sequence is bit-for-bit a cold Open() over the
// equivalent catalog — across solver specs, k, sharded/unsharded epochs,
// exact duplicate-score ties, and removals that vacate heap entries),
// the rebuild/swap/drain lifecycle and its stats counters, concurrent
// mutators + queriers (the TSan target), and CatalogSegment persistence:
// byte-exact round trips through the atomic-rename protocol and clean
// Status (never UB) on torn or corrupted files.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "catalog/live_catalog.h"
#include "catalog/segment.h"
#include "linalg/blas.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::MakeTestModel;
using ::mips::testing::RandomMatrix;

LiveCatalogOptions SmallOptions(
    std::vector<std::string> solvers = {"bmm", "maximus"},
    int num_shards = 1) {
  LiveCatalogOptions options;
  options.engine.k = 5;
  options.engine.solvers = std::move(solvers);
  options.engine.optimus.l2_cache_bytes = 16 * 1024;
  options.num_shards = num_shards;
  if (num_shards > 1) options.sharding = ShardingStrategy::kGrowth;
  return options;
}

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + stem + "." + std::to_string(::getpid());
}

std::vector<Real> RowVector(const Matrix& m, Index row) {
  return std::vector<Real>(m.Row(row), m.Row(row) + m.cols());
}

/// A LiveCatalog paired with a shadow map of what the live catalog must
/// contain (id -> vector, ascending by construction of std::map).  Every
/// mutation goes through both; ExpectMatchesColdOpen then checks the
/// catalog's answers bit-for-bit against a freshly opened catalog over
/// the shadow's snapshot.
class ShadowedCatalog {
 public:
  ShadowedCatalog(const MFModel& model, const LiveCatalogOptions& options)
      : users_(model.users), options_(options) {
    auto catalog =
        LiveCatalog::Open(ConstRowBlock(model.users),
                          ConstRowBlock(model.items), options);
    EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
    live_ = std::move(*catalog);
    for (Index i = 0; i < model.items.rows(); ++i) {
      shadow_[i] = RowVector(model.items, i);
    }
  }

  LiveCatalog& live() { return *live_; }

  Index Insert(const std::vector<Real>& vector) {
    auto id = live_->Insert(vector);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    shadow_[*id] = vector;
    return *id;
  }
  void Update(Index id, const std::vector<Real>& vector) {
    const Status status = live_->Update(id, vector);
    EXPECT_TRUE(status.ok()) << status.ToString();
    shadow_[id] = vector;
  }
  void Remove(Index id) {
    const Status status = live_->Remove(id);
    EXPECT_TRUE(status.ok()) << status.ToString();
    shadow_.erase(id);
  }

  Index live_items() const { return static_cast<Index>(shadow_.size()); }

  std::vector<Index> LiveIds() const {
    std::vector<Index> ids;
    ids.reserve(shadow_.size());
    for (const auto& [id, vector] : shadow_) ids.push_back(id);
    return ids;
  }
  std::vector<Real> VectorOf(Index id) const { return shadow_.at(id); }

  /// The equivalent cold catalog: live rows in ascending-id order, plus
  /// the row -> id map the comparison remaps through.
  Matrix SnapshotMatrix(std::vector<Index>* ids) const {
    const Index f = users_.cols();
    Matrix snapshot(static_cast<Index>(shadow_.size()), f);
    ids->clear();
    Index row = 0;
    for (const auto& [id, vector] : shadow_) {
      std::memcpy(snapshot.Row(row), vector.data(),
                  sizeof(Real) * static_cast<std::size_t>(f));
      ids->push_back(id);
      ++row;
    }
    return snapshot;
  }

  /// The mutated catalog vs a cold Open() over the equivalent snapshot,
  /// for known-user batches, a known-user subset, and a new-user batch,
  /// at each k.  The cold catalog's compacted row ids are remapped
  /// through the snapshot id list before comparing; item ids must then
  /// be EXACTLY equal.  With `bit_exact` the scores must be EXACTLY
  /// equal too (EXPECT_EQ, no tolerance — the GEMM-fold contract,
  /// including which of several exactly tied items each row reports);
  /// without it scores match to accumulation-order tolerance (an index
  /// solver's internal fold differs from the side scan's canonical GEMM
  /// fold in the last ulp — the same boundary the sharded engine's
  /// cross-shard merge has always had).
  void ExpectMatchesColdOpen(std::vector<Index> ks, const Matrix& new_users,
                             bool bit_exact = true) {
    std::vector<Index> ids;
    const Matrix snapshot = SnapshotMatrix(&ids);
    auto cold = LiveCatalog::Open(ConstRowBlock(users_),
                                  ConstRowBlock(snapshot), options_);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    const std::vector<Index> subset = {0, users_.rows() - 1, 1};
    for (const Index k : ks) {
      TopKResult got, want;
      ASSERT_TRUE(live_->TopKAll(k, &got).ok());
      ASSERT_TRUE((*cold)->TopKAll(k, &want).ok());
      ExpectIdentical(got, want, ids, bit_exact);

      ASSERT_TRUE(live_->TopK(k, subset, &got).ok());
      ASSERT_TRUE((*cold)->TopK(k, subset, &want).ok());
      ExpectIdentical(got, want, ids, bit_exact);

      ASSERT_TRUE(
          live_->TopKNewUsers(new_users.data(), new_users.rows(), k, &got)
              .ok());
      ASSERT_TRUE(
          (*cold)->TopKNewUsers(new_users.data(), new_users.rows(), k, &want)
              .ok());
      ExpectIdentical(got, want, ids, bit_exact);

      std::vector<TopKEntry> got_row(static_cast<std::size_t>(k));
      std::vector<TopKEntry> want_row(static_cast<std::size_t>(k));
      ASSERT_TRUE(
          live_->TopKNewUser(new_users.Row(0), k, got_row.data()).ok());
      ASSERT_TRUE(
          (*cold)->TopKNewUser(new_users.Row(0), k, want_row.data()).ok());
      for (Index e = 0; e < k; ++e) {
        ExpectSameScore(got_row[static_cast<std::size_t>(e)].score,
                        want_row[static_cast<std::size_t>(e)].score,
                        bit_exact);
        ExpectRemappedItem(got_row[static_cast<std::size_t>(e)],
                           want_row[static_cast<std::size_t>(e)], ids);
      }
    }
  }

 private:
  static void ExpectRemappedItem(const TopKEntry& got, const TopKEntry& want,
                                 const std::vector<Index>& ids) {
    if (want.item < 0) {
      EXPECT_EQ(got.item, want.item);
    } else {
      EXPECT_EQ(got.item, ids[static_cast<std::size_t>(want.item)]);
    }
  }

  static void ExpectSameScore(Real got, Real want, bool bit_exact) {
    if (bit_exact || std::isinf(want)) {
      EXPECT_EQ(got, want);
    } else {
      EXPECT_NEAR(got, want, 1e-9);
    }
  }

  static void ExpectIdentical(const TopKResult& got, const TopKResult& want,
                              const std::vector<Index>& ids,
                              bool bit_exact) {
    ASSERT_EQ(got.num_queries(), want.num_queries());
    ASSERT_EQ(got.k(), want.k());
    for (Index q = 0; q < got.num_queries(); ++q) {
      for (Index e = 0; e < got.k(); ++e) {
        ExpectSameScore(got.Row(q)[e].score, want.Row(q)[e].score,
                        bit_exact);
        ExpectRemappedItem(got.Row(q)[e], want.Row(q)[e], ids);
      }
    }
  }

  ConstRowBlock users_;
  LiveCatalogOptions options_;
  std::unique_ptr<LiveCatalog> live_;
  std::map<Index, std::vector<Real>> shadow_;
};

/// One scripted mutation sequence exercising every layer interaction:
/// inserts (incl. exact-duplicate vectors -> tied scores), updates of
/// base and buffered rows, removals of base rows, buffered rows, and
/// previously updated rows.
void ApplyMutationScript(ShadowedCatalog* catalog, Index f, uint64_t seed,
                         bool exact_dups = true) {
  const Matrix fresh = RandomMatrix(6, f, seed, 0.8);
  // Targets are drawn from the CURRENTLY live ids so the script composes
  // (phase 3 re-runs it after earlier removals).
  const std::vector<Index> live = catalog->LiveIds();
  ASSERT_GE(live.size(), 6u);
  // Exact duplicate of a live row: ties bit-for-bit with it, and the
  // merge must report the lower id first — exactly what a cold open over
  // a snapshot holding both rows does.  Exact cross-layer ties are only
  // meaningful under the GEMM-fold (bit-exact) contract; index-solver
  // runs perturb the copies so sub-ulp fold differences cannot flip the
  // tie order the comparison expects.
  const auto near_copy = [&](std::vector<Real> vector) {
    if (!exact_dups) vector[0] *= Real{1} + Real{1e-3};
    return vector;
  };
  const Index dup = catalog->Insert(near_copy(catalog->VectorOf(live[3])));
  const Index a = catalog->Insert(RowVector(fresh, 0));
  const Index b = catalog->Insert(RowVector(fresh, 1));
  catalog->Update(live[1], RowVector(fresh, 2));     // base row -> buffer
  catalog->Update(a, RowVector(fresh, 3));           // buffered row, in place
  catalog->Remove(live[2]);                          // base row
  catalog->Remove(b);                                // buffered (tombstone)
  catalog->Remove(live[0]);                          // vacates heap entries
  catalog->Insert(near_copy(catalog->VectorOf(live[5])));  // second tie
  catalog->Update(dup, RowVector(fresh, 4));         // updated duplicate
  catalog->Remove(live[1]);                          // remove an UPDATED row
}

class LiveCatalogExactness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

// The core contract: after each phase of a mutation sequence — buffered
// only, post-rebuild, buffered-on-rebuilt — every answer matches a cold
// Open() at several k (k both below and above the live item count, so
// sentinel padding is covered too).  "bmm" runs fully bit-exact
// including exact cross-layer ties (the GEMM fold is the canonical one
// the side scan uses); "maximus" and "optimus" assert id-exactness with
// accumulation-tolerance scores, since an index solver's internal score
// fold legitimately differs from the canonical fold in the last ulp
// (and OPTIMUS may pick either winner depending on measured timings).
TEST_P(LiveCatalogExactness, MutateThenQueryMatchesColdOpen) {
  const auto& [solver, num_shards] = GetParam();
  const MFModel model = MakeTestModel(24, 40, 8, 11);
  std::vector<std::string> solvers =
      solver == "optimus" ? std::vector<std::string>{"bmm", "maximus"}
                          : std::vector<std::string>{solver};
  const bool bit_exact = solver == "bmm";
  ShadowedCatalog catalog(model, SmallOptions(solvers, num_shards));
  const Matrix new_users = RandomMatrix(3, model.num_factors(), 42, 0.7);

  // Phase 1: mutations buffered, base epoch untouched.
  ApplyMutationScript(&catalog, model.num_factors(), 77, bit_exact);
  catalog.ExpectMatchesColdOpen({1, 4, 10}, new_users, bit_exact);

  // Phase 2: fold into a fresh epoch (new OPTIMUS decision) and re-check.
  ASSERT_TRUE(catalog.live().Rebuild().ok());
  catalog.ExpectMatchesColdOpen({1, 4, 10}, new_users, bit_exact);

  // Phase 3: new buffer on top of the rebuilt epoch.
  ApplyMutationScript(&catalog, model.num_factors(), 78, bit_exact);
  catalog.ExpectMatchesColdOpen({3, catalog.live_items() + 5}, new_users,
                                bit_exact);
}

INSTANTIATE_TEST_SUITE_P(
    Solvers, LiveCatalogExactness,
    ::testing::Combine(::testing::Values("bmm", "maximus", "optimus"),
                       ::testing::Values(1, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_shards" +
             std::to_string(std::get<1>(info.param));
    });

TEST(LiveCatalogTest, EmptyStartServesFromBufferThenRebuilds) {
  const MFModel model = MakeTestModel(10, 8, 6, 3);
  MFModel empty;  // users only: the catalog starts engine-less
  empty.users = RandomMatrix(10, 6, 3, 0.5);
  ShadowedCatalog catalog(empty, SmallOptions());
  const Matrix new_users = RandomMatrix(2, 6, 9, 0.5);

  // All sentinels while truly empty.
  TopKResult result;
  ASSERT_TRUE(catalog.live().TopKAll(4, &result).ok());
  for (Index q = 0; q < result.num_queries(); ++q) {
    for (Index e = 0; e < result.k(); ++e) {
      EXPECT_EQ(result.Row(q)[e].item, -1);
    }
  }

  for (Index i = 0; i < model.items.rows(); ++i) {
    catalog.Insert(RowVector(model.items, i));
  }
  catalog.ExpectMatchesColdOpen({2, 12}, new_users);
  ASSERT_TRUE(catalog.live().Rebuild().ok());
  catalog.ExpectMatchesColdOpen({2, 12}, new_users);
}

TEST(LiveCatalogTest, RemoveEverythingThenRepopulate) {
  const MFModel model = MakeTestModel(8, 6, 4, 5);
  ShadowedCatalog catalog(model, SmallOptions());
  for (Index i = 0; i < 6; ++i) catalog.Remove(i);
  EXPECT_EQ(catalog.live().num_items(), 0);

  TopKResult result;
  ASSERT_TRUE(catalog.live().TopKAll(3, &result).ok());
  for (Index q = 0; q < result.num_queries(); ++q) {
    EXPECT_EQ(result.Row(q)[0].item, -1);
  }

  // Rebuild of an all-dead catalog must produce a working engine-less
  // epoch, and ids must NOT be reused afterwards.
  ASSERT_TRUE(catalog.live().Rebuild().ok());
  const Index id = catalog.Insert(RowVector(model.items, 0));
  EXPECT_GE(id, 6);
  catalog.ExpectMatchesColdOpen({1, 3}, RandomMatrix(2, 4, 17, 0.5));
}

TEST(LiveCatalogTest, MutationValidation) {
  const MFModel model = MakeTestModel(6, 10, 4, 9);
  auto catalog = LiveCatalog::Open(ConstRowBlock(model.users),
                                   ConstRowBlock(model.items),
                                   SmallOptions());
  ASSERT_TRUE(catalog.ok());
  LiveCatalog& live = **catalog;

  EXPECT_TRUE(live.Insert(std::vector<Real>(3)).status().code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(live.Update(0, std::vector<Real>(5)).code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(live.Update(99, std::vector<Real>(4)).code() == StatusCode::kNotFound);
  EXPECT_TRUE(live.Remove(99).code() == StatusCode::kNotFound);

  ASSERT_TRUE(live.Remove(4).ok());
  EXPECT_TRUE(live.Remove(4).code() == StatusCode::kNotFound);  // already dead
  EXPECT_TRUE(live.Update(4, std::vector<Real>(4)).code() == StatusCode::kNotFound);

  // Dead ids stay dead across a rebuild.
  ASSERT_TRUE(live.Rebuild().ok());
  EXPECT_TRUE(live.Remove(4).code() == StatusCode::kNotFound);

  TopKResult out;
  EXPECT_TRUE(live.TopK(0, {}, &out).code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(live.TopK(3, std::vector<Index>{-1}, &out).code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(live.TopKNewUsers(nullptr, 1, 3, &out).code() == StatusCode::kInvalidArgument);
  ASSERT_TRUE(live.TopK(3, {}, &out).ok());  // empty batch is fine
  EXPECT_EQ(out.num_queries(), 0);
}

TEST(LiveCatalogTest, StatsCountersTrackLifecycle) {
  const MFModel model = MakeTestModel(10, 16, 6, 21);
  ShadowedCatalog catalog(model, SmallOptions());
  LiveCatalog& live = catalog.live();

  LiveCatalog::Stats stats = live.stats();
  EXPECT_EQ(stats.catalog_epoch, 0);
  EXPECT_EQ(stats.base_items, 16);
  EXPECT_EQ(stats.live_items, 16);
  EXPECT_EQ(stats.buffered_rows, 0);
  EXPECT_FALSE(stats.base_strategy.empty());

  catalog.Insert(RowVector(model.items, 0));
  catalog.Update(2, RowVector(model.items, 1));
  catalog.Remove(3);
  stats = live.stats();
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.updates, 1);
  EXPECT_EQ(stats.removes, 1);
  EXPECT_EQ(stats.live_items, 16);   // +1 insert, -1 remove
  EXPECT_EQ(stats.buffered_rows, 2); // insert + update rows
  EXPECT_EQ(stats.dead_masked, 2);   // updated id + removed id

  // Prime the decision cache so the swap has something to retire, then
  // rebuild: epoch bumps, buffer folds, the retired epoch drains (no
  // query in flight holds a reference).
  TopKResult out;
  ASSERT_TRUE(live.TopKAll(4, &out).ok());
  ASSERT_TRUE(live.Rebuild().ok());
  stats = live.stats();
  EXPECT_EQ(stats.catalog_epoch, 1);
  EXPECT_EQ(stats.swaps, 1);
  EXPECT_EQ(stats.rebuilds_started, 1);
  EXPECT_EQ(stats.epochs_drained, 1);
  EXPECT_GE(stats.decisions_retired, 1);
  EXPECT_EQ(stats.base_items, 16);
  EXPECT_EQ(stats.buffered_rows, 0);
  EXPECT_EQ(stats.dead_masked, 0);
  EXPECT_FALSE(stats.rebuild_running);

  // Nothing buffered: Rebuild is a no-op, not a new epoch.
  ASSERT_TRUE(live.Rebuild().ok());
  EXPECT_EQ(live.stats().swaps, 1);
}

TEST(LiveCatalogTest, ThresholdTriggersBackgroundRebuild) {
  const MFModel model = MakeTestModel(8, 12, 4, 31);
  LiveCatalogOptions options = SmallOptions({"bmm"});
  options.rebuild_threshold = 3;
  ShadowedCatalog catalog(model, options);
  for (int i = 0; i < 9; ++i) {
    catalog.Insert(RowVector(model.items, i % 12));
  }
  // Let the in-flight background rebuild (if any) finish, then verify at
  // least one threshold rebuild actually ran and answers stayed exact.
  ASSERT_TRUE(catalog.live().Rebuild().ok());
  EXPECT_GE(catalog.live().stats().rebuilds_started, 1);
  EXPECT_GE(catalog.live().stats().swaps, 1);
  catalog.ExpectMatchesColdOpen({4}, RandomMatrix(2, 4, 55, 0.5));
}

// The TSan target: mutators, queriers, and explicit rebuilds racing.
// Queries are checked for internal consistency (sorted rows, no
// duplicate ids, no sentinel followed by a real entry) — bit-exactness
// against a racing shadow is meaningless mid-race and is covered by the
// deterministic suites above.
TEST(LiveCatalogConcurrencyTest, ConcurrentMutatorsAndQueriers) {
  const MFModel model = MakeTestModel(12, 30, 6, 41);
  LiveCatalogOptions options = SmallOptions({"bmm"});
  options.rebuild_threshold = 8;
  auto opened = LiveCatalog::Open(ConstRowBlock(model.users),
                                  ConstRowBlock(model.items), options);
  ASSERT_TRUE(opened.ok());
  LiveCatalog& live = **opened;

  constexpr int kMutators = 2;
  constexpr int kQueriers = 3;
  constexpr int kOpsPerThread = 60;
  std::vector<std::thread> threads;
  threads.reserve(kMutators + kQueriers + 1);
  for (int t = 0; t < kMutators; ++t) {
    threads.emplace_back([&live, &model, t] {
      const Matrix fresh =
          RandomMatrix(kOpsPerThread, model.num_factors(),
                       1000 + static_cast<uint64_t>(t), 0.6);
      std::vector<Index> mine;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::vector<Real> row = RowVector(fresh, i);
        if (i % 3 == 0 || mine.empty()) {
          auto id = live.Insert(row);
          ASSERT_TRUE(id.ok());
          mine.push_back(*id);
        } else if (i % 3 == 1) {
          // May race with nothing: ids this thread inserted are only
          // ever removed by this thread, so Update must succeed.
          ASSERT_TRUE(live.Update(mine.back(), row).ok());
        } else {
          ASSERT_TRUE(live.Remove(mine.back()).ok());
          mine.pop_back();
        }
      }
    });
  }
  for (int t = 0; t < kQueriers; ++t) {
    threads.emplace_back([&live, &model, t] {
      const Matrix probes = RandomMatrix(2, model.num_factors(),
                                         2000 + static_cast<uint64_t>(t), 0.5);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Index k = 1 + (i % 7);
        TopKResult out;
        if (i % 2 == 0) {
          ASSERT_TRUE(live.TopKAll(k, &out).ok());
        } else {
          ASSERT_TRUE(
              live.TopKNewUsers(probes.data(), probes.rows(), k, &out).ok());
        }
        for (Index q = 0; q < out.num_queries(); ++q) {
          const TopKEntry* row = out.Row(q);
          bool sentinel_seen = false;
          std::vector<Index> ids;
          for (Index e = 0; e < out.k(); ++e) {
            if (row[e].item < 0) {
              sentinel_seen = true;
              continue;
            }
            ASSERT_FALSE(sentinel_seen) << "entry after sentinel";
            if (e > 0 && row[e - 1].item >= 0) {
              ASSERT_GE(row[e - 1].score, row[e].score);
            }
            ids.push_back(row[e].item);
          }
          std::sort(ids.begin(), ids.end());
          ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) ==
                      ids.end())
              << "duplicate id in a merged row";
        }
      }
    });
  }
  threads.emplace_back([&live] {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(live.Rebuild().ok());
      (void)live.stats();
    }
  });
  for (auto& thread : threads) thread.join();

  ASSERT_TRUE(live.Rebuild().ok());
  const LiveCatalog::Stats stats = live.stats();
  EXPECT_EQ(stats.live_items, live.num_items());
  EXPECT_EQ(stats.buffered_rows, 0);
}

// ------------------------------------------------------- CatalogSegment

TEST(CatalogSegmentTest, RoundTripIsByteExact) {
  const Matrix items = RandomMatrix(17, 6, 71, 0.8);
  const std::string path = TempPath("segment_roundtrip");
  ASSERT_TRUE(CatalogSegment::Write(ConstRowBlock(items), path).ok());

  auto segment = CatalogSegment::Open(path);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  ASSERT_EQ(segment->rows(), 17);
  ASSERT_EQ(segment->cols(), 6);
  EXPECT_EQ(std::memcmp(segment->items().Row(0), items.data(),
                        sizeof(Real) * items.size()),
            0);
  std::vector<Real> norms(17);
  RowNorms(items.data(), items.rows(), items.cols(), norms.data());
  EXPECT_EQ(std::memcmp(segment->norms().data(), norms.data(),
                        sizeof(Real) * norms.size()),
            0);

  // Deterministic writer: a second write of the same matrix produces a
  // byte-identical file (the format has no timestamps or randomness).
  const std::string path2 = TempPath("segment_roundtrip2");
  ASSERT_TRUE(CatalogSegment::Write(ConstRowBlock(items), path2).ok());
  std::ifstream f1(path, std::ios::binary), f2(path2, std::ios::binary);
  const std::string bytes1((std::istreambuf_iterator<char>(f1)), {});
  const std::string bytes2((std::istreambuf_iterator<char>(f2)), {});
  EXPECT_EQ(bytes1, bytes2);
  ASSERT_GT(bytes1.size(), 64u);

  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(CatalogSegmentTest, TornAndCorruptFilesFailCleanly) {
  const Matrix items = RandomMatrix(9, 4, 73, 0.8);
  const std::string path = TempPath("segment_torn");
  ASSERT_TRUE(CatalogSegment::Write(ConstRowBlock(items), path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), {});
  in.close();

  const auto write_bytes = [&](const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
  };

  // Torn writes: truncation anywhere — mid-header, mid-payload, one byte
  // short — must yield a clean InvalidArgument, never UB.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{40}, std::size_t{64},
        bytes.size() / 2, bytes.size() - 1}) {
    write_bytes(bytes.substr(0, keep));
    EXPECT_TRUE(CatalogSegment::Open(path).status().code() == StatusCode::kInvalidArgument)
        << "truncated to " << keep << " bytes";
  }

  // Corruption: bad magic, bad version, a flipped header byte (checksum
  // catches it), and trailing garbage (size self-check catches it).
  std::string bad = bytes;
  bad[0] = 'X';
  write_bytes(bad);
  EXPECT_TRUE(CatalogSegment::Open(path).status().code() == StatusCode::kInvalidArgument);
  bad = bytes;
  bad[8] = static_cast<char>(0x7F);
  write_bytes(bad);
  EXPECT_TRUE(CatalogSegment::Open(path).status().code() == StatusCode::kInvalidArgument);
  bad = bytes;
  bad[17] ^= static_cast<char>(0x40);  // rows field, checksum-protected
  write_bytes(bad);
  EXPECT_TRUE(CatalogSegment::Open(path).status().code() == StatusCode::kInvalidArgument);
  bad = bytes + std::string(16, '\0');
  write_bytes(bad);
  EXPECT_TRUE(CatalogSegment::Open(path).status().code() == StatusCode::kInvalidArgument);

  EXPECT_TRUE(CatalogSegment::Open(path + ".missing").status().code() == StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(CatalogSegmentTest, LiveCatalogSaveReopensBitExact) {
  const MFModel model = MakeTestModel(10, 20, 6, 83);
  ShadowedCatalog catalog(model, SmallOptions());
  ApplyMutationScript(&catalog, model.num_factors(), 91);

  const std::string path = TempPath("segment_catalog");
  ASSERT_TRUE(catalog.live().SaveSegment(path).ok());

  // The segment holds exactly the live rows in ascending-id order.
  std::vector<Index> ids;
  const Matrix snapshot = catalog.SnapshotMatrix(&ids);
  auto segment = CatalogSegment::Open(path);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  ASSERT_EQ(segment->rows(), snapshot.rows());
  ASSERT_EQ(segment->cols(), snapshot.cols());
  EXPECT_EQ(std::memcmp(segment->items().Row(0), snapshot.data(),
                        sizeof(Real) * snapshot.size()),
            0);

  // A catalog reopened directly over the mapped pages answers bit-for-bit
  // like the mutated original (modulo the id compaction the save applied).
  auto reopened = LiveCatalog::Open(ConstRowBlock(model.users),
                                    segment->items(), SmallOptions());
  ASSERT_TRUE(reopened.ok());
  TopKResult got, want;
  ASSERT_TRUE(catalog.live().TopKAll(5, &got).ok());
  ASSERT_TRUE((*reopened)->TopKAll(5, &want).ok());
  ASSERT_EQ(got.num_queries(), want.num_queries());
  for (Index q = 0; q < got.num_queries(); ++q) {
    for (Index e = 0; e < got.k(); ++e) {
      EXPECT_EQ(got.Row(q)[e].score, want.Row(q)[e].score);
      if (want.Row(q)[e].item < 0) {
        EXPECT_EQ(got.Row(q)[e].item, want.Row(q)[e].item);
      } else {
        EXPECT_EQ(got.Row(q)[e].item,
                  ids[static_cast<std::size_t>(want.Row(q)[e].item)]);
      }
    }
  }

  // SaveSegment with a sealed + active layer in play (mid-lifecycle) is
  // exercised by saving right after buffering fresh mutations.
  catalog.Insert(RowVector(model.items, 7));
  ASSERT_TRUE(catalog.live().SaveSegment(path).ok());
  auto again = CatalogSegment::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows(), snapshot.rows() + 1);

  std::remove(path.c_str());
}

TEST(CatalogSegmentTest, SaveEmptyCatalogFails) {
  const MFModel model = MakeTestModel(6, 4, 4, 99);
  ShadowedCatalog catalog(model, SmallOptions());
  for (Index i = 0; i < 4; ++i) catalog.Remove(i);
  EXPECT_TRUE(catalog.live()
                  .SaveSegment(TempPath("segment_empty"))
                  .code() == StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mips
