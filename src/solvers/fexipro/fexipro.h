// FEXIPRO: fast and exact inner product retrieval (SIGMOD'17 baseline).
//
// A point-query index over the items: vectors are SVD-rotated, sorted by
// norm, and each query scans that order with a cascade of upper bounds —
//
//   1. length bound      ||u|| * ||i||          (stops the whole scan)
//   2. integer bound     int16 dot + rounding correction
//   3. SVD partial bound head product + Cauchy-Schwarz tail
//   4. exact dot         (only for survivors)
//
// The SIR variant additionally applies the non-negativity reduction before
// quantization (one extra dimension per vector).  Deliberately *not*
// batched across users: the paper attributes FEXIPRO's batch-setting
// losses to its point-query design, and OPTIMUS exploits the non-batching
// property for t-test early stopping.
//
// Reported scores are computed from the ORIGINAL (untransformed) user and
// item vectors: the bound cascade runs in SVD space, but a survivor is
// rescored against the raw rows before it enters the heap.  The SVD
// rotation preserves inner products only up to ulps — and the rotation
// itself depends on the item set — so heap scores taken in SVD space
// would make the same item score differently under different partitions
// of the catalog, breaking ShardedMipsEngine's bit-for-bit
// sharded==unsharded guarantee on exact cross-shard ties.  Original-space
// rescoring makes FEXIPRO's scores identical to BMM/LEMP/naive's for the
// same (user, item) pair, ties included.  Because the bounds then live in
// a different (rotated) space than the heap scores they prune against,
// each bound is inflated by an O(f * eps * ||u|| * ||i||) slack before it
// may prune — covering the rotation's rounding error so the cascade stays
// a sound over-approximation of the original-space score.

#ifndef MIPS_SOLVERS_FEXIPRO_FEXIPRO_H_
#define MIPS_SOLVERS_FEXIPRO_FEXIPRO_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "solvers/fexipro/transforms.h"
#include "solvers/solver.h"

namespace mips {

/// Options for the FEXIPRO reproduction.
struct FexiproOptions {
  /// Enable the "R" reduction (SIR); false = SI.
  bool use_reduction = false;
  /// Energy share captured by the SVD head dimensions.
  Real svd_energy_fraction = 0.8;
  /// Lesion switches for the bound cascade (ablation bench): disabling a
  /// stage never affects exactness, only pruning cost/effectiveness.
  bool use_int_bound = true;
  bool use_svd_bound = true;
};

/// FEXIPRO-SI / FEXIPRO-SIR exact MIPS index.
class FexiproSolver : public MipsSolver {
 public:
  explicit FexiproSolver(const FexiproOptions& options = {})
      : options_(options) {}

  std::string name() const override {
    return options_.use_reduction ? "fexipro-sir" : "fexipro-si";
  }
  bool batches_users() const override { return false; }

  Status Prepare(const ConstRowBlock& users,
                 const ConstRowBlock& items) override;
  Status TopKForUsers(Index k, std::span<const Index> user_ids,
                      TopKResult* out) override;

  /// SVD head width chosen during Prepare (for tests/benches).
  Index head_dims() const { return svd_.head_dims; }
  /// Fraction of items fully scored in the last query batch.  Under
  /// concurrent queries this reflects whichever batch finished last.
  double last_exact_fraction() const {
    return last_exact_fraction_.load(std::memory_order_relaxed);
  }

 private:
  struct QueryScratch;
  Index QueryOneUser(const Real* user, Index k, QueryScratch* scratch,
                     TopKEntry* out_row) const;

  FexiproOptions options_;
  ConstRowBlock users_;
  ConstRowBlock items_;

  fexipro::SvdTransform svd_;
  fexipro::ReductionTransform reduction_;  // SIR only
  fexipro::Int16Quantizer item_quantizer_;

  /// Items after SVD (and sorting by descending norm).
  Matrix sorted_items_;  // n x f, SVD space
  std::vector<Real> norms_;
  std::vector<Index> ids_;
  std::vector<Real> tail_norms_;  // ||i[h:f)|| per sorted item

  /// Integer-space data (SVD+R space for SIR, SVD space for SI).
  Index int_dims_ = 0;
  std::vector<int16_t> quantized_items_;  // n x int_dims_
  std::vector<int64_t> item_l1_;

  mutable std::atomic<double> last_exact_fraction_{0};
};

}  // namespace mips

#endif  // MIPS_SOLVERS_FEXIPRO_FEXIPRO_H_
