// Incremental one-sample t-test.
//
// OPTIMUS's early-stopping rule (Section IV-A): while timing an index on a
// sample of users, after each user compare the running mean per-user query
// time against BMM's (already measured) mean per-user time.  If the
// one-sample t-test rejects "index mean == BMM mean" at the configured
// significance level, stop sampling early and pick whichever is faster.

#ifndef MIPS_STATS_TTEST_H_
#define MIPS_STATS_TTEST_H_

#include <cmath>
#include <limits>

#include "stats/student_t.h"
#include "stats/welford.h"

namespace mips {

/// Outcome of a one-sample t-test at a point in the observation stream.
struct TTestResult {
  double t_statistic = 0;
  double p_value = 1.0;
  /// True if the null hypothesis (sample mean == mu0) is rejected.
  bool significant = false;
};

/// Streams observations and tests the sample mean against `mu0`.
class IncrementalTTest {
 public:
  /// `alpha` is the significance threshold (paper example: 5%).
  /// `min_observations` guards against spurious early rejections on tiny n.
  explicit IncrementalTTest(double mu0, double alpha = 0.05,
                            int min_observations = 8)
      : mu0_(mu0), alpha_(alpha), min_observations_(min_observations) {}

  /// Adds an observation and returns the current test outcome.
  TTestResult Add(double x) {
    acc_.Add(x);
    return Test();
  }

  /// Test outcome for the observations seen so far.
  TTestResult Test() const {
    TTestResult r;
    if (acc_.count() < min_observations_ || acc_.count() < 2) return r;
    const double se = acc_.stderr_mean();
    if (se == 0) {
      // Zero variance: the sample is deterministic; any nonzero difference
      // from mu0 is trivially significant.
      r.t_statistic = (acc_.mean() == mu0_) ? 0.0
                      : (acc_.mean() > mu0_
                             ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity());
      r.p_value = (acc_.mean() == mu0_) ? 1.0 : 0.0;
      r.significant = acc_.mean() != mu0_;
      return r;
    }
    r.t_statistic = (acc_.mean() - mu0_) / se;
    r.p_value = StudentTTwoSidedPValue(r.t_statistic,
                                       static_cast<double>(acc_.count() - 1));
    r.significant = r.p_value < alpha_;
    return r;
  }

  const Welford& accumulator() const { return acc_; }
  double mu0() const { return mu0_; }

 private:
  double mu0_;
  double alpha_;
  int min_observations_;
  Welford acc_;
};

}  // namespace mips

#endif  // MIPS_STATS_TTEST_H_
