// Optimizer tour: "to index or not to index?" answered live.
//
// Opens a three-way MipsEngine (BMM + LEMP + MAXIMUS, all as specs)
// across a slice of the reference model presets and prints which
// strategy OPTIMUS picks for each — the paper's thesis that the best
// exact-MIPS strategy is data-dependent, as an executable.
//
// Build & run:  ./build/examples/optimizer_tour

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "data/datasets.h"

int main() {
  using namespace mips;

  const char* tour[] = {
      "netflix-dsgd-50",   // flat norms: brute force territory
      "netflix-bpr-50",    // non-negative factors: indexable
      "r2-nomad-50",       // skewed norms, tight users: index wins
      "kdd-ref-51",        // heavily skewed: index wins
      "glove-twitter-50",  // items >> users: it depends
  };
  std::printf("%-20s %-10s %-40s %s\n", "model", "chosen", "estimates (s)",
              "decision (s)");
  for (const char* id : tour) {
    auto preset = FindModelPreset(id);
    preset.status().CheckOK();
    auto model = MakeModel(*preset, /*scale_multiplier=*/1.0);
    model.status().CheckOK();

    EngineOptions options;
    options.k = 1;
    options.solvers = {"bmm", "lemp", "maximus"};
    auto engine = MipsEngine::Open(ConstRowBlock(model->users),
                                   ConstRowBlock(model->items), options);
    engine.status().CheckOK();
    const OptimusReport& report = (*engine)->decision_report();

    std::string estimates;
    for (const auto& est : report.estimates) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s=%.3f ", est.name.c_str(),
                    est.est_total_seconds);
      estimates += buf;
    }
    std::printf("%-20s %-10s %-40s %.3f\n", id, report.chosen.c_str(),
                estimates.c_str(), report.total_seconds);
  }
  std::printf(
      "\nNo single strategy wins everywhere — that is why OPTIMUS "
      "exists.\n");
  return 0;
}
