// Annotated mutex / lock-guard / condition-variable wrappers.
//
// Thin zero-overhead shims over std::mutex / std::shared_mutex /
// std::condition_variable that carry Clang capability attributes
// (common/thread_annotations.h), so the thread-safety contract of every
// concurrent class in the library is checked at compile time on the
// clang CI leg.  Under GCC the attributes vanish and these classes
// compile to exactly the std types they wrap.
//
// Usage pattern (matches the std lock-guard idiom the codebase used
// before):
//
//   class Queue {
//    public:
//     void Push(Item item) EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       while (full_) not_full_.Wait(lock);   // explicit predicate loop
//       items_.push_back(std::move(item));
//     }
//    private:
//     Mutex mu_;
//     CondVar not_full_;
//     std::deque<Item> items_ GUARDED_BY(mu_);
//     bool full_ GUARDED_BY(mu_) = false;
//   };
//
// Condition predicates are written as explicit while-loops instead of
// the std::condition_variable predicate-lambda overloads: the analysis
// treats a lambda body as a separate function that does not inherit the
// caller's lock set, so a predicate lambda reading guarded state would
// need a per-lambda analysis suppression.  The explicit loop keeps the
// guarded reads inside the locked scope where the analysis can see them.

#ifndef MIPS_COMMON_MUTEX_H_
#define MIPS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace mips {

class CondVar;

/// std::mutex with the "mutex" capability attribute.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// std::shared_mutex with the "shared_mutex" capability attribute.
/// Exclusive = writers (Lock/Unlock), shared = readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (drop-in for std::unique_lock): locks
/// on construction, unlocks on destruction.  Lock()/Unlock() allow the
/// scoped manual-release idiom (executor loops that drop the lock around
/// a long computation); CondVar waits through the wrapped unique_lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Manual release/reacquire inside the scope.
  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// std::condition_variable bound to MutexLock.  Wait/WaitUntil atomically
/// release and reacquire the lock; from the analysis's point of view the
/// capability is held across the call, which is exactly the guarantee the
/// surrounding while-loop relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mips

#endif  // MIPS_COMMON_MUTEX_H_
