#include "core/engine.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include "common/mutex.h"
#include "common/timer.h"
#include "core/dynamic_maximus.h"
#include "core/maximus.h"
#include "linalg/gemm.h"
#include "linalg/simd_dispatch.h"
#include "solvers/registry.h"
#include "topk/topk_block.h"

namespace mips {

StatusOr<std::unique_ptr<MipsEngine>> MipsEngine::Open(
    const ConstRowBlock& users, const ConstRowBlock& items,
    const EngineOptions& options) {
  if (options.k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(options.k));
  }
  if (options.solvers.empty()) {
    return Status::InvalidArgument(
        "engine needs at least one candidate solver spec");
  }
  if (users.rows() <= 0 || items.rows() <= 0) {
    return Status::InvalidArgument("user and item sets must be non-empty");
  }
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0, got " +
                                   std::to_string(options.threads));
  }
  if (options.decision_cache_capacity < 0) {
    return Status::InvalidArgument(
        "decision_cache_capacity must be >= 0, got " +
        std::to_string(options.decision_cache_capacity));
  }
  if (!(options.decision_ttl_seconds >= 0)) {  // rejects negatives and NaN
    return Status::InvalidArgument(
        "decision_ttl_seconds must be >= 0, got " +
        std::to_string(options.decision_ttl_seconds));
  }
  if (options.batch_shape_decisions && options.batch_shape_max_bucket < 1) {
    return Status::InvalidArgument(
        "batch_shape_max_bucket must be >= 1, got " +
        std::to_string(options.batch_shape_max_bucket));
  }
  for (const Index rows : options.warm_batch_shapes) {
    if (rows <= 0) {
      return Status::InvalidArgument(
          "warm_batch_shapes entries must be positive, got " +
          std::to_string(rows));
    }
  }

  // Resolve the GEMM kernel before anything measures throughput: index
  // construction and the opening OPTIMUS decision below must run under
  // the kernel that will serve queries, or the decision is attributed to
  // the wrong hardware regime.
  if (options.gemm_kernel != "auto") {
    auto kernel = ParseGemmKernel(options.gemm_kernel);
    MIPS_RETURN_IF_ERROR(kernel.status());
    MIPS_RETURN_IF_ERROR(ForceGemmKernel(*kernel));
  } else {
    ActiveGemmKernel();  // first-use install: env override, else probe
  }

  std::unique_ptr<MipsEngine> engine(new MipsEngine());
  engine->users_ = users;
  engine->items_ = items;
  engine->options_ = options;

  for (const std::string& spec : options.solvers) {
    auto solver = SolverRegistry::Global().Create(spec);
    MIPS_RETURN_IF_ERROR(solver.status());
    engine->names_.push_back((*solver)->name());
    engine->specs_.push_back(spec);
    engine->solvers_.push_back(std::move(*solver));
  }
  if (options.shared_pool == nullptr && options.threads > 0) {
    engine->owned_pool_ = std::make_unique<ThreadPool>(options.threads);
  }
  ThreadPool* pool = engine->pool();

  // Build every candidate index.  Construction is a small share of
  // serving time per index (Figure 4), but N candidates over a large item
  // set is a real cold-start cost, so the builds run concurrently on the
  // engine pool when one exists.  The solvers are handed the pool only
  // AFTER this phase: a Prepare() that used the injected pool would be
  // waiting on the very pool its own task occupies (ThreadPool::Wait
  // deadlocks from inside a task), and withholding the pool makes that
  // impossible by construction rather than by convention.
  const std::size_t num_candidates = engine->solvers_.size();
  std::vector<Status> build_status(num_candidates);
  std::vector<double> build_seconds(num_candidates, 0);
  WallTimer build_timer;
  if (pool != nullptr && num_candidates > 1) {
    for (std::size_t s = 0; s < num_candidates; ++s) {
      pool->Submit([&engine, &users, &items, &build_status,
                    &build_seconds, s]() {
        WallTimer timer;
        build_status[s] = engine->solvers_[s]->Prepare(users, items);
        build_seconds[s] = timer.Seconds();
      });
    }
    // With a shared pool, Wait also drains tasks other pool users (e.g.
    // sibling shard engines opening concurrently) submitted; over-waiting
    // is harmless, waiting from inside a pool task is not (see
    // EngineOptions::shared_pool).
    pool->Wait();
  } else {
    for (std::size_t s = 0; s < num_candidates; ++s) {
      WallTimer timer;
      build_status[s] = engine->solvers_[s]->Prepare(users, items);
      build_seconds[s] = timer.Seconds();
    }
  }
  for (std::size_t s = 0; s < num_candidates; ++s) {
    MIPS_RETURN_IF_ERROR(build_status[s]);
  }
  const double build_wall_seconds = build_timer.Seconds();
  if (pool != nullptr) {
    for (auto& solver : engine->solvers_) {
      solver->set_thread_pool(pool);
    }
  }

  if (num_candidates == 1) {
    // Nothing to decide: serve with the only candidate.
    engine->report_.chosen = engine->names_[0];
    engine->report_.representation = engine->solvers_[0]->representation();
    engine->report_.gemm_kernel = ToString(ActiveGemmKernel());
    engine->report_.construction_seconds = build_seconds[0];
    engine->report_.total_seconds = build_wall_seconds;
    {
      WriterMutexLock lock(engine->decision_mu_);
      engine->InsertDecision(engine->OpeningKey(), 0);
    }
    return engine;
  }

  // The candidates are already Prepared (above, possibly in parallel), so
  // the decision only needs the sampling measurement.
  std::vector<MipsSolver*> raw;
  for (const auto& solver : engine->solvers_) raw.push_back(solver.get());
  Optimus optimus(options.optimus);
  std::size_t winner = 0;
  MIPS_RETURN_IF_ERROR(optimus.DecidePrepared(users, items, options.k, raw,
                                              &winner, &engine->report_));
  // DecidePrepared skipped construction; patch the measured per-candidate
  // build times into the report so its trace stays complete.
  for (std::size_t s = 0; s < num_candidates &&
                          s < engine->report_.estimates.size();
       ++s) {
    engine->report_.estimates[s].construction_seconds = build_seconds[s];
    // mips-tidy: allow(float-accumulation): wall-clock bookkeeping.
    engine->report_.construction_seconds += build_seconds[s];
  }
  engine->report_.total_seconds += build_wall_seconds;
  {
    WriterMutexLock lock(engine->decision_mu_);
    engine->InsertDecision(engine->OpeningKey(), winner);
    // Pre-decide the caller's expected batch shapes so the first live
    // request at each shape finds a cached winner instead of paying the
    // sampling decision inline.  Shapes bucket exactly like live queries;
    // buckets already decided (including bucket 0 when shape-keying is
    // off) are skipped.
    for (const Index rows : options.warm_batch_shapes) {
      const DecisionKey key{options.k, engine->ShapeBucket(rows)};
      if (engine->winner_by_k_.find(key) != engine->winner_by_k_.end()) {
        continue;
      }
      OptimusOptions warm_options = options.optimus;
      warm_options.fixed_sample_users = key.second;
      Optimus warm_optimus(warm_options);
      std::size_t warm_winner = 0;
      MIPS_RETURN_IF_ERROR(warm_optimus.DecidePrepared(
          users, items, options.k, raw, &warm_winner, nullptr));
      engine->InsertDecision(key, warm_winner);
    }
  }
  return engine;
}

Index MipsEngine::ShapeBucket(Index rows) const {
  if (!options_.batch_shape_decisions) return 0;
  const Index capped =
      std::clamp<Index>(rows, 1, options_.batch_shape_max_bucket);
  return static_cast<Index>(std::bit_ceil(static_cast<uint32_t>(capped)));
}

void MipsEngine::InsertDecision(DecisionKey key, std::size_t winner) {
  decision_mu_.AssertHeld();
  winner_by_k_.erase(key);  // re-insert after an expiry refreshes the entry
  winner_by_k_.emplace(
      std::piecewise_construct, std::forward_as_tuple(key),
      std::forward_as_tuple(
          winner, std::chrono::steady_clock::now(), GemmKernelEpoch(),
          decision_generation_.load(std::memory_order_relaxed)));
  winner_by_k_.at(key).last_used.store(
      decision_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  const std::size_t capacity =
      static_cast<std::size_t>(options_.decision_cache_capacity);
  if (capacity == 0) return;  // unbounded
  while (winner_by_k_.size() > capacity) {
    // Evict the least-recently-used key.  The opening decision is
    // pinned: the redecide-disabled fallback and strategy() rely on it
    // being present.
    auto lru = winner_by_k_.end();
    uint64_t lru_stamp = std::numeric_limits<uint64_t>::max();
    for (auto it = winner_by_k_.begin(); it != winner_by_k_.end(); ++it) {
      if (it->first == OpeningKey()) continue;
      const uint64_t stamp =
          it->second.last_used.load(std::memory_order_relaxed);
      if (stamp < lru_stamp) {
        lru_stamp = stamp;
        lru = it;
      }
    }
    if (lru == winner_by_k_.end()) return;  // only the pinned entry left
    winner_by_k_.erase(lru);
    stats_.decision_cache_evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

bool MipsEngine::DecisionExpired(const CachedDecision& entry) const {
  decision_mu_.AssertReaderHeld();
  // Staleness only matters when a fresh decision is possible; with
  // re-deciding disabled (or one candidate) the opening winner serves
  // forever.
  if (!options_.redecide_on_new_k || solvers_.size() < 2) return false;
  // A kernel re-install changes the throughput regime every wall-clock
  // estimate in this entry was measured under — stale immediately, no
  // TTL required.
  if (entry.kernel_epoch != GemmKernelEpoch()) return true;
  // Same idiom for InvalidateDecisions: the caller declared the data
  // regime the entry was measured under gone (e.g. a catalog swap).
  if (entry.generation !=
      decision_generation_.load(std::memory_order_relaxed)) {
    return true;
  }
  if (options_.decision_ttl_seconds <= 0) return false;
  return std::chrono::steady_clock::now() - entry.created >
         std::chrono::duration<double>(options_.decision_ttl_seconds);
}

StatusOr<std::size_t> MipsEngine::StrategyFor(Index k, Index batch_rows) {
  const std::size_t forced = forced_.load(std::memory_order_acquire);
  if (forced != kNoForcedStrategy) return forced;
  const DecisionKey key{k, ShapeBucket(batch_rows)};
  {
    ReaderMutexLock lock(decision_mu_);
    auto it = winner_by_k_.find(key);
    if (it != winner_by_k_.end() && !DecisionExpired(it->second)) {
      // Recency bump under the shared lock: a relaxed store into the
      // entry's atomic stamp, so the hot path never takes the exclusive
      // lock.  Racing hits may reorder stamps slightly; LRU stays
      // approximate by a few requests, never wrong.
      it->second.last_used.store(
          decision_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      stats_.decision_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second.winner;
    }
    // Unknown key, or a cached winner gone stale: both are misses.
    stats_.decision_cache_misses.fetch_add(1, std::memory_order_relaxed);
    if (!options_.redecide_on_new_k || solvers_.size() < 2) {
      // Fall back to the opening decision: still exact, possibly not the
      // fastest strategy for this k/shape.  (Entries never expire in
      // this mode — see DecisionExpired — so this is always an unknown
      // key.)
      return winner_by_k_.at(OpeningKey()).winner;
    }
  }
  // The opening shape and the query's (k, batch shape) diverged, or the
  // cached winner went stale: re-run the sampling decision for this key
  // and cache the winner.  The candidates were all Prepared at Open
  // (indexes are k-independent), so only the sampling measurement is
  // repeated.  For a shape bucket > 0 the sample is exactly bucket-many
  // users, so batching strategies are timed on a batch of the realized
  // size — a 64-row coalesced batch may flip the winner to BMM where
  // singletons picked an index.  The exclusive lock serializes
  // concurrent first-queries of the same new key: one caller measures,
  // the rest (re-checking under the lock) reuse its cached winner.
  WriterMutexLock lock(decision_mu_);
  bool expired = false;
  bool invalidated = false;
  {
    auto it = winner_by_k_.find(key);
    if (it != winner_by_k_.end()) {
      if (!DecisionExpired(it->second)) return it->second.winner;
      // The stale entry stays in place until the fresh decision below
      // succeeds (InsertDecision replaces it), so a decision failure
      // never leaves the pinned opening decision missing.
      if (it->second.kernel_epoch != GemmKernelEpoch() ||
          it->second.generation !=
              decision_generation_.load(std::memory_order_relaxed)) {
        invalidated = true;
      } else {
        expired = true;
      }
    }
  }
  std::vector<MipsSolver*> raw;
  for (const auto& solver : solvers_) raw.push_back(solver.get());
  OptimusOptions decision_options = options_.optimus;
  decision_options.fixed_sample_users = key.second;
  Optimus optimus(decision_options);
  std::size_t winner = 0;
  OptimusReport report;
  MIPS_RETURN_IF_ERROR(
      optimus.DecidePrepared(users_, items_, k, raw, &winner, &report));
  InsertDecision(key, winner);
  if (expired) {
    stats_.decision_cache_expirations.fetch_add(1, std::memory_order_relaxed);
  }
  if (invalidated) {
    stats_.decision_cache_invalidations.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  stats_.redecisions.fetch_add(1, std::memory_order_relaxed);
  stats_.redecision_seconds.fetch_add(report.total_seconds,
                                      std::memory_order_relaxed);
  return winner;
}

Status MipsEngine::TopK(Index k, std::span<const Index> user_ids,
                        TopKResult* out) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  for (const Index id : user_ids) {
    if (id < 0 || id >= users_.rows()) {
      return Status::OutOfRange(
          "user id out of range: " + std::to_string(id) + " (engine has " +
          std::to_string(users_.rows()) + " users)");
    }
  }
  auto strategy = StrategyFor(k, static_cast<Index>(user_ids.size()));
  MIPS_RETURN_IF_ERROR(strategy.status());
  WallTimer timer;
  MIPS_RETURN_IF_ERROR(solvers_[*strategy]->TopKForUsers(k, user_ids, out));
  stats_.serve_seconds.fetch_add(timer.Seconds(), std::memory_order_relaxed);
  stats_.batches_served.fetch_add(1, std::memory_order_relaxed);
  stats_.users_served.fetch_add(static_cast<int64_t>(user_ids.size()),
                                std::memory_order_relaxed);
  return Status::OK();
}

Status MipsEngine::TopKAll(Index k, TopKResult* out) {
  std::vector<Index> ids(static_cast<std::size_t>(users_.rows()));
  std::iota(ids.begin(), ids.end(), 0);
  return TopK(k, ids, out);
}

Status MipsEngine::TopKNewUser(const Real* user_vector, Index k,
                               TopKEntry* out_row) {
  // One code path for singleton and coalesced serving: a 1-row batch.
  // Every batched row is computed exactly as this call computes it, so
  // the serve-side coalescing layer (serve/batching_engine.h) returns
  // bit-for-bit the answer the caller would have gotten alone.
  TopKResult one;
  MIPS_RETURN_IF_ERROR(TopKNewUsers(user_vector, 1, k, &one));
  const TopKEntry* row = one.Row(0);
  for (Index e = 0; e < k; ++e) out_row[e] = row[e];
  return Status::OK();
}

Status MipsEngine::DenseScoreNewUsers(const Real* user_vectors,
                                      Index num_rows, Index k,
                                      TopKResult* out) {
  // Mirrors BmmSolver's small-batch regime: one blocked GEMM per
  // score-block chunk (macro-panels fan out across the pool), then a
  // parallel per-row top-K reduction.  Chunking bounds the score block
  // to ~16 MB however wide the catalog is.
  const Index n = items_.rows();
  const Index f = items_.cols();
  const std::size_t row_bytes = static_cast<std::size_t>(n) * sizeof(Real);
  const Index chunk = static_cast<Index>(std::clamp<std::size_t>(
      (16ull << 20) / std::max<std::size_t>(1, row_bytes), 1,
      static_cast<std::size_t>(num_rows)));
  Matrix scores(chunk, n);
  for (Index b = 0; b < num_rows; b += chunk) {
    const Index m = std::min<Index>(chunk, num_rows - b);
    GemmNT(user_vectors + static_cast<std::size_t>(b) * f, m, items_.data(),
           n, f, /*alpha=*/1, /*beta=*/0, scores.data(), scores.cols(),
           pool());
    ParallelFor(pool(), m, [&](int64_t begin, int64_t end, int /*chunk_i*/) {
      TopKFromScoreBlock(
          scores.data() + static_cast<std::size_t>(begin) * scores.cols(),
          static_cast<Index>(end - begin), n, scores.cols(), k,
          /*item_offset=*/0, /*item_ids=*/nullptr, out,
          b + static_cast<Index>(begin));
    });
  }
  return Status::OK();
}

Status MipsEngine::TopKNewUsers(const Real* user_vectors, Index num_rows,
                                Index k, TopKResult* out) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  if (user_vectors == nullptr) {
    return Status::InvalidArgument("user_vectors must not be null");
  }
  if (num_rows <= 0) {
    return Status::InvalidArgument("num_rows must be positive, got " +
                                   std::to_string(num_rows));
  }
  auto strategy = StrategyFor(k, num_rows);
  MIPS_RETURN_IF_ERROR(strategy.status());
  MipsSolver* solver = solvers_[*strategy].get();
  WallTimer timer;
  *out = TopKResult(num_rows, k);
  const Index f = items_.cols();
  if (auto* maximus = dynamic_cast<MaximusSolver*>(solver)) {
    // Exact dynamic-user walk (Section III-E), one probe per row: the
    // decision said index probes beat a GEMM at this batch shape.
    for (Index r = 0; r < num_rows; ++r) {
      MIPS_RETURN_IF_ERROR(maximus->QueryDynamicUser(
          user_vectors + static_cast<std::size_t>(r) * f, k, out->Row(r)));
    }
  } else if (auto* dynamic = dynamic_cast<DynamicMaximusSolver*>(solver)) {
    for (Index r = 0; r < num_rows; ++r) {
      MIPS_RETURN_IF_ERROR(dynamic->QueryNewUser(
          user_vectors + static_cast<std::size_t>(r) * f, k, out->Row(r)));
    }
  } else {
    // Every other strategy scores new users densely (their index
    // structures are keyed to the prepared user matrix): one blocked
    // GEMM over the whole coalesced batch — the batching win.
    MIPS_RETURN_IF_ERROR(DenseScoreNewUsers(user_vectors, num_rows, k, out));
  }
  stats_.serve_seconds.fetch_add(timer.Seconds(), std::memory_order_relaxed);
  stats_.new_users_served.fetch_add(num_rows, std::memory_order_relaxed);
  return Status::OK();
}

int64_t MipsEngine::InvalidateDecisions() {
  // Shared lock suffices: the generation is an atomic the bump publishes
  // to every later DecisionExpired check, and the size read only feeds
  // the retirement count.
  ReaderMutexLock lock(decision_mu_);
  decision_generation_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int64_t>(winner_by_k_.size());
}

Status MipsEngine::ForceStrategy(const std::string& name_or_spec) {
  // Solver name first; the exact opening spec disambiguates when two
  // candidates are tuned variants of the same solver.
  for (std::size_t s = 0; s < names_.size(); ++s) {
    if (names_[s] == name_or_spec) {
      forced_.store(s, std::memory_order_release);
      return Status::OK();
    }
  }
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s] == name_or_spec) {
      forced_.store(s, std::memory_order_release);
      return Status::OK();
    }
  }
  std::string candidates;
  for (const std::string& candidate : specs_) {
    if (!candidates.empty()) candidates += ", ";
    candidates += candidate;
  }
  return Status::NotFound("no candidate named \"" + name_or_spec +
                          "\" (candidates: " + candidates + ")");
}

void MipsEngine::ClearForcedStrategy() {
  forced_.store(kNoForcedStrategy, std::memory_order_release);
}

const std::string& MipsEngine::strategy() const {
  const std::size_t forced = forced_.load(std::memory_order_acquire);
  if (forced != kNoForcedStrategy) return names_[forced];
  ReaderMutexLock lock(decision_mu_);
  return names_[winner_by_k_.at(OpeningKey()).winner];
}

MipsEngine::Stats MipsEngine::stats() const {
  Stats snapshot;
  snapshot.batches_served = stats_.batches_served.load(std::memory_order_relaxed);
  snapshot.users_served = stats_.users_served.load(std::memory_order_relaxed);
  snapshot.new_users_served =
      stats_.new_users_served.load(std::memory_order_relaxed);
  snapshot.redecisions = stats_.redecisions.load(std::memory_order_relaxed);
  snapshot.serve_seconds = stats_.serve_seconds.load(std::memory_order_relaxed);
  snapshot.redecision_seconds =
      stats_.redecision_seconds.load(std::memory_order_relaxed);
  snapshot.decision_cache_hits =
      stats_.decision_cache_hits.load(std::memory_order_relaxed);
  snapshot.decision_cache_misses =
      stats_.decision_cache_misses.load(std::memory_order_relaxed);
  snapshot.decision_cache_evictions =
      stats_.decision_cache_evictions.load(std::memory_order_relaxed);
  snapshot.decision_cache_expirations =
      stats_.decision_cache_expirations.load(std::memory_order_relaxed);
  snapshot.decision_cache_invalidations =
      stats_.decision_cache_invalidations.load(std::memory_order_relaxed);
  snapshot.gemm_kernel = ToString(ActiveGemmKernel());
  const std::size_t forced = forced_.load(std::memory_order_acquire);
  {
    ReaderMutexLock lock(decision_mu_);
    snapshot.decision_cache_size =
        static_cast<int64_t>(winner_by_k_.size());
    snapshot.representation =
        solvers_[forced != kNoForcedStrategy
                     ? forced
                     : winner_by_k_.at(OpeningKey()).winner]
            ->representation();
  }
  return snapshot;
}

}  // namespace mips
