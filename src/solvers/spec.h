// Textual solver specification: strategies as data, not types.
//
// A spec selects a registered solver by name and overrides any subset of
// its schema parameters:
//
//   "bmm"
//   "maximus:clusters=64,block_size=2048"
//   "fexipro:use_reduction=true"
//
// Grammar:  spec  := name [ ':' pairs ]
//           pairs := pair ( ',' pair )*
//           pair  := key '=' value
//
// Whitespace around names, keys, and values is ignored.  Parsing is
// purely syntactic — name/key/type validation happens against the solver
// registry (registry.h), so error messages can say which solver and
// which parameter are wrong.

#ifndef MIPS_SOLVERS_SPEC_H_
#define MIPS_SOLVERS_SPEC_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mips {

/// A parsed solver spec: the solver name plus key=value overrides in
/// spec order (values still unparsed strings at this stage).
struct SolverSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;

  /// Canonical round-trippable form: "name:key=value,...".
  std::string ToString() const;

  /// Value for `key`, or nullptr if the spec does not set it.
  const std::string* Find(const std::string& key) const;
};

/// Parses "name:key=value,key=value".  InvalidArgument on an empty name,
/// a pair without '=', an empty key, or a duplicate key — the message
/// names the offending fragment.
StatusOr<SolverSpec> ParseSolverSpec(const std::string& text);

}  // namespace mips

#endif  // MIPS_SOLVERS_SPEC_H_
