#include "core/cost_model.h"

#include <algorithm>

#include "common/rng.h"
#include "common/timer.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"

namespace mips {

StatusOr<BmmCostModel> BmmCostModel::Calibrate(Index probe_m, Index probe_n,
                                               Index probe_k,
                                               int probe_repeats) {
  if (probe_m <= 0 || probe_n <= 0 || probe_k <= 0 || probe_repeats <= 0) {
    return Status::InvalidArgument("probe dimensions must be positive");
  }
  Matrix a(probe_m, probe_k);
  Matrix b(probe_n, probe_k);
  Matrix c(probe_m, probe_n);
  Rng rng(4242);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<Real>(rng.Normal());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<Real>(rng.Normal());
  }

  // Warm up once (page faults, frequency ramp), then keep the fastest of
  // the probe repeats: transient interference only ever slows a run down.
  GemmNT(a.data(), probe_m, b.data(), probe_n, probe_k, 1, 0, c.data(),
         probe_n);
  double best_seconds = 1e300;
  for (int r = 0; r < probe_repeats; ++r) {
    WallTimer timer;
    GemmNT(a.data(), probe_m, b.data(), probe_n, probe_k, 1, 0, c.data(),
           probe_n);
    best_seconds = std::min(best_seconds, timer.Seconds());
  }
  const double flops = 2.0 * probe_m * probe_n * probe_k;
  return BmmCostModel(flops / best_seconds);
}

double BmmCostModel::PredictGemmSeconds(int64_t m, int64_t n,
                                        int64_t k) const {
  if (m <= 0 || n <= 0 || k <= 0 || sustained_flops_ <= 0) return 0;
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k) / sustained_flops_;
}

}  // namespace mips
