// mips-unchecked-status GOOD fixture: every sanctioned way to consume a
// Status/StatusOr.  Must produce no diagnostics.

#include <string>
#include <utility>

#include "common/status.h"

namespace fixture {

using mips::Status;
using mips::StatusOr;

Status DoThing();
StatusOr<int> ComputeThing();

Status PropagateWithMacro() {
  MIPS_RETURN_IF_ERROR(DoThing());
  return Status::OK();
}

Status HandleExplicitly() {
  Status st = DoThing();
  if (!st.ok()) return st;
  StatusOr<int> value = ComputeThing();
  if (!value.ok()) return value.status();
  return Status::OK();
}

void AssertAtApplicationBoundary() {
  DoThing().CheckOK();
}

void VisibleDiscard() {
  // A (void) cast is a reviewed, greppable discard — same rule as
  // [[nodiscard]].
  (void)DoThing();
}

bool UseTheValue() { return DoThing().ok(); }

Status CommaResultIsUsed(int* counter) {
  // The comma's RHS is only discarded when the comma itself is; here
  // its value is returned, so nothing is lost.
  return ++*counter, DoThing();
}

}  // namespace fixture
